package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrTruncated is returned when a reader runs out of input mid-field.
var ErrTruncated = errors.New("wire: truncated payload")

// maxFieldLen bounds variable-length fields inside payloads so a corrupt
// length prefix cannot trigger a giant allocation.
const maxFieldLen = MaxFrameSize

// Encoder builds payload bodies field by field. The zero value is ready to
// use. All integers are encoded as unsigned varints; signed values use
// zig-zag encoding.
type Encoder struct {
	buf []byte
}

// Bytes returns the encoded payload.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Uvarint appends an unsigned varint.
func (e *Encoder) Uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// Varint appends a signed varint.
func (e *Encoder) Varint(v int64) { e.buf = binary.AppendVarint(e.buf, v) }

// Uint8 appends a single byte.
func (e *Encoder) Uint8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Float64 appends an IEEE-754 double.
func (e *Encoder) Float64(v float64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, math.Float64bits(v))
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Bytes2 appends a length-prefixed byte slice.
func (e *Encoder) Bytes2(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// MsgID appends a fixed-width message identifier.
func (e *Encoder) MsgID(id MsgID) { e.buf = append(e.buf, id[:]...) }

// BPID appends a BestPeer identity.
func (e *Encoder) BPID(b BPID) {
	e.String(b.LIGLO)
	e.Uvarint(b.Node)
}

// Decoder consumes payload bodies produced by Encoder. Methods record the
// first error and subsequently return zero values, so callers may decode a
// whole struct and check Err once.
type Decoder struct {
	buf []byte
	pos int
	err error
}

// NewDecoder wraps a payload body.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Err returns the first decoding error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.pos }

// Finish returns an error if decoding failed or trailing bytes remain.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.pos != len(d.buf) {
		return fmt.Errorf("wire: %d trailing bytes", len(d.buf)-d.pos)
	}
	return nil
}

func (d *Decoder) fail() {
	if d.err == nil {
		d.err = ErrTruncated
	}
}

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.pos += n
	return v
}

// Varint reads a signed varint.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.pos:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.pos += n
	return v
}

// Uint8 reads one byte.
func (d *Decoder) Uint8() uint8 {
	if d.err != nil || d.pos >= len(d.buf) {
		d.fail()
		return 0
	}
	v := d.buf[d.pos]
	d.pos++
	return v
}

// Bool reads a one-byte boolean.
func (d *Decoder) Bool() bool { return d.Uint8() != 0 }

// Float64 reads an IEEE-754 double.
func (d *Decoder) Float64() float64 {
	if d.err != nil || len(d.buf)-d.pos < 8 {
		d.fail()
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(d.buf[d.pos:]))
	d.pos += 8
	return v
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.Uvarint()
	if d.err != nil {
		return ""
	}
	if n > maxFieldLen || uint64(len(d.buf)-d.pos) < n {
		d.fail()
		return ""
	}
	s := string(d.buf[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s
}

// Bytes2 reads a length-prefixed byte slice (copied out of the buffer).
func (d *Decoder) Bytes2() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > maxFieldLen || uint64(len(d.buf)-d.pos) < n {
		d.fail()
		return nil
	}
	b := append([]byte(nil), d.buf[d.pos:d.pos+int(n)]...)
	d.pos += int(n)
	return b
}

// MsgID reads a fixed-width message identifier.
func (d *Decoder) MsgID() MsgID {
	var id MsgID
	if d.err != nil || len(d.buf)-d.pos < len(id) {
		d.fail()
		return id
	}
	copy(id[:], d.buf[d.pos:])
	d.pos += len(id)
	return id
}

// BPID reads a BestPeer identity.
func (d *Decoder) BPID() BPID {
	return BPID{LIGLO: d.String(), Node: d.Uvarint()}
}
