package observatory

import (
	"testing"
	"time"

	"bestpeer/internal/obs"
)

// ingestAt feeds one signal value at second sec and returns transitions.
func ingestAt(h *Health, member string, sec int, series string, v float64) []Alert {
	return h.Ingest(member, ts(sec), map[string]float64{series: v}, "")
}

func TestRuleHysteresisAndHold(t *testing.T) {
	rule := Rule{
		Name: "churn", Series: "sig",
		Fire: 10, Clear: 4,
		Hold: 2 * time.Second, ClearHold: 3 * time.Second,
	}
	h := NewHealth([]Rule{rule}, 0, 0)

	// Breach must persist for Hold before firing: a one-sample spike
	// (flap) does not fire.
	if tr := ingestAt(h, "m", 0, "sig", 15); len(tr) != 0 {
		t.Fatalf("fired before hold: %+v", tr)
	}
	if tr := ingestAt(h, "m", 1, "sig", 2); len(tr) != 0 {
		t.Fatalf("spike fired: %+v", tr)
	}
	// Sustained breach fires once the hold elapses, with Since at the
	// breach start.
	ingestAt(h, "m", 2, "sig", 20)
	ingestAt(h, "m", 3, "sig", 20)
	tr := ingestAt(h, "m", 4, "sig", 25)
	if len(tr) != 1 || !tr[0].Firing {
		t.Fatalf("sustained breach transitions = %+v", tr)
	}
	if !tr[0].Since.Equal(ts(2)) || tr[0].Value != 25 || tr[0].Threshold != 10 {
		t.Fatalf("fire provenance = %+v", tr[0])
	}
	if act := h.Active(); len(act) != 1 || act[0].Rule != "churn" || act[0].Member != "m" {
		t.Fatalf("active = %+v", act)
	}
	// Dead band (between Clear and Fire) neither clears nor re-fires.
	if tr := ingestAt(h, "m", 5, "sig", 7); len(tr) != 0 {
		t.Fatalf("dead band transitioned: %+v", tr)
	}
	// A dip below Clear that does not last ClearHold resets: oscillation
	// around the thresholds cannot flap the alert.
	ingestAt(h, "m", 6, "sig", 2)
	ingestAt(h, "m", 7, "sig", 12) // back above: clear-pending resets
	ingestAt(h, "m", 8, "sig", 2)
	if tr := ingestAt(h, "m", 10, "sig", 2); len(tr) != 0 {
		t.Fatalf("cleared before clear-hold: %+v", tr)
	}
	tr = ingestAt(h, "m", 11, "sig", 1)
	if len(tr) != 1 || tr[0].Firing {
		t.Fatalf("sustained recovery transitions = %+v", tr)
	}
	if len(h.Active()) != 0 {
		t.Fatalf("active after clear = %+v", h.Active())
	}

	// The journal holds exactly one raise and one clear, with provenance.
	events, _, _ := h.Journal().Since(0, 0)
	if len(events) != 2 {
		t.Fatalf("journal = %+v", events)
	}
	raise, clear := events[0], events[1]
	if raise.Kind != obs.EvAlertRaised || raise.Node != "m" ||
		raise.Reason != "churn" || raise.Strategy != "sig" ||
		raise.Value != 25 || raise.Threshold != 10 {
		t.Fatalf("raise event = %+v", raise)
	}
	if clear.Kind != obs.EvAlertCleared || clear.Threshold != 4 {
		t.Fatalf("clear event = %+v", clear)
	}
	if !raise.At.Equal(ts(4)) || !clear.At.Equal(ts(11)) {
		t.Fatalf("event times = %v %v", raise.At, clear.At)
	}
}

func TestBelowRuleAndExemplar(t *testing.T) {
	rule := Rule{
		Name: "hit-collapse", Series: SigCacheHitRate, Below: true,
		Fire: 0.1, Clear: 0.3, Hold: 0, ClearHold: 0,
	}
	h := NewHealth([]Rule{rule}, 0, 0)
	// A missing signal (no lookups in the window) must not evaluate.
	if tr := h.Ingest("m", ts(0), map[string]float64{SigUp: 1}, ""); len(tr) != 0 {
		t.Fatalf("missing signal evaluated: %+v", tr)
	}
	// Zero hold fires on first breach and carries the exemplar through
	// to the alert and its journal event.
	tr := h.Ingest("m", ts(1), map[string]float64{SigCacheHitRate: 0.02}, "trace-42")
	if len(tr) != 1 || !tr[0].Firing || tr[0].Exemplar != "trace-42" {
		t.Fatalf("below-rule fire = %+v", tr)
	}
	events, _, _ := h.Journal().Since(0, 0)
	if len(events) != 1 || events[0].Query != "trace-42" {
		t.Fatalf("journal exemplar = %+v", events)
	}
	// Dead band (0.2) holds; recovery at ≥ Clear clears.
	if tr := h.Ingest("m", ts(2), map[string]float64{SigCacheHitRate: 0.2}, ""); len(tr) != 0 {
		t.Fatalf("dead band transitioned: %+v", tr)
	}
	tr = h.Ingest("m", ts(3), map[string]float64{SigCacheHitRate: 0.5}, "")
	if len(tr) != 1 || tr[0].Firing {
		t.Fatalf("below-rule clear = %+v", tr)
	}
}

func TestHealthView(t *testing.T) {
	h := NewHealth([]Rule{{Name: "down", Series: SigUp, Below: true, Fire: 0.5, Clear: 0.5}}, 0, 0)
	h.Ingest("a", ts(1), map[string]float64{SigUp: 1, SigSendQueueDepth: 3}, "")
	h.Ingest("b", ts(2), map[string]float64{SigUp: 0}, "")
	v := h.View()
	if !v.At.Equal(ts(2)) || len(v.Rules) != 1 {
		t.Fatalf("view = %+v", v)
	}
	if v.Members["a"].Signals[SigSendQueueDepth] != 3 || len(v.Members["a"].Alerts) != 0 {
		t.Fatalf("member a = %+v", v.Members["a"])
	}
	mb := v.Members["b"]
	if mb.Signals[SigUp] != 0 || len(mb.Alerts) != 1 || mb.Alerts[0].Rule != "down" {
		t.Fatalf("member b = %+v", mb)
	}
	if len(v.Active) != 1 || v.Active[0].Member != "b" {
		t.Fatalf("active = %+v", v.Active)
	}
}

func TestDeriveSignals(t *testing.T) {
	reg := obs.NewRegistry()
	hits := reg.Counter("bestpeer_qroute_cache_hits_total", "h", obs.L("where", "base"))
	misses := reg.Counter("bestpeer_qroute_cache_misses_total", "m")
	repairs := reg.Counter("bestpeer_node_repair_peers_added_total", "r")
	depth := reg.Gauge("bestpeer_transport_send_queue_depth", "d")
	hits.Add(10)
	misses.Add(10)
	prev := MemberSample{At: ts(0), Up: true, Metrics: reg.Snapshot()}

	hits.Add(6)
	misses.Add(2)
	repairs.Add(20)
	depth.Set(40)
	cur := MemberSample{
		At: ts(10), Up: true, Metrics: reg.Snapshot(),
		Events: []obs.Event{
			{Kind: obs.EvPeerSuspect}, {Kind: obs.EvPeerSuspect}, {Kind: obs.EvPeerAdded},
		},
		Evicted: 30,
	}
	sig := DeriveSignals(prev, cur)
	if sig[SigUp] != 1 || sig[SigSendQueueDepth] != 40 {
		t.Fatalf("levels = %+v", sig)
	}
	if sig[SigSuspectChurnPerS] != 0.2 {
		t.Fatalf("suspect churn = %v, want 0.2", sig[SigSuspectChurnPerS])
	}
	if sig[SigJournalOverflowPerS] != 3 {
		t.Fatalf("overflow = %v, want 3", sig[SigJournalOverflowPerS])
	}
	// Window deltas: 6 hits, 2 misses -> 0.75; 20 repairs over 10s -> 2/s.
	if sig[SigCacheHitRate] != 0.75 {
		t.Fatalf("hit rate = %v, want 0.75", sig[SigCacheHitRate])
	}
	if sig[SigRepairAddedPerS] != 2 {
		t.Fatalf("repair rate = %v, want 2", sig[SigRepairAddedPerS])
	}

	// No lookups in the window: the hit-rate signal is absent, not zero,
	// so a cold cache cannot fake a collapse.
	idle := MemberSample{At: ts(20), Up: true, Metrics: reg.Snapshot(), Evicted: 30}
	sig = DeriveSignals(cur, idle)
	if _, ok := sig[SigCacheHitRate]; ok {
		t.Fatalf("idle window emitted hit rate: %+v", sig)
	}
	if sig[SigSuspectChurnPerS] != 0 || sig[SigJournalOverflowPerS] != 0 {
		t.Fatalf("idle rates = %+v", sig)
	}

	// A down member yields only up=0 — stale levels must not feed rules.
	sig = DeriveSignals(cur, MemberSample{At: ts(30), Up: false})
	if len(sig) != 1 || sig[SigUp] != 0 {
		t.Fatalf("down signals = %+v", sig)
	}

	// First sample of a member: levels only, no rates.
	sig = DeriveSignals(MemberSample{}, cur)
	if _, ok := sig[SigSuspectChurnPerS]; ok {
		t.Fatalf("first sample emitted rates: %+v", sig)
	}
	if sig[SigSendQueueDepth] != 40 {
		t.Fatalf("first sample levels = %+v", sig)
	}
}
