package bench

import (
	"testing"
	"time"

	"bestpeer/internal/reconfig"
	"bestpeer/internal/topology"
	"bestpeer/internal/workload"
)

// liveSpec is a miniature workload so the real storage engine stays fast.
func liveSpec() *workload.Spec {
	return &workload.Spec{
		ObjectsPerNode: 40,
		ObjectSize:     256,
		Vocabulary:     8,
		Seed:           11,
	}
}

// TestLiveMatchesSimQualitatively validates the simulator against the
// real implementation: on a line, reconfiguration must reduce both the
// forwarding load and the maximum answer distance across rounds, exactly
// as the simulated BPR does.
func TestLiveMatchesSimQualitatively(t *testing.T) {
	spec := liveSpec()
	query := spec.Keyword(3)
	tp := topology.Line(8)

	lc, err := NewLiveCluster(tp, spec, query, reconfig.MaxCount{}, 6)
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	round1, err := lc.RunRound(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	round2, err := lc.RunRound(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}

	want := 0
	for i := 1; i < tp.N; i++ {
		want += spec.MatchCount(i, query)
	}
	if round1.TotalAnswers != want || round2.TotalAnswers != want {
		t.Fatalf("live answers = %d, %d; want %d", round1.TotalAnswers, round2.TotalAnswers, want)
	}
	// After reconfiguration the base has direct links deep into the
	// line, so agents fan out from several entry points: the network
	// does strictly more forwarding per round only in the static case.
	if len(lc.Base().Peers()) <= 1 {
		t.Fatalf("base did not gain peers: %v", lc.Base().PeerAddrs())
	}
	// The simulated BPR on the same topology shows the same direction.
	p := Params{
		Cost: DefaultCost(), Spec: spec, Query: query,
		MaxPeers: 6, IncludeData: true,
	}
	runs := RunBestPeer(tp, p, 2, reconfig.MaxCount{})
	if runs[1].Completion >= runs[0].Completion {
		t.Fatalf("sim BPR did not improve on line: %v -> %v",
			runs[0].Completion, runs[1].Completion)
	}
}

// TestLiveStaticNetworkStable: with the static strategy the peer set and
// answer totals are identical across rounds.
func TestLiveStaticNetworkStable(t *testing.T) {
	spec := liveSpec()
	query := spec.Keyword(1)
	tp := topology.Star(5)

	lc, err := NewLiveCluster(tp, spec, query, reconfig.Static{}, 6)
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	before := lc.Base().PeerAddrs()
	r1, err := lc.RunRound(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := lc.RunRound(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	after := lc.Base().PeerAddrs()
	if len(before) != len(after) {
		t.Fatalf("static peer set changed: %v -> %v", before, after)
	}
	if r1.TotalAnswers != r2.TotalAnswers {
		t.Fatalf("static answers differ: %d vs %d", r1.TotalAnswers, r2.TotalAnswers)
	}
	// On a star every answer is one hop.
	if r1.MaxHops != 1 || r2.MaxHops != 1 {
		t.Fatalf("star hops = %d, %d; want 1", r1.MaxHops, r2.MaxHops)
	}
}
