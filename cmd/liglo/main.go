// Command liglo runs a Location-Independent Global Names Lookup server.
// Peers register with it to obtain a BPID, report their address on every
// reconnect, and resolve each other's current addresses. Any number of
// liglo servers can serve one BestPeer network.
//
// Usage:
//
//	liglo [-addr host:port] [-capacity N] [-peers N] [-probe 30s]
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bestpeer/internal/liglo"
	"bestpeer/internal/transport"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7100", "address to listen on")
	capacity := flag.Int("capacity", 0, "maximum members (0 = unlimited)")
	peers := flag.Int("peers", 5, "initial direct peers handed to a new registrant")
	probe := flag.Duration("probe", 30*time.Second, "liveness validation interval (0 disables)")
	flag.Parse()

	srv, err := liglo.NewServer(transport.TCP{}, *addr, liglo.ServerConfig{
		Capacity:      *capacity,
		InitialPeers:  *peers,
		ProbeInterval: *probe,
	})
	if err != nil {
		log.Fatalf("liglo: %v", err)
	}
	log.Printf("liglo: serving on %s (capacity=%d, initial peers=%d)",
		srv.Addr(), *capacity, *peers)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("liglo: shutting down with %d members", srv.Members())
	if err := srv.Close(); err != nil {
		log.Fatalf("liglo: close: %v", err)
	}
}
