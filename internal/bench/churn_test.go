package bench

import (
	"testing"
	"time"
)

// testChurnParams scales the committed-figure configuration down to a
// tier-1 budget (~0.2s) while keeping the flood near its coverage edge,
// where erosion is visible.
func testChurnParams() ChurnParams {
	p := DefaultChurnParams()
	p.Nodes = 2000
	p.Horizon = 90 * time.Second
	p.BurstAt = 45 * time.Second
	p.Bases = 8
	p.Keywords = 4
	p.HoldersPerKeyword = 20
	return p
}

func TestChurnSchemes(t *testing.T) {
	res := Churn(testChurnParams(), 1)
	bpr := res.SchemeByName("bpr")
	bps := res.SchemeByName("bps")
	flood := res.SchemeByName("flood")
	if bpr == nil || bps == nil || flood == nil {
		t.Fatalf("missing scheme in %+v", res)
	}
	for _, r := range res.Schemes {
		t.Logf("%s: mean=%.3f final=%.3f postmin=%.3f conv=%d msgs=%d repairs=%d hints=%d departs=%d cache=%d/%d",
			r.Scheme, r.MeanRecall, r.FinalRecall, r.PostBurstMinRecall, r.RepairConvergenceRounds,
			r.Msgs, r.Repairs, r.HintAdopts, r.DepartsDelivered, r.CacheHits, r.CacheLookups)
	}

	// The flood is the recall reference; it must itself be healthy.
	if flood.MeanRecall < 0.95 {
		t.Fatalf("flood mean recall %.3f; the reference itself is broken", flood.MeanRecall)
	}
	// The headline acceptance bound: reconfigurable BestPeer under churn
	// keeps recall within 5 points of exhaustive flooding.
	if bpr.MeanRecall < flood.MeanRecall-0.05 {
		t.Errorf("bpr mean recall %.3f < flood %.3f - 0.05", bpr.MeanRecall, flood.MeanRecall)
	}
	if bpr.FinalRecall < flood.FinalRecall-0.05 {
		t.Errorf("bpr final recall %.3f < flood %.3f - 0.05", bpr.FinalRecall, flood.FinalRecall)
	}
	// ...while spending less traffic (answer cache + selective routing).
	if bpr.Msgs >= flood.Msgs {
		t.Errorf("bpr sent %d msgs, flood %d; qroute saved nothing", bpr.Msgs, flood.Msgs)
	}
	// Repair must converge after the correlated burst.
	if bpr.RepairConvergenceRounds < 0 {
		t.Errorf("bpr never reconverged after the burst")
	}
	// The lifecycle machinery actually ran: graceful leaves delivered
	// Depart notices, hints seeded repairs, the cache served hits.
	if bpr.DepartsDelivered == 0 || bpr.HintAdopts == 0 || bpr.Repairs == 0 || bpr.CacheHits == 0 {
		t.Errorf("lifecycle counters flat: %+v", *bpr)
	}
	// The static scheme neither probes nor backfills...
	if bps.Repairs != 0 || bps.HintAdopts != 0 {
		t.Errorf("bps repaired: %+v", *bps)
	}
	// ...and pays for it: its post-burst trough is no better than the
	// repaired flood's.
	if bps.PostBurstMinRecall > flood.PostBurstMinRecall {
		t.Errorf("bps post-burst min %.3f better than repaired flood %.3f",
			bps.PostBurstMinRecall, flood.PostBurstMinRecall)
	}

	// The health engine rode the whole run. Every round produced a recall
	// and repair-rate sample on the simulated clock.
	for _, r := range res.Schemes {
		if r.Health == nil {
			t.Fatalf("%s has no health timeline", r.Scheme)
		}
		for _, series := range []string{"recall", "repair_added_per_s", "alive"} {
			if n := len(r.Health.Series[series]); n != len(r.Samples) {
				t.Errorf("%s health series %s has %d points, want %d",
					r.Scheme, series, n, len(r.Samples))
			}
		}
		// A healthy cache never collapses; the alert must not misfire on
		// cold or quiet windows (bps and flood have no cache at all).
		if hits := r.Health.AlertsFor("cache-hit-collapse"); len(hits) != 0 {
			t.Errorf("%s cache-hit-collapse misfired: %+v", r.Scheme, hits)
		}
	}
	// The burst shows up as alerts with full provenance, then clears:
	// recall-floor on bpr dips after the burst and recovers (the alert
	// view of RepairConvergenceRounds)...
	floor := bpr.Health.AlertsFor("recall-floor")
	if len(floor) < 2 || !floor[0].Firing || floor[0].TMS <= res.BurstAtMS {
		t.Fatalf("bpr recall-floor should first fire after the burst: %+v", floor)
	}
	if last := floor[len(floor)-1]; last.Firing {
		t.Errorf("bpr recall-floor never cleared: %+v", floor)
	}
	if floor[0].Value >= floor[0].Threshold || floor[0].Series != "recall" {
		t.Errorf("recall-floor raise lacks provenance: %+v", floor[0])
	}
	// ...repair-surge catches the burst's backfill spike on the schemes
	// that repair, and clears once the overlay is rebuilt...
	for _, r := range []*ChurnSchemeRun{bpr, flood} {
		surge := r.Health.AlertsFor("repair-surge")
		burstRaise := false
		for _, a := range surge {
			if a.Firing && a.TMS > res.BurstAtMS {
				burstRaise = true
			}
		}
		if !burstRaise {
			t.Errorf("%s repair-surge missed the burst: %+v", r.Scheme, surge)
		}
		if len(surge) == 0 || surge[len(surge)-1].Firing {
			t.Errorf("%s repair-surge never cleared: %+v", r.Scheme, surge)
		}
	}
	// ...while the static scheme repairs nothing and so alerts nothing:
	// erosion is invisible to a repair-rate signal, which is exactly the
	// operational argument for running the reconfigurable scheme.
	if len(bps.Health.AlertsFor("repair-surge")) != 0 {
		t.Errorf("bps raised repair-surge without a repair loop: %+v", bps.Health.Alerts)
	}
}

func TestChurnDeterministic(t *testing.T) {
	p := testChurnParams()
	p.Nodes = 500
	p.Horizon = 45 * time.Second
	p.BurstAt = 24 * time.Second
	a := Churn(p, 7)
	b := Churn(p, 7)
	for i := range a.Schemes {
		ra, rb := a.Schemes[i], b.Schemes[i]
		if ra.Msgs != rb.Msgs || ra.MeanRecall != rb.MeanRecall || len(ra.Samples) != len(rb.Samples) {
			t.Fatalf("scheme %s not reproducible: %+v vs %+v", ra.Scheme, ra, rb)
		}
		for j := range ra.Samples {
			if ra.Samples[j] != rb.Samples[j] {
				t.Fatalf("%s sample %d differs: %+v vs %+v", ra.Scheme, j, ra.Samples[j], rb.Samples[j])
			}
		}
		// The health timeline is part of the reproducible record.
		if len(ra.Health.Alerts) != len(rb.Health.Alerts) {
			t.Fatalf("%s alert count differs: %+v vs %+v", ra.Scheme, ra.Health.Alerts, rb.Health.Alerts)
		}
		for j := range ra.Health.Alerts {
			if ra.Health.Alerts[j] != rb.Health.Alerts[j] {
				t.Fatalf("%s alert %d differs: %+v vs %+v",
					ra.Scheme, j, ra.Health.Alerts[j], rb.Health.Alerts[j])
			}
		}
	}
}
