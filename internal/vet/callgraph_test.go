package vet

import "testing"

const cgPath = "bestpeer/internal/vet/testdata/src/callgraph"

// loadCallgraph builds the program over the two-package callgraph
// fixture (parent + leaf), exercising cross-package loading.
func loadCallgraph(t *testing.T) *Program {
	t.Helper()
	pkgs, err := Load(".", []string{"testdata/src/callgraph/..."})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2 (callgraph + leaf)", len(pkgs))
	}
	return BuildProgram(pkgs)
}

// targetsOf resolves every target of every site in fn to graph nodes.
func targetsOf(pr *Program, fn *FuncNode) map[*FuncNode]EdgeKind {
	out := make(map[*FuncNode]EdgeKind)
	for i := range fn.Sites {
		site := &fn.Sites[i]
		for _, t := range site.Targets {
			if n := pr.NodeOf(t); n != nil {
				out[n] = site.Kind
			}
		}
		for _, l := range site.Lits {
			if n := pr.LitNode(l); n != nil {
				out[n] = site.Kind
			}
		}
	}
	return out
}

// TestCallGraphEdges is the table-driven contract for the substrate:
// each named caller must have an edge of the right kind to each named
// callee.
func TestCallGraphEdges(t *testing.T) {
	pr := loadCallgraph(t)
	cases := []struct {
		caller string
		callee string
		kind   EdgeKind
	}{
		// Generic instantiations — int and string — share one node.
		{"CallsGeneric", "Generic", EdgeStatic},
		// Module-defined interface dispatch fans out to every
		// implementation.
		{"UseIface", "English.Greet", EdgeInterface},
		{"UseIface", "French.Greet", EdgeInterface},
		// A method value is a may-run-later edge.
		{"MethodVal", "English.Greet", EdgeMethodValue},
	}
	for _, c := range cases {
		caller := pr.FuncByName(cgPath, c.caller)
		if caller == nil {
			t.Fatalf("no node for %s", c.caller)
		}
		callee := pr.FuncByName(cgPath, c.callee)
		if callee == nil {
			t.Fatalf("no node for %s", c.callee)
		}
		kind, ok := targetsOf(pr, caller)[callee]
		if !ok {
			t.Errorf("%s: no edge to %s", c.caller, c.callee)
			continue
		}
		if kind != c.kind {
			t.Errorf("%s -> %s: edge kind %v, want %v", c.caller, c.callee, kind, c.kind)
		}
	}
}

// TestCallGraphGenericsShareNode pins that both instantiations of
// Generic resolve to a single origin node (two sites, one target).
func TestCallGraphGenericsShareNode(t *testing.T) {
	pr := loadCallgraph(t)
	caller := pr.FuncByName(cgPath, "CallsGeneric")
	if caller == nil {
		t.Fatal("no node for CallsGeneric")
	}
	if len(caller.Sites) != 2 {
		t.Fatalf("CallsGeneric has %d sites, want 2", len(caller.Sites))
	}
	generic := pr.FuncByName(cgPath, "Generic")
	for i := range caller.Sites {
		callees := pr.staticCallees(&caller.Sites[i])
		if len(callees) != 1 || callees[0] != generic {
			t.Errorf("site %d resolves to %v, want the single Generic origin node", i, callees)
		}
	}
}

// TestCallGraphCrossPackage pins exported-function resolution across
// package boundaries: callgraph.Cross -> leaf.Add.
func TestCallGraphCrossPackage(t *testing.T) {
	pr := loadCallgraph(t)
	caller := pr.FuncByName(cgPath, "Cross")
	add := pr.FuncByName(cgPath+"/leaf", "Add")
	if caller == nil || add == nil {
		t.Fatalf("missing nodes: Cross=%v leaf.Add=%v", caller, add)
	}
	if _, ok := targetsOf(pr, caller)[add]; !ok {
		t.Error("Cross has no static edge to leaf.Add")
	}
}

// TestCallGraphImmediateLiteral pins that an immediately-invoked
// literal is a synchronous edge to its own node.
func TestCallGraphImmediateLiteral(t *testing.T) {
	pr := loadCallgraph(t)
	caller := pr.FuncByName(cgPath, "Immediate")
	if caller == nil {
		t.Fatal("no node for Immediate")
	}
	if len(caller.Sites) != 1 || len(caller.Sites[0].Lits) != 1 {
		t.Fatalf("Immediate sites = %+v, want one literal site", caller.Sites)
	}
	if n := pr.LitNode(caller.Sites[0].Lits[0]); n == nil || n.Body == nil {
		t.Error("literal site does not resolve to a literal node")
	}
}
