package wire

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzDecodeEnvelope: arbitrary bytes must never panic or allocate
// unboundedly, and every successfully decoded envelope must re-encode.
func FuzzDecodeEnvelope(f *testing.F) {
	good, _ := EncodeEnvelope(&Envelope{
		Kind: KindAgent, ID: NewMsgID(), TTL: 7, Hops: 1,
		From: "a:1", To: "b:2", Body: []byte("payload"),
	})
	f.Add(good)
	traced, _ := EncodeEnvelope(&Envelope{
		Kind: KindResult, ID: NewMsgID(), TTL: 3, Hops: 2,
		From: "b:2", To: "base:1", Body: []byte("answers"),
		Trace: &TraceContext{QueryID: NewMsgID(), Base: "base:1"},
		Span:  &TraceSpan{Peer: "b:2", Parent: "a:1", Hop: 2, WaitNS: 100, ExecNS: 2000, Matches: 1, FanOut: 3},
	})
	f.Add(traced)
	// New-encoder corpus: qroute provenance extension, alone and stacked
	// with the trace extensions.
	q := &QRoute{Via: "a:1", Cached: true, Epoch: 9}
	routed, _ := EncodeEnvelope(&Envelope{
		Kind: KindResult, ID: NewMsgID(), TTL: 3, Hops: 2,
		From: "b:2", To: "base:1", Body: []byte("answers"),
		QRoute: q,
	})
	f.Add(routed)
	stacked, _ := EncodeEnvelope(&Envelope{
		Kind: KindAgent, ID: NewMsgID(), TTL: 5, Hops: 1,
		From: "base:1", To: "a:1", Body: []byte("agent"),
		Trace:  &TraceContext{QueryID: NewMsgID(), Base: "base:1"},
		QRoute: &QRoute{Via: "a:1"},
	})
	f.Add(stacked)
	// Old-decoder/new-encoder corpus: the same qroute record under an
	// unassigned tag, which is how a pre-qroute decoder sees tag 3 —
	// the decoder must skip it and keep every legacy field.
	oldView := append([]byte(nil), routed...)
	if oldView[4] == 0 { // uncompressed: the qroute record is last
		oldView[len(oldView)-len(encodeQRoute(q))-extHeaderSize] = 200
	}
	f.Add(oldView)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 0})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := DecodeEnvelope(data)
		if err != nil {
			return
		}
		re, err := EncodeEnvelope(env)
		if err != nil {
			t.Fatalf("decoded envelope failed to re-encode: %v", err)
		}
		back, err := DecodeEnvelope(re)
		if err != nil {
			t.Fatalf("re-encoded envelope failed to decode: %v", err)
		}
		if back.Kind != env.Kind || back.ID != env.ID || !bytes.Equal(back.Body, env.Body) {
			t.Fatal("re-encode round trip changed the envelope")
		}
		if !reflect.DeepEqual(back.Trace, env.Trace) || !reflect.DeepEqual(back.Span, env.Span) {
			t.Fatal("re-encode round trip changed the trace extensions")
		}
		if !reflect.DeepEqual(back.QRoute, env.QRoute) {
			t.Fatal("re-encode round trip changed the qroute extension")
		}
	})
}

// FuzzDecoder: the payload decoder must survive arbitrary inputs.
func FuzzDecoder(f *testing.F) {
	var e Encoder
	e.String("s")
	e.Uvarint(7)
	e.Bytes2([]byte{1, 2})
	f.Add(e.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		_ = d.String()
		_ = d.Uvarint()
		_ = d.Bytes2()
		_ = d.BPID()
		_ = d.Float64()
		_ = d.Finish()
	})
}
