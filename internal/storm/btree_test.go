package storm

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"
)

func newTree(t *testing.T, frames int) (*BTree, *BufferPool) {
	t.Helper()
	f, err := CreateFile(filepath.Join(t.TempDir(), "t.storm"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	pool := NewBufferPool(f, frames, NewLRU())
	tr, err := NewBTree(pool)
	if err != nil {
		t.Fatal(err)
	}
	return tr, pool
}

func TestBTreeEmpty(t *testing.T) {
	tr, _ := newTree(t, 8)
	if _, found, err := tr.Get("missing"); err != nil || found {
		t.Fatalf("empty get: found=%v err=%v", found, err)
	}
	if n, err := tr.Len(); err != nil || n != 0 {
		t.Fatalf("empty len = %d, %v", n, err)
	}
	if ok, err := tr.Delete("missing"); err != nil || ok {
		t.Fatalf("empty delete: %v %v", ok, err)
	}
}

func TestBTreePutGetFewKeys(t *testing.T) {
	tr, _ := newTree(t, 8)
	keys := []string{"mango", "apple", "cherry", "banana"}
	for i, k := range keys {
		if err := tr.Put(k, OID{Page: PageID(i + 1), Slot: Slot(i)}); err != nil {
			t.Fatalf("put %s: %v", k, err)
		}
	}
	for i, k := range keys {
		oid, found, err := tr.Get(k)
		if err != nil || !found {
			t.Fatalf("get %s: found=%v err=%v", k, found, err)
		}
		if oid.Page != PageID(i+1) || oid.Slot != Slot(i) {
			t.Fatalf("get %s = %v", k, oid)
		}
	}
	if _, found, _ := tr.Get("durian"); found {
		t.Fatal("phantom key")
	}
}

func TestBTreeReplace(t *testing.T) {
	tr, _ := newTree(t, 8)
	tr.Put("k", OID{Page: 1, Slot: 2})
	tr.Put("k", OID{Page: 9, Slot: 7})
	oid, found, _ := tr.Get("k")
	if !found || oid.Page != 9 || oid.Slot != 7 {
		t.Fatalf("replace failed: %v", oid)
	}
	if n, _ := tr.Len(); n != 1 {
		t.Fatalf("replace duplicated: len=%d", n)
	}
}

func TestBTreeManyKeysSplits(t *testing.T) {
	tr, pool := newTree(t, 64)
	const n = 5000
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%06d", i*7919%n)
		if err := tr.Put(key, OID{Page: PageID(i + 1), Slot: Slot(i % 100)}); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if count, err := tr.Len(); err != nil || count != n {
		t.Fatalf("len = %d, %v", count, err)
	}
	// The tree must have grown past a single leaf.
	if tr.Root() == InvalidPage {
		t.Fatal("invalid root")
	}
	for i := 0; i < n; i += 97 {
		key := fmt.Sprintf("key-%06d", i*7919%n)
		oid, found, err := tr.Get(key)
		if err != nil || !found {
			t.Fatalf("get %s after splits: %v %v", key, found, err)
		}
		if oid.Page != PageID(i+1) {
			t.Fatalf("get %s = %v, want page %d", key, oid, i+1)
		}
	}
	_ = pool
}

func TestBTreeAscendSorted(t *testing.T) {
	tr, _ := newTree(t, 32)
	var keys []string
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 800; i++ {
		k := fmt.Sprintf("k%05d", rng.Intn(100000))
		keys = append(keys, k)
		tr.Put(k, OID{Page: 1, Slot: 0})
	}
	sort.Strings(keys)
	uniq := keys[:0]
	for i, k := range keys {
		if i == 0 || keys[i-1] != k {
			uniq = append(uniq, k)
		}
	}
	var got []string
	if err := tr.Ascend(func(k string, _ OID) bool {
		got = append(got, k)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(uniq) {
		t.Fatalf("ascend saw %d keys, want %d", len(got), len(uniq))
	}
	for i := range got {
		if got[i] != uniq[i] {
			t.Fatalf("ascend order wrong at %d: %s != %s", i, got[i], uniq[i])
		}
	}
	// Early stop.
	count := 0
	tr.Ascend(func(string, OID) bool { count++; return count < 5 })
	if count != 5 {
		t.Fatalf("early stop failed: %d", count)
	}
}

func TestBTreeDelete(t *testing.T) {
	tr, _ := newTree(t, 32)
	for i := 0; i < 1000; i++ {
		tr.Put(fmt.Sprintf("k%04d", i), OID{Page: PageID(i + 1)})
	}
	for i := 0; i < 1000; i += 2 {
		ok, err := tr.Delete(fmt.Sprintf("k%04d", i))
		if err != nil || !ok {
			t.Fatalf("delete %d: %v %v", i, ok, err)
		}
	}
	for i := 0; i < 1000; i++ {
		_, found, err := tr.Get(fmt.Sprintf("k%04d", i))
		if err != nil {
			t.Fatal(err)
		}
		if found != (i%2 == 1) {
			t.Fatalf("key %d: found=%v", i, found)
		}
	}
	if n, _ := tr.Len(); n != 500 {
		t.Fatalf("len after deletes = %d", n)
	}
}

func TestBTreeKeyTooLong(t *testing.T) {
	tr, _ := newTree(t, 8)
	long := string(make([]byte, MaxKeyLen+1))
	if err := tr.Put(long, OID{}); err != ErrKeyTooLong {
		t.Fatalf("put long key: %v", err)
	}
	if _, _, err := tr.Get(long); err != ErrKeyTooLong {
		t.Fatalf("get long key: %v", err)
	}
	if _, err := tr.Delete(long); err != ErrKeyTooLong {
		t.Fatalf("delete long key: %v", err)
	}
	// Exactly MaxKeyLen works.
	max := string(bytesOf('a', MaxKeyLen))
	if err := tr.Put(max, OID{Page: 1}); err != nil {
		t.Fatalf("max key: %v", err)
	}
	if _, found, _ := tr.Get(max); !found {
		t.Fatal("max key lost")
	}
}

func bytesOf(c byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	return b
}

func TestBTreePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bt.storm")
	f, err := CreateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewBufferPool(f, 32, NewLRU())
	tr, err := NewBTree(pool)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		tr.Put(fmt.Sprintf("name-%05d", i), OID{Page: PageID(i + 1), Slot: Slot(i % 9)})
	}
	if err := f.SetMetaRoot(tr.Root()); err != nil {
		t.Fatal(err)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	g, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if g.MetaRoot() == InvalidPage {
		t.Fatal("meta root lost")
	}
	pool2 := NewBufferPool(g, 32, NewLRU())
	tr2 := OpenBTree(pool2, g.MetaRoot())
	if n, err := tr2.Len(); err != nil || n != 2000 {
		t.Fatalf("reopened len = %d, %v", n, err)
	}
	oid, found, err := tr2.Get("name-01234")
	if err != nil || !found || oid.Page != 1235 {
		t.Fatalf("reopened get = %v %v %v", oid, found, err)
	}
}

func TestBTreeTinyPoolStillWorks(t *testing.T) {
	// Descents pin one page at a time, so even a 3-frame pool suffices.
	tr, _ := newTree(t, 3)
	for i := 0; i < 1500; i++ {
		if err := tr.Put(fmt.Sprintf("z%06d", i), OID{Page: PageID(i + 1)}); err != nil {
			t.Fatalf("put %d under tiny pool: %v", i, err)
		}
	}
	for i := 0; i < 1500; i += 119 {
		if _, found, err := tr.Get(fmt.Sprintf("z%06d", i)); err != nil || !found {
			t.Fatalf("get %d under tiny pool: %v %v", i, found, err)
		}
	}
}

// Property: the tree agrees with a shadow map under random operations.
func TestBTreeShadowModel(t *testing.T) {
	f := func(seed int64) bool {
		file, err := CreateFile(filepath.Join(t.TempDir(), "q.storm"))
		if err != nil {
			return false
		}
		defer file.Close()
		pool := NewBufferPool(file, 16, NewLRU())
		tr, err := NewBTree(pool)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		shadow := make(map[string]OID)
		for op := 0; op < 600; op++ {
			key := fmt.Sprintf("k%03d", rng.Intn(150))
			switch rng.Intn(4) {
			case 0, 1: // put
				oid := OID{Page: PageID(rng.Intn(1000) + 1), Slot: Slot(rng.Intn(50))}
				if tr.Put(key, oid) != nil {
					return false
				}
				shadow[key] = oid
			case 2: // delete
				ok, err := tr.Delete(key)
				if err != nil {
					return false
				}
				_, existed := shadow[key]
				if ok != existed {
					return false
				}
				delete(shadow, key)
			case 3: // get
				oid, found, err := tr.Get(key)
				if err != nil {
					return false
				}
				want, existed := shadow[key]
				if found != existed || (found && oid != want) {
					return false
				}
			}
		}
		n, err := tr.Len()
		if err != nil || n != len(shadow) {
			return false
		}
		// Full agreement via Ascend.
		seen := 0
		err = tr.Ascend(func(k string, oid OID) bool {
			want, ok := shadow[k]
			if !ok || want != oid {
				return false
			}
			seen++
			return true
		})
		return err == nil && seen == len(shadow)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestBTreeAscendRange(t *testing.T) {
	tr, _ := newTree(t, 16)
	for i := 0; i < 100; i++ {
		tr.Put(fmt.Sprintf("r%03d", i), OID{Page: PageID(i + 1)})
	}
	var got []string
	if err := tr.AscendRange("r010", "r015", func(k string, _ OID) bool {
		got = append(got, k)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"r010", "r011", "r012", "r013", "r014"}
	if len(got) != len(want) {
		t.Fatalf("range = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range = %v", got)
		}
	}
	// Open-ended range.
	count := 0
	tr.AscendRange("r095", "", func(string, OID) bool { count++; return true })
	if count != 5 {
		t.Fatalf("open range = %d", count)
	}
	// Early stop.
	count = 0
	tr.AscendRange("", "", func(string, OID) bool { count++; return count < 3 })
	if count != 3 {
		t.Fatalf("early stop = %d", count)
	}
}

func TestBTreeAscendPrefix(t *testing.T) {
	tr, _ := newTree(t, 16)
	for _, k := range []string{"apple", "apply", "ape", "banana", "appzzz", "aq"} {
		tr.Put(k, OID{Page: 1})
	}
	var got []string
	if err := tr.AscendPrefix("app", func(k string, _ OID) bool {
		got = append(got, k)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != "apple" || got[1] != "apply" || got[2] != "appzzz" {
		t.Fatalf("prefix scan = %v", got)
	}
	// Empty prefix scans all.
	count := 0
	tr.AscendPrefix("", func(string, OID) bool { count++; return true })
	if count != 6 {
		t.Fatalf("empty prefix = %d", count)
	}
	// 0xFF prefix edge case.
	tr.Put("\xff\xff", OID{Page: 2})
	count = 0
	tr.AscendPrefix("\xff", func(string, OID) bool { count++; return true })
	if count != 1 {
		t.Fatalf("0xFF prefix = %d", count)
	}
}
