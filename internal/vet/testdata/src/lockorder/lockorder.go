// Package lockorder is a bpvet fixture for the inter-procedural
// deadlock analyzer: AB/BA inversions, same-mutex re-entry (direct and
// through a callee), and the shapes that must stay silent.
package lockorder

import "sync"

type server struct {
	mu sync.Mutex
	db sync.Mutex
}

// abPath acquires db while holding mu; together with baPath below this
// is the classic inversion. The cycle is reported once, at this edge
// (the lexically-first witness).
func (s *server) abPath() {
	s.mu.Lock()
	s.db.Lock() // want `lock-order cycle`
	s.db.Unlock()
	s.mu.Unlock()
}

func (s *server) baPath() {
	s.db.Lock()
	s.mu.Lock()
	s.mu.Unlock()
	s.db.Unlock()
}

// reenter locks the same class twice in one body.
func (s *server) reenter() {
	s.mu.Lock()
	s.mu.Lock() // want `self-deadlock`
	s.mu.Unlock()
	s.mu.Unlock()
}

// outer calls into a function that acquires the lock outer still holds.
func (s *server) outer() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.locked() // want `self-deadlock`
}

func (s *server) locked() {
	s.mu.Lock()
	defer s.mu.Unlock()
}

// deep re-enters through two call levels: outer2 -> middle -> locked.
func (s *server) deep() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.middle() // want `self-deadlock`
}

func (s *server) middle() { s.locked() }

type rw struct {
	m sync.RWMutex
}

// sharedOK: RLock under RLock on the same RWMutex is legal — no finding.
func (r *rw) sharedOK() {
	r.m.RLock()
	r.readAgain()
	r.m.RUnlock()
}

func (r *rw) readAgain() {
	r.m.RLock()
	r.m.RUnlock()
}

// writeUnderRead: an exclusive Lock while a shared hold is in place is
// still a self-deadlock.
func (r *rw) writeUnderRead() {
	r.m.RLock()
	defer r.m.RUnlock()
	r.write() // want `self-deadlock`
}

func (r *rw) write() {
	r.m.Lock()
	r.m.Unlock()
}

// handoff releases before calling — no finding.
func (s *server) handoff() {
	s.mu.Lock()
	s.mu.Unlock()
	s.locked()
}

// spawned runs the locking callee on its own goroutine: no synchronous
// edge, no finding from lockorder (goleak owns go-statement rules).
func (s *server) spawned(wg *sync.WaitGroup) {
	s.mu.Lock()
	defer s.mu.Unlock()
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.locked()
	}()
}
