// Command bpvet runs the project's invariant analyzers over the given
// packages and exits non-zero when any finding survives suppression.
//
// Usage:
//
//	bpvet [-list] [packages]
//
// Packages follow the subset of go-tool patterns the repo uses: a
// directory path or a recursive ./... pattern (the default). Findings
// print as "file:line: [analyzer] message"; suppress an intentional
// violation with a `//bpvet:ignore <analyzer> rationale` comment on the
// offending line or the line above it.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"bestpeer/internal/vet"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of main: 0 clean, 1 findings, 2 usage or
// load failure.
func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("bpvet", flag.ContinueOnError)
	fs.SetOutput(errOut)
	list := fs.Bool("list", false, "list the analyzers and their rules, then exit")
	dir := fs.String("dir", ".", "directory to resolve package patterns against")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range vet.All() {
			fmt.Fprintf(out, "%-14s %s\n", a.Name(), a.Doc())
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := vet.Load(*dir, patterns)
	if err != nil {
		fmt.Fprintln(errOut, "bpvet:", err)
		return 2
	}
	diags := vet.Run(pkgs, vet.All())
	for _, d := range diags {
		fmt.Fprintf(out, "%s:%d: [%s] %s\n", relPath(*dir, d.Pos.Filename), d.Pos.Line, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(errOut, "bpvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// relPath shortens filenames to be relative to the working directory
// when possible, keeping output stable across checkouts.
func relPath(dir, filename string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return filename
	}
	rel, err := filepath.Rel(abs, filename)
	if err != nil || rel == "" {
		return filename
	}
	return rel
}
