package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"bestpeer/internal/reconfig"
	"bestpeer/internal/topology"
	"bestpeer/internal/workload"
)

func testParams(seed int64) Params {
	spec := workload.Default(seed)
	return Params{
		Cost:        DefaultCost(),
		Spec:        spec,
		Query:       spec.Keyword(7),
		MaxPeers:    8,
		IncludeData: true,
	}
}

// Answer conservation: every scheme must deliver exactly the matches that
// exist at reachable nodes.
func TestSchemesDeliverAllAnswers(t *testing.T) {
	p := testParams(1)
	tops := map[string]*topology.Topology{
		"star": topology.Star(16),
		"tree": topology.Tree(16, 2),
		"line": topology.Line(16),
	}
	for name, tp := range tops {
		want := expectedAnswers(tp, p.Spec, p.Query, 64)
		if want == 0 {
			t.Fatalf("%s: workload produced no matches", name)
		}
		if got := RunCS(tp, p, false).TotalAnswers; got != want {
			t.Errorf("%s MCS answers = %d, want %d", name, got, want)
		}
		if got := RunCS(tp, p, true).TotalAnswers; got != want {
			t.Errorf("%s SCS answers = %d, want %d", name, got, want)
		}
		for _, strat := range []reconfig.Strategy{reconfig.Static{}, reconfig.MaxCount{}, reconfig.MinHops{}} {
			runs := RunBestPeer(tp, p, 3, strat)
			for r, res := range runs {
				if res.TotalAnswers != want {
					t.Errorf("%s BP(%s) round %d answers = %d, want %d",
						name, strat.Name(), r, res.TotalAnswers, want)
				}
			}
		}
		for r, res := range RunGnutella(tp, p, 2) {
			if res.TotalAnswers != want {
				t.Errorf("%s GNU round %d answers = %d, want %d", name, r, res.TotalAnswers, want)
			}
		}
	}
}

func TestSimulationsDeterministic(t *testing.T) {
	p := testParams(5)
	tp := topology.Tree(24, 2)
	a := RunBestPeer(tp, p, 3, reconfig.MaxCount{})
	b := RunBestPeer(tp, p, 3, reconfig.MaxCount{})
	for r := range a {
		if a[r].Completion != b[r].Completion || a[r].TotalAnswers != b[r].TotalAnswers {
			t.Fatalf("round %d nondeterministic: %v vs %v", r, a[r].Completion, b[r].Completion)
		}
	}
	if RunCS(tp, p, false).Completion != RunCS(tp, p, false).Completion {
		t.Fatal("CS nondeterministic")
	}
}

func TestTTLLimitsReach(t *testing.T) {
	p := testParams(2)
	p.TTL = 3
	tp := topology.Line(10)
	want := expectedAnswers(tp, p.Spec, p.Query, 3)
	all := expectedAnswers(tp, p.Spec, p.Query, 64)
	if want >= all {
		t.Skip("workload has no matches beyond hop 3")
	}
	got := RunBestPeer(tp, p, 1, reconfig.Static{})[0].TotalAnswers
	if got != want {
		t.Fatalf("TTL-limited answers = %d, want %d (full = %d)", got, want, all)
	}
}

// Fig 5(a) shape: SCS degrades sharply; MCS and BP-based schemes stay
// close; BPS == BPR on a star.
func TestFig5aShape(t *testing.T) {
	fig := Fig5a(DefaultCost(), 1)
	scs, _ := fig.SeriesByName("SCS").YAt(32)
	mcs, _ := fig.SeriesByName("MCS").YAt(32)
	bps, _ := fig.SeriesByName("BPS").YAt(32)
	bpr, _ := fig.SeriesByName("BPR").YAt(32)
	if scs < 4*mcs {
		t.Errorf("SCS (%v) should be far worse than MCS (%v) at 32 nodes", scs, mcs)
	}
	if mcs > bps {
		t.Errorf("MCS (%v) should be at least as good as BPS (%v) on a star", mcs, bps)
	}
	if diff := bps - bpr; diff < 0 {
		diff = -diff
	} else if diff/bps > 0.05 {
		t.Errorf("BPS (%v) and BPR (%v) should coincide on a star", bps, bpr)
	}
}

// Fig 5(b) shape: CS wins at level 1 (query-shipping beats code-shipping
// on a flat network) but degrades with depth; BPR < BPS < CS at level 5.
func TestFig5bShape(t *testing.T) {
	fig := Fig5b(DefaultCost(), 1)
	cs1, _ := fig.SeriesByName("CS").YAt(1)
	bps1, _ := fig.SeriesByName("BPS").YAt(1)
	if cs1 > bps1 {
		t.Errorf("level 1: CS (%v) should beat BPS (%v) — agent overhead", cs1, bps1)
	}
	cs5, _ := fig.SeriesByName("CS").YAt(5)
	bps5, _ := fig.SeriesByName("BPS").YAt(5)
	bpr5, _ := fig.SeriesByName("BPR").YAt(5)
	if bps5 > cs5 {
		t.Errorf("level 5: BPS (%v) should beat CS (%v) — path returns hurt CS", bps5, cs5)
	}
	if bpr5 >= bps5 {
		t.Errorf("level 5: BPR (%v) should beat BPS (%v) — reconfiguration", bpr5, bps5)
	}
}

// Fig 5(c) shape: on a deep line, BPR < BPS < CS.
func TestFig5cShape(t *testing.T) {
	fig := Fig5c(DefaultCost(), 1)
	cs, _ := fig.SeriesByName("CS").YAt(32)
	bps, _ := fig.SeriesByName("BPS").YAt(32)
	bpr, _ := fig.SeriesByName("BPR").YAt(32)
	if bps > cs {
		t.Errorf("line 32: BPS (%v) should beat CS (%v)", bps, cs)
	}
	if bpr >= bps {
		t.Errorf("line 32: BPR (%v) should beat BPS (%v)", bpr, bps)
	}
}

// Fig 6 shape: CS responds first (cheap query shipping) but BPR reaches
// full coverage earlier; every scheme eventually hears from all 31
// non-base nodes.
func TestFig6Shape(t *testing.T) {
	fig := Fig6(DefaultCost(), 1)
	cs := fig.SeriesByName("CS")
	bps := fig.SeriesByName("BPS")
	bpr := fig.SeriesByName("BPR")
	for _, s := range []*Series{cs, bps, bpr} {
		if s.Last().Y != 31 {
			t.Errorf("%s reached %v nodes, want 31", s.Name, s.Last().Y)
		}
	}
	if cs.Points[0].X > bps.Points[0].X {
		t.Errorf("CS first response (%v ms) should precede BPS (%v ms)",
			cs.Points[0].X, bps.Points[0].X)
	}
	if bpr.Last().X >= bps.Last().X {
		t.Errorf("BPR completion (%v) should precede BPS (%v)", bpr.Last().X, bps.Last().X)
	}
	if bpr.Last().X >= cs.Last().X {
		t.Errorf("BPR completion (%v) should precede CS (%v)", bpr.Last().X, cs.Last().X)
	}
}

// Fig 7 shape: all schemes converge to the same answer count; CS leads
// early, BP-based schemes overtake.
func TestFig7Shape(t *testing.T) {
	fig := Fig7(DefaultCost(), 1)
	cs := fig.SeriesByName("CS")
	bps := fig.SeriesByName("BPS")
	bpr := fig.SeriesByName("BPR")
	if cs.Last().Y != bps.Last().Y || bps.Last().Y != bpr.Last().Y {
		t.Errorf("answer totals diverge: CS=%v BPS=%v BPR=%v",
			cs.Last().Y, bps.Last().Y, bpr.Last().Y)
	}
	if cs.Points[0].X > bps.Points[0].X {
		t.Errorf("CS first answer (%v) should precede BPS (%v)", cs.Points[0].X, bps.Points[0].X)
	}
	if bpr.Last().X >= cs.Last().X {
		t.Errorf("BPR last answer (%v) should precede CS (%v)", bpr.Last().X, cs.Last().X)
	}
}

// Fig 8(a) shape: Gnutella flat across runs; BP run 1 expensive, runs
// 2..4 sharply cheaper and below Gnutella.
func TestFig8aShape(t *testing.T) {
	fig := Fig8a(DefaultCost(), 1)
	bp := fig.SeriesByName("BP")
	gnu := fig.SeriesByName("Gnutella")
	gmin, gmax := gnu.Points[0].Y, gnu.Points[0].Y
	for _, pt := range gnu.Points {
		if pt.Y < gmin {
			gmin = pt.Y
		}
		if pt.Y > gmax {
			gmax = pt.Y
		}
	}
	if gmax/gmin > 1.05 {
		t.Errorf("Gnutella not flat across runs: min=%v max=%v", gmin, gmax)
	}
	run1 := bp.Points[0].Y
	for _, pt := range bp.Points[1:] {
		if pt.Y >= run1 {
			t.Errorf("BP run %v (%v) not faster than run 1 (%v)", pt.X, pt.Y, run1)
		}
		if pt.Y >= gmin {
			t.Errorf("BP warm run %v (%v) not faster than Gnutella (%v)", pt.X, pt.Y, gmin)
		}
	}
}

// Fig 8(b) shape: BP mean completion below Gnutella at every peer budget.
func TestFig8bShape(t *testing.T) {
	fig := Fig8b(DefaultCost(), 1)
	bp := fig.SeriesByName("BP")
	gnu := fig.SeriesByName("Gnutella")
	for i := range bp.Points {
		if bp.Points[i].Y >= gnu.Points[i].Y {
			t.Errorf("budget %v: BP (%v) not below Gnutella (%v)",
				bp.Points[i].X, bp.Points[i].Y, gnu.Points[i].Y)
		}
	}
	// More peers help both schemes overall (first vs last).
	if bp.Last().Y > bp.Points[0].Y {
		t.Errorf("BP did not improve with more peers: %v -> %v", bp.Points[0].Y, bp.Last().Y)
	}
}

func TestAblationStrategiesShape(t *testing.T) {
	fig := AblationStrategies(DefaultCost(), 1)
	static := fig.SeriesByName("static")
	maxcount := fig.SeriesByName("maxcount")
	minhops := fig.SeriesByName("minhops")
	// Static is flat; both reconfiguring strategies improve on round 1.
	if static.Points[0].Y != static.Last().Y {
		t.Errorf("static strategy changed across rounds: %+v", static.Points)
	}
	for _, s := range []*Series{maxcount, minhops} {
		if s.Last().Y >= s.Points[0].Y {
			t.Errorf("%s did not improve: %v -> %v", s.Name, s.Points[0].Y, s.Last().Y)
		}
		if s.Last().Y >= static.Last().Y {
			t.Errorf("%s (%v) not better than static (%v)", s.Name, s.Last().Y, static.Last().Y)
		}
	}
}

func TestAblationCompressionHelps(t *testing.T) {
	fig := AblationCompression(DefaultCost(), 1)
	off, _ := fig.Series[0].YAt(0)
	on, _ := fig.Series[0].YAt(1)
	if on >= off {
		t.Errorf("gzip on (%v) not faster than off (%v)", on, off)
	}
}

func TestAblationColdClassCost(t *testing.T) {
	fig := AblationColdClass(DefaultCost(), 1)
	cold, _ := fig.Series[0].YAt(1)
	warm, _ := fig.Series[0].YAt(2)
	if warm >= cold {
		t.Errorf("warm round (%v) not faster than cold round (%v)", warm, cold)
	}
}

func TestAblationResultMode(t *testing.T) {
	fig := AblationResultMode(DefaultCost(), 1)
	data, _ := fig.Series[0].YAt(1)
	names, _ := fig.Series[0].YAt(2)
	if names >= data {
		t.Errorf("names-only (%v) not faster than full data (%v)", names, data)
	}
}

func TestAblationShippingShape(t *testing.T) {
	fig := AblationShipping(DefaultCost(), 1)
	code := fig.SeriesByName("code-ship")
	data := fig.SeriesByName("data-ship")
	for i := range code.Points {
		if data.Points[i].Y <= code.Points[i].Y {
			t.Errorf("n=%v: data-shipping (%v) should be slower than code-shipping (%v)",
				code.Points[i].X, data.Points[i].Y, code.Points[i].Y)
		}
	}
	// The gap widens with network size: shipped stores scale with n.
	gapFirst := data.Points[0].Y / code.Points[0].Y
	gapLast := data.Last().Y / code.Last().Y
	if gapLast <= gapFirst {
		t.Errorf("data-shipping gap did not widen: %.2fx -> %.2fx", gapFirst, gapLast)
	}
}

func TestDataShipConservesAnswers(t *testing.T) {
	p := testParams(1)
	p.DataShip = true
	tp := topology.Tree(12, 2)
	want := expectedAnswers(tp, p.Spec, p.Query, 64)
	got := RunBestPeer(tp, p, 1, reconfig.Static{})[0].TotalAnswers
	if got != want {
		t.Fatalf("data-ship answers = %d, want %d", got, want)
	}
}

func TestRenderProducesTable(t *testing.T) {
	fig := &Figure{
		ID: "t", Title: "test", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "a", Points: []Point{{1, 10}, {2, 20}}},
			{Name: "b", Points: []Point{{1, 11}}},
		},
	}
	var buf bytes.Buffer
	fig.Render(&buf)
	out := buf.String()
	for _, want := range []string{"Figure t", "a", "b", "10", "20", "11"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestCostModelHelpers(t *testing.T) {
	c := DefaultCost()
	if c.compressed(1000) >= 1000 {
		t.Fatal("compression did not shrink")
	}
	c.Compression = 1.0
	if c.compressed(1000) != 1000 {
		t.Fatal("ratio 1.0 should be identity")
	}
	c.Compression = 0
	if c.compressed(1000) != 1000 {
		t.Fatal("ratio 0 should be identity (disabled)")
	}
	if c.scanCost(1000) != 1000*c.MatchPerObject {
		t.Fatal("scan cost wrong")
	}
	if c.resultSize(0, 1024, true) != 0 {
		t.Fatal("zero hits should cost nothing")
	}
	if c.resultSize(3, 1024, true) <= c.resultSize(3, 1024, false) {
		t.Fatal("data results should dwarf name results")
	}
}

func TestRunResultEventsSorted(t *testing.T) {
	p := testParams(3)
	tp := topology.Tree(16, 2)
	res := RunBestPeer(tp, p, 1, reconfig.Static{})[0]
	for i := 1; i < len(res.Events); i++ {
		if res.Events[i].At < res.Events[i-1].At {
			t.Fatal("events not time-sorted")
		}
	}
	if res.Completion != res.Events[len(res.Events)-1].At {
		t.Fatal("completion != last event time")
	}
	if res.Msgs == 0 || res.Bytes == 0 {
		t.Fatal("traffic counters empty")
	}
	_ = time.Duration(0)
}

func TestTrafficTableShape(t *testing.T) {
	fig := TrafficTable(DefaultCost(), 1)
	cs := fig.SeriesByName("CS")
	bps := fig.SeriesByName("BPS")
	// On the star (x=1) answers travel one hop for both, so traffic is
	// comparable; on the line (x=3) CS re-transmits every answer at every
	// hop and must dwarf BestPeer.
	csLine, _ := cs.YAt(3)
	bpsLine, _ := bps.YAt(3)
	if csLine < 4*bpsLine {
		t.Errorf("line: CS traffic (%v KB) should dwarf BPS (%v KB)", csLine, bpsLine)
	}
	csStar, _ := cs.YAt(1)
	bpsStar, _ := bps.YAt(1)
	if csStar > bpsStar {
		t.Errorf("star: CS traffic (%v KB) should not exceed BPS (%v KB) — agents are bigger than queries", csStar, bpsStar)
	}
	// CS traffic grows with depth.
	csTree, _ := cs.YAt(2)
	if !(csStar < csTree && csTree < csLine) {
		t.Errorf("CS traffic not increasing with depth: %v, %v, %v", csStar, csTree, csLine)
	}
}
