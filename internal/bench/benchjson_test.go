package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"bestpeer/internal/reconfig"
	"bestpeer/internal/topology"
)

// TestLiveMetricsSectionAccountsForTraffic runs one live round and checks
// the report's metrics section reflects it: messages flowed, agents
// executed, and the base's answer-hop histogram saw every answer batch.
func TestLiveMetricsSectionAccountsForTraffic(t *testing.T) {
	spec := liveSpec()
	query := spec.Keyword(2)
	lc, err := NewLiveCluster(topology.Star(4), spec, query, reconfig.Static{}, 6)
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	if _, err := lc.RunRound(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	m := lc.Metrics()
	if m.MessagesSent == 0 {
		t.Fatal("metrics section shows no messages sent after a live round")
	}
	if m.AgentsExecuted == 0 {
		t.Fatal("metrics section shows no agents executed")
	}
	if m.Base == nil || m.Base.Family("bestpeer_node_answer_hops") == nil {
		t.Fatal("base registry snapshot missing the answer-hop histogram")
	}
	var batches uint64
	for _, b := range m.AnswerHops {
		if b.Count > batches {
			batches = b.Count
		}
	}
	if batches == 0 {
		t.Fatal("answer-hop histogram recorded no batches")
	}
}

// TestReportWriteFile round-trips a report through JSON and checks the
// metrics section survives.
func TestReportWriteFile(t *testing.T) {
	spec := liveSpec()
	query := spec.Keyword(2)
	lc, err := NewLiveCluster(topology.Star(4), spec, query, reconfig.Static{}, 6)
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	res, err := lc.RunRound(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}

	run := &SchemeRun{Scheme: "static"}
	run.AddRound(res)
	run.Metrics = lc.Metrics()
	rep := &Report{Seed: 11, Live: []*SchemeRun{run}}
	rep.Figures = append(rep.Figures, Fig5a(DefaultCost(), 1))

	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(back.Live) != 1 || back.Live[0].Metrics.MessagesSent == 0 {
		t.Fatalf("metrics section lost in round-trip: %+v", back.Live)
	}
	if len(back.Figures) != 1 || len(back.Figures[0].Series) == 0 {
		t.Fatal("figures lost in round-trip")
	}
	if len(back.Live[0].Rounds) != 1 || back.Live[0].Rounds[0].Answers != res.TotalAnswers {
		t.Fatalf("rounds lost in round-trip: %+v", back.Live[0].Rounds)
	}
}
