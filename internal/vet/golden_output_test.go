package vet

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// update rewrites the golden output files instead of comparing against
// them. CI runs the comparison and then `git diff --exit-code` on the
// golden directory, so a contributor who regenerates without reviewing
// the diff still can't land drift silently.
var update = flag.Bool("update", false, "rewrite testdata/golden output files")

// fixtureOutput renders one analyzer's findings over its fixture in the
// driver's canonical text form, with paths trimmed to the fixture tree
// so the output is checkout-independent.
func fixtureOutput(pkg *Package, a Analyzer) string {
	diags := Run([]*Package{pkg}, []Analyzer{a})
	var b strings.Builder
	for _, d := range diags {
		name := filepath.ToSlash(d.Pos.Filename)
		if i := strings.Index(name, "testdata/"); i >= 0 {
			name = name[i:]
		}
		fmt.Fprintf(&b, "%s:%d: [%s] %s\n", name, d.Pos.Line, d.Analyzer, d.Message)
	}
	return b.String()
}

// TestFixtureGolden pins each analyzer's full rendered output over its
// fixture to a committed golden file. Unlike the // want comparison,
// this catches wording and ordering drift, not just missing findings.
// Regenerate with:
//
//	go test ./internal/vet/ -run TestFixtureGolden -update
func TestFixtureGolden(t *testing.T) {
	names := []string{
		"lockedsend", "nakedgo", "blockingsend", "busypoll", "droppederr", "ttlpair",
		"statsdrift", "eventdrift", "lockorder", "goleak", "codecdrift",
	}
	fixtures := loadFixtures(t, names...)
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			pkg := fixtures[name]
			if pkg == nil {
				t.Fatalf("fixture package %q not loaded", name)
			}
			got := fixtureOutput(pkg, analyzerByName(t, name))
			golden := filepath.Join("testdata", "golden", name+".txt")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("analyzer output drifted from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}
		})
	}
}
