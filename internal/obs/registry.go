// Package obs is the system's observability layer: a dependency-free
// metrics registry (counters, gauges, fixed-bucket histograms with a
// lock-free hot path), a per-query hop tracer, and the admin HTTP
// endpoint that exposes both.
//
// The registry follows the Prometheus data model in miniature: metrics
// belong to named families, a family has one type and help string, and
// instances within a family are distinguished by label pairs. Handles
// returned by Counter/Gauge/Histogram are cached by callers and updated
// with single atomic operations, so instrumenting a hot path costs one
// uncontended atomic add. Exposition (Snapshot, Prometheus text, JSON)
// walks the registry under a lock — scrapes are rare, updates are not.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one key=value metric dimension.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing metric. The zero value is unusable;
// obtain counters from a Registry.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates observations into fixed buckets. Buckets are
// upper bounds in ascending order; an implicit +Inf bucket catches the
// rest. Observe is lock-free: one atomic add on the bucket, one on the
// count, and a CAS loop on the float sum.
//
// Each bucket additionally retains one exemplar — the identifier passed
// to the most recent ObserveExemplar that landed in it — so a scrape of
// a fat-tail bucket links directly to the query or trace that put it
// there. Exemplars attach to their native bucket (the one the
// observation fell into), not the cumulative counts.
type Histogram struct {
	bounds    []float64
	counts    []atomic.Uint64 // len(bounds)+1, last is +Inf
	exemplars []atomic.Pointer[string]
	count     atomic.Uint64
	sum       atomic.Uint64 // float64 bits
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveExemplar records one value and retains exemplar (a query or
// trace identifier) on the bucket the value landed in, replacing that
// bucket's previous exemplar. An empty exemplar observes without
// touching the retained one.
func (h *Histogram) ObserveExemplar(v float64, exemplar string) {
	if exemplar != "" {
		i := sort.SearchFloat64s(h.bounds, v)
		h.exemplars[i].Store(&exemplar)
	}
	h.Observe(v)
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveDurationExemplar records a duration in seconds with an
// exemplar identifier retained on the landing bucket.
func (h *Histogram) ObserveDurationExemplar(d time.Duration, exemplar string) {
	h.ObserveExemplar(d.Seconds(), exemplar)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Default bucket layouts.
var (
	// LatencyBuckets suits sub-millisecond to multi-second operations
	// (dial, write, fsync, agent execution), in seconds.
	LatencyBuckets = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
		0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5}
	// HopBuckets counts hops travelled; the paper's TTLs top out well
	// below 16.
	HopBuckets = []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 16}
)

type metricType uint8

const (
	counterType metricType = iota
	gaugeType
	gaugeFuncType
	histogramType
)

func (t metricType) String() string {
	switch t {
	case counterType:
		return "counter"
	case histogramType:
		return "histogram"
	default:
		return "gauge"
	}
}

// metric is one labeled instance within a family.
type metric struct {
	labels []Label
	c      *Counter
	g      *Gauge
	fn     func() float64
	h      *Histogram
}

// family groups every instance of one metric name.
type family struct {
	name    string
	help    string
	typ     metricType
	buckets []float64
	byKey   map[string]*metric
	order   []string
}

// Registry holds metric families. The zero value is not usable; use
// NewRegistry. A Registry is safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelKey builds the canonical instance key for a label set.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Key + "\x00" + l.Value
	}
	sort.Strings(parts)
	return strings.Join(parts, "\x01")
}

// getOrCreate returns the family's instance for the label set, creating
// family and instance as needed. Registering a name twice with a
// different type panics: that is a programming error, not a runtime
// condition.
func (r *Registry) getOrCreate(name, help string, typ metricType, buckets []float64, labels []Label) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, buckets: buckets,
			byKey: make(map[string]*metric)}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.typ != typ && !(f.typ == gaugeFuncType && typ == gaugeType || f.typ == gaugeType && typ == gaugeFuncType) {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, typ, f.typ))
	}
	key := labelKey(labels)
	m, ok := f.byKey[key]
	if !ok {
		m = &metric{labels: append([]Label(nil), labels...)}
		switch typ {
		case counterType:
			m.c = &Counter{}
		case gaugeType, gaugeFuncType:
			m.g = &Gauge{}
		case histogramType:
			b := append([]float64(nil), buckets...)
			sort.Float64s(b)
			m.h = &Histogram{bounds: b,
				counts:    make([]atomic.Uint64, len(b)+1),
				exemplars: make([]atomic.Pointer[string], len(b)+1)}
		}
		f.byKey[key] = m
		f.order = append(f.order, key)
	}
	return m
}

// Counter returns the named counter instance, creating it at zero on
// first use. Callers cache the handle; updates are lock-free.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.getOrCreate(name, help, counterType, nil, labels).c
}

// Gauge returns the named gauge instance.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.getOrCreate(name, help, gaugeType, nil, labels).g
}

// GaugeFunc registers a gauge whose value is computed by fn at snapshot
// time — the collector pattern for values that already live elsewhere
// (store statistics, queue lengths). Re-registering the same name+labels
// replaces the function, so a restarted component can re-bind safely.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	m := r.getOrCreate(name, help, gaugeFuncType, nil, labels)
	r.mu.Lock()
	m.fn = fn
	r.mu.Unlock()
}

// Histogram returns the named histogram instance with the given bucket
// upper bounds (ignored if the instance already exists).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	return r.getOrCreate(name, help, histogramType, buckets, labels).h
}

// --- exposition ---

// BucketSnapshot is one cumulative histogram bucket. Exemplar is the
// query/trace ID most recently observed into this bucket natively (not
// cumulatively) — it links a fat-tail bucket to /queries/<id> and the
// observatory's /fleet/trace/<id>.
type BucketSnapshot struct {
	UpperBound float64 `json:"-"`
	Count      uint64  `json:"count"`
	Exemplar   string  `json:"exemplar,omitempty"`
}

// bucketJSON is the wire shape of a bucket: the upper bound travels as a
// string because JSON has no encoding for the +Inf bucket.
type bucketJSON struct {
	LE       string `json:"le"`
	Count    uint64 `json:"count"`
	Exemplar string `json:"exemplar,omitempty"`
}

// MarshalJSON renders the bound Prometheus-style ("+Inf" for the last
// bucket), since encoding/json rejects infinities.
func (b BucketSnapshot) MarshalJSON() ([]byte, error) {
	le := "+Inf"
	if !math.IsInf(b.UpperBound, 1) {
		le = formatFloat(b.UpperBound)
	}
	return json.Marshal(bucketJSON{LE: le, Count: b.Count, Exemplar: b.Exemplar})
}

// UnmarshalJSON parses what MarshalJSON produces.
func (b *BucketSnapshot) UnmarshalJSON(data []byte) error {
	var bj bucketJSON
	if err := json.Unmarshal(data, &bj); err != nil {
		return err
	}
	b.Count = bj.Count
	b.Exemplar = bj.Exemplar
	if bj.LE == "+Inf" {
		b.UpperBound = math.Inf(1)
		return nil
	}
	_, err := fmt.Sscanf(bj.LE, "%g", &b.UpperBound)
	return err
}

// MetricSnapshot is the frozen state of one labeled instance.
type MetricSnapshot struct {
	Labels  []Label          `json:"labels,omitempty"`
	Value   float64          `json:"value"`
	Count   uint64           `json:"count,omitempty"`
	Sum     float64          `json:"sum,omitempty"`
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// FamilySnapshot is the frozen state of one metric family.
type FamilySnapshot struct {
	Name    string           `json:"name"`
	Help    string           `json:"help,omitempty"`
	Type    string           `json:"type"`
	Metrics []MetricSnapshot `json:"metrics"`
}

// Snapshot is a point-in-time copy of every registered metric.
type Snapshot struct {
	Families []FamilySnapshot `json:"families"`
}

// Family returns the named family from the snapshot, or nil.
func (s *Snapshot) Family(name string) *FamilySnapshot {
	for i := range s.Families {
		if s.Families[i].Name == name {
			return &s.Families[i]
		}
	}
	return nil
}

// Value returns the value of the family's single unlabeled instance
// (counter or gauge), or 0 when absent.
func (s *Snapshot) Value(name string) float64 {
	f := s.Family(name)
	if f == nil {
		return 0
	}
	for _, m := range f.Metrics {
		if len(m.Labels) == 0 {
			return m.Value
		}
	}
	return 0
}

// Total sums the named family's instances across all label sets —
// the fleet-level view of a labeled counter (e.g. cache hits across
// where=base/serve/negative). Histograms contribute their Count.
func (s *Snapshot) Total(name string) float64 {
	f := s.Family(name)
	if f == nil {
		return 0
	}
	total := 0.0
	for _, m := range f.Metrics {
		if len(m.Buckets) > 0 {
			total += float64(m.Count)
			continue
		}
		total += m.Value
	}
	return total
}

// TailExemplar returns the exemplar retained in the highest non-empty
// bucket of the named histogram family — the trace ID behind the
// slowest recent observation, the natural "what should I look at"
// pointer for a latency alert. Empty when the family is absent, not a
// histogram, or has recorded no exemplars.
func (s *Snapshot) TailExemplar(name string) string {
	f := s.Family(name)
	if f == nil {
		return ""
	}
	for _, m := range f.Metrics {
		for i := len(m.Buckets) - 1; i >= 0; i-- {
			if m.Buckets[i].Exemplar != "" {
				return m.Buckets[i].Exemplar
			}
		}
	}
	return ""
}

// DeltaSince returns a snapshot whose counters and histogram
// counts/sums/buckets hold the increase since prev, so a scraper can
// compute rates without keeping its own per-series bookkeeping. Gauges
// (and gauge funcs) pass through as levels — a delta of a level is
// meaningless. An instance missing from prev, or one whose count went
// backwards (process restart), deltas from zero. Exemplars ride
// through unchanged from the current snapshot: they describe recent
// observations, which is exactly what a delta window covers.
func (s *Snapshot) DeltaSince(prev *Snapshot) *Snapshot {
	out := &Snapshot{Families: make([]FamilySnapshot, 0, len(s.Families))}
	for _, f := range s.Families {
		var pf *FamilySnapshot
		if prev != nil {
			pf = prev.Family(f.Name)
		}
		df := FamilySnapshot{Name: f.Name, Help: f.Help, Type: f.Type,
			Metrics: make([]MetricSnapshot, 0, len(f.Metrics))}
		for _, m := range f.Metrics {
			var pm *MetricSnapshot
			if pf != nil {
				key := labelKey(m.Labels)
				for i := range pf.Metrics {
					if labelKey(pf.Metrics[i].Labels) == key {
						pm = &pf.Metrics[i]
						break
					}
				}
			}
			dm := m
			dm.Buckets = append([]BucketSnapshot(nil), m.Buckets...)
			switch f.Type {
			case "counter":
				if pm != nil && pm.Value <= m.Value {
					dm.Value = m.Value - pm.Value
				}
			case "histogram":
				if pm != nil && pm.Count <= m.Count {
					dm.Count = m.Count - pm.Count
					dm.Sum = m.Sum - pm.Sum
					if len(pm.Buckets) == len(m.Buckets) {
						for i := range dm.Buckets {
							if pm.Buckets[i].Count <= dm.Buckets[i].Count {
								dm.Buckets[i].Count -= pm.Buckets[i].Count
							}
						}
					}
				}
			}
			df.Metrics = append(df.Metrics, dm)
		}
		out.Families = append(out.Families, df)
	}
	return out
}

// loadExemplar dereferences an atomically stored exemplar, empty when
// none was ever observed.
func loadExemplar(p *atomic.Pointer[string]) string {
	if s := p.Load(); s != nil {
		return *s
	}
	return ""
}

// Snapshot freezes the registry. Families are ordered by name and
// instances by label key, so output is deterministic.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := append([]string(nil), r.order...)
	sort.Strings(names)
	snap := &Snapshot{}
	for _, name := range names {
		f := r.families[name]
		fs := FamilySnapshot{Name: f.name, Help: f.help, Type: f.typ.String()}
		keys := append([]string(nil), f.order...)
		sort.Strings(keys)
		for _, key := range keys {
			m := f.byKey[key]
			ms := MetricSnapshot{Labels: m.labels}
			switch {
			case m.c != nil:
				ms.Value = float64(m.c.Value())
			case m.fn != nil:
				ms.Value = m.fn()
			case m.g != nil:
				ms.Value = float64(m.g.Value())
			case m.h != nil:
				ms.Count = m.h.Count()
				ms.Sum = m.h.Sum()
				cum := uint64(0)
				for i, bound := range m.h.bounds {
					cum += m.h.counts[i].Load()
					ms.Buckets = append(ms.Buckets, BucketSnapshot{
						UpperBound: bound, Count: cum, Exemplar: loadExemplar(&m.h.exemplars[i])})
				}
				cum += m.h.counts[len(m.h.bounds)].Load()
				ms.Buckets = append(ms.Buckets, BucketSnapshot{
					UpperBound: math.Inf(1), Count: cum,
					Exemplar: loadExemplar(&m.h.exemplars[len(m.h.bounds)])})
			}
			fs.Metrics = append(fs.Metrics, ms)
		}
		snap.Families = append(snap.Families, fs)
	}
	return snap
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	for _, f := range snap.Families {
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Type); err != nil {
			return err
		}
		for _, m := range f.Metrics {
			if f.Type == "histogram" {
				for _, b := range m.Buckets {
					le := "+Inf"
					if !math.IsInf(b.UpperBound, 1) {
						le = formatFloat(b.UpperBound)
					}
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
						f.Name, renderLabels(m.Labels, L("le", le)), b.Count); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.Name, renderLabels(m.Labels), formatFloat(m.Sum)); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.Name, renderLabels(m.Labels), m.Count); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.Name, renderLabels(m.Labels), formatFloat(m.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteJSON renders the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// renderLabels formats a label set (plus any extras) as {k="v",...}, or
// the empty string when there are none.
func renderLabels(labels []Label, extra ...Label) string {
	all := make([]Label, 0, len(labels)+len(extra))
	all = append(all, labels...)
	all = append(all, extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatFloat prints metric values the way Prometheus expects: integers
// without a decimal point, everything else in shortest form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
