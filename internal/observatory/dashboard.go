package observatory

import (
	"fmt"
	"sort"
	"strings"
)

// sparkTicks are the eight block glyphs a sparkline is drawn with.
var sparkTicks = []rune("▁▂▃▄▅▆▇█")

// sparkline renders values min-max normalized into block glyphs; a
// flat series renders as a run of the lowest glyph.
func sparkline(points []TSPoint, width int) string {
	points = Downsample(points, width)
	if len(points) == 0 {
		return ""
	}
	lo, hi := points[0].V, points[0].V
	for _, p := range points {
		if p.V < lo {
			lo = p.V
		}
		if p.V > hi {
			hi = p.V
		}
	}
	var b strings.Builder
	for _, p := range points {
		i := 0
		if hi > lo {
			i = int((p.V - lo) / (hi - lo) * float64(len(sparkTicks)-1))
		}
		b.WriteRune(sparkTicks[i])
	}
	return b.String()
}

// renderDashboard draws the fleet health view as plain text: one
// section per member with each derived series' sparkline and latest
// value, then the firing alerts, then the rule set.
func renderDashboard(c *Collector) string {
	h := c.Health()
	view := h.View()
	var b strings.Builder
	fmt.Fprintf(&b, "fleet health · %d members · %d firing\n",
		len(view.Members), len(view.Active))
	if !view.At.IsZero() {
		fmt.Fprintf(&b, "as of %s\n", view.At.UTC().Format("2006-01-02 15:04:05.000"))
	}

	members := make([]string, 0, len(view.Members))
	for m := range view.Members {
		members = append(members, m)
	}
	sort.Strings(members)
	for _, m := range members {
		mh := view.Members[m]
		marker := " "
		if len(mh.Alerts) > 0 {
			marker = "!"
		}
		fmt.Fprintf(&b, "\n%s %s\n", marker, m)
		for _, name := range h.Series().Names(m) {
			pts := h.Series().Points(m, name)
			last := 0.0
			if n := len(pts); n > 0 {
				last = pts[n-1].V
			}
			fmt.Fprintf(&b, "  %-24s %-32s %g\n", name, sparkline(pts, 32), last)
		}
	}

	b.WriteString("\nalerts\n")
	if len(view.Active) == 0 {
		b.WriteString("  none firing\n")
	}
	for _, a := range view.Active {
		fmt.Fprintf(&b, "  ! %s on %s: %s=%g (threshold %g, since %s)",
			a.Rule, a.Member, a.Series, a.Value, a.Threshold,
			a.Since.UTC().Format("15:04:05"))
		if a.Exemplar != "" {
			fmt.Fprintf(&b, " trace /fleet/trace/%s", a.Exemplar)
		}
		b.WriteByte('\n')
	}

	b.WriteString("\nrules\n")
	for _, r := range view.Rules {
		cmp := ">"
		if r.Below {
			cmp = "<"
		}
		fmt.Fprintf(&b, "  %-24s %s %s %g for %s, clear at %g for %s\n",
			r.Name, r.Series, cmp, r.Fire, r.Hold, r.Clear, r.ClearHold)
	}
	return b.String()
}
