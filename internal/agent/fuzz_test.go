package agent

import (
	"strings"
	"testing"

	"bestpeer/internal/storm"
	"bestpeer/internal/wire"
)

// FuzzDecodePacket: hostile agent packets must never panic; valid ones
// must re-encode faithfully.
func FuzzDecodePacket(f *testing.F) {
	a := &KeywordAgent{Query: "q"}
	st, _ := a.State()
	f.Add(EncodePacket(&Packet{Class: KeywordClass, State: st, Base: "b", Mode: 1}))
	f.Add([]byte{})
	f.Add([]byte{0x01, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodePacket(data)
		if err != nil {
			return
		}
		back, err := DecodePacket(EncodePacket(p))
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.Class != p.Class || back.Mode != p.Mode || back.Base != p.Base {
			t.Fatal("round trip changed packet")
		}
	})
}

// FuzzDecodeResults: result batches from hostile peers must never panic.
func FuzzDecodeResults(f *testing.F) {
	f.Add(EncodeResults([]Result{{Name: "n", Data: []byte("d")}}, 2,
		wire.BPID{LIGLO: "l", Node: 1}, "addr"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = DecodeResults(data)
	})
}

// FuzzFingerprint: agents reconstructed from hostile packet state must
// fingerprint without panicking, and the Fingerprinter contract must
// hold — equal states yield equal keys, and keys and terms are already
// case-canonical (lowering them is a no-op).
func FuzzFingerprint(f *testing.F) {
	for _, ag := range []Agent{
		&KeywordAgent{Query: "Jazz Music"},
		&DigestAgent{Query: "needle"},
		&TopKAgent{Query: "Top", K: 3, IncludeData: true},
		&FilterAgent{Expr: "keyword=jazz & size>512"},
	} {
		st, err := ag.State()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(ag.Class(), st)
	}
	f.Add(KeywordClass, []byte{0xFF, 0x00})
	f.Add(FilterClass, []byte{})
	reg := NewRegistry()
	if err := RegisterBuiltins(reg); err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, class string, state []byte) {
		ag, err := reg.New(class, state)
		if err != nil {
			return
		}
		fp, ok := ag.(Fingerprinter)
		if !ok {
			return
		}
		key := fp.QueryKey()
		terms := fp.QueryTerms()
		if key != fp.QueryKey() {
			t.Fatal("QueryKey must be deterministic")
		}
		ag2, err := reg.New(class, state)
		if err != nil {
			t.Fatalf("same state failed to reconstruct twice: %v", err)
		}
		if k2 := ag2.(Fingerprinter).QueryKey(); k2 != key {
			t.Fatalf("same state, different keys: %q vs %q", key, k2)
		}
		if key != strings.ToLower(key) {
			t.Fatalf("key %q is not case-canonical", key)
		}
		for _, term := range terms {
			if term == "" {
				t.Fatal("empty routing term")
			}
			if term != strings.ToLower(term) {
				t.Fatalf("term %q is not case-canonical", term)
			}
		}
	})
}

// FuzzCompileFilter: arbitrary filter expressions must either compile or
// fail cleanly, and compiled predicates must be callable.
func FuzzCompileFilter(f *testing.F) {
	for _, seed := range []string{
		"keyword=jazz & size>512",
		"name~report | (keyword=finance & !data~draft)",
		"kind=active",
		"(((",
		"size>",
		"",
		`name="quoted value"`,
	} {
		f.Add(seed)
	}
	obj := &storm.Object{Name: "x", Keywords: []string{"k"}, Data: []byte("d")}
	f.Fuzz(func(t *testing.T, expr string) {
		pred, err := CompileFilter(expr)
		if err != nil {
			return
		}
		_ = pred(obj) // must not panic
	})
}
