package storm

import "testing"

func drain(r Replacer) []int {
	var out []int
	for {
		f, ok := r.Victim()
		if !ok {
			return out
		}
		out = append(out, f)
	}
}

func TestLRUOrder(t *testing.T) {
	r := NewLRU()
	r.Insert(1, 0)
	r.Insert(2, 0)
	r.Insert(3, 0)
	r.Touch(1) // 1 becomes most recent
	got := drain(r)
	want := []int{2, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LRU order = %v, want %v", got, want)
		}
	}
}

func TestMRUOrder(t *testing.T) {
	r := NewMRU()
	r.Insert(1, 0)
	r.Insert(2, 0)
	r.Insert(3, 0)
	f, ok := r.Victim()
	if !ok || f != 3 {
		t.Fatalf("MRU victim = %d, want 3", f)
	}
	r.Touch(1)
	f, _ = r.Victim()
	if f != 1 {
		t.Fatalf("MRU victim after touch = %d, want 1", f)
	}
}

func TestFIFOIgnoresTouch(t *testing.T) {
	r := NewFIFO()
	r.Insert(1, 0)
	r.Insert(2, 0)
	r.Touch(1) // must not move 1
	f, _ := r.Victim()
	if f != 1 {
		t.Fatalf("FIFO victim = %d, want 1", f)
	}
}

func TestClockSecondChance(t *testing.T) {
	r := NewClock()
	r.Insert(1, 0)
	r.Insert(2, 0)
	r.Insert(3, 0)
	// All ref bits set; first sweep clears them, so victim is 1 (hand order).
	f, ok := r.Victim()
	if !ok || f != 1 {
		t.Fatalf("clock first victim = %d, want 1", f)
	}
	// Touch 2: it survives the next selection; 3's bit is already clear.
	r.Touch(2)
	f, _ = r.Victim()
	if f != 3 {
		t.Fatalf("clock second victim = %d, want 3", f)
	}
	f, _ = r.Victim()
	if f != 2 {
		t.Fatalf("clock third victim = %d, want 2", f)
	}
}

func TestClockRemoveKeepsRingConsistent(t *testing.T) {
	r := NewClock()
	for i := 1; i <= 5; i++ {
		r.Insert(i, 0)
	}
	r.Remove(3)
	r.Remove(1)
	if r.Len() != 3 {
		t.Fatalf("len = %d", r.Len())
	}
	seen := make(map[int]bool)
	for {
		f, ok := r.Victim()
		if !ok {
			break
		}
		if seen[f] {
			t.Fatalf("frame %d evicted twice", f)
		}
		seen[f] = true
	}
	if len(seen) != 3 || seen[1] || seen[3] {
		t.Fatalf("evicted set = %v", seen)
	}
}

func TestPriorityEvictsLowestHint(t *testing.T) {
	r := NewPriority()
	r.Insert(1, 5.0)
	r.Insert(2, 1.0)
	r.Insert(3, 3.0)
	got := drain(r)
	want := []int{2, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("priority order = %v, want %v", got, want)
		}
	}
}

func TestPriorityTieBreaksFIFO(t *testing.T) {
	r := NewPriority()
	r.Insert(7, 1.0)
	r.Insert(8, 1.0)
	f, _ := r.Victim()
	if f != 7 {
		t.Fatalf("tie broke to %d, want 7 (older)", f)
	}
}

func TestReplacerCommonBehaviours(t *testing.T) {
	for _, name := range []string{"lru", "mru", "fifo", "clock", "priority"} {
		t.Run(name, func(t *testing.T) {
			r := NewReplacer(name)
			if r.Name() != name {
				t.Fatalf("Name = %q", r.Name())
			}
			if _, ok := r.Victim(); ok {
				t.Fatal("empty replacer produced a victim")
			}
			r.Touch(99)  // absent: no-op
			r.Remove(99) // absent: no-op
			r.Insert(1, 0)
			r.Insert(1, 0) // duplicate insert is a refresh, not a second entry
			if r.Len() != 1 {
				t.Fatalf("len after dup insert = %d", r.Len())
			}
			r.Insert(2, 1)
			r.Remove(1)
			f, ok := r.Victim()
			if !ok || f != 2 {
				t.Fatalf("victim = %d/%v, want 2", f, ok)
			}
			if r.Len() != 0 {
				t.Fatalf("len after drain = %d", r.Len())
			}
		})
	}
}

func TestNewReplacerUnknownFallsBackToLRU(t *testing.T) {
	if r := NewReplacer("nonsense"); r.Name() != "lru" {
		t.Fatalf("fallback = %q", r.Name())
	}
}
