package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// fixtures lives under internal/vet; the driver tests run it from here
// via the -dir flag.
const fixtureDir = "../../internal/vet"

// TestRunReportsAndExitsNonZero drives the binary's run() over a fixture
// with known violations: findings must print in the canonical
// "file:line: [name] message" form and the exit code must be 1.
func TestRunReportsAndExitsNonZero(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-dir", fixtureDir, "testdata/src/busypoll"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, errOut.String())
	}
	got := out.String()
	if !strings.Contains(got, "[busypoll]") {
		t.Errorf("output missing [busypoll] tag:\n%s", got)
	}
	if !strings.Contains(got, "busypoll.go:") {
		t.Errorf("output missing file:line prefix:\n%s", got)
	}
	if !strings.Contains(errOut.String(), "finding(s)") {
		t.Errorf("stderr missing findings summary: %q", errOut.String())
	}
}

// TestRunCleanExitsZero drives run() over the suppress fixture, whose
// violations are all //bpvet:ignore'd: exit 0, no output.
func TestRunCleanExitsZero(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-dir", fixtureDir, "testdata/src/suppress"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("expected no output, got:\n%s", out.String())
	}
}

// TestRunList checks -list names all six analyzers.
func TestRunList(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, name := range []string{"lockedsend", "nakedgo", "blockingsend", "busypoll", "droppederr", "ttlpair"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

// TestRunBadPattern checks load failures exit 2.
func TestRunBadPattern(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-dir", fixtureDir, "testdata/src/no-such-dir"}, &out, &errOut); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

// TestRunTypeErrorExitsTwo drives run() over a fixture that fails
// type-checking: the loader error must surface on stderr and exit 2.
func TestRunTypeErrorExitsTwo(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-dir", fixtureDir, "testdata/src/broken"}, &out, &errOut)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if !strings.Contains(errOut.String(), "type-checking") {
		t.Errorf("stderr missing type-check error: %q", errOut.String())
	}
}

// TestRunMalformedIgnoreExitsOne: bare or reasonless bpvet:ignore
// directives are findings of the pseudo-analyzer "ignore" and fail the
// run even when no analyzer fires.
func TestRunMalformedIgnoreExitsOne(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-dir", fixtureDir, "testdata/src/badignore"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "[ignore]") {
		t.Errorf("output missing [ignore] findings:\n%s", out.String())
	}
}

// TestRunJSON checks -json emits a parseable array of findings.
func TestRunJSON(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-dir", fixtureDir, "-json", "testdata/src/busypoll"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, errOut.String())
	}
	var findings []jsonFinding
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(findings) == 0 {
		t.Fatal("-json produced an empty findings array for a fixture with violations")
	}
	for _, f := range findings {
		if f.File == "" || f.Line == 0 || f.Analyzer == "" || f.Message == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
	}
}

// TestBaselineRoundTrip: -write-baseline then -baseline must turn a
// failing run into a clean one, and stay failing for findings not in
// the ledger.
func TestBaselineRoundTrip(t *testing.T) {
	blPath := filepath.Join(t.TempDir(), "bl.json")
	var out, errOut bytes.Buffer
	if code := run([]string{"-dir", fixtureDir, "-write-baseline", blPath, "testdata/src/busypoll"}, &out, &errOut); code != 0 {
		t.Fatalf("-write-baseline exit = %d, want 0 (stderr: %s)", code, errOut.String())
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-dir", fixtureDir, "-baseline", blPath, "testdata/src/busypoll"}, &out, &errOut); code != 0 {
		t.Fatalf("baselined run exit = %d, want 0\nstdout: %s", code, out.String())
	}
	// A different fixture's findings are not in the ledger: still red.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-dir", fixtureDir, "-baseline", blPath, "testdata/src/nakedgo"}, &out, &errOut); code != 1 {
		t.Fatalf("unbaselined findings exit = %d, want 1", code)
	}
}

// TestBaselineNeverMasksMalformedIgnores: the ignore grammar is not
// baselineable — -write-baseline refuses, and a hand-edited ledger
// entry would not match either.
func TestBaselineNeverMasksMalformedIgnores(t *testing.T) {
	blPath := filepath.Join(t.TempDir(), "bl.json")
	var out, errOut bytes.Buffer
	if code := run([]string{"-dir", fixtureDir, "-write-baseline", blPath, "testdata/src/badignore"}, &out, &errOut); code != 1 {
		t.Fatalf("-write-baseline over malformed ignores exit = %d, want 1 (stderr: %s)", code, errOut.String())
	}
}

// TestRunIgnoresInventory checks -ignores lists the suppress fixture's
// directives with their reasons.
func TestRunIgnoresInventory(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-dir", fixtureDir, "-ignores", "testdata/src/suppress"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stderr: %s)", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{"busypoll", "nakedgo", "droppederr", "fixture"} {
		if !strings.Contains(got, want) {
			t.Errorf("-ignores inventory missing %q:\n%s", want, got)
		}
	}
	// Malformed directives turn the inventory run red.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-dir", fixtureDir, "-ignores", "testdata/src/badignore"}, &out, &errOut); code != 1 {
		t.Fatalf("-ignores over malformed directives exit = %d, want 1", code)
	}
	if !strings.Contains(out.String(), "MALFORMED") {
		t.Errorf("-ignores output missing MALFORMED marker:\n%s", out.String())
	}
}
