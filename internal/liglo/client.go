package liglo

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"bestpeer/internal/obs"
	"bestpeer/internal/transport"
	"bestpeer/internal/wire"
)

// ErrClientClosed reports that Close interrupted a retry backoff.
var ErrClientClosed = errors.New("liglo: client closed")

// ClientOptions tunes the client's failure handling. The zero value
// selects the defaults noted on each field.
type ClientOptions struct {
	// DialTimeout bounds one connection attempt. Default 2s.
	DialTimeout time.Duration
	// CallTimeout bounds one whole request/response exchange, where the
	// underlying connection honours deadlines. Default 5s.
	CallTimeout time.Duration
	// Retries is how many times a failed RegisterAny round or Rejoin
	// call is reattempted (so Retries+1 total attempts). Only transport
	// failures retry; protocol rejections are terminal. Default 2.
	Retries int
	// BackoffBase is the wait before the first retry; it doubles each
	// round, capped at BackoffMax. Default 50ms.
	BackoffBase time.Duration
	// BackoffMax caps the retry backoff. Default 1s.
	BackoffMax time.Duration
	// Metrics is the registry the client's call counters are published
	// to. Nil means a private registry; a node shares its own registry
	// here so LIGLO traffic shows up on /metrics.
	Metrics *obs.Registry
	// RingServers are fallback contact points for ring-mode deployments.
	// When a BPID's issuing server is unreachable, lookups, rejoins and
	// deregisters retry through these servers and transparently follow
	// ring redirects to whichever member now owns the key. Empty keeps
	// classic single-home behaviour.
	RingServers []string
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.CallTimeout <= 0 {
		o.CallTimeout = 5 * time.Second
	}
	if o.Retries <= 0 {
		o.Retries = 2
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 50 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = time.Second
	}
	if o.Metrics == nil {
		o.Metrics = obs.NewRegistry()
	}
	return o
}

// backoff returns the wait after the given zero-based retry round.
func (o ClientOptions) backoff(round int) time.Duration {
	d := o.BackoffBase
	for i := 0; i < round && d < o.BackoffMax; i++ {
		d *= 2
	}
	if d > o.BackoffMax {
		d = o.BackoffMax
	}
	return d
}

// Client talks to LIGLO servers. Connections are per-call: registration
// and rejoin happen once per session and lookups are rare, so caching
// buys nothing and a stateless client is simpler to reason about.
type Client struct {
	network transport.Network
	opts    ClientOptions

	stop     chan struct{}
	stopOnce sync.Once

	// Per-operation call counters, keyed by op name.
	calls map[string]*obs.Counter
	fails map[string]*obs.Counter
}

// NewClient returns a client that dials over the given network with
// default options.
func NewClient(network transport.Network) *Client {
	return NewClientOpts(network, ClientOptions{})
}

// NewClientOpts returns a client with explicit failure-handling options.
func NewClientOpts(network transport.Network, opts ClientOptions) *Client {
	c := &Client{
		network: network,
		opts:    opts.withDefaults(),
		stop:    make(chan struct{}),
		calls:   make(map[string]*obs.Counter),
		fails:   make(map[string]*obs.Counter),
	}
	reg := c.opts.Metrics
	for _, op := range []string{"register", "rejoin", "lookup", "peers", "deregister"} {
		c.calls[op] = reg.Counter("bestpeer_liglo_client_calls_total",
			"LIGLO request/response exchanges attempted, by operation.", obs.L("op", op))
		c.fails[op] = reg.Counter("bestpeer_liglo_client_call_failures_total",
			"LIGLO exchanges that failed at the transport layer, by operation.", obs.L("op", op))
	}
	return c
}

// Close interrupts any in-flight retry backoff; blocked RegisterAny and
// Rejoin calls return promptly with ErrClientClosed joined to the last
// transport error. Close is idempotent and safe for concurrent use.
func (c *Client) Close() error {
	c.stopOnce.Do(func() { close(c.stop) })
	return nil
}

// sleep waits out one backoff round, returning false when Close
// interrupted the wait.
func (c *Client) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-c.stop:
		return false
	}
}

// call performs one request/response exchange with a server, bounded by
// the dial and call timeouts. op names the operation for metrics.
func (c *Client) call(op, server string, req *wire.Envelope) (*wire.Envelope, error) {
	c.calls[op].Inc()
	resp, err := c.callOnce(server, req)
	if err != nil {
		c.fails[op].Inc()
	}
	return resp, err
}

// maxRedirects bounds how many ring redirects one logical call follows —
// a converging ring answers in one hop; more than a few means the ring's
// ownership view is still settling and the caller should back off.
const maxRedirects = 4

// callRing performs one logical exchange against a ring of servers: try
// the primary, fall back to RingServers on transport failure, and follow
// KindRingRedirect replies to the owning server. Outside ring mode (no
// RingServers, no redirect replies) it behaves exactly like call.
func (c *Client) callRing(op, primary string, req *wire.Envelope) (*wire.Envelope, error) {
	queue := make([]string, 0, 1+len(c.opts.RingServers))
	queue = append(queue, primary)
	for _, s := range c.opts.RingServers {
		if s != primary {
			queue = append(queue, s)
		}
	}
	var lastErr error
	redirects := 0
	for len(queue) > 0 {
		target := queue[0]
		queue = queue[1:]
		resp, err := c.call(op, target, req)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.Kind == wire.KindRingRedirect {
			m, derr := decodeRedirectMsg(resp.Body)
			if derr != nil {
				return nil, derr
			}
			lastErr = fmt.Errorf("liglo: %s redirected to %s", op, m.Addr)
			if redirects < maxRedirects && m.Addr != target {
				redirects++
				queue = append([]string{m.Addr}, queue...)
			}
			continue
		}
		return resp, nil
	}
	if lastErr == nil {
		lastErr = errors.New("liglo: no servers reachable")
	}
	return nil, lastErr
}

func (c *Client) callOnce(server string, req *wire.Envelope) (*wire.Envelope, error) {
	conn, err := transport.DialTimeout(c.network, server, c.opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("liglo: dial %s: %w", server, err)
	}
	defer conn.Close()
	if ct := c.opts.CallTimeout; ct > 0 {
		conn.SetDeadline(time.Now().Add(ct))
	}
	wc := wire.NewConn(conn)
	if err := wc.Send(req); err != nil {
		return nil, fmt.Errorf("liglo: send to %s: %w", server, err)
	}
	resp, err := wc.Recv()
	if err != nil {
		return nil, fmt.Errorf("liglo: recv from %s: %w", server, err)
	}
	return resp, nil
}

// Register asks the server for a BPID, reporting myAddr as the current
// address. It returns the issued identity and the initial direct-peer
// list. A capacity-limited server returns ErrFull — seek another server.
func (c *Client) Register(server, myAddr string) (wire.BPID, []PeerInfo, error) {
	req := &wire.Envelope{
		Kind: wire.KindLigloRegister,
		ID:   wire.NewMsgID(),
		TTL:  1,
		Body: encodeRegisterReq(&registerReq{Addr: myAddr}),
	}
	resp, err := c.call("register", server, req)
	if err != nil {
		return wire.BPID{}, nil, err
	}
	r, err := decodeRegisterResp(resp.Body)
	if err != nil {
		return wire.BPID{}, nil, err
	}
	if r.Err != "" {
		if r.Err == ErrFull.Error() {
			return wire.BPID{}, nil, ErrFull
		}
		return wire.BPID{}, nil, errors.New(r.Err)
	}
	return r.ID, r.Peers, nil
}

// RegisterAny tries each server in order until one accepts — the paper's
// "the node has to seek for another LIGLO" behaviour when a server is at
// capacity or down. A round where every server was unreachable is
// retried with exponential backoff, bounded by Retries; a round where
// every server answered ErrFull is terminal (backing off will not free
// capacity a human did not).
func (c *Client) RegisterAny(servers []string, myAddr string) (wire.BPID, []PeerInfo, error) {
	if len(servers) == 0 {
		return wire.BPID{}, nil, errors.New("liglo: no servers given")
	}
	var lastErr error
	for round := 0; ; round++ {
		allFull := true
		for _, s := range servers {
			id, peers, err := c.Register(s, myAddr)
			if err == nil {
				return id, peers, nil
			}
			if !errors.Is(err, ErrFull) {
				allFull = false
			}
			lastErr = err
		}
		if allFull || round >= c.opts.Retries {
			return wire.BPID{}, nil, lastErr
		}
		if !c.sleep(c.opts.backoff(round)) {
			return wire.BPID{}, nil, errors.Join(ErrClientClosed, lastErr)
		}
	}
}

// Rejoin reports the node's current address to its home server after a
// reconnect, retrying transport failures with exponential backoff.
// Protocol rejections (ErrUnknown, ErrWrongHome) are terminal.
func (c *Client) Rejoin(id wire.BPID, myAddr string) error {
	var lastErr error
	for round := 0; ; round++ {
		err := c.rejoinOnce(id, myAddr)
		if err == nil || errors.Is(err, ErrUnknown) || errors.Is(err, ErrWrongHome) {
			return err
		}
		lastErr = err
		if round >= c.opts.Retries {
			return lastErr
		}
		if !c.sleep(c.opts.backoff(round)) {
			return errors.Join(ErrClientClosed, lastErr)
		}
	}
}

func (c *Client) rejoinOnce(id wire.BPID, myAddr string) error {
	req := &wire.Envelope{
		Kind: wire.KindLigloRejoin,
		ID:   wire.NewMsgID(),
		TTL:  1,
		Body: encodeRejoinReq(&rejoinReq{ID: id, Addr: myAddr}),
	}
	resp, err := c.callRing("rejoin", id.LIGLO, req)
	if err != nil {
		return err
	}
	r, err := decodeRejoinResp(resp.Body)
	if err != nil {
		return err
	}
	if r.Err != "" {
		switch r.Err {
		case ErrUnknown.Error():
			return ErrUnknown
		case ErrWrongHome.Error():
			return ErrWrongHome
		}
		return errors.New(r.Err)
	}
	return nil
}

// Deregister announces a graceful leave to the node's home server so the
// member is marked offline immediately, without waiting for a probe sweep
// to time out. Transport failures retry with exponential backoff; protocol
// rejections (ErrUnknown, ErrWrongHome) are terminal. The BPID stays
// valid — Rejoin brings the member back under the same identity.
func (c *Client) Deregister(id wire.BPID) error {
	var lastErr error
	for round := 0; ; round++ {
		err := c.deregisterOnce(id)
		if err == nil || errors.Is(err, ErrUnknown) || errors.Is(err, ErrWrongHome) {
			return err
		}
		lastErr = err
		if round >= c.opts.Retries {
			return lastErr
		}
		if !c.sleep(c.opts.backoff(round)) {
			return errors.Join(ErrClientClosed, lastErr)
		}
	}
}

func (c *Client) deregisterOnce(id wire.BPID) error {
	req := &wire.Envelope{
		Kind: wire.KindLigloDeregister,
		ID:   wire.NewMsgID(),
		TTL:  1,
		Body: encodeDeregisterReq(&deregisterReq{ID: id}),
	}
	resp, err := c.callRing("deregister", id.LIGLO, req)
	if err != nil {
		return err
	}
	r, err := decodeDeregisterResp(resp.Body)
	if err != nil {
		return err
	}
	if r.Err != "" {
		switch r.Err {
		case ErrUnknown.Error():
			return ErrUnknown
		case ErrWrongHome.Error():
			return ErrWrongHome
		}
		return errors.New(r.Err)
	}
	return nil
}

// Lookup resolves a peer's current address and online status by asking
// the peer's home server (extracted from the BPID).
func (c *Client) Lookup(id wire.BPID) (addr string, online bool, err error) {
	req := &wire.Envelope{
		Kind: wire.KindLigloLookup,
		ID:   wire.NewMsgID(),
		TTL:  1,
		Body: encodeLookupReq(&lookupReq{ID: id}),
	}
	resp, err := c.callRing("lookup", id.LIGLO, req)
	if err != nil {
		return "", false, err
	}
	r, err := decodeLookupResp(resp.Body)
	if err != nil {
		return "", false, err
	}
	if r.Err != "" {
		if r.Err == ErrWrongHome.Error() {
			return "", false, ErrWrongHome
		}
		return "", false, errors.New(r.Err)
	}
	if !r.Found {
		return "", false, fmt.Errorf("%w: %v", ErrUnknown, id)
	}
	return r.Addr, r.Online, nil
}

// Peers asks a server for up to max online members (excluding self, when
// self was issued by that server). Use it to replenish a depleted peer
// set without re-registering.
func (c *Client) Peers(server string, self wire.BPID, max int) ([]PeerInfo, error) {
	req := &wire.Envelope{
		Kind: wire.KindLigloPeers,
		ID:   wire.NewMsgID(),
		TTL:  1,
		Body: encodePeersReq(&peersReq{Self: self, Max: max}),
	}
	resp, err := c.call("peers", server, req)
	if err != nil {
		return nil, err
	}
	r, err := decodePeersResp(resp.Body)
	if err != nil {
		return nil, err
	}
	if r.Err != "" {
		return nil, errors.New(r.Err)
	}
	return r.Peers, nil
}
