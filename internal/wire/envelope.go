package wire

import "fmt"

// Kind identifies the protocol-level meaning of an envelope.
type Kind uint8

// Message kinds. The BestPeer, client/server, Gnutella and LIGLO protocols
// share one envelope format so that transports and the simulator can route
// any of them.
const (
	KindInvalid Kind = iota

	// BestPeer protocol.
	KindAgent       // a serialized mobile agent travelling to a peer
	KindResult      // answers returned directly to the base node (mode 1)
	KindHint        // indication that answers exist, without the data (mode 2)
	KindFetch       // follow-up request for data advertised by a hint (mode 2)
	KindClassWant   // destination lacks the agent's class; request it
	KindClassShip   // class payload transfer
	KindPeerProbe   // liveness probe between peers
	KindPeerProbeOK // probe acknowledgement

	// Client/server baseline protocol.
	KindCSQuery  // plain query shipped to a server
	KindCSAnswer // answers returned along the query path

	// Gnutella baseline protocol.
	KindGnuPing
	KindGnuPong
	KindGnuQuery
	KindGnuQueryHit

	// LIGLO protocol.
	KindLigloRegister  // first-time registration, requests a BPID
	KindLigloRegisterd // registration reply: BPID plus initial peer list
	KindLigloRejoin    // reconnect: report current address
	KindLigloLookup    // resolve a BPID to its current address/status
	KindLigloStatus    // lookup reply
	KindLigloProbe     // server-initiated liveness validation
	KindLigloPeers     // request a fresh peer list
	KindLigloPeersList // peer list reply

	// Observability protocol.
	KindSpan // standalone trace span report sent to the trace base

	// Membership lifecycle (appended after the original vocabulary; the
	// Depart body carries its own version field so the payload can grow
	// without a new kind).
	KindDepart          // graceful leave announcement to direct peers
	KindPeerList        // request a peer's current direct-peer list
	KindPeerListOK      // peer list reply (neighbor-of-neighbor candidates)
	KindLigloDeregister // graceful-leave announcement to the home LIGLO

	// Chord DHT protocol (internal/chord): ring maintenance plus
	// recursive key lookup. Every body leads with a version field, so
	// payloads can grow without new kinds.
	KindChordLookup   // find-successor request, forwarded recursively
	KindChordLookupOK // lookup answer: the key's owning node
	KindChordNotify   // stabilize notify, also the graceful-leave handoff
	KindChordNotifyOK // notify acknowledgement
	KindChordProbe    // finger/neighbor probe: liveness plus topology
	KindChordProbeOK  // probe reply: predecessor and successor list

	// LIGLO ring mode: Chord-partitioned BPID resolution.
	KindRingRedirect    // the server does not own the key; retry at Owner
	KindRingReplicate   // member-record replication to a successor
	KindRingReplicateOK // replication acknowledgement

	kindSentinel // keep last
)

var kindNames = [...]string{
	KindInvalid:         "invalid",
	KindAgent:           "agent",
	KindResult:          "result",
	KindHint:            "hint",
	KindFetch:           "fetch",
	KindClassWant:       "class-want",
	KindClassShip:       "class-ship",
	KindPeerProbe:       "peer-probe",
	KindPeerProbeOK:     "peer-probe-ok",
	KindCSQuery:         "cs-query",
	KindCSAnswer:        "cs-answer",
	KindGnuPing:         "gnu-ping",
	KindGnuPong:         "gnu-pong",
	KindGnuQuery:        "gnu-query",
	KindGnuQueryHit:     "gnu-query-hit",
	KindLigloRegister:   "liglo-register",
	KindLigloRegisterd:  "liglo-registered",
	KindLigloRejoin:     "liglo-rejoin",
	KindLigloLookup:     "liglo-lookup",
	KindLigloStatus:     "liglo-status",
	KindLigloProbe:      "liglo-probe",
	KindLigloPeers:      "liglo-peers",
	KindLigloPeersList:  "liglo-peers-list",
	KindSpan:            "span",
	KindDepart:          "depart",
	KindPeerList:        "peer-list",
	KindPeerListOK:      "peer-list-ok",
	KindLigloDeregister: "liglo-deregister",
	KindChordLookup:     "chord-lookup",
	KindChordLookupOK:   "chord-lookup-ok",
	KindChordNotify:     "chord-notify",
	KindChordNotifyOK:   "chord-notify-ok",
	KindChordProbe:      "chord-probe",
	KindChordProbeOK:    "chord-probe-ok",
	KindRingRedirect:    "ring-redirect",
	KindRingReplicate:   "ring-replicate",
	KindRingReplicateOK: "ring-replicate-ok",
}

// String returns the symbolic name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Valid reports whether k names a defined message kind.
func (k Kind) Valid() bool { return k > KindInvalid && k < kindSentinel }

// Envelope frames every message exchanged in the system. TTL and Hops are
// maintained redundantly, exactly as the paper describes: TTL is
// decremented and Hops incremented at each forwarding step, and together
// they let a host drop agents it has already seen or that have expired.
type Envelope struct {
	Kind Kind
	ID   MsgID  // duplicate-suppression identifier
	TTL  uint8  // remaining hops before the message dies
	Hops uint8  // hops travelled so far
	From string // transport address of the immediate sender
	To   string // transport address of the immediate receiver
	Body []byte // protocol payload, encoded by the codec helpers

	// Trace, when non-nil, is the per-query trace context this message
	// carries. Span, when non-nil, is a hop record piggybacked for the
	// trace's base node. Both travel as optional codec extensions: an
	// envelope without them is encoded byte-identically to the original
	// format, and decoders skip extension fields they do not know.
	Trace *TraceContext
	Span  *TraceSpan

	// QRoute, when non-nil, carries routing attribution (which first-hop
	// neighbor this agent travelled through) and cached-answer provenance
	// for the qroute subsystem. Same extension mechanics as Trace/Span.
	QRoute *QRoute
}

// Expired reports whether the envelope's lifetime is exhausted.
func (e *Envelope) Expired() bool { return e.TTL == 0 }

// Forwarded returns a copy of the envelope adjusted for one forwarding
// step: TTL decremented, Hops incremented, From/To rewritten. The body
// and trace context are shared, not copied; forwarding must not mutate
// them.
func (e *Envelope) Forwarded(from, to string) *Envelope {
	cp := *e
	if cp.TTL > 0 {
		cp.TTL--
	}
	cp.Hops++
	cp.From = from
	cp.To = to
	return &cp
}

// WireSize returns the approximate number of bytes the envelope occupies on
// the wire before compression. The simulator uses it to charge bandwidth.
func (e *Envelope) WireSize() int {
	n := envelopeHeaderSize + len(e.From) + len(e.To) + len(e.Body)
	if e.Trace != nil {
		n += extHeaderSize + len(encodeTraceContext(e.Trace))
	}
	if e.Span != nil {
		n += extHeaderSize + len(encodeTraceSpan(e.Span))
	}
	if e.QRoute != nil {
		n += extHeaderSize + len(encodeQRoute(e.QRoute))
	}
	return n
}

// envelopeHeaderSize is the fixed overhead of an encoded envelope: kind,
// ttl, hops, id, and the three length prefixes.
const envelopeHeaderSize = 1 + 1 + 1 + 16 + 4 + 2 + 2
