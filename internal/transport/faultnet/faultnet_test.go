package faultnet

import (
	"sync"
	"testing"
	"time"

	"bestpeer/internal/transport"
	"bestpeer/internal/wire"
)

// collector accumulates received envelopes behind a condition variable.
type collector struct {
	mu  sync.Mutex
	got []*wire.Envelope
}

func (c *collector) handle(e *wire.Envelope) {
	c.mu.Lock()
	c.got = append(c.got, e)
	c.mu.Unlock()
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.got)
}

func (c *collector) waitFor(t *testing.T, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.count() < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d envelopes, have %d", n, c.count())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func env(body string) *wire.Envelope {
	return &wire.Envelope{Kind: wire.KindAgent, ID: wire.NewMsgID(), TTL: 4, Body: []byte(body)}
}

// fastOpts keeps messenger failure handling snappy under injected faults.
func fastOpts() transport.Options {
	return transport.Options{
		DialTimeout:  200 * time.Millisecond,
		WriteTimeout: 200 * time.Millisecond,
		QueueSize:    512,
		BackoffBase:  20 * time.Millisecond,
		BackoffMax:   100 * time.Millisecond,
	}
}

// pair starts a receiver at "dst" and a sender at "src" over the fabric,
// each seeing the network through its own host view.
func pair(t *testing.T, f *Fabric) (send *transport.Messenger, c *collector) {
	t.Helper()
	c = &collector{}
	recv, err := transport.NewMessengerOpts(f.Host("dst"), "dst", c.handle, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { recv.Close() })
	send, err = transport.NewMessengerOpts(f.Host("src"), "src", nil, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { send.Close() })
	return send, c
}

func TestPerfectFabricDelivers(t *testing.T) {
	f := New(transport.NewInProc(), 1)
	send, c := pair(t, f)
	for i := 0; i < 20; i++ {
		if err := send.Send("dst", env("m")); err != nil {
			t.Fatal(err)
		}
	}
	c.waitFor(t, 20)
}

func TestSeededDropRateIsReproducible(t *testing.T) {
	run := func(seed int64) int {
		f := New(transport.NewInProc(), seed)
		send, c := pair(t, f)
		f.SetConfig(Config{DropProb: 0.5})
		const n = 200
		accepted := uint64(0)
		for i := 0; i < n; i++ {
			if send.Send("dst", env("m")) == nil {
				accepted++
			}
		}
		// All writes flow through one send worker, and Sent counts dropped
		// writes too (the sender cannot tell), so Sent() == accepted means
		// the queue has fully drained.
		deadline := time.Now().Add(5 * time.Second)
		for send.Sent() < accepted {
			if time.Now().After(deadline) {
				t.Fatalf("send queue never drained: %d of %d", send.Sent(), accepted)
			}
			time.Sleep(2 * time.Millisecond)
		}
		c.waitFor(t, int(accepted)-int(f.Stats().MessagesDropped))
		return c.count()
	}
	a, b := run(42), run(42)
	if a != b {
		t.Fatalf("same seed, different delivery: %d vs %d", a, b)
	}
	if a < 50 || a > 150 {
		t.Fatalf("drop rate implausible: %d of 200 delivered at p=0.5", a)
	}
	if c := run(43); c == a {
		t.Logf("different seeds coincided at %d (possible but unlikely)", c)
	}
}

func TestDialFailProbOne(t *testing.T) {
	f := New(transport.NewInProc(), 7)
	f.SetConfig(Config{DialFailProb: 1.0})
	l, err := f.Listen("x")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := f.Dial("x"); err == nil {
		t.Fatal("dial succeeded at DialFailProb=1")
	}
	if f.Stats().DialsFailed == 0 {
		t.Fatal("injected dial failure not counted")
	}
}

func TestDelayAddsLatency(t *testing.T) {
	f := New(transport.NewInProc(), 7)
	send, c := pair(t, f)
	f.SetConfig(Config{Delay: 60 * time.Millisecond})
	start := time.Now()
	if err := send.Send("dst", env("slow")); err != nil {
		t.Fatal(err)
	}
	c.waitFor(t, 1)
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Fatalf("message arrived in %v, want >= 60ms", elapsed)
	}
}

func TestKillAndHeal(t *testing.T) {
	f := New(transport.NewInProc(), 7)
	send, c := pair(t, f)

	if err := send.Send("dst", env("before")); err != nil {
		t.Fatal(err)
	}
	c.waitFor(t, 1)

	f.Kill("dst")
	if _, err := f.Host("src").Dial("dst"); err == nil {
		t.Fatal("dial to killed address succeeded")
	}
	if f.Stats().ConnsSevered == 0 {
		t.Fatal("live connection not severed by Kill")
	}

	f.Heal("dst")
	// The messenger's backoff may be armed from failed deliveries during
	// the outage; poll until a send lands.
	deadline := time.Now().Add(5 * time.Second)
	for c.count() < 2 {
		send.Send("dst", env("after"))
		if time.Now().After(deadline) {
			t.Fatal("delivery never resumed after Heal")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestPartitionCutsBothDirections(t *testing.T) {
	inner := transport.NewInProc()
	f := New(inner, 7)
	for _, addr := range []string{"a1", "a2", "b1"} {
		l, err := f.Listen(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		go func() {
			for {
				if _, err := l.Accept(); err != nil {
					return
				}
			}
		}()
	}
	f.Partition([]string{"a1", "a2"}, []string{"b1"})

	if _, err := f.Host("a1").Dial("b1"); err == nil {
		t.Fatal("a1 -> b1 dial crossed the partition")
	}
	if _, err := f.Host("b1").Dial("a2"); err == nil {
		t.Fatal("b1 -> a2 dial crossed the partition")
	}
	// Same side stays connected.
	if _, err := f.Host("a1").Dial("a2"); err != nil {
		t.Fatalf("a1 -> a2 blocked within partition side: %v", err)
	}

	f.HealPartitions()
	if _, err := f.Host("a1").Dial("b1"); err != nil {
		t.Fatalf("partition not healed: %v", err)
	}
}

func TestBlackHoleIsOneWay(t *testing.T) {
	f := New(transport.NewInProc(), 7)
	ca, cb := &collector{}, &collector{}
	a, err := transport.NewMessengerOpts(f.Host("a"), "a", ca.handle, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := transport.NewMessengerOpts(f.Host("b"), "b", cb.handle, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	f.BlackHole("a", "b")
	if err := a.Send("b", env("into the void")); err != nil {
		t.Fatalf("black-holed send should look successful: %v", err)
	}
	if err := b.Send("a", env("reverse works")); err != nil {
		t.Fatal(err)
	}
	ca.waitFor(t, 1) // b -> a arrives
	time.Sleep(50 * time.Millisecond)
	if cb.count() != 0 {
		t.Fatal("black hole leaked a message")
	}

	f.HealBlackHole("a", "b")
	if err := a.Send("b", env("visible")); err != nil {
		t.Fatal(err)
	}
	cb.waitFor(t, 1)
}

func TestHangDialReleasedByHeal(t *testing.T) {
	f := New(transport.NewInProc(), 7)
	l, err := f.Listen("slow")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			if _, err := l.Accept(); err != nil {
				return
			}
		}
	}()
	f.HangDial("slow")

	done := make(chan error, 1)
	go func() {
		_, err := f.Dial("slow")
		done <- err
	}()
	select {
	case <-done:
		t.Fatal("hung dial returned early")
	case <-time.After(100 * time.Millisecond):
	}
	f.HealDial("slow")
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("dial after heal: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("dial never released after HealDial")
	}
}
