package agent

import (
	"fmt"
	"hash/crc32"

	"bestpeer/internal/wire"
)

// Built-in agent classes. Class payloads are synthetic "bytecode" blobs
// sized like the Java classes they stand in for, so class shipping moves
// a realistic number of bytes.

// classBlob builds a deterministic pseudo-bytecode payload for a class.
func classBlob(class string, size int) []byte {
	b := make([]byte, size)
	seed := crc32.ChecksumIEEE([]byte(class))
	for i := range b {
		seed = seed*1664525 + 1013904223
		b[i] = byte(seed >> 24)
	}
	copy(b, class) // embed the name so blobs are self-describing
	return b
}

// KeywordClass is the class name of the paper's StorM search agent.
const KeywordClass = "storm.keyword"

// KeywordAgent is the StorM search agent of §4.2: it carries a keyword,
// compares it against every object in the local Shared-StorM database,
// and returns the matches.
type KeywordAgent struct {
	Query string
}

// Class implements Agent.
func (a *KeywordAgent) Class() string { return KeywordClass }

// State implements Agent.
func (a *KeywordAgent) State() ([]byte, error) {
	var e wire.Encoder
	e.String(a.Query)
	return e.Bytes(), nil
}

// Execute implements Agent: scan the local store and return matching
// objects, rendering active objects through their active elements.
func (a *KeywordAgent) Execute(ctx *Context) ([]Result, error) {
	matches, err := ctx.Store.Match(a.Query)
	if err != nil {
		return nil, err
	}
	var out []Result
	for _, obj := range matches {
		data, ok := ctx.ActiveNodes.RenderObject(obj, ctx.AccessLevel)
		if !ok {
			continue // requester may not see this object at all
		}
		out = append(out, Result{Name: obj.Name, Data: data})
	}
	return out, nil
}

type keywordFactory struct{ code []byte }

// NewKeywordFactory returns the factory for the keyword search class.
func NewKeywordFactory() Factory {
	return &keywordFactory{code: classBlob(KeywordClass, 6*1024)}
}

func (f *keywordFactory) Class() string { return KeywordClass }
func (f *keywordFactory) Code() []byte  { return f.code }
func (f *keywordFactory) New(state []byte) (Agent, error) {
	d := wire.NewDecoder(state)
	a := &KeywordAgent{Query: d.String()}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: keyword state: %v", ErrBadPacket, err)
	}
	return a, nil
}

// FilterClass is the class name of the shipped-filter agent.
const FilterClass = "storm.filter"

// FilterAgent realizes computational-power sharing (§3.2.3): the
// requester's filter expression executes at the provider against the
// provider's data.
type FilterAgent struct {
	Expr string
	// IncludeData controls whether matching objects' content is
	// returned or only their names (the requester may want a listing).
	IncludeData bool
}

// Class implements Agent.
func (a *FilterAgent) Class() string { return FilterClass }

// State implements Agent.
func (a *FilterAgent) State() ([]byte, error) {
	if _, err := CompileFilter(a.Expr); err != nil {
		return nil, err // refuse to ship a filter that cannot compile
	}
	var e wire.Encoder
	e.String(a.Expr)
	e.Bool(a.IncludeData)
	return e.Bytes(), nil
}

// Execute implements Agent.
func (a *FilterAgent) Execute(ctx *Context) ([]Result, error) {
	pred, err := CompileFilter(a.Expr)
	if err != nil {
		return nil, err
	}
	matches, err := ctx.Store.MatchFunc(pred)
	if err != nil {
		return nil, err
	}
	var out []Result
	for _, obj := range matches {
		data, ok := ctx.ActiveNodes.RenderObject(obj, ctx.AccessLevel)
		if !ok {
			continue
		}
		r := Result{Name: obj.Name}
		if a.IncludeData {
			r.Data = data
		}
		out = append(out, r)
	}
	return out, nil
}

type filterFactory struct{ code []byte }

// NewFilterFactory returns the factory for the shipped-filter class.
func NewFilterFactory() Factory {
	return &filterFactory{code: classBlob(FilterClass, 9*1024)}
}

func (f *filterFactory) Class() string { return FilterClass }
func (f *filterFactory) Code() []byte  { return f.code }
func (f *filterFactory) New(state []byte) (Agent, error) {
	d := wire.NewDecoder(state)
	a := &FilterAgent{Expr: d.String(), IncludeData: d.Bool()}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: filter state: %v", ErrBadPacket, err)
	}
	if _, err := CompileFilter(a.Expr); err != nil {
		return nil, err
	}
	return a, nil
}

// DigestClass is the class name of the digesting agent.
const DigestClass = "storm.digest"

// DigestAgent demonstrates the paper's "processed and meaningful
// information" return: instead of raw files, each match is summarized as
// "name size crc32" so only a digest crosses the network.
type DigestAgent struct {
	Query string
}

// Class implements Agent.
func (a *DigestAgent) Class() string { return DigestClass }

// State implements Agent.
func (a *DigestAgent) State() ([]byte, error) {
	var e wire.Encoder
	e.String(a.Query)
	return e.Bytes(), nil
}

// Execute implements Agent.
func (a *DigestAgent) Execute(ctx *Context) ([]Result, error) {
	matches, err := ctx.Store.Match(a.Query)
	if err != nil {
		return nil, err
	}
	var out []Result
	for _, obj := range matches {
		data, ok := ctx.ActiveNodes.RenderObject(obj, ctx.AccessLevel)
		if !ok {
			continue
		}
		digest := fmt.Sprintf("%s %d %08x", obj.Name, len(data), crc32.ChecksumIEEE(data))
		out = append(out, Result{Name: obj.Name, Data: []byte(digest)})
	}
	return out, nil
}

type digestFactory struct{ code []byte }

// NewDigestFactory returns the factory for the digest class.
func NewDigestFactory() Factory {
	return &digestFactory{code: classBlob(DigestClass, 4*1024)}
}

func (f *digestFactory) Class() string { return DigestClass }
func (f *digestFactory) Code() []byte  { return f.code }
func (f *digestFactory) New(state []byte) (Agent, error) {
	d := wire.NewDecoder(state)
	a := &DigestAgent{Query: d.String()}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: digest state: %v", ErrBadPacket, err)
	}
	return a, nil
}

// RegisterBuiltins registers every built-in class as installed.
func RegisterBuiltins(r *Registry) error {
	for _, f := range []Factory{NewKeywordFactory(), NewFilterFactory(), NewDigestFactory(), NewTopKFactory()} {
		if err := r.Register(f); err != nil {
			return err
		}
	}
	return nil
}

// RegisterBuiltinsDormant links every built-in class without installing
// it, so the first arriving agent of each class triggers a class
// transfer (cold-start peers).
func RegisterBuiltinsDormant(r *Registry) error {
	for _, f := range []Factory{NewKeywordFactory(), NewFilterFactory(), NewDigestFactory(), NewTopKFactory()} {
		if err := r.RegisterDormant(f); err != nil {
			return err
		}
	}
	return nil
}
