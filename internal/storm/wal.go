package storm

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"

	"bestpeer/internal/obs"
	"bestpeer/internal/wire"
)

// WAL is a logical write-ahead log giving the store crash durability:
// every Put and Delete is appended (and optionally fsynced) before the
// page mutation, and a reopening store replays the tail of the log over
// whatever subset of dirty pages reached disk. Replay is idempotent —
// records are keyed by name and re-applying an op is harmless — so a
// crash at any point loses at most the operations after the last synced
// record, never already-acknowledged ones.
//
// Record layout (length-prefixed, CRC-guarded):
//
//	uint32 length | uint32 crc of payload | payload
//	payload: uint8 op | name | (for put: full object record)
//
// A checkpoint (Store.Checkpoint) flushes all pages and truncates the
// log.

// WAL operation codes.
const (
	walPut    = 1
	walDelete = 2
)

// ErrBadWALRecord reports a corrupt (usually torn) log record.
var ErrBadWALRecord = errors.New("storm: bad WAL record")

// maxWALRecord bounds a record read so a torn length prefix cannot cause
// a giant allocation.
const maxWALRecord = PageSize * 2

// WAL is an append-only operation log.
type WAL struct {
	f      *os.File
	w      *bufio.Writer
	sync   bool
	closed bool

	// Appended counts records written since open.
	Appended uint64

	// Optional metric handles, bound by the owning store: appended
	// records and per-append fsync latency.
	appends      *obs.Counter
	fsyncSeconds *obs.Histogram
}

// bindMetrics registers the WAL's metric families on reg.
func (w *WAL) bindMetrics(reg *obs.Registry) {
	w.appends = reg.Counter("bestpeer_storm_wal_appends_total",
		"Records appended to the write-ahead log.")
	w.fsyncSeconds = reg.Histogram("bestpeer_storm_wal_fsync_seconds",
		"Write-ahead log fsync latency per synced append.", obs.LatencyBuckets)
}

// OpenWAL opens (creating if needed) the log at path. When syncEvery is
// true every append is fsynced — full durability at the cost of one
// fsync per operation; otherwise the OS flushes lazily and a crash may
// lose the most recent operations but never corrupts the store.
func OpenWAL(path string, syncEvery bool) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storm: open wal: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		_ = f.Close() // already failing; the seek error is what matters
		return nil, err
	}
	return &WAL{f: f, w: bufio.NewWriter(f), sync: syncEvery}, nil
}

// walRecord is one replayable operation.
type walRecord struct {
	Op   uint8
	Name string
	Obj  *Object // nil for deletes
}

func encodeWALRecord(r *walRecord) ([]byte, error) {
	var e wire.Encoder
	e.Uint8(r.Op)
	e.String(r.Name)
	if r.Op == walPut {
		rec, err := encodeObject(r.Obj)
		if err != nil {
			return nil, err
		}
		e.Bytes2(rec)
	}
	return e.Bytes(), nil
}

func decodeWALRecord(payload []byte) (*walRecord, error) {
	d := wire.NewDecoder(payload)
	r := &walRecord{Op: d.Uint8(), Name: d.String()}
	if r.Op == walPut {
		rec := d.Bytes2()
		obj, err := decodeObject(rec)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadWALRecord, err)
		}
		r.Obj = obj
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadWALRecord, err)
	}
	if r.Op != walPut && r.Op != walDelete {
		return nil, fmt.Errorf("%w: op %d", ErrBadWALRecord, r.Op)
	}
	return r, nil
}

// Append writes one record, flushing (and fsyncing when configured)
// before returning.
func (w *WAL) Append(r *walRecord) error {
	if w.closed {
		return ErrClosed
	}
	payload, err := encodeWALRecord(r)
	if err != nil {
		return err
	}
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(payload); err != nil {
		return err
	}
	if err := w.w.Flush(); err != nil {
		return err
	}
	if w.sync {
		start := time.Now()
		if err := w.f.Sync(); err != nil {
			return err
		}
		if w.fsyncSeconds != nil {
			w.fsyncSeconds.ObserveDuration(time.Since(start))
		}
	}
	w.Appended++
	if w.appends != nil {
		w.appends.Inc()
	}
	return nil
}

// Replay reads records from the start of the log, calling fn for each. A
// torn or corrupt tail ends replay without error — those operations were
// never acknowledged as durable.
func (w *WAL) Replay(fn func(*walRecord) error) (int, error) {
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return 0, err
	}
	defer w.f.Seek(0, io.SeekEnd) //nolint:errcheck
	br := bufio.NewReader(w.f)
	n := 0
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return n, nil // clean end or torn header: stop
		}
		length := binary.BigEndian.Uint32(hdr[0:4])
		sum := binary.BigEndian.Uint32(hdr[4:8])
		if length == 0 || length > maxWALRecord {
			return n, nil // torn length
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(br, payload); err != nil {
			return n, nil // torn body
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return n, nil // torn or bit-rotted record
		}
		rec, err := decodeWALRecord(payload)
		if err != nil {
			return n, nil // structurally invalid: treat as torn tail
		}
		if err := fn(rec); err != nil {
			return n, err
		}
		n++
	}
}

// Truncate discards the log contents (after a checkpoint).
func (w *WAL) Truncate() error {
	if w.closed {
		return ErrClosed
	}
	if err := w.w.Flush(); err != nil {
		return err
	}
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	return w.f.Sync()
}

// Size returns the current log length in bytes.
func (w *WAL) Size() (int64, error) {
	if err := w.w.Flush(); err != nil {
		return 0, err
	}
	st, err := w.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Close flushes and closes the log.
func (w *WAL) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.w.Flush(); err != nil {
		_ = w.f.Close() // already failing; the flush error wins
		return err
	}
	return w.f.Close()
}
