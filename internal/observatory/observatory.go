// Package observatory implements BestPeer's fleet-level observability:
// a collector that scrapes member admin endpoints (/events, /peers,
// /healthz, /metrics.json), merges the per-node journals into a fleet
// snapshot — overlay topology, cross-node query traces, convergence
// timeline — with ring-overflow loss accounted per member rather than
// silently missing.
package observatory

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"bestpeer/internal/obs"
	"bestpeer/internal/wire"
)

// maxEventsPerPage is the page size the collector requests; paging
// continues while pages come back full.
const maxEventsPerPage = 512

// maxScrapePages bounds how many full pages one scrape drains from a
// single member. A member that answers every page full — buggy cursor
// arithmetic, or a journal growing faster than we drain it — must not
// wedge the scrape loop; the remainder is picked up next interval.
const maxScrapePages = 64

// NodeView is one member's contribution to a fleet snapshot.
type NodeView struct {
	// Admin is the member's admin endpoint (host:port) as registered
	// with the collector.
	Admin string `json:"admin"`
	// Node is the member's overlay address, learned from its journal.
	Node string `json:"node,omitempty"`
	// Peers is the member's current direct-peer set, sorted.
	Peers []string `json:"peers"`
	// Health is the member's /healthz payload.
	Health map[string]any `json:"health,omitempty"`
	// Metrics is the member's metric snapshot.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
	// EventsTotal is the member journal's lifetime event count;
	// EventsMissed is how many of those the collector never saw because
	// the ring evicted them first (accumulated across scrapes).
	EventsTotal  uint64 `json:"events_total"`
	EventsMissed uint64 `json:"events_missed"`
	// EventsEvicted is the member journal's lifetime eviction counter —
	// the raw material for the journal-overflow health signal.
	EventsEvicted uint64 `json:"events_evicted"`
	// Err is the last scrape error for this member, empty when healthy.
	Err string `json:"err,omitempty"`
}

// FleetSnapshot is one merged view of the whole fleet.
type FleetSnapshot struct {
	At    time.Time   `json:"at"`
	Nodes []*NodeView `json:"nodes"`
	// Events is every journal event the collector has accumulated, in
	// collection order (per-member order preserved).
	Events []obs.Event `json:"events"`
	// Missed is the fleet-wide count of events lost to ring overflow
	// before the collector could read them.
	Missed uint64 `json:"missed"`
}

// Topology returns the overlay graph: each member's overlay address
// mapped to its sorted direct-peer list. Members whose overlay address
// is unknown (never scraped successfully) are keyed by admin address.
func (s *FleetSnapshot) Topology() map[string][]string {
	out := make(map[string][]string, len(s.Nodes))
	for _, n := range s.Nodes {
		key := n.Node
		if key == "" {
			key = n.Admin
		}
		out[key] = append([]string(nil), n.Peers...)
	}
	return out
}

// Rounds folds the accumulated fleet events into a convergence timeline.
func (s *FleetSnapshot) Rounds() []Round { return Timeline(s.Events) }

// FleetTrace is a query trace assembled across the fleet: the base
// node's span list extended with spans synthesized from other members'
// journals — hops the base never heard about (span reports lost in
// transit) are recovered rather than absent.
type FleetTrace struct {
	ID   string `json:"id"`
	Base string `json:"base,omitempty"`
	// Spans is the merged span list: the base's trace first, then the
	// recovered spans.
	Spans []wire.TraceSpan `json:"spans"`
	// Recovered is how many spans came from member journals only.
	Recovered int `json:"recovered"`
	// Events is every fleet event attributed to the query.
	Events []obs.Event `json:"events"`
}

// Collector scrapes member admin endpoints and accumulates their
// journals. Safe for concurrent use.
type Collector struct {
	client *http.Client
	health *Health

	mu      sync.Mutex
	members []string
	cursors map[string]uint64
	views   map[string]*NodeView
	samples map[string]MemberSample
	events  []obs.Event
	missed  uint64
}

// NewCollector creates a collector over the given member admin
// addresses (host:port), with the stock health rule set armed.
func NewCollector(members ...string) *Collector {
	c := &Collector{
		client:  &http.Client{Timeout: 5 * time.Second},
		health:  NewHealth(DefaultRules(), 0, 0),
		cursors: make(map[string]uint64),
		views:   make(map[string]*NodeView),
		samples: make(map[string]MemberSample),
	}
	for _, m := range members {
		c.AddMember(m)
	}
	return c
}

// Health returns the collector's fleet health engine.
func (c *Collector) Health() *Health { return c.health }

// AddMember registers another member admin endpoint.
func (c *Collector) AddMember(addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, m := range c.members {
		if m == addr {
			return
		}
	}
	c.members = append(c.members, addr)
}

// Members returns the registered member admin addresses.
func (c *Collector) Members() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.members...)
}

func (c *Collector) getJSON(addr, path string, v any) error {
	resp, err := c.client.Get("http://" + addr + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("observatory: GET %s%s: %s", addr, path, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}

// scrapeMember reads one member's journal tail (paging from the saved
// cursor), peer set, health and metrics. It returns the refreshed view;
// journal events and missed counts are appended to the fleet
// accumulators by the caller.
func (c *Collector) scrapeMember(addr string, cursor uint64) (*NodeView, []obs.Event, uint64, uint64) {
	view := &NodeView{Admin: addr, Peers: []string{}}
	var collected []obs.Event
	var missed uint64
	next := cursor
	for pages := 0; pages < maxScrapePages; pages++ {
		var page obs.EventsPage
		if err := c.getJSON(addr, fmt.Sprintf("/events?since=%d&max=%d", next, maxEventsPerPage), &page); err != nil {
			view.Err = err.Error()
			return view, collected, missed, next
		}
		collected = append(collected, page.Events...)
		missed += page.Missed
		next = page.Next
		view.Node = page.Node
		view.EventsTotal = page.Total
		view.EventsEvicted = page.Evicted
		if len(page.Events) < maxEventsPerPage {
			break
		}
	}
	var health map[string]any
	if err := c.getJSON(addr, "/healthz", &health); err == nil {
		view.Health = health
	}
	var peers []struct{ Addr string }
	if err := c.getJSON(addr, "/peers", &peers); err == nil {
		addrs := make([]string, 0, len(peers))
		for _, p := range peers {
			addrs = append(addrs, p.Addr)
		}
		sort.Strings(addrs)
		view.Peers = addrs
	}
	var snap obs.Snapshot
	if err := c.getJSON(addr, "/metrics.json", &snap); err == nil {
		view.Metrics = &snap
	}
	return view, collected, missed, next
}

// Scrape polls every member once and returns the merged fleet snapshot.
// Event cursors persist across scrapes, so each call reads only new
// events; ring overflow between scrapes lands in Missed, never silently.
// Unreachable members keep their last view with Err set.
func (c *Collector) Scrape() *FleetSnapshot {
	for _, addr := range c.Members() {
		c.ScrapeOne(addr)
	}
	return c.Snapshot()
}

// ScrapeOne polls a single member, merges its view into the fleet
// state, and feeds the scrape through the health engine — derived
// signals keyed by the member's admin address, which is stable even
// while the overlay address is still unknown. The jittered bpobs loop
// calls this per member so a large fleet is not scraped as one herd.
func (c *Collector) ScrapeOne(addr string) {
	c.mu.Lock()
	cursor := c.cursors[addr]
	prev := c.views[addr]
	prevSample := c.samples[addr]
	c.mu.Unlock()

	view, events, missed, next := c.scrapeMember(addr, cursor)
	up := view.Err == ""

	cur := MemberSample{
		At: time.Now(), Up: up,
		Metrics: view.Metrics,
		Events:  events,
		Evicted: view.EventsEvicted,
	}
	exemplar := ""
	if cur.Metrics != nil {
		exemplar = cur.Metrics.TailExemplar("bestpeer_node_agent_exec_seconds")
		if exemplar == "" {
			exemplar = cur.Metrics.TailExemplar("bestpeer_node_answer_hops")
		}
	}
	c.health.Ingest(addr, cur.At, DeriveSignals(prevSample, cur), exemplar)

	c.mu.Lock()
	if view.Err != "" && prev != nil {
		// Keep the last good view but surface the scrape error and
		// the loss already accumulated.
		prev.Err = view.Err
		view = prev
	}
	if prev != nil {
		view.EventsMissed = prev.EventsMissed
	}
	view.EventsMissed += missed
	c.views[addr] = view
	c.cursors[addr] = next
	c.events = append(c.events, events...)
	c.missed += missed
	if up {
		// A failed scrape keeps the previous sample so the recovery
		// window deltas from the last good metrics, not from nothing.
		c.samples[addr] = cur
	}
	c.mu.Unlock()
}

// Snapshot assembles the current fleet view from accumulated state
// without touching the network.
func (c *Collector) Snapshot() *FleetSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := &FleetSnapshot{
		At:     time.Now(),
		Events: append([]obs.Event(nil), c.events...),
		Missed: c.missed,
	}
	for _, addr := range c.members {
		if v, ok := c.views[addr]; ok {
			snap.Nodes = append(snap.Nodes, v)
		} else {
			snap.Nodes = append(snap.Nodes, &NodeView{Admin: addr, Peers: []string{}, Err: "not scraped yet"})
		}
	}
	return snap
}

// AssembleTrace builds the cross-node trace for a query from the
// accumulated fleet events plus the base node's own trace (fetched from
// its admin endpoint when the base is known). Spans recorded by the base
// win; spans seen only in member journals are appended and counted as
// recovered.
func (c *Collector) AssembleTrace(id string) *FleetTrace {
	c.mu.Lock()
	var events []obs.Event
	base, baseAdmin := "", ""
	for _, e := range c.events {
		if e.Query != id {
			continue
		}
		events = append(events, e)
		if e.Kind == obs.EvQueryIssued {
			base = e.Node
		}
	}
	if base != "" {
		for admin, v := range c.views {
			if v.Node == base {
				baseAdmin = admin
				break
			}
		}
	}
	c.mu.Unlock()

	ft := &FleetTrace{ID: id, Base: base, Events: events}
	type key struct {
		peer string
		hop  int
	}
	have := make(map[key]bool)
	if baseAdmin != "" {
		var payload struct {
			Trace obs.QueryTrace `json:"trace"`
		}
		if err := c.getJSON(baseAdmin, "/queries/"+id, &payload); err == nil {
			ft.Spans = append(ft.Spans, payload.Trace.Spans...)
			for _, s := range payload.Trace.Spans {
				have[key{s.Peer, s.Hop}] = true
			}
		}
	}
	// Synthesize spans the base never received from member journals:
	// forwarded and dropped events carry (node, previous hop, distance).
	for _, e := range events {
		var span wire.TraceSpan
		switch e.Kind {
		case obs.EvAgentForwarded:
			span = wire.TraceSpan{Peer: e.Node, Parent: e.Peer, Hop: e.Hops, FanOut: e.Count}
		case obs.EvAgentDropped:
			span = wire.TraceSpan{Peer: e.Node, Parent: e.Peer, Hop: e.Hops, Drop: e.Reason}
		default:
			continue
		}
		k := key{span.Peer, span.Hop}
		if have[k] {
			continue
		}
		have[k] = true
		ft.Spans = append(ft.Spans, span)
		ft.Recovered++
	}
	return ft
}
