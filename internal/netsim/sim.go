// Package netsim is a deterministic discrete-event network simulator. It
// stands in for the paper's dedicated 32-PC cluster: hosts with a
// configurable number of CPU threads exchange messages over links with
// latency and bandwidth, and all protocol work is charged simulated time.
//
// The simulator is deliberately generic — the BestPeer, client/server and
// Gnutella protocol models in internal/bench are built on top of it — and
// deterministic: two runs with the same inputs produce identical event
// orderings and timings.
package netsim

import (
	"container/heap"
	"fmt"
	"time"
)

// event is a scheduled callback.
type event struct {
	at  time.Duration
	seq uint64 // tie-breaker: FIFO among simultaneous events
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Sim is a discrete-event simulation engine. The zero value is not ready;
// use NewSim.
type Sim struct {
	now    time.Duration
	seq    uint64
	events eventHeap
	steps  uint64
	limit  uint64 // safety valve against runaway simulations
}

// NewSim returns an engine positioned at time zero.
func NewSim() *Sim {
	return &Sim{limit: 50_000_000}
}

// Now returns the current simulated time.
func (s *Sim) Now() time.Duration { return s.now }

// Steps returns the number of events executed so far.
func (s *Sim) Steps() uint64 { return s.steps }

// At schedules fn at absolute simulated time t. Scheduling in the past
// panics: it would violate causality and indicates a protocol-model bug.
func (s *Sim) At(t time.Duration, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("netsim: scheduling at %v before now %v", t, s.now))
	}
	s.seq++
	heap.Push(&s.events, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d after the current time. Negative delays are
// clamped to zero.
func (s *Sim) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.At(s.now+d, fn)
}

// Run executes events until the queue drains and returns the final time.
func (s *Sim) Run() time.Duration {
	for len(s.events) > 0 {
		s.step()
	}
	return s.now
}

// RunUntil executes events with timestamps <= t, then advances the clock
// to t. Events scheduled later remain queued.
func (s *Sim) RunUntil(t time.Duration) {
	for len(s.events) > 0 && s.events[0].at <= t {
		s.step()
	}
	if t > s.now {
		s.now = t
	}
}

func (s *Sim) step() {
	e := heap.Pop(&s.events).(*event)
	s.now = e.at
	s.steps++
	if s.steps > s.limit {
		panic("netsim: event limit exceeded; simulation is likely divergent")
	}
	e.fn()
}

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return len(s.events) }
