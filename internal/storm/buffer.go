package storm

import (
	"errors"
	"fmt"
	"sync"
)

// Buffer pool errors.
var (
	ErrNoFrames  = errors.New("storm: all buffer frames pinned")
	ErrNotPinned = errors.New("storm: page not pinned")
)

type frameMeta struct {
	page  PageID
	pins  int
	dirty bool
	used  bool
}

// BufferPool caches pages in a fixed set of frames, delegating victim
// selection to a pluggable Replacer. All methods are safe for concurrent
// use, but the contents of a fetched *Page are only protected while the
// page is pinned and callers mutating a page must serialize among
// themselves (Store does).
type BufferPool struct {
	mu     sync.Mutex
	file   *DiskFile
	frames []Page
	meta   []frameMeta
	table  map[PageID]int
	free   []int
	rep    Replacer

	// Stats.
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	DirtyFlush uint64
}

// NewBufferPool creates a pool of n frames over file using rep for
// replacement. n must be at least 1.
func NewBufferPool(file *DiskFile, n int, rep Replacer) *BufferPool {
	if n < 1 {
		n = 1
	}
	if rep == nil {
		rep = NewLRU()
	}
	bp := &BufferPool{
		file:   file,
		frames: make([]Page, n),
		meta:   make([]frameMeta, n),
		table:  make(map[PageID]int, n),
		rep:    rep,
	}
	for i := n - 1; i >= 0; i-- {
		bp.free = append(bp.free, i)
	}
	return bp
}

// Capacity returns the number of frames.
func (b *BufferPool) Capacity() int { return len(b.frames) }

// Policy returns the replacement policy name.
func (b *BufferPool) Policy() string { return b.rep.Name() }

// Fetch pins page id and returns its in-memory image, reading from disk
// on a miss. Every Fetch must be paired with an Unpin.
func (b *BufferPool) Fetch(id PageID) (*Page, error) {
	b.mu.Lock()
	defer b.mu.Unlock()

	if f, ok := b.table[id]; ok {
		b.Hits++
		m := &b.meta[f]
		if m.pins == 0 {
			b.rep.Remove(f)
		} else {
			b.rep.Touch(f)
		}
		m.pins++
		return &b.frames[f], nil
	}

	b.Misses++
	f, err := b.victimLocked()
	if err != nil {
		return nil, err
	}
	if err := b.file.ReadPage(id, &b.frames[f]); err != nil {
		// Return the frame to the free list; nothing valid is in it.
		b.meta[f] = frameMeta{}
		b.free = append(b.free, f)
		return nil, err
	}
	b.meta[f] = frameMeta{page: id, pins: 1, used: true}
	b.table[id] = f
	return &b.frames[f], nil
}

// NewPage allocates a fresh page on disk, pins it and returns it.
func (b *BufferPool) NewPage() (*Page, error) {
	b.mu.Lock()
	defer b.mu.Unlock()

	f, err := b.victimLocked()
	if err != nil {
		return nil, err
	}
	id, err := b.file.Allocate()
	if err != nil {
		b.meta[f] = frameMeta{}
		b.free = append(b.free, f)
		return nil, err
	}
	b.frames[f].Init(id)
	b.meta[f] = frameMeta{page: id, pins: 1, dirty: true, used: true}
	b.table[id] = f
	return &b.frames[f], nil
}

// victimLocked returns a usable frame, evicting if necessary. Caller holds
// b.mu.
func (b *BufferPool) victimLocked() (int, error) {
	if n := len(b.free); n > 0 {
		f := b.free[n-1]
		b.free = b.free[:n-1]
		return f, nil
	}
	f, ok := b.rep.Victim()
	if !ok {
		return 0, ErrNoFrames
	}
	m := &b.meta[f]
	if m.dirty {
		if err := b.file.WritePage(&b.frames[f]); err != nil {
			// Re-register the frame; the caller sees the error.
			b.rep.Insert(f, 0)
			return 0, err
		}
		b.DirtyFlush++
	}
	b.Evictions++
	delete(b.table, m.page)
	*m = frameMeta{}
	return f, nil
}

// Unpin releases one pin on page id. dirty marks the page as modified.
// Hint is forwarded to the replacer when the pin count reaches zero.
func (b *BufferPool) Unpin(id PageID, dirty bool) error { return b.UnpinHint(id, dirty, 0) }

// UnpinHint is Unpin with an explicit replacement hint (used by the
// priority policy).
func (b *BufferPool) UnpinHint(id PageID, dirty bool, hint float64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	f, ok := b.table[id]
	if !ok {
		return fmt.Errorf("%w: page %d not resident", ErrNotPinned, id)
	}
	m := &b.meta[f]
	if m.pins == 0 {
		return fmt.Errorf("%w: page %d pin count already zero", ErrNotPinned, id)
	}
	m.pins--
	if dirty {
		m.dirty = true
	}
	if m.pins == 0 {
		b.rep.Insert(f, hint)
	}
	return nil
}

// FlushPage writes page id to disk if resident and dirty.
func (b *BufferPool) FlushPage(id PageID) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	f, ok := b.table[id]
	if !ok {
		return nil
	}
	m := &b.meta[f]
	if !m.dirty {
		return nil
	}
	if err := b.file.WritePage(&b.frames[f]); err != nil {
		return err
	}
	m.dirty = false
	b.DirtyFlush++
	return nil
}

// FlushAll writes every dirty resident page to disk.
func (b *BufferPool) FlushAll() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for f := range b.meta {
		m := &b.meta[f]
		if !m.used || !m.dirty {
			continue
		}
		if err := b.file.WritePage(&b.frames[f]); err != nil {
			return err
		}
		m.dirty = false
		b.DirtyFlush++
	}
	return nil
}

// PinCount reports the pin count of page id, or 0 if not resident.
func (b *BufferPool) PinCount(id PageID) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if f, ok := b.table[id]; ok {
		return b.meta[f].pins
	}
	return 0
}

// Resident reports whether page id is in the pool.
func (b *BufferPool) Resident(id PageID) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.table[id]
	return ok
}

// HitRate returns the fraction of fetches served from memory.
func (b *BufferPool) HitRate() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	total := b.Hits + b.Misses
	if total == 0 {
		return 0
	}
	return float64(b.Hits) / float64(total)
}
