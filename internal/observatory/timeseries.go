package observatory

import (
	"sort"
	"sync"
	"time"
)

// TSPoint is one sample of a derived signal.
type TSPoint struct {
	At time.Time `json:"at"`
	V  float64   `json:"v"`
}

// Ring is a fixed-capacity time series. When full it does not evict:
// it pairwise-merges adjacent points (mean value, midpoint timestamp),
// halving the resolution so the retained window keeps doubling. A ring
// of capacity 256 scraping every 2s holds ~8.5 minutes at full
// resolution, ~17 at half, and so on — old history degrades gracefully
// instead of vanishing, which is what a convergence-lag rule needs.
// Ring is not safe for concurrent use; SeriesStore adds the lock.
type Ring struct {
	cap    int
	points []TSPoint
}

// NewRing creates a ring holding at most capacity points (minimum 2,
// rounded down to even so pairwise merging is exact).
func NewRing(capacity int) *Ring {
	if capacity < 2 {
		capacity = 2
	}
	capacity &^= 1
	return &Ring{cap: capacity, points: make([]TSPoint, 0, capacity)}
}

// Add appends one sample, downsampling first when the ring is full.
func (r *Ring) Add(p TSPoint) {
	if len(r.points) >= r.cap {
		merged := r.points[:0]
		for i := 0; i+1 < len(r.points); i += 2 {
			a, b := r.points[i], r.points[i+1]
			merged = append(merged, TSPoint{
				At: a.At.Add(b.At.Sub(a.At) / 2),
				V:  (a.V + b.V) / 2,
			})
		}
		r.points = merged
	}
	r.points = append(r.points, p)
}

// Points returns a copy of the retained samples, oldest first.
func (r *Ring) Points() []TSPoint {
	return append([]TSPoint(nil), r.points...)
}

// Last returns the most recent sample, false when empty.
func (r *Ring) Last() (TSPoint, bool) {
	if len(r.points) == 0 {
		return TSPoint{}, false
	}
	return r.points[len(r.points)-1], true
}

// Len returns the number of retained samples.
func (r *Ring) Len() int { return len(r.points) }

// DefaultSeriesCapacity is the per-series ring size used by
// NewSeriesStore when given zero.
const DefaultSeriesCapacity = 256

// SeriesStore keeps one Ring per (member, series) pair. It is safe for
// concurrent use.
type SeriesStore struct {
	mu  sync.Mutex
	cap int
	m   map[string]map[string]*Ring // member -> series -> ring
}

// NewSeriesStore creates a store whose rings hold capacity points each
// (≤ 0 selects DefaultSeriesCapacity).
func NewSeriesStore(capacity int) *SeriesStore {
	if capacity <= 0 {
		capacity = DefaultSeriesCapacity
	}
	return &SeriesStore{cap: capacity, m: make(map[string]map[string]*Ring)}
}

// Add records one sample for the member's series.
func (s *SeriesStore) Add(member, series string, p TSPoint) {
	s.mu.Lock()
	defer s.mu.Unlock()
	byName, ok := s.m[member]
	if !ok {
		byName = make(map[string]*Ring)
		s.m[member] = byName
	}
	r, ok := byName[series]
	if !ok {
		r = NewRing(s.cap)
		byName[series] = r
	}
	r.Add(p)
}

// Points returns the member's series samples, oldest first, nil when
// the member or series is unknown.
func (s *SeriesStore) Points(member, series string) []TSPoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.m[member][series]; ok {
		return r.Points()
	}
	return nil
}

// Last returns the member's most recent sample for the series.
func (s *SeriesStore) Last(member, series string) (TSPoint, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.m[member][series]; ok {
		return r.Last()
	}
	return TSPoint{}, false
}

// Members returns the known member keys, sorted.
func (s *SeriesStore) Members() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.m))
	for k := range s.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Names returns the member's series names, sorted; nil for an unknown
// member.
func (s *SeriesStore) Names(member string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	byName, ok := s.m[member]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(byName))
	for k := range byName {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Has reports whether the member has any series.
func (s *SeriesStore) Has(member string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.m[member]
	return ok
}

// All returns every member's every series, for serving. The nested
// maps are fresh copies.
func (s *SeriesStore) All() map[string]map[string][]TSPoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]map[string][]TSPoint, len(s.m))
	for member, byName := range s.m {
		series := make(map[string][]TSPoint, len(byName))
		for name, r := range byName {
			series[name] = r.Points()
		}
		out[member] = series
	}
	return out
}

// Downsample reduces points to at most max samples by pairwise
// averaging passes — the same degradation the ring itself applies —
// for callers serving wide windows to narrow clients.
func Downsample(points []TSPoint, max int) []TSPoint {
	if max < 2 {
		max = 2
	}
	out := append([]TSPoint(nil), points...)
	for len(out) > max {
		merged := make([]TSPoint, 0, (len(out)+1)/2)
		for i := 0; i+1 < len(out); i += 2 {
			a, b := out[i], out[i+1]
			merged = append(merged, TSPoint{
				At: a.At.Add(b.At.Sub(a.At) / 2),
				V:  (a.V + b.V) / 2,
			})
		}
		if len(out)%2 == 1 {
			merged = append(merged, out[len(out)-1])
		}
		out = merged
	}
	return out
}
