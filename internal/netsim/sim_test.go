package netsim

import (
	"testing"
	"time"
)

func TestSimOrdersEventsByTime(t *testing.T) {
	s := NewSim()
	var got []int
	s.At(30*time.Millisecond, func() { got = append(got, 3) })
	s.At(10*time.Millisecond, func() { got = append(got, 1) })
	s.At(20*time.Millisecond, func() { got = append(got, 2) })
	end := s.Run()
	if end != 30*time.Millisecond {
		t.Fatalf("end time = %v", end)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("execution order = %v", got)
	}
}

func TestSimFIFOAmongSimultaneous(t *testing.T) {
	s := NewSim()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Millisecond, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("simultaneous events reordered: %v", got)
		}
	}
}

func TestSimNestedScheduling(t *testing.T) {
	s := NewSim()
	var fired []time.Duration
	s.After(time.Second, func() {
		fired = append(fired, s.Now())
		s.After(2*time.Second, func() {
			fired = append(fired, s.Now())
		})
	})
	s.Run()
	if len(fired) != 2 || fired[0] != time.Second || fired[1] != 3*time.Second {
		t.Fatalf("nested events fired at %v", fired)
	}
}

func TestSimPastSchedulingPanics(t *testing.T) {
	s := NewSim()
	s.After(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(0, func() {})
	})
	s.Run()
}

func TestSimNegativeDelayClamped(t *testing.T) {
	s := NewSim()
	ran := false
	s.After(-time.Second, func() { ran = true })
	s.Run()
	if !ran {
		t.Fatal("negative-delay event never ran")
	}
	if s.Now() != 0 {
		t.Fatalf("clock advanced to %v", s.Now())
	}
}

func TestSimRunUntil(t *testing.T) {
	s := NewSim()
	var got []int
	s.At(time.Second, func() { got = append(got, 1) })
	s.At(3*time.Second, func() { got = append(got, 3) })
	s.RunUntil(2 * time.Second)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("RunUntil executed %v", got)
	}
	if s.Now() != 2*time.Second {
		t.Fatalf("clock = %v, want 2s", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
	s.Run()
	if len(got) != 2 || got[1] != 3 {
		t.Fatalf("Run after RunUntil executed %v", got)
	}
}

func TestSimDeterminism(t *testing.T) {
	trace := func() []time.Duration {
		s := NewSim()
		var out []time.Duration
		for i := 0; i < 50; i++ {
			d := time.Duration((i*37)%17) * time.Millisecond
			s.After(d, func() {
				out = append(out, s.Now())
				if s.Steps() < 200 {
					s.After(d/2+time.Microsecond, func() { out = append(out, s.Now()) })
				}
			})
		}
		s.Run()
		return out
	}
	a, b := trace(), trace()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestResourceSingleServerSerializes(t *testing.T) {
	s := NewSim()
	r := NewResource(s, 1)
	var ends []time.Duration
	for i := 0; i < 3; i++ {
		r.Submit(10*time.Millisecond, func() { ends = append(ends, s.Now()) })
	}
	if r.InService() != 1 || r.QueueLen() != 2 {
		t.Fatalf("in service %d queued %d", r.InService(), r.QueueLen())
	}
	s.Run()
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("job %d ended at %v, want %v", i, ends[i], want[i])
		}
	}
	if r.Served() != 3 {
		t.Fatalf("served = %d", r.Served())
	}
	if r.BusyTime() != 30*time.Millisecond {
		t.Fatalf("busy time = %v", r.BusyTime())
	}
}

func TestResourceMultiServerParallel(t *testing.T) {
	s := NewSim()
	r := NewResource(s, 3)
	var ends []time.Duration
	for i := 0; i < 3; i++ {
		r.Submit(10*time.Millisecond, func() { ends = append(ends, s.Now()) })
	}
	s.Run()
	for i, e := range ends {
		if e != 10*time.Millisecond {
			t.Fatalf("job %d ended at %v, want 10ms (parallel)", i, e)
		}
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	s := NewSim()
	r := NewResource(s, 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		r.Submit(time.Duration(5-i)*time.Millisecond, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("jobs started out of order: %v", order)
		}
	}
}

func TestResourceZeroAndNegativeDuration(t *testing.T) {
	s := NewSim()
	r := NewResource(s, 1)
	ran := 0
	r.Submit(0, func() { ran++ })
	r.Submit(-time.Second, func() { ran++ })
	s.Run()
	if ran != 2 {
		t.Fatalf("ran = %d", ran)
	}
	if s.Now() != 0 {
		t.Fatalf("zero-duration jobs advanced clock to %v", s.Now())
	}
}

func TestResourceServersFloor(t *testing.T) {
	s := NewSim()
	r := NewResource(s, 0)
	if r.servers != 1 {
		t.Fatalf("servers = %d, want floor of 1", r.servers)
	}
}
