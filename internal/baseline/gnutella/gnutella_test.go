package gnutella

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"bestpeer/internal/storm"
	"bestpeer/internal/topology"
	"bestpeer/internal/transport"
)

type cluster struct {
	nw       *transport.InProc
	servants []*Servant
}

func newCluster(t *testing.T, n int, seed func(i int, s *storm.Store)) *cluster {
	t.Helper()
	c := &cluster{nw: transport.NewInProc()}
	for i := 0; i < n; i++ {
		st, err := storm.Open(filepath.Join(t.TempDir(), fmt.Sprintf("g%d.storm", i)), storm.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if seed != nil {
			seed(i, st)
		} else {
			st.Put(&storm.Object{Name: fmt.Sprintf("file-%d.txt", i), Keywords: []string{"txt"}})
		}
		sv, err := NewServant(Config{Network: c.nw, ListenAddr: fmt.Sprintf("gnu-%d", i), Store: st})
		if err != nil {
			t.Fatal(err)
		}
		c.servants = append(c.servants, sv)
		store := st
		t.Cleanup(func() { sv.Close(); store.Close() })
	}
	return c
}

func (c *cluster) wire(tp *topology.Topology) {
	for i, sv := range c.servants {
		var addrs []string
		for _, j := range tp.Peers(i) {
			addrs = append(addrs, c.servants[j].Addr())
		}
		sv.SetPeers(addrs)
	}
}

func TestQueryFloodAndHitRouting(t *testing.T) {
	// Line 0-1-2-3: hits from 3 must route back through 2 and 1.
	c := newCluster(t, 4, func(i int, s *storm.Store) {
		if i == 3 {
			s.Put(&storm.Object{Name: "rare-song.mp3", Keywords: []string{"rare"}})
		}
	})
	c.wire(topology.Line(4))
	hits, err := c.servants[0].Query("rare", QueryOptions{Timeout: 2 * time.Second, WaitHits: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].Name != "rare-song.mp3" || hits[0].Origin != c.servants[3].Addr() {
		t.Fatalf("hits = %+v", hits)
	}
	for _, i := range []int{1, 2} {
		sv := c.servants[i]
		sv.mu.Lock()
		routed := sv.HitsRouted
		sv.mu.Unlock()
		if routed == 0 {
			t.Fatalf("servant %d did not route the hit back", i)
		}
	}
}

func TestQueryFindsAllHolders(t *testing.T) {
	c := newCluster(t, 6, nil)
	c.wire(topology.Tree(6, 2))
	hits, err := c.servants[0].Query("txt", QueryOptions{Timeout: 2 * time.Second, WaitHits: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 6 {
		t.Fatalf("hits = %d, want 6", len(hits))
	}
	origins := map[string]bool{}
	for _, h := range hits {
		origins[h.Origin] = true
	}
	if len(origins) != 6 {
		t.Fatalf("origins = %v", origins)
	}
}

func TestDuplicateSuppressionInCycle(t *testing.T) {
	c := newCluster(t, 3, nil)
	// Full mesh: every descriptor reaches each servant along 2 paths.
	for i, sv := range c.servants {
		var addrs []string
		for j, other := range c.servants {
			if j != i {
				addrs = append(addrs, other.Addr())
			}
		}
		sv.SetPeers(addrs)
	}
	hits, err := c.servants[0].Query("txt", QueryOptions{Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 3 {
		t.Fatalf("hits = %d, want exactly 3 (dup suppression)", len(hits))
	}
	for _, sv := range c.servants[1:] {
		sv.mu.Lock()
		ex := sv.Executed
		sv.mu.Unlock()
		if ex != 1 {
			t.Fatalf("servant executed query %d times", ex)
		}
	}
}

func TestTTLLimitsFlood(t *testing.T) {
	c := newCluster(t, 6, nil)
	c.wire(topology.Line(6))
	hits, err := c.servants[0].Query("txt", QueryOptions{TTL: 2, Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 3 { // self + nodes 1, 2
		t.Fatalf("hits = %d, want 3", len(hits))
	}
}

func TestPingPongDiscovery(t *testing.T) {
	c := newCluster(t, 4, nil)
	c.wire(topology.Line(4))
	pongs := c.servants[0].Ping(700 * time.Millisecond)
	if len(pongs) != 3 {
		t.Fatalf("pongs = %+v", pongs)
	}
	seen := map[string]bool{}
	for _, p := range pongs {
		seen[p.Addr] = true
		if p.Files != 1 {
			t.Fatalf("pong advertises %d files", p.Files)
		}
	}
	for _, sv := range c.servants[1:] {
		if !seen[sv.Addr()] {
			t.Fatalf("missing pong from %s", sv.Addr())
		}
	}
}

func TestFixedPeersNeverChange(t *testing.T) {
	c := newCluster(t, 3, func(i int, s *storm.Store) {
		if i == 2 {
			s.Put(&storm.Object{Name: "win", Keywords: []string{"w"}})
		}
	})
	c.wire(topology.Line(3))
	before := c.servants[0].Peers()
	if _, err := c.servants[0].Query("w", QueryOptions{Timeout: time.Second, WaitHits: 1}); err != nil {
		t.Fatal(err)
	}
	after := c.servants[0].Peers()
	if len(before) != len(after) || before[0] != after[0] {
		t.Fatalf("gnutella peer set changed: %v -> %v", before, after)
	}
}

func TestClosedServant(t *testing.T) {
	c := newCluster(t, 1, nil)
	c.servants[0].Close()
	if _, err := c.servants[0].Query("x", QueryOptions{}); err != ErrClosed {
		t.Fatalf("query after close: %v", err)
	}
	if got := c.servants[0].Ping(time.Millisecond); got != nil {
		t.Fatalf("ping after close: %v", got)
	}
	if err := c.servants[0].Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewServant(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestHitHopsRecorded(t *testing.T) {
	c := newCluster(t, 4, func(i int, s *storm.Store) {
		if i == 3 {
			s.Put(&storm.Object{Name: "deep-file", Keywords: []string{"d"}})
		}
	})
	c.wire(topology.Line(4))
	hits, err := c.servants[0].Query("d", QueryOptions{Timeout: 2 * time.Second, WaitHits: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].Hops != 3 {
		t.Fatalf("hit hops = %+v", hits)
	}
}

func TestProtoRoundTrips(t *testing.T) {
	q, err := decodeQueryMsg(encodeQueryMsg(&queryMsg{Search: "s"}))
	if err != nil || q.Search != "s" {
		t.Fatalf("query: %+v %v", q, err)
	}
	h, err := decodeHitMsg(encodeHitMsg(&hitMsg{Origin: "o", Names: []string{"a", "b"}}))
	if err != nil || h.Origin != "o" || len(h.Names) != 2 {
		t.Fatalf("hit: %+v %v", h, err)
	}
	p, err := decodePongMsg(encodePongMsg(&pongMsg{Addr: "a", Files: 9}))
	if err != nil || p.Addr != "a" || p.Files != 9 {
		t.Fatalf("pong: %+v %v", p, err)
	}
	if _, err := decodeHitMsg([]byte{0xFF}); err == nil {
		t.Fatal("garbage hit accepted")
	}
}
