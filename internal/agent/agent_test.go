package agent

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"reflect"
	"testing"

	"bestpeer/internal/storm"
	"bestpeer/internal/wire"
)

func testStore(t *testing.T) *storm.Store {
	t.Helper()
	s, err := storm.Open(filepath.Join(t.TempDir(), "a.storm"), storm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	s.Put(&storm.Object{Name: "song-1", Keywords: []string{"jazz"}, Data: []byte("AAAA")})
	s.Put(&storm.Object{Name: "song-2", Keywords: []string{"rock"}, Data: []byte("BBBBBBBB")})
	s.Put(&storm.Object{Name: "jazz-notes", Keywords: []string{"notes"}, Data: []byte("CC")})
	return s
}

func TestRegistryRegisterAndNew(t *testing.T) {
	r := NewRegistry()
	if err := RegisterBuiltins(r); err != nil {
		t.Fatal(err)
	}
	if !r.Installed(KeywordClass) || !r.Known(KeywordClass) {
		t.Fatal("builtin not installed")
	}
	a := &KeywordAgent{Query: "jazz"}
	state, err := a.State()
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.New(KeywordClass, state)
	if err != nil {
		t.Fatal(err)
	}
	if got.(*KeywordAgent).Query != "jazz" {
		t.Fatalf("reconstructed query = %q", got.(*KeywordAgent).Query)
	}
	classes := r.Classes()
	if len(classes) != 4 {
		t.Fatalf("classes = %v", classes)
	}
}

func TestRegistryDuplicateRejected(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(NewKeywordFactory()); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(NewKeywordFactory()); !errors.Is(err, ErrDuplicateName) {
		t.Fatalf("dup register: %v", err)
	}
	if err := r.RegisterDormant(NewKeywordFactory()); !errors.Is(err, ErrDuplicateName) {
		t.Fatalf("dup dormant: %v", err)
	}
}

func TestRegistryUnknownClass(t *testing.T) {
	r := NewRegistry()
	if _, err := r.New("nope", nil); !errors.Is(err, ErrUnknownClass) {
		t.Fatalf("New unknown: %v", err)
	}
	if _, err := r.Code("nope"); !errors.Is(err, ErrUnknownClass) {
		t.Fatalf("Code unknown: %v", err)
	}
	if err := r.Install("nope", nil); !errors.Is(err, ErrUnknownClass) {
		t.Fatalf("Install unknown: %v", err)
	}
}

func TestClassShippingLifecycle(t *testing.T) {
	origin := NewRegistry()
	RegisterBuiltins(origin)
	dest := NewRegistry()
	RegisterBuiltinsDormant(dest)

	// Dormant class refuses to execute.
	if dest.Installed(KeywordClass) {
		t.Fatal("dormant class reported installed")
	}
	if _, err := dest.New(KeywordClass, nil); !errors.Is(err, ErrNotInstalled) {
		t.Fatalf("dormant New: %v", err)
	}
	if dest.ExecDenied != 1 {
		t.Fatalf("ExecDenied = %d", dest.ExecDenied)
	}
	// Dormant node cannot serve code either.
	if _, err := dest.Code(KeywordClass); !errors.Is(err, ErrNotInstalled) {
		t.Fatalf("dormant Code: %v", err)
	}

	// Ship from origin and install.
	code, err := origin.Code(KeywordClass)
	if err != nil {
		t.Fatal(err)
	}
	if len(code) == 0 {
		t.Fatal("empty class blob")
	}
	if err := dest.Install(KeywordClass, code); err != nil {
		t.Fatalf("install: %v", err)
	}
	if !dest.Installed(KeywordClass) || dest.Installs != 1 {
		t.Fatal("install did not take effect")
	}
	// Now executable.
	a := &KeywordAgent{Query: "x"}
	st, _ := a.State()
	if _, err := dest.New(KeywordClass, st); err != nil {
		t.Fatalf("post-install New: %v", err)
	}
	// Re-install is a no-op.
	if err := dest.Install(KeywordClass, code); err != nil || dest.Installs != 1 {
		t.Fatalf("re-install: %v installs=%d", err, dest.Installs)
	}
}

func TestInstallRejectsTamperedBlob(t *testing.T) {
	origin := NewRegistry()
	RegisterBuiltins(origin)
	dest := NewRegistry()
	RegisterBuiltinsDormant(dest)

	code, _ := origin.Code(KeywordClass)
	bad := append([]byte(nil), code...)
	bad[10] ^= 0xFF
	if err := dest.Install(KeywordClass, bad); !errors.Is(err, ErrBadClassBlob) {
		t.Fatalf("tampered blob: %v", err)
	}
	if err := dest.Install(KeywordClass, code[:len(code)-1]); !errors.Is(err, ErrBadClassBlob) {
		t.Fatalf("truncated blob: %v", err)
	}
	if dest.Installed(KeywordClass) {
		t.Fatal("bad blob installed anyway")
	}
}

func TestPacketRoundTrip(t *testing.T) {
	p := &Packet{
		Class:       KeywordClass,
		State:       []byte{1, 2, 3},
		Base:        "base:4000",
		BaseID:      wire.BPID{LIGLO: "l:9", Node: 3},
		AccessLevel: 2,
		Mode:        2,
	}
	got, err := DecodePacket(EncodePacket(p))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("packet mismatch:\n have %+v\n want %+v", got, p)
	}
}

func TestPacketRejectsGarbage(t *testing.T) {
	if _, err := DecodePacket([]byte{0xFF, 0xFF}); err == nil {
		t.Fatal("garbage packet accepted")
	}
	// Empty class is invalid.
	var e wire.Encoder
	e.String("")
	e.Bytes2(nil)
	e.String("b")
	e.BPID(wire.BPID{})
	e.Varint(0)
	e.Uint8(1)
	if _, err := DecodePacket(e.Bytes()); !errors.Is(err, ErrBadPacket) {
		t.Fatalf("empty class: %v", err)
	}
	p := &Packet{Class: "c"}
	if _, err := DecodePacket(append(EncodePacket(p), 9)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestResultsRoundTrip(t *testing.T) {
	results := []Result{
		{Name: "a", Data: []byte("data-a")},
		{Name: "b"},
	}
	from := wire.BPID{LIGLO: "l", Node: 7}
	body := EncodeResults(results, 3, from, "peer:1")
	got, err := DecodeResults(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.FromAddr != "peer:1" || got.From != from || got.Hops != 3 {
		t.Fatalf("batch header: %+v", got)
	}
	if len(got.Results) != 2 || got.Results[0].Name != "a" ||
		!bytes.Equal(got.Results[0].Data, []byte("data-a")) || got.Results[1].Name != "b" {
		t.Fatalf("results: %+v", got.Results)
	}
	if _, err := DecodeResults([]byte{1}); err == nil {
		t.Fatal("garbage results accepted")
	}
}

func TestKeywordAgentExecute(t *testing.T) {
	store := testStore(t)
	a := &KeywordAgent{Query: "jazz"}
	res, err := a.Execute(&Context{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	// keyword "jazz" matches song-1, name substring matches jazz-notes.
	if len(res) != 2 {
		t.Fatalf("results = %+v", res)
	}
	names := map[string]bool{}
	for _, r := range res {
		names[r.Name] = true
	}
	if !names["song-1"] || !names["jazz-notes"] {
		t.Fatalf("wrong matches: %v", names)
	}
}

func TestFilterAgentExecute(t *testing.T) {
	store := testStore(t)
	a := &FilterAgent{Expr: "size>4 & !keyword=jazz", IncludeData: true}
	res, err := a.Execute(&Context{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Name != "song-2" {
		t.Fatalf("results = %+v", res)
	}
	if len(res[0].Data) != 8 {
		t.Fatal("IncludeData not honoured")
	}
	// Names-only mode.
	a.IncludeData = false
	res, _ = a.Execute(&Context{Store: store})
	if len(res) != 1 || res[0].Data != nil {
		t.Fatalf("names-only results = %+v", res)
	}
}

func TestFilterAgentRefusesBadExpression(t *testing.T) {
	a := &FilterAgent{Expr: "size>>bogus"}
	if _, err := a.State(); err == nil {
		t.Fatal("bad expression shipped")
	}
	f := NewFilterFactory()
	var e wire.Encoder
	e.String("nonsense((")
	e.Bool(false)
	if _, err := f.New(e.Bytes()); err == nil {
		t.Fatal("bad expression reconstructed")
	}
}

func TestDigestAgentExecute(t *testing.T) {
	store := testStore(t)
	a := &DigestAgent{Query: "rock"}
	res, err := a.Execute(&Context{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("results = %+v", res)
	}
	want := fmt.Sprintf("song-2 8 %08x", crc32ChecksumIEEE([]byte("BBBBBBBB")))
	if string(res[0].Data) != want {
		t.Fatalf("digest = %q, want %q", res[0].Data, want)
	}
}

func TestAgentStateRoundTripAllBuiltins(t *testing.T) {
	agents := []Agent{
		&KeywordAgent{Query: "q"},
		&FilterAgent{Expr: "size>1", IncludeData: true},
		&DigestAgent{Query: "d"},
	}
	r := NewRegistry()
	RegisterBuiltins(r)
	for _, a := range agents {
		st, err := a.State()
		if err != nil {
			t.Fatalf("%s State: %v", a.Class(), err)
		}
		got, err := r.New(a.Class(), st)
		if err != nil {
			t.Fatalf("%s New: %v", a.Class(), err)
		}
		if !reflect.DeepEqual(got, a) {
			t.Fatalf("%s reconstructed %+v != %+v", a.Class(), got, a)
		}
	}
}

func TestFactoriesRejectCorruptState(t *testing.T) {
	for _, f := range []Factory{NewKeywordFactory(), NewFilterFactory(), NewDigestFactory()} {
		if _, err := f.New([]byte{0xFF, 0xFF, 0xFF, 0xFF}); err == nil {
			t.Fatalf("%s accepted corrupt state", f.Class())
		}
	}
}

func TestClassBlobDeterministicAndDistinct(t *testing.T) {
	a1 := NewKeywordFactory().Code()
	a2 := NewKeywordFactory().Code()
	if !bytes.Equal(a1, a2) {
		t.Fatal("class blob not deterministic")
	}
	b := NewFilterFactory().Code()
	if bytes.Equal(a1, b) {
		t.Fatal("distinct classes share a blob")
	}
	if !bytes.HasPrefix(a1, []byte(KeywordClass)) {
		t.Fatal("blob not self-describing")
	}
}

// crc32ChecksumIEEE mirrors the digest computation for expectation
// building.
func crc32ChecksumIEEE(b []byte) uint32 {
	return crc32.ChecksumIEEE(b)
}
