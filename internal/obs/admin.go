package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"

	"bestpeer/internal/wire"
)

// AdminConfig wires a node's observability surfaces into an admin mux.
// Health and Peers are callbacks so the obs package stays free of node
// internals; their return values are rendered as JSON.
type AdminConfig struct {
	Registry *Registry
	Tracer   *Tracer
	Journal  *Journal   // event journal behind /events; nil serves 404
	Health   func() any // payload for /healthz; nil serves {"status":"ok"}
	Peers    func() any // payload for /peers; nil serves 404
	Cache    func() any // payload for /cache (qroute stats); nil serves 404
}

// NewAdminMux builds the admin HTTP handler:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  JSON snapshot of every metric family
//	/healthz       liveness payload
//	/peers         current peer view
//	/cache         qroute answer-cache and routing-index stats
//	/events        event journal page (?since=<cursor>&max=<n>)
//	/queries/      recent query traces (ids); /queries/<id> is one trace
//	/debug/pprof/  the standard runtime profiles
func NewAdminMux(cfg AdminConfig) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = cfg.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = cfg.Registry.WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		payload := any(map[string]string{"status": "ok"})
		if cfg.Health != nil {
			payload = cfg.Health()
		}
		writeAdminJSON(w, payload)
	})
	mux.HandleFunc("/peers", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Peers == nil {
			http.NotFound(w, r)
			return
		}
		writeAdminJSON(w, cfg.Peers())
	})
	mux.HandleFunc("/cache", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Cache == nil {
			http.NotFound(w, r)
			return
		}
		writeAdminJSON(w, cfg.Cache())
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Journal == nil {
			http.NotFound(w, r)
			return
		}
		var since uint64
		if s := r.URL.Query().Get("since"); s != "" {
			v, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				http.Error(w, fmt.Sprintf("bad since cursor: %v", err), http.StatusBadRequest)
				return
			}
			since = v
		}
		max := defaultEventsPageSize
		if s := r.URL.Query().Get("max"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v <= 0 {
				http.Error(w, fmt.Sprintf("bad max %q", s), http.StatusBadRequest)
				return
			}
			max = v
		}
		writeAdminJSON(w, cfg.Journal.Page(since, max))
	})
	mux.HandleFunc("/queries/", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Tracer == nil {
			http.NotFound(w, r)
			return
		}
		rest := strings.TrimPrefix(r.URL.Path, "/queries/")
		if rest == "" {
			type summary struct {
				ID    string `json:"id"`
				Spans int    `json:"spans"`
				Hops  int    `json:"max_hop"`
			}
			var out []summary
			for _, t := range cfg.Tracer.Recent(0) {
				out = append(out, summary{ID: t.ID.String(), Spans: len(t.Spans), Hops: t.MaxHop()})
			}
			writeAdminJSON(w, out)
			return
		}
		id, err := wire.ParseMsgID(rest)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad query id: %v", err), http.StatusBadRequest)
			return
		}
		t, ok := cfg.Tracer.Get(id)
		if !ok {
			http.NotFound(w, r)
			return
		}
		writeAdminJSON(w, map[string]any{"trace": t, "tree": t.Tree()})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// defaultEventsPageSize bounds one /events response when the client
// does not say; cursors make follow-up pages cheap.
const defaultEventsPageSize = 512

func writeAdminJSON(w http.ResponseWriter, payload any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(payload)
}

// AdminServer is a running admin HTTP endpoint.
type AdminServer struct {
	ln  net.Listener
	srv *http.Server
}

// StartAdmin binds the admin mux and serves it in the background. For
// safety the endpoint is loopback-only unless an explicit host is
// given: an empty addr means "127.0.0.1:0" and a bare ":port" is
// rewritten to "127.0.0.1:port" — exposing profiles and peer tables to
// the network must be a deliberate choice.
func StartAdmin(addr string, cfg AdminConfig) (*AdminServer, error) {
	switch {
	case addr == "":
		addr = "127.0.0.1:0"
	case strings.HasPrefix(addr, ":"):
		addr = "127.0.0.1" + addr
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: admin listen: %w", err)
	}
	srv := &http.Server{Handler: NewAdminMux(cfg)}
	go func() {
		defer func() { recover() }() // a crashed admin endpoint must not take the node down
		_ = srv.Serve(ln)            // returns ErrServerClosed on Close; nothing to report
	}()
	return &AdminServer{ln: ln, srv: srv}, nil
}

// Addr returns the bound address of the admin endpoint.
func (a *AdminServer) Addr() string { return a.ln.Addr().String() }

// Close stops the admin endpoint.
func (a *AdminServer) Close() error { return a.srv.Close() }
