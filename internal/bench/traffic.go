package bench

import (
	"bestpeer/internal/qroute"
	"bestpeer/internal/topology"
)

// TrafficRound is one query round of the traffic experiment.
type TrafficRound struct {
	Round int `json:"round"`
	// Route is how the round's fan-out was planned: "flood",
	// "selective", "explore" or "cached" (zero-message answer-cache hit).
	Route string `json:"route"`
	// Msgs counts messages handed to the network during the round.
	Msgs uint64 `json:"msgs"`
	// Bytes counts delivered payload bytes.
	Bytes uint64 `json:"bytes"`
	// Answers is the round's recall (total answers at the base).
	Answers int `json:"answers"`
}

// TrafficResult compares the same repeated needle query with and without
// the qroute subsystem at the base.
type TrafficResult struct {
	// Expected is the ground-truth match count reachable from the base.
	Expected int `json:"expected"`
	// Flood and QRoute are the per-round outcomes of the two schemes.
	Flood  []TrafficRound `json:"flood"`
	QRoute []TrafficRound `json:"qroute"`
	// FloodMsgs and QRouteMsgs total the messages sent across all rounds.
	FloodMsgs  uint64 `json:"flood_msgs"`
	QRouteMsgs uint64 `json:"qroute_msgs"`
}

// trafficRounds is the experiment length: round 1 warms the cache and
// routing index, rounds 3 and 5 follow a store mutation (cache miss,
// learned selective route), rounds 2/4/6 repeat an unchanged query
// (answer-cache hit).
const trafficRounds = 6

// trafficQRoute is the deterministic qroute configuration the experiment
// runs with: no ε-exploration (reproducible message counts), a top-4
// fan-out because the Fig-8 workload plants four answer holders — each
// may enter through a distinct base neighbor — and a confidence floor
// low enough that one observed round counts.
func trafficQRoute(seed int64) qroute.Options {
	return qroute.Options{
		Enable: true,
		Route: qroute.RouteOptions{
			Epsilon:  -1,
			TopF:     4,
			MinScore: 0.5,
			Seed:     seed,
		},
	}
}

// Traffic measures the traffic-reduction claim: the Fig-8 needle
// workload on a 32-node random overlay, repeated for six rounds under a
// static strategy, once flooding every round and once with the answer
// cache + learned selective routing at the base. The base's store
// mutates before rounds 3 and 5, invalidating the cache mid-run, so the
// qroute scheme must re-prove recall through selective routes — not just
// replay one warm cache entry.
func Traffic(cost CostModel, seed int64) *TrafficResult {
	const n = 32
	tp := topology.Random(n, 4, seed)
	spec := fig8Spec(tp, seed)
	p := Params{
		Cost: cost, Spec: spec, Query: "needle",
		MaxPeers: 8, IncludeData: false,
	}
	out := &TrafficResult{
		Expected: expectedAnswers(tp, spec, p.Query, p.withDefaults().TTL),
	}
	run := func(p Params) []TrafficRound {
		b := newBPSim(tp, p)
		b.strategyName = "static"
		rounds := make([]TrafficRound, 0, trafficRounds)
		for r := 1; r <= trafficRounds; r++ {
			if r == 3 || r == 5 {
				// A store mutation at the base retires every cached
				// answer (no-op for the flood run's nil engine).
				b.qr.BumpEpoch()
			}
			res := b.runRound()
			rounds = append(rounds, TrafficRound{
				Round: r, Route: res.Route, Msgs: res.MsgsSent,
				Bytes: res.Bytes, Answers: res.TotalAnswers,
			})
		}
		return rounds
	}
	out.Flood = run(p)
	pq := p
	pq.QRoute = trafficQRoute(seed)
	out.QRoute = run(pq)
	for i := range out.Flood {
		out.FloodMsgs += out.Flood[i].Msgs
		out.QRouteMsgs += out.QRoute[i].Msgs
	}
	return out
}

// FigTraffic renders the Traffic experiment as a figure: messages sent
// per round, flood vs qroute.
func FigTraffic(cost CostModel, seed int64) *Figure {
	tr := Traffic(cost, seed)
	fig := &Figure{
		ID:     "T2",
		Title:  "Traffic: flood vs answer cache + selective routing (32 nodes, needle query)",
		XLabel: "round", YLabel: "messages sent",
		Series: []Series{{Name: "flood"}, {Name: "qroute"}},
	}
	for i := range tr.Flood {
		fig.Series[0].Points = append(fig.Series[0].Points,
			Point{float64(tr.Flood[i].Round), float64(tr.Flood[i].Msgs)})
		fig.Series[1].Points = append(fig.Series[1].Points,
			Point{float64(tr.QRoute[i].Round), float64(tr.QRoute[i].Msgs)})
	}
	return fig
}
