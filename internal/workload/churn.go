package workload

import (
	"math"
	"math/rand"
	"sort"
	"time"
)

// ChurnOp is one membership transition in a churn trace.
type ChurnOp uint8

// Churn operations. A graceful leave announces itself (Depart messages,
// LIGLO deregistration); a crash just stops — neighbors discover it
// through failure detection.
const (
	OpJoin ChurnOp = iota
	OpLeave
	OpCrash
)

// String names the operation.
func (o ChurnOp) String() string {
	switch o {
	case OpJoin:
		return "join"
	case OpLeave:
		return "leave"
	case OpCrash:
		return "crash"
	}
	return "op?"
}

// ChurnEvent is one node's membership transition at a point in simulated
// time.
type ChurnEvent struct {
	At   time.Duration
	Node int
	Op   ChurnOp
}

// ChurnTrace is a time-ordered membership schedule, the input both the
// churn simulation and the live soak replay. Traces produced by the
// generators below are deterministic functions of their seed.
type ChurnTrace []ChurnEvent

// Merge combines traces into one time-ordered trace. Ordering among
// simultaneous events is by (time, node, op) so merged traces stay
// deterministic regardless of input order.
func Merge(traces ...ChurnTrace) ChurnTrace {
	var out ChurnTrace
	for _, t := range traces {
		out = append(out, t...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Op < out[j].Op
	})
	return out
}

// expDuration draws an exponentially distributed duration with the given
// mean — the classic memoryless session-time model observed in deployed
// peer-to-peer systems.
func expDuration(rng *rand.Rand, mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	return time.Duration(-float64(mean) * math.Log(1-rng.Float64()))
}

// ExponentialSessions generates continuous churn for n nodes over the
// horizon: each node alternates exponentially distributed online sessions
// (mean meanSession) and offline gaps (mean meanDowntime). Each session
// ends in a graceful leave with probability gracefulFrac, otherwise a
// crash. Nodes start online (no initial join events); the first
// transition is each node's first session end. Deterministic by seed.
func ExponentialSessions(n int, horizon, meanSession, meanDowntime time.Duration, gracefulFrac float64, seed int64) ChurnTrace {
	rng := rand.New(rand.NewSource(seed))
	var out ChurnTrace
	for node := 0; node < n; node++ {
		t := expDuration(rng, meanSession)
		for t < horizon {
			op := OpCrash
			if rng.Float64() < gracefulFrac {
				op = OpLeave
			}
			out = append(out, ChurnEvent{At: t, Node: node, Op: op})
			t += expDuration(rng, meanDowntime)
			if t >= horizon {
				break
			}
			out = append(out, ChurnEvent{At: t, Node: node, Op: OpJoin})
			t += expDuration(rng, meanSession)
		}
	}
	return Merge(out)
}

// FlashCrowd generates a burst of n joins (nodes firstNode..firstNode+n-1)
// spread uniformly over width starting at start — the sudden-arrival side
// of churn, where the overlay must absorb mass registration without
// degrading queries in flight. Deterministic by seed.
func FlashCrowd(firstNode, n int, start, width time.Duration, seed int64) ChurnTrace {
	rng := rand.New(rand.NewSource(seed))
	out := make(ChurnTrace, 0, n)
	for i := 0; i < n; i++ {
		jitter := time.Duration(0)
		if width > 0 {
			jitter = time.Duration(rng.Int63n(int64(width)))
		}
		out = append(out, ChurnEvent{At: start + jitter, Node: firstNode + i, Op: OpJoin})
	}
	return Merge(out)
}

// CorrelatedFailureBurst crashes frac of the nodes in [0, n) at the same
// instant — a rack loss or partition, the hardest repair case because
// every survivor starts repairing at once. Victims are a deterministic
// pseudo-random subset by seed.
func CorrelatedFailureBurst(n int, frac float64, at time.Duration, seed int64) ChurnTrace {
	if frac <= 0 {
		return nil
	}
	if frac > 1 {
		frac = 1
	}
	rng := rand.New(rand.NewSource(seed))
	victims := rng.Perm(n)[:int(float64(n)*frac)]
	out := make(ChurnTrace, 0, len(victims))
	for _, v := range victims {
		out = append(out, ChurnEvent{At: at, Node: v, Op: OpCrash})
	}
	return Merge(out)
}
