package vet

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockorder is the inter-procedural deadlock analyzer. It builds a
// lock-acquisition graph over every sync.Mutex/RWMutex class in the
// program (a class is one struct field or variable — the same field
// across all instances is one class) and reports two shapes:
//
//   - re-entry: a call made while holding a class into a function that
//     may acquire the same class again (self-deadlock on a
//     non-reentrant mutex), including the intra-function case of
//     locking a class twice;
//   - cycles: class A is acquired while B is held on one path and B
//     while A is held on another — the classic AB/BA inversion. Each
//     cycle is reported once, at its lexically-first witness edge, with
//     the full path so the inversion can be read off the message. When
//     several cycles exist the report is ranked: shorter cycles (more
//     likely real) print lower rank numbers.
//
// The analysis follows static calls, synchronously-invoked function
// literals (including sync.Once.Do) and module-defined interface
// dispatch. It cannot see function values flowing through fields or
// parameters (callbacks), so callback-driven inversions are out of
// scope — keep callbacks lock-free, as Options.OnSuspect documents.
// RLock-under-RLock re-entry on the same RWMutex is not reported
// (legal, if inadvisable); every combination involving an exclusive
// Lock is.
type lockorder struct{}

func (lockorder) Name() string { return "lockorder" }
func (lockorder) Doc() string {
	return "inter-procedural lock-order cycles and same-mutex re-entry (potential deadlocks)"
}

// lockEdgeKey identifies one ordered pair of lock classes.
type lockEdgeKey struct{ from, to types.Object }

// lockEdge is one ordered acquisition: to was (or may be) acquired
// while from was held. node/at witness the edge.
type lockEdge struct {
	from, to types.Object
	node     *FuncNode
	pos      token.Pos // witness position in node
	seq      int       // insertion order, for deterministic reports
	via      string    // non-empty when the acquisition is inside a callee
}

func (lockorder) RunProgram(p *ProgramPass) {
	pr := p.Prog
	edges := make(map[lockEdgeKey]*lockEdge)
	var order []lockEdgeKey
	addEdge := func(from, to types.Object, node *FuncNode, pos token.Pos, via string) {
		if from == to {
			// Same class on both ends (shared/shared re-entry, which is
			// legal): not an ordering edge.
			return
		}
		k := lockEdgeKey{from, to}
		if _, ok := edges[k]; ok {
			return
		}
		edges[k] = &lockEdge{from: from, to: to, node: node, pos: pos, seq: len(order), via: via}
		order = append(order, k)
	}

	for _, node := range pr.Nodes() {
		// Intra-function: a direct acquisition while something is held.
		for i := range node.Locks {
			use := &node.Locks[i]
			for _, h := range use.Held {
				if h.Class == use.Class {
					if h.Mode == LockShared && use.Mode == LockShared {
						continue
					}
					p.Reportf(use.Pos, "%s acquired again while already held (locked at %s): self-deadlock",
						LockClassName(use.Class), trimPos(pr.Fset.Position(h.Pos)))
					continue
				}
				addEdge(h.Class, use.Class, node, use.Pos, "")
			}
		}
		// Inter-procedural: a call while holding, into a function that
		// may acquire.
		for i := range node.Sites {
			site := &node.Sites[i]
			if len(site.Held) == 0 || site.Kind == EdgeMethodValue {
				continue
			}
			targets := pr.staticCallees(site)
			if site.Kind == EdgeInterface {
				for _, t := range site.Targets {
					if n := pr.NodeOf(t); n != nil {
						targets = append(targets, n)
					}
				}
			}
			for _, callee := range targets {
				for cls, acq := range pr.Acquires(callee) {
					conflict := false
					for _, h := range site.Held {
						if h.Class != cls {
							continue
						}
						if h.Mode == LockShared && acq.Mode == LockShared {
							continue
						}
						conflict = true
					}
					if conflict {
						p.Reportf(site.Pos, "call to %s while holding %s, which it may acquire again (%s): self-deadlock",
							callee.Name(), LockClassName(cls), pr.AcquirePath(callee, cls))
						continue
					}
					for _, h := range site.Held {
						addEdge(h.Class, cls, node, site.Pos,
							fmt.Sprintf("%s, %s", callee.Name(), pr.AcquirePath(callee, cls)))
					}
				}
			}
		}
	}

	reportLockCycles(p, edges, order)
}

// reportLockCycles finds cycles among distinct lock classes and reports
// each once, ranked by length (shorter first).
func reportLockCycles(p *ProgramPass, edges map[lockEdgeKey]*lockEdge, order []lockEdgeKey) {
	pr := p.Prog
	succ := make(map[types.Object][]*lockEdge)
	for _, k := range order {
		e := edges[k]
		succ[e.from] = append(succ[e.from], e)
	}

	type cycle struct {
		path []*lockEdge
		key  string
	}
	var cycles []cycle
	seen := make(map[string]bool)

	// From each edge, a breadth-first search for a shortest path back
	// to the edge's origin class. Lock graphs here are tiny (tens of
	// classes), so this stays cheap.
	for _, k := range order {
		start := edges[k]
		type qItem struct {
			at   types.Object
			path []*lockEdge
		}
		var best []*lockEdge
		visited := map[types.Object]bool{start.to: true}
		queue := []qItem{{at: start.to, path: []*lockEdge{start}}}
		for len(queue) > 0 && best == nil {
			item := queue[0]
			queue = queue[1:]
			for _, e := range succ[item.at] {
				if e.to == start.from {
					best = append(append([]*lockEdge(nil), item.path...), e)
					break
				}
				if visited[e.to] || len(item.path) >= 6 {
					continue
				}
				visited[e.to] = true
				queue = append(queue, qItem{at: e.to, path: append(append([]*lockEdge(nil), item.path...), e)})
			}
		}
		if best == nil {
			continue
		}
		// Canonical key: the sorted set of classes on the cycle, so a
		// cycle discovered from each of its edges reports once.
		names := make([]string, 0, len(best))
		for _, e := range best {
			names = append(names, LockClassName(e.from))
		}
		sort.Strings(names)
		key := strings.Join(names, "→")
		if seen[key] {
			continue
		}
		seen[key] = true
		cycles = append(cycles, cycle{path: best, key: key})
	}

	sort.Slice(cycles, func(i, j int) bool {
		if len(cycles[i].path) != len(cycles[j].path) {
			return len(cycles[i].path) < len(cycles[j].path)
		}
		return cycles[i].key < cycles[j].key
	})
	for rank, c := range cycles {
		var b strings.Builder
		fmt.Fprintf(&b, "lock-order cycle (rank %d of %d, %d locks): ", rank+1, len(cycles), len(c.path))
		for i, e := range c.path {
			if i > 0 {
				b.WriteString("; ")
			}
			fmt.Fprintf(&b, "%s→%s in %s at %s", LockClassName(e.from), LockClassName(e.to),
				e.node.Name(), trimPos(pr.Fset.Position(e.pos)))
			if e.via != "" {
				fmt.Fprintf(&b, " (%s)", e.via)
			}
		}
		// Report at the earliest witness edge so the finding lands on a
		// line a human (or an ignore comment) can act on.
		first := c.path[0]
		for _, e := range c.path {
			if e.seq < first.seq {
				first = e
			}
		}
		p.Reportf(first.pos, "%s", b.String())
	}
}
