package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// Report is bpbench's machine-readable output (the BENCH_*.json file):
// the simulated figures plus, when a live run was requested, one entry
// per scheme with its rounds and a metrics section snapshotted from the
// cluster's obs registries.
type Report struct {
	Seed    int64        `json:"seed"`
	Figures []*Figure    `json:"figures,omitempty"`
	Live    []*SchemeRun `json:"live,omitempty"`
	// Convergence holds the per-strategy reconfiguration timelines when
	// the convergence figure was requested.
	Convergence []*StrategyTimeline `json:"convergence,omitempty"`
	// Traffic holds the flood-vs-qroute message comparison when the
	// traffic figure was requested.
	Traffic *TrafficResult `json:"traffic,omitempty"`
	// Churn holds the churn-at-scale recall/repair comparison when the
	// churn figure was requested.
	Churn *ChurnResult `json:"churn,omitempty"`
	// DHT holds the chord-vs-flood-vs-BPR comparison when the dht
	// figure was requested.
	DHT *DHTResult `json:"dht,omitempty"`
}

// SchemeRun is one strategy's live-stack run.
type SchemeRun struct {
	Scheme  string      `json:"scheme"`
	Rounds  []RoundStat `json:"rounds"`
	Metrics LiveMetrics `json:"metrics"`
}

// RoundStat is one query round of a live run.
type RoundStat struct {
	CompletionMS    float64 `json:"completion_ms"`
	Answers         int     `json:"answers"`
	MaxHops         int     `json:"max_hops"`
	AgentsForwarded uint64  `json:"agents_forwarded"`
}

// AddRound appends a live round result to the scheme run.
func (sr *SchemeRun) AddRound(res LiveResult) {
	sr.Rounds = append(sr.Rounds, RoundStat{
		CompletionMS:    float64(res.Completion) / float64(time.Millisecond),
		Answers:         res.TotalAnswers,
		MaxHops:         res.MaxHops,
		AgentsForwarded: res.AgentsForwarded,
	})
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: encoding report: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
