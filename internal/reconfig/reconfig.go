// Package reconfig implements BestPeer's self-configuration strategies
// (§3.3 of the paper). After each query a node scores the peers it heard
// answers from and keeps the most beneficial k as direct peers. The
// Strategy interface is the extension point; MaxCount and MinHops are the
// paper's two built-in policies.
package reconfig

import (
	"sort"

	"bestpeer/internal/wire"
)

// Observation is what a node learned about one peer during a query round.
type Observation struct {
	// ID is the peer's BestPeer identity (may be zero if unknown).
	ID wire.BPID
	// Addr is the peer's current address.
	Addr string
	// Answers is how many results the peer returned for the query.
	Answers int
	// Bytes is the total result payload the peer returned.
	Bytes int
	// Hops is how far from the base node the peer was when it answered
	// (piggybacked on its results, as MinHops requires).
	Hops int
	// Direct reports whether the peer is currently a direct peer.
	Direct bool
}

// Strategy ranks observed peers; the node keeps the top k as its direct
// peers.
type Strategy interface {
	// Name identifies the strategy.
	Name() string
	// Select returns up to k observations, best first, to retain as
	// direct peers. Implementations must be deterministic.
	Select(obs []Observation, k int) []Observation
}

// MaxCount keeps the peers that returned the most answers: "a peer that
// returns more answers can potentially satisfy future queries". Ties are
// broken deterministically (bytes, then address) where the paper breaks
// them arbitrarily.
type MaxCount struct{}

// Name implements Strategy.
func (MaxCount) Name() string { return "maxcount" }

// Select implements Strategy.
func (MaxCount) Select(obs []Observation, k int) []Observation {
	sorted := append([]Observation(nil), obs...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Answers != sorted[j].Answers {
			return sorted[i].Answers > sorted[j].Answers
		}
		if sorted[i].Bytes != sorted[j].Bytes {
			return sorted[i].Bytes > sorted[j].Bytes
		}
		return sorted[i].Addr < sorted[j].Addr
	})
	return clamp(sorted, k)
}

// MinHops keeps answer-providing peers that are furthest away, so that
// everything reachable through nearby peers stays reachable while distant
// providers become one hop: "pick those with the larger hops values as
// the immediate peers; in the event of ties, the one with the larger
// number of answers is preferred."
type MinHops struct{}

// Name implements Strategy.
func (MinHops) Name() string { return "minhops" }

// Select implements Strategy.
func (MinHops) Select(obs []Observation, k int) []Observation {
	sorted := append([]Observation(nil), obs...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Hops != sorted[j].Hops {
			return sorted[i].Hops > sorted[j].Hops
		}
		if sorted[i].Answers != sorted[j].Answers {
			return sorted[i].Answers > sorted[j].Answers
		}
		return sorted[i].Addr < sorted[j].Addr
	})
	return clamp(sorted, k)
}

// Static never reconfigures: the current direct peers are kept, which is
// the BPS scheme in the paper's evaluation (and Gnutella's behaviour).
type Static struct{}

// Name implements Strategy.
func (Static) Name() string { return "static" }

// Select implements Strategy: keep current direct peers only.
func (Static) Select(obs []Observation, k int) []Observation {
	var direct []Observation
	for _, o := range obs {
		if o.Direct {
			direct = append(direct, o)
		}
	}
	return clamp(direct, k)
}

func clamp(obs []Observation, k int) []Observation {
	if k >= 0 && len(obs) > k {
		obs = obs[:k]
	}
	return obs
}

// Decision is one candidate's line in an explained selection: the
// observation, where the strategy ranked it, and whether the k-cut kept
// it. Rank is 1-based; 0 means the strategy never ranked the candidate
// (Static drops non-direct peers without ordering them).
type Decision struct {
	Observation
	Rank     int
	Selected bool
}

// Explain re-runs a strategy's selection with full visibility: every
// candidate appears in the result with its rank and whether it survived
// the k-cut. The ranked candidates come first in rank order, unranked
// ones follow sorted by address, so the slice doubles as a rationale
// record for the event journal.
func Explain(s Strategy, obs []Observation, k int) []Decision {
	ranked := s.Select(obs, len(obs)) // rank everything, cut below
	rankOf := make(map[string]int, len(ranked))
	for i, o := range ranked {
		rankOf[o.Addr] = i + 1
	}
	decisions := make([]Decision, 0, len(obs))
	for _, o := range obs {
		r := rankOf[o.Addr]
		decisions = append(decisions, Decision{
			Observation: o,
			Rank:        r,
			Selected:    r > 0 && (k < 0 || r <= k),
		})
	}
	sort.SliceStable(decisions, func(i, j int) bool {
		ri, rj := decisions[i].Rank, decisions[j].Rank
		if (ri > 0) != (rj > 0) {
			return ri > 0 // ranked candidates first
		}
		if ri != rj {
			return ri < rj
		}
		return decisions[i].Addr < decisions[j].Addr
	})
	return decisions
}

// ByName returns the strategy with the given name: "maxcount", "minhops"
// or "static". Unknown names fall back to MaxCount, the paper's default.
func ByName(name string) Strategy {
	switch name {
	case "minhops":
		return MinHops{}
	case "static":
		return Static{}
	default:
		return MaxCount{}
	}
}
