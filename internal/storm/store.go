package storm

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"

	"bestpeer/internal/obs"
)

// Store errors.
var (
	ErrNotFound = errors.New("storm: object not found")
)

// OID locates an object record on disk.
type OID struct {
	Page PageID
	Slot Slot
}

// String renders the OID as "page.slot".
func (o OID) String() string { return fmt.Sprintf("%d.%d", o.Page, o.Slot) }

// Options configures a Store.
type Options struct {
	// BufferFrames is the buffer-pool size in pages. Zero defaults to 64.
	BufferFrames int
	// Policy names the buffer replacement strategy: "lru" (default),
	// "mru", "fifo", "clock", "priority".
	Policy string
	// PersistentCatalog maintains the name→location map in an on-disk
	// B+tree whose root is recorded in the file header, so reopening a
	// large store does not decode every object record. The catalog is
	// valid for cleanly closed files; a file whose catalog is missing or
	// implausible falls back to the full scan.
	PersistentCatalog bool
	// WALPath, when non-empty, enables a write-ahead log at that path:
	// every Put/Delete is logged before the page mutation and replayed
	// at open, so a crash never loses acknowledged operations (with
	// WALSync) and never corrupts the store.
	WALPath string
	// WALSync fsyncs the log on every append. Off, the OS flushes
	// lazily: cheaper, and a crash may lose only the most recent
	// operations.
	WALSync bool
	// PersistentIndex maintains a durable inverted keyword index in an
	// on-disk B+tree (see Store.LookupKeyword). Rebuilt by scan when the
	// on-disk image is missing or implausible.
	PersistentIndex bool
	// Metrics is the registry the store's gauges (objects, pages, pool
	// counters) and WAL metrics (appends, fsync latency) are published
	// to. Nil means a private registry.
	Metrics *obs.Registry
}

// Store is the object-level API of the storage manager: named objects on
// slotted pages behind a buffer pool. It is safe for concurrent use.
type Store struct {
	mu   sync.RWMutex
	file *DiskFile
	pool *BufferPool

	// catalog, when enabled, mirrors byName on disk.
	catalog     *BTree
	catalogRoot PageID

	// pindex, when enabled, is the durable inverted keyword index.
	pindex     *PersistentIndex
	pindexRoot PageID

	// wal, when enabled, makes operations crash-durable.
	wal *WAL

	byName map[string]OID
	// pagesWithSpace tracks data pages believed to have free room,
	// ordered for deterministic placement.
	pagesWithSpace map[PageID]int
	dataPages      []PageID

	// hookMu guards mutationHooks; see OnMutation.
	hookMu        sync.RWMutex
	mutationHooks []func()
}

// OnMutation registers fn to run after every successful Put or Delete
// has committed. Hooks run synchronously on the mutating goroutine, with
// the store lock released, before the operation returns — so anything a
// hook observes (e.g. bumping a cache-invalidation epoch) is ordered
// strictly after the mutation became visible to readers. Hooks must be
// fast and must not call back into the store. WAL replay at Open does
// not fire hooks: it completes before any hook can be registered.
func (s *Store) OnMutation(fn func()) {
	s.hookMu.Lock()
	s.mutationHooks = append(s.mutationHooks, fn)
	s.hookMu.Unlock()
}

// notifyMutation runs the registered mutation hooks.
func (s *Store) notifyMutation() {
	s.hookMu.RLock()
	hooks := s.mutationHooks
	s.hookMu.RUnlock()
	for _, fn := range hooks {
		fn()
	}
}

// Open opens the store at path, creating it if absent.
func Open(path string, opts Options) (*Store, error) {
	frames := opts.BufferFrames
	if frames <= 0 {
		frames = 64
	}
	var (
		file *DiskFile
		err  error
	)
	if _, statErr := os.Stat(path); statErr == nil {
		file, err = OpenFile(path)
	} else {
		file, err = CreateFile(path)
	}
	if err != nil {
		return nil, err
	}
	s := &Store{
		file:           file,
		pool:           NewBufferPool(file, frames, NewReplacer(opts.Policy)),
		byName:         make(map[string]OID),
		pagesWithSpace: make(map[PageID]int),
	}

	fromTree := false
	if opts.PersistentCatalog {
		if root := file.MetaRoot(); root != InvalidPage {
			s.catalog = OpenBTree(s.pool, root)
			s.catalogRoot = root
			if err := s.loadCatalog(); err == nil {
				fromTree = true
			} else {
				// Implausible catalog (e.g. unclean shutdown): fall back
				// to the authoritative scan and rebuild the tree below.
				s.catalog = nil
				s.byName = make(map[string]OID)
			}
		}
	}
	if err := s.rebuildCatalog(!fromTree); err != nil {
		_ = file.Close() // already failing; the open error is what matters
		return nil, err
	}
	if opts.PersistentCatalog && s.catalog == nil {
		if err := s.buildCatalogTree(); err != nil {
			_ = file.Close() // already failing; the open error is what matters
			return nil, err
		}
	}
	replayed := 0
	if opts.WALPath != "" {
		wal, err := OpenWAL(opts.WALPath, opts.WALSync)
		if err != nil {
			_ = file.Close() // already failing; the open error is what matters
			return nil, err
		}
		s.wal = wal
		replayed, err = s.recover()
		if err != nil {
			_ = wal.Close()  // already failing; the recovery error is what matters
			_ = file.Close() // already failing; the open error is what matters
			return nil, err
		}
	}
	if opts.PersistentIndex {
		// The index loads after WAL recovery: a non-empty replay means
		// the previous session crashed, and index pages regressed
		// independently of the heap, so only a rebuild is trustworthy.
		if err := s.loadPersistentIndexAfterRecovery(replayed > 0); err != nil {
			_ = file.Close() // already failing; the open error is what matters
			return nil, err
		}
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s.RegisterMetrics(reg)
	return s, nil
}

// RegisterMetrics publishes the store's state gauges (and, when the WAL
// is enabled, its append counter and fsync histogram) on reg. Open does
// this with Options.Metrics; a node that shares one registry per
// process can call it again to re-bind — gauge functions replace.
func (s *Store) RegisterMetrics(reg *obs.Registry) {
	reg.GaugeFunc("bestpeer_storm_objects",
		"Objects currently stored.",
		func() float64 { return float64(s.Stats().Objects) })
	reg.GaugeFunc("bestpeer_storm_total_pages",
		"Store file size in pages.",
		func() float64 { return float64(s.Stats().TotalPages) })
	reg.GaugeFunc("bestpeer_storm_pool_hits",
		"Buffer pool fetches served from memory.",
		func() float64 { return float64(s.Stats().PoolHits) })
	reg.GaugeFunc("bestpeer_storm_pool_misses",
		"Buffer pool fetches that went to disk.",
		func() float64 { return float64(s.Stats().PoolMisses) })
	reg.GaugeFunc("bestpeer_storm_pool_evictions",
		"Buffer pool frames evicted.",
		func() float64 { return float64(s.Stats().PoolEvictions) })
	reg.GaugeFunc("bestpeer_storm_wal_records",
		"Operations logged since the WAL was opened (0 when disabled).",
		func() float64 { return float64(s.Stats().WALRecords) })
	if s.wal != nil {
		s.wal.bindMetrics(reg)
	}
}

// recover replays the WAL tail over the store and checkpoints, so the
// pages reflect every logged operation and the log restarts empty. It
// returns how many records were replayed.
func (s *Store) recover() (int, error) {
	replayed, err := s.wal.Replay(func(r *walRecord) error {
		switch r.Op {
		case walPut:
			_, err := s.putUnlogged(r.Obj)
			return err
		case walDelete:
			err := s.deleteUnlogged(r.Name)
			if errors.Is(err, ErrNotFound) {
				return nil // already applied before the crash
			}
			return err
		}
		return nil
	})
	if err != nil {
		return 0, fmt.Errorf("storm: wal replay: %w", err)
	}
	return replayed, s.Checkpoint()
}

// Checkpoint flushes every dirty page to stable storage and truncates
// the WAL: all logged operations are now reflected in the data file.
func (s *Store) Checkpoint() error {
	if err := s.pool.FlushAll(); err != nil {
		return err
	}
	if err := s.file.Sync(); err != nil {
		return err
	}
	if s.wal != nil {
		return s.wal.Truncate()
	}
	return nil
}

// loadCatalog reads byName from the on-disk B+tree, validating that every
// location is within the file.
func (s *Store) loadCatalog() error {
	limit := s.file.PageCount()
	return s.catalog.Ascend(func(name string, oid OID) bool {
		if uint32(oid.Page) >= limit {
			return false // stale pointer: abort, caller falls back
		}
		s.byName[name] = oid
		return true
	})
}

// buildCatalogTree creates the B+tree from the in-memory catalog and
// records its root.
func (s *Store) buildCatalogTree() error {
	tree, err := NewBTree(s.pool)
	if err != nil {
		return err
	}
	for name, oid := range s.byName {
		if err := tree.Put(name, oid); err != nil {
			return err
		}
	}
	s.catalog = tree
	return s.syncCatalogRoot()
}

// syncCatalogRoot records the catalog root in the file header when it has
// moved (root splits change it).
func (s *Store) syncCatalogRoot() error {
	if s.catalog == nil || s.catalog.Root() == s.catalogRoot {
		return nil
	}
	if err := s.file.SetMetaRoot(s.catalog.Root()); err != nil {
		return err
	}
	s.catalogRoot = s.catalog.Root()
	return nil
}

// catalogPut mirrors a name→location binding into the persistent catalog.
func (s *Store) catalogPut(name string, oid OID) error {
	if s.catalog == nil {
		return nil
	}
	if err := s.catalog.Put(name, oid); err != nil {
		return err
	}
	return s.syncCatalogRoot()
}

// catalogDelete mirrors a removal into the persistent catalog.
func (s *Store) catalogDelete(name string) error {
	if s.catalog == nil {
		return nil
	}
	if _, err := s.catalog.Delete(name); err != nil {
		return err
	}
	return s.syncCatalogRoot()
}

// rebuildCatalog scans every heap page to reconstruct the free-space map
// and data-page list, skipping catalog B+tree pages. When withNames is
// true it also decodes each record to rebuild the name index (the path
// taken when no persistent catalog is available).
func (s *Store) rebuildCatalog(withNames bool) error {
	n := s.file.PageCount()
	for id := PageID(1); uint32(id) < n; id++ {
		p, err := s.pool.Fetch(id)
		if err != nil {
			return fmt.Errorf("storm: catalog rebuild: %w", err)
		}
		if p.Type() != pageTypeSlotted {
			if err := s.pool.Unpin(id, false); err != nil {
				return err
			}
			continue
		}
		s.dataPages = append(s.dataPages, id)
		var decodeErr error
		dirty := false
		if withNames {
			p.Records(func(slot Slot, rec []byte) bool {
				obj, err := decodeObject(rec)
				if err != nil {
					decodeErr = err
					return false
				}
				if _, dup := s.byName[obj.Name]; dup {
					// Crash-regressed pages can hold two live copies of a
					// replaced object (the new record's page reached disk,
					// the old record's tombstone did not). Keep the first
					// copy and tombstone the duplicate on the spot —
					// otherwise WAL replay fixes only the indexed copy and
					// the stale one resurrects at the next open. The kept
					// copy's content is then corrected by the replayed put
					// that caused the move.
					if derr := p.Delete(slot); derr != nil {
						decodeErr = derr
						return false
					}
					dirty = true
					return true
				}
				s.byName[obj.Name] = OID{Page: id, Slot: slot}
				return true
			})
		}
		if free := p.AvailableSpace(); free > 0 {
			s.pagesWithSpace[id] = free
		}
		if err := s.pool.Unpin(id, dirty); err != nil {
			return err
		}
		if decodeErr != nil {
			return decodeErr
		}
	}
	return nil
}

// Len returns the number of stored objects.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byName)
}

// Pool exposes buffer-pool statistics.
func (s *Store) Pool() *BufferPool { return s.pool }

// Put inserts the object, replacing any existing object with the same
// name. It returns the object's location. With a WAL enabled the
// operation is logged before any page is touched.
func (s *Store) Put(obj *Object) (OID, error) {
	if obj.Name == "" {
		return OID{}, fmt.Errorf("%w: empty name", ErrBadObject)
	}
	if s.wal != nil {
		if err := s.wal.Append(&walRecord{Op: walPut, Name: obj.Name, Obj: obj}); err != nil {
			return OID{}, err
		}
	}
	oid, err := s.putUnlogged(obj)
	if err == nil {
		s.notifyMutation()
	}
	return oid, err
}

// putUnlogged performs the insert/replace without logging (used by Put and
// WAL replay).
func (s *Store) putUnlogged(obj *Object) (OID, error) {
	rec, err := encodeObject(obj)
	if err != nil {
		return OID{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	if old, exists := s.byName[obj.Name]; exists {
		// The replaced object's postings must go before its bytes do.
		if s.pindex != nil {
			if oldObj, rerr := s.readObjectAt(old); rerr == nil {
				if ierr := s.indexRemove(oldObj); ierr != nil {
					return OID{}, ierr
				}
			}
		}
		// Try an in-place update first.
		p, err := s.pool.Fetch(old.Page)
		if err != nil {
			return OID{}, err
		}
		uerr := p.Update(old.Slot, rec)
		if uerr == nil {
			s.pagesWithSpace[old.Page] = p.AvailableSpace()
			err = s.pool.Unpin(old.Page, true)
			if err == nil {
				err = s.indexAdd(obj, old)
			}
			return old, err
		}
		// Doesn't fit: delete and reinsert elsewhere.
		if derr := p.Delete(old.Slot); derr != nil {
			s.pool.Unpin(old.Page, false)
			return OID{}, derr
		}
		s.pagesWithSpace[old.Page] = p.AvailableSpace()
		if err := s.pool.Unpin(old.Page, true); err != nil {
			return OID{}, err
		}
		delete(s.byName, obj.Name)
	}

	oid, err := s.insertLocked(obj.Name, rec)
	if err != nil {
		return OID{}, err
	}
	if err := s.catalogPut(obj.Name, oid); err != nil {
		return OID{}, err
	}
	if err := s.indexAdd(obj, oid); err != nil {
		return OID{}, err
	}
	return oid, nil
}

// readObjectAt decodes the object at oid straight through the buffer
// pool, without taking the store mutex (callers may hold it).
func (s *Store) readObjectAt(oid OID) (*Object, error) {
	p, err := s.pool.Fetch(oid.Page)
	if err != nil {
		return nil, err
	}
	rec, gerr := p.Get(oid.Slot)
	var obj *Object
	if gerr == nil {
		obj, gerr = decodeObject(rec)
	}
	if err := s.pool.Unpin(oid.Page, false); err != nil {
		return nil, err
	}
	return obj, gerr
}

// insertLocked places rec on a page with room, allocating a new page when
// needed. Caller holds s.mu.
func (s *Store) insertLocked(name string, rec []byte) (OID, error) {
	need := len(rec) + slotEntrySize
	// Deterministic choice: the lowest page id with enough space.
	var candidates []PageID
	for id, free := range s.pagesWithSpace {
		if free >= need {
			candidates = append(candidates, id)
		}
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })
	for _, id := range candidates {
		p, err := s.pool.Fetch(id)
		if err != nil {
			return OID{}, err
		}
		slot, ierr := p.Insert(rec)
		if ierr == nil {
			s.pagesWithSpace[id] = p.AvailableSpace()
			if err := s.pool.Unpin(id, true); err != nil {
				return OID{}, err
			}
			oid := OID{Page: id, Slot: slot}
			s.byName[name] = oid
			return oid, nil
		}
		// Stale free-space estimate; refresh and move on.
		s.pagesWithSpace[id] = p.AvailableSpace()
		if err := s.pool.Unpin(id, false); err != nil {
			return OID{}, err
		}
	}
	// Allocate a fresh page.
	p, err := s.pool.NewPage()
	if err != nil {
		return OID{}, err
	}
	id := p.ID()
	slot, ierr := p.Insert(rec)
	if ierr != nil {
		s.pool.Unpin(id, false)
		return OID{}, ierr
	}
	s.dataPages = append(s.dataPages, id)
	s.pagesWithSpace[id] = p.AvailableSpace()
	if err := s.pool.Unpin(id, true); err != nil {
		return OID{}, err
	}
	oid := OID{Page: id, Slot: slot}
	s.byName[name] = oid
	return oid, nil
}

// Get returns the object with the given name.
func (s *Store) Get(name string) (*Object, error) {
	s.mu.RLock()
	oid, ok := s.byName[name]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return s.GetOID(oid)
}

// GetOID returns the object at the given location.
func (s *Store) GetOID(oid OID) (*Object, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, err := s.pool.Fetch(oid.Page)
	if err != nil {
		return nil, err
	}
	rec, gerr := p.Get(oid.Slot)
	if gerr != nil {
		s.pool.Unpin(oid.Page, false)
		return nil, fmt.Errorf("%w: oid %v", ErrNotFound, oid)
	}
	obj, derr := decodeObject(rec)
	if err := s.pool.Unpin(oid.Page, false); err != nil {
		return nil, err
	}
	return obj, derr
}

// Has reports whether an object with the given name exists.
func (s *Store) Has(name string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.byName[name]
	return ok
}

// Delete removes the named object. With a WAL enabled the operation is
// logged before any page is touched.
func (s *Store) Delete(name string) error {
	if s.wal != nil {
		// Logging a delete of an absent name would replay harmlessly,
		// but checking first keeps the log minimal.
		if !s.Has(name) {
			return fmt.Errorf("%w: %q", ErrNotFound, name)
		}
		if err := s.wal.Append(&walRecord{Op: walDelete, Name: name}); err != nil {
			return err
		}
	}
	if err := s.deleteUnlogged(name); err != nil {
		return err
	}
	s.notifyMutation()
	return nil
}

// deleteUnlogged removes the object without logging (used by Delete and WAL
// replay).
func (s *Store) deleteUnlogged(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	oid, ok := s.byName[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if s.pindex != nil {
		if oldObj, rerr := s.readObjectAt(oid); rerr == nil {
			if ierr := s.indexRemove(oldObj); ierr != nil {
				return ierr
			}
		}
	}
	p, err := s.pool.Fetch(oid.Page)
	if err != nil {
		return err
	}
	if derr := p.Delete(oid.Slot); derr != nil {
		s.pool.Unpin(oid.Page, false)
		return derr
	}
	s.pagesWithSpace[oid.Page] = p.AvailableSpace()
	if err := s.pool.Unpin(oid.Page, true); err != nil {
		return err
	}
	delete(s.byName, name)
	return s.catalogDelete(name)
}

// Scan calls fn for every object in page order. Returning false stops the
// scan. Objects passed to fn are fresh copies the callback may retain.
func (s *Store) Scan(fn func(*Object) bool) error {
	s.mu.RLock()
	pages := append([]PageID(nil), s.dataPages...)
	s.mu.RUnlock()

	for _, id := range pages {
		s.mu.RLock()
		p, err := s.pool.Fetch(id)
		if err != nil {
			s.mu.RUnlock()
			return err
		}
		type hit struct {
			obj *Object
			err error
		}
		var batch []hit
		p.Records(func(_ Slot, rec []byte) bool {
			obj, derr := decodeObject(rec)
			batch = append(batch, hit{obj, derr})
			return true
		})
		unpinErr := s.pool.Unpin(id, false)
		s.mu.RUnlock()
		if unpinErr != nil {
			return unpinErr
		}
		for _, h := range batch {
			if h.err != nil {
				return h.err
			}
			if !fn(h.obj) {
				return nil
			}
		}
	}
	return nil
}

// Match returns every object satisfying the keyword query, in page order.
// This is the operation the StorM search agent performs at each peer.
func (s *Store) Match(query string) ([]*Object, error) {
	var out []*Object
	err := s.Scan(func(o *Object) bool {
		if o.Matches(query) {
			out = append(out, o)
		}
		return true
	})
	return out, err
}

// MatchFunc returns every object satisfying an arbitrary predicate —
// the hook computational-power sharing uses to run requester-shipped
// filters against local data.
func (s *Store) MatchFunc(pred func(*Object) bool) ([]*Object, error) {
	var out []*Object
	err := s.Scan(func(o *Object) bool {
		if pred(o) {
			out = append(out, o)
		}
		return true
	})
	return out, err
}

// Names returns all object names in sorted order.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.byName))
	for n := range s.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Sync flushes all dirty pages and the file to stable storage.
func (s *Store) Sync() error {
	if err := s.pool.FlushAll(); err != nil {
		return err
	}
	return s.file.Sync()
}

// Close flushes and closes the store (checkpointing the WAL if one is
// enabled).
func (s *Store) Close() error {
	if s.wal != nil {
		if err := s.Checkpoint(); err != nil {
			_ = s.wal.Close()  // already failing; the checkpoint error wins
			_ = s.file.Close() // already failing; the checkpoint error wins
			return err
		}
		if err := s.wal.Close(); err != nil {
			_ = s.file.Close() // already failing; the WAL close error wins
			return err
		}
	}
	if err := s.pool.FlushAll(); err != nil {
		_ = s.file.Close() // already failing; the flush error wins
		return err
	}
	return s.file.Close()
}

// StoreStats summarizes a store's state for operators and tests.
type StoreStats struct {
	// Objects is the number of stored objects.
	Objects int
	// DataPages is the number of heap pages (excluding header, catalog
	// and B+tree pages).
	DataPages int
	// TotalPages is the file size in pages, including everything.
	TotalPages int
	// FreeBytes sums the reclaimable space across heap pages.
	FreeBytes int
	// PoolHits/PoolMisses/PoolEvictions are buffer pool counters.
	PoolHits, PoolMisses, PoolEvictions uint64
	// HitRate is the fraction of fetches served from memory.
	HitRate float64
	// WALRecords counts operations logged since the WAL was opened
	// (zero when the WAL is disabled).
	WALRecords uint64
	// CatalogPersistent reports whether the B+tree catalog is active.
	CatalogPersistent bool
}

// Stats returns a snapshot of the store's statistics.
func (s *Store) Stats() StoreStats {
	s.mu.RLock()
	st := StoreStats{
		Objects:           len(s.byName),
		DataPages:         len(s.dataPages),
		CatalogPersistent: s.catalog != nil,
	}
	for _, free := range s.pagesWithSpace {
		st.FreeBytes += free
	}
	s.mu.RUnlock()
	st.TotalPages = int(s.file.PageCount())
	st.PoolHits = s.pool.Hits
	st.PoolMisses = s.pool.Misses
	st.PoolEvictions = s.pool.Evictions
	st.HitRate = s.pool.HitRate()
	if s.wal != nil {
		st.WALRecords = s.wal.Appended
	}
	return st
}

// CompactTo writes a compacted copy of the store to a fresh data file at
// path: live objects only, packed densely, with none of the dead space
// left behind by deletions, replacements, or catalog/index rebuilds
// (orphaned B+tree pages). The copy is created with the given options
// (e.g. re-enable the persistent catalog or index); the source store is
// unchanged. Typical use: compact into a sibling file, close the
// original, and rename.
func (s *Store) CompactTo(path string, opts Options) error {
	dst, err := Open(path, opts)
	if err != nil {
		return err
	}
	var putErr error
	scanErr := s.Scan(func(o *Object) bool {
		if _, err := dst.Put(o); err != nil {
			putErr = fmt.Errorf("storm: compact: %w", err)
			return false
		}
		return true
	})
	if putErr == nil && scanErr != nil {
		putErr = scanErr
	}
	if putErr != nil {
		_ = dst.Close() // already failing; the copy error wins
		return putErr
	}
	return dst.Close()
}

// Abandon closes the store's file descriptors WITHOUT flushing dirty
// pages or checkpointing the WAL — it simulates a process crash. Every
// page still in the buffer pool is lost; the WAL (if enabled) survives
// and the next Open recovers from it. Only for crash testing and
// demonstrations; real shutdown is Close.
func (s *Store) Abandon() {
	if s.wal != nil {
		_ = s.wal.Close() // crash simulation discards errors by design
	}
	_ = s.file.Close() // crash simulation discards errors by design
}
