package core

import (
	"hash/fnv"
	"math/rand"
	"sync"
	"time"

	"bestpeer/internal/obs"
	"bestpeer/internal/wire"
)

// This file implements the node's membership lifecycle beyond join:
// graceful leave (Depart announcements plus LIGLO deregistration) and
// crash repair (a failure-detector-driven loop that backfills overlay
// degree after peers die). Together with SweepPeers they give the
// overlay the three exits the paper's churn model needs — leave, crash,
// and detection-plus-repair — without changing the query path at all.

// maxHintStash bounds the replacement-neighbor hints retained from
// Depart announcements for later repair rounds.
const maxHintStash = 16

// departedTTL is how long a gracefully-departed address stays refused
// by the gossip-fed repair paths. It must outlast Depart propagation
// plus a few repair rounds (neighbors that have not yet processed the
// departure keep offering the leaver in their peer lists), while
// staying short enough that an expired entry is harmless — a rejoined
// member re-enters everyone's candidate pool through its home LIGLO
// long before gossip would matter.
const departedTTL = 45 * time.Second

// noteDeparted records a graceful departure so repair gossip refuses
// the address until departedTTL passes or a trusted path re-adopts it.
func (n *Node) noteDeparted(addr string) {
	n.departedMu.Lock()
	n.departed[addr] = time.Now().Add(departedTTL)
	n.departedMu.Unlock()
}

// recentlyDeparted reports whether addr gracefully departed within
// departedTTL, pruning expired entries as a side effect.
func (n *Node) recentlyDeparted(addr string) bool {
	now := time.Now()
	n.departedMu.Lock()
	defer n.departedMu.Unlock()
	exp, ok := n.departed[addr]
	if ok && now.After(exp) {
		delete(n.departed, addr)
		return false
	}
	return ok
}

// Leave performs a graceful departure: every direct peer receives a
// versioned Depart announcement carrying replacement-neighbor hints (the
// node's other peers, so receivers can heal the hole without a LIGLO
// round trip), the peer set is cleared, and the home LIGLO is told to
// mark this member offline immediately. The node stays alive — it can
// still serve and issue queries, and Join/Rejoin bring it back — but it
// stops adopting peers until then. Leave is idempotent; the returned
// error is the LIGLO deregistration outcome (the overlay-side departure
// is complete regardless, transport permitting).
func (n *Node) Leave() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrNodeClosed
	}
	if n.leaving {
		n.mu.Unlock()
		return nil
	}
	n.leaving = true
	id := n.id
	old := append([]Peer(nil), n.peers...)
	n.peers = nil
	n.peerGen++
	n.mu.Unlock()

	me := n.Addr()
	for i, p := range old {
		// Hints are the departing node's other peers — each recipient
		// gets candidates it can adopt to replace the lost edge.
		hints := make([]Peer, 0, maxDepartHints)
		for j := 1; j < len(old) && len(hints) < maxDepartHints; j++ {
			hints = append(hints, old[(i+j)%len(old)])
		}
		n.send(p.Addr, &wire.Envelope{
			Kind: wire.KindDepart, ID: wire.NewMsgID(), TTL: 1,
			From: me, To: p.Addr,
			Body: encodeDepart(&departMsg{Version: departVersion, ID: id, Hints: hints}),
		})
		n.m.departsSent.Inc()
		n.journal.Append(obs.Event{Kind: obs.EvPeerDropped, Peer: p.Addr, Reason: "leave"})
	}

	reason := "deregistered"
	var derr error
	if !id.IsZero() {
		if derr = n.lgc.Deregister(id); derr != nil {
			reason = "deregister-failed"
		}
	}
	n.journal.Append(obs.Event{Kind: obs.EvLeft, Count: len(old), Reason: reason})
	n.log.Info("left bestpeer network", "peers_told", len(old), "liglo", reason)
	return derr
}

// Leaving reports whether Leave has run (and no Join/Rejoin since).
func (n *Node) Leaving() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.leaving
}

// handleDepart processes a peer's graceful-leave announcement: the edge
// drops immediately (no sweep timeout), every per-peer resource —
// transport send queue, suspect state, learned routing counters, cached
// answers it served — is released, and the carried replacement hints are
// adopted or stashed for the repair loop.
func (n *Node) handleDepart(env *wire.Envelope) {
	m, err := decodeDepart(env.Body)
	if err != nil || env.From == "" {
		return
	}
	from := env.From
	n.m.departsReceived.Inc()

	n.mu.Lock()
	removed := false
	keep := n.peers[:0:0]
	for _, p := range n.peers {
		if p.Addr == from {
			removed = true
			continue
		}
		keep = append(keep, p)
	}
	if removed {
		n.peers = keep
		n.peerGen++
	}
	leaving := n.leaving
	n.mu.Unlock()

	n.journal.Append(obs.Event{Kind: obs.EvDepartReceived, Peer: from, Count: len(m.Hints)})
	if removed {
		n.journal.Append(obs.Event{Kind: obs.EvPeerDropped, Peer: from, Reason: "depart"})
	}
	n.msgr.Forget(from)
	n.qr.ForgetNeighbor(from)
	// The leaver's process may well stay up (it can Rejoin later), so it
	// keeps answering probes — remember the departure so repair gossip
	// does not immediately re-adopt the edge we just tore down.
	n.noteDeparted(from)
	if leaving {
		return
	}

	// Adopt the hints while there is room; stash the rest so a later
	// repair round can use them without a LIGLO round trip.
	added := 0
	var stash []Peer
	me := n.Addr()
	for _, h := range m.Hints {
		if h.Addr == "" || h.Addr == me || h.Addr == from || n.recentlyDeparted(h.Addr) {
			continue
		}
		if n.addPeerReason(h, "depart-hint") {
			added++
		} else {
			stash = append(stash, h)
		}
	}
	if len(stash) > 0 {
		n.stashHints(stash)
	}
	if removed && added == 0 {
		n.kickRepair("depart")
	}
}

// handlePeerList serves this node's direct peers (minus the requester) —
// the neighbor-of-neighbor candidates a repairing node backfills from.
func (n *Node) handlePeerList(env *wire.Envelope) {
	peers := n.Peers()
	out := peers[:0:0]
	for _, p := range peers {
		if p.Addr == env.From {
			continue
		}
		out = append(out, p)
	}
	n.send(env.From, &wire.Envelope{
		Kind: wire.KindPeerListOK, ID: env.ID, TTL: 1,
		From: n.Addr(), To: env.From,
		Body: encodePeerListResp(&peerListResp{Peers: out}),
	})
}

// deliverPeerList completes an outstanding PeersOfPeer exchange.
func (n *Node) deliverPeerList(env *wire.Envelope) {
	v, ok := n.peerLists.Load(env.ID)
	if !ok {
		return // late reply for an exchange that timed out
	}
	r, err := decodePeerListResp(env.Body)
	if err != nil {
		return
	}
	select {
	case v.(chan []Peer) <- r.Peers:
	default: // duplicate reply; the first one won
	}
}

// PeersOfPeer asks a direct peer for its current peer list, synchronously.
func (n *Node) PeersOfPeer(addr string, timeout time.Duration) ([]Peer, bool) {
	if timeout <= 0 {
		timeout = probeTimeout
	}
	id := wire.NewMsgID()
	ch := make(chan []Peer, 1)
	n.peerLists.Store(id, ch)
	defer n.peerLists.Delete(id)
	n.send(addr, &wire.Envelope{
		Kind: wire.KindPeerList, ID: id, TTL: 1, From: n.Addr(), To: addr,
	})
	select {
	case peers := <-ch:
		return peers, true
	case <-time.After(timeout):
		return nil, false
	}
}

// kickRepair wakes the repair loop. Non-blocking: concurrent triggers
// while a round is pending coalesce into that round.
func (n *Node) kickRepair(reason string) {
	select {
	case n.repairKick <- reason:
	default:
	}
}

// stashHints retains replacement-neighbor hints for later repair rounds,
// deduplicated and bounded (newest win).
func (n *Node) stashHints(hs []Peer) {
	n.hintMu.Lock()
	defer n.hintMu.Unlock()
	for _, h := range hs {
		dup := false
		for _, e := range n.hintStash {
			if e.Addr == h.Addr {
				dup = true
				break
			}
		}
		if !dup {
			n.hintStash = append(n.hintStash, h)
		}
	}
	if len(n.hintStash) > maxHintStash {
		n.hintStash = append([]Peer(nil), n.hintStash[len(n.hintStash)-maxHintStash:]...)
	}
}

// popHint takes the oldest stashed hint, if any.
func (n *Node) popHint() (Peer, bool) {
	n.hintMu.Lock()
	defer n.hintMu.Unlock()
	if len(n.hintStash) == 0 {
		return Peer{}, false
	}
	h := n.hintStash[0]
	n.hintStash = n.hintStash[1:]
	return h, true
}

// StartRepair launches the crash-repair loop: it wakes on failure-
// detector kicks (transport suspect transitions, sweep drops, departs)
// and every interval as a safety net, drops suspect peers that fail a
// probe, and backfills the overlay degree toward MaxPeers — stashed
// Depart hints first, then neighbor-of-neighbor candidates, then the
// home LIGLO. Kicked rounds wait a jittered pause first so a correlated
// failure does not stampede every survivor onto the same candidates at
// the same instant. The returned stop function terminates the loop and
// blocks until it has exited.
func (n *Node) StartRepair(interval, probeTimeout time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 15 * time.Second
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	// Deterministic per-node jitter: seeded by the listen address, so
	// simulations replay identically while distinct nodes still spread.
	h := fnv.New64a()
	_, _ = h.Write([]byte(n.Addr())) // fnv.Write never fails
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	go func() {
		defer close(finished)
		defer n.containPanic("repair")
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			var reason string
			select {
			case <-done:
				return
			case reason = <-n.repairKick:
				jitter := time.Duration(rng.Int63n(int64(interval/10) + 1))
				t := time.NewTimer(jitter)
				select {
				case <-done:
					t.Stop()
					return
				case <-t.C:
				}
			case <-ticker.C:
				reason = "periodic"
			}
			n.RepairRound(reason, probeTimeout)
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-finished
		})
	}
}

// RepairRound runs one repair round (the loop's body, exported so tests
// and operators can force one): probe currently-suspect peers and drop
// the dead, then backfill the degree deficit. It returns how many peers
// were added.
func (n *Node) RepairRound(reason string, probeTO time.Duration) int {
	if n.isClosed() || n.Leaving() {
		return 0
	}
	if probeTO <= 0 {
		probeTO = probeTimeout
	}

	// Phase 1: validate suspects. Only peers the transport's failure
	// detector already distrusts are probed, so a healthy overlay pays
	// nothing here. Failing (threshold crossed, nothing delivered since)
	// rather than Suspect (inside the backoff window) — the window can
	// expire between the failure and this round sampling it, and a dead
	// peer must not escape detection by out-waiting a 100 ms backoff.
	n.mu.Lock()
	peers := append([]Peer(nil), n.peers...)
	gen := n.peerGen
	n.mu.Unlock()
	var suspects []Peer
	for _, p := range peers {
		if n.msgr.Failing(p.Addr) {
			suspects = append(suspects, p)
		}
	}
	dead := make([]bool, len(suspects))
	if len(suspects) > 0 {
		var wg sync.WaitGroup
		for i, p := range suspects {
			i, p := i, p
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer n.containPanic("repair-probe")
				dead[i] = !n.Probe(p.Addr, probeTO)
			}()
		}
		wg.Wait()
	}
	var drops []Peer
	for i, p := range suspects {
		if dead[i] {
			drops = append(drops, p)
		}
	}
	dropped := 0
	if len(drops) > 0 {
		n.mu.Lock()
		if n.peerGen == gen {
			keep := n.peers[:0:0]
			for _, p := range n.peers {
				isDead := false
				for _, d := range drops {
					if d.Addr == p.Addr {
						isDead = true
						break
					}
				}
				if isDead {
					dropped++
					continue
				}
				keep = append(keep, p)
			}
			n.peers = keep
			n.peerGen++
			n.mu.Unlock()
			for _, p := range drops {
				n.journal.Append(obs.Event{Kind: obs.EvPeerDropped, Peer: p.Addr, Reason: "suspect"})
				n.msgr.Forget(p.Addr)
				n.qr.ForgetNeighbor(p.Addr)
			}
		} else {
			// The set changed under the probes (a reconfiguration, a
			// concurrent Leave); discard the stale result — the kick that
			// caused the change schedules its own round.
			n.mu.Unlock()
		}
	}

	// Phase 2: backfill the deficit. Stashed hints and neighbor-of-
	// neighbor candidates are unverified gossip — under churn they
	// routinely name dead generations, and adopting them blind lets the
	// whole fleet trade stale addresses back and forth until every peer
	// set is garbage. Probe each candidate before adoption, and refuse
	// recently-departed addresses outright (a leaver's process is often
	// still alive and probe-positive, so gossip that predates its Depart
	// would resurrect the edge). Only the home LIGLO (Replenish) is
	// trusted as-is, since validating members is the registry's job.
	n.mu.Lock()
	deficit := n.cfg.MaxPeers - len(n.peers)
	n.mu.Unlock()
	started := deficit
	added := 0
	for deficit > 0 {
		h, ok := n.popHint()
		if !ok {
			break
		}
		if h.Addr == n.Addr() || n.recentlyDeparted(h.Addr) || !n.Probe(h.Addr, probeTO) {
			continue
		}
		if n.addPeerReason(h, "repair") {
			added++
			deficit--
		}
	}
	if deficit > 0 {
		have := make(map[string]bool)
		for _, p := range n.Peers() {
			have[p.Addr] = true
		}
		for _, p := range n.Peers() {
			cands, ok := n.PeersOfPeer(p.Addr, probeTO)
			if !ok {
				continue
			}
			for _, c := range cands {
				if c.Addr == n.Addr() || have[c.Addr] || n.recentlyDeparted(c.Addr) || !n.Probe(c.Addr, probeTO) {
					continue
				}
				if n.addPeerReason(c, "repair") {
					have[c.Addr] = true
					added++
					deficit--
				}
				if deficit <= 0 {
					break
				}
			}
			if deficit <= 0 {
				break
			}
		}
	}
	if deficit > 0 {
		if a, err := n.Replenish(); err == nil {
			added += a
		}
	}

	n.m.repairRounds.Inc()
	n.m.repairAdded.Add(uint64(added))
	if dropped > 0 || started > 0 || added > 0 {
		n.journal.Append(obs.Event{Kind: obs.EvRepair, Reason: reason, Count: added, K: started})
	}
	if added > 0 {
		n.log.Info("repaired peer set", "trigger", reason, "added", added, "dropped", dropped)
	}
	return added
}
