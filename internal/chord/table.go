package chord

// Table is the pure routing state of one chord participant: predecessor,
// successor list, and finger table, plus the next-hop decision. It has
// no locks and performs no I/O — Node guards it with a mutex for the
// live protocol, and the bench simulator drives one Table per simulated
// node directly.
type Table struct {
	self    NodeRef
	pred    NodeRef // zero while unknown
	succs   []NodeRef
	fingers [Bits]NodeRef // zero entries are unset
	succLen int
}

// DefaultSuccessors is the successor-list length when a Table or Node is
// configured with zero. With independent failure probability p, a
// lookup strands only when all r successors die inside one stabilize
// interval — p^r, vanishing already at small r.
const DefaultSuccessors = 4

// NewTable returns the state of a node that is alone on its ring: it is
// its own successor and owns every key.
func NewTable(self NodeRef, succLen int) *Table {
	if succLen <= 0 {
		succLen = DefaultSuccessors
	}
	return &Table{self: self, succs: []NodeRef{self}, succLen: succLen}
}

// Self returns the node's own reference.
func (t *Table) Self() NodeRef { return t.self }

// Successor returns the immediate successor — self when alone.
func (t *Table) Successor() NodeRef {
	if len(t.succs) == 0 {
		return t.self
	}
	return t.succs[0]
}

// Successors returns a copy of the successor list.
func (t *Table) Successors() []NodeRef {
	return append([]NodeRef(nil), t.succs...)
}

// Predecessor returns the known predecessor, if any.
func (t *Table) Predecessor() (NodeRef, bool) {
	return t.pred, !t.pred.IsZero()
}

// Fingers returns a copy of the finger table; unset entries are zero.
func (t *Table) Fingers() []NodeRef {
	return append([]NodeRef(nil), t.fingers[:]...)
}

// Owns reports whether this node is responsible for k — k ∈ (pred, self]
// — or is alone on its ring. With the predecessor unknown but a real
// successor present the answer is conservatively false; routing resolves
// ownership via the predecessor's interval instead.
func (t *Table) Owns(k Key) bool {
	if t.Successor().Addr == t.self.Addr {
		return true
	}
	if t.pred.IsZero() {
		return false
	}
	return betweenRightIncl(t.pred.Key, k, t.self.Key)
}

// NextHop decides one routing step for k. When done is true, owner is
// the final answer (self's successor owns k, or the node is alone).
// Otherwise hop is the node to forward the lookup to: the closest
// preceding finger, or the successor when no finger helps. failing, when
// non-nil, vetoes candidates the caller's failure detector distrusts.
func (t *Table) NextHop(k Key, failing func(addr string) bool) (owner NodeRef, hop NodeRef, done bool) {
	succ := t.Successor()
	if succ.Addr == t.self.Addr || betweenRightIncl(t.self.Key, k, succ.Key) {
		return succ, NodeRef{}, true
	}
	hop = t.closestPreceding(k, failing)
	if hop.IsZero() {
		hop = succ
	}
	return NodeRef{}, hop, false
}

// closestPreceding scans the finger table top-down, then the successor
// list, for the live node whose key most closely precedes k — the step
// that halves the remaining arc and yields O(log N) lookups.
func (t *Table) closestPreceding(k Key, failing func(addr string) bool) NodeRef {
	ok := func(r NodeRef) bool {
		return !r.IsZero() && r.Addr != t.self.Addr &&
			between(t.self.Key, r.Key, k) &&
			(failing == nil || !failing(r.Addr))
	}
	for i := len(t.fingers) - 1; i >= 0; i-- {
		if ok(t.fingers[i]) {
			return t.fingers[i]
		}
	}
	for i := len(t.succs) - 1; i >= 0; i-- {
		if ok(t.succs[i]) {
			return t.succs[i]
		}
	}
	return NodeRef{}
}

// SetSuccessors replaces the successor list, deduplicating by address
// and trimming to the configured length. An empty list resets to self.
func (t *Table) SetSuccessors(list []NodeRef) {
	t.succs = t.succs[:0]
	seen := make(map[string]bool, len(list))
	for _, r := range list {
		if r.IsZero() || seen[r.Addr] {
			continue
		}
		seen[r.Addr] = true
		t.succs = append(t.succs, r)
		if len(t.succs) >= t.succLen {
			break
		}
	}
	if len(t.succs) == 0 {
		t.succs = append(t.succs, t.self)
	}
}

// AdoptFromProbe folds one stabilize probe of the immediate successor
// into the table: the successor's predecessor x becomes the new
// successor when it sits between self and the old successor (a node
// joined in front of us), and the successor's own list backs up ours.
// It reports whether the immediate successor changed.
func (t *Table) AdoptFromProbe(succ NodeRef, succPred NodeRef, succSuccs []NodeRef) bool {
	head := succ
	if !succPred.IsZero() && succPred.Addr != t.self.Addr &&
		between(t.self.Key, succPred.Key, succ.Key) {
		head = succPred
	}
	old := t.Successor()
	merged := make([]NodeRef, 0, 2+len(succSuccs))
	merged = append(merged, head)
	if head.Addr != succ.Addr {
		merged = append(merged, succ)
	}
	merged = append(merged, succSuccs...)
	t.SetSuccessors(merged)
	return t.Successor().Addr != old.Addr
}

// Notify offers cand as a predecessor candidate (the chord notify rule)
// and reports whether the predecessor changed.
func (t *Table) Notify(cand NodeRef) bool {
	if cand.IsZero() || cand.Addr == t.self.Addr {
		return false
	}
	if t.pred.IsZero() || between(t.pred.Key, cand.Key, t.self.Key) {
		changed := t.pred.Addr != cand.Addr
		t.pred = cand
		return changed
	}
	return false
}

// SetFinger records the owner of finger interval i.
func (t *Table) SetFinger(i int, r NodeRef) {
	if i >= 0 && i < len(t.fingers) && r.Addr != t.self.Addr {
		t.fingers[i] = r
	}
}

// DropPredecessor forgets the predecessor (check-predecessor found it
// dead); the next notify re-learns it.
func (t *Table) DropPredecessor() { t.pred = NodeRef{} }

// RemoveFailed purges a dead node from every slot: predecessor, the
// successor list, and all fingers. It reports whether anything changed.
func (t *Table) RemoveFailed(addr string) bool {
	changed := false
	if t.pred.Addr == addr {
		t.pred = NodeRef{}
		changed = true
	}
	kept := t.succs[:0]
	for _, r := range t.succs {
		if r.Addr == addr {
			changed = true
			continue
		}
		kept = append(kept, r)
	}
	t.succs = kept
	if len(t.succs) == 0 {
		t.succs = append(t.succs, t.self)
	}
	for i := range t.fingers {
		if t.fingers[i].Addr == addr {
			t.fingers[i] = NodeRef{}
			changed = true
		}
	}
	return changed
}

// Depart processes a graceful-leave handoff: leaving disappears from the
// table and repl (the leaver's other neighbor) fills the hole — as a
// predecessor candidate when the leaver was our predecessor, and as a
// successor candidate when the leaver headed our successor list.
func (t *Table) Depart(leaving, repl NodeRef) bool {
	wasPred := t.pred.Addr == leaving.Addr
	wasSucc := t.Successor().Addr == leaving.Addr
	changed := t.RemoveFailed(leaving.Addr)
	if repl.IsZero() || repl.Addr == t.self.Addr {
		return changed
	}
	if wasPred {
		changed = t.Notify(repl) || changed
	}
	if wasSucc && (t.Successor().Addr == t.self.Addr ||
		between(t.self.Key, repl.Key, t.Successor().Key)) {
		t.SetSuccessors(append([]NodeRef{repl}, t.succs...))
		changed = true
	}
	return changed
}
