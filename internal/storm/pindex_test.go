package storm

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
)

func pindexStore(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(filepath.Join(dir, "pi.storm"), Options{PersistentIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPersistentIndexLookup(t *testing.T) {
	s := pindexStore(t, t.TempDir())
	defer s.Close()
	s.Put(&Object{Name: "b-song", Keywords: []string{"Jazz", "vinyl"}, Data: []byte("x")})
	s.Put(&Object{Name: "a-song", Keywords: []string{"jazz"}, Data: []byte("y")})
	s.Put(&Object{Name: "c-doc", Keywords: []string{"work"}, Data: []byte("z")})

	names, err := s.LookupKeyword("JAZZ")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "a-song" || names[1] != "b-song" {
		t.Fatalf("Lookup(JAZZ) = %v", names)
	}
	if n, _ := s.Index().Postings(); n != 4 {
		t.Fatalf("postings = %d", n)
	}
}

func TestPersistentIndexMaintainedOnReplaceAndDelete(t *testing.T) {
	s := pindexStore(t, t.TempDir())
	defer s.Close()
	s.Put(&Object{Name: "x", Keywords: []string{"old"}, Data: []byte("1")})
	s.Put(&Object{Name: "x", Keywords: []string{"new", "extra"}, Data: []byte("2")})

	if names, _ := s.LookupKeyword("old"); len(names) != 0 {
		t.Fatalf("stale posting: %v", names)
	}
	if names, _ := s.LookupKeyword("new"); len(names) != 1 {
		t.Fatalf("missing posting: %v", names)
	}
	if err := s.Delete("x"); err != nil {
		t.Fatal(err)
	}
	for _, kw := range []string{"new", "extra"} {
		if names, _ := s.LookupKeyword(kw); len(names) != 0 {
			t.Fatalf("posting survived delete: %s -> %v", kw, names)
		}
	}
	if n, _ := s.Index().Postings(); n != 0 {
		t.Fatalf("postings = %d after full delete", n)
	}
}

func TestPersistentIndexSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s := pindexStore(t, dir)
	for i := 0; i < 300; i++ {
		s.Put(&Object{
			Name:     fmt.Sprintf("o%03d", i),
			Keywords: []string{fmt.Sprintf("kw%d", i%7)},
			Data:     []byte("d"),
		})
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := pindexStore(t, dir)
	defer r.Close()
	names, err := r.LookupKeyword("kw3")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 300/7+1 {
		t.Fatalf("reopened lookup = %d names", len(names))
	}
	// Index agrees with a scan for every keyword.
	for k := 0; k < 7; k++ {
		kw := fmt.Sprintf("kw%d", k)
		fromIndex, _ := r.LookupKeyword(kw)
		count := 0
		r.Scan(func(o *Object) bool {
			for _, okw := range o.Keywords {
				if okw == kw {
					count++
				}
			}
			return true
		})
		if len(fromIndex) != count {
			t.Fatalf("%s: index %d vs scan %d", kw, len(fromIndex), count)
		}
	}
}

func TestPersistentIndexRebuiltFromPlainFile(t *testing.T) {
	dir := t.TempDir()
	plain, err := Open(filepath.Join(dir, "pi.storm"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		plain.Put(&Object{Name: fmt.Sprintf("p%02d", i), Keywords: []string{"k"}, Data: []byte("d")})
	}
	plain.Close()

	s := pindexStore(t, dir)
	defer s.Close()
	names, err := s.LookupKeyword("k")
	if err != nil || len(names) != 40 {
		t.Fatalf("rebuilt index lookup = %d, %v", len(names), err)
	}
}

func TestLookupKeywordWithoutIndexFails(t *testing.T) {
	s := tempStore(t, Options{})
	if _, err := s.LookupKeyword("k"); err == nil {
		t.Fatal("lookup without index succeeded")
	}
	if s.Index() != nil {
		t.Fatal("Index() non-nil when disabled")
	}
}

func TestPersistentIndexWithCatalogAndWAL(t *testing.T) {
	// All three durability extensions together, through a crash.
	dir := t.TempDir()
	open := func() *Store {
		s, err := Open(filepath.Join(dir, "all.storm"), Options{
			PersistentCatalog: true,
			PersistentIndex:   true,
			WALPath:           filepath.Join(dir, "all.wal"),
			WALSync:           true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s := open()
	rng := rand.New(rand.NewSource(5))
	live := map[string]string{}
	for op := 0; op < 200; op++ {
		name := fmt.Sprintf("n%02d", rng.Intn(40))
		if rng.Intn(4) == 0 {
			if s.Delete(name) == nil {
				delete(live, name)
			}
		} else {
			kw := fmt.Sprintf("kw%d", rng.Intn(5))
			s.Put(&Object{Name: name, Keywords: []string{kw}, Data: []byte(name)})
			live[name] = kw
		}
	}
	// Crash without Close.
	s.wal.Close()
	s.file.Close()

	r := open()
	defer r.Close()
	if r.Len() != len(live) {
		t.Fatalf("recovered %d objects, want %d", r.Len(), len(live))
	}
	for k := 0; k < 5; k++ {
		kw := fmt.Sprintf("kw%d", k)
		want := 0
		for _, v := range live {
			if v == kw {
				want++
			}
		}
		got, err := r.LookupKeyword(kw)
		if err != nil || len(got) != want {
			t.Fatalf("%s: index %d, want %d (%v)", kw, len(got), want, err)
		}
	}
}
