package chord

import (
	"errors"
	"fmt"

	"bestpeer/internal/wire"
)

// ErrBadMessage reports a malformed chord-protocol payload.
var ErrBadMessage = errors.New("chord: malformed message")

// Payload versions this build emits. Every chord body leads with its
// version so fields can grow without new message kinds: decoders accept
// newer versions, tolerating trailing bytes they do not understand, and
// reject only truncated input (the Depart precedent in internal/core).
const (
	chordLookupVersion = 1
	chordNotifyVersion = 1
	chordProbeVersion  = 1
)

// maxRefs bounds decoded NodeRef lists so a corrupt length prefix cannot
// trigger a giant allocation; no real successor list approaches it.
const maxRefs = 1024

// LookupEnvelope frames a lookup for k exactly as a live node forwards
// it — the bench harness routes these through its simulated network so
// message and byte counts reflect real wire frames.
func LookupEnvelope(k Key, hops int) *wire.Envelope {
	return &wire.Envelope{
		Kind: wire.KindChordLookup, ID: wire.NewMsgID(), TTL: 1,
		Body: encodeLookupReq(&lookupReq{Version: chordLookupVersion, Key: k, Hops: uint64(hops)}),
	}
}

// LookupOKEnvelope frames the owner reply to a lookup, as sent on the
// live wire.
func LookupOKEnvelope(owner NodeRef, hops int) *wire.Envelope {
	return &wire.Envelope{
		Kind: wire.KindChordLookupOK, ID: wire.NewMsgID(), TTL: 1,
		Body: encodeLookupOK(&lookupOK{Version: chordLookupVersion, Owner: owner, Hops: uint64(hops)}),
	}
}

func encodeNodeRef(e *wire.Encoder, r NodeRef) {
	e.Uvarint(uint64(r.Key))
	e.String(r.Addr)
}

func decodeNodeRef(d *wire.Decoder) NodeRef {
	return NodeRef{Key: Key(d.Uvarint()), Addr: d.String()}
}

// lookupReq asks for the owner of a key (KindChordLookup). Hops counts
// forwarding steps already taken, bounding recursive routing.
type lookupReq struct {
	Version uint64
	Key     Key
	Hops    uint64
}

func encodeLookupReq(m *lookupReq) []byte {
	var e wire.Encoder
	e.Uvarint(m.Version)
	e.Uvarint(uint64(m.Key))
	e.Uvarint(m.Hops)
	return e.Bytes()
}

func decodeLookupReq(b []byte) (*lookupReq, error) {
	d := wire.NewDecoder(b)
	m := &lookupReq{Version: d.Uvarint()}
	m.Key = Key(d.Uvarint())
	m.Hops = d.Uvarint()
	if m.Version > chordLookupVersion {
		if err := d.Err(); err != nil {
			return nil, fmt.Errorf("%w: lookup-req: %v", ErrBadMessage, err)
		}
		return m, nil
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: lookup-req: %v", ErrBadMessage, err)
	}
	return m, nil
}

// lookupOK answers a lookup (KindChordLookupOK): the owning node and the
// total hops the request travelled.
type lookupOK struct {
	Version uint64
	Err     string
	Owner   NodeRef
	Hops    uint64
}

func encodeLookupOK(m *lookupOK) []byte {
	var e wire.Encoder
	e.Uvarint(m.Version)
	e.String(m.Err)
	encodeNodeRef(&e, m.Owner)
	e.Uvarint(m.Hops)
	return e.Bytes()
}

func decodeLookupOK(b []byte) (*lookupOK, error) {
	d := wire.NewDecoder(b)
	m := &lookupOK{Version: d.Uvarint()}
	m.Err = d.String()
	m.Owner = decodeNodeRef(d)
	m.Hops = d.Uvarint()
	if m.Version > chordLookupVersion {
		if err := d.Err(); err != nil {
			return nil, fmt.Errorf("%w: lookup-ok: %v", ErrBadMessage, err)
		}
		return m, nil
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: lookup-ok: %v", ErrBadMessage, err)
	}
	return m, nil
}

// notifyMsg is the stabilize notify (KindChordNotify): Self tells the
// receiver it may be its predecessor. With Leaving set it is instead the
// graceful-leave handoff — Self is departing and Repl (its other
// neighbor) is the receiver's replacement candidate.
type notifyMsg struct {
	Version uint64
	Self    NodeRef
	Leaving bool
	Repl    NodeRef
}

func encodeNotifyMsg(m *notifyMsg) []byte {
	var e wire.Encoder
	e.Uvarint(m.Version)
	encodeNodeRef(&e, m.Self)
	e.Bool(m.Leaving)
	encodeNodeRef(&e, m.Repl)
	return e.Bytes()
}

func decodeNotifyMsg(b []byte) (*notifyMsg, error) {
	d := wire.NewDecoder(b)
	m := &notifyMsg{Version: d.Uvarint()}
	m.Self = decodeNodeRef(d)
	m.Leaving = d.Bool()
	m.Repl = decodeNodeRef(d)
	if m.Version > chordNotifyVersion {
		if err := d.Err(); err != nil {
			return nil, fmt.Errorf("%w: notify: %v", ErrBadMessage, err)
		}
		return m, nil
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: notify: %v", ErrBadMessage, err)
	}
	return m, nil
}

// notifyOK acknowledges a notify (KindChordNotifyOK).
type notifyOK struct {
	Version uint64
	Err     string
}

func encodeNotifyOK(m *notifyOK) []byte {
	var e wire.Encoder
	e.Uvarint(m.Version)
	e.String(m.Err)
	return e.Bytes()
}

func decodeNotifyOK(b []byte) (*notifyOK, error) {
	d := wire.NewDecoder(b)
	m := &notifyOK{Version: d.Uvarint()}
	m.Err = d.String()
	if m.Version > chordNotifyVersion {
		if err := d.Err(); err != nil {
			return nil, fmt.Errorf("%w: notify-ok: %v", ErrBadMessage, err)
		}
		return m, nil
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: notify-ok: %v", ErrBadMessage, err)
	}
	return m, nil
}

// probeReq asks a node for its neighbors (KindChordProbe) — the
// stabilize and finger-maintenance probe, doubling as a liveness check.
// From lets the probed node learn about the prober for free.
type probeReq struct {
	Version uint64
	From    NodeRef
}

func encodeProbeReq(m *probeReq) []byte {
	var e wire.Encoder
	e.Uvarint(m.Version)
	encodeNodeRef(&e, m.From)
	return e.Bytes()
}

func decodeProbeReq(b []byte) (*probeReq, error) {
	d := wire.NewDecoder(b)
	m := &probeReq{Version: d.Uvarint()}
	m.From = decodeNodeRef(d)
	if m.Version > chordProbeVersion {
		if err := d.Err(); err != nil {
			return nil, fmt.Errorf("%w: probe: %v", ErrBadMessage, err)
		}
		return m, nil
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: probe: %v", ErrBadMessage, err)
	}
	return m, nil
}

// probeOK is the probe reply (KindChordProbeOK): the probed node's
// identity, predecessor (when known) and successor list — everything
// stabilization needs in one round trip.
type probeOK struct {
	Version uint64
	Err     string
	Self    NodeRef
	HasPred bool
	Pred    NodeRef
	Succs   []NodeRef
}

func encodeProbeOK(m *probeOK) []byte {
	var e wire.Encoder
	e.Uvarint(m.Version)
	e.String(m.Err)
	encodeNodeRef(&e, m.Self)
	e.Bool(m.HasPred)
	encodeNodeRef(&e, m.Pred)
	e.Uvarint(uint64(len(m.Succs)))
	for _, r := range m.Succs {
		encodeNodeRef(&e, r)
	}
	return e.Bytes()
}

func decodeProbeOK(b []byte) (*probeOK, error) {
	d := wire.NewDecoder(b)
	m := &probeOK{Version: d.Uvarint()}
	m.Err = d.String()
	m.Self = decodeNodeRef(d)
	m.HasPred = d.Bool()
	m.Pred = decodeNodeRef(d)
	n := d.Uvarint()
	if n > maxRefs {
		return nil, fmt.Errorf("%w: probe-ok: %d successors", ErrBadMessage, n)
	}
	for i := uint64(0); i < n; i++ {
		m.Succs = append(m.Succs, decodeNodeRef(d))
	}
	if m.Version > chordProbeVersion {
		if err := d.Err(); err != nil {
			return nil, fmt.Errorf("%w: probe-ok: %v", ErrBadMessage, err)
		}
		return m, nil
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: probe-ok: %v", ErrBadMessage, err)
	}
	return m, nil
}
