// Package core implements the BestPeer node: the paper's primary
// contribution. A node couples a StorM storage manager, a mobile-agent
// engine, a self-configuring direct-peer set and a LIGLO client. Queries
// are agents cloned to all direct peers; peers with answers reply
// directly to the base node (out-of-network returns); after each query
// the node reconfigures its peer set with a pluggable strategy.
package core

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"sync"
	"time"

	"bestpeer/internal/agent"
	"bestpeer/internal/liglo"
	"bestpeer/internal/reconfig"
	"bestpeer/internal/storm"
	"bestpeer/internal/transport"
	"bestpeer/internal/wire"
)

// Node errors.
var (
	ErrNodeClosed = errors.New("core: node closed")
	ErrNoQuery    = errors.New("core: no such outstanding query")
)

// Peer is a directly connected peer: identity plus current address.
type Peer struct {
	ID   wire.BPID
	Addr string
}

// Config configures a Node.
type Config struct {
	// Network supplies connectivity (TCP or in-process).
	Network transport.Network
	// ListenAddr is the address to bind; empty picks one.
	ListenAddr string
	// Store is the node's StorM instance. Required.
	Store *storm.Store
	// Registry holds the node's agent classes. Nil creates a registry
	// with all built-ins installed.
	Registry *agent.Registry
	// ActiveNodes holds the node's active elements. Nil creates an
	// empty set with the default level filter.
	ActiveNodes *agent.ActiveSet
	// MaxPeers caps the direct-peer set (the paper's k). Zero
	// defaults to 5.
	MaxPeers int
	// DefaultTTL is the agent lifetime when the query does not override
	// it. Zero defaults to 7, Gnutella's classic value.
	DefaultTTL uint8
	// Strategy picks which peers to keep after each query. Nil defaults
	// to MaxCount; use reconfig.Static for a non-reconfiguring node
	// (the paper's BPS).
	Strategy reconfig.Strategy
	// AccessLevel is the clearance this node presents when querying.
	AccessLevel int
	// Logger receives structured events (joins, reconfigurations, class
	// transfers, peer sweeps). Nil discards them.
	Logger *slog.Logger
	// Transport tunes the messenger's failure handling (dial/write
	// timeouts, send-queue bounds, suspect backoff). The zero value
	// selects the transport package defaults.
	Transport transport.Options
	// Liglo tunes the LIGLO client's retry/backoff policy. The zero
	// value selects the liglo package defaults.
	Liglo liglo.ClientOptions
}

// Node is a live BestPeer participant.
type Node struct {
	cfg      Config
	log      *slog.Logger
	store    *storm.Store
	registry *agent.Registry
	active   *agent.ActiveSet
	strategy reconfig.Strategy
	msgr     *transport.Messenger
	lgc      *liglo.Client

	mu      sync.Mutex
	id      wire.BPID
	peers   []Peer
	peerGen uint64 // bumped on every peer-set mutation
	closed  bool

	seen    *dedup
	queries sync.Map // wire.MsgID -> *queryState
	probes  sync.Map // wire.MsgID -> chan struct{}

	// pending holds agents waiting for a class transfer, keyed by class;
	// pendingWants holds peers whose class requests this node could not
	// serve yet.
	pendingMu    sync.Mutex
	pending      map[string][]pendingAgent
	pendingWants map[string][]string

	// Stats, updated atomically under mu.
	stats Stats
}

// Stats counts node activity.
type Stats struct {
	AgentsExecuted    uint64
	AgentsForwarded   uint64
	DuplicatesDropped uint64
	ExpiredDropped    uint64
	AnswersSent       uint64
	ClassesShipped    uint64
	ClassesInstalled  uint64
	Reconfigs         uint64
	// ContainedPanics counts node-goroutine panics that were recovered
	// instead of crashing the process; anything above zero is a bug.
	ContainedPanics uint64
}

type pendingAgent struct {
	env    *wire.Envelope
	packet *agent.Packet
}

// NewNode starts a node with the given configuration.
func NewNode(cfg Config) (*Node, error) {
	if cfg.Store == nil {
		return nil, errors.New("core: Config.Store is required")
	}
	if cfg.Network == nil {
		return nil, errors.New("core: Config.Network is required")
	}
	if cfg.MaxPeers <= 0 {
		cfg.MaxPeers = 5
	}
	if cfg.DefaultTTL == 0 {
		cfg.DefaultTTL = 7
	}
	reg := cfg.Registry
	if reg == nil {
		reg = agent.NewRegistry()
		if err := agent.RegisterBuiltins(reg); err != nil {
			return nil, err
		}
	}
	act := cfg.ActiveNodes
	if act == nil {
		act = agent.NewActiveSet()
		act.Add(&agent.LevelFilter{})
	}
	strat := cfg.Strategy
	if strat == nil {
		strat = reconfig.MaxCount{}
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	n := &Node{
		cfg:          cfg,
		log:          logger,
		store:        cfg.Store,
		registry:     reg,
		active:       act,
		strategy:     strat,
		lgc:          liglo.NewClientOpts(cfg.Network, cfg.Liglo),
		seen:         newDedup(8192),
		pending:      make(map[string][]pendingAgent),
		pendingWants: make(map[string][]string),
	}
	m, err := transport.NewMessengerOpts(cfg.Network, cfg.ListenAddr, n.handle, cfg.Transport)
	if err != nil {
		return nil, err
	}
	n.msgr = m
	return n, nil
}

// Addr returns the node's listen address.
func (n *Node) Addr() string { return n.msgr.Addr() }

// ID returns the node's BPID (zero until Join succeeds).
func (n *Node) ID() wire.BPID {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.id
}

// Store returns the node's storage manager.
func (n *Node) Store() *storm.Store { return n.store }

// Registry returns the node's agent class registry.
func (n *Node) Registry() *agent.Registry { return n.registry }

// ActiveNodes returns the node's active-element set.
func (n *Node) ActiveNodes() *agent.ActiveSet { return n.active }

// Strategy returns the reconfiguration strategy in use.
func (n *Node) Strategy() reconfig.Strategy { return n.strategy }

// Stats returns a snapshot of the node's counters.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Peers returns a copy of the direct-peer set.
func (n *Node) Peers() []Peer {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]Peer(nil), n.peers...)
}

// PeerAddrs returns the direct peers' addresses, sorted.
func (n *Node) PeerAddrs() []string {
	peers := n.Peers()
	out := make([]string, len(peers))
	for i, p := range peers {
		out[i] = p.Addr
	}
	sort.Strings(out)
	return out
}

// SetPeers replaces the direct-peer set (used by topology builders and
// tests). The set is clamped to MaxPeers.
func (n *Node) SetPeers(peers []Peer) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(peers) > n.cfg.MaxPeers {
		peers = peers[:n.cfg.MaxPeers]
	}
	n.peers = append([]Peer(nil), peers...)
	n.peerGen++
}

// AddPeer appends a direct peer if there is room and it is not already
// present. It reports whether the peer was added.
func (n *Node) AddPeer(p Peer) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, q := range n.peers {
		if q.Addr == p.Addr {
			return false
		}
	}
	if len(n.peers) >= n.cfg.MaxPeers {
		return false
	}
	n.peers = append(n.peers, p)
	n.peerGen++
	return true
}

// AdoptIdentity installs a BPID issued in an earlier session, so a
// restarted node keeps its identity and can Rejoin instead of
// re-registering.
func (n *Node) AdoptIdentity(id wire.BPID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.id = id
}

// Join registers with the first accepting LIGLO server, adopting the
// returned BPID and initial peer list.
func (n *Node) Join(servers []string) error {
	id, peers, err := n.lgc.RegisterAny(servers, n.Addr())
	if err != nil {
		return err
	}
	n.mu.Lock()
	n.id = id
	n.peers = n.peers[:0]
	for _, p := range peers {
		if len(n.peers) >= n.cfg.MaxPeers {
			break
		}
		n.peers = append(n.peers, Peer{ID: p.ID, Addr: p.Addr})
	}
	n.peerGen++
	count := len(n.peers)
	n.mu.Unlock()
	n.log.Info("joined bestpeer network", "bpid", id.String(), "initial_peers", count)
	return nil
}

// Rejoin re-announces the node's current address to its LIGLO server and
// refreshes every peer's address via that peer's own LIGLO (§2). Peers
// that are offline or unknown are dropped — the node will meet new peers
// through reconfiguration.
func (n *Node) Rejoin() error {
	n.mu.Lock()
	id := n.id
	peers := append([]Peer(nil), n.peers...)
	n.mu.Unlock()
	if id.IsZero() {
		return errors.New("core: Rejoin before Join")
	}
	if err := n.lgc.Rejoin(id, n.Addr()); err != nil {
		return err
	}
	var fresh []Peer
	for _, p := range peers {
		if p.ID.IsZero() {
			fresh = append(fresh, p) // no identity to check; keep as-is
			continue
		}
		addr, online, err := n.lgc.Lookup(p.ID)
		if err != nil || !online {
			continue
		}
		p.Addr = addr
		fresh = append(fresh, p)
	}
	n.mu.Lock()
	n.peers = fresh
	n.peerGen++
	n.mu.Unlock()
	return nil
}

// Close shuts the node down. The store is not closed — the caller owns it.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()
	// Interrupts any LIGLO retry backoff so Close never waits one out.
	_ = n.lgc.Close() // always returns nil
	return n.msgr.Close()
}

func (n *Node) isClosed() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.closed
}

// send delivers an envelope, ignoring transport errors to individual
// peers: an unreachable peer must not break a broadcast.
func (n *Node) send(to string, env *wire.Envelope) {
	if err := n.msgr.Send(to, env); err != nil {
		// The peer is gone or unreachable. Reconfiguration and Rejoin
		// handle peer-set repair; dropping here matches the paper's
		// "simply replace those peers" behaviour.
		return
	}
}

func (n *Node) bump(f func(*Stats)) {
	n.mu.Lock()
	f(&n.stats)
	n.mu.Unlock()
}

// containPanic is deferred at the top of node goroutines so a panic in a
// probe or fetch is logged and counted instead of killing the process.
func (n *Node) containPanic(where string) {
	if r := recover(); r != nil {
		n.log.Error("panic contained", "where", where, "panic", r)
		n.bump(func(s *Stats) { s.ContainedPanics++ })
	}
}

// String describes the node.
func (n *Node) String() string {
	return fmt.Sprintf("bestpeer(%s, id=%v, peers=%d)", n.Addr(), n.ID(), len(n.Peers()))
}

// probeTimeout bounds synchronous helper waits.
const probeTimeout = 5 * time.Second
