package obs

import (
	"context"
	"log/slog"
	"sync"
	"time"
)

// EventKind names one structured journal event. Every kind constructed
// anywhere in the tree must be declared here as a constant AND listed in
// the Kinds registry — the eventdrift bpvet analyzer enforces both, so
// consumers of /events (the observatory, the convergence timeline, the
// docs) can rely on the registry being the complete vocabulary.
type EventKind string

// The event vocabulary. Node-side kinds are emitted by internal/core,
// peer-liveness kinds by internal/transport, member kinds by the LIGLO
// server.
const (
	// EvJoined: the node registered with a LIGLO server and adopted a
	// BPID; Count is the number of initial peers received.
	EvJoined EventKind = "joined"
	// EvPeerAdded: a peer entered the direct-peer set. Reason says how
	// ("join", "reconfig", "topology", "added"); reconfig additions also
	// carry Query and Strategy.
	EvPeerAdded EventKind = "peer-added"
	// EvPeerDropped: a peer left the direct-peer set ("unresponsive"
	// from a sweep, "offline" from Rejoin, "topology" from SetPeers).
	EvPeerDropped EventKind = "peer-dropped"
	// EvReconfigured: the post-query strategy decision, with the full
	// per-candidate rationale in Scores (rank and k-cut selection).
	// Count is how many peers the decision added.
	EvReconfigured EventKind = "reconfigured"
	// EvQueryIssued: this node became the base of a query; Count is the
	// fan-out, Hops the TTL, Strategy the reconfiguration policy.
	EvQueryIssued EventKind = "query-issued"
	// EvQueryCompleted: the collection window closed; Count is the total
	// answers plus hints gathered.
	EvQueryCompleted EventKind = "query-completed"
	// EvAgentForwarded: an arriving agent was clone-forwarded; Count is
	// the fan-out, Peer the previous hop.
	EvAgentForwarded EventKind = "agent-forwarded"
	// EvAgentAnswered: an answer batch reached this base; Peer is the
	// answering node, Hops its distance, Count the batch size.
	EvAgentAnswered EventKind = "agent-answered"
	// EvAgentDropped: an arriving agent was discarded without execution
	// (Reason: expired, duplicate, decode, no-class).
	EvAgentDropped EventKind = "agent-dropped"
	// EvPeerSuspect: the transport crossed its consecutive-failure
	// threshold for Peer and armed the suspect backoff.
	EvPeerSuspect EventKind = "peer-suspect"
	// EvPeerRecovered: a delivery to a previously suspect Peer succeeded.
	EvPeerRecovered EventKind = "peer-recovered"
	// EvMessageDropped: the transport abandoned an outgoing envelope
	// (Reason: queue-full, suspect, encode, deliver).
	EvMessageDropped EventKind = "message-dropped"
	// EvMemberRegistered: a LIGLO server issued a BPID to Peer.
	EvMemberRegistered EventKind = "member-registered"
	// EvMemberOnline: a LIGLO member transitioned to online (Reason:
	// probe, rejoin).
	EvMemberOnline EventKind = "member-online"
	// EvMemberOffline: a LIGLO liveness sweep found a member unreachable.
	EvMemberOffline EventKind = "member-offline"
	// EvMemberExpired: a LIGLO server dropped a member that stayed
	// offline past the expiry window.
	EvMemberExpired EventKind = "member-expired"
	// EvCacheHit: the qroute answer cache served a query without work
	// (Reason: "base" for a whole-query hit with zero fan-out, "serve"
	// for a peer skipping its store scan, "negative" for a cached
	// no-match); Count is the answers served.
	EvCacheHit EventKind = "cache-hit"
	// EvCacheMiss: a fingerprintable query missed the base answer cache
	// and fell through to the normal fan-out path.
	EvCacheMiss EventKind = "cache-miss"
	// EvCacheInvalidated: a store mutation bumped the cache epoch; Count
	// is how many cached entries that made unservable.
	EvCacheInvalidated EventKind = "cache-invalidated"
	// EvSelectiveRoute: the learned routing index pruned a fan-out;
	// Count is the targets chosen, K the candidate neighbors, Hops the
	// scoped TTL sent with the clones.
	EvSelectiveRoute EventKind = "selective-route"
	// EvLeft: this node executed a graceful leave — Depart sent to every
	// direct peer and the home LIGLO notified; Count is how many peers
	// were told, Reason "deregistered" when the LIGLO accepted the
	// deregister and "deregister-failed" when it could not be reached.
	EvLeft EventKind = "left"
	// EvDepartReceived: a direct peer announced its departure; Count is
	// how many replacement-neighbor hints the announcement carried. The
	// edge drop itself is journalled as EvPeerDropped reason "depart".
	EvDepartReceived EventKind = "depart-received"
	// EvRepair: one crash-repair round ran. Reason is the trigger
	// ("suspect", "sweep", "depart", "periodic"), Count the peers added,
	// K the degree deficit the round started with.
	EvRepair EventKind = "repair"
	// EvMemberDeregistered: a LIGLO member announced a graceful leave and
	// was marked offline immediately, without waiting for a probe sweep.
	EvMemberDeregistered EventKind = "member-deregistered"
	// EvAlertRaised: a fleet health rule crossed its firing threshold and
	// held past its minimum-hold duration. Node is the member, Reason the
	// rule name, Strategy the derived series, Value/Threshold the breach,
	// Query the exemplar trace ID when one was available.
	EvAlertRaised EventKind = "alert-raised"
	// EvAlertCleared: a firing health rule stayed on the clear side of
	// its hysteresis band long enough to clear. Same provenance fields as
	// EvAlertRaised.
	EvAlertCleared EventKind = "alert-cleared"
	// EvRingJoined: a chord node entered a ring — Peer is the successor
	// it attached to ("" when it created a fresh ring).
	EvRingJoined EventKind = "ring-joined"
	// EvRingLeft: a chord node left its ring (Reason: "leave" for a
	// graceful departure, "close" for a plain shutdown).
	EvRingLeft EventKind = "ring-left"
	// EvRingNeighborChanged: stabilization moved a ring neighbor; Reason
	// is which slot ("successor", "predecessor"), Peer the new occupant
	// ("" when the slot was vacated).
	EvRingNeighborChanged EventKind = "ring-neighbor-changed"
	// EvRingRedirected: a ring-mode LIGLO server answered a request for a
	// key it does not own with the owner's address; Peer is the owner,
	// Reason the operation ("lookup", "rejoin", "deregister").
	EvRingRedirected EventKind = "ring-redirected"
	// EvRingReplicated: a ring-mode LIGLO server shipped member records
	// to a successor; Peer is the target, Count how many records.
	EvRingReplicated EventKind = "ring-replicated"
)

// Kinds is the complete event-kind registry; the eventdrift analyzer
// fails the build when a declared kind is missing from it.
var Kinds = []EventKind{
	EvJoined,
	EvPeerAdded,
	EvPeerDropped,
	EvReconfigured,
	EvQueryIssued,
	EvQueryCompleted,
	EvAgentForwarded,
	EvAgentAnswered,
	EvAgentDropped,
	EvPeerSuspect,
	EvPeerRecovered,
	EvMessageDropped,
	EvMemberRegistered,
	EvMemberOnline,
	EvMemberOffline,
	EvMemberExpired,
	EvCacheHit,
	EvCacheMiss,
	EvCacheInvalidated,
	EvSelectiveRoute,
	EvLeft,
	EvDepartReceived,
	EvRepair,
	EvMemberDeregistered,
	EvAlertRaised,
	EvAlertCleared,
	EvRingJoined,
	EvRingLeft,
	EvRingNeighborChanged,
	EvRingRedirected,
	EvRingReplicated,
}

// PeerScore is one candidate's line in a reconfiguration decision: the
// observation the strategy scored and where the candidate landed.
type PeerScore struct {
	Addr     string `json:"addr"`
	Answers  int    `json:"answers"`
	Bytes    int    `json:"bytes,omitempty"`
	Hops     int    `json:"hops,omitempty"`
	Rank     int    `json:"rank,omitempty"` // 1-based; 0 when the strategy never ranked it
	Selected bool   `json:"selected,omitempty"`
}

// Event is one journal entry. Only Seq, At and Kind are always present;
// the rest is kind-specific (see the kind constants). Query is the
// query's MsgID in hex — a string so simulated nodes can journal too.
type Event struct {
	Seq      uint64      `json:"seq"`
	At       time.Time   `json:"at"`
	Kind     EventKind   `json:"kind"`
	Node     string      `json:"node,omitempty"`
	Query    string      `json:"query,omitempty"`
	Peer     string      `json:"peer,omitempty"`
	Reason   string      `json:"reason,omitempty"`
	Strategy string      `json:"strategy,omitempty"`
	Hops     int         `json:"hops,omitempty"`
	Count    int         `json:"count,omitempty"`
	K        int         `json:"k,omitempty"`
	Scores   []PeerScore `json:"scores,omitempty"`
	// Value and Threshold carry the observed signal level and the rule
	// bound for alert events.
	Value     float64 `json:"value,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
}

// DefaultJournalCapacity is the ring size when NewJournal gets zero.
const DefaultJournalCapacity = 1024

// Journal is a fixed-capacity ring buffer of events with a monotonically
// increasing sequence cursor. When the ring wraps, the oldest events are
// evicted but remain accounted: Since reports exactly how many a reader
// missed, so overflow is visible rather than silent. All methods are
// safe for concurrent use and safe on a nil receiver (appends become
// no-ops), so emitting code never needs a nil check.
type Journal struct {
	mu   sync.Mutex
	node string
	buf  []Event
	n    int    // events currently retained (≤ len(buf))
	seq  uint64 // next sequence number == events ever appended
	log  *slog.Logger
}

// NewJournal creates a journal whose events are stamped with the node
// name. capacity ≤ 0 selects DefaultJournalCapacity.
func NewJournal(node string, capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultJournalCapacity
	}
	return &Journal{node: node, buf: make([]Event, capacity)}
}

// SetNode sets the name stamped on subsequent events — used when the
// journal must exist before the node's listen address is bound.
func (j *Journal) SetNode(node string) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.node = node
	j.mu.Unlock()
}

// Node returns the name stamped on this journal's events.
func (j *Journal) Node() string {
	if j == nil {
		return ""
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.node
}

// SetLogger mirrors every appended event to l at debug level. Nil stops
// mirroring.
func (j *Journal) SetLogger(l *slog.Logger) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.log = l
	j.mu.Unlock()
}

// Append stamps e with the next sequence number, the journal's node name
// (unless the event carries its own) and the current time (unless
// already set), then stores it, evicting the oldest event when full.
func (j *Journal) Append(e Event) {
	if j == nil {
		return
	}
	j.mu.Lock()
	e.Seq = j.seq
	if e.Node == "" {
		e.Node = j.node
	}
	if e.At.IsZero() {
		e.At = time.Now()
	}
	j.buf[int(j.seq%uint64(len(j.buf)))] = e
	j.seq++
	if j.n < len(j.buf) {
		j.n++
	}
	log := j.log
	j.mu.Unlock()
	if log != nil && log.Enabled(context.Background(), slog.LevelDebug) {
		log.Debug("event", "kind", string(e.Kind), "seq", e.Seq,
			"query", e.Query, "peer", e.Peer, "reason", e.Reason, "count", e.Count)
	}
}

// Total returns how many events were ever appended. The next event gets
// sequence number Total().
func (j *Journal) Total() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Evicted returns how many events have been overwritten by ring wrap.
func (j *Journal) Evicted() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq - uint64(j.n)
}

// Since returns events with sequence ≥ cursor, at most max of them
// (max ≤ 0 means all retained). next is the cursor to resume from —
// pass it back to read only newer events. missed is how many events
// between cursor and the oldest retained one were evicted before this
// read: a non-zero missed means the reader fell behind the ring and the
// gap is accounted, not silently skipped.
func (j *Journal) Since(cursor uint64, max int) (events []Event, next uint64, missed uint64) {
	if j == nil {
		return nil, cursor, 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	oldest := j.seq - uint64(j.n)
	if cursor > j.seq {
		cursor = j.seq
	}
	if cursor < oldest {
		missed = oldest - cursor
		cursor = oldest
	}
	count := j.seq - cursor
	if max > 0 && count > uint64(max) {
		count = uint64(max)
	}
	events = make([]Event, 0, count)
	for s := cursor; s < cursor+count; s++ {
		events = append(events, j.buf[int(s%uint64(len(j.buf)))])
	}
	return events, cursor + count, missed
}

// EventsPage is the /events wire payload: one Since read plus the
// journal's lifetime accounting, shared between the admin endpoint and
// the observatory client so both ends agree on the schema.
type EventsPage struct {
	Node   string  `json:"node,omitempty"`
	Events []Event `json:"events"`
	// Next is the cursor for the following read (pass as ?since=).
	Next uint64 `json:"next"`
	// Missed is how many events between the request cursor and the
	// oldest retained event were evicted before this read.
	Missed uint64 `json:"missed"`
	// Total and Evicted are the journal's lifetime counters.
	Total   uint64 `json:"total"`
	Evicted uint64 `json:"evicted"`
}

// Page performs one Since read and wraps it in the wire payload.
func (j *Journal) Page(cursor uint64, max int) EventsPage {
	events, next, missed := j.Since(cursor, max)
	return EventsPage{
		Node:    j.Node(),
		Events:  events,
		Next:    next,
		Missed:  missed,
		Total:   j.Total(),
		Evicted: j.Evicted(),
	}
}
