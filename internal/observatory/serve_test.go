package observatory

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bestpeer/internal/agent"
	"bestpeer/internal/core"
	"bestpeer/internal/transport"
)

// get fetches a mux route and returns the status plus the raw body.
func get(t *testing.T, srv *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// getJSON fetches a route, requires the status, and decodes the body.
func getJSON(t *testing.T, srv *httptest.Server, path string, wantStatus int, v any) {
	t.Helper()
	status, body := get(t, srv, path)
	if status != wantStatus {
		t.Fatalf("GET %s = %d, want %d: %s", path, status, wantStatus, body)
	}
	if v != nil {
		if err := json.Unmarshal(body, v); err != nil {
			t.Fatalf("GET %s: %v\n%s", path, err, body)
		}
	}
}

func TestServeRoutes(t *testing.T) {
	nw := transport.NewInProc()
	nodes, admins := fleet(t, nw, 2, 0)
	nodes[0].SetPeers([]core.Peer{{Addr: nodes[1].Addr()}})
	nodes[1].SetPeers([]core.Peer{{Addr: nodes[0].Addr()}})
	res, err := nodes[0].Query(&agent.KeywordAgent{Query: "music"}, core.QueryOptions{
		Timeout: time.Second, WaitAnswers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(NewMux(NewCollector(admins...)))
	defer srv.Close()

	var snap FleetSnapshot
	getJSON(t, srv, "/fleet", http.StatusOK, &snap)
	if len(snap.Nodes) != 2 {
		t.Fatalf("/fleet nodes = %d", len(snap.Nodes))
	}
	var topo map[string][]string
	getJSON(t, srv, "/fleet/topology", http.StatusOK, &topo)
	if len(topo) != 2 {
		t.Fatalf("/fleet/topology = %v", topo)
	}
	var rounds []Round
	getJSON(t, srv, "/fleet/convergence", http.StatusOK, &rounds)
	if len(rounds) != 1 {
		t.Fatalf("/fleet/convergence = %+v", rounds)
	}

	// Known trace returns the assembly; unknown returns a 404 JSON
	// error; empty id is a 400.
	var ft FleetTrace
	getJSON(t, srv, "/fleet/trace/"+res.ID.String(), http.StatusOK, &ft)
	if ft.Base != nodes[0].Addr() || len(ft.Spans) == 0 {
		t.Fatalf("trace = %+v", ft)
	}
	var jerr map[string]string
	getJSON(t, srv, "/fleet/trace/deadbeef", http.StatusNotFound, &jerr)
	if !strings.Contains(jerr["error"], "deadbeef") {
		t.Fatalf("404 error = %v", jerr)
	}
	getJSON(t, srv, "/fleet/trace/", http.StatusBadRequest, &jerr)
	if jerr["error"] == "" {
		t.Fatalf("400 error = %v", jerr)
	}

	// The scrape above ingested signals, so the timeseries knows both
	// members (keyed by admin address).
	var series map[string]map[string][]TSPoint
	getJSON(t, srv, "/fleet/timeseries", http.StatusOK, &series)
	if len(series) != 2 {
		t.Fatalf("/fleet/timeseries members = %v", series)
	}
	if pts := series[admins[0]][SigUp]; len(pts) == 0 || pts[len(pts)-1].V != 1 {
		t.Fatalf("up series = %+v", pts)
	}
	// Filtered by member and series, with downsampling.
	series = nil
	getJSON(t, srv, "/fleet/timeseries?member="+admins[0]+"&series=up&points=4", http.StatusOK, &series)
	if len(series) != 1 || len(series[admins[0]]) != 1 {
		t.Fatalf("filtered timeseries = %v", series)
	}
	getJSON(t, srv, "/fleet/timeseries?member=nope", http.StatusNotFound, &jerr)
	getJSON(t, srv, "/fleet/timeseries?points=bogus", http.StatusBadRequest, &jerr)

	var hv HealthView
	getJSON(t, srv, "/fleet/health", http.StatusOK, &hv)
	if len(hv.Members) != 2 || len(hv.Rules) == 0 {
		t.Fatalf("/fleet/health = %+v", hv)
	}
	if hv.Members[admins[0]].Signals[SigUp] != 1 {
		t.Fatalf("member signals = %+v", hv.Members[admins[0]])
	}
	if len(hv.Active) != 0 {
		t.Fatalf("healthy fleet has active alerts: %+v", hv.Active)
	}

	var alerts AlertsPage
	getJSON(t, srv, "/fleet/alerts", http.StatusOK, &alerts)
	if len(alerts.Active) != 0 || alerts.Events.Total != 0 {
		t.Fatalf("/fleet/alerts = %+v", alerts)
	}
	getJSON(t, srv, "/fleet/alerts?since=bogus", http.StatusBadRequest, &jerr)
	getJSON(t, srv, "/fleet/alerts?max=bogus", http.StatusBadRequest, &jerr)

	status, body := get(t, srv, "/fleet/dashboard")
	if status != http.StatusOK {
		t.Fatalf("/fleet/dashboard = %d", status)
	}
	text := string(body)
	for _, want := range []string{"fleet health", admins[0], "up", "none firing", "rules", "member-down"} {
		if !strings.Contains(text, want) {
			t.Fatalf("dashboard missing %q:\n%s", want, text)
		}
	}
}

func TestServeClosedCollector(t *testing.T) {
	nw := transport.NewInProc()
	nodes, admins := fleet(t, nw, 1, 0)
	srv := httptest.NewServer(NewMux(NewCollector(admins...)))
	defer srv.Close()

	// One good scrape, then the member goes away entirely.
	var snap FleetSnapshot
	getJSON(t, srv, "/fleet", http.StatusOK, &snap)
	if snap.Nodes[0].Err != "" {
		t.Fatalf("live member errored: %+v", snap.Nodes[0])
	}
	nodes[0].Close()

	// Every endpoint still answers 200: the last good view survives
	// with the scrape error surfaced, and health reports the member
	// down with the member-down alert firing.
	getJSON(t, srv, "/fleet", http.StatusOK, &snap)
	if snap.Nodes[0].Err == "" {
		t.Fatalf("dead member has no error: %+v", snap.Nodes[0])
	}
	if len(snap.Nodes[0].Peers) == 0 && snap.Nodes[0].Node == "" {
		t.Fatalf("last good view lost: %+v", snap.Nodes[0])
	}
	var hv HealthView
	getJSON(t, srv, "/fleet/health", http.StatusOK, &hv)
	if hv.Members[admins[0]].Signals[SigUp] != 0 {
		t.Fatalf("dead member up signal = %+v", hv.Members[admins[0]])
	}
	var alerts AlertsPage
	getJSON(t, srv, "/fleet/alerts", http.StatusOK, &alerts)
	if len(alerts.Active) != 1 || alerts.Active[0].Rule != "member-down" {
		t.Fatalf("alerts = %+v", alerts.Active)
	}
	status, body := get(t, srv, "/fleet/dashboard")
	if status != http.StatusOK || !strings.Contains(string(body), "member-down") {
		t.Fatalf("dashboard = %d:\n%s", status, body)
	}
}
