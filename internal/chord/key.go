// Package chord implements a Chord-style distributed hash table (Stoica
// et al., SIGCOMM 2001) over the BestPeer wire protocol: SHA-1
// consistent hashing, finger tables, successor lists, and the
// stabilize/notify/fix-fingers/check-predecessor maintenance loops.
//
// The package is split in two layers. Table is the pure routing state —
// predecessor, successor list, fingers, and the next-hop decision — with
// no locks or I/O, so the simulator can drive thousands of tables
// directly. Node wraps a Table with the live protocol: dial-per-call
// RPCs over a transport.Network, periodic maintenance, and journal
// events. A Node does not own a listener; its host (the ring-mode LIGLO
// server, or a test harness) accepts connections and hands chord-kind
// envelopes to HandleEnvelope.
package chord

import (
	"crypto/sha1"
	"encoding/binary"
)

// Bits is the width of the identifier circle: keys are the first 64 bits
// of a SHA-1 digest, so the ring has 2^64 positions and a finger table
// has at most 64 entries.
const Bits = 64

// Key is a position on the identifier circle. Arithmetic wraps modulo
// 2^64, which is exactly uint64 overflow.
type Key uint64

// HashBytes maps arbitrary bytes onto the identifier circle.
func HashBytes(b []byte) Key {
	sum := sha1.Sum(b)
	return Key(binary.BigEndian.Uint64(sum[:8]))
}

// HashString maps a string (a transport address, a keyword, a BPID's
// string form) onto the identifier circle.
func HashString(s string) Key { return HashBytes([]byte(s)) }

// between reports whether x lies strictly inside the clockwise interval
// (a, b) on the circle. When a == b the interval is the whole circle
// minus a itself.
func between(a, x, b Key) bool {
	if a < b {
		return a < x && x < b
	}
	return x > a || x < b
}

// betweenRightIncl reports whether x lies in the clockwise interval
// (a, b] — the ownership rule: node b owns every key in (pred, b].
func betweenRightIncl(a, x, b Key) bool {
	return x == b || between(a, x, b)
}

// fingerStart returns the start of finger interval i for a node at k:
// k + 2^i, wrapping around the circle.
func fingerStart(k Key, i int) Key {
	return k + Key(1)<<uint(i)
}

// NodeRef names one ring participant: its key and the transport address
// RPCs reach it at. The zero value means "unset".
type NodeRef struct {
	Key  Key
	Addr string
}

// IsZero reports whether the reference is unset.
func (r NodeRef) IsZero() bool { return r.Addr == "" }

// RefFor builds the canonical reference for a node address: its ring key
// is the hash of the address itself, so every participant derives the
// same placement without coordination.
func RefFor(addr string) NodeRef {
	return NodeRef{Key: HashString(addr), Addr: addr}
}
