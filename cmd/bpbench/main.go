// Command bpbench regenerates every table and figure of the paper's
// evaluation (§4) on the deterministic simulator, printing one aligned
// text table per figure.
//
// Usage:
//
//	bpbench [-fig all|5a|5b|5c|6|7|8a|8b|ablations|convergence|traffic] [-seed N] [-live] [-json FILE]
//
// With -json the same data is also written as a machine-readable report;
// live runs include a metrics section snapshotted from the node
// registries (messages sent/dropped, answer-hop histogram).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"bestpeer/internal/bench"
	"bestpeer/internal/reconfig"
	"bestpeer/internal/topology"
	"bestpeer/internal/workload"
)

// runLive executes a miniature version of the line experiment on the
// real stack (in-process transport, real storage engine, real agents)
// instead of the simulator, printing per-round wall-clock completions
// for the static and reconfigurable nodes.
func runLive(seed int64, report *bench.Report) {
	spec := &workload.Spec{ObjectsPerNode: 100, ObjectSize: 512, Vocabulary: 10, Seed: seed}
	query := spec.Keyword(3)
	const n, rounds = 8, 3
	fmt.Printf("Live run — %d-node line over in-process transport, query %q\n", n, query)
	fmt.Printf("  %-10s", "strategy")
	for r := 1; r <= rounds; r++ {
		fmt.Printf("  round%d(ms)", r)
	}
	fmt.Println("  answers  maxhops(last)")
	for _, strat := range []reconfig.Strategy{reconfig.Static{}, reconfig.MaxCount{}} {
		lc, err := bench.NewLiveCluster(topology.Line(n), spec, query, strat, 6)
		if err != nil {
			log.Fatalf("bpbench: live cluster: %v", err)
		}
		fmt.Printf("  %-10s", strat.Name())
		run := &bench.SchemeRun{Scheme: strat.Name()}
		var last bench.LiveResult
		for r := 0; r < rounds; r++ {
			res, err := lc.RunRound(10 * time.Second)
			if err != nil {
				log.Fatalf("bpbench: live round: %v", err)
			}
			fmt.Printf("  %10.2f", float64(res.Completion)/float64(time.Millisecond))
			run.AddRound(res)
			last = res
		}
		fmt.Printf("  %7d  %13d\n", last.TotalAnswers, last.MaxHops)
		run.Metrics = lc.Metrics()
		report.Live = append(report.Live, run)
		lc.Close()
	}
}

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: all, 5a, 5b, 5c, 6, 7, 8a, 8b, ablations, convergence, traffic, churn, dht")
	seed := flag.Int64("seed", 1, "workload seed")
	live := flag.Bool("live", false, "also run a miniature live-stack comparison")
	jsonPath := flag.String("json", "", "also write a machine-readable report (e.g. BENCH_1.json)")
	flag.Parse()

	cost := bench.DefaultCost()
	report := &bench.Report{Seed: *seed}
	run := func(f *bench.Figure) {
		f.Render(os.Stdout)
		report.Figures = append(report.Figures, f)
	}

	// runConvergence renders the convergence figure and records the full
	// per-strategy event timelines (scores, overlay edits) in the report.
	runConvergence := func() {
		run(bench.FigConvergence(cost, *seed))
		report.Convergence = bench.Convergence(cost, *seed)
	}

	// runChurn renders the churn-at-scale recall timeline and records the
	// full per-scheme breakdown in the report.
	runChurn := func() {
		f, res := bench.FigChurn(bench.DefaultChurnParams(), *seed)
		run(f)
		report.Churn = res
		for _, sr := range res.Schemes {
			fmt.Printf("churn %-6s mean recall %.3f, post-burst min %.3f, reconverged in %d rounds, %d msgs, %d repairs, cache %d/%d\n",
				sr.Scheme, sr.MeanRecall, sr.PostBurstMinRecall,
				sr.RepairConvergenceRounds, sr.Msgs, sr.Repairs, sr.CacheHits, sr.CacheLookups)
		}
		fmt.Println()
	}

	// runDHT renders the chord-vs-flood-vs-BPR comparison (T4) and
	// records the full static and churn breakdown in the report.
	runDHT := func() {
		figs, res := bench.FigDHT(bench.DefaultDHTParams(), *seed)
		for _, f := range figs {
			run(f)
		}
		report.DHT = res
		for _, sr := range res.Static {
			fmt.Printf("dht %-6s %-8s recall %.3f, mean hops %.2f, %d msgs, %d bytes (%d lookups)\n",
				sr.Scheme, sr.Workload, sr.Recall, sr.MeanHops, sr.Msgs, sr.Bytes, sr.Lookups)
		}
		fmt.Printf("dht hop bound: ceil(log2 %d)+1 = %d\n", res.Nodes, res.HopBound)
		for _, sr := range res.Churn {
			fmt.Printf("dht churn %-6s mean recall %.3f, post-burst min %.3f, reconverged in %d rounds, %d msgs\n",
				sr.Scheme, sr.MeanRecall, sr.PostBurstMinRecall, sr.RepairConvergenceRounds, sr.Msgs)
		}
		fmt.Println()
	}

	// runTraffic renders the flood-vs-qroute message comparison and
	// records the per-round breakdown in the report.
	runTraffic := func() {
		run(bench.FigTraffic(cost, *seed))
		tr := bench.Traffic(cost, *seed)
		report.Traffic = tr
		fmt.Printf("traffic totals: flood %d msgs, qroute %d msgs (expected answers %d)\n\n",
			tr.FloodMsgs, tr.QRouteMsgs, tr.Expected)
	}

	switch *fig {
	case "all":
		for _, f := range bench.AllFigures(cost, *seed) {
			run(f)
		}
		runConvergence()
		report.Traffic = bench.Traffic(cost, *seed)
		runChurn()
	case "5a":
		run(bench.Fig5a(cost, *seed))
	case "5b":
		run(bench.Fig5b(cost, *seed))
	case "5c":
		run(bench.Fig5c(cost, *seed))
	case "6":
		run(bench.Fig6(cost, *seed))
	case "7":
		run(bench.Fig7(cost, *seed))
	case "8a":
		run(bench.Fig8a(cost, *seed))
	case "8b":
		run(bench.Fig8b(cost, *seed))
	case "ablations":
		run(bench.AblationStrategies(cost, *seed))
		run(bench.AblationCompression(cost, *seed))
		run(bench.AblationColdClass(cost, *seed))
		run(bench.AblationResultMode(cost, *seed))
		run(bench.AblationShipping(cost, *seed))
	case "convergence":
		runConvergence()
	case "traffic":
		run(bench.TrafficTable(cost, *seed))
		runTraffic()
	case "churn":
		runChurn()
	case "dht":
		runDHT()
	default:
		fmt.Fprintf(os.Stderr, "bpbench: unknown figure %q\n", *fig)
		flag.Usage()
		os.Exit(2)
	}

	if *live {
		runLive(*seed, report)
	}
	if *jsonPath != "" {
		if err := report.WriteFile(*jsonPath); err != nil {
			log.Fatalf("bpbench: %v", err)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}
