package storm

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
)

// TestWALCrashRegressionDuplicateRecords pins the seed that exposed the
// duplicate-record resurrection bug: a replaced object whose new record
// reached disk while the old record's tombstone did not would come back
// to life two crashes later, because recovery only deleted the copy the
// catalog scan happened to index. The rebuild scan now tombstones
// duplicates on sight.
func TestWALCrashRegressionDuplicateRecords(t *testing.T) {
	seed := int64(-3127610734926530244)
	dir := t.TempDir()
	openStore := func() *Store {
		s, err := Open(filepath.Join(dir, "c.storm"), Options{
			BufferFrames: 4,
			WALPath:      filepath.Join(dir, "c.wal"),
			WALSync:      true,
		})
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		return s
	}
	s := openStore()
	rng := rand.New(rand.NewSource(seed))
	shadow := make(map[string]int)
	var history []string
	for step := 0; step < 160; step++ {
		switch rng.Intn(10) {
		case 0:
			history = append(history, fmt.Sprintf("%d:CRASH", step))
			s.Abandon()
			s = openStore()
			if s.Len() != len(shadow) {
				var names, want []string
				for _, n := range s.Names() {
					names = append(names, n)
				}
				for n := range shadow {
					want = append(want, n)
				}
				sort.Strings(want)
				t.Fatalf("step %d: recovered %v\nwant %v\nhistory %v", step, names, want, history)
			}
		case 1, 2:
			name := fmt.Sprintf("o%02d", rng.Intn(30))
			err := s.Delete(name)
			if name == "o15" {
				history = append(history, fmt.Sprintf("%d:del(%v)", step, err == nil))
			}
			_, existed := shadow[name]
			if existed != (err == nil) {
				t.Fatalf("step %d: delete %s existed=%v err=%v", step, name, existed, err)
			}
			delete(shadow, name)
		default:
			name := fmt.Sprintf("o%02d", rng.Intn(30))
			size := 50 + rng.Intn(1500)
			if _, err := s.Put(obj(name, []string{"k"}, size)); err != nil {
				t.Fatalf("put: %v", err)
			}
			if name == "o15" {
				history = append(history, fmt.Sprintf("%d:put(%d)", step, size))
			}
			shadow[name] = size
		}
	}
	s.Close()
}
