package cs

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"bestpeer/internal/storm"
	"bestpeer/internal/topology"
	"bestpeer/internal/transport"
)

type cluster struct {
	nw    *transport.InProc
	nodes []*Node
}

func newCluster(t *testing.T, n int, singleThread bool, seed func(i int, s *storm.Store)) *cluster {
	t.Helper()
	c := &cluster{nw: transport.NewInProc()}
	for i := 0; i < n; i++ {
		st, err := storm.Open(filepath.Join(t.TempDir(), fmt.Sprintf("cs%d.storm", i)), storm.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if seed != nil {
			seed(i, st)
		} else {
			st.Put(&storm.Object{Name: fmt.Sprintf("f-%d", i), Keywords: []string{"f"},
				Data: []byte{byte(i)}})
		}
		node, err := NewNode(Config{
			Network: c.nw, ListenAddr: fmt.Sprintf("cs-%d", i),
			Store: st, SingleThread: singleThread,
		})
		if err != nil {
			t.Fatal(err)
		}
		c.nodes = append(c.nodes, node)
		store := st
		t.Cleanup(func() { node.Close(); store.Close() })
	}
	return c
}

func (c *cluster) wire(tp *topology.Topology) {
	for i, node := range c.nodes {
		var addrs []string
		for _, j := range tp.Peers(i) {
			addrs = append(addrs, c.nodes[j].Addr())
		}
		node.SetPeers(addrs)
	}
}

func names(answers []Answer) map[string]bool {
	out := make(map[string]bool)
	for _, a := range answers {
		out[a.Name] = true
	}
	return out
}

func TestStarAllAnswer(t *testing.T) {
	c := newCluster(t, 5, false, nil)
	c.wire(topology.Star(5))
	got, err := c.nodes[0].Query("f", QueryOptions{Timeout: 2 * time.Second, WaitAnswers: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("answers = %d, want 5", len(got))
	}
	seen := names(got)
	for i := 0; i < 5; i++ {
		if !seen[fmt.Sprintf("f-%d", i)] {
			t.Fatalf("missing f-%d: %v", i, seen)
		}
	}
}

func TestAnswersRelayAlongPath(t *testing.T) {
	// Line 0-1-2-3: node 3's answer must be relayed by 2 and 1.
	c := newCluster(t, 4, false, func(i int, s *storm.Store) {
		if i == 3 {
			s.Put(&storm.Object{Name: "far", Keywords: []string{"deep"}})
		}
	})
	c.wire(topology.Line(4))
	got, err := c.nodes[0].Query("deep", QueryOptions{Timeout: 2 * time.Second, WaitAnswers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != "far" || got[0].Origin != c.nodes[3].Addr() {
		t.Fatalf("answers = %+v", got)
	}
	// The relay property: intermediate nodes forwarded the answer.
	n1, n2 := c.nodes[1], c.nodes[2]
	n1.mu.Lock()
	r1 := n1.Relayed
	n1.mu.Unlock()
	n2.mu.Lock()
	r2 := n2.Relayed
	n2.mu.Unlock()
	if r1 != 1 || r2 != 1 {
		t.Fatalf("relays = %d, %d; want 1, 1", r1, r2)
	}
}

func TestTreeDeliversAll(t *testing.T) {
	const n = 7
	c := newCluster(t, n, false, nil)
	c.wire(topology.Tree(n, 2))
	got, err := c.nodes[0].Query("f", QueryOptions{Timeout: 3 * time.Second, WaitAnswers: n})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("answers = %d, want %d", len(got), n)
	}
}

func TestSequentialClientStillCollectsAll(t *testing.T) {
	c := newCluster(t, 4, true, nil)
	c.wire(topology.Star(4))
	got, err := c.nodes[0].Query("f", QueryOptions{
		Timeout: 2 * time.Second, Sequential: true, PerPeerWait: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("answers = %d, want 4", len(got))
	}
}

func TestTTLBoundsDepth(t *testing.T) {
	c := newCluster(t, 5, false, nil)
	c.wire(topology.Line(5))
	got, err := c.nodes[0].Query("f", QueryOptions{TTL: 2, Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	seen := names(got)
	if !seen["f-0"] || !seen["f-1"] || !seen["f-2"] {
		t.Fatalf("near answers missing: %v", seen)
	}
	if seen["f-3"] || seen["f-4"] {
		t.Fatalf("TTL leak: %v", seen)
	}
}

func TestClosedNodeRejectsQuery(t *testing.T) {
	c := newCluster(t, 1, false, nil)
	c.nodes[0].Close()
	if _, err := c.nodes[0].Query("f", QueryOptions{}); err != ErrClosed {
		t.Fatalf("query after close: %v", err)
	}
	if err := c.nodes[0].Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewNode(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestSingleThreadServerSerializesWork(t *testing.T) {
	// A single-thread hub between two queriers: all handling goes
	// through one worker, but answers must still be correct.
	c := newCluster(t, 3, true, func(i int, s *storm.Store) {
		for j := 0; j < 20; j++ {
			s.Put(&storm.Object{Name: fmt.Sprintf("n%d-o%d", i, j), Keywords: []string{"bulk"}})
		}
	})
	c.wire(topology.Line(3))
	got, err := c.nodes[0].Query("bulk", QueryOptions{Timeout: 3 * time.Second, WaitAnswers: 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 60 {
		t.Fatalf("answers = %d, want 60", len(got))
	}
}

func TestStringer(t *testing.T) {
	c := newCluster(t, 1, true, nil)
	if s := c.nodes[0].String(); s == "" {
		t.Fatal("empty String()")
	}
}
