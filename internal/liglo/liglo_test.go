package liglo

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"bestpeer/internal/transport"
	"bestpeer/internal/wire"
)

func newPair(t *testing.T, cfg ServerConfig) (*transport.InProc, *Server, *Client) {
	t.Helper()
	nw := transport.NewInProc()
	srv, err := NewServer(nw, "liglo-1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return nw, srv, NewClient(nw)
}

func TestRegisterIssuesSequentialBPIDs(t *testing.T) {
	_, srv, cli := newPair(t, ServerConfig{})
	id1, peers1, err := cli.Register(srv.Addr(), "node-1")
	if err != nil {
		t.Fatal(err)
	}
	if id1.LIGLO != srv.Addr() || id1.Node != 1 {
		t.Fatalf("first BPID = %v", id1)
	}
	if len(peers1) != 0 {
		t.Fatalf("first registrant got peers: %v", peers1)
	}
	id2, peers2, err := cli.Register(srv.Addr(), "node-2")
	if err != nil {
		t.Fatal(err)
	}
	if id2.Node != 2 {
		t.Fatalf("second BPID = %v", id2)
	}
	if len(peers2) != 1 || peers2[0].ID != id1 || peers2[0].Addr != "node-1" {
		t.Fatalf("second registrant peers = %v", peers2)
	}
	if srv.Members() != 2 || srv.Stats().Registers != 2 {
		t.Fatalf("members=%d registers=%d", srv.Members(), srv.Stats().Registers)
	}
}

func TestRegisterPeerListCapped(t *testing.T) {
	_, srv, cli := newPair(t, ServerConfig{InitialPeers: 3})
	for i := 0; i < 10; i++ {
		if _, _, err := cli.Register(srv.Addr(), fmt.Sprintf("n%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	_, peers, err := cli.Register(srv.Addr(), "last")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 3 {
		t.Fatalf("peer list = %d entries, want 3", len(peers))
	}
}

func TestCapacityRejection(t *testing.T) {
	_, srv, cli := newPair(t, ServerConfig{Capacity: 2})
	cli.Register(srv.Addr(), "a")
	cli.Register(srv.Addr(), "b")
	if _, _, err := cli.Register(srv.Addr(), "c"); !errors.Is(err, ErrFull) {
		t.Fatalf("over-capacity register: %v", err)
	}
	if srv.Stats().Rejected != 1 {
		t.Fatalf("Rejected = %d", srv.Stats().Rejected)
	}
}

func TestRegisterAnyFallsThrough(t *testing.T) {
	nw := transport.NewInProc()
	full, err := NewServer(nw, "liglo-full", ServerConfig{Capacity: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	// Saturate with capacity 1.
	full.cfg.Capacity = 1
	cli := NewClient(nw)
	cli.Register(full.Addr(), "x")

	open, err := NewServer(nw, "liglo-open", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer open.Close()

	id, _, err := cli.RegisterAny([]string{"liglo-down", full.Addr(), open.Addr()}, "me")
	if err != nil {
		t.Fatal(err)
	}
	if id.LIGLO != open.Addr() {
		t.Fatalf("registered at %v", id)
	}

	if _, _, err := cli.RegisterAny(nil, "me"); err == nil {
		t.Fatal("empty server list succeeded")
	}
	if _, _, err := cli.RegisterAny([]string{"liglo-down"}, "me"); err == nil {
		t.Fatal("all-down server list succeeded")
	}
}

func TestRejoinUpdatesAddress(t *testing.T) {
	_, srv, cli := newPair(t, ServerConfig{})
	id, _, _ := cli.Register(srv.Addr(), "old-addr")

	if err := cli.Rejoin(id, "new-addr"); err != nil {
		t.Fatal(err)
	}
	addr, online, err := cli.Lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	if addr != "new-addr" || !online {
		t.Fatalf("lookup after rejoin = %q online=%v", addr, online)
	}
	if srv.Stats().Rejoins != 1 {
		t.Fatalf("Rejoins = %d", srv.Stats().Rejoins)
	}
}

func TestRejoinUnknownMember(t *testing.T) {
	_, srv, cli := newPair(t, ServerConfig{})
	bad := wire.BPID{LIGLO: srv.Addr(), Node: 999}
	if err := cli.Rejoin(bad, "x"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("rejoin unknown: %v", err)
	}
}

func TestWrongHomeRejected(t *testing.T) {
	nw := transport.NewInProc()
	s1, _ := NewServer(nw, "liglo-a", ServerConfig{})
	defer s1.Close()
	s2, _ := NewServer(nw, "liglo-b", ServerConfig{})
	defer s2.Close()
	cli := NewClient(nw)
	id, _, _ := cli.Register(s1.Addr(), "n")

	// A BPID issued by s1 presented to s2 (forced by rewriting LIGLO).
	foreign := wire.BPID{LIGLO: s2.Addr(), Node: id.Node}
	// s2 never issued node id; but LIGLO matches, so it is "unknown".
	if _, _, err := cli.Lookup(foreign); !errors.Is(err, ErrUnknown) {
		t.Fatalf("lookup foreign: %v", err)
	}
	// Present s1's BPID but dial s2 via a doctored identity: the
	// LIGLOID inside the request will not match s2's address.
	doctored := wire.BPID{LIGLO: id.LIGLO, Node: id.Node}
	// Simulate asking the wrong server directly.
	req := &wire.Envelope{
		Kind: wire.KindLigloLookup, ID: wire.NewMsgID(), TTL: 1,
		Body: encodeLookupReq(&lookupReq{ID: doctored}),
	}
	resp, err := cli.call("lookup", s2.Addr(), req)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := decodeLookupResp(resp.Body)
	if r.Err != ErrWrongHome.Error() {
		t.Fatalf("wrong-home lookup err = %q", r.Err)
	}
}

func TestTwoServersIndependentNamespaces(t *testing.T) {
	// "Unlimited name resources": both servers may issue Node 1.
	nw := transport.NewInProc()
	s1, _ := NewServer(nw, "liglo-a", ServerConfig{})
	defer s1.Close()
	s2, _ := NewServer(nw, "liglo-b", ServerConfig{})
	defer s2.Close()
	cli := NewClient(nw)
	id1, _, _ := cli.Register(s1.Addr(), "n1")
	id2, _, _ := cli.Register(s2.Addr(), "n2")
	if id1.Node != 1 || id2.Node != 1 {
		t.Fatalf("ids = %v, %v", id1, id2)
	}
	if id1 == id2 {
		t.Fatal("BPIDs from different servers must differ")
	}
	// Failure of one server leaves the other operational.
	s1.Close()
	if _, _, err := cli.Lookup(id2); err != nil {
		t.Fatalf("s2 affected by s1 failure: %v", err)
	}
	if _, _, err := cli.Lookup(id1); err == nil {
		t.Fatal("lookup against closed server succeeded")
	}
}

func TestLookupUnknownNode(t *testing.T) {
	_, srv, cli := newPair(t, ServerConfig{})
	if _, _, err := cli.Lookup(wire.BPID{LIGLO: srv.Addr(), Node: 42}); !errors.Is(err, ErrUnknown) {
		t.Fatalf("lookup unknown: %v", err)
	}
}

func TestValidatorMarksDeadMembersOffline(t *testing.T) {
	nw, srv, cli := newPair(t, ServerConfig{})

	// A live member: leave a listener on its address.
	aliveL, err := nw.Listen("alive-node")
	if err != nil {
		t.Fatal(err)
	}
	defer aliveL.Close()
	go func() { // accept and close probe connections
		for {
			c, err := aliveL.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	aliveID, _, _ := cli.Register(srv.Addr(), "alive-node")
	deadID, _, _ := cli.Register(srv.Addr(), "dead-node") // nothing listens

	online := srv.CheckNow()
	if online != 1 {
		t.Fatalf("online after sweep = %d", online)
	}
	if on, _ := srv.Online(aliveID); !on {
		t.Fatal("live member marked offline")
	}
	if on, _ := srv.Online(deadID); on {
		t.Fatal("dead member marked online")
	}
	if _, online, _ := cli.Lookup(deadID); online {
		t.Fatal("lookup reports dead member online")
	}
	// Rejoin flips it back.
	if err := cli.Rejoin(deadID, "dead-node"); err != nil {
		t.Fatal(err)
	}
	if _, online, _ := cli.Lookup(deadID); !online {
		t.Fatal("rejoin did not mark member online")
	}
}

func TestOnlineErrors(t *testing.T) {
	_, srv, _ := newPair(t, ServerConfig{})
	if _, err := srv.Online(wire.BPID{LIGLO: "elsewhere", Node: 1}); !errors.Is(err, ErrWrongHome) {
		t.Fatalf("Online wrong home: %v", err)
	}
	if _, err := srv.Online(wire.BPID{LIGLO: srv.Addr(), Node: 5}); !errors.Is(err, ErrUnknown) {
		t.Fatalf("Online unknown: %v", err)
	}
}

func TestOfflineMembersExcludedFromPeerList(t *testing.T) {
	_, srv, cli := newPair(t, ServerConfig{InitialPeers: 10})
	cli.Register(srv.Addr(), "ghost-1")
	cli.Register(srv.Addr(), "ghost-2")
	srv.CheckNow() // nothing listens: both go offline
	_, peers, err := cli.Register(srv.Addr(), "fresh")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 0 {
		t.Fatalf("offline members leaked into peer list: %v", peers)
	}
}

func TestConcurrentRegistrations(t *testing.T) {
	_, srv, cli := newPair(t, ServerConfig{})
	const n = 32
	ids := make([]wire.BPID, n)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id, _, err := cli.Register(srv.Addr(), fmt.Sprintf("n%d", i))
			if err != nil {
				errs <- err
				return
			}
			ids[i] = id
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool)
	for _, id := range ids {
		if seen[id.Node] {
			t.Fatalf("duplicate NodeID %d issued", id.Node)
		}
		seen[id.Node] = true
	}
	if srv.Members() != n {
		t.Fatalf("members = %d", srv.Members())
	}
}

func TestServerIgnoresGarbageRequests(t *testing.T) {
	nw, srv, cli := newPair(t, ServerConfig{})
	// Garbage body on a valid kind: server drops the connection.
	req := &wire.Envelope{Kind: wire.KindLigloRegister, ID: wire.NewMsgID(), TTL: 1,
		Body: []byte{0xFF, 0xFF, 0xFF}}
	if _, err := cli.call("register", srv.Addr(), req); err == nil {
		t.Fatal("garbage register got a reply")
	}
	// Wrong kind entirely.
	req2 := &wire.Envelope{Kind: wire.KindAgent, ID: wire.NewMsgID(), TTL: 1}
	if _, err := cli.call("register", srv.Addr(), req2); err == nil {
		t.Fatal("non-liglo kind got a reply")
	}
	// Server still alive afterwards.
	if _, _, err := cli.Register(srv.Addr(), "ok"); err != nil {
		t.Fatalf("server died after garbage: %v", err)
	}
	_ = nw
}

func TestClientAgainstClosedServer(t *testing.T) {
	nw := transport.NewInProc()
	srv, _ := NewServer(nw, "liglo-x", ServerConfig{})
	cli := NewClient(nw)
	srv.Close()
	if _, _, err := cli.Register("liglo-x", "n"); err == nil {
		t.Fatal("register against closed server succeeded")
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestProtoRoundTrips(t *testing.T) {
	rr, err := decodeRegisterReq(encodeRegisterReq(&registerReq{Addr: "a:1"}))
	if err != nil || rr.Addr != "a:1" {
		t.Fatalf("registerReq: %+v %v", rr, err)
	}
	resp := &registerResp{
		ID:    wire.BPID{LIGLO: "l", Node: 9},
		Peers: []PeerInfo{{ID: wire.BPID{LIGLO: "l", Node: 1}, Addr: "p:1"}},
	}
	gr, err := decodeRegisterResp(encodeRegisterResp(resp))
	if err != nil || gr.ID != resp.ID || len(gr.Peers) != 1 || gr.Peers[0].Addr != "p:1" {
		t.Fatalf("registerResp: %+v %v", gr, err)
	}
	jr, err := decodeRejoinReq(encodeRejoinReq(&rejoinReq{ID: resp.ID, Addr: "n"}))
	if err != nil || jr.Addr != "n" || jr.ID != resp.ID {
		t.Fatalf("rejoinReq: %+v %v", jr, err)
	}
	lr, err := decodeLookupResp(encodeLookupResp(&lookupResp{Found: true, Addr: "z", Online: true}))
	if err != nil || !lr.Found || lr.Addr != "z" || !lr.Online {
		t.Fatalf("lookupResp: %+v %v", lr, err)
	}
	for _, fn := range []func([]byte) error{
		func(b []byte) error { _, err := decodeRegisterReq(b); return err },
		func(b []byte) error { _, err := decodeRejoinReq(b); return err },
		func(b []byte) error { _, err := decodeLookupReq(b); return err },
		func(b []byte) error { _, err := decodeLookupResp(b); return err },
	} {
		if err := fn([]byte{0x81}); err == nil {
			t.Fatal("garbage decoded")
		}
	}
}

func TestExpireAfterDropsLongOfflineMembers(t *testing.T) {
	nw := transport.NewInProc()
	srv, err := NewServer(nw, "liglo-exp", ServerConfig{ExpireAfter: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli := NewClient(nw)
	id, _, err := cli.Register(srv.Addr(), "vanishing-node")
	if err != nil {
		t.Fatal(err)
	}

	// First sweep: offline but not yet expired.
	srv.CheckNow()
	if srv.Members() != 1 {
		t.Fatalf("member expired too early: %d", srv.Members())
	}
	time.Sleep(50 * time.Millisecond)
	srv.CheckNow()
	if srv.Members() != 0 || srv.Stats().Expired != 1 {
		t.Fatalf("member not expired: members=%d expired=%d", srv.Members(), srv.Stats().Expired)
	}
	if _, _, err := cli.Lookup(id); !errors.Is(err, ErrUnknown) {
		t.Fatalf("expired member still resolvable: %v", err)
	}
}

func TestNoExpiryByDefault(t *testing.T) {
	nw := transport.NewInProc()
	srv, err := NewServer(nw, "liglo-noexp", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli := NewClient(nw)
	cli.Register(srv.Addr(), "sleepy-node")
	srv.CheckNow()
	time.Sleep(20 * time.Millisecond)
	srv.CheckNow()
	if srv.Members() != 1 {
		t.Fatalf("member expired without policy: %d", srv.Members())
	}
}
