package core

import (
	"fmt"
	"sync"
	"time"

	"bestpeer/internal/agent"
	"bestpeer/internal/obs"
	"bestpeer/internal/qroute"
	"bestpeer/internal/reconfig"
	"bestpeer/internal/wire"
)

// QueryOptions tunes one query broadcast.
type QueryOptions struct {
	// TTL overrides the node's default agent lifetime.
	TTL uint8
	// Mode selects answer handling: 1 (default) peers return data
	// directly; 2 peers return hints and the base fetches on demand.
	Mode uint8
	// Timeout is the collection window. Zero defaults to one second.
	Timeout time.Duration
	// WaitAnswers stops collection early once this many answers have
	// arrived. Zero waits out the full timeout.
	WaitAnswers int
	// NoReconfigure suppresses the post-query peer-set update.
	NoReconfigure bool
	// SkipLocal leaves the node's own store out of the result set.
	SkipLocal bool
}

// Answer is one result attributed to the peer that produced it.
type Answer struct {
	// PeerAddr is the answering peer's address.
	PeerAddr string
	// PeerID is its BestPeer identity (zero if it has none).
	PeerID wire.BPID
	// Hops is how far the agent had travelled when it matched.
	Hops int
	// Result is the matched object (Data empty for hints).
	Result agent.Result
	// At is when the answer arrived, measured from query start.
	At time.Duration
	// Cached reports that this answer was served from a qroute answer
	// cache — the base's own (a whole-query hit) or a remote peer's
	// serve-site cache — rather than a fresh store scan.
	Cached bool
}

// QueryResult is everything a query produced.
type QueryResult struct {
	// ID is the query identifier.
	ID wire.MsgID
	// Answers holds full results (mode 1, plus local matches).
	Answers []Answer
	// Hints holds name-only results (mode 2).
	Hints []Answer
	// Elapsed is the total collection time.
	Elapsed time.Duration
	// Reconfigured reports whether the peer set changed afterwards.
	Reconfigured bool
	// Cached reports that the whole query was answered from the base's
	// answer cache: no agents were spawned or forwarded.
	Cached bool
}

// queryState accumulates answers for an outstanding query.
type queryState struct {
	mu      sync.Mutex
	start   time.Time
	answers []Answer
	hints   []Answer
	target  int
	done    chan struct{}
	first   chan struct{} // closed when the first reply batch arrives
	closed  bool
	replied bool

	// terms are the query's routing-fingerprint terms, set once before
	// the state is published and read by handleResult to credit the
	// neighbor each answer batch arrived via. Empty when the agent has no
	// fingerprint or qroute is disabled.
	terms []string
}

func newQueryState(target int) *queryState {
	return &queryState{
		start:  time.Now(),
		target: target,
		done:   make(chan struct{}),
		first:  make(chan struct{}),
	}
}

func (q *queryState) deliver(batch *agent.ResultBatch, hint, cached bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	if !q.replied {
		q.replied = true
		close(q.first)
	}
	at := time.Since(q.start)
	for _, r := range batch.Results {
		a := Answer{
			PeerAddr: batch.FromAddr,
			PeerID:   batch.From,
			Hops:     batch.Hops,
			Result:   r,
			At:       at,
			Cached:   cached,
		}
		if hint {
			q.hints = append(q.hints, a)
		} else {
			q.answers = append(q.answers, a)
		}
	}
	if q.target > 0 && len(q.answers)+len(q.hints) >= q.target {
		q.closed = true
		close(q.done)
	}
}

func (q *queryState) snapshot() ([]Answer, []Answer) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return append([]Answer(nil), q.answers...), append([]Answer(nil), q.hints...)
}

// Query broadcasts ag to the network and collects answers. After
// collection the node reconfigures its direct-peer set with its strategy
// (unless disabled). Query is safe to call from multiple goroutines.
func (n *Node) Query(ag agent.Agent, opts QueryOptions) (*QueryResult, error) {
	if n.isClosed() {
		return nil, ErrNodeClosed
	}
	state, err := ag.State()
	if err != nil {
		return nil, fmt.Errorf("core: serializing agent: %w", err)
	}
	ttl := opts.TTL
	if ttl == 0 {
		ttl = n.cfg.DefaultTTL
	}
	mode := opts.Mode
	if mode == 0 {
		mode = 1
	}
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = time.Second
	}
	qid := wire.NewMsgID()

	// qroute: a fingerprintable query can be answered from the base's
	// answer cache and fanned out selectively. SkipLocal queries are not
	// cacheable — a cached answer set includes the base's own matches.
	var (
		qKey   string
		qTerms []string
	)
	if n.qr != nil {
		if fp, ok := ag.(agent.Fingerprinter); ok {
			if k := fp.QueryKey(); k != "" {
				qKey = qroute.Key(ag.Class(), mode, n.cfg.AccessLevel, k)
				qTerms = fp.QueryTerms()
			}
		}
	}
	cacheable := qKey != "" && !opts.SkipLocal
	if cacheable {
		if val, negative, ok := n.qr.GetBase(qKey, time.Now()); ok {
			return n.cachedResult(qid, val, negative), nil
		}
		n.journal.Append(obs.Event{Kind: obs.EvCacheMiss, Query: qid.String()})
	}
	// qEpoch versions the answer set about to be gathered. It is read
	// before any store access so a mutation racing the collection window
	// invalidates the cached entry instead of being masked by it.
	qEpoch := n.qr.Epoch()

	n.seen.Seen(qid) // never re-execute our own agent if it loops back
	qs := newQueryState(opts.WaitAnswers)
	qs.terms = qTerms
	n.queries.Store(qid, qs)
	defer n.queries.Delete(qid)
	n.m.queries.Inc()
	n.tracer.Begin(qid, n.Addr())
	// Issued before the fan-out so downstream answered/forwarded events
	// never precede their query in the journal.
	n.journal.Append(obs.Event{
		Kind:     obs.EvQueryIssued,
		Query:    qid.String(),
		Strategy: n.strategy.Name(),
		Hops:     int(ttl),
		Count:    len(n.Peers()),
	})

	packet := &agent.Packet{
		Class:       ag.Class(),
		State:       state,
		Base:        n.Addr(),
		BaseID:      n.ID(),
		AccessLevel: n.cfg.AccessLevel,
		Mode:        mode,
	}
	body := agent.EncodePacket(packet)

	// Local execution: the base node's own sharable data participates.
	localSpan := wire.TraceSpan{Peer: n.Addr(), Hop: 0}
	if !opts.SkipLocal {
		ctx := &agent.Context{
			Store:       n.store,
			NodeAddr:    n.Addr(),
			Hops:        0,
			Requester:   n.ID(),
			AccessLevel: n.cfg.AccessLevel,
			ActiveNodes: n.active,
		}
		execStart := time.Now()
		local, err := ag.Execute(ctx)
		localSpan.ExecNS = time.Since(execStart).Nanoseconds()
		localSpan.Matches = len(local)
		if err == nil && len(local) > 0 {
			if mode == 2 {
				// Hints carry names only, local ones included.
				stripped := make([]agent.Result, len(local))
				for i, r := range local {
					stripped[i] = agent.Result{Name: r.Name}
				}
				local = stripped
			}
			qs.deliver(&agent.ResultBatch{
				FromAddr: n.Addr(), From: n.ID(), Hops: 0, Results: local,
			}, mode == 2, false)
		}
	}

	// Clone to every direct peer. Sends are queued on the messenger's
	// per-destination workers, so a hung or slow peer cannot eat into
	// the collection window — the fan-out completes immediately and the
	// full timeout below is spent collecting. Each clone carries the
	// trace context so every hop can report a span back to this base.
	me := n.Addr()
	tc := &wire.TraceContext{QueryID: qid, Base: me}
	// The routing index prunes the fan-out to the neighbors that answered
	// this query's terms before, with the TTL scoped to the depth those
	// answers came from; low confidence or ε-exploration floods instead
	// (and a disabled engine always floods at full TTL).
	neighbors := n.PeerAddrs()
	plan := n.qr.Select(qTerms, neighbors, ttl, time.Now())
	if plan.Selective {
		n.journal.Append(obs.Event{
			Kind:  obs.EvSelectiveRoute,
			Query: qid.String(),
			Count: len(plan.Targets),
			K:     len(neighbors),
			Hops:  int(plan.TTL),
		})
	}
	for _, addr := range plan.Targets {
		env := &wire.Envelope{
			Kind:  wire.KindAgent,
			ID:    qid,
			TTL:   plan.TTL,
			Hops:  1, // arriving at a direct peer means one hop travelled
			From:  me,
			To:    addr,
			Body:  body,
			Trace: tc,
		}
		if n.qr != nil {
			// Via stamps which direct peer this clone entered the network
			// through; every answer it provokes carries the stamp back so
			// handleResult can credit that neighbor in the routing index.
			env.QRoute = &wire.QRoute{Via: addr}
		}
		n.send(addr, env)
		localSpan.FanOut++
	}
	n.tracer.Record(qid, localSpan)

	select {
	case <-qs.done:
	case <-time.After(timeout):
	}
	answers, hints := qs.snapshot()

	res := &QueryResult{
		ID:      qid,
		Answers: answers,
		Hints:   hints,
		Elapsed: time.Since(qs.start),
	}
	n.journal.Append(obs.Event{
		Kind:  obs.EvQueryCompleted,
		Query: qid.String(),
		Count: len(answers) + len(hints),
	})
	if cacheable {
		// The stored copies are private to the cache so a caller mutating
		// the returned slices cannot corrupt later hits. An empty round
		// becomes a short-lived negative entry. The entry carries the
		// answering peers as provenance so a peer's departure evicts the
		// answers it served.
		n.qr.PutBaseFrom(qKey, &cachedAnswers{
			answers: append([]Answer(nil), answers...),
			hints:   append([]Answer(nil), hints...),
		}, answersSize(answers, hints), len(answers)+len(hints) == 0, qEpoch, time.Now(),
			answerSites(n.Addr(), answers, hints))
	}
	if !opts.NoReconfigure {
		res.Reconfigured = n.reconfigure(qid, answers, hints)
	}
	return res, nil
}

// cachedAnswers is the value stored at the base cache site: one query's
// whole collected answer set.
type cachedAnswers struct {
	answers []Answer
	hints   []Answer
}

// cachedResult materializes a base-cache hit as a QueryResult: the query
// is answered locally with zero fan-out, and every answer carries the
// cached-provenance flag.
func (n *Node) cachedResult(qid wire.MsgID, val any, negative bool) *QueryResult {
	start := time.Now()
	n.m.queries.Inc()
	res := &QueryResult{ID: qid, Cached: true}
	reason := "negative"
	if !negative {
		ca := val.(*cachedAnswers)
		res.Answers = flagCached(ca.answers)
		res.Hints = flagCached(ca.hints)
		reason = "base"
	}
	n.journal.Append(obs.Event{
		Kind:   obs.EvCacheHit,
		Query:  qid.String(),
		Reason: reason,
		Count:  len(res.Answers) + len(res.Hints),
	})
	res.Elapsed = time.Since(start)
	return res
}

// flagCached copies an answer list with the cached-provenance flag set.
func flagCached(in []Answer) []Answer {
	if len(in) == 0 {
		return nil
	}
	out := make([]Answer, len(in))
	for i, a := range in {
		a.Cached = true
		out[i] = a
	}
	return out
}

// answerOverhead approximates one Answer's fixed footprint for cache
// byte accounting.
const answerOverhead = 64

// answerSites collects the distinct remote peers an answer set came
// from — the cache-entry provenance ForgetNeighbor evicts by.
func answerSites(me string, lists ...[]Answer) []string {
	var sites []string
	seen := make(map[string]bool)
	for _, l := range lists {
		for _, a := range l {
			if a.PeerAddr == "" || a.PeerAddr == me || seen[a.PeerAddr] {
				continue
			}
			seen[a.PeerAddr] = true
			sites = append(sites, a.PeerAddr)
		}
	}
	return sites
}

// answersSize estimates an answer set's cache footprint.
func answersSize(lists ...[]Answer) int {
	size := 0
	for _, l := range lists {
		for _, a := range l {
			size += answerOverhead + len(a.PeerAddr) + len(a.Result.Name) + len(a.Result.Data)
		}
	}
	return size
}

// reconfigure applies the node's strategy to what this query revealed:
// every answering peer plus every current direct peer is scored, the
// strategy picks the best k, and any remaining slots are refilled with
// current peers so the node never strands itself. The full rationale —
// every candidate's score, rank and k-cut outcome — is journalled.
func (n *Node) reconfigure(qid wire.MsgID, answers, hints []Answer) bool {
	me := n.Addr()
	direct := make(map[string]Peer)
	n.mu.Lock()
	for _, p := range n.peers {
		direct[p.Addr] = p
	}
	k := n.cfg.MaxPeers
	oldPeers := append([]Peer(nil), n.peers...)
	n.mu.Unlock()

	byAddr := make(map[string]*reconfig.Observation)
	note := func(a Answer) {
		if a.PeerAddr == me || a.PeerAddr == "" {
			return
		}
		o, ok := byAddr[a.PeerAddr]
		if !ok {
			_, isDirect := direct[a.PeerAddr]
			o = &reconfig.Observation{
				ID:     a.PeerID,
				Addr:   a.PeerAddr,
				Hops:   a.Hops,
				Direct: isDirect,
			}
			byAddr[a.PeerAddr] = o
		}
		o.Answers++
		o.Bytes += len(a.Result.Data)
		if a.Hops > o.Hops {
			o.Hops = a.Hops
		}
	}
	for _, a := range answers {
		note(a)
	}
	for _, a := range hints {
		note(a)
	}
	// Current direct peers that did not answer still compete (with zero
	// answers), so Static keeps them and MaxCount may drop them.
	for addr, p := range direct {
		if _, ok := byAddr[addr]; !ok {
			byAddr[addr] = &reconfig.Observation{ID: p.ID, Addr: addr, Direct: true, Hops: 1}
		}
	}

	cands := make([]reconfig.Observation, 0, len(byAddr))
	for _, o := range byAddr {
		cands = append(cands, *o)
	}
	// The effective budget never shrinks the node below its current
	// degree: promotion must not disconnect it from regions only
	// reachable through existing peers.
	if len(oldPeers) > k {
		k = len(oldPeers)
	}
	selected := n.strategy.Select(cands, k)

	// Figure-2 semantics: current peers are retained; the strategy ranks
	// which newly observed peers fill the remaining budget. Dead peers
	// are dropped by Rejoin, freeing slots.
	newSet := append([]Peer(nil), oldPeers...)
	chosen := make(map[string]bool, k)
	for _, p := range newSet {
		chosen[p.Addr] = true
	}
	for _, o := range selected {
		if len(newSet) >= k {
			break
		}
		if !chosen[o.Addr] {
			newSet = append(newSet, Peer{ID: o.ID, Addr: o.Addr})
			chosen[o.Addr] = true
		}
	}

	changed := len(newSet) != len(oldPeers)
	if !changed {
		old := make(map[string]bool, len(oldPeers))
		for _, p := range oldPeers {
			old[p.Addr] = true
		}
		for _, p := range newSet {
			if !old[p.Addr] {
				changed = true
				break
			}
		}
	}
	// Journal the decision rationale whether or not the set changed: a
	// round where every candidate lost to the incumbents is as much a
	// decision as one that promotes peers.
	scores := make([]obs.PeerScore, 0, len(cands))
	for _, d := range reconfig.Explain(n.strategy, cands, k) {
		scores = append(scores, obs.PeerScore{
			Addr:     d.Addr,
			Answers:  d.Answers,
			Bytes:    d.Bytes,
			Hops:     d.Hops,
			Rank:     d.Rank,
			Selected: d.Selected,
		})
	}
	added := newSet[len(oldPeers):]
	n.journal.Append(obs.Event{
		Kind:     obs.EvReconfigured,
		Query:    qid.String(),
		Strategy: n.strategy.Name(),
		K:        k,
		Count:    len(added),
		Scores:   scores,
	})
	if changed {
		n.mu.Lock()
		n.peers = newSet
		n.peerGen++
		n.mu.Unlock()
		n.m.reconfigs.Inc()
		addrs := make([]string, len(newSet))
		for i, p := range newSet {
			addrs[i] = p.Addr
		}
		for _, p := range added {
			n.journal.Append(obs.Event{
				Kind:     obs.EvPeerAdded,
				Query:    qid.String(),
				Strategy: n.strategy.Name(),
				Peer:     p.Addr,
				Reason:   "reconfig",
			})
		}
		n.log.Info("reconfigured peer set", "strategy", n.strategy.Name(), "peers", addrs)
	}
	return changed
}

// Fetch performs the mode-2 follow-up: retrieve the named objects from a
// peer that hinted it has them. The transfer is out-of-network — a direct
// exchange with that peer.
func (n *Node) Fetch(peerAddr string, names []string, timeout time.Duration) ([]agent.Result, error) {
	if n.isClosed() {
		return nil, ErrNodeClosed
	}
	if timeout <= 0 {
		timeout = probeTimeout
	}
	fid := wire.NewMsgID()
	qs := newQueryState(0)
	n.queries.Store(fid, qs)
	defer n.queries.Delete(fid)

	req := func() *wire.Envelope {
		return &wire.Envelope{
			Kind: wire.KindFetch,
			ID:   fid,
			TTL:  1,
			From: n.Addr(),
			To:   peerAddr,
			Body: encodeFetchReq(&fetchReq{
				Names:       names,
				Base:        n.Addr(),
				BaseID:      n.ID(),
				AccessLevel: n.cfg.AccessLevel,
			}),
		}
	}

	// One reply batch is expected; wait on the first-reply signal rather
	// than polling. The window is split in two so a request or reply
	// lost on a faulty network gets exactly one retransmission (the peer
	// simply re-serves the same names; fetches are idempotent).
	const attempts = 2
	per := timeout / attempts
	for a := 0; a < attempts; a++ {
		n.send(peerAddr, req())
		select {
		case <-qs.first:
			answers, _ := qs.snapshot()
			out := make([]agent.Result, len(answers))
			for i, ans := range answers {
				out[i] = ans.Result
			}
			return out, nil
		case <-time.After(per):
		}
	}
	return nil, fmt.Errorf("core: fetch from %s timed out", peerAddr)
}

// Probe checks whether a peer is alive by round-tripping a probe message.
func (n *Node) Probe(addr string, timeout time.Duration) bool {
	if timeout <= 0 {
		timeout = probeTimeout
	}
	id := wire.NewMsgID()
	ch := make(chan struct{})
	n.probes.Store(id, ch)
	defer n.probes.Delete(id)
	n.send(addr, &wire.Envelope{
		Kind: wire.KindPeerProbe, ID: id, TTL: 1, From: n.Addr(), To: addr,
	})
	select {
	case <-ch:
		return true
	case <-time.After(timeout):
		return false
	}
}

// deliverProbe completes an outstanding probe.
func (n *Node) deliverProbe(id wire.MsgID) {
	if v, ok := n.probes.Load(id); ok {
		select {
		case <-v.(chan struct{}):
		default:
			close(v.(chan struct{}))
		}
		n.probes.Delete(id)
	}
}
