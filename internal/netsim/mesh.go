package netsim

import "time"

// MeshMsg is one compact message travelling a Mesh: a few integer words
// whose meaning is defined by the protocol model. Keeping the payload
// value-typed and closure-free is what lets a 10k-node churn simulation
// push tens of millions of messages without allocation pressure.
type MeshMsg struct {
	// From is the sending host index.
	From int32
	// Kind discriminates message types within the model.
	Kind int32
	// A, B, C are model-defined payload words (a query id, a hop count,
	// a candidate host — whatever the model encodes).
	A, B, C int32
}

// meshDelivery is one queued delivery. The ring is ordered by at because
// every send charges the same fixed latency.
type meshDelivery struct {
	at  time.Duration
	to  int32
	msg MeshMsg
}

// MeshStats counts mesh traffic.
type MeshStats struct {
	// Sent is messages submitted; Delivered reached a live host; LostDead
	// were addressed to a host that was down at delivery time — exactly
	// how a crash manifests to its neighbors.
	Sent, Delivered, LostDead uint64
}

// Mesh is an integer-indexed host fabric for large-scale simulations: n
// hosts, fixed per-hop latency, messages delivered through one shared
// FIFO ring pumped by a single recurring simulator event. Compared with
// modeling each message as its own scheduled closure, the ring costs one
// event per batch of simultaneous deliveries and zero allocations per
// message in the steady state, which is what makes 10k+ node churn runs
// tractable. Hosts can be marked dead (crash) and alive (restart);
// deliveries to dead hosts are counted lost, not queued.
type Mesh struct {
	sim     *Sim
	latency time.Duration
	alive   []bool
	handler func(to int32, m MeshMsg)

	ring []meshDelivery
	head int
	// pumpAt is when the armed pump event fires; armed gates re-arming so
	// any number of in-flight messages share one scheduled event.
	armed  bool
	pumpAt time.Duration

	stats MeshStats
}

// NewMesh builds a fabric of n hosts, all initially alive, with the given
// fixed per-hop latency (zero is allowed: delivery still happens on a
// later event, never reentrantly inside Send).
func NewMesh(sim *Sim, n int, latency time.Duration) *Mesh {
	if latency < 0 {
		latency = 0
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	return &Mesh{sim: sim, latency: latency, alive: alive}
}

// SetHandler installs the delivery callback. Must be set before the
// first delivery fires.
func (m *Mesh) SetHandler(fn func(to int32, msg MeshMsg)) { m.handler = fn }

// Alive reports whether host i is up.
func (m *Mesh) Alive(i int32) bool { return m.alive[i] }

// SetAlive marks host i up or down. Messages already in flight toward a
// host that goes down are lost at delivery time.
func (m *Mesh) SetAlive(i int32, up bool) { m.alive[i] = up }

// AliveCount returns how many hosts are currently up.
func (m *Mesh) AliveCount() int {
	n := 0
	for _, a := range m.alive {
		if a {
			n++
		}
	}
	return n
}

// Stats snapshots the mesh counters.
func (m *Mesh) Stats() MeshStats { return m.stats }

// Send queues msg for delivery to host to after the mesh latency. Sends
// from dead hosts are permitted — the model gates those; the mesh models
// only the wire.
func (m *Mesh) Send(to int32, msg MeshMsg) {
	m.stats.Sent++
	at := m.sim.Now() + m.latency
	m.ring = append(m.ring, meshDelivery{at: at, to: to, msg: msg})
	if !m.armed || at < m.pumpAt {
		// First in-flight message (or an earlier one than the armed pump,
		// which cannot happen with fixed latency but costs nothing to
		// guard): arm the pump.
		m.armed = true
		m.pumpAt = m.ring[m.head].at
		m.sim.At(m.pumpAt, m.pump)
	}
}

// pump delivers every message due now, then re-arms for the next batch.
func (m *Mesh) pump() {
	now := m.sim.Now()
	for m.head < len(m.ring) && m.ring[m.head].at <= now {
		d := m.ring[m.head]
		m.ring[m.head] = meshDelivery{}
		m.head++
		if !m.alive[d.to] {
			m.stats.LostDead++
			continue
		}
		m.stats.Delivered++
		m.handler(d.to, d.msg)
	}
	if m.head == len(m.ring) {
		// Drained: reset the ring so its capacity is reused.
		m.ring = m.ring[:0]
		m.head = 0
		m.armed = false
		return
	}
	if m.head > len(m.ring)/2 && m.head > 1024 {
		// Compact so the ring's footprint tracks in-flight volume, not
		// lifetime volume.
		n := copy(m.ring, m.ring[m.head:])
		for i := n; i < len(m.ring); i++ {
			m.ring[i] = meshDelivery{}
		}
		m.ring = m.ring[:n]
		m.head = 0
	}
	m.pumpAt = m.ring[m.head].at
	m.sim.At(m.pumpAt, m.pump)
}
