// Package callgraph is the fixture for the whole-program substrate:
// generic instantiation, interface dispatch, method values, immediate
// literals and cross-package resolution.
package callgraph

import "bestpeer/internal/vet/testdata/src/callgraph/leaf"

// Greeter is a module-defined interface with two implementations.
type Greeter interface {
	Greet() string
}

type English struct{}

func (English) Greet() string { return "hi" }

type French struct{}

func (French) Greet() string { return "salut" }

// UseIface dispatches through the interface.
func UseIface(g Greeter) string { return g.Greet() }

// Generic has two instantiations below; both resolve to one node.
func Generic[T any](v T) T { return v }

func CallsGeneric() {
	_ = Generic(1)
	_ = Generic("x")
}

// MethodVal captures a method without calling it.
func MethodVal(e English) func() string { return e.Greet }

// Cross calls into a sibling package.
func Cross() int { return leaf.Add(1, 2) }

// Immediate invokes a literal synchronously.
func Immediate() int {
	return func() int { return 1 }()
}
