package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"bestpeer/internal/agent"
	"bestpeer/internal/core"
	"bestpeer/internal/obs"
	"bestpeer/internal/reconfig"
	"bestpeer/internal/storm"
	"bestpeer/internal/topology"
	"bestpeer/internal/transport"
	"bestpeer/internal/workload"
)

// LiveResult is one query round executed on the real (in-process) stack
// rather than the simulator.
type LiveResult struct {
	// Completion is the wall-clock time of the last answer.
	Completion time.Duration
	// TotalAnswers counts the results received.
	TotalAnswers int
	// AgentsForwarded sums, over all nodes, the clone-forwards performed
	// during the round — a load metric independent of wall-clock noise.
	AgentsForwarded uint64
	// MaxHops is the largest hop count among the answers.
	MaxHops int
}

// LiveCluster is a real BestPeer network running in-process, used to
// validate the simulator's qualitative behaviour against the actual
// implementation.
type LiveCluster struct {
	dir   string
	nodes []*core.Node
	store []*storm.Store
	base  int
	query string
	spec  *workload.Spec
}

// NewLiveCluster builds and wires a live network over tp. Each node's
// store is populated from spec (use a small ObjectsPerNode — this is the
// real storage engine).
func NewLiveCluster(tp *topology.Topology, spec *workload.Spec, query string, strategy reconfig.Strategy, maxPeers int) (*LiveCluster, error) {
	dir, err := os.MkdirTemp("", "bestpeer-live")
	if err != nil {
		return nil, err
	}
	lc := &LiveCluster{dir: dir, base: tp.Base, query: query, spec: spec}
	nw := transport.NewInProc()
	for i := 0; i < tp.N; i++ {
		st, err := storm.Open(filepath.Join(dir, fmt.Sprintf("n%d.storm", i)), storm.Options{})
		if err != nil {
			lc.Close()
			return nil, err
		}
		if err := spec.Populate(i, st); err != nil {
			_ = st.Close() // already failing; the populate error wins
			lc.Close()
			return nil, err
		}
		node, err := core.NewNode(core.Config{
			Network:    nw,
			ListenAddr: fmt.Sprintf("live-%d", i),
			Store:      st,
			MaxPeers:   maxPeers,
			DefaultTTL: 64,
			Strategy:   strategy,
		})
		if err != nil {
			_ = st.Close() // already failing; the node error wins
			lc.Close()
			return nil, err
		}
		lc.nodes = append(lc.nodes, node)
		lc.store = append(lc.store, st)
	}
	for i, node := range lc.nodes {
		var peers []core.Peer
		for _, j := range tp.Peers(i) {
			peers = append(peers, core.Peer{Addr: lc.nodes[j].Addr()})
		}
		node.SetPeers(peers)
	}
	return lc, nil
}

// Base returns the query-issuing node.
func (lc *LiveCluster) Base() *core.Node { return lc.nodes[lc.base] }

// RunRound issues the cluster's query once from the base and waits for
// the expected number of answers (or the timeout).
func (lc *LiveCluster) RunRound(timeout time.Duration) (LiveResult, error) {
	expected := 0
	for i := range lc.nodes {
		if i != lc.base {
			expected += lc.spec.MatchCount(i, lc.query)
		}
	}
	var before uint64
	for _, n := range lc.nodes {
		before += n.Stats().AgentsForwarded
	}
	res, err := lc.Base().Query(&agent.KeywordAgent{Query: lc.query}, core.QueryOptions{
		Timeout:     timeout,
		WaitAnswers: expected,
		SkipLocal:   true,
	})
	if err != nil {
		return LiveResult{}, err
	}
	var after uint64
	for _, n := range lc.nodes {
		after += n.Stats().AgentsForwarded
	}
	out := LiveResult{TotalAnswers: len(res.Answers), AgentsForwarded: after - before}
	for _, a := range res.Answers {
		if a.At > out.Completion {
			out.Completion = a.At
		}
		if a.Hops > out.MaxHops {
			out.MaxHops = a.Hops
		}
	}
	return out, nil
}

// LiveMetrics is the observability section of one scheme's live run:
// network-wide message and agent counters summed over every node's
// registry, the base's answer-hop histogram, and the base's full registry
// snapshot for anything the headline numbers leave out.
type LiveMetrics struct {
	MessagesSent    uint64               `json:"messages_sent"`
	MessagesDropped uint64               `json:"messages_dropped"`
	AgentsExecuted  uint64               `json:"agents_executed"`
	AgentsForwarded uint64               `json:"agents_forwarded"`
	AnswerHops      []obs.BucketSnapshot `json:"answer_hops,omitempty"`
	Base            *obs.Snapshot        `json:"base_registry,omitempty"`
}

// sumFamily adds up every labeled instance of the named family.
func sumFamily(s *obs.Snapshot, name string) uint64 {
	f := s.Family(name)
	if f == nil {
		return 0
	}
	total := uint64(0)
	for _, m := range f.Metrics {
		total += uint64(m.Value)
	}
	return total
}

// Metrics snapshots the cluster's registries into the report section.
func (lc *LiveCluster) Metrics() LiveMetrics {
	var out LiveMetrics
	for _, n := range lc.nodes {
		snap := n.Metrics().Snapshot()
		out.MessagesSent += sumFamily(snap, "bestpeer_transport_messages_sent_total")
		out.MessagesDropped += sumFamily(snap, "bestpeer_transport_messages_dropped_total")
		out.AgentsExecuted += sumFamily(snap, "bestpeer_node_agents_executed_total")
		out.AgentsForwarded += sumFamily(snap, "bestpeer_node_agents_forwarded_total")
	}
	base := lc.Base().Metrics().Snapshot()
	if f := base.Family("bestpeer_node_answer_hops"); f != nil && len(f.Metrics) > 0 {
		out.AnswerHops = f.Metrics[0].Buckets
	}
	out.Base = base
	return out
}

// Close shuts the cluster down and removes its on-disk state.
func (lc *LiveCluster) Close() {
	for _, n := range lc.nodes {
		_ = n.Close() // teardown is best-effort; nothing to report to
	}
	for _, s := range lc.store {
		_ = s.Close() // teardown is best-effort; the dir is removed anyway
	}
	os.RemoveAll(lc.dir)
}
