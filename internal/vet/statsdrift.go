package vet

import (
	"go/ast"
	"go/types"
)

// statsdrift flags atomic counter fields that a struct's snapshot method
// never reads. The observability migration (DESIGN.md §7) made every
// counter reach the metrics surface through a `Stats()`/`Snapshot()`
// view; a counter field that the view forgets to read is incremented
// forever and exported never — exactly the silent drift this rule
// catches before it ships.
//
// The rule: for every struct declaring a `Stats` or `Snapshot` method,
// each field of a sync/atomic counter type (Uint32/Uint64/Int32/Int64)
// must be read somewhere in that method, directly or through
// same-package functions it calls.
type statsdrift struct{}

func (statsdrift) Name() string { return "statsdrift" }
func (statsdrift) Doc() string {
	return "atomic counter field not read by the struct's Stats()/Snapshot() method (silently unexported counter)"
}

func (statsdrift) Run(p *Pass) {
	decls := packageFuncDecls(p)

	// Snapshot methods, grouped by receiver type.
	snapshots := make(map[*types.Named][]*ast.FuncDecl)
	for obj, fd := range decls {
		if obj.Name() != "Stats" && obj.Name() != "Snapshot" {
			continue
		}
		recv := obj.Type().(*types.Signature).Recv()
		if recv == nil {
			continue
		}
		if named := namedFrom(recv.Type()); named != nil {
			snapshots[named] = append(snapshots[named], fd)
		}
	}

	for named, methods := range snapshots {
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		var counters []*types.Var
		for i := 0; i < st.NumFields(); i++ {
			if f := st.Field(i); isAtomicCounter(f.Type()) {
				counters = append(counters, f)
			}
		}
		if len(counters) == 0 {
			continue
		}
		read := fieldsReadBy(p, decls, methods)
		for _, f := range counters {
			if !read[f] {
				p.Reportf(f.Pos(),
					"atomic counter field %s.%s is not read by %s; the snapshot silently drops it",
					named.Obj().Name(), f.Name(), snapshotNames(methods))
			}
		}
	}
}

// snapshotNames renders the checked method set for the message.
func snapshotNames(methods []*ast.FuncDecl) string {
	out := ""
	for i, m := range methods {
		if i > 0 {
			out += "/"
		}
		out += m.Name.Name + "()"
	}
	return out
}

// isAtomicCounter reports whether t is one of sync/atomic's scalar
// counter types.
func isAtomicCounter(t types.Type) bool {
	n := namedFrom(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return false
	}
	switch obj.Name() {
	case "Uint32", "Uint64", "Int32", "Int64":
		return true
	}
	return false
}

// fieldsReadBy collects every struct field selected inside the given
// methods, following calls into same-package functions (a snapshot
// method may delegate the actual reads to a helper).
func fieldsReadBy(p *Pass, decls map[*types.Func]*ast.FuncDecl, roots []*ast.FuncDecl) map[*types.Var]bool {
	read := make(map[*types.Var]bool)
	visited := make(map[*ast.FuncDecl]bool)
	queue := append([]*ast.FuncDecl(nil), roots...)
	for len(queue) > 0 {
		fd := queue[0]
		queue = queue[1:]
		if visited[fd] || fd.Body == nil {
			continue
		}
		visited[fd] = true
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.SelectorExpr:
				if sel, ok := p.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
					if v, ok := sel.Obj().(*types.Var); ok {
						read[v] = true
					}
				}
			case *ast.CallExpr:
				if callee := resolveFuncDecl(p, decls, e.Fun); callee != nil {
					queue = append(queue, callee)
				}
			}
			return true
		})
	}
	return read
}
