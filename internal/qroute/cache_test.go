package qroute

import (
	"fmt"
	"testing"
	"time"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestCacheHitMissAndNegative(t *testing.T) {
	c := NewCache(CacheOptions{})
	if _, _, ok := c.Get("k", t0); ok {
		t.Fatal("empty cache must miss")
	}
	c.Put("k", "answers", 7, false, c.Epoch(), t0)
	val, neg, ok := c.Get("k", t0.Add(time.Second))
	if !ok || neg || val.(string) != "answers" {
		t.Fatalf("want positive hit, got val=%v neg=%v ok=%v", val, neg, ok)
	}
	c.Put("none", nil, 0, true, c.Epoch(), t0)
	if _, neg, ok := c.Get("none", t0.Add(time.Second)); !ok || !neg {
		t.Fatalf("want negative hit, got neg=%v ok=%v", neg, ok)
	}
	s := c.Stats()
	if s.Hits != 1 || s.NegativeHits != 1 || s.Misses != 1 || s.Insertions != 2 {
		t.Fatalf("stats %+v", s)
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	c := NewCache(CacheOptions{TTL: 10 * time.Second, NegTTL: time.Second})
	c.Put("pos", 1, 1, false, c.Epoch(), t0)
	c.Put("neg", nil, 0, true, c.Epoch(), t0)
	// Negative entries age out on the short TTL, positive ones survive.
	if _, _, ok := c.Get("neg", t0.Add(2*time.Second)); ok {
		t.Fatal("negative entry must expire after NegTTL")
	}
	if _, _, ok := c.Get("pos", t0.Add(2*time.Second)); !ok {
		t.Fatal("positive entry must survive inside TTL")
	}
	if _, _, ok := c.Get("pos", t0.Add(11*time.Second)); ok {
		t.Fatal("positive entry must expire after TTL")
	}
	if s := c.Stats(); s.Expired != 2 || s.Entries != 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestCacheEpochInvalidation(t *testing.T) {
	c := NewCache(CacheOptions{})
	c.Put("a", 1, 1, false, c.Epoch(), t0)
	c.Put("b", 2, 1, false, c.Epoch(), t0)
	if n := c.BumpEpoch(); n != 2 {
		t.Fatalf("BumpEpoch invalidated %d entries, want 2", n)
	}
	if _, _, ok := c.Get("a", t0); ok {
		t.Fatal("entry from an old epoch must not be served")
	}
	// An entry inserted with a pre-bump epoch (writer raced the
	// mutation) is rejected at read time.
	old := c.Epoch()
	c.BumpEpoch()
	c.Put("c", 3, 1, false, old, t0)
	if _, _, ok := c.Get("c", t0); ok {
		t.Fatal("stale-epoch insertion must be rejected at Get")
	}
	if s := c.Stats(); s.Invalidated != 3 {
		t.Fatalf("want 3 invalidated, got %+v", s)
	}
}

func TestCacheLRUEvictionByEntries(t *testing.T) {
	c := NewCache(CacheOptions{MaxEntries: 3})
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), i, 1, false, c.Epoch(), t0)
	}
	// Touch k0 so k1 becomes the LRU victim.
	c.Get("k0", t0)
	c.Put("k3", 3, 1, false, c.Epoch(), t0)
	if _, _, ok := c.Get("k1", t0); ok {
		t.Fatal("LRU victim k1 must have been evicted")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, _, ok := c.Get(k, t0); !ok {
			t.Fatalf("%s unexpectedly evicted", k)
		}
	}
	if s := c.Stats(); s.Evictions != 1 || s.Entries != 3 {
		t.Fatalf("stats %+v", s)
	}
}

func TestCacheByteCapacityAccounting(t *testing.T) {
	c := NewCache(CacheOptions{MaxEntries: 100, MaxBytes: 10})
	c.Put("a", "x", 4, false, c.Epoch(), t0)
	c.Put("b", "y", 4, false, c.Epoch(), t0)
	if s := c.Stats(); s.Bytes != 8 {
		t.Fatalf("bytes = %d, want 8", s.Bytes)
	}
	// Third entry exceeds the budget: the LRU entry goes.
	if n := c.Put("c", "z", 4, false, c.Epoch(), t0); n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}
	if _, _, ok := c.Get("a", t0); ok {
		t.Fatal("a should have been evicted for capacity")
	}
	// Replacing an entry adjusts accounting instead of double counting.
	c.Put("b", "yy", 6, false, c.Epoch(), t0)
	if s := c.Stats(); s.Bytes != 10 {
		t.Fatalf("bytes after replace = %d, want 10", s.Bytes)
	}
	// An oversized value is refused outright.
	c.Put("huge", "h", 11, false, c.Epoch(), t0)
	if _, _, ok := c.Get("huge", t0); ok {
		t.Fatal("oversized value must not be cached")
	}
}
