// Package busypoll is a bpvet golden-test fixture.
package busypoll

import "time"

func badForever() {
	for {
		time.Sleep(time.Millisecond) // want `time\.Sleep in a loop`
	}
}

func badRange(xs []int) {
	for range xs {
		time.Sleep(time.Millisecond) // want `time\.Sleep in a loop`
	}
}

func badCounted() {
	for i := 0; i < 3; i++ {
		if i > 0 {
			time.Sleep(time.Millisecond) // want `time\.Sleep in a loop`
		}
	}
}

func goodOnce() {
	time.Sleep(time.Millisecond)
}

func goodSelect(stop chan struct{}) {
	for {
		select {
		case <-time.After(time.Millisecond):
		case <-stop:
			return
		}
	}
}

// The literal is its own function: its single sleep is not a loop sleep,
// even though the literal is created inside one.
func goodLiteralInLoop(run func(func())) {
	for i := 0; i < 3; i++ {
		run(func() {
			time.Sleep(time.Millisecond)
		})
	}
}
