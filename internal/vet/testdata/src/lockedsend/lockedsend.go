// Package lockedsend is a bpvet golden-test fixture.
package lockedsend

import (
	"net"
	"sync"
)

type Messenger struct{}

func (Messenger) Send(to string, b []byte) error { return nil }

type node struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	msgr Messenger
}

func (n *node) badHold() {
	n.mu.Lock()
	n.msgr.Send("a", nil) // want `call to n\.msgr\.Send while n\.mu is locked`
	n.mu.Unlock()
}

func (n *node) badDeferUnlock() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.msgr.Send("a", nil) // want `call to n\.msgr\.Send while n\.mu is locked`
}

func (n *node) badReadLock() {
	n.rw.RLock()
	n.msgr.Send("a", nil) // want `call to n\.msgr\.Send while n\.rw is locked`
	n.rw.RUnlock()
}

func (n *node) badConnWrite(c net.Conn, frame []byte) {
	n.mu.Lock()
	defer n.mu.Unlock()
	c.Write(frame) // want `call to c\.Write while n\.mu is locked`
}

func (n *node) goodUnlockFirst() error {
	n.mu.Lock()
	n.mu.Unlock()
	return n.msgr.Send("a", nil)
}

func (n *node) goodNoLock() error {
	return n.msgr.Send("a", nil)
}

// Nested function literals are independent scopes: the literal does not
// inherit the outer lock state.
func (n *node) goodLiteralScope() func() {
	n.mu.Lock()
	f := func() { n.msgr.Send("a", nil) }
	n.mu.Unlock()
	return f
}
