package transport

import (
	"io"
	"net"
	"sync"
	"time"
)

// bufferedPipe is an in-memory full-duplex connection with elastic
// buffers, used by InProc instead of net.Pipe. net.Pipe is fully
// synchronous — every Write blocks until the peer Reads — which does not
// model TCP (kernel socket buffers absorb writes) and can deadlock
// protocols whose handlers send while their peers are also mid-send.
// Elastic buffering restores TCP-like liveness: writes complete
// immediately, reads block until data or close.
type pipeBuffer struct {
	mu     sync.Mutex
	cond   *sync.Cond
	data   []byte
	closed bool // write side closed: reads drain then EOF
	dead   bool // hard close: reads fail immediately
}

func newPipeBuffer() *pipeBuffer {
	b := &pipeBuffer{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *pipeBuffer) write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed || b.dead {
		return 0, io.ErrClosedPipe
	}
	b.data = append(b.data, p...)
	b.cond.Broadcast()
	return len(p), nil
}

func (b *pipeBuffer) read(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.data) == 0 {
		if b.dead {
			return 0, io.ErrClosedPipe
		}
		if b.closed {
			return 0, io.EOF
		}
		b.cond.Wait()
	}
	n := copy(p, b.data)
	b.data = b.data[n:]
	if len(b.data) == 0 {
		b.data = nil // release the backing array
	}
	return n, nil
}

// closeWrite marks end-of-stream: pending data remains readable.
func (b *pipeBuffer) closeWrite() {
	b.mu.Lock()
	b.closed = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// kill aborts the buffer: readers fail immediately.
func (b *pipeBuffer) kill() {
	b.mu.Lock()
	b.dead = true
	b.closed = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// pipeConn is one endpoint of a buffered pipe.
type pipeConn struct {
	read  *pipeBuffer // peer writes here, we read
	write *pipeBuffer // we write here, peer reads
	local net.Addr
	peer  net.Addr
	once  sync.Once
}

// newBufferedPipe returns the two connected endpoints.
func newBufferedPipe(a, b net.Addr) (net.Conn, net.Conn) {
	ab := newPipeBuffer()
	ba := newPipeBuffer()
	return &pipeConn{read: ba, write: ab, local: a, peer: b},
		&pipeConn{read: ab, write: ba, local: b, peer: a}
}

func (c *pipeConn) Read(p []byte) (int, error)  { return c.read.read(p) }
func (c *pipeConn) Write(p []byte) (int, error) { return c.write.write(p) }

// Close ends the connection: our peer sees EOF after draining; our own
// pending reads abort.
func (c *pipeConn) Close() error {
	c.once.Do(func() {
		c.write.closeWrite()
		c.read.kill()
	})
	return nil
}

func (c *pipeConn) LocalAddr() net.Addr  { return c.local }
func (c *pipeConn) RemoteAddr() net.Addr { return c.peer }

// Deadlines are not implemented; the in-process transport is used in
// controlled environments where callers bound waits themselves.
func (c *pipeConn) SetDeadline(time.Time) error      { return nil }
func (c *pipeConn) SetReadDeadline(time.Time) error  { return nil }
func (c *pipeConn) SetWriteDeadline(time.Time) error { return nil }
