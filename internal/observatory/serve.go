package observatory

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
)

// NewMux builds the observatory HTTP handler:
//
//	/fleet              scrape every member and return the fleet snapshot
//	/fleet/topology     the overlay graph from the latest scrape
//	/fleet/convergence  the convergence timeline folded from fleet events
//	/fleet/trace/<id>   cross-node trace assembly for one query
//
// Every endpoint scrapes on demand, so a snapshot is never staler than
// its request.
func NewMux(c *Collector) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/fleet", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.Scrape())
	})
	mux.HandleFunc("/fleet/topology", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.Scrape().Topology())
	})
	mux.HandleFunc("/fleet/convergence", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.Scrape().Rounds())
	})
	mux.HandleFunc("/fleet/trace/", func(w http.ResponseWriter, r *http.Request) {
		id := strings.TrimPrefix(r.URL.Path, "/fleet/trace/")
		if id == "" {
			http.Error(w, "missing query id", http.StatusBadRequest)
			return
		}
		c.Scrape() // pick up the latest journal entries first
		writeJSON(w, c.AssembleTrace(id))
	})
	return mux
}

func writeJSON(w http.ResponseWriter, payload any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(payload) // client went away mid-response; nothing to do
}

// Server is a running observatory HTTP endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// StartServer binds the observatory mux and serves it in the background.
// Like the node admin endpoint, an empty addr means "127.0.0.1:0" and a
// bare ":port" binds loopback — the observatory aggregates fleet
// internals and is unauthenticated.
func StartServer(addr string, c *Collector) (*Server, error) {
	switch {
	case addr == "":
		addr = "127.0.0.1:0"
	case strings.HasPrefix(addr, ":"):
		addr = "127.0.0.1" + addr
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("observatory: listen: %w", err)
	}
	srv := &http.Server{Handler: NewMux(c)}
	go func() {
		defer func() { recover() }() // a crashed observatory must not take the process down
		_ = srv.Serve(ln)            // returns ErrServerClosed on Close; nothing to report
	}()
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound address of the observatory endpoint.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the observatory endpoint.
func (s *Server) Close() error { return s.srv.Close() }
