// Package suppress is a bpvet fixture: every violation here carries a
// //bpvet:ignore comment, so the full suite must report nothing.
package suppress

import "time"

func lineAbove() {
	for {
		//bpvet:ignore busypoll fixture exercises the line-above form
		time.Sleep(time.Millisecond)
	}
}

func trailing() {
	for {
		time.Sleep(time.Millisecond) //bpvet:ignore busypoll fixture exercises the trailing form
	}
}

func spawn() {
	go func() {}() //bpvet:ignore nakedgo fixture: empty body cannot panic
}

type conn struct{}

func (conn) Close() error { return nil }

func drop(c conn) {
	c.Close() //bpvet:ignore droppederr fixture: result intentionally unchecked
}
