package core

import (
	"time"

	"bestpeer/internal/agent"
	"bestpeer/internal/obs"
	"bestpeer/internal/qroute"
	"bestpeer/internal/wire"
)

// handle dispatches every envelope delivered to this node. It runs on
// messenger reader goroutines, so everything it touches is synchronized.
func (n *Node) handle(env *wire.Envelope) {
	if n.isClosed() {
		return
	}
	switch env.Kind {
	case wire.KindAgent:
		n.handleAgent(env)
	case wire.KindResult:
		n.handleResult(env, false)
	case wire.KindHint:
		n.handleResult(env, true)
	case wire.KindFetch:
		n.handleFetch(env)
	case wire.KindClassWant:
		n.handleClassWant(env)
	case wire.KindClassShip:
		n.handleClassShip(env)
	case wire.KindPeerProbe:
		n.send(env.From, &wire.Envelope{
			Kind: wire.KindPeerProbeOK, ID: env.ID, TTL: 1,
			From: n.Addr(), To: env.From,
		})
	case wire.KindPeerProbeOK:
		n.deliverProbe(env.ID)
	case wire.KindDepart:
		n.handleDepart(env)
	case wire.KindPeerList:
		n.handlePeerList(env)
	case wire.KindPeerListOK:
		n.deliverPeerList(env)
	case wire.KindSpan:
		// A standalone trace-span report from a peer that had no result
		// envelope to piggyback on; the ID is the traced query's.
		if env.Span != nil {
			n.tracer.Record(env.ID, *env.Span)
		}
	default:
		// Not a BestPeer message; ignore.
	}
}

// dropAgent counts a non-executed agent and, when the envelope carries
// trace context, reports a drop span to the base so the trace shows
// where (and why) propagation was cut.
func (n *Node) dropAgent(env *wire.Envelope, reason string) {
	n.m.drops[reason].Inc()
	n.journal.Append(obs.Event{
		Kind:   obs.EvAgentDropped,
		Query:  env.ID.String(),
		Peer:   env.From,
		Reason: reason,
		Hops:   int(env.Hops),
	})
	if env.Trace == nil {
		return
	}
	n.reportSpan(env.Trace, &wire.TraceSpan{
		Peer:   n.Addr(),
		Parent: env.From,
		Hop:    int(env.Hops),
		Drop:   reason,
	})
}

// reportSpan delivers one hop span to the trace base: recorded directly
// when this node is the base, otherwise sent as a standalone KindSpan
// report (result envelopes piggyback their span instead — see
// executeAgent).
func (n *Node) reportSpan(tc *wire.TraceContext, span *wire.TraceSpan) {
	if tc.Base == n.Addr() {
		n.tracer.Record(tc.QueryID, *span)
		return
	}
	n.send(tc.Base, &wire.Envelope{
		Kind: wire.KindSpan,
		ID:   tc.QueryID,
		TTL:  1,
		From: n.Addr(),
		To:   tc.Base,
		Span: span,
	})
}

// handleAgent implements the receive side of §3.1: drop duplicates and
// expired agents, obtain the class if missing, execute locally, send
// answers directly to the base node, and clone-forward to direct peers.
func (n *Node) handleAgent(env *wire.Envelope) {
	arrived := time.Now()
	if env.Expired() {
		// Lifetime exhausted on arrival: the host drops the agent
		// without executing it, so TTL t reaches exactly distance t.
		n.dropAgent(env, "expired")
		return
	}
	if n.seen.Seen(env.ID) {
		n.dropAgent(env, "duplicate")
		return
	}
	packet, err := agent.DecodePacket(env.Body)
	if err != nil {
		n.dropAgent(env, "decode")
		return
	}
	// Forward first: propagation does not wait for a class transfer.
	fanOut := n.forwardAgent(env)

	if !n.registry.Installed(packet.Class) {
		if !n.registry.Known(packet.Class) {
			n.dropAgent(env, "no-class")
			return // cannot ever run this class
		}
		// Park the agent and ask the previous hop for the class.
		n.pendingMu.Lock()
		n.pending[packet.Class] = append(n.pending[packet.Class],
			pendingAgent{env: env, packet: packet, arrived: arrived, fanOut: fanOut})
		first := len(n.pending[packet.Class]) == 1
		n.pendingMu.Unlock()
		if first {
			n.send(env.From, &wire.Envelope{
				Kind: wire.KindClassWant, ID: wire.NewMsgID(), TTL: 1,
				From: n.Addr(), To: env.From,
				Body: encodeClassWant(&classWant{Class: packet.Class}),
			})
		}
		return
	}
	n.executeAgent(env, packet, arrived, fanOut)
}

// forwardAgent clones the agent to every direct peer except the one it
// came from, decrementing TTL and incrementing Hops. Clones that would
// arrive already expired are not sent. It returns the fan-out: how many
// clones were dispatched.
func (n *Node) forwardAgent(env *wire.Envelope) int {
	if env.TTL <= 1 {
		return 0
	}
	from := env.From
	me := n.Addr()
	fanOut := 0
	for _, p := range n.Peers() {
		if p.Addr == from || p.Addr == me {
			continue
		}
		n.send(p.Addr, env.Forwarded(me, p.Addr))
		n.m.agentsForwarded.Inc()
		fanOut++
	}
	if fanOut > 0 {
		n.journal.Append(obs.Event{
			Kind:  obs.EvAgentForwarded,
			Query: env.ID.String(),
			Peer:  from,
			Hops:  int(env.Hops),
			Count: fanOut,
		})
	}
	return fanOut
}

// executeAgent reconstructs and runs the agent against the local store,
// then returns any answers straight to the base node. When the envelope
// carries trace context, the hop's span rides the result envelope (or
// travels as a standalone report when there is nothing to return).
func (n *Node) executeAgent(env *wire.Envelope, packet *agent.Packet, arrived time.Time, fanOut int) {
	var span *wire.TraceSpan
	if env.Trace != nil {
		span = &wire.TraceSpan{
			Peer:   n.Addr(),
			Parent: env.From,
			Hop:    int(env.Hops),
			WaitNS: time.Since(arrived).Nanoseconds(),
			FanOut: fanOut,
		}
	}
	ag, err := n.registry.New(packet.Class, packet.State)
	if err != nil {
		n.dropAgent(env, "decode")
		return
	}
	// qroute serve-site cache: an identical fingerprint seen since the
	// last store mutation skips the store scan entirely. The epoch is
	// read before the lookup/execution so a racing mutation invalidates
	// the entry rather than being masked by it.
	var (
		sKey     string
		sEpoch   uint64
		served   bool
		negative bool
		results  []agent.Result
		execErr  error
	)
	if n.qr != nil {
		if fp, ok := ag.(agent.Fingerprinter); ok {
			if k := fp.QueryKey(); k != "" {
				sKey = qroute.Key(packet.Class, packet.Mode, packet.AccessLevel, k)
			}
		}
	}
	if sKey != "" {
		sEpoch = n.qr.Epoch()
		if val, neg, ok := n.qr.GetServe(sKey, time.Now()); ok {
			served, negative = true, neg
			if !neg {
				results = val.([]agent.Result)
			}
		}
	}
	if served {
		reason := "serve"
		if negative {
			reason = "negative"
		}
		n.journal.Append(obs.Event{
			Kind:   obs.EvCacheHit,
			Query:  env.ID.String(),
			Peer:   env.From,
			Reason: reason,
			Count:  len(results),
		})
		if span != nil {
			span.Matches = len(results)
		}
	} else {
		ctx := &agent.Context{
			Store:       n.store,
			NodeAddr:    n.Addr(),
			Hops:        int(env.Hops),
			Requester:   packet.BaseID,
			AccessLevel: packet.AccessLevel,
			ActiveNodes: n.active,
		}
		start := time.Now()
		results, execErr = ag.Execute(ctx)
		n.m.execSeconds.ObserveDurationExemplar(time.Since(start), env.ID.String())
		n.m.agentsExecuted.Inc()
		if span != nil {
			span.ExecNS = time.Since(start).Nanoseconds()
			span.Matches = len(results)
		}
		if sKey != "" && execErr == nil {
			n.qr.PutServe(sKey, results, resultsSize(results),
				len(results) == 0, sEpoch, time.Now())
		}
	}
	if execErr != nil || len(results) == 0 {
		if span != nil {
			n.reportSpan(env.Trace, span)
		}
		return
	}
	kind := wire.KindResult
	if packet.Mode == 2 {
		// Hint mode: announce names only; the base fetches what it wants.
		kind = wire.KindHint
		stripped := make([]agent.Result, len(results))
		for i, r := range results {
			stripped[i] = agent.Result{Name: r.Name}
		}
		results = stripped
	}
	n.m.answersSent.Add(uint64(len(results)))
	if span != nil && env.Trace.Base == n.Addr() {
		// This node is the base (an agent looped back); record locally
		// and strip the piggyback.
		n.tracer.Record(env.Trace.QueryID, *span)
		span = nil
	}
	// The result envelope echoes the clone's Via stamp so the base can
	// credit the entry neighbor, and carries cached provenance plus the
	// serving epoch when the answer came from this node's cache.
	var rqr *wire.QRoute
	if env.QRoute != nil {
		rqr = &wire.QRoute{Via: env.QRoute.Via, Cached: served, Epoch: sEpoch}
	} else if served {
		rqr = &wire.QRoute{Cached: true, Epoch: sEpoch}
	}
	n.send(packet.Base, &wire.Envelope{
		Kind:   kind,
		ID:     env.ID, // answers carry the query id so the base can route them
		TTL:    1,
		From:   n.Addr(),
		To:     packet.Base,
		Body:   agent.EncodeResults(results, int(env.Hops), n.ID(), n.Addr()),
		Span:   span,
		QRoute: rqr,
	})
}

// resultsSize estimates a result set's cache footprint.
func resultsSize(results []agent.Result) int {
	size := 0
	for _, r := range results {
		size += answerOverhead + len(r.Name) + len(r.Data)
	}
	return size
}

// handleResult routes an incoming answer batch to its query, recording
// any piggybacked trace span first.
func (n *Node) handleResult(env *wire.Envelope, hint bool) {
	if env.Span != nil {
		n.tracer.Record(env.ID, *env.Span)
	}
	batch, err := agent.DecodeResults(env.Body)
	if err != nil {
		return
	}
	v, ok := n.queries.Load(env.ID)
	if !ok {
		return // late answer for a finished query
	}
	n.m.answerHops.ObserveExemplar(float64(batch.Hops), env.ID.String())
	n.journal.Append(obs.Event{
		Kind:  obs.EvAgentAnswered,
		Query: env.ID.String(),
		Peer:  batch.FromAddr,
		Hops:  batch.Hops,
		Count: len(batch.Results),
	})
	qs := v.(*queryState)
	cached := false
	if env.QRoute != nil {
		cached = env.QRoute.Cached
		if env.QRoute.Via != "" {
			// Credit the direct peer this batch entered the network
			// through so later queries on the same terms route to it.
			n.qr.Observe(qs.terms, env.QRoute.Via, len(batch.Results), batch.Hops, time.Now())
		}
	}
	qs.deliver(batch, hint, cached)
}

// handleFetch serves a mode-2 follow-up: read the named objects, apply
// active-object access control for the requester, reply with the data.
func (n *Node) handleFetch(env *wire.Envelope) {
	req, err := decodeFetchReq(env.Body)
	if err != nil {
		return
	}
	var results []agent.Result
	for _, name := range req.Names {
		obj, err := n.store.Get(name)
		if err != nil {
			continue // removed since the hint — the race §2 acknowledges
		}
		data, ok := n.active.RenderObject(obj, req.AccessLevel)
		if !ok {
			continue
		}
		results = append(results, agent.Result{Name: name, Data: data})
	}
	n.send(req.Base, &wire.Envelope{
		Kind: wire.KindResult,
		ID:   env.ID, // fetch reply carries the fetch id
		TTL:  1,
		From: n.Addr(),
		To:   req.Base,
		Body: agent.EncodeResults(results, 0, n.ID(), n.Addr()),
	})
}

// handleClassWant serves a class payload to a node that lacks it. If
// this node is itself waiting for the class (a chain of cold nodes), the
// request is parked and served when the class arrives.
func (n *Node) handleClassWant(env *wire.Envelope) {
	w, err := decodeClassWant(env.Body)
	if err != nil {
		return
	}
	code, err := n.registry.Code(w.Class)
	if err != nil {
		if n.registry.Known(w.Class) {
			n.pendingMu.Lock()
			n.pendingWants[w.Class] = append(n.pendingWants[w.Class], env.From)
			n.pendingMu.Unlock()
		}
		return
	}
	n.shipClass(env.From, w.Class, code)
}

func (n *Node) shipClass(to, class string, code []byte) {
	n.m.classesShipped.Inc()
	n.send(to, &wire.Envelope{
		Kind: wire.KindClassShip, ID: wire.NewMsgID(), TTL: 1,
		From: n.Addr(), To: to,
		Body: encodeClassShip(&classShip{Class: class, Code: code}),
	})
}

// handleClassShip installs a shipped class and runs any parked agents.
func (n *Node) handleClassShip(env *wire.Envelope) {
	s, err := decodeClassShip(env.Body)
	if err != nil {
		return
	}
	if err := n.registry.Install(s.Class, s.Code); err != nil {
		n.log.Warn("class install rejected", "class", s.Class, "err", err)
		return
	}
	n.m.classesInstalled.Inc()
	n.log.Info("installed shipped class", "class", s.Class, "bytes", len(s.Code))
	n.pendingMu.Lock()
	parked := n.pending[s.Class]
	delete(n.pending, s.Class)
	wants := n.pendingWants[s.Class]
	delete(n.pendingWants, s.Class)
	n.pendingMu.Unlock()
	for _, pa := range parked {
		n.executeAgent(pa.env, pa.packet, pa.arrived, pa.fanOut)
	}
	// Serve downstream nodes whose class requests arrived while this
	// node was itself still waiting for the class.
	for _, to := range wants {
		n.shipClass(to, s.Class, s.Code)
	}
}
