package storm

import (
	"errors"
	"fmt"
	"strings"

	"bestpeer/internal/wire"
)

// ObjectKind distinguishes the sharing granularities of §3.2 of the paper.
type ObjectKind uint8

const (
	// StaticObject is a plain digital file shared in its entirety.
	StaticObject ObjectKind = iota
	// ActiveObject couples data elements with an active element: the name
	// of an executable "active node" that filters the content according
	// to the requester's access rights.
	ActiveObject
)

// String returns the symbolic kind name.
func (k ObjectKind) String() string {
	switch k {
	case StaticObject:
		return "static"
	case ActiveObject:
		return "active"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Object is the unit of sharable data a node stores in its StorM instance.
// In the paper's experiments each node stores 1000 objects of 1 KB each.
type Object struct {
	// Name identifies the object within its node.
	Name string
	// Keywords are the searchable terms agents match queries against.
	Keywords []string
	// Kind selects static versus active sharing.
	Kind ObjectKind
	// ActiveClass names the active element (a registered executable)
	// that mediates access to an active object. Empty for static objects.
	ActiveClass string
	// Data is the object content.
	Data []byte
}

// ErrBadObject reports a corrupt or oversized object record.
var ErrBadObject = errors.New("storm: bad object record")

// objectRecordVersion guards the record layout.
const objectRecordVersion = 1

// encodeObject serializes the object into a page record.
func encodeObject(o *Object) ([]byte, error) {
	var e wire.Encoder
	e.Uint8(objectRecordVersion)
	e.String(o.Name)
	e.Uint8(uint8(o.Kind))
	e.String(o.ActiveClass)
	e.Uvarint(uint64(len(o.Keywords)))
	for _, k := range o.Keywords {
		e.String(k)
	}
	e.Bytes2(o.Data)
	if e.Len() > MaxRecordSize {
		return nil, fmt.Errorf("%w: %q encodes to %d bytes, max %d",
			ErrBadObject, o.Name, e.Len(), MaxRecordSize)
	}
	return e.Bytes(), nil
}

// decodeObject parses a page record into an Object.
func decodeObject(rec []byte) (*Object, error) {
	d := wire.NewDecoder(rec)
	if v := d.Uint8(); v != objectRecordVersion {
		return nil, fmt.Errorf("%w: record version %d", ErrBadObject, v)
	}
	o := &Object{Name: d.String()}
	o.Kind = ObjectKind(d.Uint8())
	o.ActiveClass = d.String()
	n := d.Uvarint()
	if n > MaxRecordSize {
		return nil, ErrBadObject
	}
	if n > 0 {
		o.Keywords = make([]string, 0, n)
		for i := uint64(0); i < n; i++ {
			o.Keywords = append(o.Keywords, d.String())
		}
	}
	o.Data = d.Bytes2()
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadObject, err)
	}
	return o, nil
}

// Matches reports whether the object satisfies a keyword query: the query
// matches case-insensitively against any keyword or as a substring of the
// object name. This is the comparison the paper's StorM agent performs on
// every stored object.
func (o *Object) Matches(query string) bool {
	if query == "" {
		return false
	}
	q := strings.ToLower(query)
	for _, k := range o.Keywords {
		if strings.ToLower(k) == q {
			return true
		}
	}
	return strings.Contains(strings.ToLower(o.Name), q)
}

// Clone returns a deep copy of the object.
func (o *Object) Clone() *Object {
	cp := *o
	cp.Keywords = append([]string(nil), o.Keywords...)
	cp.Data = append([]byte(nil), o.Data...)
	return &cp
}
