package bench

import (
	"fmt"
	"time"

	"bestpeer/internal/qroute"
	"bestpeer/internal/topology"
	"bestpeer/internal/workload"
)

// Params configures one simulated experiment.
type Params struct {
	// Cost calibrates the simulated hardware and network.
	Cost CostModel
	// Spec generates the per-node data (object counts drive scan and
	// transfer costs).
	Spec *workload.Spec
	// Query is the keyword searched for.
	Query string
	// MaxPeers is the direct-peer budget of the reconfigurable base
	// node (the paper's k). Zero defaults to 8.
	MaxPeers int
	// TTL bounds propagation. Zero defaults to 64 (large enough that
	// every topology in the paper is fully covered, as in their runs).
	TTL int
	// IncludeData makes answers carry object payloads; false returns
	// names only (the Fig. 8 configuration).
	IncludeData bool
	// Threads is the per-host CPU parallelism for multi-threaded
	// schemes. Zero defaults to 8.
	Threads int
	// ColdStart makes every non-base node start without the agent class
	// installed, so the first round pays class shipping. The default
	// (false) models the realistic deployment where the standard search
	// class ships with the BestPeer software, as it does in the live
	// implementation's built-in registry.
	ColdStart bool
	// DataShip switches the BestPeer model from code-shipping to naive
	// data-shipping: peers return their entire store and the base
	// filters locally. This is the alternative §6 of the paper discusses
	// choosing between at runtime.
	DataShip bool
	// QRoute enables the answer cache + learned selective routing at the
	// simulated base node. The zero value keeps plain flooding, exactly
	// like a live node with the subsystem off.
	QRoute qroute.Options
}

func (p Params) withDefaults() Params {
	if p.MaxPeers == 0 {
		p.MaxPeers = 8
	}
	if p.TTL == 0 {
		p.TTL = 64
	}
	if p.Threads == 0 {
		p.Threads = 8
	}
	return p
}

// Event is one answer batch arriving at the base node.
type Event struct {
	// Node is the answering node's index.
	Node int
	// Answers is how many results the batch carried.
	Answers int
	// Hops is the answering node's distance when it matched.
	Hops int
	// At is the simulated arrival time, from query start.
	At time.Duration
}

// RunResult is one query execution's outcome.
type RunResult struct {
	// Completion is when the last answer arrived (the paper's metric).
	Completion time.Duration
	// Events are the answer arrivals in time order.
	Events []Event
	// TotalAnswers sums Events' answers.
	TotalAnswers int
	// Msgs and Bytes count delivered traffic during the run; MsgsSent
	// counts messages handed to the network, whether or not they arrived
	// before quiescence. All three come from the netsim.Network counters
	// — the one accounting path every scheme shares.
	Msgs     uint64
	Bytes    uint64
	MsgsSent uint64
	// Route records how the round's fan-out was planned: "flood",
	// "selective", "explore", or "cached" when the whole answer set was
	// served from the base's cache without touching the network.
	Route string
}

// nodeAddr names simulated hosts.
func nodeAddr(i int) string { return fmt.Sprintf("n%d", i) }

// expectedAnswers is the ground truth the harness validates runs against:
// total matches over all nodes reachable within ttl hops of the base.
func expectedAnswers(tp *topology.Topology, spec *workload.Spec, query string, ttl int) int {
	dist := tp.BFS(tp.Base)
	total := 0
	for node, d := range dist {
		if d > 0 && d <= ttl { // the base's own data is not a network answer
			total += spec.MatchCount(node, query)
		}
	}
	return total
}
