package vet

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// This file is the whole-program layer underneath the inter-procedural
// analyzers (lockorder, goleak): a call graph over every loaded package
// with conservative cross-package edges, plus the shared flow-facts
// substrate — which mutex classes a function may hold at each call site,
// and which stop/done channels reach each go statement.
//
// The graph is deliberately lightweight. Nodes are function declarations
// and function literals; edges are resolved from three shapes:
//
//   - static calls: f(), pkg.F(), x.M() on a concrete receiver — one
//     target, resolved through go/types object identity (generics
//     resolve to their Origin declaration, so every instantiation
//     shares one node);
//   - interface dispatch: x.M() where x is a module-defined interface —
//     conservative edges to every loaded concrete method that
//     implements it (stdlib interfaces are skipped: their
//     implementations live outside the module and resolving the
//     module-side ones would only manufacture false cycles);
//   - method values: x.M referenced without being called — a
//     conservative "may be invoked later" edge, tagged so analyzers can
//     choose whether to follow it.
//
// Function values flowing through ordinary variables and fields are NOT
// tracked (the OnSuspect-style callback is invisible here); analyses on
// top of the graph are therefore under-approximate on dynamic calls and
// must say so in their docs.

// EdgeKind classifies how a call edge was resolved.
type EdgeKind uint8

const (
	// EdgeStatic is a direct call of a declared function or method.
	EdgeStatic EdgeKind = iota
	// EdgeInterface is interface-method dispatch, resolved to every
	// loaded concrete method implementing a module-defined interface.
	EdgeInterface
	// EdgeMethodValue is a method value captured without being called;
	// it may run at any later time.
	EdgeMethodValue
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeStatic:
		return "static"
	case EdgeInterface:
		return "interface"
	case EdgeMethodValue:
		return "method-value"
	}
	return "edge(?)"
}

// LockMode distinguishes exclusive from shared acquisition.
type LockMode uint8

const (
	// LockExclusive is Lock on a Mutex or RWMutex.
	LockExclusive LockMode = iota
	// LockShared is RLock on an RWMutex.
	LockShared
)

// HeldLock is one mutex class held at a program point, with the
// position where it was acquired.
type HeldLock struct {
	Class types.Object // field or variable identifying the mutex
	Mode  LockMode
	Pos   token.Pos
}

// CallSite is one resolved call (or method-value capture) inside a
// function body.
type CallSite struct {
	Pos  token.Pos
	Kind EdgeKind
	// Targets are the resolved declared-function targets (one for
	// static edges, possibly many for interface dispatch). Generic
	// instantiations are normalized to their Origin.
	Targets []*types.Func
	// Lits are function literals invoked synchronously at this site:
	// an immediately-invoked literal, or a literal handed to
	// sync.Once.Do (which calls it before returning).
	Lits []*ast.FuncLit
	// Held are the mutex classes lexically held when the call runs.
	Held []HeldLock
	// Deferred marks a call site inside a defer statement: it runs at
	// function exit, where the lexical held-set is an approximation.
	Deferred bool
}

// LockUse is one direct mutex acquisition inside a function body.
type LockUse struct {
	Class types.Object
	Mode  LockMode
	Pos   token.Pos
	// Held are the classes already held when this acquisition happens —
	// the intra-procedural lock-order edges.
	Held []HeldLock
}

// FuncNode is one function in the program graph: a declaration (Obj and
// Decl set) or a literal (Lit set).
type FuncNode struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	Pkg  *Package
	Body *ast.BlockStmt

	Sites []CallSite
	Locks []LockUse
	// Gos are the go statements spawned from this body.
	Gos []*ast.GoStmt
}

// Name returns a printable identifier for diagnostics.
func (n *FuncNode) Name() string {
	if n.Obj != nil {
		return funcDisplayName(n.Obj)
	}
	return "func literal"
}

// funcDisplayName renders pkg.Func or pkg.(Type).Method without the
// module-path noise.
func funcDisplayName(f *types.Func) string {
	name := f.Name()
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named := namedFrom(sig.Recv().Type()); named != nil {
			name = named.Obj().Name() + "." + name
		}
	}
	if f.Pkg() != nil {
		name = shortPkg(f.Pkg().Path()) + "." + name
	}
	return name
}

// shortPkg trims a module-internal import path to its last element.
func shortPkg(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// LockClassName renders a mutex class as pkg.Type.field or pkg.var.
func LockClassName(obj types.Object) string {
	if obj == nil {
		return "?"
	}
	name := obj.Name()
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		// Walk the package scope for the named type owning the field so
		// the class reads Type.field. Fields don't link back to their
		// struct, so search the declaring package.
		if owner := fieldOwner(v); owner != "" {
			name = owner + "." + name
		}
	}
	if obj.Pkg() != nil {
		name = shortPkg(obj.Pkg().Path()) + "." + name
	}
	return name
}

// fieldOwner finds the named type in the field's package whose struct
// carries this exact field object.
func fieldOwner(field *types.Var) string {
	pkg := field.Pkg()
	if pkg == nil {
		return ""
	}
	scope := pkg.Scope()
	for _, tn := range scope.Names() {
		obj, ok := scope.Lookup(tn).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := obj.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == field {
				return obj.Name()
			}
		}
	}
	return ""
}

// Program is the whole-program view the inter-procedural analyzers run
// over.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package

	// nodes indexes declared functions by their (Origin) object.
	nodes map[*types.Func]*FuncNode
	// lits indexes literal nodes by their AST node.
	lits map[*ast.FuncLit]*FuncNode
	// order is every node in deterministic (position) order.
	order []*FuncNode

	// ifaceImpls memoizes interface-method resolution.
	ifaceImpls map[*types.Func][]*types.Func
	// namedTypes is every named type declared in the loaded packages.
	namedTypes []*types.Named

	// acquires holds the transitive may-acquire fixpoint, computed on
	// first use.
	acquires     map[*FuncNode]map[types.Object]*Acquisition
	acquiresDone bool
}

// Acquisition explains how a function may come to hold a mutex class:
// either directly (Pos set, Via nil) or through a callee (Via set).
type Acquisition struct {
	Class types.Object
	Mode  LockMode
	// Pos is the direct acquisition position (valid when Via is nil).
	Pos token.Pos
	// Via is the callee through which the acquisition is reachable,
	// and CallPos the call site in the owning function.
	Via     *FuncNode
	CallPos token.Pos
}

// NodeOf returns the graph node for a declared function (following
// generic instantiations to their origin), or nil.
func (pr *Program) NodeOf(f *types.Func) *FuncNode {
	if f == nil {
		return nil
	}
	return pr.nodes[f.Origin()]
}

// LitNode returns the graph node for a function literal, or nil.
func (pr *Program) LitNode(l *ast.FuncLit) *FuncNode { return pr.lits[l] }

// Nodes returns every function node in deterministic order.
func (pr *Program) Nodes() []*FuncNode { return pr.order }

// FuncByName finds a declared function node by its package path and
// name ("Func" or "Type.Method") — a test and diagnostics convenience.
func (pr *Program) FuncByName(pkgPath, name string) *FuncNode {
	for _, n := range pr.order {
		if n.Obj == nil || n.Pkg == nil || n.Pkg.Path != pkgPath {
			continue
		}
		got := n.Obj.Name()
		if sig, ok := n.Obj.Type().(*types.Signature); ok && sig.Recv() != nil {
			if named := namedFrom(sig.Recv().Type()); named != nil {
				got = named.Obj().Name() + "." + got
			}
		}
		if got == name {
			return n
		}
	}
	return nil
}

// BuildProgram constructs the call graph and flow facts for the loaded
// packages.
func BuildProgram(pkgs []*Package) *Program {
	pr := &Program{
		Pkgs:       pkgs,
		nodes:      make(map[*types.Func]*FuncNode),
		lits:       make(map[*ast.FuncLit]*FuncNode),
		ifaceImpls: make(map[*types.Func][]*types.Func),
		acquires:   make(map[*FuncNode]map[types.Object]*Acquisition),
	}
	if len(pkgs) > 0 {
		pr.Fset = pkgs[0].Fset
	}

	// Pass 1: create a node per function declaration and literal, and
	// collect the named types for interface resolution.
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok {
				if named, ok := tn.Type().(*types.Named); ok {
					pr.namedTypes = append(pr.namedTypes, named)
				}
			}
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch d := n.(type) {
				case *ast.FuncDecl:
					if d.Body == nil {
						return true
					}
					if obj, ok := pkg.Info.Defs[d.Name].(*types.Func); ok {
						node := &FuncNode{Obj: obj, Decl: d, Pkg: pkg, Body: d.Body}
						pr.nodes[obj] = node
						pr.order = append(pr.order, node)
					}
				case *ast.FuncLit:
					node := &FuncNode{Lit: d, Pkg: pkg, Body: d.Body}
					pr.lits[d] = node
					pr.order = append(pr.order, node)
				}
				return true
			})
		}
	}
	sort.Slice(pr.order, func(i, j int) bool { return pr.order[i].Body.Pos() < pr.order[j].Body.Pos() })

	// Pass 2: resolve call sites and lock facts per body.
	for _, node := range pr.order {
		pr.analyzeBody(node)
	}
	return pr
}

// moduleInterface reports whether the interface owning method m is
// declared inside one of the loaded packages (as opposed to the
// standard library).
func (pr *Program) moduleInterface(m *types.Func) bool {
	pkg := m.Pkg()
	if pkg == nil {
		return false
	}
	for _, p := range pr.Pkgs {
		if p.Types == pkg {
			return true
		}
	}
	return false
}

// implementersOf resolves an interface method to the loaded concrete
// methods that implement it.
func (pr *Program) implementersOf(m *types.Func) []*types.Func {
	if impls, ok := pr.ifaceImpls[m]; ok {
		return impls
	}
	var impls []*types.Func
	sig, _ := m.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		pr.ifaceImpls[m] = nil
		return nil
	}
	iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
	if iface == nil {
		pr.ifaceImpls[m] = nil
		return nil
	}
	for _, named := range pr.namedTypes {
		if types.IsInterface(named) {
			continue
		}
		var recv types.Type = named
		if !types.Implements(recv, iface) {
			recv = types.NewPointer(named)
			if !types.Implements(recv, iface) {
				continue
			}
		}
		obj, _, _ := types.LookupFieldOrMethod(recv, true, m.Pkg(), m.Name())
		if fn, ok := obj.(*types.Func); ok {
			if target := pr.nodes[fn.Origin()]; target != nil {
				impls = append(impls, fn.Origin())
			}
		}
	}
	pr.ifaceImpls[m] = impls
	return impls
}

// bodyEvent is one lock/unlock/call/method-value occurrence, ordered by
// position to reconstruct the lexical lock state.
type bodyEvent struct {
	pos      token.Pos
	kind     int // 0 lock, 1 unlock, 2 call, 3 method value
	class    types.Object
	mode     LockMode
	call     *ast.CallExpr
	target   *types.Func // method-value target (kind 3)
	deferred bool
}

// analyzeBody walks one function body (not descending into nested
// literals — those are their own nodes) and fills in Sites, Locks, Gos.
func (pr *Program) analyzeBody(node *FuncNode) {
	info := node.Pkg.Info
	var events []bodyEvent
	// ast.Inspect visits parents before children, so these sets are
	// populated before the nodes they classify are reached.
	goCalls := make(map[*ast.CallExpr]bool)    // spawned on another goroutine
	deferCalls := make(map[*ast.CallExpr]bool) // run at function exit
	callFuns := make(map[ast.Expr]bool)        // selectors in call position

	ast.Inspect(node.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false // its own node
		case *ast.GoStmt:
			node.Gos = append(node.Gos, x)
			// The spawned call runs on another goroutine: no lock or
			// ordering facts flow into it synchronously. Its arguments
			// are still evaluated here, so keep walking.
			goCalls[x.Call] = true
			return true
		case *ast.DeferStmt:
			// A deferred Unlock never releases within the body; skip
			// the whole call so it is not treated as a release point.
			if _, _, ok := mutexMethod(info, x.Call, false); ok {
				return false
			}
			deferCalls[x.Call] = true
			return true
		case *ast.CallExpr:
			callFuns[ast.Unparen(x.Fun)] = true
			if goCalls[x] {
				return true
			}
			if cls, mode, ok := mutexMethod(info, x, true); ok {
				events = append(events, bodyEvent{pos: x.Pos(), kind: 0, class: cls, mode: mode})
				return true
			}
			if cls, _, ok := mutexMethod(info, x, false); ok {
				events = append(events, bodyEvent{pos: x.Pos(), kind: 1, class: cls})
				return true
			}
			events = append(events, bodyEvent{pos: x.Pos(), kind: 2, call: x, deferred: deferCalls[x]})
			return true
		case *ast.SelectorExpr:
			if callFuns[x] {
				return true
			}
			// A method referenced outside call position is a method
			// value that may run later.
			if fn := methodValueTarget(info, x); fn != nil {
				events = append(events, bodyEvent{pos: x.Pos(), kind: 3, target: fn})
			}
			return true
		}
		return true
	})

	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	// Replay in source order, maintaining the lexically-held set. An
	// Unlock on any path releases (favouring precision over recall,
	// same as lockedsend); a deferred Unlock was skipped above so the
	// lock stays held to the end of the body.
	var held []HeldLock
	snapshot := func() []HeldLock {
		if len(held) == 0 {
			return nil
		}
		return append([]HeldLock(nil), held...)
	}
	for _, e := range events {
		switch e.kind {
		case 0:
			node.Locks = append(node.Locks, LockUse{Class: e.class, Mode: e.mode, Pos: e.pos, Held: snapshot()})
			held = append(held, HeldLock{Class: e.class, Mode: e.mode, Pos: e.pos})
		case 1:
			for i := len(held) - 1; i >= 0; i-- {
				if held[i].Class == e.class {
					held = append(held[:i], held[i+1:]...)
					break
				}
			}
		case 2:
			site := CallSite{Pos: e.pos, Held: snapshot(), Deferred: e.deferred}
			pr.resolveCall(node, e.call, &site)
			if len(site.Targets) > 0 || len(site.Lits) > 0 {
				node.Sites = append(node.Sites, site)
			}
		case 3:
			node.Sites = append(node.Sites, CallSite{
				Pos: e.pos, Kind: EdgeMethodValue,
				Targets: []*types.Func{e.target.Origin()},
				Held:    snapshot(),
			})
		}
	}
}

// resolveCall fills site.Targets/Lits/Kind for one call expression.
func (pr *Program) resolveCall(node *FuncNode, call *ast.CallExpr, site *CallSite) {
	info := node.Pkg.Info
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		// Immediately-invoked literal: synchronous.
		site.Kind = EdgeStatic
		site.Lits = append(site.Lits, fun)
		return
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			site.Kind = EdgeStatic
			site.Targets = []*types.Func{fn.Origin()}
		}
		return
	case *ast.SelectorExpr:
		// sync.Once.Do invokes its argument synchronously — treat the
		// literal (or named function) argument as called here.
		if isPkgType(info.TypeOf(fun.X), "sync", "Once") && fun.Sel.Name == "Do" && len(call.Args) == 1 {
			switch arg := ast.Unparen(call.Args[0]).(type) {
			case *ast.FuncLit:
				site.Kind = EdgeStatic
				site.Lits = append(site.Lits, arg)
			case *ast.Ident:
				if fn, ok := info.Uses[arg].(*types.Func); ok {
					site.Kind = EdgeStatic
					site.Targets = []*types.Func{fn.Origin()}
				}
			}
			return
		}
		fn, ok := info.Uses[fun.Sel].(*types.Func)
		if !ok {
			return
		}
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			if types.IsInterface(sel.Recv()) {
				if !pr.moduleInterface(fn) {
					return // stdlib interface: implementations unknowable
				}
				site.Kind = EdgeInterface
				site.Targets = pr.implementersOf(fn)
				return
			}
		}
		site.Kind = EdgeStatic
		site.Targets = []*types.Func{fn.Origin()}
	}
}

// methodValueTarget reports the concrete declared method captured by a
// method-value expression, or nil. Interface method values are skipped
// (the dynamic target is unknowable without value tracking).
func methodValueTarget(info *types.Info, sel *ast.SelectorExpr) *types.Func {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return nil
	}
	if types.IsInterface(s.Recv()) {
		return nil
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return nil
	}
	return fn
}

// mutexMethod reports whether call is a Lock/RLock (acquire=true) or
// Unlock/RUnlock (acquire=false) on a sync.Mutex or RWMutex, resolving
// the mutex to a stable class object (a struct field or variable).
// Mutexes reached through expressions with no object identity (map
// entries, function results) return ok=false — they cannot be matched
// across functions.
func mutexMethod(info *types.Info, call *ast.CallExpr, acquire bool) (types.Object, LockMode, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, 0, false
	}
	var mode LockMode
	switch sel.Sel.Name {
	case "Lock":
		mode = LockExclusive
		if !acquire {
			return nil, 0, false
		}
	case "RLock":
		mode = LockShared
		if !acquire {
			return nil, 0, false
		}
	case "Unlock", "RUnlock":
		if acquire {
			return nil, 0, false
		}
	default:
		return nil, 0, false
	}
	t := info.TypeOf(sel.X)
	if !isPkgType(t, "sync", "Mutex") && !isPkgType(t, "sync", "RWMutex") {
		return nil, 0, false
	}
	cls := lockClassObj(info, sel.X)
	if cls == nil {
		return nil, 0, false
	}
	return cls, mode, true
}

// lockClassObj resolves the mutex expression to its identity object: a
// struct field (same field across all instances — the standard lock
// class abstraction) or a variable.
func lockClassObj(info *types.Info, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.ObjectOf(x)
	case *ast.SelectorExpr:
		return info.ObjectOf(x.Sel)
	}
	return nil
}

// Acquires returns the transitive may-acquire set of a node: every
// mutex class the function may lock while executing, directly or
// through static and synchronous-literal callees. Interface and
// method-value edges are excluded here — following them would make
// nearly everything acquire nearly everything; lockorder follows them
// one level explicitly instead.
func (pr *Program) Acquires(node *FuncNode) map[types.Object]*Acquisition {
	pr.computeAcquires()
	return pr.acquires[node]
}

// staticCallees resolves one site's synchronous callees to graph nodes.
func (pr *Program) staticCallees(site *CallSite) []*FuncNode {
	if site.Kind != EdgeStatic {
		return nil
	}
	var callees []*FuncNode
	for _, t := range site.Targets {
		if n := pr.NodeOf(t); n != nil {
			callees = append(callees, n)
		}
	}
	for _, l := range site.Lits {
		if n := pr.LitNode(l); n != nil {
			callees = append(callees, n)
		}
	}
	return callees
}

// computeAcquires runs the may-acquire fixpoint over the whole graph,
// so recursion and mutual recursion converge instead of being cut off.
func (pr *Program) computeAcquires() {
	if pr.acquiresDone {
		return
	}
	pr.acquiresDone = true
	for _, n := range pr.order {
		out := make(map[types.Object]*Acquisition)
		for i := range n.Locks {
			l := &n.Locks[i]
			if _, ok := out[l.Class]; !ok {
				out[l.Class] = &Acquisition{Class: l.Class, Mode: l.Mode, Pos: l.Pos}
			}
		}
		pr.acquires[n] = out
	}
	for changed := true; changed; {
		changed = false
		for _, n := range pr.order {
			out := pr.acquires[n]
			for i := range n.Sites {
				site := &n.Sites[i]
				for _, callee := range pr.staticCallees(site) {
					for cls, acq := range pr.acquires[callee] {
						if _, ok := out[cls]; !ok {
							out[cls] = &Acquisition{Class: cls, Mode: acq.Mode, Via: callee, CallPos: site.Pos}
							changed = true
						}
					}
				}
			}
		}
	}
}

// AcquirePath renders the chain from a function to a concrete
// acquisition for diagnostics: "via X (file:line) via Y (file:line)".
func (pr *Program) AcquirePath(node *FuncNode, cls types.Object) string {
	var b strings.Builder
	seen := map[*FuncNode]bool{}
	for node != nil && !seen[node] {
		seen[node] = true
		acq := pr.Acquires(node)[cls]
		if acq == nil {
			break
		}
		if acq.Via == nil {
			pos := pr.Fset.Position(acq.Pos)
			b.WriteString("locked at ")
			b.WriteString(trimPos(pos))
			return b.String()
		}
		pos := pr.Fset.Position(acq.CallPos)
		b.WriteString("via ")
		b.WriteString(acq.Via.Name())
		b.WriteString(" (")
		b.WriteString(trimPos(pos))
		b.WriteString(") ")
		node = acq.Via
	}
	return strings.TrimSpace(b.String())
}

// trimPos renders file:line with the file shortened to its base name —
// program-level diagnostics span packages, full paths drown the signal.
func trimPos(pos token.Position) string {
	name := pos.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name + ":" + strconv.Itoa(pos.Line)
}
