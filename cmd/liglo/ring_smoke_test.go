package main

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"bestpeer/internal/liglo"
	"bestpeer/internal/obs"
	"bestpeer/internal/transport"
)

// TestLigloRingSmoke is the ci-target smoke test for -ring: three LIGLO
// servers over real TCP join one chord ring, a member registers, the
// key's owner is killed, and the record re-resolves from a replica via
// the client's redirect/fallback path — with ring membership surfaced
// on the admin endpoint exactly as main() serves it.
func TestLigloRingSmoke(t *testing.T) {
	fast := func(join string) *liglo.RingConfig {
		return &liglo.RingConfig{
			Join:            join,
			Successors:      4,
			StabilizeEvery:  25 * time.Millisecond,
			FixFingersEvery: 25 * time.Millisecond,
			CheckPredEvery:  25 * time.Millisecond,
			ReplicateEvery:  50 * time.Millisecond,
		}
	}
	servers := make([]*liglo.Server, 0, 3)
	for i := 0; i < 3; i++ {
		join := ""
		if i > 0 {
			join = servers[0].Addr()
		}
		srv, err := liglo.NewServer(transport.TCP{}, "127.0.0.1:0",
			liglo.ServerConfig{Ring: fast(join)})
		if err != nil {
			t.Fatalf("server %d: %v", i, err)
		}
		defer srv.Close()
		servers = append(servers, srv)
	}

	// The maintenance loops converge the ring on their own.
	waitFor(t, 5*time.Second, "ring convergence", func() bool {
		for _, s := range servers {
			found := map[string]bool{}
			for _, r := range s.Ring().Snapshot().Successors {
				found[r.Addr] = true
			}
			for _, other := range servers {
				if other != s && !found[other.Addr()] {
					return false
				}
			}
		}
		return true
	})

	// The admin endpoint reports ring membership, as main() serves it.
	asrv, err := obs.StartAdmin("", obs.AdminConfig{
		Health: func() any {
			return map[string]any{
				"status": "ok", "addr": servers[1].Addr(),
				"ring":            servers[1].Ring().Snapshot(),
				"foreign_records": servers[1].ForeignRecords(),
			}
		},
	})
	if err != nil {
		t.Fatalf("admin endpoint: %v", err)
	}
	defer asrv.Close()

	addrs := make([]string, len(servers))
	for i, s := range servers {
		addrs[i] = s.Addr()
	}
	c := liglo.NewClientOpts(transport.TCP{}, liglo.ClientOptions{RingServers: addrs})
	defer c.Close()
	id, _, err := c.Register(servers[0].Addr(), "peer-1:7000")
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	waitFor(t, 5*time.Second, "record replication", func() bool {
		return servers[1].ForeignRecords() > 0 && servers[2].ForeignRecords() > 0
	})

	health := httpGetBody(t, "http://"+asrv.Addr()+"/healthz")
	for _, want := range []string{`"successors"`, servers[0].Addr(), `"foreign_records"`} {
		if !strings.Contains(health, want) {
			t.Errorf("/healthz missing %s: %s", want, health)
		}
	}

	// Kill the key's owner without a goodbye; the survivors detect the
	// failure and a replica serves the lookup.
	if err := servers[0].Close(); err != nil {
		t.Fatalf("kill owner: %v", err)
	}
	waitFor(t, 10*time.Second, "re-resolution after owner death", func() bool {
		addr, online, err := c.Lookup(id)
		return err == nil && online && addr == "peer-1:7000"
	})
}

func waitFor(t *testing.T, limit time.Duration, what string, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(limit)
	for time.Now().Before(deadline) {
		if ok() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func httpGetBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, b)
	}
	return string(b)
}
