package observatory

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"bestpeer/internal/agent"
	"bestpeer/internal/core"
	"bestpeer/internal/obs"
	"bestpeer/internal/storm"
	"bestpeer/internal/transport"
	"bestpeer/internal/transport/faultnet"
)

// chaosNode boots one node on the fabric with the given transport
// options and an admin server, returning the node and its admin addr.
func chaosNode(t *testing.T, fab *faultnet.Fabric, name string, topts transport.Options) (*core.Node, string, *obs.AdminServer) {
	t.Helper()
	st, err := storm.Open(filepath.Join(t.TempDir(), name+".storm"), storm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st.Put(&storm.Object{Name: "music-" + name, Keywords: []string{"music"}, Data: []byte(name)})
	node, err := core.NewNode(core.Config{
		Network:    fab.Host(name),
		ListenAddr: name,
		Store:      st,
		MaxPeers:   8,
		// Roomy ring: journal overflow is a fault class of its own and
		// must not fire incidentally here.
		JournalCapacity: 4096,
		Transport:       topts,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := node.ServeAdmin("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		node.Close()
		st.Close()
	})
	return node, srv.Addr(), srv
}

// alertKey identifies one alert transition for exact-set assertions.
type alertKey struct {
	kind   obs.EventKind
	rule   string
	member string
}

// drainAlerts reads the health journal past the cursor and returns the
// transition keys plus the advanced cursor.
func drainAlerts(h *Health, cursor uint64) ([]alertKey, uint64) {
	events, next, _ := h.Journal().Since(cursor, 0)
	var keys []alertKey
	for _, e := range events {
		keys = append(keys, alertKey{e.Kind, e.Reason, e.Node})
	}
	return keys, next
}

// scrapeUntil scrapes the fleet every 100ms until the health journal
// grows past cursor (returning the new transitions) or the deadline
// passes (returning nil).
func scrapeUntil(col *Collector, cursor uint64, deadline time.Duration) ([]alertKey, uint64) {
	end := time.Now().Add(deadline)
	for {
		col.Scrape()
		if keys, next := drainAlerts(col.Health(), cursor); len(keys) > 0 {
			return keys, next
		}
		if time.Now().After(end) {
			return nil, cursor
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// TestChaosFaultsRaiseExactAlerts is the health engine's contract,
// proven both ways: each injected fault class raises exactly its
// expected alert on exactly the afflicted member, and a lossy-but-
// healthy fleet (25% message drop, hysteresis engaged) raises none.
//
// Topology: a—b is the partition pair, s—h the saturation edge, d a
// loner whose admin endpoint will die. Fleet-wide alert transitions
// are asserted per phase through the health journal cursor, so an
// unexpected alert anywhere fails the phase that produced it.
func TestChaosFaultsRaiseExactAlerts(t *testing.T) {
	fab := faultnet.New(transport.NewInProc(), 23)

	// a and b detect failures fast (partition phase); s tolerates an
	// absurd failure count so saturation cannot leak a suspect-churn
	// alert; its 500ms dial timeout is the queue's drain clock.
	fastFail := transport.Options{
		DialTimeout: 250 * time.Millisecond, WriteTimeout: 250 * time.Millisecond,
		QueueSize: 256, FailThreshold: 2,
		BackoffBase: 50 * time.Millisecond, BackoffMax: 250 * time.Millisecond,
	}
	patient := transport.Options{
		DialTimeout: 500 * time.Millisecond, WriteTimeout: 250 * time.Millisecond,
		QueueSize: 256, FailThreshold: 1 << 20,
		BackoffBase: 50 * time.Millisecond, BackoffMax: 250 * time.Millisecond,
	}
	a, aAdmin, _ := chaosNode(t, fab, "chaos-a", fastFail)
	b, bAdmin, _ := chaosNode(t, fab, "chaos-b", fastFail)
	s, sAdmin, _ := chaosNode(t, fab, "chaos-s", patient)
	h, hAdmin, _ := chaosNode(t, fab, "chaos-h", fastFail)
	d, dAdmin, dSrv := chaosNode(t, fab, "chaos-d", fastFail)
	a.SetPeers([]core.Peer{{Addr: b.Addr()}})
	b.SetPeers([]core.Peer{{Addr: a.Addr()}})
	s.SetPeers([]core.Peer{{Addr: h.Addr()}})
	h.SetPeers([]core.Peer{{Addr: s.Addr()}})

	col := NewCollector(aAdmin, bAdmin, sAdmin, hAdmin, dAdmin)
	// Thresholds scaled to this fleet's scrape cadence (~100ms windows).
	// The cache-collapse hold outlasts the whole test on purpose: a
	// fresh fleet's cold cache is not a collapse, and proving that rule
	// needs the sustained-lookup regime of the churn bench.
	col.Health().SetRules([]Rule{
		{Name: "member-down", Series: SigUp, Below: true, Fire: 0.5, Clear: 0.5},
		{Name: "suspect-churn", Series: SigSuspectChurnPerS,
			Fire: 0.5, Clear: 0.25, ClearHold: 200 * time.Millisecond},
		{Name: "send-queue-saturation", Series: SigSendQueueDepth,
			Fire: 24, Clear: 8, Hold: 400 * time.Millisecond},
		{Name: "journal-overflow", Series: SigJournalOverflowPerS,
			Fire: 50, Clear: 10, Hold: 400 * time.Millisecond},
		{Name: "cache-hit-collapse", Series: SigCacheHitRate, Below: true,
			Fire: 0.1, Clear: 0.3, Hold: 5 * time.Minute},
		{Name: "repair-surge", Series: SigRepairAddedPerS,
			Fire: 50, Clear: 10, Hold: 400 * time.Millisecond},
	})

	pump := func(base *core.Node, query string, n int) {
		for i := 0; i < n; i++ {
			// Failures are expected during fault phases; traffic is the point.
			_, _ = base.Query(&agent.KeywordAgent{Query: fmt.Sprintf("%s-%d", query, i)},
				core.QueryOptions{Timeout: 20 * time.Millisecond, WaitAnswers: 1})
		}
	}

	// Phase 0 — lossy but healthy: 25% of messages vanish, queries keep
	// flowing, and the engine must stay silent.
	fab.SetConfig(faultnet.Config{DropProb: 0.25})
	for i := 0; i < 10; i++ {
		_, _ = a.Query(&agent.KeywordAgent{Query: "music"},
			core.QueryOptions{Timeout: 100 * time.Millisecond, WaitAnswers: 2})
		col.Scrape()
		time.Sleep(100 * time.Millisecond)
	}
	cursor := uint64(0)
	if keys, _ := drainAlerts(col.Health(), cursor); len(keys) != 0 {
		t.Fatalf("false positives under 25%% loss: %+v", keys)
	}

	// Phase 1 — partition a from b. Query traffic from a fails fast,
	// b crosses a's suspect threshold, and exactly suspect-churn fires
	// on exactly member a.
	fab.Partition([]string{"chaos-a"}, []string{"chaos-b"})
	pump(a, "part", 5)
	keys, cursor := scrapeUntil(col, cursor, 3*time.Second)
	if len(keys) != 1 || keys[0] != (alertKey{obs.EvAlertRaised, "suspect-churn", aAdmin}) {
		t.Fatalf("partition transitions = %+v, want suspect-churn raised on %s", keys, aAdmin)
	}
	// The raise carries full provenance: series, value past threshold.
	events, _, _ := col.Health().Journal().Since(0, 0)
	raise := events[len(events)-1]
	if raise.Strategy != SigSuspectChurnPerS || raise.Value <= raise.Threshold {
		t.Fatalf("raise provenance = %+v", raise)
	}
	// Heal; the suspect episode is over, so the next quiet windows
	// clear the alert — and nothing else transitions.
	fab.HealPartitions()
	keys, cursor = scrapeUntil(col, cursor, 3*time.Second)
	if len(keys) != 1 || keys[0] != (alertKey{obs.EvAlertCleared, "suspect-churn", aAdmin}) {
		t.Fatalf("heal transitions = %+v, want suspect-churn cleared on %s", keys, aAdmin)
	}

	// Phase 2 — saturate s's send queue: sever the live s—h conns, then
	// hang new dials so the queue drains one message per dial timeout
	// while query traffic keeps refilling it. Depth must stay over the
	// threshold for the hold, then exactly send-queue-saturation fires
	// on exactly member s.
	fab.HangDial("chaos-h")
	fab.Partition([]string{"chaos-s"}, []string{"chaos-h"})
	fab.HealPartitions() // partition only to sever the conns; dials now hang
	t.Cleanup(func() { fab.HealDial("chaos-h") })
	pump(s, "sat", 60)
	keys, cursor = scrapeUntil(col, cursor, 5*time.Second)
	if len(keys) != 1 || keys[0] != (alertKey{obs.EvAlertRaised, "send-queue-saturation", sAdmin}) {
		t.Fatalf("saturation transitions = %+v, want send-queue-saturation raised on %s", keys, sAdmin)
	}
	// Releasing the dials drains the queue and clears the alert.
	fab.HealDial("chaos-h")
	keys, cursor = scrapeUntil(col, cursor, 5*time.Second)
	if len(keys) != 1 || keys[0] != (alertKey{obs.EvAlertCleared, "send-queue-saturation", sAdmin}) {
		t.Fatalf("drain transitions = %+v, want send-queue-saturation cleared on %s", keys, sAdmin)
	}

	// Phase 3 — kill d's admin endpoint (the process, as the
	// observatory sees it). Exactly member-down fires on exactly d.
	dSrv.Close()
	d.Close()
	keys, cursor = scrapeUntil(col, cursor, 3*time.Second)
	if len(keys) != 1 || keys[0] != (alertKey{obs.EvAlertRaised, "member-down", dAdmin}) {
		t.Fatalf("kill transitions = %+v, want member-down raised on %s", keys, dAdmin)
	}

	// End state: member-down is the only firing alert, and the journal
	// holds no transitions beyond the ones each phase asserted.
	active := col.Health().Active()
	if len(active) != 1 || active[0].Rule != "member-down" || active[0].Member != dAdmin {
		t.Fatalf("final active set = %+v", active)
	}
	if keys, _ := drainAlerts(col.Health(), cursor); len(keys) != 0 {
		t.Fatalf("unasserted transitions: %+v", keys)
	}
}
