package bestpeer_test

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	bestpeer "bestpeer"
)

// Example builds a two-node network in-process, shares an object on one
// node and finds it from the other.
func Example() {
	dir, _ := os.MkdirTemp("", "bestpeer-example")
	defer os.RemoveAll(dir)
	nw := bestpeer.NewInProcNetwork()

	seller, _ := bestpeer.OpenStore(filepath.Join(dir, "seller.storm"), bestpeer.StoreOptions{})
	defer seller.Close()
	seller.Put(&bestpeer.Object{
		Name:     "giant-steps.mp3",
		Keywords: []string{"jazz"},
		Data:     []byte("…audio…"),
	})
	sellerNode, _ := bestpeer.NewNode(bestpeer.Config{
		Network: nw, ListenAddr: "seller", Store: seller,
	})
	defer sellerNode.Close()

	buyer, _ := bestpeer.OpenStore(filepath.Join(dir, "buyer.storm"), bestpeer.StoreOptions{})
	defer buyer.Close()
	buyerNode, _ := bestpeer.NewNode(bestpeer.Config{
		Network: nw, ListenAddr: "buyer", Store: buyer,
	})
	defer buyerNode.Close()
	buyerNode.SetPeers([]bestpeer.Peer{{Addr: sellerNode.Addr()}})

	res, _ := buyerNode.Query(&bestpeer.KeywordAgent{Query: "jazz"}, bestpeer.QueryOptions{
		Timeout: 2 * time.Second, WaitAnswers: 1,
	})
	var names []string
	for _, a := range res.Answers {
		names = append(names, a.Result.Name)
	}
	sort.Strings(names)
	fmt.Println(names)
	// Output: [giant-steps.mp3]
}
