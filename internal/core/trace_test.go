package core

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"bestpeer/internal/agent"
	"bestpeer/internal/obs"
	"bestpeer/internal/storm"
	"bestpeer/internal/topology"
	"bestpeer/internal/wire"
)

// waitForSpans polls the base's trace until it holds at least want spans
// (spans travel asynchronously on the return path).
func waitForSpans(t *testing.T, n *Node, id wire.MsgID, want int) *obs.QueryTrace {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		tr, ok := n.Trace(id)
		if ok && len(tr.Spans) >= want {
			return tr
		}
		if time.Now().After(deadline) {
			got := 0
			if ok {
				got = len(tr.Spans)
			}
			t.Fatalf("trace has %d spans, want >= %d", got, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestQueryTraceLineMatchesHops(t *testing.T) {
	// Ten nodes in a line, all matching: the trace must hold one span
	// per node whose hop number equals the answer's travelled distance,
	// and the tree must chain node i under node i-1.
	const n = 10
	c := newCluster(t, n, nil, func(i int, s *storm.Store) {
		s.Put(&storm.Object{Name: fmt.Sprintf("t-%d", i), Keywords: []string{"t"}})
	})
	c.wire(topology.Line(n))

	res, err := c.nodes[0].Query(&agent.KeywordAgent{Query: "t"}, QueryOptions{
		TTL: n, Timeout: 5 * time.Second, WaitAnswers: n, NoReconfigure: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != n {
		t.Fatalf("answers = %d, want %d", len(res.Answers), n)
	}
	tr := waitForSpans(t, c.nodes[0], res.ID, n)

	// Every answer's hop count must agree with that peer's span.
	spanByPeer := make(map[string]wire.TraceSpan)
	for _, s := range tr.Spans {
		if s.Drop != "" {
			t.Fatalf("unexpected drop span in a line: %+v", s)
		}
		spanByPeer[s.Peer] = s
	}
	for _, a := range res.Answers {
		s, ok := spanByPeer[a.PeerAddr]
		if !ok {
			t.Fatalf("no span from answering peer %s", a.PeerAddr)
		}
		if s.Hop != a.Hops {
			t.Fatalf("span hop %d != answer hops %d for %s", s.Hop, a.Hops, a.PeerAddr)
		}
		if s.Matches != 1 {
			t.Fatalf("span matches = %d, want 1 for %s", s.Matches, a.PeerAddr)
		}
	}
	if got := tr.MaxHop(); got != n-1 {
		t.Fatalf("MaxHop = %d, want %d", got, n-1)
	}

	// Each interior node forwarded to exactly one onward peer.
	for _, s := range tr.Spans {
		last := s.Peer == c.nodes[n-1].Addr()
		if !last && s.FanOut != 1 {
			t.Fatalf("span fan-out = %d, want 1 for %s", s.FanOut, s.Peer)
		}
		if last && s.FanOut != 0 {
			t.Fatalf("tail fan-out = %d, want 0", s.FanOut)
		}
	}

	// The tree is a single chain rooted at the base's local span.
	roots := tr.Tree()
	if len(roots) != 2 {
		// Base local span (parent "") and node-1's span (parent = base).
		t.Fatalf("roots = %d, want 2", len(roots))
	}
	var chain *obs.SpanNode
	for _, r := range roots {
		if r.Span.Peer != c.nodes[0].Addr() {
			chain = r
		}
	}
	depth := 0
	for chain != nil {
		depth++
		if len(chain.Children) > 1 {
			t.Fatalf("line trace branched at %s", chain.Span.Peer)
		}
		if len(chain.Children) == 0 {
			chain = nil
		} else {
			chain = chain.Children[0]
		}
	}
	if depth != n-1 {
		t.Fatalf("chain depth = %d, want %d", depth, n-1)
	}
}

func TestQueryTraceRecordsDuplicateDrops(t *testing.T) {
	// A triangle: both of the base's peers forward to each other, so each
	// receives a duplicate and reports a duplicate-drop span.
	c := newCluster(t, 3, nil, func(i int, s *storm.Store) {
		s.Put(&storm.Object{Name: fmt.Sprintf("d-%d", i), Keywords: []string{"d"}})
	})
	for i, node := range c.nodes {
		var peers []Peer
		for j := range c.nodes {
			if j != i {
				peers = append(peers, Peer{Addr: c.nodes[j].Addr()})
			}
		}
		node.SetPeers(peers)
	}

	res, err := c.nodes[0].Query(&agent.KeywordAgent{Query: "d"}, QueryOptions{
		Timeout: 3 * time.Second, WaitAnswers: 3, NoReconfigure: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 3 executed spans (base + two peers) + 2 duplicate drops.
	tr := waitForSpans(t, c.nodes[0], res.ID, 5)
	dups := 0
	for _, s := range tr.Spans {
		if s.Drop == "duplicate" {
			dups++
		}
	}
	if dups != 2 {
		t.Fatalf("duplicate-drop spans = %d, want 2 (%+v)", dups, tr.Spans)
	}
	// The drop metric agrees. (Which node drops depends on arrival
	// order — a peer's forward can even loop back to the base — so only
	// the network-wide total is deterministic.)
	total := uint64(0)
	for _, node := range c.nodes {
		total += node.Stats().DuplicatesDropped
	}
	if total != 2 {
		t.Fatalf("DuplicatesDropped across the network = %d, want 2", total)
	}
}

func TestNodeMetricsCoverAllFamilies(t *testing.T) {
	// One registry per node carries the node, transport, LIGLO-client and
	// StorM families, so a single scrape sees the whole stack.
	c := newCluster(t, 2, nil, nil)
	c.wire(topology.Line(2))
	if _, err := c.nodes[0].Query(&agent.KeywordAgent{Query: "kw1"}, QueryOptions{
		Timeout: 2 * time.Second, WaitAnswers: 1, NoReconfigure: true,
	}); err != nil {
		t.Fatal(err)
	}

	snap := c.nodes[0].Metrics().Snapshot()
	if got := snap.Value("bestpeer_node_queries_total"); got != 1 {
		t.Fatalf("queries_total = %v, want 1", got)
	}
	for _, fam := range []string{
		"bestpeer_node_agents_forwarded_total",
		"bestpeer_node_answer_hops",
		"bestpeer_transport_messages_sent_total",
		"bestpeer_transport_send_queue_depth",
		"bestpeer_liglo_client_calls_total",
		"bestpeer_storm_objects",
	} {
		if snap.Family(fam) == nil {
			t.Fatalf("family %s missing from node registry", fam)
		}
	}
	if got := snap.Value("bestpeer_transport_messages_sent_total"); got < 1 {
		t.Fatalf("transport sent total = %v, want >= 1", got)
	}
}

func TestServeAdminExposesNodeState(t *testing.T) {
	c := newCluster(t, 2, nil, nil)
	c.wire(topology.Line(2))
	node := c.nodes[0]

	srv, err := node.ServeAdmin("")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := node.ServeAdmin(""); err == nil {
		t.Fatal("second ServeAdmin should fail while the first is up")
	}

	res, err := node.Query(&agent.KeywordAgent{Query: "kw1"}, QueryOptions{
		Timeout: 2 * time.Second, WaitAnswers: 1, NoReconfigure: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitForSpans(t, node, res.ID, 2)

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(b)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	for _, fam := range []string{
		"bestpeer_node_queries_total",
		"bestpeer_transport_messages_sent_total",
		"bestpeer_liglo_client_calls_total",
		"bestpeer_storm_objects",
	} {
		if !strings.Contains(body, fam) {
			t.Fatalf("/metrics missing %s:\n%s", fam, body)
		}
	}
	if code, body = get("/healthz"); code != http.StatusOK || !strings.Contains(body, node.Addr()) {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, body = get("/peers"); code != http.StatusOK || !strings.Contains(body, c.nodes[1].Addr()) {
		t.Fatalf("/peers = %d %q", code, body)
	}
	if code, body = get("/queries/" + res.ID.String()); code != http.StatusOK || !strings.Contains(body, "tree") {
		t.Fatalf("/queries/<id> = %d %q", code, body)
	}

	// Close tears the admin endpoint down with the node.
	if err := node.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + srv.Addr() + "/healthz"); err == nil {
		t.Fatal("admin endpoint still serving after node close")
	}
}
