package observatory

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"bestpeer/internal/agent"
	"bestpeer/internal/core"
	"bestpeer/internal/storm"
	"bestpeer/internal/transport"
	"bestpeer/internal/transport/faultnet"
)

// TestChaosSnapshotAccountsForLoss is the observatory's core guarantee:
// under injected message loss AND journal ring overflow (tiny capacity),
// the fleet snapshot still reconstructs the final topology exactly, and
// every event the collector did not see is accounted as missed — never
// silently absent. For each member:
//
//	collected(member) + missed(member) == journal.Total(member)
func TestChaosSnapshotAccountsForLoss(t *testing.T) {
	const n = 4
	fab := faultnet.New(transport.NewInProc(), 11)
	nodes := make([]*core.Node, n)
	admins := make([]string, n)
	for i := 0; i < n; i++ {
		st, err := storm.Open(filepath.Join(t.TempDir(), fmt.Sprintf("n%d.storm", i)), storm.Options{})
		if err != nil {
			t.Fatal(err)
		}
		st.Put(&storm.Object{
			Name:     fmt.Sprintf("music-%d", i),
			Keywords: []string{"music"},
			Data:     []byte{byte(i)},
		})
		node, err := core.NewNode(core.Config{
			Network:    fab.Host(fmt.Sprintf("node-%d", i)),
			ListenAddr: fmt.Sprintf("node-%d", i),
			Store:      st,
			MaxPeers:   8,
			// Tiny ring: the run MUST overflow, so the test exercises the
			// missed-event accounting, not just the happy path.
			JournalCapacity: 8,
			Transport: transport.Options{
				DialTimeout:   250 * time.Millisecond,
				WriteTimeout:  250 * time.Millisecond,
				QueueSize:     256,
				FailThreshold: 2,
				BackoffBase:   50 * time.Millisecond,
				BackoffMax:    250 * time.Millisecond,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := node.ServeAdmin("")
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		admins[i] = srv.Addr()
		t.Cleanup(func() {
			node.Close()
			st.Close()
		})
	}
	// Ring overlay; reconfiguration is free to rewrite it mid-test.
	for i := range nodes {
		nodes[i].SetPeers([]core.Peer{
			{Addr: nodes[(i+1)%n].Addr()},
			{Addr: nodes[(i+n-1)%n].Addr()},
		})
	}

	fab.SetConfig(faultnet.Config{DropProb: 0.25})
	for round := 0; round < 3; round++ {
		if _, err := nodes[round%n].Query(&agent.KeywordAgent{Query: "music"}, core.QueryOptions{
			Timeout: 2 * time.Second, WaitAnswers: 2,
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Heal the network (admin HTTP is real TCP and was never faulted) and
	// wait for in-flight retries/suspicion churn to drain.
	fab.SetConfig(faultnet.Config{})

	totals := func() []uint64 {
		out := make([]uint64, n)
		for i, node := range nodes {
			out[i] = node.Journal().Total()
		}
		return out
	}
	col := NewCollector(admins...)
	var snap *FleetSnapshot
	deadline := time.Now().Add(5 * time.Second)
	for {
		before := totals()
		snap = col.Scrape()
		stable := true
		for i, after := range totals() {
			if after != before[i] {
				stable = false
			}
		}
		if stable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("journals never quiesced")
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Exact topology reconstruction from /peers, regardless of event loss.
	topo := snap.Topology()
	for i, node := range nodes {
		want := node.PeerAddrs()
		got := topo[node.Addr()]
		if len(got) != len(want) {
			t.Fatalf("node %d topology = %v, want %v", i, got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("node %d topology = %v, want %v", i, got, want)
			}
		}
	}

	// Loss accounting: collected + missed == journalled, per member.
	collected := make(map[string]uint64)
	for _, e := range snap.Events {
		collected[e.Node]++
	}
	var fleetMissed uint64
	overflowed := false
	for _, v := range snap.Nodes {
		if v.Err != "" {
			t.Fatalf("member %s scrape error: %s", v.Admin, v.Err)
		}
		var total uint64
		for _, node := range nodes {
			if node.Addr() == v.Node {
				total = node.Journal().Total()
			}
		}
		if total == 0 {
			t.Fatalf("member %s journalled nothing", v.Node)
		}
		if got := collected[v.Node] + v.EventsMissed; got != total {
			t.Fatalf("member %s: collected %d + missed %d = %d, journal total %d",
				v.Node, collected[v.Node], v.EventsMissed, got, total)
		}
		if v.EventsTotal != total {
			t.Fatalf("member %s reported total %d, journal says %d", v.Node, v.EventsTotal, total)
		}
		fleetMissed += v.EventsMissed
		if v.EventsMissed > 0 {
			overflowed = true
		}
	}
	if !overflowed {
		t.Fatal("no journal overflowed: the test did not exercise loss accounting")
	}
	if snap.Missed != fleetMissed {
		t.Fatalf("fleet missed %d, sum of members %d", snap.Missed, fleetMissed)
	}
}
