package qroute

import (
	"testing"
	"time"
)

// noExplore builds an index with exploration disabled so selection is
// deterministic.
func noExplore(opt RouteOptions) *RoutingIndex {
	opt.Epsilon = -1
	return NewRoutingIndex(opt)
}

func TestSelectFloodsWithoutHistory(t *testing.T) {
	x := noExplore(RouteOptions{})
	nbs := []string{"a", "b", "c"}
	p := x.Select([]string{"jazz"}, nbs, 7, t0)
	if p.Selective || p.Explored || len(p.Targets) != 3 || p.TTL != 7 {
		t.Fatalf("cold index must flood at full TTL: %+v", p)
	}
}

func TestSelectTopFAfterObservations(t *testing.T) {
	x := noExplore(RouteOptions{TopF: 2, MinScore: 1})
	nbs := []string{"a", "b", "c", "d"}
	// b produced the most answers, then a; c a little; d never.
	x.Observe([]string{"jazz"}, "b", 5, 3, t0)
	x.Observe([]string{"jazz"}, "a", 3, 2, t0)
	x.Observe([]string{"jazz"}, "c", 1, 4, t0)
	p := x.Select([]string{"jazz"}, nbs, 7, t0.Add(time.Second))
	if !p.Selective {
		t.Fatalf("confident index must go selective: %+v", p)
	}
	if len(p.Targets) != 2 || p.Targets[0] != "b" || p.Targets[1] != "a" {
		t.Fatalf("want top-2 [b a], got %v", p.Targets)
	}
	// TTL scoped to deepest observed answer (4) plus one hop of slack.
	if p.TTL != 5 {
		t.Fatalf("want scoped TTL 5, got %d", p.TTL)
	}
	// A different term has no history: flood.
	if p := x.Select([]string{"blues"}, nbs, 7, t0); p.Selective {
		t.Fatal("unknown term must flood")
	}
}

func TestSelectConfidenceDecays(t *testing.T) {
	x := noExplore(RouteOptions{HalfLife: time.Minute, MinScore: 2})
	nbs := []string{"a", "b"}
	x.Observe([]string{"jazz"}, "a", 4, 2, t0)
	if p := x.Select([]string{"jazz"}, nbs, 7, t0.Add(time.Second)); !p.Selective {
		t.Fatal("fresh history must be confident")
	}
	// After many half-lives the score sinks under MinScore: flood again.
	if p := x.Select([]string{"jazz"}, nbs, 7, t0.Add(10*time.Minute)); p.Selective {
		t.Fatal("decayed history must fall back to flood")
	}
}

func TestSelectEpsilonExploration(t *testing.T) {
	x := NewRoutingIndex(RouteOptions{Epsilon: 1.0}) // always explore
	x.Observe([]string{"jazz"}, "a", 10, 2, t0)
	p := x.Select([]string{"jazz"}, []string{"a", "b"}, 7, t0.Add(time.Second))
	if p.Selective || !p.Explored {
		t.Fatalf("epsilon=1 must always explore: %+v", p)
	}
	if len(p.Targets) != 2 || p.TTL != 7 {
		t.Fatal("exploration must be a full flood at full TTL")
	}
}

func TestObserveIgnoresUnattributed(t *testing.T) {
	x := noExplore(RouteOptions{})
	x.Observe([]string{"jazz"}, "", 5, 2, t0) // no via: nothing to credit
	x.Observe(nil, "a", 5, 2, t0)             // no terms
	x.Observe([]string{"jazz"}, "a", 0, 2, t0)
	if x.Terms() != 0 {
		t.Fatalf("unattributed observations must not create terms, have %d", x.Terms())
	}
}

func TestTermCapEvictsOldest(t *testing.T) {
	x := noExplore(RouteOptions{MaxTerms: 2, MinScore: 0.1})
	x.Observe([]string{"t1"}, "a", 1, 1, t0)
	x.Observe([]string{"t2"}, "a", 1, 1, t0.Add(time.Second))
	x.Observe([]string{"t3"}, "a", 1, 1, t0.Add(2*time.Second))
	if x.Terms() != 2 {
		t.Fatalf("index must hold MaxTerms entries, have %d", x.Terms())
	}
	// t1 (oldest) was evicted: it floods; t3 is still known.
	if p := x.Select([]string{"t1"}, []string{"a", "b"}, 7, t0.Add(3*time.Second)); p.Selective {
		t.Fatal("evicted term must flood")
	}
	if p := x.Select([]string{"t3"}, []string{"a", "b"}, 7, t0.Add(3*time.Second)); !p.Selective {
		t.Fatal("retained term must stay selective")
	}
}

func TestSelectIgnoresDepartedNeighbors(t *testing.T) {
	x := noExplore(RouteOptions{TopF: 2})
	x.Observe([]string{"jazz"}, "gone", 9, 2, t0)
	// The only scored neighbor left the peer set: candidates carry no
	// score, so the plan floods the live neighbors.
	p := x.Select([]string{"jazz"}, []string{"x", "y"}, 7, t0.Add(time.Second))
	if p.Selective || len(p.Targets) != 2 {
		t.Fatalf("want flood over live neighbors, got %+v", p)
	}
}
