package workload

import (
	"path/filepath"
	"testing"

	"bestpeer/internal/storm"
)

func smallSpec() *Spec {
	return &Spec{ObjectsPerNode: 60, ObjectSize: 64, Vocabulary: 10, Seed: 42}
}

func TestObjectsDeterministic(t *testing.T) {
	s := smallSpec()
	a := s.Objects(3)
	b := s.Objects(3)
	if len(a) != 60 || len(b) != 60 {
		t.Fatalf("len = %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Keywords[0] != b[i].Keywords[0] ||
			string(a[i].Data) != string(b[i].Data) {
			t.Fatalf("object %d differs between generations", i)
		}
	}
}

func TestObjectsDifferAcrossNodes(t *testing.T) {
	s := smallSpec()
	a, b := s.Objects(0), s.Objects(1)
	same := 0
	for i := range a {
		if a[i].Keywords[0] == b[i].Keywords[0] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("all keyword assignments identical across nodes")
	}
	if a[0].Name == b[0].Name {
		t.Fatal("object names collide across nodes")
	}
}

func TestObjectSizes(t *testing.T) {
	s := smallSpec()
	for _, o := range s.Objects(0) {
		if len(o.Data) != 64 {
			t.Fatalf("object %s has %d bytes", o.Name, len(o.Data))
		}
	}
}

func TestMatchCountAgreesWithStore(t *testing.T) {
	// The analytic count must equal what the real storage manager finds.
	s := smallSpec()
	for node := 0; node < 3; node++ {
		st, err := storm.Open(filepath.Join(t.TempDir(), "w.storm"), storm.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Populate(node, st); err != nil {
			t.Fatal(err)
		}
		for k := 0; k < s.Vocabulary; k++ {
			q := s.Keyword(k)
			hits, err := st.Match(q)
			if err != nil {
				t.Fatal(err)
			}
			if want := s.MatchCount(node, q); len(hits) != want {
				t.Fatalf("node %d query %s: store=%d analytic=%d", node, q, len(hits), want)
			}
		}
		st.Close()
	}
}

func TestKeywordCoverage(t *testing.T) {
	// Every node's matches over the whole vocabulary sum to all objects.
	s := smallSpec()
	total := 0
	for k := 0; k < s.Vocabulary; k++ {
		total += s.MatchCount(2, s.Keyword(k))
	}
	if total != s.ObjectsPerNode {
		t.Fatalf("vocabulary matches sum to %d, want %d", total, s.ObjectsPerNode)
	}
}

func TestPlantedKeywordOnlyAtHolders(t *testing.T) {
	s := smallSpec()
	s.PlantedKeyword = "needle"
	s.Holders = []int{2, 5}
	s.PlantedHits = 4

	for node := 0; node < 8; node++ {
		want := 0
		if node == 2 || node == 5 {
			want = 4
		}
		if got := s.MatchCount(node, "needle"); got != want {
			t.Fatalf("node %d planted matches = %d, want %d", node, got, want)
		}
	}
	// Agrees with the real store too.
	st, err := storm.Open(filepath.Join(t.TempDir(), "p.storm"), storm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := s.Populate(5, st); err != nil {
		t.Fatal(err)
	}
	hits, _ := st.Match("needle")
	if len(hits) != 4 {
		t.Fatalf("store planted matches = %d", len(hits))
	}
	// Holder still has its full object count.
	if st.Len() != s.ObjectsPerNode {
		t.Fatalf("holder object count = %d", st.Len())
	}
}

func TestTotalMatches(t *testing.T) {
	s := smallSpec()
	sum := 0
	for node := 0; node < 4; node++ {
		sum += s.MatchCount(node, s.Keyword(3))
	}
	if got := s.TotalMatches(4, s.Keyword(3)); got != sum {
		t.Fatalf("TotalMatches = %d, want %d", got, sum)
	}
}

func TestUniformQueriesDeterministicAndInVocab(t *testing.T) {
	s := smallSpec()
	a := s.UniformQueries(7, 50)
	b := s.UniformQueries(7, 50)
	vocab := map[string]bool{}
	for k := 0; k < s.Vocabulary; k++ {
		vocab[s.Keyword(k)] = true
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("uniform queries nondeterministic")
		}
		if !vocab[a[i]] {
			t.Fatalf("query %q outside vocabulary", a[i])
		}
	}
}

func TestZipfQueriesSkewed(t *testing.T) {
	s := smallSpec()
	qs := s.ZipfQueries(1, 2000, 1.5)
	counts := map[string]int{}
	for _, q := range qs {
		counts[q]++
	}
	// The most popular term should dominate a uniform share.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 2*2000/s.Vocabulary {
		t.Fatalf("zipf max share %d too flat", max)
	}
	// Invalid skew falls back instead of panicking.
	if got := s.ZipfQueries(1, 5, 0.5); len(got) != 5 {
		t.Fatal("fallback skew failed")
	}
}

func TestDefaultSpecMatchesPaper(t *testing.T) {
	s := Default(1)
	if s.ObjectsPerNode != 1000 || s.ObjectSize != 1024 {
		t.Fatalf("default spec %+v", s)
	}
}

func TestHolderDistribution(t *testing.T) {
	// Keyword assignment should be roughly balanced over the vocabulary.
	s := &Spec{ObjectsPerNode: 1000, ObjectSize: 8, Vocabulary: 10, Seed: 9}
	counts := make([]int, s.Vocabulary)
	for i := 0; i < s.ObjectsPerNode; i++ {
		counts[s.keywordIndex(0, i)]++
	}
	for k, c := range counts {
		if c < 50 || c > 200 { // expected 100 each
			t.Fatalf("keyword %d count %d badly skewed", k, c)
		}
	}
}
