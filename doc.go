// Package bestpeer is a Go implementation of BestPeer, the
// self-configurable peer-to-peer system of Ng, Ooi and Tan (ICDE 2002).
//
// A BestPeer node couples four subsystems:
//
//   - a persistent object storage manager (the StorM substitute) holding
//     the node's sharable data behind a buffer pool with pluggable
//     replacement strategies;
//   - a mobile-agent engine: queries are agents that are cloned to every
//     direct peer, execute at each peer's site against its store, and
//     return answers directly to the querying node;
//   - a self-configuring peer set: after each query, a pluggable strategy
//     (MaxCount, MinHops, …) promotes the most beneficial observed peers
//     to direct peers;
//   - a LIGLO client: registration with Location-Independent GLObal
//     names Lookup servers gives the node a BPID that survives address
//     changes.
//
// This package is a façade re-exporting the library's public surface;
// the implementation lives under internal/.
//
// Quick start:
//
//	store, _ := bestpeer.OpenStore("data.storm", bestpeer.StoreOptions{})
//	node, _ := bestpeer.NewNode(bestpeer.Config{
//		Network: bestpeer.TCPNetwork(),
//		Store:   store,
//	})
//	node.Join([]string{"liglo.example.org:7100"})
//	res, _ := node.Query(&bestpeer.KeywordAgent{Query: "jazz"},
//		bestpeer.QueryOptions{})
//	for _, a := range res.Answers {
//		fmt.Println(a.Result.Name, "from", a.PeerAddr)
//	}
package bestpeer

import (
	"bestpeer/internal/agent"
	"bestpeer/internal/core"
	"bestpeer/internal/liglo"
	"bestpeer/internal/reconfig"
	"bestpeer/internal/storm"
	"bestpeer/internal/transport"
	"bestpeer/internal/wire"
)

// Node types.
type (
	// Node is a live BestPeer participant.
	Node = core.Node
	// Config configures a Node.
	Config = core.Config
	// Peer is a directly connected peer.
	Peer = core.Peer
	// QueryOptions tunes one query broadcast.
	QueryOptions = core.QueryOptions
	// QueryResult is everything a query produced.
	QueryResult = core.QueryResult
	// Answer is one result attributed to the peer that produced it.
	Answer = core.Answer
	// Stats counts node activity.
	Stats = core.Stats
)

// NewNode starts a node with the given configuration.
func NewNode(cfg Config) (*Node, error) { return core.NewNode(cfg) }

// Identity types.
type (
	// BPID is a BestPeer global identity issued by a LIGLO server.
	BPID = wire.BPID
)

// Agent types.
type (
	// Agent is a mobile task executed at peers' sites.
	Agent = agent.Agent
	// Result is one answer produced by an agent.
	Result = agent.Result
	// KeywordAgent searches peers' stores for a keyword.
	KeywordAgent = agent.KeywordAgent
	// FilterAgent ships a filter expression for remote evaluation.
	FilterAgent = agent.FilterAgent
	// DigestAgent returns per-match summaries instead of data.
	DigestAgent = agent.DigestAgent
	// TopKAgent returns only the K largest matches per peer.
	TopKAgent = agent.TopKAgent
	// Registry tracks a node's agent classes.
	Registry = agent.Registry
	// ActiveSet holds a node's active elements.
	ActiveSet = agent.ActiveSet
	// LevelFilter is the built-in line-granular access filter.
	LevelFilter = agent.LevelFilter
)

// NewRegistry returns an empty agent class registry.
func NewRegistry() *Registry { return agent.NewRegistry() }

// RegisterBuiltins installs the built-in agent classes.
func RegisterBuiltins(r *Registry) error { return agent.RegisterBuiltins(r) }

// NewActiveSet returns an empty active-element set.
func NewActiveSet() *ActiveSet { return agent.NewActiveSet() }

// CompileFilter parses a filter expression (see FilterAgent).
func CompileFilter(src string) (agent.Predicate, error) { return agent.CompileFilter(src) }

// Storage types.
type (
	// Store is the node-local persistent object store.
	Store = storm.Store
	// Object is the unit of sharable data.
	Object = storm.Object
	// StoreOptions configures a Store.
	StoreOptions = storm.Options
)

// Object kinds.
const (
	// StaticObject is a plain file shared in its entirety.
	StaticObject = storm.StaticObject
	// ActiveObject couples data with an owner-defined access filter.
	ActiveObject = storm.ActiveObject
)

// OpenStore opens (or creates) the object store at path.
func OpenStore(path string, opts StoreOptions) (*Store, error) { return storm.Open(path, opts) }

// IndexedStore couples a Store with an inverted keyword index that
// accelerates repeated Match queries.
type IndexedStore = storm.IndexedStore

// NewIndexedStore wraps a store, building the index from its contents.
func NewIndexedStore(s *Store) (*IndexedStore, error) { return storm.NewIndexedStore(s) }

// PersistentIndex is the durable on-disk inverted keyword index enabled
// by StoreOptions.PersistentIndex.
type PersistentIndex = storm.PersistentIndex

// Reconfiguration strategies.
type (
	// Strategy ranks observed peers after a query.
	Strategy = reconfig.Strategy
	// MaxCount keeps the peers returning the most answers.
	MaxCount = reconfig.MaxCount
	// MinHops keeps far-away answer providers to shorten future paths.
	MinHops = reconfig.MinHops
	// StaticPeers disables reconfiguration.
	StaticPeers = reconfig.Static
)

// StrategyByName resolves "maxcount", "minhops" or "static".
func StrategyByName(name string) Strategy { return reconfig.ByName(name) }

// Networking.
type (
	// Network abstracts connectivity (TCP or in-process).
	Network = transport.Network
	// InProcNetwork is an in-memory network for tests and examples.
	InProcNetwork = transport.InProc
)

// TCPNetwork returns the real-TCP network.
func TCPNetwork() Network { return transport.TCP{} }

// NewInProcNetwork returns an isolated in-memory network.
func NewInProcNetwork() *InProcNetwork { return transport.NewInProc() }

// LIGLO server and client.
type (
	// LigloServer issues BPIDs and tracks member addresses.
	LigloServer = liglo.Server
	// LigloServerConfig tunes a LigloServer.
	LigloServerConfig = liglo.ServerConfig
	// LigloClient talks to LIGLO servers.
	LigloClient = liglo.Client
	// PeerInfo pairs a member's BPID with its last known address.
	PeerInfo = liglo.PeerInfo
)

// NewLigloServer starts a LIGLO server on the network.
func NewLigloServer(n Network, addr string, cfg LigloServerConfig) (*LigloServer, error) {
	return liglo.NewServer(n, addr, cfg)
}

// NewLigloClient returns a client that dials over the given network.
func NewLigloClient(n Network) *LigloClient { return liglo.NewClient(n) }
