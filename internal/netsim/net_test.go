package netsim

import (
	"testing"
	"time"

	"bestpeer/internal/wire"
)

func testEnv(kind wire.Kind, body int) *wire.Envelope {
	return &wire.Envelope{Kind: kind, ID: wire.NewMsgID(), TTL: 7, Body: make([]byte, body)}
}

func TestLinkTransferTime(t *testing.T) {
	l := Link{Bandwidth: 1000} // 1000 B/s
	if got := l.TransferTime(500); got != 500*time.Millisecond {
		t.Fatalf("transfer time = %v", got)
	}
	if got := (Link{}).TransferTime(1 << 20); got != 0 {
		t.Fatalf("infinite bandwidth transfer = %v", got)
	}
	if got := l.TransferTime(0); got != 0 {
		t.Fatalf("zero-byte transfer = %v", got)
	}
	if got := l.TransferTime(-5); got != 0 {
		t.Fatalf("negative size transfer = %v", got)
	}
}

func TestSendDeliversWithLatencyAndBandwidth(t *testing.T) {
	s := NewSim()
	// 10ms latency, 1 MB/s.
	n := NewNetwork(s, Link{Latency: 10 * time.Millisecond, Bandwidth: 1 << 20})
	n.AddHost("a", HostConfig{})
	b := n.AddHost("b", HostConfig{})

	var deliveredAt time.Duration
	var got *wire.Envelope
	b.SetHandler(func(env *wire.Envelope) {
		deliveredAt = s.Now()
		got = env
	})

	env := testEnv(wire.KindAgent, 0)
	n.Send("a", "b", env, 1<<20) // exactly 1 second of serialization per side
	s.Run()

	want := time.Second + 10*time.Millisecond + time.Second
	if deliveredAt != want {
		t.Fatalf("delivered at %v, want %v", deliveredAt, want)
	}
	if got == nil || got.ID != env.ID {
		t.Fatal("wrong envelope delivered")
	}
}

func TestSendDefaultsToWireSize(t *testing.T) {
	s := NewSim()
	n := NewNetwork(s, Link{Bandwidth: 0})
	a := n.AddHost("a", HostConfig{})
	b := n.AddHost("b", HostConfig{})
	b.SetHandler(func(env *wire.Envelope) {})
	env := testEnv(wire.KindResult, 100)
	n.Send("a", "b", env, 0)
	s.Run()
	if a.BytesSent != uint64(env.WireSize()) {
		t.Fatalf("bytes sent = %d, want %d", a.BytesSent, env.WireSize())
	}
	if b.BytesRecv != a.BytesSent || b.MsgsRecvd != 1 || a.MsgsSent != 1 {
		t.Fatalf("stats: %+v %+v", a, b)
	}
	if n.MsgsDelivered != 1 || n.BytesDelivered != a.BytesSent {
		t.Fatalf("network stats: %d msgs %d bytes", n.MsgsDelivered, n.BytesDelivered)
	}
}

func TestUplinkSerializesConcurrentSends(t *testing.T) {
	s := NewSim()
	n := NewNetwork(s, Link{Bandwidth: 1000}) // 1000 B/s, no latency
	n.AddHost("src", HostConfig{})
	var times []time.Duration
	for _, name := range []string{"d1", "d2", "d3"} {
		h := n.AddHost(name, HostConfig{})
		h.SetHandler(func(env *wire.Envelope) { times = append(times, s.Now()) })
	}
	// Three 1000-byte messages from the same host: uplink serializes them
	// at 1s each, so deliveries land at 2s, 3s, 4s (1s uplink queueing + 1s
	// downlink each, downlinks are distinct hosts so they don't queue).
	for _, name := range []string{"d1", "d2", "d3"} {
		n.Send("src", name, testEnv(wire.KindAgent, 0), 1000)
	}
	s.Run()
	want := []time.Duration{2 * time.Second, 3 * time.Second, 4 * time.Second}
	if len(times) != 3 {
		t.Fatalf("deliveries = %d", len(times))
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("delivery %d at %v, want %v", i, times[i], want[i])
		}
	}
}

func TestDownlinkSerializesFanIn(t *testing.T) {
	s := NewSim()
	n := NewNetwork(s, Link{Bandwidth: 1000})
	var times []time.Duration
	dst := n.AddHost("dst", HostConfig{})
	dst.SetHandler(func(env *wire.Envelope) { times = append(times, s.Now()) })
	for _, name := range []string{"s1", "s2", "s3"} {
		n.AddHost(name, HostConfig{})
		n.Send(name, "dst", testEnv(wire.KindResult, 0), 1000)
	}
	s.Run()
	// Uplinks run in parallel (distinct hosts) finishing at 1s; the shared
	// downlink then serializes: deliveries at 2s, 3s, 4s.
	want := []time.Duration{2 * time.Second, 3 * time.Second, 4 * time.Second}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("fan-in delivery %d at %v, want %v", i, times[i], want[i])
		}
	}
}

func TestPerPairLinkOverride(t *testing.T) {
	s := NewSim()
	n := NewNetwork(s, Link{Latency: time.Hour})
	n.AddHost("a", HostConfig{})
	b := n.AddHost("b", HostConfig{})
	var at time.Duration
	b.SetHandler(func(env *wire.Envelope) { at = s.Now() })
	n.SetLink("a", "b", Link{Latency: time.Millisecond})
	n.Send("a", "b", testEnv(wire.KindAgent, 0), 10)
	s.Run()
	if at != time.Millisecond {
		t.Fatalf("override link ignored: delivered at %v", at)
	}
}

func TestSingleThreadHostSerializesExec(t *testing.T) {
	s := NewSim()
	n := NewNetwork(s, Link{})
	h := n.AddHost("a", HostConfig{Threads: 1})
	var ends []time.Duration
	h.Exec(10*time.Millisecond, func() { ends = append(ends, s.Now()) })
	h.Exec(10*time.Millisecond, func() { ends = append(ends, s.Now()) })
	s.Run()
	if ends[0] != 10*time.Millisecond || ends[1] != 20*time.Millisecond {
		t.Fatalf("single-thread exec times %v", ends)
	}
}

func TestMultiThreadHostParallelExec(t *testing.T) {
	s := NewSim()
	n := NewNetwork(s, Link{})
	h := n.AddHost("a", HostConfig{Threads: 4})
	var ends []time.Duration
	for i := 0; i < 4; i++ {
		h.Exec(10*time.Millisecond, func() { ends = append(ends, s.Now()) })
	}
	s.Run()
	for i, e := range ends {
		if e != 10*time.Millisecond {
			t.Fatalf("thread %d finished at %v", i, e)
		}
	}
}

func TestDuplicateHostPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AddHost did not panic")
		}
	}()
	s := NewSim()
	n := NewNetwork(s, Link{})
	n.AddHost("a", HostConfig{})
	n.AddHost("a", HostConfig{})
}

func TestSendUnknownHostPanics(t *testing.T) {
	s := NewSim()
	n := NewNetwork(s, Link{})
	n.AddHost("a", HostConfig{})
	for _, pair := range [][2]string{{"a", "nope"}, {"nope", "a"}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("send %v did not panic", pair)
				}
			}()
			n.Send(pair[0], pair[1], testEnv(wire.KindAgent, 0), 1)
		}()
	}
}

func TestHostLookup(t *testing.T) {
	s := NewSim()
	n := NewNetwork(s, Link{})
	h := n.AddHost("a", HostConfig{})
	if n.Host("a") != h || n.Host("b") != nil || n.Hosts() != 1 {
		t.Fatal("host lookup broken")
	}
	if h.Addr() != "a" {
		t.Fatalf("Addr = %q", h.Addr())
	}
	if n.Sim() != s {
		t.Fatal("Sim accessor broken")
	}
}
