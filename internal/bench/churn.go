package bench

import (
	"sort"
	"strconv"
	"time"

	"bestpeer/internal/netsim"
	"bestpeer/internal/obs"
	"bestpeer/internal/observatory"
	"bestpeer/internal/qroute"
	"bestpeer/internal/workload"
)

// ChurnParams configures the churn-at-scale experiment: a mesh of Nodes
// hosts under continuous session churn plus one correlated failure
// burst, queried from a fixed set of bases while the overlay repairs
// itself. The defaults reproduce the committed BENCH figure (10k nodes);
// tests scale Nodes and Horizon down.
type ChurnParams struct {
	// Nodes is the fleet size; Degree the target direct-peer count.
	Nodes  int
	Degree int
	// Latency is the fixed per-hop mesh latency.
	Latency time.Duration
	// Horizon bounds the simulated run.
	Horizon time.Duration
	// MeanSession / MeanDowntime parameterize the exponential session
	// churn; GracefulFrac of session ends are announced leaves, the rest
	// crashes.
	MeanSession  time.Duration
	MeanDowntime time.Duration
	GracefulFrac float64
	// BurstAt / BurstFrac schedule the correlated failure burst.
	BurstAt   time.Duration
	BurstFrac float64
	// SampleEvery is the query-round cadence; CollectAfter is how long a
	// round waits for answers before closing (must exceed the answer
	// round trip and stay under SampleEvery).
	SampleEvery  time.Duration
	CollectAfter time.Duration
	// RepairEvery / ProbeTimeout drive the failure-detector repair loop
	// of the schemes that reconfigure; SweepEvery is the registry's lag
	// before it notices crashed (non-deregistered) members.
	RepairEvery  time.Duration
	ProbeTimeout time.Duration
	SweepEvery   time.Duration
	// Bases issue queries (node ids [0, Bases), excluded from churn);
	// Keywords are spread over HoldersPerKeyword holder nodes each.
	Bases             int
	Keywords          int
	HoldersPerKeyword int
	// TTL is the query hop budget.
	TTL int
}

// DefaultChurnParams is the committed-figure configuration: 10k nodes
// under churn that keeps ~25% of the fleet offline at steady state, with
// a 10% correlated failure burst mid-run.
func DefaultChurnParams() ChurnParams {
	return ChurnParams{
		Nodes: 10_000, Degree: 4, Latency: 10 * time.Millisecond,
		Horizon:     120 * time.Second,
		MeanSession: 60 * time.Second, MeanDowntime: 20 * time.Second,
		GracefulFrac: 0.5,
		BurstAt:      60 * time.Second, BurstFrac: 0.25,
		SampleEvery: 3 * time.Second, CollectAfter: time.Second,
		RepairEvery: 2 * time.Second, ProbeTimeout: 500 * time.Millisecond,
		SweepEvery: 5 * time.Second,
		Bases:      16, Keywords: 8, HoldersPerKeyword: 40,
		TTL: 9,
	}
}

// ChurnSample is one query round's aggregate view of the fleet.
type ChurnSample struct {
	Round int     `json:"round"`
	TMS   float64 `json:"t_ms"`
	// Alive is the live host count when the round's queries were issued.
	Alive int `json:"alive"`
	// Recall is mean (answers / alive holders) across the round's
	// queries, cache-served ones included.
	Recall float64 `json:"recall"`
	// MeanHops is the mean overlay depth of the round's network answers
	// (cache hits contribute no hop samples).
	MeanHops float64 `json:"mean_hops"`
	// Msgs is mesh messages sent between this round's issue and close,
	// query and maintenance traffic alike.
	Msgs uint64 `json:"msgs"`
	// CacheHitRate is the cumulative base answer-cache hit rate (zero
	// for schemes without an engine).
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// ChurnSchemeRun is one scheme's full run.
type ChurnSchemeRun struct {
	Scheme  string        `json:"scheme"`
	Samples []ChurnSample `json:"samples"`
	// MeanRecall averages every sample; FinalRecall is the last one.
	MeanRecall  float64 `json:"mean_recall"`
	FinalRecall float64 `json:"final_recall"`
	// PreBurstRecall is the mean recall before the burst;
	// PostBurstMinRecall the worst sample after it.
	PreBurstRecall     float64 `json:"pre_burst_recall"`
	PostBurstMinRecall float64 `json:"post_burst_min_recall"`
	// RepairConvergenceRounds counts query rounds from the burst until
	// recall is back within 2 points of the pre-burst mean (-1: never);
	// RepairConvergenceMS is the same gap in simulated time.
	RepairConvergenceRounds int     `json:"repair_convergence_rounds"`
	RepairConvergenceMS     float64 `json:"repair_convergence_ms"`
	// Msgs totals mesh messages across the run.
	Msgs uint64 `json:"msgs"`
	// Repairs counts edges backfilled by the repair loop; HintAdopts the
	// subset seeded by Depart replacement hints; DepartsDelivered the
	// graceful-leave notices received.
	Repairs          uint64 `json:"repairs"`
	HintAdopts       uint64 `json:"hint_adopts"`
	DepartsDelivered uint64 `json:"departs_delivered"`
	// CacheHits / CacheLookups total the bases' answer-cache traffic.
	CacheHits    uint64 `json:"cache_hits"`
	CacheLookups uint64 `json:"cache_lookups"`
	// Health is the run's derived-signal timeline and alert transitions,
	// recorded through the observatory health engine at simulated time.
	Health *HealthTimeline `json:"health,omitempty"`
}

// HealthPoint is one health-series sample on the simulated clock.
type HealthPoint struct {
	TMS float64 `json:"t_ms"`
	V   float64 `json:"v"`
}

// HealthAlert is one alert transition on the simulated clock.
type HealthAlert struct {
	TMS       float64 `json:"t_ms"`
	Rule      string  `json:"rule"`
	Series    string  `json:"series"`
	Firing    bool    `json:"firing"`
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
}

// HealthTimeline is one scheme's full health record: every derived
// series plus the rule transitions, straight from the observatory
// pipeline the live fleet uses.
type HealthTimeline struct {
	Series map[string][]HealthPoint `json:"series"`
	Alerts []HealthAlert            `json:"alerts"`
}

// AlertsFor returns the timeline's transitions for one rule, in order.
func (tl *HealthTimeline) AlertsFor(rule string) []HealthAlert {
	var out []HealthAlert
	for _, a := range tl.Alerts {
		if a.Rule == rule {
			out = append(out, a)
		}
	}
	return out
}

// churnHealthRules scales the bench rule set from the experiment's own
// parameters. The repair-surge threshold is anchored to the steady
// churn repair rate — nodes/MeanSession departures per second, each
// costing up to Degree backfilled edges — so only the correlated burst
// can cross it.
func churnHealthRules(p ChurnParams) []observatory.Rule {
	steady := float64(p.Nodes) / p.MeanSession.Seconds() * float64(p.Degree)
	return []observatory.Rule{
		{Name: "recall-floor", Series: "recall", Below: true,
			Fire: 0.93, Clear: 0.95},
		{Name: "repair-surge", Series: observatory.SigRepairAddedPerS,
			Fire: 1.5 * steady, Clear: steady, ClearHold: p.SampleEvery},
		{Name: "cache-hit-collapse", Series: observatory.SigCacheHitRate, Below: true,
			Fire: 0.05, Clear: 0.15, Hold: 2 * p.SampleEvery},
	}
}

// ChurnResult is the churn experiment's machine-readable output.
type ChurnResult struct {
	Nodes     int              `json:"nodes"`
	Degree    int              `json:"degree"`
	HorizonMS float64          `json:"horizon_ms"`
	BurstAtMS float64          `json:"burst_at_ms"`
	BurstFrac float64          `json:"burst_frac"`
	Schemes   []ChurnSchemeRun `json:"schemes"`
}

// SchemeByName returns the named scheme run, or nil.
func (r *ChurnResult) SchemeByName(name string) *ChurnSchemeRun {
	for i := range r.Schemes {
		if r.Schemes[i].Scheme == name {
			return &r.Schemes[i]
		}
	}
	return nil
}

// Mesh message kinds of the churn protocol model.
const (
	cmQuery int32 = iota + 1
	cmAnswer
	cmProbe
	cmProbeOK
	cmDepart
)

// aliveRegistry is the model's LIGLO: the set of members it believes
// online, with O(1) add, swap-remove and uniform sampling. Graceful
// leaves deregister immediately; crashes linger until a sweep notices.
type aliveRegistry struct {
	list []int32
	pos  []int32 // node -> index in list, -1 when absent
}

func newAliveRegistry(n int) *aliveRegistry {
	r := &aliveRegistry{list: make([]int32, n), pos: make([]int32, n)}
	for i := range r.list {
		r.list[i] = int32(i)
		r.pos[i] = int32(i)
	}
	return r
}

func (r *aliveRegistry) Add(i int32) {
	if r.pos[i] >= 0 {
		return
	}
	r.pos[i] = int32(len(r.list))
	r.list = append(r.list, i)
}

func (r *aliveRegistry) Remove(i int32) {
	p := r.pos[i]
	if p < 0 {
		return
	}
	last := r.list[len(r.list)-1]
	r.list[p] = last
	r.pos[last] = p
	r.list = r.list[:len(r.list)-1]
	r.pos[i] = -1
}

// Sample draws a uniform member other than not; ok is false when none
// exists.
func (r *aliveRegistry) Sample(rng interface{ Intn(int) int }, not int32) (int32, bool) {
	for attempt := 0; attempt < 8; attempt++ {
		if len(r.list) == 0 || (len(r.list) == 1 && r.list[0] == not) {
			return 0, false
		}
		j := r.list[rng.Intn(len(r.list))]
		if j != not {
			return j, true
		}
	}
	return 0, false
}

// ansRec is one attributed answer (for routing-index feedback).
type ansRec struct{ holder, first, hops int32 }

// churnQuery is one in-flight query round member.
type churnQuery struct {
	kw       int
	denom    int
	answers  int
	hopSum   int
	wantRecs bool
	closed   bool
	recs     []ansRec
	eng      *qroute.Engine // the issuing base's engine, nil without qroute
	// visited is a per-node dedup bitset: queries run concurrently, so a
	// shared last-qid stamp would thrash and re-process.
	visited []uint64
}

func (q *churnQuery) visit(node int32) bool {
	w, b := node>>6, uint(node&63)
	if q.visited[w]&(1<<b) != 0 {
		return false
	}
	q.visited[w] |= 1 << b
	return true
}

// churnModel is one scheme's event-driven fleet: integer-indexed
// adjacency over a netsim.Mesh, a probe/backfill repair loop, graceful
// Depart notices with replacement hints, and (for the reconfigurable
// scheme) a real qroute engine per base. Schemes:
//
//   - "bpr": repair loop + Depart hints + answer cache and learned
//     selective routing at the bases,
//   - "flood": repair loop, every query floods (the recall reference),
//   - "bps": static — Departs remove edges but nothing probes or
//     backfills, so the overlay erodes under churn.
type churnModel struct {
	p      ChurnParams
	scheme string
	repair bool
	sim    *netsim.Sim
	mesh   *netsim.Mesh
	reg    *aliveRegistry

	names   []string
	adj     [][]int32
	stamp   [][]int32 // probe round per edge, parallel to adj
	hint    []int32   // stashed Depart replacement hint, -1 when none
	holdKw  []int16   // node -> keyword it holds, -1 when none
	byKw    [][]int32 // keyword -> holder nodes (fixed membership)
	baseIdx []int16   // node -> base slot, -1 when not a base
	bases   []int32
	engines []*qroute.Engine

	queries    []*churnQuery
	probeRound int32
	run        ChurnSchemeRun

	// health folds each closed round into the observatory rule engine on
	// the simulated clock; prev* carry the last round's cumulative
	// counters so the signals are per-window rates, not running totals.
	health           *observatory.Health
	prevRepairs      uint64
	prevCacheHits    uint64
	prevCacheLookups uint64
}

func (m *churnModel) engineOf(node int32) *qroute.Engine {
	if bi := m.baseIdx[node]; bi >= 0 {
		return m.engines[bi]
	}
	return nil
}

// simTime maps simulated time onto the wall-clock the qroute engine
// expects.
func (m *churnModel) simTime() time.Time {
	return time.Unix(0, 0).UTC().Add(m.sim.Now())
}

func (m *churnModel) kwName(kw int) string { return "kw" + strconv.Itoa(kw) }

func (m *churnModel) hasEdge(i, j int32) bool {
	for _, nb := range m.adj[i] {
		if nb == j {
			return true
		}
	}
	return false
}

// addEdge links i->j (and the back edge, degree cap permitting, while j
// is alive to maintain it).
func (m *churnModel) addEdge(i, j int32) {
	m.adj[i] = append(m.adj[i], j)
	m.stamp[i] = append(m.stamp[i], 0)
	if m.mesh.Alive(j) && len(m.adj[j]) < 2*m.p.Degree && !m.hasEdge(j, i) {
		m.adj[j] = append(m.adj[j], i)
		m.stamp[j] = append(m.stamp[j], 0)
	}
}

func (m *churnModel) removeAt(i int32, idx int) {
	last := len(m.adj[i]) - 1
	m.adj[i][idx] = m.adj[i][last]
	m.stamp[i][idx] = m.stamp[i][last]
	m.adj[i] = m.adj[i][:last]
	m.stamp[i] = m.stamp[i][:last]
}

func (m *churnModel) removeNeighbor(i, j int32) {
	for idx, nb := range m.adj[i] {
		if nb == j {
			m.removeAt(i, idx)
			return
		}
	}
}

func newChurnModel(p ChurnParams, scheme string, seed int64) *churnModel {
	m := &churnModel{
		p:      p,
		scheme: scheme,
		repair: scheme != "bps",
		sim:    netsim.NewSimSeeded(seed),
		reg:    newAliveRegistry(p.Nodes),
		health: observatory.NewHealth(churnHealthRules(p), 256, 1024),
	}
	m.mesh = netsim.NewMesh(m.sim, p.Nodes, p.Latency)
	m.mesh.SetHandler(m.handle)
	m.names = make([]string, p.Nodes)
	m.adj = make([][]int32, p.Nodes)
	m.stamp = make([][]int32, p.Nodes)
	m.hint = make([]int32, p.Nodes)
	m.holdKw = make([]int16, p.Nodes)
	m.baseIdx = make([]int16, p.Nodes)
	for i := 0; i < p.Nodes; i++ {
		m.names[i] = "n" + strconv.Itoa(i)
		m.hint[i] = -1
		m.holdKw[i] = -1
		m.baseIdx[i] = -1
	}

	rng := m.sim.Rand()
	// Random overlay at target mean degree: every node initiates
	// Degree/2 edges, each mirrored by a back edge.
	half := p.Degree / 2
	if half < 1 {
		half = 1
	}
	for i := 0; i < p.Nodes; i++ {
		for k := 0; k < half; k++ {
			j := int32(rng.Intn(p.Nodes))
			if j != int32(i) && !m.hasEdge(int32(i), j) {
				m.addEdge(int32(i), j)
			}
		}
	}

	// Bases are nodes [0, Bases) — excluded from churn and from holder
	// sets, so recall measures the network, not base lifecycle.
	m.bases = make([]int32, p.Bases)
	m.engines = make([]*qroute.Engine, p.Bases)
	for bi := range m.bases {
		m.bases[bi] = int32(bi)
		m.baseIdx[bi] = int16(bi)
		if scheme == "bpr" {
			m.engines[bi] = qroute.NewEngine(qroute.Options{
				Enable: true,
				Cache:  qroute.CacheOptions{TTL: 2 * p.SampleEvery},
				Route: qroute.RouteOptions{
					Epsilon:  -1, // deterministic message counts
					TopF:     4,
					MinScore: 2.0,
					Seed:     seed,
				},
			}, nil)
		}
	}

	m.byKw = make([][]int32, p.Keywords)
	for kw := 0; kw < p.Keywords; kw++ {
		for len(m.byKw[kw]) < p.HoldersPerKeyword {
			j := int32(p.Bases + rng.Intn(p.Nodes-p.Bases))
			if m.holdKw[j] < 0 {
				m.holdKw[j] = int16(kw)
				m.byKw[kw] = append(m.byKw[kw], j)
			}
		}
	}
	return m
}

// handle dispatches one delivered mesh message. Query payload packing:
// A = qid, B = remaining TTL (low byte) | depth (rest), C = origin (low
// 16 bits) | first-hop neighbor (rest) — which caps the model at 32k
// nodes, comfortably above the 10k target.
func (m *churnModel) handle(to int32, msg netsim.MeshMsg) {
	switch msg.Kind {
	case cmQuery:
		qid := msg.A
		q := m.queries[qid-1]
		if !q.visit(to) {
			return
		}
		ttl := msg.B & 0xff
		depth := msg.B >> 8
		if int(m.holdKw[to]) == q.kw {
			// Answers return out-of-network: straight back to the base.
			m.mesh.Send(msg.C&0xffff, netsim.MeshMsg{
				From: to, Kind: cmAnswer, A: qid, B: depth, C: msg.C >> 16,
			})
		}
		if ttl > 1 {
			fwd := netsim.MeshMsg{
				From: to, Kind: cmQuery, A: qid,
				B: (ttl - 1) | (depth+1)<<8, C: msg.C,
			}
			for _, nb := range m.adj[to] {
				if nb != msg.From {
					m.mesh.Send(nb, fwd)
				}
			}
		}
	case cmAnswer:
		q := m.queries[msg.A-1]
		if q.closed {
			return
		}
		q.answers++
		q.hopSum += int(msg.B)
		if q.wantRecs {
			q.recs = append(q.recs, ansRec{holder: msg.From, first: msg.C, hops: msg.B})
		}
	case cmProbe:
		m.mesh.Send(msg.From, netsim.MeshMsg{From: to, Kind: cmProbeOK, A: msg.A})
	case cmProbeOK:
		for idx, nb := range m.adj[to] {
			if nb == msg.From {
				if m.stamp[to][idx] == msg.A {
					m.stamp[to][idx] = 0
				}
				return
			}
		}
	case cmDepart:
		m.removeNeighbor(to, msg.From)
		m.run.DepartsDelivered++
		if m.scheme != "bpr" {
			return
		}
		if eng := m.engineOf(to); eng != nil {
			eng.ForgetNeighbor(m.names[msg.From])
		}
		if h := msg.A; h >= 0 && h != to {
			if len(m.adj[to]) < m.p.Degree && !m.hasEdge(to, h) {
				m.addEdge(to, h)
				m.run.HintAdopts++
			} else if m.hint[to] < 0 {
				m.hint[to] = h
			}
		}
	}
}

// apply replays one churn event. Ops are idempotent against state (a
// merged trace may crash an already-offline node).
func (m *churnModel) apply(ev workload.ChurnEvent) {
	node := int32(ev.Node)
	switch ev.Op {
	case workload.OpJoin:
		if m.mesh.Alive(node) {
			return
		}
		m.mesh.SetAlive(node, true)
		m.reg.Add(node)
		m.adj[node] = m.adj[node][:0]
		m.stamp[node] = m.stamp[node][:0]
		m.hint[node] = -1
		for k := 0; k < m.p.Degree; k++ {
			if j, ok := m.reg.Sample(m.sim.Rand(), node); ok && !m.hasEdge(node, j) {
				m.addEdge(node, j)
			}
		}
	case workload.OpLeave:
		if !m.mesh.Alive(node) {
			return
		}
		nbs := m.adj[node]
		for i, nb := range nbs {
			// Each Depart carries a rotating replacement hint drawn from
			// the leaver's other neighbors.
			h := int32(-1)
			if len(nbs) > 1 {
				h = nbs[(i+1)%len(nbs)]
			}
			m.mesh.Send(nb, netsim.MeshMsg{From: node, Kind: cmDepart, A: h})
		}
		m.reg.Remove(node) // deregister: the registry drops it immediately
		m.mesh.SetAlive(node, false)
		m.adj[node] = m.adj[node][:0]
		m.stamp[node] = m.stamp[node][:0]
	case workload.OpCrash:
		if !m.mesh.Alive(node) {
			return
		}
		// No notice, no deregistration: the registry keeps the corpse
		// until its sweep, and neighbors only learn via probe timeouts.
		m.mesh.SetAlive(node, false)
	}
}

// probeTick starts one repair round: every live node probes each direct
// peer; reap collects the silence after ProbeTimeout.
func (m *churnModel) probeTick() {
	m.probeRound++
	r := m.probeRound
	for i := range m.adj {
		ii := int32(i)
		if !m.mesh.Alive(ii) {
			continue
		}
		for idx, nb := range m.adj[i] {
			m.stamp[i][idx] = r
			m.mesh.Send(nb, netsim.MeshMsg{From: ii, Kind: cmProbe, A: r})
		}
	}
	m.sim.After(m.p.ProbeTimeout, func() { m.reap(r) })
}

// reap drops every edge whose round-r probe went unanswered, then
// backfills toward the target degree: stashed Depart hint first, then a
// registry sample.
func (m *churnModel) reap(r int32) {
	for i := range m.adj {
		ii := int32(i)
		if !m.mesh.Alive(ii) {
			continue
		}
		for idx := len(m.adj[i]) - 1; idx >= 0; idx-- {
			if m.stamp[i][idx] != r {
				continue
			}
			dead := m.adj[i][idx]
			m.removeAt(ii, idx)
			if eng := m.engineOf(ii); eng != nil {
				eng.ForgetNeighbor(m.names[dead])
			}
		}
		for len(m.adj[i]) < m.p.Degree {
			j := m.hint[ii]
			m.hint[ii] = -1
			if j < 0 || j == ii || m.hasEdge(ii, j) {
				var ok bool
				j, ok = m.reg.Sample(m.sim.Rand(), ii)
				if !ok || m.hasEdge(ii, j) {
					break // retry next round
				}
			}
			m.addEdge(ii, j)
			m.run.Repairs++
		}
	}
}

// sweep is the registry's failure detector: drop members that are no
// longer alive (crashed without deregistering).
func (m *churnModel) sweep() {
	for idx := len(m.reg.list) - 1; idx >= 0; idx-- {
		if n := m.reg.list[idx]; !m.mesh.Alive(n) {
			m.reg.Remove(n)
		}
	}
}

func (m *churnModel) aliveHolders(kw int) int {
	n := 0
	for _, h := range m.byKw[kw] {
		if m.mesh.Alive(h) {
			n++
		}
	}
	return n
}

// issueRound fires one query per base (keyword rotating by base slot)
// and schedules the round's close. Cache-served queries are counted
// against the holders alive *now*, so staleness costs recall exactly as
// it would a real client.
func (m *churnModel) issueRound(round int) {
	alive := m.mesh.AliveCount()
	msgsBefore := m.mesh.Stats().Sent
	now := m.simTime()
	var roundQs []*churnQuery
	var keys []string
	cachedRecall := 0.0
	cachedN := 0
	for bi, b := range m.bases {
		kw := bi % m.p.Keywords
		key := m.kwName(kw)
		denom := m.aliveHolders(kw)
		if denom == 0 {
			continue
		}
		eng := m.engines[bi]
		if eng != nil {
			m.run.CacheLookups++
			if val, neg, ok := eng.GetBase(key, now); ok && !neg {
				m.run.CacheHits++
				live := 0
				for _, h := range val.([]int32) {
					if m.mesh.Alive(h) {
						live++
					}
				}
				cachedRecall += float64(live) / float64(denom)
				cachedN++
				continue
			}
		}
		qid := int32(len(m.queries) + 1)
		q := &churnQuery{
			kw: kw, denom: denom, wantRecs: eng != nil, eng: eng,
			visited: make([]uint64, (m.p.Nodes+63)/64),
		}
		m.queries = append(m.queries, q)
		roundQs = append(roundQs, q)
		keys = append(keys, key)
		q.visit(b)

		ttl := int32(m.p.TTL)
		targets := m.adj[b]
		if eng != nil {
			nbNames := make([]string, len(m.adj[b]))
			for i, nb := range m.adj[b] {
				nbNames[i] = m.names[nb]
			}
			plan := eng.Select([]string{key}, nbNames, uint8(m.p.TTL), now)
			ttl = int32(plan.TTL)
			if plan.Selective {
				targets = make([]int32, 0, len(plan.Targets))
				for _, name := range plan.Targets {
					id, err := strconv.Atoi(name[1:])
					if err == nil {
						targets = append(targets, int32(id))
					}
				}
			}
		}
		for _, nb := range targets {
			m.mesh.Send(nb, netsim.MeshMsg{
				From: b, Kind: cmQuery, A: qid,
				B: ttl | 1<<8, C: b | nb<<16,
			})
		}
	}
	m.sim.After(m.p.CollectAfter, func() {
		m.closeRound(round, roundQs, keys, alive, msgsBefore, cachedRecall, cachedN)
	})
}

// closeRound finalizes a query round into one ChurnSample and feeds the
// bases' engines (routing observations, answer-cache fills).
func (m *churnModel) closeRound(round int, qs []*churnQuery, keys []string, alive int, msgsBefore uint64, recallSum float64, nq int) {
	now := m.simTime()
	hopSum, nans := 0, 0
	for i, q := range qs {
		q.closed = true
		// A holder can rejoin inside the collect window and answer even
		// though it was outside the issue-time denominator; cap at 1.
		r := float64(q.answers) / float64(q.denom)
		if r > 1 {
			r = 1
		}
		recallSum += r
		nq++
		hopSum += q.hopSum
		nans += q.answers
		if !q.wantRecs || q.answers == 0 {
			continue
		}
		m.feedEngine(keys[i], q, now)
	}
	sample := ChurnSample{
		Round: round,
		TMS:   ms(m.sim.Now()),
		Alive: alive,
		Msgs:  m.mesh.Stats().Sent - msgsBefore,
	}
	if nq > 0 {
		sample.Recall = recallSum / float64(nq)
	}
	if nans > 0 {
		sample.MeanHops = float64(hopSum) / float64(nans)
	}
	if m.run.CacheLookups > 0 {
		sample.CacheHitRate = float64(m.run.CacheHits) / float64(m.run.CacheLookups)
	}
	m.run.Samples = append(m.run.Samples, sample)
	m.ingestHealth(sample, nq, now)
}

// ingestHealth folds one closed round into the health engine as
// per-window signals: recall only when the round actually measured
// queries, cache hit rate only when the window had lookups (a quiet
// window is not a collapse), and the repair rate as this window's edge
// backfills over the round cadence.
func (m *churnModel) ingestHealth(sample ChurnSample, nq int, now time.Time) {
	window := m.p.SampleEvery.Seconds()
	signals := map[string]float64{
		"alive":                        float64(sample.Alive) / float64(m.p.Nodes),
		observatory.SigRepairAddedPerS: float64(m.run.Repairs-m.prevRepairs) / window,
	}
	if nq > 0 {
		signals["recall"] = sample.Recall
	}
	if lookups := m.run.CacheLookups - m.prevCacheLookups; lookups > 0 {
		signals[observatory.SigCacheHitRate] =
			float64(m.run.CacheHits-m.prevCacheHits) / float64(lookups)
	}
	m.prevRepairs = m.run.Repairs
	m.prevCacheHits = m.run.CacheHits
	m.prevCacheLookups = m.run.CacheLookups
	m.health.Ingest(m.scheme, now, signals, "")
}

// feedEngine pushes one closed query's evidence into its base's engine.
func (m *churnModel) feedEngine(key string, q *churnQuery, now time.Time) {
	eng := q.eng
	if eng == nil || len(q.recs) == 0 {
		return
	}
	terms := []string{key}
	holders := make([]int32, 0, len(q.recs))
	var sites []string
	seenFirst := make(map[int32]bool)
	for _, rec := range q.recs {
		holders = append(holders, rec.holder)
		eng.Observe(terms, m.names[rec.first], 1, int(rec.hops), now)
		if !seenFirst[rec.first] {
			seenFirst[rec.first] = true
			sites = append(sites, m.names[rec.first])
		}
	}
	sort.Slice(holders, func(i, j int) bool { return holders[i] < holders[j] })
	eng.PutBaseFrom(key, holders, 4*len(holders), false, eng.Epoch(), now, sites)
}

// runChurnScheme executes one scheme's full run.
func runChurnScheme(p ChurnParams, scheme string, seed int64) ChurnSchemeRun {
	m := newChurnModel(p, scheme, seed)
	m.run.Scheme = scheme

	// The same trace drives every scheme: exponential sessions plus one
	// correlated burst, with base nodes filtered out.
	trace := workload.Merge(
		workload.ExponentialSessions(p.Nodes, p.Horizon, p.MeanSession, p.MeanDowntime, p.GracefulFrac, seed),
		workload.CorrelatedFailureBurst(p.Nodes, p.BurstFrac, p.BurstAt, seed+1),
	)
	for _, ev := range trace {
		if ev.Node < p.Bases {
			continue
		}
		ev := ev
		m.sim.At(ev.At, func() { m.apply(ev) })
	}

	if m.repair {
		for t := p.RepairEvery; t <= p.Horizon; t += p.RepairEvery {
			m.sim.At(t, m.probeTick)
		}
	}
	for t := p.SweepEvery; t <= p.Horizon; t += p.SweepEvery {
		m.sim.At(t, m.sweep)
	}
	round := 0
	for t := p.SampleEvery; t+p.CollectAfter <= p.Horizon; t += p.SampleEvery {
		round++
		r := round
		m.sim.At(t, func() { m.issueRound(r) })
	}
	m.sim.Run()

	m.run.Msgs = m.mesh.Stats().Sent
	m.run.Health = buildHealthTimeline(m.health, scheme)
	finishChurnRun(&m.run, p)
	return m.run
}

// buildHealthTimeline folds the run's health engine back onto the
// simulated clock: every derived series the engine retained plus the
// alert transitions from its journal, timestamps relative to sim zero.
func buildHealthTimeline(h *observatory.Health, member string) *HealthTimeline {
	epoch := time.Unix(0, 0).UTC()
	tl := &HealthTimeline{Series: make(map[string][]HealthPoint)}
	ts := h.Series()
	for _, name := range ts.Names(member) {
		for _, p := range ts.Points(member, name) {
			tl.Series[name] = append(tl.Series[name],
				HealthPoint{TMS: ms(p.At.Sub(epoch)), V: p.V})
		}
	}
	events, _, _ := h.Journal().Since(0, 0)
	for _, e := range events {
		if e.Node != member {
			continue
		}
		tl.Alerts = append(tl.Alerts, HealthAlert{
			TMS: ms(e.At.Sub(epoch)), Rule: e.Reason, Series: e.Strategy,
			Firing: e.Kind == obs.EvAlertRaised, Value: e.Value, Threshold: e.Threshold,
		})
	}
	return tl
}

// finishChurnRun derives the summary statistics from the samples.
func finishChurnRun(run *ChurnSchemeRun, p ChurnParams) {
	if len(run.Samples) == 0 {
		run.RepairConvergenceRounds = -1
		return
	}
	burstMS := ms(p.BurstAt)
	var sum, preSum float64
	preN := 0
	for _, s := range run.Samples {
		sum += s.Recall
		if s.TMS < burstMS {
			preSum += s.Recall
			preN++
		}
	}
	run.MeanRecall = sum / float64(len(run.Samples))
	run.FinalRecall = run.Samples[len(run.Samples)-1].Recall
	if preN > 0 {
		run.PreBurstRecall = preSum / float64(preN)
	}
	run.RepairConvergenceRounds = -1
	run.PostBurstMinRecall = 1
	rounds := 0
	for _, s := range run.Samples {
		if s.TMS < burstMS {
			continue
		}
		rounds++
		if s.Recall < run.PostBurstMinRecall {
			run.PostBurstMinRecall = s.Recall
		}
		if run.RepairConvergenceRounds < 0 && s.Recall >= run.PreBurstRecall-0.02 {
			run.RepairConvergenceRounds = rounds
			run.RepairConvergenceMS = s.TMS - burstMS
		}
	}
	if rounds == 0 {
		run.PostBurstMinRecall = 0
	}
}

// Churn runs the churn-at-scale experiment for the three schemes.
func Churn(p ChurnParams, seed int64) *ChurnResult {
	out := &ChurnResult{
		Nodes: p.Nodes, Degree: p.Degree,
		HorizonMS: ms(p.Horizon), BurstAtMS: ms(p.BurstAt), BurstFrac: p.BurstFrac,
	}
	for _, scheme := range []string{"bpr", "bps", "flood"} {
		out.Schemes = append(out.Schemes, runChurnScheme(p, scheme, seed))
	}
	return out
}

// FigChurn renders recall over time per scheme.
func FigChurn(p ChurnParams, seed int64) (*Figure, *ChurnResult) {
	res := Churn(p, seed)
	fig := &Figure{
		ID:     "C1",
		Title:  "Recall under churn (" + strconv.Itoa(p.Nodes) + " nodes, burst at " + p.BurstAt.String() + ")",
		XLabel: "time (ms)", YLabel: "recall",
	}
	for _, run := range res.Schemes {
		s := Series{Name: run.Scheme}
		for _, smp := range run.Samples {
			s.Points = append(s.Points, Point{smp.TMS, smp.Recall})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, res
}
