// Package core implements the BestPeer node: the paper's primary
// contribution. A node couples a StorM storage manager, a mobile-agent
// engine, a self-configuring direct-peer set and a LIGLO client. Queries
// are agents cloned to all direct peers; peers with answers reply
// directly to the base node (out-of-network returns); after each query
// the node reconfigures its peer set with a pluggable strategy.
package core

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"sync"
	"time"

	"bestpeer/internal/agent"
	"bestpeer/internal/liglo"
	"bestpeer/internal/obs"
	"bestpeer/internal/qroute"
	"bestpeer/internal/reconfig"
	"bestpeer/internal/storm"
	"bestpeer/internal/transport"
	"bestpeer/internal/wire"
)

// Node errors.
var (
	ErrNodeClosed = errors.New("core: node closed")
	ErrNoQuery    = errors.New("core: no such outstanding query")
)

// Peer is a directly connected peer: identity plus current address.
type Peer struct {
	ID   wire.BPID
	Addr string
}

// Config configures a Node.
type Config struct {
	// Network supplies connectivity (TCP or in-process).
	Network transport.Network
	// ListenAddr is the address to bind; empty picks one.
	ListenAddr string
	// Store is the node's StorM instance. Required.
	Store *storm.Store
	// Registry holds the node's agent classes. Nil creates a registry
	// with all built-ins installed.
	Registry *agent.Registry
	// ActiveNodes holds the node's active elements. Nil creates an
	// empty set with the default level filter.
	ActiveNodes *agent.ActiveSet
	// MaxPeers caps the direct-peer set (the paper's k). Zero
	// defaults to 5.
	MaxPeers int
	// DefaultTTL is the agent lifetime when the query does not override
	// it. Zero defaults to 7, Gnutella's classic value.
	DefaultTTL uint8
	// Strategy picks which peers to keep after each query. Nil defaults
	// to MaxCount; use reconfig.Static for a non-reconfiguring node
	// (the paper's BPS).
	Strategy reconfig.Strategy
	// AccessLevel is the clearance this node presents when querying.
	AccessLevel int
	// Logger receives structured events (joins, reconfigurations, class
	// transfers, peer sweeps). Nil discards them.
	Logger *slog.Logger
	// Transport tunes the messenger's failure handling (dial/write
	// timeouts, send-queue bounds, suspect backoff). The zero value
	// selects the transport package defaults.
	Transport transport.Options
	// Liglo tunes the LIGLO client's retry/backoff policy. The zero
	// value selects the liglo package defaults.
	Liglo liglo.ClientOptions
	// Metrics is the registry all of the node's metric families — node,
	// transport, LIGLO client and StorM — are published to. Nil creates
	// a private registry (exposed via Metrics()). Use one registry per
	// node: the messenger and store register per-instance collectors.
	Metrics *obs.Registry
	// TraceCapacity caps how many query traces the node retains for
	// Trace and the admin endpoint. Zero selects the obs default (128).
	TraceCapacity int
	// JournalCapacity caps the node's structured event journal ring.
	// Zero selects the obs default (1024).
	JournalCapacity int
	// QRoute configures the query answer cache and learned selective
	// routing. The zero value disables the subsystem, keeping the paper's
	// plain flood-everything behavior.
	QRoute qroute.Options
}

// Node is a live BestPeer participant.
type Node struct {
	cfg      Config
	log      *slog.Logger
	store    *storm.Store
	registry *agent.Registry
	active   *agent.ActiveSet
	strategy reconfig.Strategy
	msgr     *transport.Messenger
	lgc      *liglo.Client

	mu      sync.Mutex
	id      wire.BPID
	peers   []Peer
	peerGen uint64 // bumped on every peer-set mutation
	closed  bool
	leaving bool // set by Leave; suppresses repair and peer adoption
	admin   *obs.AdminServer

	seen      *dedup
	queries   sync.Map // wire.MsgID -> *queryState
	probes    sync.Map // wire.MsgID -> chan struct{}
	peerLists sync.Map // wire.MsgID -> chan []Peer (peer-list exchanges)

	// repairKick wakes the repair loop (StartRepair); capacity 1, so
	// concurrent triggers coalesce into one pending round. hintStash
	// holds replacement-neighbor hints from Depart announcements that
	// did not fit the peer set when they arrived; the repair loop
	// prefers them over a LIGLO round trip.
	repairKick chan string
	hintMu     sync.Mutex
	hintStash  []Peer

	// departed records addresses whose graceful Depart this node
	// processed recently. A leaver's process often stays alive (it can
	// Rejoin), so it answers probes — the repair loop must not re-adopt
	// it from gossip (stashed hints, neighbor-of-neighbor lists) that
	// predates the departure. Entries expire after departedTTL, and any
	// successful adoption through an evidence-bearing path (LIGLO
	// replenish, join, query-driven reconfiguration) clears one early.
	departedMu sync.Mutex
	departed   map[string]time.Time

	// pending holds agents waiting for a class transfer, keyed by class;
	// pendingWants holds peers whose class requests this node could not
	// serve yet.
	pendingMu    sync.Mutex
	pending      map[string][]pendingAgent
	pendingWants map[string][]string

	// metrics is the node's registry; tracer assembles query traces at
	// this node when it acts as a query base; m holds the node-family
	// metric handles.
	metrics *obs.Registry
	tracer  *obs.Tracer
	journal *obs.Journal
	m       nodeMetrics

	// qr is the qroute engine; nil means the subsystem is disabled (every
	// qroute method is nil-safe, so call sites carry no gating).
	qr *qroute.Engine
}

// Stats counts node activity. It is a point-in-time snapshot assembled
// from the node's metric registry by Stats().
type Stats struct {
	AgentsExecuted    uint64
	AgentsForwarded   uint64
	DuplicatesDropped uint64
	ExpiredDropped    uint64
	AnswersSent       uint64
	ClassesShipped    uint64
	ClassesInstalled  uint64
	Reconfigs         uint64
	// DepartsSent counts graceful-leave announcements this node sent;
	// DepartsReceived counts announcements received from direct peers.
	DepartsSent     uint64
	DepartsReceived uint64
	// RepairRounds counts crash-repair rounds run; RepairAdded counts
	// peers those rounds backfilled into the direct-peer set.
	RepairRounds uint64
	RepairAdded  uint64
	// ContainedPanics counts node-goroutine panics that were recovered
	// instead of crashing the process; anything above zero is a bug.
	ContainedPanics uint64
}

// agentDropReasons labels the bestpeer_node_agent_drops_total family and
// doubles as the trace-span Drop vocabulary ("error" excepted: a span
// records it but the agent did execute, so it is not a drop).
var agentDropReasons = []string{"expired", "duplicate", "decode", "no-class"}

// nodeMetrics holds the node's own metric handles (the
// bestpeer_node_* family).
type nodeMetrics struct {
	queries          *obs.Counter
	agentsExecuted   *obs.Counter
	agentsForwarded  *obs.Counter
	answersSent      *obs.Counter
	classesShipped   *obs.Counter
	classesInstalled *obs.Counter
	reconfigs        *obs.Counter
	containedPanics  *obs.Counter
	departsSent      *obs.Counter
	departsReceived  *obs.Counter
	repairRounds     *obs.Counter
	repairAdded      *obs.Counter
	drops            map[string]*obs.Counter
	execSeconds      *obs.Histogram
	answerHops       *obs.Histogram
}

// bindMetrics registers the node metric families on reg and keeps the
// update handles.
func (n *Node) bindMetrics(reg *obs.Registry) {
	n.m.queries = reg.Counter("bestpeer_node_queries_total",
		"Queries issued with this node as the base.")
	n.m.agentsExecuted = reg.Counter("bestpeer_node_agents_executed_total",
		"Agents executed against the local store.")
	n.m.agentsForwarded = reg.Counter("bestpeer_node_agents_forwarded_total",
		"Agent clones forwarded to direct peers.")
	n.m.answersSent = reg.Counter("bestpeer_node_answers_sent_total",
		"Results returned out-of-network to query bases.")
	n.m.classesShipped = reg.Counter("bestpeer_node_classes_shipped_total",
		"Agent class payloads shipped to peers.")
	n.m.classesInstalled = reg.Counter("bestpeer_node_classes_installed_total",
		"Agent classes installed from peers.")
	n.m.reconfigs = reg.Counter("bestpeer_node_reconfigs_total",
		"Peer-set reconfiguration decisions that changed the set.",
		obs.L("strategy", n.strategy.Name()))
	n.m.containedPanics = reg.Counter("bestpeer_node_contained_panics_total",
		"Node-goroutine panics recovered instead of crashing the process.")
	const departHelp = "Graceful-leave (Depart) announcements, by direction."
	n.m.departsSent = reg.Counter("bestpeer_node_departs_total", departHelp,
		obs.L("direction", "sent"))
	n.m.departsReceived = reg.Counter("bestpeer_node_departs_total", departHelp,
		obs.L("direction", "received"))
	n.m.repairRounds = reg.Counter("bestpeer_node_repair_rounds_total",
		"Crash-repair rounds run by the failure-detector loop.")
	n.m.repairAdded = reg.Counter("bestpeer_node_repair_peers_added_total",
		"Peers backfilled into the direct-peer set by repair rounds.")
	n.m.drops = make(map[string]*obs.Counter, len(agentDropReasons))
	for _, reason := range agentDropReasons {
		n.m.drops[reason] = reg.Counter("bestpeer_node_agent_drops_total",
			"Incoming agents dropped without execution, by reason.",
			obs.L("reason", reason))
	}
	n.m.execSeconds = reg.Histogram("bestpeer_node_agent_exec_seconds",
		"Agent execution time against the local store.", obs.LatencyBuckets)
	n.m.answerHops = reg.Histogram("bestpeer_node_answer_hops",
		"Hop distance of answer batches arriving at this base.", obs.HopBuckets)
}

type pendingAgent struct {
	env    *wire.Envelope
	packet *agent.Packet
	// arrived is when the agent reached this node; the span's WaitNS
	// includes any class-transfer wait measured from it.
	arrived time.Time
	// fanOut is how many peers the agent was clone-forwarded to on
	// arrival (forwarding does not wait for the class).
	fanOut int
}

// NewNode starts a node with the given configuration.
func NewNode(cfg Config) (*Node, error) {
	if cfg.Store == nil {
		return nil, errors.New("core: Config.Store is required")
	}
	if cfg.Network == nil {
		return nil, errors.New("core: Config.Network is required")
	}
	if cfg.MaxPeers <= 0 {
		cfg.MaxPeers = 5
	}
	if cfg.DefaultTTL == 0 {
		cfg.DefaultTTL = 7
	}
	reg := cfg.Registry
	if reg == nil {
		reg = agent.NewRegistry()
		if err := agent.RegisterBuiltins(reg); err != nil {
			return nil, err
		}
	}
	act := cfg.ActiveNodes
	if act == nil {
		act = agent.NewActiveSet()
		act.Add(&agent.LevelFilter{})
	}
	strat := cfg.Strategy
	if strat == nil {
		strat = reconfig.MaxCount{}
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	mreg := cfg.Metrics
	if mreg == nil {
		mreg = obs.NewRegistry()
	}
	// Every layer publishes to the node's registry, so one /metrics
	// scrape covers node, transport, LIGLO-client and StorM families;
	// likewise the journal collects transport events alongside the
	// node's own, so one /events read covers every layer.
	journal := obs.NewJournal("", cfg.JournalCapacity)
	journal.SetLogger(logger)
	cfg.Transport.Metrics = mreg
	cfg.Transport.Journal = journal
	cfg.Liglo.Metrics = mreg
	n := &Node{
		cfg:          cfg,
		log:          logger,
		store:        cfg.Store,
		registry:     reg,
		active:       act,
		strategy:     strat,
		lgc:          liglo.NewClientOpts(cfg.Network, cfg.Liglo),
		seen:         newDedup(8192),
		pending:      make(map[string][]pendingAgent),
		pendingWants: make(map[string][]string),
		metrics:      mreg,
		tracer:       obs.NewTracer(cfg.TraceCapacity),
		journal:      journal,
		repairKick:   make(chan string, 1),
		departed:     make(map[string]time.Time),
	}
	// The transport's failure detector feeds the repair loop: a peer
	// crossing the consecutive-failure threshold kicks a repair round
	// instead of waiting for the next sweep to notice. A caller-supplied
	// callback still runs.
	userSuspect := cfg.Transport.OnSuspect
	cfg.Transport.OnSuspect = func(addr string, suspect bool) {
		if suspect {
			n.kickRepair("suspect")
		}
		if userSuspect != nil {
			userSuspect(addr, suspect)
		}
	}
	n.cfg.Transport.OnSuspect = cfg.Transport.OnSuspect
	n.bindMetrics(mreg)
	cfg.Store.RegisterMetrics(mreg)
	n.qr = qroute.NewEngine(cfg.QRoute, mreg)
	if n.qr != nil {
		// Any committed store mutation retires every cached answer: the
		// hook fires after commit but before the mutating call returns, so
		// a writer never observes its own write missing from later queries.
		cfg.Store.OnMutation(func() {
			dropped := n.qr.BumpEpoch()
			n.journal.Append(obs.Event{Kind: obs.EvCacheInvalidated, Count: dropped})
		})
	}
	m, err := transport.NewMessengerOpts(cfg.Network, cfg.ListenAddr, n.handle, cfg.Transport)
	if err != nil {
		return nil, err
	}
	n.msgr = m
	journal.SetNode(m.Addr())
	return n, nil
}

// Addr returns the node's listen address.
func (n *Node) Addr() string { return n.msgr.Addr() }

// ID returns the node's BPID (zero until Join succeeds).
func (n *Node) ID() wire.BPID {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.id
}

// Store returns the node's storage manager.
func (n *Node) Store() *storm.Store { return n.store }

// Registry returns the node's agent class registry.
func (n *Node) Registry() *agent.Registry { return n.registry }

// ActiveNodes returns the node's active-element set.
func (n *Node) ActiveNodes() *agent.ActiveSet { return n.active }

// Strategy returns the reconfiguration strategy in use.
func (n *Node) Strategy() reconfig.Strategy { return n.strategy }

// Stats returns a snapshot of the node's counters, read from the metric
// registry.
func (n *Node) Stats() Stats {
	return Stats{
		AgentsExecuted:    n.m.agentsExecuted.Value(),
		AgentsForwarded:   n.m.agentsForwarded.Value(),
		DuplicatesDropped: n.m.drops["duplicate"].Value(),
		ExpiredDropped:    n.m.drops["expired"].Value(),
		AnswersSent:       n.m.answersSent.Value(),
		ClassesShipped:    n.m.classesShipped.Value(),
		ClassesInstalled:  n.m.classesInstalled.Value(),
		Reconfigs:         n.m.reconfigs.Value(),
		DepartsSent:       n.m.departsSent.Value(),
		DepartsReceived:   n.m.departsReceived.Value(),
		RepairRounds:      n.m.repairRounds.Value(),
		RepairAdded:       n.m.repairAdded.Value(),
		ContainedPanics:   n.m.containedPanics.Value(),
	}
}

// Metrics returns the node's metric registry.
func (n *Node) Metrics() *obs.Registry { return n.metrics }

// CacheStats snapshots the node's qroute subsystem (answer cache plus
// routing index); Enabled is false when the subsystem is off.
func (n *Node) CacheStats() qroute.Stats { return n.qr.Stats() }

// Journal returns the node's structured event journal.
func (n *Node) Journal() *obs.Journal { return n.journal }

// MessengerStats returns a snapshot of the node's transport counters.
func (n *Node) MessengerStats() transport.MessengerStats { return n.msgr.Stats() }

// Trace returns the assembled trace for a query this node issued (and
// still retains). Spans arrive asynchronously on the out-of-network
// return path, so a trace read immediately after Query may still grow.
func (n *Node) Trace(queryID wire.MsgID) (*obs.QueryTrace, bool) {
	return n.tracer.Get(queryID)
}

// RecentTraces returns the node's most recently issued query traces,
// newest first.
func (n *Node) RecentTraces(max int) []*obs.QueryTrace {
	return n.tracer.Recent(max)
}

// ServeAdmin starts the node's admin HTTP endpoint (metrics, health,
// peers, query traces, pprof) on addr. Empty or host-less addrs bind
// loopback — the endpoint is diagnostic and unauthenticated, so exposing
// it beyond the local host is an explicit opt-in. The server stops when
// the node closes.
func (n *Node) ServeAdmin(addr string) (*obs.AdminServer, error) {
	if n.isClosed() {
		return nil, ErrNodeClosed
	}
	srv, err := obs.StartAdmin(addr, obs.AdminConfig{
		Registry: n.metrics,
		Tracer:   n.tracer,
		Journal:  n.journal,
		Health: func() any {
			return map[string]any{
				"status": "ok",
				"addr":   n.Addr(),
				"id":     n.ID().String(),
				"peers":  len(n.Peers()),
			}
		},
		Peers: func() any { return n.Peers() },
		Cache: func() any { return n.qr.Stats() },
	})
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	if n.admin != nil {
		n.mu.Unlock()
		_ = srv.Close() // losing this just-started server's close error is fine; the caller gets the real error below
		return nil, errors.New("core: admin endpoint already serving")
	}
	n.admin = srv
	n.mu.Unlock()
	n.log.Info("admin endpoint serving", "addr", srv.Addr())
	return srv, nil
}

// Peers returns a copy of the direct-peer set.
func (n *Node) Peers() []Peer {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]Peer(nil), n.peers...)
}

// PeerAddrs returns the direct peers' addresses, sorted.
func (n *Node) PeerAddrs() []string {
	peers := n.Peers()
	out := make([]string, len(peers))
	for i, p := range peers {
		out[i] = p.Addr
	}
	sort.Strings(out)
	return out
}

// SetPeers replaces the direct-peer set (used by topology builders and
// tests). The set is clamped to MaxPeers.
func (n *Node) SetPeers(peers []Peer) {
	n.mu.Lock()
	if len(peers) > n.cfg.MaxPeers {
		peers = peers[:n.cfg.MaxPeers]
	}
	old := n.peers
	n.peers = append([]Peer(nil), peers...)
	n.peerGen++
	n.mu.Unlock()
	n.journalPeerDiff(old, peers, "topology")
}

// journalPeerDiff emits peer-added/peer-dropped events for the change
// from old to new, tagged with why the set changed.
func (n *Node) journalPeerDiff(old, cur []Peer, reason string) {
	was := make(map[string]bool, len(old))
	for _, p := range old {
		was[p.Addr] = true
	}
	is := make(map[string]bool, len(cur))
	for _, p := range cur {
		is[p.Addr] = true
		if !was[p.Addr] {
			n.journal.Append(obs.Event{Kind: obs.EvPeerAdded, Peer: p.Addr, Reason: reason})
		}
	}
	for _, p := range old {
		if !is[p.Addr] {
			n.journal.Append(obs.Event{Kind: obs.EvPeerDropped, Peer: p.Addr, Reason: reason})
		}
	}
}

// AddPeer appends a direct peer if there is room and it is not already
// present. It reports whether the peer was added.
func (n *Node) AddPeer(p Peer) bool { return n.addPeerReason(p, "added") }

// addPeerReason is AddPeer with an explicit journal reason ("added",
// "depart-hint", "repair"). A node that has left the overlay (Leave)
// adopts no peers until it joins again, so a straggling Depart hint or
// repair round cannot resurrect edges on a departed node.
func (n *Node) addPeerReason(p Peer, reason string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.leaving {
		return false
	}
	for _, q := range n.peers {
		if q.Addr == p.Addr {
			return false
		}
	}
	if len(n.peers) >= n.cfg.MaxPeers {
		return false
	}
	n.peers = append(n.peers, p)
	n.peerGen++
	n.journal.Append(obs.Event{Kind: obs.EvPeerAdded, Peer: p.Addr, Reason: reason})
	// Adoption is fresh evidence the address is back in the overlay
	// (the gossip-fed repair paths check recentlyDeparted before calling
	// here), so stop refusing it.
	n.departedMu.Lock()
	delete(n.departed, p.Addr)
	n.departedMu.Unlock()
	return true
}

// AdoptIdentity installs a BPID issued in an earlier session, so a
// restarted node keeps its identity and can Rejoin instead of
// re-registering.
func (n *Node) AdoptIdentity(id wire.BPID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.id = id
}

// Join registers with the first accepting LIGLO server, adopting the
// returned BPID and initial peer list.
func (n *Node) Join(servers []string) error {
	id, peers, err := n.lgc.RegisterAny(servers, n.Addr())
	if err != nil {
		return err
	}
	n.mu.Lock()
	n.id = id
	n.leaving = false // a fresh join re-enters the overlay after a Leave
	n.peers = n.peers[:0]
	for _, p := range peers {
		if len(n.peers) >= n.cfg.MaxPeers {
			break
		}
		n.peers = append(n.peers, Peer{ID: p.ID, Addr: p.Addr})
	}
	n.peerGen++
	count := len(n.peers)
	joined := append([]Peer(nil), n.peers...)
	n.mu.Unlock()
	n.journal.Append(obs.Event{Kind: obs.EvJoined, Count: count})
	for _, p := range joined {
		n.journal.Append(obs.Event{Kind: obs.EvPeerAdded, Peer: p.Addr, Reason: "join"})
	}
	n.log.Info("joined bestpeer network", "bpid", id.String(), "initial_peers", count)
	return nil
}

// Rejoin re-announces the node's current address to its LIGLO server and
// refreshes every peer's address via that peer's own LIGLO (§2). Peers
// that are offline or unknown are dropped — the node will meet new peers
// through reconfiguration.
func (n *Node) Rejoin() error {
	n.mu.Lock()
	id := n.id
	peers := append([]Peer(nil), n.peers...)
	n.mu.Unlock()
	if id.IsZero() {
		return errors.New("core: Rejoin before Join")
	}
	if err := n.lgc.Rejoin(id, n.Addr()); err != nil {
		return err
	}
	var fresh []Peer
	for _, p := range peers {
		if p.ID.IsZero() {
			fresh = append(fresh, p) // no identity to check; keep as-is
			continue
		}
		addr, online, err := n.lgc.Lookup(p.ID)
		if err != nil || !online {
			n.journal.Append(obs.Event{Kind: obs.EvPeerDropped, Peer: p.Addr, Reason: "offline"})
			continue
		}
		p.Addr = addr
		fresh = append(fresh, p)
	}
	n.mu.Lock()
	n.leaving = false // rejoining re-enters the overlay after a Leave
	n.peers = fresh
	n.peerGen++
	n.mu.Unlock()
	return nil
}

// Close shuts the node down. The store is not closed — the caller owns it.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	admin := n.admin
	n.admin = nil
	n.mu.Unlock()
	if admin != nil {
		_ = admin.Close() // diagnostic endpoint; messenger shutdown below is what matters
	}
	// Interrupts any LIGLO retry backoff so Close never waits one out.
	_ = n.lgc.Close() // always returns nil
	return n.msgr.Close()
}

func (n *Node) isClosed() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.closed
}

// send delivers an envelope, ignoring transport errors to individual
// peers: an unreachable peer must not break a broadcast.
func (n *Node) send(to string, env *wire.Envelope) {
	if err := n.msgr.Send(to, env); err != nil {
		// The peer is gone or unreachable. Reconfiguration and Rejoin
		// handle peer-set repair; dropping here matches the paper's
		// "simply replace those peers" behaviour.
		return
	}
}

// containPanic is deferred at the top of node goroutines so a panic in a
// probe or fetch is logged and counted instead of killing the process.
func (n *Node) containPanic(where string) {
	if r := recover(); r != nil {
		n.log.Error("panic contained", "where", where, "panic", r)
		n.m.containedPanics.Inc()
	}
}

// String describes the node.
func (n *Node) String() string {
	return fmt.Sprintf("bestpeer(%s, id=%v, peers=%d)", n.Addr(), n.ID(), len(n.Peers()))
}

// probeTimeout bounds synchronous helper waits.
const probeTimeout = 5 * time.Second
