package vet

import (
	"go/ast"
	"go/token"
	"go/types"
)

// eventdrift keeps the structured event vocabulary closed (DESIGN.md
// §8). The observatory consumes the journal by event kind, so a kind
// that exists in code but not in the obs.Kinds registry is invisible to
// schema-driven consumers, and a kind invented inline from a raw string
// bypasses the vocabulary entirely. Two rules:
//
//  1. In the package that declares a string-based type named EventKind
//     and a package-level `Kinds` registry literal, every package-scope
//     constant of that type must be listed in the registry.
//  2. Anywhere, an EventKind value must come from a named constant —
//     a raw string literal converted or assigned to the type is flagged.
type eventdrift struct{}

func (eventdrift) Name() string { return "eventdrift" }
func (eventdrift) Doc() string {
	return "event kind missing from the Kinds registry, or constructed from a raw string literal"
}

func (eventdrift) Run(p *Pass) {
	if kindType := localEventKind(p); kindType != nil {
		checkRegistry(p, kindType)
	}

	for _, f := range p.Files {
		constLits := constKindLiterals(f)
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING || constLits[lit] {
				return true
			}
			if named := namedFrom(p.TypeOf(lit)); named != nil && named.Obj().Name() == "EventKind" {
				p.Reportf(lit.Pos(),
					"event kind %s constructed from a raw string; use a registered EventKind constant", lit.Value)
			}
			return true
		})
	}
}

// localEventKind returns the package's own string-based EventKind type,
// or nil when the package does not declare one.
func localEventKind(p *Pass) *types.Named {
	tn, ok := p.Pkg.Scope().Lookup("EventKind").(*types.TypeName)
	if !ok {
		return nil
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return nil
	}
	if basic, ok := named.Underlying().(*types.Basic); !ok || basic.Kind() != types.String {
		return nil
	}
	return named
}

// checkRegistry reports every package-scope EventKind constant that the
// package's Kinds literal does not list.
func checkRegistry(p *Pass, kindType *types.Named) {
	registered, found := kindsRegistry(p, kindType)
	if !found {
		return // no registry to drift from
	}
	scope := p.Pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), kindType) {
			continue
		}
		if !registered[c] {
			p.Reportf(c.Pos(), "event kind %s is not listed in the Kinds registry", c.Name())
		}
	}
}

// kindsRegistry resolves the package-level `Kinds` composite literal to
// the set of constants it lists.
func kindsRegistry(p *Pass, kindType *types.Named) (map[*types.Const]bool, bool) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs := spec.(*ast.ValueSpec)
				for i, id := range vs.Names {
					if id.Name != "Kinds" || i >= len(vs.Values) {
						continue
					}
					cl, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					registered := make(map[*types.Const]bool)
					for _, elt := range cl.Elts {
						if ident, ok := elt.(*ast.Ident); ok {
							if c, ok := p.Info.Uses[ident].(*types.Const); ok {
								registered[c] = true
							}
						}
					}
					return registered, true
				}
			}
		}
	}
	return nil, false
}

// constKindLiterals collects the string literals that appear inside
// const declarations — the definitions of the vocabulary itself, which
// rule 2 must not flag.
func constKindLiterals(f *ast.File) map[*ast.BasicLit]bool {
	lits := make(map[*ast.BasicLit]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		gd, ok := n.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			return true
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, v := range vs.Values {
				if lit, ok := v.(*ast.BasicLit); ok {
					lits[lit] = true
				}
			}
		}
		return false
	})
	return lits
}
