package vet

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// goleak enforces the goroutine lifecycle contract: every `go`
// statement must have a verifiable termination path. The analyzer
// resolves each spawn to its body (function literal or module-defined
// function), follows static calls a few levels deep, and demands that
// every unbounded loop (`for` with no condition) reachable from the
// spawn either
//
//   - receives from a stop-like channel (a select case or direct
//     receive from ctx.Done(), a chan struct{}, or a channel whose name
//     says stop/done/quit/...),
//   - ranges over a channel (terminates when the producer closes it), or
//   - exits via return/break while the goroutine is WaitGroup-tracked,
//     so a hang is observable at the owner's Close/Wait.
//
// Loops with a condition are treated as bounded (busypoll separately
// polices spin-until-flag loops). A spawn whose target cannot be
// resolved inside the module — a function value, a method value, or a
// stdlib call like srv.Serve — is reported as unverifiable: wrap it in
// a literal the analyzer can see, or suppress with the reason that
// makes it safe (for example, a Close elsewhere that unblocks it).
type goleak struct{}

func (goleak) Name() string { return "goleak" }
func (goleak) Doc() string {
	return "every go statement needs a termination path (stop channel, channel range, bound, or tracked exit)"
}

// spawnDepth bounds how many static call levels below a go statement
// are searched for unbounded loops.
const spawnDepth = 6

func (goleak) RunProgram(p *ProgramPass) {
	pr := p.Prog
	for _, node := range pr.Nodes() {
		for _, g := range node.Gos {
			root, why := spawnTarget(pr, node, g)
			if root == nil {
				p.Reportf(g.Pos(), "goroutine target %s; termination cannot be verified — spawn a module function or literal, or suppress with the reason that bounds it", why)
				continue
			}
			tracked := isTracked(root)
			for _, reached := range reachableNodes(pr, root) {
				checkSpawnLoops(p, g, root, reached, tracked)
			}
		}
	}
}

// spawnTarget resolves the function a go statement runs. The second
// result describes the failure when no module-defined body is found.
func spawnTarget(pr *Program, node *FuncNode, g *ast.GoStmt) (*FuncNode, string) {
	fun := ast.Unparen(g.Call.Fun)
	if lit, ok := fun.(*ast.FuncLit); ok {
		return pr.LitNode(lit), "is an unanalyzed literal"
	}
	var obj types.Object
	switch f := fun.(type) {
	case *ast.Ident:
		obj = node.Pkg.Info.Uses[f]
	case *ast.SelectorExpr:
		obj = node.Pkg.Info.Uses[f.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil, "is a function value"
	}
	if n := pr.NodeOf(fn); n != nil {
		return n, ""
	}
	return nil, "(" + fn.FullName() + ") is outside the module"
}

// reachableNodes returns root plus the module functions reachable from
// it through static calls and synchronous literals, to spawnDepth.
// Nested go statements are not followed: each spawn is its own root.
func reachableNodes(pr *Program, root *FuncNode) []*FuncNode {
	seen := map[*FuncNode]bool{root: true}
	frontier := []*FuncNode{root}
	out := []*FuncNode{root}
	for depth := 0; depth < spawnDepth && len(frontier) > 0; depth++ {
		var next []*FuncNode
		for _, n := range frontier {
			for i := range n.Sites {
				for _, callee := range pr.staticCallees(&n.Sites[i]) {
					if !seen[callee] {
						seen[callee] = true
						next = append(next, callee)
						out = append(out, callee)
					}
				}
			}
		}
		frontier = next
	}
	return out
}

// checkSpawnLoops reports every unbounded loop in reached that lacks a
// termination path, attributing it to the go statement g.
func checkSpawnLoops(p *ProgramPass, g *ast.GoStmt, root, reached *FuncNode, tracked bool) {
	info := reached.Pkg.Info
	inspectSameFunc(reached.Body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return true
		}
		hasStop, hasExit := scanLoop(info, loop)
		if hasStop || (hasExit && tracked) {
			return true
		}
		where := trimPos(p.Prog.Fset.Position(loop.Pos()))
		switch {
		case reached != root:
			p.Reportf(g.Pos(), "goroutine reaches unbounded loop in %s at %s with no stop/done receive%s",
				reached.Name(), where, exitHint(hasExit))
		default:
			p.Reportf(g.Pos(), "goroutine runs an unbounded loop at %s with no stop/done receive%s",
				where, exitHint(hasExit))
		}
		return true
	})
}

func exitHint(hasExit bool) string {
	if hasExit {
		return "; its return/break exit would count if the goroutine were WaitGroup-tracked"
	}
	return " and no return/break"
}

// scanLoop looks inside one unbounded loop (not descending into nested
// function literals) for a stop-like receive and for any exit
// statement.
func scanLoop(info *types.Info, loop *ast.ForStmt) (hasStop, hasExit bool) {
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if s.Op == token.ARROW && stopLikeChan(info, s.X) {
				hasStop = true
			}
		case *ast.ReturnStmt:
			hasExit = true
		case *ast.BranchStmt:
			if s.Tok == token.BREAK {
				hasExit = true
			}
		}
		return true
	})
	return hasStop, hasExit
}

// stopLikeChan reports whether receiving from e is a recognizable
// termination signal: ctx.Done()-style calls, any chan struct{}, or a
// channel whose name reads as a stop signal.
func stopLikeChan(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			return true
		}
	}
	if t := info.TypeOf(e); t != nil {
		if ch, ok := t.Underlying().(*types.Chan); ok {
			if st, ok := ch.Elem().Underlying().(*types.Struct); ok && st.NumFields() == 0 {
				return true
			}
		}
	}
	name := ""
	switch x := e.(type) {
	case *ast.Ident:
		name = x.Name
	case *ast.SelectorExpr:
		name = x.Sel.Name
	}
	name = strings.ToLower(name)
	for _, kw := range []string{"stop", "done", "quit", "exit", "halt", "close", "term", "cancel"} {
		if strings.Contains(name, kw) {
			return true
		}
	}
	return false
}

// isTracked reports whether the spawned body signals its own completion
// to a sync.WaitGroup (wg.Done(), usually deferred).
func isTracked(root *FuncNode) bool {
	tracked := false
	info := root.Pkg.Info
	inspectSameFunc(root.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" {
			return true
		}
		if isPkgType(info.TypeOf(sel.X), "sync", "WaitGroup") {
			tracked = true
		}
		return true
	})
	return tracked
}
