package bench

import (
	"math"
	"sort"
	"strconv"
	"time"

	"bestpeer/internal/chord"
	"bestpeer/internal/netsim"
	"bestpeer/internal/wire"
	"bestpeer/internal/workload"
)

// DHTParams configures the T4 experiment: the chord DHT ("chd") against
// flooding and reconfigurable BestPeer on exact-key and keyword
// workloads, first over a converged static network with real wire
// frames, then under the 10k-node churn trace of the C1 experiment.
type DHTParams struct {
	// Nodes sizes the static network; SuccLen the chord successor lists.
	Nodes   int
	SuccLen int
	// Keys is the exact-key workload: that many distinct single-owner
	// keys, each looked up once from a rotating base.
	Keys int
	// Keywords × HoldersPerKeyword is the keyword workload.
	// PublishedFrac of each keyword's holders publish into the DHT index
	// — the structural handicap of exact-match DHTs on keyword search:
	// unpublished holders are invisible to chord but still reachable by
	// a flood. KeywordQueries are issued round-robin over the keywords.
	Keywords          int
	HoldersPerKeyword int
	PublishedFrac     float64
	KeywordQueries    int
	// Degree and TTL shape the flood overlay (ring + random chords) and
	// its hop budget; ChordTTL bounds chord routing against table bugs.
	Degree   int
	TTL      int
	ChordTTL int
	// Latency is the per-hop link latency of the static network.
	Latency time.Duration
	// RepublishEvery is the churn model's index-refresh cadence: every
	// alive holder re-routes its posting toward the current key owner.
	RepublishEvery time.Duration
	// Churn configures the shared churn trace; the bpr and flood
	// baselines run the C1 model on it unchanged.
	Churn ChurnParams
}

// DefaultDHTParams is the committed-figure configuration.
func DefaultDHTParams() DHTParams {
	return DHTParams{
		Nodes: 64, SuccLen: 8, Keys: 128,
		Keywords: 8, HoldersPerKeyword: 6, PublishedFrac: 0.75,
		KeywordQueries: 32,
		Degree:         4, TTL: 10, ChordTTL: 32,
		Latency:        10 * time.Millisecond,
		RepublishEvery: 5 * time.Second,
		Churn:          DefaultChurnParams(),
	}
}

// DHTStaticRun is one (scheme, workload) cell of the static comparison.
type DHTStaticRun struct {
	Scheme   string `json:"scheme"`
	Workload string `json:"workload"` // "exact" or "keyword"
	Lookups  int    `json:"lookups"`
	// Recall is mean fraction of reachable answers found; MeanHops the
	// mean overlay depth of answered lookups.
	Recall   float64 `json:"recall"`
	MeanHops float64 `json:"mean_hops"`
	// Msgs / Bytes total the real wire frames the scheme put on the
	// simulated network, index maintenance (chord publishes, BPR's
	// warm-up flood) included.
	Msgs  uint64 `json:"msgs"`
	Bytes uint64 `json:"bytes"`
}

// DHTResult is the T4 experiment's machine-readable output.
type DHTResult struct {
	Nodes int `json:"nodes"`
	// HopBound is the acceptance ceiling on chord exact-key routing:
	// ceil(log2 Nodes) + 1.
	HopBound   int            `json:"hop_bound"`
	Static     []DHTStaticRun `json:"static"`
	ChurnNodes int            `json:"churn_nodes"`
	// Churn holds the chd run plus the bpr and flood baselines on the
	// same trace.
	Churn []ChurnSchemeRun `json:"churn"`
}

// StaticRun returns the named static cell, or nil.
func (r *DHTResult) StaticRun(scheme, wl string) *DHTStaticRun {
	for i := range r.Static {
		if r.Static[i].Scheme == scheme && r.Static[i].Workload == wl {
			return &r.Static[i]
		}
	}
	return nil
}

// ChurnRun returns the named churn run, or nil.
func (r *DHTResult) ChurnRun(scheme string) *ChurnSchemeRun {
	for i := range r.Churn {
		if r.Churn[i].Scheme == scheme {
			return &r.Churn[i]
		}
	}
	return nil
}

// dhtHopBound is the textbook chord guarantee the acceptance test pins:
// with exact fingers a lookup takes at most ceil(log2 N) halving steps,
// plus the final delivery hop.
func dhtHopBound(nodes int) int {
	return int(math.Ceil(math.Log2(float64(nodes)))) + 1
}

// dhtStaticBases is how many nodes rotate as static-workload query
// bases; holders are placed outside this prefix.
const dhtStaticBases = 8

// dhtPlan is the workload placement shared by every static scheme so
// their numbers compare the protocols, not the draw: exact keys with
// their owning node, keyword holder sets, the published subset, and the
// flood overlay.
type dhtPlan struct {
	names     []string
	exactKeys []string
	exactBase []int
	kwHolders [][]int
	published [][]int // prefix of kwHolders, PublishedFrac of each
	adj       [][]int
}

func newDHTPlan(p DHTParams, seed int64) *dhtPlan {
	rng := netsim.NewSimSeeded(seed).Rand()
	plan := &dhtPlan{names: make([]string, p.Nodes)}
	for i := range plan.names {
		plan.names[i] = "n" + strconv.Itoa(i)
	}
	for i := 0; i < p.Keys; i++ {
		plan.exactKeys = append(plan.exactKeys, "key-"+strconv.Itoa(i))
		plan.exactBase = append(plan.exactBase, (i*13+1)%p.Nodes)
	}
	// Keyword holders are drawn from [dhtStaticBases, Nodes) so the
	// rotating query bases never answer their own queries.
	plan.kwHolders = make([][]int, p.Keywords)
	plan.published = make([][]int, p.Keywords)
	taken := make([]bool, p.Nodes)
	for kw := 0; kw < p.Keywords; kw++ {
		for len(plan.kwHolders[kw]) < p.HoldersPerKeyword {
			j := dhtStaticBases + rng.Intn(p.Nodes-dhtStaticBases)
			if !taken[j] {
				taken[j] = true
				plan.kwHolders[kw] = append(plan.kwHolders[kw], j)
			}
		}
		np := int(math.Ceil(p.PublishedFrac * float64(p.HoldersPerKeyword)))
		if np > p.HoldersPerKeyword {
			np = p.HoldersPerKeyword
		}
		plan.published[kw] = plan.kwHolders[kw][:np]
	}
	// Flood overlay: a ring (guaranteed connectivity) plus random
	// chords up to the target degree.
	plan.adj = make([][]int, p.Nodes)
	addEdge := func(i, j int) {
		if i == j {
			return
		}
		for _, nb := range plan.adj[i] {
			if nb == j {
				return
			}
		}
		plan.adj[i] = append(plan.adj[i], j)
		plan.adj[j] = append(plan.adj[j], i)
	}
	for i := 0; i < p.Nodes; i++ {
		addEdge(i, (i+1)%p.Nodes)
	}
	for i := 0; i < p.Nodes; i++ {
		for len(plan.adj[i]) < p.Degree {
			addEdge(i, rng.Intn(p.Nodes))
		}
	}
	return plan
}

// dhtNet is one static scheme run's metered fabric: every host exists,
// message and byte counters tick at Send time, and routing decisions are
// made by the scheme code against converged state — the network charges
// the traffic, the tables decide it.
type dhtNet struct {
	sim *netsim.Sim
	nw  *netsim.Network
}

func newDHTNet(p DHTParams, names []string, seed int64) *dhtNet {
	sim := netsim.NewSimSeeded(seed)
	nw := netsim.NewNetwork(sim, netsim.Link{Latency: p.Latency})
	for _, name := range names {
		nw.AddHost(name, netsim.HostConfig{})
	}
	return &dhtNet{sim: sim, nw: nw}
}

// gnuQueryEnv frames a flood query for term exactly as the Gnutella
// scheme puts it on the wire.
func gnuQueryEnv(term string) *wire.Envelope {
	var e wire.Encoder
	e.String(term)
	return &wire.Envelope{Kind: wire.KindGnuQuery, ID: wire.NewMsgID(), TTL: 1, Body: e.Bytes()}
}

// gnuHitEnv frames a query-hit answer from a holder.
func gnuHitEnv(holder string) *wire.Envelope {
	var e wire.Encoder
	e.String(holder)
	return &wire.Envelope{Kind: wire.KindGnuQueryHit, ID: wire.NewMsgID(), TTL: 1, Body: e.Bytes()}
}

// chordTables builds the converged routing state and an address index
// over it.
func chordTables(p DHTParams, names []string) (ring []*chord.Table, byAddr map[string]*chord.Table) {
	ring = chord.ConvergedTables(names, p.SuccLen)
	byAddr = make(map[string]*chord.Table, len(ring))
	for _, tb := range ring {
		byAddr[tb.Self().Addr] = tb
	}
	return ring, byAddr
}

// ownerOf returns the ring position owning k: the first table whose key
// is ≥ k, wrapping to the ring's first node.
func ownerOf(ring []*chord.Table, k chord.Key) *chord.Table {
	i := sort.Search(len(ring), func(i int) bool { return ring[i].Self().Key >= k })
	if i == len(ring) {
		i = 0
	}
	return ring[i]
}

// routeChord walks one lookup for k from `from` through the converged
// tables, sending the real KindChordLookup frame on every forwarding
// step. It returns the owning node and the hop count.
func routeChord(n *dhtNet, byAddr map[string]*chord.Table, from string, k chord.Key, ttl int) (owner chord.NodeRef, hops int, ok bool) {
	cur := byAddr[from]
	for hops = 0; hops <= ttl; {
		if cur.Owns(k) {
			return cur.Self(), hops, true
		}
		next, hop, done := cur.NextHop(k, nil)
		if !done {
			next = hop
		}
		n.nw.Send(cur.Self().Addr, next.Addr, chord.LookupEnvelope(k, hops), 0)
		hops++
		cur = byAddr[next.Addr]
	}
	return chord.NodeRef{}, hops, false
}

// floodQuery floods term from base over the overlay, sending every
// forwarded copy and every answer as a real frame. It returns the set of
// matching nodes reached and the sum of their depths.
func floodQuery(n *dhtNet, p DHTParams, plan *dhtPlan, base int, term string, matches func(node int) bool) (answers, depthSum int) {
	env := gnuQueryEnv(term)
	type hop struct{ node, from, depth int }
	visited := make([]bool, p.Nodes)
	queue := []hop{{base, -1, 0}}
	for len(queue) > 0 {
		h := queue[0]
		queue = queue[1:]
		if visited[h.node] {
			continue
		}
		visited[h.node] = true
		if h.node != base && matches(h.node) {
			answers++
			depthSum += h.depth
			n.nw.Send(plan.names[h.node], plan.names[base], gnuHitEnv(plan.names[h.node]), 0)
		}
		if h.depth >= p.TTL {
			continue
		}
		for _, nb := range plan.adj[h.node] {
			if nb == h.from {
				continue
			}
			n.nw.Send(plan.names[h.node], plan.names[nb], env, 0)
			queue = append(queue, hop{nb, h.node, h.depth + 1})
		}
	}
	return answers, depthSum
}

// runDHTStatic produces every (scheme, workload) cell. Each cell runs on
// a fresh network so its counters isolate that scheme's traffic.
func runDHTStatic(p DHTParams, plan *dhtPlan, seed int64) []DHTStaticRun {
	var out []DHTStaticRun
	for _, scheme := range []string{"chd", "flood", "bpr"} {
		out = append(out, dhtStaticExact(p, plan, scheme, seed))
		out = append(out, dhtStaticKeyword(p, plan, scheme, seed))
	}
	return out
}

func finishStatic(n *dhtNet, run DHTStaticRun, recallSum float64, hopSum, answered int) DHTStaticRun {
	n.sim.Run() // drain in-flight deliveries; counters were charged at Send
	if run.Lookups > 0 {
		run.Recall = recallSum / float64(run.Lookups)
	}
	if answered > 0 {
		run.MeanHops = float64(hopSum) / float64(answered)
	}
	run.Msgs = n.nw.MsgsSent
	run.Bytes = n.nw.BytesSent
	return run
}

// dhtStaticExact: each key lives on exactly one node — its chord owner,
// so every scheme hunts the same host. Chord routes; flood searches;
// BPR's learned routing has nothing to learn from keys that never
// repeat, so it floods exactly like the reference.
func dhtStaticExact(p DHTParams, plan *dhtPlan, scheme string, seed int64) DHTStaticRun {
	n := newDHTNet(p, plan.names, seed)
	run := DHTStaticRun{Scheme: scheme, Workload: "exact", Lookups: len(plan.exactKeys)}
	ring, byAddr := chordTables(p, plan.names)
	nameIdx := make(map[string]int, len(plan.names))
	for i, name := range plan.names {
		nameIdx[name] = i
	}
	recallSum := 0.0
	hopSum, answered := 0, 0
	for i, keyName := range plan.exactKeys {
		k := chord.HashString(keyName)
		holder := nameIdx[ownerOf(ring, k).Self().Addr]
		base := plan.exactBase[i]
		switch scheme {
		case "chd":
			owner, hops, ok := routeChord(n, byAddr, plan.names[base], k, p.ChordTTL)
			if !ok {
				continue
			}
			if owner.Addr != plan.names[base] {
				n.nw.Send(owner.Addr, plan.names[base], chord.LookupOKEnvelope(owner, hops), 0)
			}
			recallSum++
			hopSum += hops
			answered++
		default: // flood and bpr are identical on never-repeating keys
			if base == holder {
				recallSum++ // local data: answered before any message
				answered++
				continue
			}
			ans, depths := floodQuery(n, p, plan, base, keyName, func(node int) bool { return node == holder })
			if ans > 0 {
				recallSum++
				hopSum += depths
				answered += ans
			}
		}
	}
	return finishStatic(n, run, recallSum, hopSum, answered)
}

// dhtStaticKeyword: keywords have many holders, only PublishedFrac of
// which publish into the chord index. Chord answers from the index
// (cheap, partial); flood reaches every holder (expensive, complete);
// BPR floods once per keyword, learns the holder set, then goes direct —
// complete *and* cheap on repeats. This is the paper-side trade the
// acceptance test pins: keyword workloads still favor BPR.
func dhtStaticKeyword(p DHTParams, plan *dhtPlan, scheme string, seed int64) DHTStaticRun {
	n := newDHTNet(p, plan.names, seed)
	run := DHTStaticRun{Scheme: scheme, Workload: "keyword", Lookups: p.KeywordQueries}
	_, byAddr := chordTables(p, plan.names)
	kwName := func(kw int) string { return "kw" + strconv.Itoa(kw) }
	holds := func(kw, node int) bool {
		for _, h := range plan.kwHolders[kw] {
			if h == node {
				return true
			}
		}
		return false
	}

	if scheme == "chd" {
		// Publish phase: every published holder routes its posting to
		// the keyword's owner, then stores it there with one direct
		// frame — the DHT put.
		for kw := range plan.published {
			k := chord.HashString(kwName(kw))
			for _, h := range plan.published[kw] {
				owner, _, ok := routeChord(n, byAddr, plan.names[h], k, p.ChordTTL)
				if ok && owner.Addr != plan.names[h] {
					n.nw.Send(plan.names[h], owner.Addr, gnuHitEnv(plan.names[h]), 0)
				}
			}
		}
	}

	learned := make([][]int, p.Keywords) // bpr: holder sets from the warm-up flood
	recallSum := 0.0
	hopSum, answered := 0, 0
	for q := 0; q < p.KeywordQueries; q++ {
		kw := q % p.Keywords
		base := q % dhtStaticBases
		denom := len(plan.kwHolders[kw])
		switch scheme {
		case "chd":
			k := chord.HashString(kwName(kw))
			owner, hops, ok := routeChord(n, byAddr, plan.names[base], k, p.ChordTTL)
			if !ok {
				continue
			}
			n.nw.Send(owner.Addr, plan.names[base], chord.LookupOKEnvelope(owner, hops), 0)
			recallSum += float64(len(plan.published[kw])) / float64(denom)
			hopSum += hops
			answered++
		case "flood":
			ans, depths := floodQuery(n, p, plan, base, kwName(kw), func(node int) bool { return holds(kw, node) })
			recallSum += float64(ans) / float64(denom)
			hopSum += depths
			answered += ans
		case "bpr":
			if learned[kw] == nil {
				ans, depths := floodQuery(n, p, plan, base, kwName(kw), func(node int) bool { return holds(kw, node) })
				recallSum += float64(ans) / float64(denom)
				hopSum += depths
				answered += ans
				learned[kw] = plan.kwHolders[kw]
				continue
			}
			env := gnuQueryEnv(kwName(kw))
			for _, h := range learned[kw] {
				n.nw.Send(plan.names[base], plan.names[h], env, 0)
				n.nw.Send(plan.names[h], plan.names[base], gnuHitEnv(plan.names[h]), 0)
				hopSum++
				answered++
			}
			recallSum += float64(len(learned[kw])) / float64(denom)
		}
	}
	return finishStatic(n, run, recallSum, hopSum, answered)
}

// ---------------------------------------------------------------------
// Churn: the chord scheme on the C1 trace.

// Mesh message kinds of the chord churn model, disjoint from the cm*
// kinds of churn.go.
const (
	cdLookup int32 = iota + 101
	cdAnswer
	cdPublish
	cdPing
)

const cdFinal = 1 << 8 // B flag: next delivery is to the key's owner

// dhtChurnQuery is one in-flight keyword lookup.
type dhtChurnQuery struct {
	kw      int
	key     chord.Key
	base    int32
	denom   int
	answers int
	hops    int
	nAns    int
	closed  bool
}

// dhtChurn is the chord fleet under the churn trace: every node keys
// itself by name hash; successor lists and fingers are rebuilt each
// repair tick from the registry's (possibly stale) membership view —
// the same LIGLO-backed failure-detection window the other schemes live
// with. Keyword postings live at the keyword's owner, refreshed by a
// periodic republish, handed to the successor on graceful leave, and
// stranded by a crash until the next republish.
type dhtChurn struct {
	p       DHTParams
	sim     *netsim.Sim
	mesh    *netsim.Mesh
	reg     *aliveRegistry
	key     []chord.Key
	kwKey   []chord.Key
	byKw    [][]int32
	bases   []int32
	succs   [][]int32
	fingers [][]int32
	// postings[node][kw] lists holders whose posting this node stores.
	postings [][][]int32
	// sorted scratch for rebuild: registry members in key order.
	sorted []int32
	skeys  []chord.Key
	// fingerFloor skips finger levels whose span is far below the mean
	// ring gap — they all resolve to the immediate successor anyway.
	fingerFloor int

	queries []*dhtChurnQuery
	run     ChurnSchemeRun
}

func dhtRingLess(a, x, b chord.Key) bool { // x ∈ (a, b) clockwise
	if a < b {
		return a < x && x < b
	}
	return x > a || x < b
}

func dhtRingLeq(a, x, b chord.Key) bool { // x ∈ (a, b] clockwise
	return x == b || dhtRingLess(a, x, b)
}

func newDHTChurn(p DHTParams, seed int64) *dhtChurn {
	cp := p.Churn
	m := &dhtChurn{
		p:   p,
		sim: netsim.NewSimSeeded(seed),
		reg: newAliveRegistry(cp.Nodes),
	}
	m.mesh = netsim.NewMesh(m.sim, cp.Nodes, cp.Latency)
	m.mesh.SetHandler(m.handle)
	m.key = make([]chord.Key, cp.Nodes)
	for i := range m.key {
		m.key[i] = chord.HashString("n" + strconv.Itoa(i))
	}
	m.kwKey = make([]chord.Key, cp.Keywords)
	for kw := range m.kwKey {
		m.kwKey[kw] = chord.HashString("kw" + strconv.Itoa(kw))
	}
	m.succs = make([][]int32, cp.Nodes)
	m.fingers = make([][]int32, cp.Nodes)
	m.postings = make([][][]int32, cp.Nodes)
	bits := 0
	for 1<<bits < cp.Nodes {
		bits++
	}
	m.fingerFloor = chord.Bits - bits - 4
	if m.fingerFloor < 0 {
		m.fingerFloor = 0
	}

	rng := m.sim.Rand()
	m.bases = make([]int32, cp.Bases)
	for bi := range m.bases {
		m.bases[bi] = int32(bi)
	}
	// Same holder-placement rule as the churn model: keywords live on
	// non-base nodes, one keyword per holder.
	taken := make([]bool, cp.Nodes)
	m.byKw = make([][]int32, cp.Keywords)
	for kw := 0; kw < cp.Keywords; kw++ {
		for len(m.byKw[kw]) < cp.HoldersPerKeyword {
			j := int32(cp.Bases + rng.Intn(cp.Nodes-cp.Bases))
			if !taken[j] {
				taken[j] = true
				m.byKw[kw] = append(m.byKw[kw], j)
			}
		}
	}
	return m
}

// rebuild refreshes every alive member's successor list and fingers from
// the registry's current view, charging the maintenance pings that a
// live ring would spend to arrive at the same state. Crashed-but-not-
// swept members stay in the view as *targets* — the staleness neighbors
// route into until the sweep.
func (m *dhtChurn) rebuild() {
	m.sorted = m.sorted[:0]
	m.sorted = append(m.sorted, m.reg.list...)
	sort.Slice(m.sorted, func(i, j int) bool { return m.key[m.sorted[i]] < m.key[m.sorted[j]] })
	m.skeys = m.skeys[:0]
	for _, id := range m.sorted {
		m.skeys = append(m.skeys, m.key[id])
	}
	n := len(m.sorted)
	if n == 0 {
		return
	}
	succLen := m.p.SuccLen
	// Each tick pings successors and finger extremes, so by the next
	// rebuild every target that died before the previous tick has been
	// condemned: the rebuilt tables skip currently-dead nodes. Deaths
	// since the last tick — and crashed members the registry has not
	// swept yet showing up as *candidates* — remain the staleness the
	// routing pays for.
	aliveAt := func(j int) (int32, bool) {
		for step := 0; step < n; step++ {
			if cand := m.sorted[(j+step)%n]; m.mesh.Alive(cand) {
				return cand, true
			}
		}
		return 0, false
	}
	for pos, id := range m.sorted {
		if !m.mesh.Alive(id) {
			continue // a corpse maintains nothing
		}
		succs := m.succs[id][:0]
		for step := 1; step < n && len(succs) < succLen; step++ {
			if cand := m.sorted[(pos+step)%n]; m.mesh.Alive(cand) {
				succs = append(succs, cand)
			}
		}
		m.succs[id] = succs
		fingers := m.fingers[id][:0]
		for lvl := m.fingerFloor; lvl < chord.Bits; lvl++ {
			target := m.key[id] + chord.Key(1)<<uint(lvl)
			j := sort.Search(n, func(i int) bool { return m.skeys[i] >= target })
			if j == n {
				j = 0
			}
			f, ok := aliveAt(j)
			if !ok || f == id || (len(fingers) > 0 && fingers[len(fingers)-1] == f) {
				continue
			}
			fingers = append(fingers, f)
		}
		m.fingers[id] = fingers
		// Maintenance traffic: one ping per successor plus the finger
		// extremes — the liveness checks a running ring pays each tick.
		for _, s := range succs {
			m.mesh.Send(s, netsim.MeshMsg{From: id, Kind: cdPing})
		}
		if len(fingers) > 0 {
			m.mesh.Send(fingers[0], netsim.MeshMsg{From: id, Kind: cdPing})
			m.mesh.Send(fingers[len(fingers)-1], netsim.MeshMsg{From: id, Kind: cdPing})
		}
	}
}

// nextHop picks the routing step for key t at node v: deliver to the
// immediate successor when it owns t, otherwise the closest preceding
// finger (then successor) — the chord rule over the model's tables.
func (m *dhtChurn) nextHop(v int32, t chord.Key) (next int32, final, ok bool) {
	succs := m.succs[v]
	if len(succs) == 0 {
		return 0, false, false
	}
	s0 := succs[0]
	if dhtRingLeq(m.key[v], t, m.key[s0]) {
		return s0, true, true
	}
	for i := len(m.fingers[v]) - 1; i >= 0; i-- {
		if f := m.fingers[v][i]; dhtRingLess(m.key[v], m.key[f], t) {
			return f, false, true
		}
	}
	for i := len(succs) - 1; i >= 0; i-- {
		if s := succs[i]; dhtRingLess(m.key[v], m.key[s], t) {
			return s, false, true
		}
	}
	return s0, false, true
}

// forward takes one routing step for a lookup (kind cdLookup, A = qid)
// or a publish (kind cdPublish, A = holder<<4 | kw).
func (m *dhtChurn) forward(v int32, kind, a int32, t chord.Key, hops int) {
	if hops >= m.p.ChordTTL {
		return
	}
	next, final, ok := m.nextHop(v, t)
	if !ok {
		return
	}
	b := int32(hops + 1)
	if final {
		b |= cdFinal
	}
	m.mesh.Send(next, netsim.MeshMsg{From: v, Kind: kind, A: a, B: b})
}

func (m *dhtChurn) handle(to int32, msg netsim.MeshMsg) {
	switch msg.Kind {
	case cdLookup:
		q := m.queries[msg.A-1]
		if q.closed {
			return
		}
		hops := int(msg.B &^ cdFinal)
		if msg.B&cdFinal == 0 {
			m.forward(to, cdLookup, msg.A, q.key, hops)
			return
		}
		// This node owns the key: answer with the posted holders that
		// are alive right now.
		cnt := int32(0)
		if ps := m.postings[to]; ps != nil {
			for _, h := range ps[q.kw] {
				if m.mesh.Alive(h) {
					cnt++
				}
			}
		}
		m.mesh.Send(q.base, netsim.MeshMsg{From: to, Kind: cdAnswer, A: msg.A, B: int32(hops), C: cnt})
	case cdAnswer:
		q := m.queries[msg.A-1]
		if q.closed {
			return
		}
		q.answers += int(msg.C)
		q.hops += int(msg.B)
		q.nAns++
	case cdPublish:
		// A packs holder<<4 | keyword, which caps the model at 16
		// keywords — double the committed configuration.
		kw := int(msg.A & 0xf)
		holder := msg.A >> 4
		hops := int(msg.B &^ cdFinal)
		if msg.B&cdFinal == 0 {
			m.forward(to, cdPublish, msg.A, m.kwKey[kw], hops)
			return
		}
		m.store(to, kw, holder)
	case cdPing:
		// Pure maintenance cost; the registry is the failure detector.
	}
}

// store indexes holder under kw at node `to`, deduplicating.
func (m *dhtChurn) store(to int32, kw int, holder int32) {
	if m.postings[to] == nil {
		m.postings[to] = make([][]int32, m.p.Churn.Keywords)
	}
	for _, h := range m.postings[to][kw] {
		if h == holder {
			return
		}
	}
	m.postings[to][kw] = append(m.postings[to][kw], holder)
}

// republish has every alive holder re-route its posting toward the
// current owner — the index's self-repair after ownership shifts and
// crashes.
func (m *dhtChurn) republish() {
	for kw, holders := range m.byKw {
		for _, h := range holders {
			if m.mesh.Alive(h) {
				m.forward(h, cdPublish, h<<4|int32(kw), m.kwKey[kw], 0)
			}
		}
	}
}

// seedIndex installs the initial postings directly at their owners: the
// index predates the measurement window.
func (m *dhtChurn) seedIndex() {
	n := len(m.sorted)
	for kw, holders := range m.byKw {
		j := sort.Search(n, func(i int) bool { return m.skeys[i] >= m.kwKey[kw] })
		if j == n {
			j = 0
		}
		owner := m.sorted[j]
		for _, h := range holders {
			m.store(owner, kw, h)
		}
	}
}

func (m *dhtChurn) apply(ev workload.ChurnEvent) {
	node := int32(ev.Node)
	switch ev.Op {
	case workload.OpJoin:
		if m.mesh.Alive(node) {
			return
		}
		m.mesh.SetAlive(node, true)
		m.reg.Add(node)
		// A fresh process: no routing state (until the next repair
		// tick), no stored postings.
		m.succs[node] = m.succs[node][:0]
		m.fingers[node] = m.fingers[node][:0]
		m.postings[node] = nil
	case workload.OpLeave:
		if !m.mesh.Alive(node) {
			return
		}
		// Graceful leave: hand stored postings to the first alive
		// successor before deregistering.
		if ps := m.postings[node]; ps != nil {
			var heir int32 = -1
			for _, s := range m.succs[node] {
				if m.mesh.Alive(s) {
					heir = s
					break
				}
			}
			if heir >= 0 {
				for kw, holders := range ps {
					for _, h := range holders {
						m.mesh.Send(heir, netsim.MeshMsg{
							From: node, Kind: cdPublish,
							A: h<<4 | int32(kw), B: 1 | cdFinal,
						})
					}
				}
				m.run.DepartsDelivered++
			}
		}
		m.reg.Remove(node)
		m.mesh.SetAlive(node, false)
		m.postings[node] = nil
	case workload.OpCrash:
		if !m.mesh.Alive(node) {
			return
		}
		// Stored postings are stranded until owners republish; the
		// registry keeps the corpse until its sweep.
		m.mesh.SetAlive(node, false)
	}
}

func (m *dhtChurn) sweep() {
	for idx := len(m.reg.list) - 1; idx >= 0; idx-- {
		if n := m.reg.list[idx]; !m.mesh.Alive(n) {
			m.reg.Remove(n)
		}
	}
}

func (m *dhtChurn) aliveHolders(kw int) int {
	n := 0
	for _, h := range m.byKw[kw] {
		if m.mesh.Alive(h) {
			n++
		}
	}
	return n
}

func (m *dhtChurn) issueRound(round int) {
	cp := m.p.Churn
	alive := m.mesh.AliveCount()
	msgsBefore := m.mesh.Stats().Sent
	var roundQs []*dhtChurnQuery
	for bi, b := range m.bases {
		kw := bi % cp.Keywords
		denom := m.aliveHolders(kw)
		if denom == 0 {
			continue
		}
		qid := int32(len(m.queries) + 1)
		q := &dhtChurnQuery{kw: kw, key: m.kwKey[kw], base: b, denom: denom}
		m.queries = append(m.queries, q)
		roundQs = append(roundQs, q)
		m.forward(b, cdLookup, qid, q.key, 0)
	}
	m.sim.After(cp.CollectAfter, func() { m.closeRound(round, roundQs, alive, msgsBefore) })
}

func (m *dhtChurn) closeRound(round int, qs []*dhtChurnQuery, alive int, msgsBefore uint64) {
	recallSum := 0.0
	hopSum, nAns := 0, 0
	for _, q := range qs {
		q.closed = true
		r := float64(q.answers) / float64(q.denom)
		if r > 1 {
			r = 1 // a holder can rejoin inside the collect window
		}
		recallSum += r
		hopSum += q.hops
		nAns += q.nAns
	}
	sample := ChurnSample{
		Round: round,
		TMS:   ms(m.sim.Now()),
		Alive: alive,
		Msgs:  m.mesh.Stats().Sent - msgsBefore,
	}
	if len(qs) > 0 {
		sample.Recall = recallSum / float64(len(qs))
	}
	if nAns > 0 {
		sample.MeanHops = float64(hopSum) / float64(nAns)
	}
	m.run.Samples = append(m.run.Samples, sample)
}

// runDHTChurn executes the chord scheme on the shared churn trace.
func runDHTChurn(p DHTParams, seed int64) ChurnSchemeRun {
	cp := p.Churn
	m := newDHTChurn(p, seed)
	m.run.Scheme = "chd"

	trace := workload.Merge(
		workload.ExponentialSessions(cp.Nodes, cp.Horizon, cp.MeanSession, cp.MeanDowntime, cp.GracefulFrac, seed),
		workload.CorrelatedFailureBurst(cp.Nodes, cp.BurstFrac, cp.BurstAt, seed+1),
	)
	for _, ev := range trace {
		if ev.Node < cp.Bases {
			continue
		}
		ev := ev
		m.sim.At(ev.At, func() { m.apply(ev) })
	}

	m.rebuild() // everyone starts converged, like the other schemes' overlays
	m.seedIndex()
	for t := cp.RepairEvery; t <= cp.Horizon; t += cp.RepairEvery {
		m.sim.At(t, m.rebuild)
	}
	for t := cp.SweepEvery; t <= cp.Horizon; t += cp.SweepEvery {
		m.sim.At(t, m.sweep)
	}
	for t := p.RepublishEvery; t <= cp.Horizon; t += p.RepublishEvery {
		m.sim.At(t, m.republish)
	}
	round := 0
	for t := cp.SampleEvery; t+cp.CollectAfter <= cp.Horizon; t += cp.SampleEvery {
		round++
		r := round
		m.sim.At(t, func() { m.issueRound(r) })
	}
	m.sim.Run()

	m.run.Msgs = m.mesh.Stats().Sent
	finishChurnRun(&m.run, cp)
	return m.run
}

// DHT runs the full T4 experiment: the static comparison plus the churn
// runs (chd against the bpr and flood baselines on the same trace).
func DHT(p DHTParams, seed int64) *DHTResult {
	plan := newDHTPlan(p, seed)
	out := &DHTResult{
		Nodes:      p.Nodes,
		HopBound:   dhtHopBound(p.Nodes),
		Static:     runDHTStatic(p, plan, seed),
		ChurnNodes: p.Churn.Nodes,
	}
	out.Churn = append(out.Churn, runDHTChurn(p, seed))
	for _, scheme := range []string{"bpr", "flood"} {
		out.Churn = append(out.Churn, runChurnScheme(p.Churn, scheme, seed))
	}
	return out
}

// FigDHT renders the T4 figures: per-scheme messages on each static
// workload, and the recall-under-churn timeline with chd alongside the
// C1 baselines.
func FigDHT(p DHTParams, seed int64) ([]*Figure, *DHTResult) {
	res := DHT(p, seed)
	msgs := &Figure{
		ID:     "T4",
		Title:  "DHT vs flood vs BPR: messages per lookup (" + strconv.Itoa(p.Nodes) + " nodes; x=1 exact, x=2 keyword)",
		XLabel: "workload", YLabel: "messages per lookup",
	}
	for _, scheme := range []string{"chd", "flood", "bpr"} {
		s := Series{Name: scheme}
		for wi, wl := range []string{"exact", "keyword"} {
			if run := res.StaticRun(scheme, wl); run != nil && run.Lookups > 0 {
				s.Points = append(s.Points, Point{float64(wi + 1), float64(run.Msgs) / float64(run.Lookups)})
			}
		}
		msgs.Series = append(msgs.Series, s)
	}
	churn := &Figure{
		ID:     "T4c",
		Title:  "Recall under churn with chord (" + strconv.Itoa(p.Churn.Nodes) + " nodes, burst at " + p.Churn.BurstAt.String() + ")",
		XLabel: "time (ms)", YLabel: "recall",
	}
	for _, run := range res.Churn {
		s := Series{Name: run.Scheme}
		for _, smp := range run.Samples {
			s.Points = append(s.Points, Point{smp.TMS, smp.Recall})
		}
		churn.Series = append(churn.Series, s)
	}
	return []*Figure{msgs, churn}, res
}
