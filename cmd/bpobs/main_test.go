package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bestpeer/internal/agent"
	"bestpeer/internal/core"
	"bestpeer/internal/observatory"
	"bestpeer/internal/storm"
	"bestpeer/internal/transport"
)

// TestFleetObservatorySmoke is the ci-target smoke test for bpobs: it
// boots the same stack main() observes — two TCP nodes with admin
// endpoints — points an observatory at them, and scrapes the fleet
// snapshot over real HTTP. The topology must contain both members.
func TestFleetObservatorySmoke(t *testing.T) {
	nodes := make([]*core.Node, 2)
	admins := make([]string, 2)
	for i := range nodes {
		store, err := storm.Open(filepath.Join(t.TempDir(), fmt.Sprintf("obs%d.storm", i)), storm.Options{})
		if err != nil {
			t.Fatalf("open store: %v", err)
		}
		if _, err := store.Put(&storm.Object{
			Name: fmt.Sprintf("smoke-%d.txt", i), Keywords: []string{"smoke"}, Data: []byte("hello"),
		}); err != nil {
			t.Fatalf("put: %v", err)
		}
		node, err := core.NewNode(core.Config{
			Network:    transport.TCP{},
			ListenAddr: "127.0.0.1:0",
			Store:      store,
			MaxPeers:   5,
			DefaultTTL: 7,
		})
		if err != nil {
			t.Fatalf("start node: %v", err)
		}
		srv, err := node.ServeAdmin("")
		if err != nil {
			t.Fatalf("serve admin: %v", err)
		}
		nodes[i] = node
		admins[i] = srv.Addr()
		t.Cleanup(func() {
			node.Close()
			store.Close()
		})
	}
	nodes[0].SetPeers([]core.Peer{{Addr: nodes[1].Addr()}})
	nodes[1].SetPeers([]core.Peer{{Addr: nodes[0].Addr()}})

	res, err := nodes[0].Query(&agent.KeywordAgent{Query: "smoke"},
		core.QueryOptions{Timeout: time.Second, WaitAnswers: 2})
	if err != nil {
		t.Fatalf("query: %v", err)
	}

	srv, err := observatory.StartServer("", observatory.NewCollector(admins...))
	if err != nil {
		t.Fatalf("start observatory: %v", err)
	}
	defer srv.Close()

	var snap observatory.FleetSnapshot
	getJSON(t, "http://"+srv.Addr()+"/fleet", &snap)
	if len(snap.Nodes) != 2 {
		t.Fatalf("/fleet reports %d nodes, want 2", len(snap.Nodes))
	}
	for _, v := range snap.Nodes {
		if v.Err != "" {
			t.Fatalf("member %s scrape error: %s", v.Admin, v.Err)
		}
	}
	if len(snap.Events) == 0 {
		t.Fatal("/fleet collected no events")
	}

	var topo map[string][]string
	getJSON(t, "http://"+srv.Addr()+"/fleet/topology", &topo)
	for i, node := range nodes {
		peers, ok := topo[node.Addr()]
		if !ok {
			t.Fatalf("topology is missing member %d (%s): %v", i, node.Addr(), topo)
		}
		if len(peers) != 1 || peers[0] != nodes[1-i].Addr() {
			t.Fatalf("member %d peers = %v, want [%s]", i, peers, nodes[1-i].Addr())
		}
	}

	var rounds []observatory.Round
	getJSON(t, "http://"+srv.Addr()+"/fleet/convergence", &rounds)
	if len(rounds) != 1 || rounds[0].Query != res.ID.String() {
		t.Fatalf("/fleet/convergence = %+v, want the one issued query", rounds)
	}

	var trace observatory.FleetTrace
	getJSON(t, "http://"+srv.Addr()+"/fleet/trace/"+res.ID.String(), &trace)
	if trace.Base != nodes[0].Addr() || len(trace.Spans) == 0 {
		t.Fatalf("/fleet/trace = %+v, want spans rooted at %s", trace, nodes[0].Addr())
	}

	// The health pipeline rides the same scrapes: both members report
	// up with the stock rules armed and nothing firing.
	var hv observatory.HealthView
	getJSON(t, "http://"+srv.Addr()+"/fleet/health", &hv)
	if len(hv.Members) != 2 || len(hv.Rules) == 0 {
		t.Fatalf("/fleet/health = %+v, want 2 members with rules", hv)
	}
	for admin, mh := range hv.Members {
		if mh.Signals[observatory.SigUp] != 1 {
			t.Fatalf("member %s signals = %+v, want up=1", admin, mh.Signals)
		}
	}
	if len(hv.Active) != 0 {
		t.Fatalf("/fleet/health active = %+v, want none firing", hv.Active)
	}

	resp, err := http.Get("http://" + srv.Addr() + "/fleet/dashboard")
	if err != nil {
		t.Fatalf("GET /fleet/dashboard: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read dashboard: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/fleet/dashboard status %d: %s", resp.StatusCode, body)
	}
	text := string(body)
	for _, want := range []string{"fleet health", "none firing", "rules"} {
		if !strings.Contains(text, want) {
			t.Fatalf("dashboard missing %q:\n%s", want, text)
		}
	}
}

// TestMemberPhaseJitter pins the scrape-phase contract: deterministic
// for a fixed seed, inside [0, interval), and actually spread (a herd
// of members must not share one instant).
func TestMemberPhaseJitter(t *testing.T) {
	const interval = 5 * time.Second
	seen := make(map[time.Duration]int)
	for i := 0; i < 64; i++ {
		addr := fmt.Sprintf("10.0.0.%d:9090", i)
		p := memberPhase(addr, 42, interval)
		if p != memberPhase(addr, 42, interval) {
			t.Fatalf("phase for %s is not deterministic", addr)
		}
		if p < 0 || p >= interval {
			t.Fatalf("phase for %s = %v, want [0, %v)", addr, p, interval)
		}
		seen[p]++
	}
	if len(seen) < 32 {
		t.Fatalf("64 members landed on only %d distinct phases", len(seen))
	}
	if memberPhase("10.0.0.1:9090", 1, interval) == memberPhase("10.0.0.1:9090", 2, interval) {
		t.Fatal("different seeds produced the same phase")
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("GET %s: decode: %v\n%s", url, err, body)
	}
}
