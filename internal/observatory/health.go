// Fleet health engine: scrapes fold into derived per-member signals,
// signals feed fixed-capacity time series, and threshold rules with
// hysteresis plus minimum-hold durations decide when a member is in
// trouble. Firing and clearing become journalled fleet events with
// full provenance — rule, series, threshold, observed value, and the
// exemplar trace ID of the slowest recent query when one is known —
// so an alert links straight to /fleet/trace/<id>.
package observatory

import (
	"sort"
	"sync"
	"time"

	"bestpeer/internal/obs"
)

// Rule is one health threshold over a derived series. A rule fires
// when the signal stays on the breach side of Fire for at least Hold,
// and clears only after the signal stays on the safe side of Clear for
// at least ClearHold. Fire and Clear differ (hysteresis) so a signal
// oscillating around one threshold — exactly what 25% message loss
// produces — cannot flap the alert.
type Rule struct {
	// Name identifies the rule in alerts and journal events.
	Name string `json:"name"`
	// Series is the derived signal the rule watches.
	Series string `json:"series"`
	// Help describes what a firing means and what to look at.
	Help string `json:"help,omitempty"`
	// Below inverts the comparison: the rule breaches when the signal
	// drops below Fire (cache hit collapse, member down) instead of
	// rising above it.
	Below bool `json:"below,omitempty"`
	// Fire is the breach threshold, Clear the recovery threshold. For
	// an above-rule Clear ≤ Fire; for a below-rule Clear ≥ Fire. Equal
	// values disable the hysteresis band but keep the hold times.
	Fire  float64 `json:"fire"`
	Clear float64 `json:"clear"`
	// Hold is how long the breach must persist before the alert fires
	// (zero fires on first breach). ClearHold is the same for clearing.
	Hold      time.Duration `json:"hold"`
	ClearHold time.Duration `json:"clear_hold"`
}

// breached reports whether v is on the firing side of the rule.
func (r Rule) breached(v float64) bool {
	if r.Below {
		return v < r.Fire
	}
	return v > r.Fire
}

// safe reports whether v is on the clearing side of the rule. Between
// Clear and Fire lies the dead band: neither breached nor safe, so a
// pending fire resets but a firing alert does not clear.
func (r Rule) safe(v float64) bool {
	if r.Below {
		return v >= r.Clear
	}
	return v <= r.Clear
}

// Alert is one firing (or just-cleared) rule instance on one member.
type Alert struct {
	Rule   string `json:"rule"`
	Series string `json:"series"`
	Member string `json:"member"`
	Firing bool   `json:"firing"`
	// At is when the state last changed, Since when the underlying
	// breach began (Since ≤ At by at least Hold for a firing alert).
	At    time.Time `json:"at"`
	Since time.Time `json:"since"`
	// Value is the signal level at the transition, Threshold the bound
	// it crossed.
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	// Exemplar is the trace/query ID linked to the breach when the
	// member's latency histograms retained one.
	Exemplar string `json:"exemplar,omitempty"`
}

// ruleState is the per-(member, rule) hysteresis state machine.
type ruleState struct {
	firing       bool
	pendingSince time.Time // zero: no pending transition
	firedSince   time.Time // breach start of the current firing
}

// Health evaluates rules over ingested signals and journals the
// transitions. Safe for concurrent use.
type Health struct {
	mu      sync.Mutex
	rules   []Rule
	ts      *SeriesStore
	journal *obs.Journal
	states  map[string]map[string]*ruleState // member -> rule name -> state
	active  map[string]map[string]*Alert     // member -> rule name -> firing alert
	lastAt  time.Time
}

// NewHealth creates a health engine over the given rules, retaining
// seriesCap points per (member, series) ring and journalCap alert
// events (≤ 0 selects the defaults).
func NewHealth(rules []Rule, seriesCap, journalCap int) *Health {
	return &Health{
		rules:   append([]Rule(nil), rules...),
		ts:      NewSeriesStore(seriesCap),
		journal: obs.NewJournal("observatory", journalCap),
		states:  make(map[string]map[string]*ruleState),
		active:  make(map[string]map[string]*Alert),
	}
}

// SetRules replaces the rule set. Existing per-rule states are kept by
// rule name, so tuning a threshold does not reset in-flight alerts.
func (h *Health) SetRules(rules []Rule) {
	h.mu.Lock()
	h.rules = append([]Rule(nil), rules...)
	h.mu.Unlock()
}

// Rules returns a copy of the rule set.
func (h *Health) Rules() []Rule {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]Rule(nil), h.rules...)
}

// Series exposes the underlying time-series store.
func (h *Health) Series() *SeriesStore { return h.ts }

// Journal exposes the alert event journal.
func (h *Health) Journal() *obs.Journal { return h.journal }

// Ingest records one scrape's derived signals for a member at time at,
// evaluates every rule whose series was sampled, and returns the
// alerts that transitioned (fired or cleared) during this ingest.
// exemplar, when non-empty, is attached to fired alerts and their
// journal events.
func (h *Health) Ingest(member string, at time.Time, signals map[string]float64, exemplar string) []Alert {
	h.mu.Lock()
	defer h.mu.Unlock()
	for name, v := range signals {
		h.ts.Add(member, name, TSPoint{At: at, V: v})
	}
	if at.After(h.lastAt) {
		h.lastAt = at
	}
	var transitions []Alert
	for _, r := range h.rules {
		v, ok := signals[r.Series]
		if !ok {
			continue // signal not derivable this window (e.g. no cache lookups)
		}
		st := h.state(member, r.Name)
		switch {
		case !st.firing && r.breached(v):
			if st.pendingSince.IsZero() {
				st.pendingSince = at
			}
			if at.Sub(st.pendingSince) >= r.Hold {
				st.firing = true
				st.firedSince = st.pendingSince
				st.pendingSince = time.Time{}
				a := h.transition(r, member, true, at, st.firedSince, v, exemplar)
				transitions = append(transitions, a)
			}
		case !st.firing:
			// Safe or dead band while not firing: a pending fire resets.
			st.pendingSince = time.Time{}
		case st.firing && r.safe(v):
			if st.pendingSince.IsZero() {
				st.pendingSince = at
			}
			if at.Sub(st.pendingSince) >= r.ClearHold {
				st.firing = false
				since := st.firedSince
				st.pendingSince = time.Time{}
				st.firedSince = time.Time{}
				a := h.transition(r, member, false, at, since, v, exemplar)
				transitions = append(transitions, a)
			}
		default:
			// Breached or dead band while firing: a pending clear resets.
			st.pendingSince = time.Time{}
		}
	}
	return transitions
}

// state returns (creating if needed) the member's state for the rule.
// Caller holds h.mu.
func (h *Health) state(member, rule string) *ruleState {
	byRule, ok := h.states[member]
	if !ok {
		byRule = make(map[string]*ruleState)
		h.states[member] = byRule
	}
	st, ok := byRule[rule]
	if !ok {
		st = &ruleState{}
		byRule[rule] = st
	}
	return st
}

// transition records a fire/clear: updates the active set and appends
// the journal event. Caller holds h.mu.
func (h *Health) transition(r Rule, member string, firing bool, at, since time.Time, v float64, exemplar string) Alert {
	a := Alert{
		Rule: r.Name, Series: r.Series, Member: member,
		Firing: firing, At: at, Since: since,
		Value: v, Threshold: r.Fire,
	}
	kind := obs.EvAlertCleared
	if firing {
		kind = obs.EvAlertRaised
		a.Exemplar = exemplar
		byRule, ok := h.active[member]
		if !ok {
			byRule = make(map[string]*Alert)
			h.active[member] = byRule
		}
		cp := a
		byRule[r.Name] = &cp
	} else {
		a.Threshold = r.Clear
		delete(h.active[member], r.Name)
		if len(h.active[member]) == 0 {
			delete(h.active, member)
		}
	}
	h.journal.Append(obs.Event{
		At:        at,
		Kind:      kind,
		Node:      member,
		Reason:    r.Name,
		Strategy:  r.Series,
		Query:     a.Exemplar,
		Value:     v,
		Threshold: a.Threshold,
	})
	return a
}

// Active returns the currently firing alerts, ordered by member then
// rule name.
func (h *Health) Active() []Alert {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []Alert
	for _, byRule := range h.active {
		for _, a := range byRule {
			out = append(out, *a)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Member != out[j].Member {
			return out[i].Member < out[j].Member
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

// MemberHealth is one member's line in the fleet health view: the
// latest value of each derived series plus the member's firing alerts.
type MemberHealth struct {
	Signals map[string]float64 `json:"signals"`
	Alerts  []Alert            `json:"alerts,omitempty"`
}

// HealthView is the /fleet/health payload.
type HealthView struct {
	At      time.Time               `json:"at"`
	Rules   []Rule                  `json:"rules"`
	Members map[string]MemberHealth `json:"members"`
	Active  []Alert                 `json:"active"`
}

// View assembles the fleet-wide health summary.
func (h *Health) View() HealthView {
	active := h.Active()
	h.mu.Lock()
	view := HealthView{
		At:      h.lastAt,
		Rules:   append([]Rule(nil), h.rules...),
		Members: make(map[string]MemberHealth),
		Active:  active,
	}
	h.mu.Unlock()
	for _, member := range h.ts.Members() {
		mh := MemberHealth{Signals: make(map[string]float64)}
		for _, name := range h.ts.Names(member) {
			if p, ok := h.ts.Last(member, name); ok {
				mh.Signals[name] = p.V
			}
		}
		for _, a := range active {
			if a.Member == member {
				mh.Alerts = append(mh.Alerts, a)
			}
		}
		view.Members[member] = mh
	}
	return view
}

// Derived signal names. Each is computed per scrape window by
// DeriveSignals from a member's metric deltas, journal events and
// liveness.
const (
	// SigUp is 1 when the member's admin endpoint answered, 0 when not.
	SigUp = "up"
	// SigSendQueueDepth is the transport's summed send-queue depth — a
	// level, not a rate; saturation means deliveries are not draining.
	SigSendQueueDepth = "send_queue_depth"
	// SigSuspectChurnPerS is peer-suspect transitions per second.
	SigSuspectChurnPerS = "suspect_churn_per_s"
	// SigJournalOverflowPerS is journal evictions per second — the rate
	// at which the member is losing observability history.
	SigJournalOverflowPerS = "journal_overflow_per_s"
	// SigCacheHitRate is the qroute answer-cache hit fraction over the
	// window, only emitted when the window saw lookups.
	SigCacheHitRate = "cache_hit_rate"
	// SigRepairAddedPerS is crash-repair peer additions per second — a
	// sustained high rate means repair is not converging.
	SigRepairAddedPerS = "repair_added_per_s"
)

// MemberSample is one scrape's raw material for signal derivation.
type MemberSample struct {
	At      time.Time
	Up      bool
	Metrics *obs.Snapshot
	// Events are the journal events newly read this scrape; Evicted is
	// the journal's lifetime eviction counter.
	Events  []obs.Event
	Evicted uint64
}

// DeriveSignals folds two consecutive samples of one member into the
// derived signal map. Rates use the inter-sample wall-clock window;
// the first sample of a member (prev.At zero) yields levels only,
// because there is no window to rate over.
func DeriveSignals(prev, cur MemberSample) map[string]float64 {
	signals := make(map[string]float64)
	if cur.Up {
		signals[SigUp] = 1
	} else {
		signals[SigUp] = 0
		return signals
	}
	if cur.Metrics == nil {
		return signals
	}
	signals[SigSendQueueDepth] = cur.Metrics.Total("bestpeer_transport_send_queue_depth")
	window := 0.0
	if !prev.At.IsZero() && cur.At.After(prev.At) {
		window = cur.At.Sub(prev.At).Seconds()
	}
	if window <= 0 {
		return signals
	}
	suspects := 0
	for _, e := range cur.Events {
		if e.Kind == obs.EvPeerSuspect {
			suspects++
		}
	}
	signals[SigSuspectChurnPerS] = float64(suspects) / window
	if cur.Evicted >= prev.Evicted {
		signals[SigJournalOverflowPerS] = float64(cur.Evicted-prev.Evicted) / window
	}
	d := cur.Metrics.DeltaSince(prev.Metrics)
	hits := d.Total("bestpeer_qroute_cache_hits_total")
	misses := d.Total("bestpeer_qroute_cache_misses_total")
	if hits+misses > 0 {
		signals[SigCacheHitRate] = hits / (hits + misses)
	}
	signals[SigRepairAddedPerS] = d.Total("bestpeer_node_repair_peers_added_total") / window
	return signals
}

// DefaultRules is the stock rule set for a live fleet scraped every
// few seconds. Thresholds assume interactive scale; benches and tests
// substitute scaled sets via SetRules.
func DefaultRules() []Rule {
	return []Rule{
		{
			Name: "member-down", Series: SigUp, Below: true,
			Help: "the member's admin endpoint stopped answering scrapes",
			Fire: 0.5, Clear: 0.5, Hold: 0, ClearHold: 0,
		},
		{
			Name: "suspect-churn", Series: SigSuspectChurnPerS,
			Help: "peers are crossing the suspect threshold faster than steady-state loss explains; look for a partition or a dead neighbor",
			Fire: 0.5, Clear: 0.1, Hold: 2 * time.Second, ClearHold: 5 * time.Second,
		},
		{
			Name: "send-queue-saturation", Series: SigSendQueueDepth,
			Help: "outbound send queues are not draining; deliveries are stalled behind a hung or unreachable destination",
			Fire: 32, Clear: 8, Hold: 2 * time.Second, ClearHold: 5 * time.Second,
		},
		{
			Name: "journal-overflow", Series: SigJournalOverflowPerS,
			Help: "the member is evicting journal events faster than the observatory scrapes them; raise JournalCapacity or the scrape rate",
			Fire: 50, Clear: 10, Hold: 2 * time.Second, ClearHold: 5 * time.Second,
		},
		{
			Name: "cache-hit-collapse", Series: SigCacheHitRate, Below: true,
			Help: "the qroute answer cache stopped absorbing repeat queries; churn or invalidation storms are resetting it",
			Fire: 0.1, Clear: 0.3, Hold: 5 * time.Second, ClearHold: 5 * time.Second,
		},
		{
			Name: "repair-surge", Series: SigRepairAddedPerS,
			Help: "crash repair keeps adding peers round after round instead of converging; the overlay is still losing members",
			Fire: 2, Clear: 0.5, Hold: 2 * time.Second, ClearHold: 5 * time.Second,
		},
	}
}
