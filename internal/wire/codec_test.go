package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sampleEnvelope() *Envelope {
	return &Envelope{
		Kind: KindAgent,
		ID:   NewMsgID(),
		TTL:  7,
		Hops: 2,
		From: "node-a:4001",
		To:   "node-b:4002",
		Body: []byte("hello, peers"),
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	e := sampleEnvelope()
	frame, err := EncodeEnvelope(e)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeEnvelope(frame)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(e, got) {
		t.Fatalf("round trip mismatch:\n have %+v\n want %+v", got, e)
	}
}

func TestEncodeDecodeEmptyBody(t *testing.T) {
	e := &Envelope{Kind: KindPeerProbe, ID: NewMsgID(), TTL: 1}
	frame, err := EncodeEnvelope(e)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeEnvelope(frame)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Body != nil {
		t.Fatalf("expected nil body, got %q", got.Body)
	}
	if got.Kind != KindPeerProbe || got.TTL != 1 || got.Hops != 0 {
		t.Fatalf("fields corrupted: %+v", got)
	}
}

func TestEncodeRejectsInvalidKind(t *testing.T) {
	if _, err := EncodeEnvelope(&Envelope{Kind: KindInvalid}); err == nil {
		t.Fatal("expected error for invalid kind")
	}
	if _, err := EncodeEnvelope(&Envelope{Kind: kindSentinel}); err == nil {
		t.Fatal("expected error for out-of-range kind")
	}
}

func TestLargeBodyIsCompressed(t *testing.T) {
	e := sampleEnvelope()
	e.Body = bytes.Repeat([]byte("abcdefgh"), 4096) // highly compressible
	frame, err := EncodeEnvelope(e)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if len(frame) >= len(e.Body) {
		t.Fatalf("compressible body not compressed: frame=%d body=%d", len(frame), len(e.Body))
	}
	if frame[4]&flagGzip == 0 {
		t.Fatal("gzip flag not set on large frame")
	}
	got, err := DecodeEnvelope(frame)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(got.Body, e.Body) {
		t.Fatal("compressed round trip corrupted body")
	}
}

func TestIncompressibleBodyStaysStored(t *testing.T) {
	e := sampleEnvelope()
	body := make([]byte, 8192)
	rng := rand.New(rand.NewSource(1))
	rng.Read(body)
	e.Body = body
	frame, err := EncodeEnvelope(e)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if frame[4]&flagGzip != 0 {
		t.Fatal("random body should not carry the gzip flag")
	}
	got, err := DecodeEnvelope(frame)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(got.Body, body) {
		t.Fatal("stored round trip corrupted body")
	}
}

func TestSmallFrameSkipsCompression(t *testing.T) {
	e := &Envelope{Kind: KindPeerProbe, ID: NewMsgID(), TTL: 3, Body: []byte("ok")}
	frame, err := EncodeEnvelope(e)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if frame[4]&flagGzip != 0 {
		t.Fatal("tiny frame should not be gzipped")
	}
}

func TestDecodeRejectsTruncatedFrames(t *testing.T) {
	frame, err := EncodeEnvelope(sampleEnvelope())
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	for cut := 0; cut < len(frame); cut++ {
		if _, err := DecodeEnvelope(frame[:cut]); err == nil {
			t.Fatalf("decode accepted frame truncated to %d bytes", cut)
		}
	}
}

func TestDecodeRejectsOversizeDeclaredLength(t *testing.T) {
	frame := make([]byte, 16)
	binary.BigEndian.PutUint32(frame, MaxFrameSize+1)
	if _, err := DecodeEnvelope(frame); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
}

func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	frame, err := EncodeEnvelope(sampleEnvelope())
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if _, err := DecodeEnvelope(append(frame, 0xFF)); err == nil {
		t.Fatal("decode accepted frame with trailing byte")
	}
}

func TestReadWriteStream(t *testing.T) {
	var buf bytes.Buffer
	want := []*Envelope{
		sampleEnvelope(),
		{Kind: KindResult, ID: NewMsgID(), TTL: 1, Hops: 4, From: "x", To: "y", Body: []byte("r")},
		{Kind: KindLigloRegister, ID: NewMsgID(), TTL: 1},
	}
	for _, e := range want {
		if err := WriteEnvelope(&buf, e); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	for i, w := range want {
		got, err := ReadEnvelope(&buf)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, w) {
			t.Fatalf("stream message %d mismatch:\n have %+v\n want %+v", i, got, w)
		}
	}
	if _, err := ReadEnvelope(&buf); err != io.EOF {
		t.Fatalf("want io.EOF at end of stream, got %v", err)
	}
}

func TestConnSendRecv(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	e := sampleEnvelope()
	if err := c.Send(e); err != nil {
		t.Fatalf("send: %v", err)
	}
	got, err := c.Recv()
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if !reflect.DeepEqual(got, e) {
		t.Fatalf("conn round trip mismatch")
	}
}

func TestForwardedAdjustsCounters(t *testing.T) {
	e := sampleEnvelope()
	f := e.Forwarded("b", "c")
	if f.TTL != e.TTL-1 || f.Hops != e.Hops+1 {
		t.Fatalf("forwarded counters wrong: %+v", f)
	}
	if f.From != "b" || f.To != "c" {
		t.Fatalf("forwarded addresses wrong: %+v", f)
	}
	if e.TTL != 7 || e.Hops != 2 {
		t.Fatal("Forwarded mutated the original")
	}
	// TTL saturates at zero.
	z := &Envelope{Kind: KindAgent, TTL: 0}
	if got := z.Forwarded("a", "b"); got.TTL != 0 {
		t.Fatalf("TTL should saturate at 0, got %d", got.TTL)
	}
	if !z.Expired() {
		t.Fatal("zero-TTL envelope should be expired")
	}
}

func TestKindString(t *testing.T) {
	if KindAgent.String() != "agent" {
		t.Fatalf("KindAgent.String() = %q", KindAgent.String())
	}
	if !strings.Contains(Kind(200).String(), "200") {
		t.Fatalf("unknown kind string = %q", Kind(200).String())
	}
	for k := KindAgent; k < kindSentinel; k++ {
		if strings.HasPrefix(k.String(), "kind(") {
			t.Fatalf("kind %d has no name", k)
		}
		if !k.Valid() {
			t.Fatalf("kind %d should be valid", k)
		}
	}
	if KindInvalid.Valid() {
		t.Fatal("KindInvalid must not be valid")
	}
}

func TestNewMsgIDUnique(t *testing.T) {
	seen := make(map[MsgID]bool)
	for i := 0; i < 1000; i++ {
		id := NewMsgID()
		if id.IsZero() {
			t.Fatal("NewMsgID returned zero id")
		}
		if seen[id] {
			t.Fatalf("duplicate MsgID after %d draws", i)
		}
		seen[id] = true
	}
}

func TestBPIDString(t *testing.T) {
	b := BPID{LIGLO: "liglo-1:9000", Node: 42}
	if b.String() != "liglo-1:9000/42" {
		t.Fatalf("BPID.String() = %q", b.String())
	}
	if b.IsZero() {
		t.Fatal("assigned BPID reported zero")
	}
	if !(BPID{}).IsZero() {
		t.Fatal("zero BPID not reported zero")
	}
}

// Property: every envelope with valid kind round-trips exactly.
func TestEnvelopeRoundTripProperty(t *testing.T) {
	f := func(kindSeed uint8, ttl, hops uint8, from, to string, body []byte) bool {
		kind := Kind(kindSeed%uint8(kindSentinel-1)) + 1
		if len(from) > 1<<10 {
			from = from[:1<<10]
		}
		if len(to) > 1<<10 {
			to = to[:1<<10]
		}
		e := &Envelope{Kind: kind, ID: NewMsgID(), TTL: ttl, Hops: hops, From: from, To: to, Body: body}
		frame, err := EncodeEnvelope(e)
		if err != nil {
			return false
		}
		got, err := DecodeEnvelope(frame)
		if err != nil {
			return false
		}
		if len(body) == 0 {
			// decoder normalizes empty body to nil
			return got.Kind == e.Kind && got.ID == e.ID && got.TTL == ttl &&
				got.Hops == hops && got.From == from && got.To == to && len(got.Body) == 0
		}
		return reflect.DeepEqual(got, e)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWireSizeMatchesEncodedOrder(t *testing.T) {
	e := sampleEnvelope()
	if got, want := e.WireSize(), envelopeHeaderSize+len(e.From)+len(e.To)+len(e.Body); got != want {
		t.Fatalf("WireSize = %d, want %d", got, want)
	}
	e.Trace = &TraceContext{QueryID: NewMsgID(), Base: "base:1"}
	e.Span = &TraceSpan{Peer: "p:2", Hop: 3}
	e.QRoute = &QRoute{Via: "n:3", Cached: true, Epoch: 42}
	if got, want := e.WireSize(), len(encodeBody(e)); got != want {
		t.Fatalf("WireSize with extensions = %d, encoded body = %d", got, want)
	}
}

// --- trace extension coverage ---

func sampleTracedEnvelope() *Envelope {
	e := sampleEnvelope()
	e.Trace = &TraceContext{QueryID: NewMsgID(), Base: "base-node:4000"}
	e.Span = &TraceSpan{
		Peer: "node-b:4002", Parent: "node-a:4001", Hop: 2,
		WaitNS: 1500, ExecNS: 420000, Matches: 3, FanOut: 4,
	}
	return e
}

func TestTraceRoundTrip(t *testing.T) {
	e := sampleTracedEnvelope()
	frame, err := EncodeEnvelope(e)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeEnvelope(frame)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(e, got) {
		t.Fatalf("traced round trip mismatch:\n have %+v\n want %+v", got, e)
	}
	// Trace-only and span-only envelopes round-trip too.
	e = sampleEnvelope()
	e.Trace = &TraceContext{QueryID: NewMsgID(), Base: "b:1"}
	frame, _ = EncodeEnvelope(e)
	if got, _ = DecodeEnvelope(frame); !reflect.DeepEqual(e, got) {
		t.Fatalf("trace-only mismatch: %+v", got)
	}
	e = sampleEnvelope()
	e.Span = &TraceSpan{Peer: "p:9", Hop: 1, Drop: "duplicate"}
	frame, _ = EncodeEnvelope(e)
	if got, _ = DecodeEnvelope(frame); !reflect.DeepEqual(e, got) {
		t.Fatalf("span-only mismatch: %+v", got)
	}
}

// TestTracelessFrameMatchesLegacyLayout pins backward compatibility: an
// envelope without trace fields must encode byte-identically to the
// pre-extension format, so frames from this encoder parse under
// decoders that predate extensions.
func TestTracelessFrameMatchesLegacyLayout(t *testing.T) {
	e := sampleEnvelope()
	legacy := make([]byte, 0, 64)
	legacy = append(legacy, byte(e.Kind), e.TTL, e.Hops)
	legacy = append(legacy, e.ID[:]...)
	legacy = binary.BigEndian.AppendUint16(legacy, uint16(len(e.From)))
	legacy = append(legacy, e.From...)
	legacy = binary.BigEndian.AppendUint16(legacy, uint16(len(e.To)))
	legacy = append(legacy, e.To...)
	legacy = binary.BigEndian.AppendUint32(legacy, uint32(len(e.Body)))
	legacy = append(legacy, e.Body...)
	if !bytes.Equal(encodeBody(e), legacy) {
		t.Fatal("traceless envelope no longer matches the legacy layout")
	}
}

// TestUnknownExtensionTolerated pins forward compatibility: a frame
// carrying an extension tag this decoder does not know must still parse,
// with the unknown field dropped.
func TestUnknownExtensionTolerated(t *testing.T) {
	e := sampleTracedEnvelope()
	raw := encodeBody(e)
	raw = appendExt(raw, 250, []byte("from-the-future"))
	raw = appendExt(raw, 251, nil) // empty unknown extension

	frame := make([]byte, 0, len(raw)+5)
	frame = binary.BigEndian.AppendUint32(frame, uint32(len(raw)+1))
	frame = append(frame, 0) // no compression
	frame = append(frame, raw...)

	got, err := DecodeEnvelope(frame)
	if err != nil {
		t.Fatalf("decode with unknown extensions: %v", err)
	}
	if !reflect.DeepEqual(e, got) {
		t.Fatalf("known fields corrupted by unknown extensions:\n have %+v\n want %+v", got, e)
	}
}

func TestTruncatedExtensionRejected(t *testing.T) {
	e := sampleTracedEnvelope()
	raw := encodeBody(e)
	fixed := len(encodeBody(sampleEnvelopeFrom(e)))
	// Cuts landing exactly on a record boundary are complete (shorter)
	// frames — extensions are optional — so only mid-record cuts must
	// be rejected.
	boundary := map[int]bool{
		fixed + extHeaderSize + len(encodeTraceContext(e.Trace)): true,
	}
	for cut := fixed + 1; cut < len(raw); cut++ {
		if boundary[cut] {
			continue
		}
		frame := make([]byte, 0, cut+5)
		frame = binary.BigEndian.AppendUint32(frame, uint32(cut+1))
		frame = append(frame, 0)
		frame = append(frame, raw[:cut]...)
		if _, err := DecodeEnvelope(frame); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("cut=%d: want ErrBadFrame, got %v", cut, err)
		}
	}
}

// sampleEnvelopeFrom strips the trace fields so tests can measure where
// the fixed layout ends and extensions begin.
func sampleEnvelopeFrom(e *Envelope) *Envelope {
	cp := *e
	cp.Trace = nil
	cp.Span = nil
	cp.QRoute = nil
	return &cp
}

func TestCorruptExtensionPayloadRejected(t *testing.T) {
	e := sampleEnvelope()
	raw := encodeBody(e)
	// A trace extension whose payload is garbage must fail parsing, not
	// be silently accepted.
	raw = appendExt(raw, extTrace, []byte{0x01})
	frame := make([]byte, 0, len(raw)+5)
	frame = binary.BigEndian.AppendUint32(frame, uint32(len(raw)+1))
	frame = append(frame, 0)
	frame = append(frame, raw...)
	if _, err := DecodeEnvelope(frame); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("want ErrBadFrame for corrupt trace payload, got %v", err)
	}
}

func TestOversizeExtensionRejected(t *testing.T) {
	e := sampleEnvelope()
	e.Trace = &TraceContext{QueryID: NewMsgID(), Base: strings.Repeat("x", 1<<16)}
	if _, err := EncodeEnvelope(e); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("want ErrBadFrame for oversize trace, got %v", err)
	}
	e = sampleEnvelope()
	e.Span = &TraceSpan{Peer: strings.Repeat("y", 1<<16)}
	if _, err := EncodeEnvelope(e); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("want ErrBadFrame for oversize span, got %v", err)
	}
}

func TestForwardedSharesTraceContext(t *testing.T) {
	e := sampleTracedEnvelope()
	f := e.Forwarded("b", "c")
	if f.Trace != e.Trace {
		t.Fatal("Forwarded must share the trace context")
	}
}

// Property: traced envelopes round-trip exactly for arbitrary span
// field values, including negative-looking values in varint fields.
func TestTraceRoundTripProperty(t *testing.T) {
	f := func(base, peer, parent, drop string, hop int16, waitNS, execNS int64, matches, fanOut int16) bool {
		if len(base) > 1<<10 {
			base = base[:1<<10]
		}
		e := sampleEnvelope()
		e.Trace = &TraceContext{QueryID: NewMsgID(), Base: base}
		e.Span = &TraceSpan{
			Peer: peer, Parent: parent, Hop: int(hop),
			WaitNS: waitNS, ExecNS: execNS,
			Matches: int(matches), FanOut: int(fanOut), Drop: drop,
		}
		frame, err := EncodeEnvelope(e)
		if err != nil {
			return false
		}
		got, err := DecodeEnvelope(frame)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(e, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestParseMsgID(t *testing.T) {
	id := NewMsgID()
	got, err := ParseMsgID(id.String())
	if err != nil || got != id {
		t.Fatalf("ParseMsgID round trip: %v, %v", got, err)
	}
	if _, err := ParseMsgID("zz"); err == nil {
		t.Fatal("non-hex id must be rejected")
	}
	if _, err := ParseMsgID("abcd"); err == nil {
		t.Fatal("short id must be rejected")
	}
}

// --- qroute extension coverage ---

func sampleQRoutedEnvelope() *Envelope {
	e := sampleEnvelope()
	e.QRoute = &QRoute{Via: "node-a:4001", Cached: true, Epoch: 17}
	return e
}

func TestQRouteRoundTrip(t *testing.T) {
	e := sampleQRoutedEnvelope()
	frame, err := EncodeEnvelope(e)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeEnvelope(frame)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(e, got) {
		t.Fatalf("qroute round trip mismatch:\n have %+v\n want %+v", got, e)
	}
	// Stacked with the trace extensions it must still round-trip.
	e = sampleTracedEnvelope()
	e.QRoute = &QRoute{Via: "n:9", Epoch: 3}
	frame, _ = EncodeEnvelope(e)
	if got, _ = DecodeEnvelope(frame); !reflect.DeepEqual(e, got) {
		t.Fatalf("qroute+trace mismatch: %+v", got)
	}
	// Zero-value extension (present but empty) survives too.
	e = sampleEnvelope()
	e.QRoute = &QRoute{}
	frame, _ = EncodeEnvelope(e)
	if got, _ = DecodeEnvelope(frame); !reflect.DeepEqual(e, got) {
		t.Fatalf("zero qroute mismatch: %+v", got)
	}
}

// TestQRouteFrameUnderOldDecoder pins new-encoder → old-decoder
// compatibility. A decoder that predates the qroute extension treats tag
// extQRoute exactly like any unknown tag — skipped by length — so we
// emulate it by rewriting the tag byte to an unassigned value and
// checking every legacy field survives with the extension dropped.
func TestQRouteFrameUnderOldDecoder(t *testing.T) {
	e := sampleQRoutedEnvelope()
	raw := encodeBody(e)
	fixed := len(encodeBody(sampleEnvelopeFrom(e)))
	if raw[fixed] != extQRoute {
		t.Fatalf("expected qroute tag at offset %d, found %d", fixed, raw[fixed])
	}
	raw[fixed] = 200 // unassigned: what an old decoder effectively sees

	frame := make([]byte, 0, len(raw)+5)
	frame = binary.BigEndian.AppendUint32(frame, uint32(len(raw)+1))
	frame = append(frame, 0)
	frame = append(frame, raw...)

	got, err := DecodeEnvelope(frame)
	if err != nil {
		t.Fatalf("old decoder must tolerate the qroute extension: %v", err)
	}
	want := sampleEnvelopeFrom(e)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("legacy fields corrupted:\n have %+v\n want %+v", got, want)
	}
}

func TestCorruptQRoutePayloadRejected(t *testing.T) {
	e := sampleEnvelope()
	raw := encodeBody(e)
	// A qroute extension whose payload is truncated mid-string must fail
	// parsing, not be silently accepted.
	raw = appendExt(raw, extQRoute, []byte{0x09, 'x'})
	frame := make([]byte, 0, len(raw)+5)
	frame = binary.BigEndian.AppendUint32(frame, uint32(len(raw)+1))
	frame = append(frame, 0)
	frame = append(frame, raw...)
	if _, err := DecodeEnvelope(frame); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("want ErrBadFrame for corrupt qroute payload, got %v", err)
	}
}
