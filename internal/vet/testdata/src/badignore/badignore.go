// Package badignore is a bpvet fixture: every bpvet:ignore here is
// malformed and must surface as an "ignore" finding.
package badignore

func bare() {} //bpvet:ignore

func unknown() {} //bpvet:ignore notananalyzer this analyzer does not exist

func reasonless() {} //bpvet:ignore busypoll
