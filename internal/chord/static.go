package chord

import "sort"

// ConvergedTables builds the fully-stabilized routing state for a set of
// node addresses: the ring in key order, complete successor lists,
// correct predecessors and exact fingers — the fixed point the
// maintenance loops converge to. Simulation harnesses use it to study
// routing behaviour in isolation from the maintenance protocol; tests
// use it as the ground truth live rings are compared against. Tables are
// returned in ring (key) order.
func ConvergedTables(addrs []string, succLen int) []*Table {
	refs := make([]NodeRef, len(addrs))
	for i, a := range addrs {
		refs[i] = RefFor(a)
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].Key < refs[j].Key })
	tables := make([]*Table, len(refs))
	for i, self := range refs {
		tb := NewTable(self, succLen)
		var succs []NodeRef
		for s := 1; s <= succLen; s++ {
			succs = append(succs, refs[(i+s)%len(refs)])
		}
		tb.SetSuccessors(succs)
		tb.Notify(refs[(i+len(refs)-1)%len(refs)])
		for f := 0; f < Bits; f++ {
			start := fingerStart(self.Key, f)
			// Owner of start: the ref at minimal clockwise distance.
			best, bestDist := -1, uint64(0)
			for j, r := range refs {
				d := uint64(r.Key - start)
				if best == -1 || d < bestDist {
					best, bestDist = j, d
				}
			}
			tb.SetFinger(f, refs[best])
		}
		tables[i] = tb
	}
	return tables
}
