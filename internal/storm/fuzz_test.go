package storm

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzDecodeObject: arbitrary page records must never panic, and every
// successfully decoded object must survive an encode/decode round trip.
func FuzzDecodeObject(f *testing.F) {
	good, err := encodeObject(&Object{
		Name:        "report.txt",
		Keywords:    []string{"p2p", "storage"},
		Kind:        StaticObject,
		ActiveClass: "",
		Data:        []byte("shared bytes"),
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{objectRecordVersion})
	f.Add(bytes.Repeat([]byte{0xFF}, 32))

	f.Fuzz(func(t *testing.T, data []byte) {
		o, err := decodeObject(data)
		if err != nil {
			return
		}
		re, err := encodeObject(o)
		if err != nil {
			t.Fatalf("decoded object failed to re-encode: %v", err)
		}
		back, err := decodeObject(re)
		if err != nil {
			t.Fatalf("re-encoded object failed to decode: %v", err)
		}
		if !reflect.DeepEqual(back, o) {
			t.Fatal("object round trip changed the record")
		}
	})
}
