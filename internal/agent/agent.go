// Package agent implements BestPeer's mobile-agent engine. An agent is a
// named class plus serialized state; it travels inside wire envelopes, is
// cloned to every directly connected peer, executes against the local
// storage manager, and sends its results directly back to the base node.
//
// Code mobility workaround: Go cannot load machine code at runtime the way
// Java loads classes, so every agent class is compiled into the binary and
// registered in a Registry. Whether a node has "received" a class is
// tracked explicitly: executing an uninstalled class fails, the node
// requests the class, and the origin ships the class payload (a code blob
// with realistic size and a checksum). Installing verifies the blob and
// enables the class. This preserves everything the paper measures about
// code shipping — transfer bytes, reconstruction cost, cache hits — while
// keeping execution safe.
package agent

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"

	"bestpeer/internal/storm"
	"bestpeer/internal/wire"
)

// Registry and engine errors.
var (
	ErrUnknownClass  = errors.New("agent: unknown class")
	ErrNotInstalled  = errors.New("agent: class not installed at this node")
	ErrBadClassBlob  = errors.New("agent: class payload failed verification")
	ErrBadPacket     = errors.New("agent: malformed agent packet")
	ErrDuplicateName = errors.New("agent: class already registered")
)

// Result is one answer produced by an agent at a peer. Mode 2 (§2 of the
// paper) sends results with Data stripped — only the indication that the
// object exists.
type Result struct {
	// Name of the matching object at the answering peer.
	Name string
	// Data is the object content (empty in hint mode).
	Data []byte
}

// Context is the execution environment a host provides to a visiting
// agent: the local store and information about where the agent is and how
// far it has travelled.
type Context struct {
	// Store is the node's StorM instance holding its sharable data.
	Store *storm.Store
	// NodeAddr is the executing node's address.
	NodeAddr string
	// Hops is the number of hops the agent travelled to get here.
	Hops int
	// Requester identifies who sent the agent, for access-control
	// decisions by active objects.
	Requester wire.BPID
	// AccessLevel is the clearance the requester presents. Active
	// objects filter content against it.
	AccessLevel int
	// ActiveNodes resolves active-element names for active objects.
	// May be nil when the node shares only static files.
	ActiveNodes *ActiveSet
}

// Agent is a mobile task. Implementations must be stateless apart from
// what State captures: a clone reconstructed from State at another node
// must behave identically.
type Agent interface {
	// Class returns the agent's class name.
	Class() string
	// State serializes the agent for travel.
	State() ([]byte, error)
	// Execute runs the agent at a node and returns its answers.
	Execute(ctx *Context) ([]Result, error)
}

// Factory constructs agents of one class and owns the class's shippable
// code payload.
type Factory interface {
	// Class returns the class name.
	Class() string
	// Code returns the class payload shipped to nodes that lack the
	// class. Its length models the class's bytecode size.
	Code() []byte
	// New reconstructs an agent from serialized state.
	New(state []byte) (Agent, error)
}

// Registry tracks the agent classes a node knows (compiled in) and which
// of them are installed (received). It is safe for concurrent use.
type Registry struct {
	mu        sync.RWMutex
	factories map[string]Factory
	installed map[string]bool

	// Stats.
	Installs   uint64
	ExecDenied uint64
	CodeServed uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		factories: make(map[string]Factory),
		installed: make(map[string]bool),
	}
}

// Register adds a factory and marks its class installed — the node is an
// origin for this class.
func (r *Registry) Register(f Factory) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.factories[f.Class()]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateName, f.Class())
	}
	r.factories[f.Class()] = f
	r.installed[f.Class()] = true
	return nil
}

// RegisterDormant adds a factory without installing it: the node links
// the class but behaves as though it has never received it, so the first
// incoming agent of this class triggers a class transfer.
func (r *Registry) RegisterDormant(f Factory) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.factories[f.Class()]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateName, f.Class())
	}
	r.factories[f.Class()] = f
	return nil
}

// Installed reports whether the class is present and installed.
func (r *Registry) Installed(class string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.installed[class]
}

// Known reports whether the class is linked into this node at all.
func (r *Registry) Known(class string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.factories[class]
	return ok
}

// Code returns the shippable payload for an installed class.
func (r *Registry) Code(class string) ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.factories[class]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownClass, class)
	}
	if !r.installed[class] {
		return nil, fmt.Errorf("%w: %q", ErrNotInstalled, class)
	}
	r.CodeServed++
	return f.Code(), nil
}

// Install receives a shipped class payload, verifies it against the
// compiled-in factory's code, and enables the class. Installing an
// already-installed class is a no-op.
func (r *Registry) Install(class string, code []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.factories[class]
	if !ok {
		return fmt.Errorf("%w: %q (not linked into this binary)", ErrUnknownClass, class)
	}
	if r.installed[class] {
		return nil
	}
	want := f.Code()
	if len(code) != len(want) || crc32.ChecksumIEEE(code) != crc32.ChecksumIEEE(want) {
		return fmt.Errorf("%w: %q", ErrBadClassBlob, class)
	}
	r.installed[class] = true
	r.Installs++
	return nil
}

// New reconstructs an agent of the given class from state. The class must
// be installed.
func (r *Registry) New(class string, state []byte) (Agent, error) {
	r.mu.RLock()
	f, ok := r.factories[class]
	inst := r.installed[class]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownClass, class)
	}
	if !inst {
		r.mu.Lock()
		r.ExecDenied++
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrNotInstalled, class)
	}
	return f.New(state)
}

// Classes returns the sorted names of all linked classes.
func (r *Registry) Classes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.factories))
	for c := range r.factories {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Packet is the travelling form of an agent: what the envelope body of a
// KindAgent message contains.
type Packet struct {
	// Class names the agent class.
	Class string
	// State is the agent's serialized state.
	State []byte
	// Base is the address answers are sent directly to.
	Base string
	// BaseID is the base node's BestPeer identity.
	BaseID wire.BPID
	// AccessLevel is the clearance the base node presents.
	AccessLevel int
	// Mode selects answer handling: 1 returns data directly, 2 returns
	// hints only (§2 of the paper).
	Mode uint8
}

// EncodePacket serializes the packet for an envelope body.
func EncodePacket(p *Packet) []byte {
	var e wire.Encoder
	e.String(p.Class)
	e.Bytes2(p.State)
	e.String(p.Base)
	e.BPID(p.BaseID)
	e.Varint(int64(p.AccessLevel))
	e.Uint8(p.Mode)
	return e.Bytes()
}

// DecodePacket parses an envelope body into a packet.
func DecodePacket(body []byte) (*Packet, error) {
	d := wire.NewDecoder(body)
	p := &Packet{
		Class: d.String(),
		State: d.Bytes2(),
		Base:  d.String(),
	}
	p.BaseID = d.BPID()
	p.AccessLevel = int(d.Varint())
	p.Mode = d.Uint8()
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadPacket, err)
	}
	if p.Class == "" {
		return nil, fmt.Errorf("%w: empty class", ErrBadPacket)
	}
	return p, nil
}

// EncodeResults serializes a result batch for a KindResult or KindHint
// envelope body. answered is the hop count at the answering peer, which
// MinHops reconfiguration consumes.
func EncodeResults(results []Result, hops int, from wire.BPID, fromAddr string) []byte {
	var e wire.Encoder
	e.String(fromAddr)
	e.BPID(from)
	e.Varint(int64(hops))
	e.Uvarint(uint64(len(results)))
	for _, r := range results {
		e.String(r.Name)
		e.Bytes2(r.Data)
	}
	return e.Bytes()
}

// ResultBatch is a decoded KindResult/KindHint body.
type ResultBatch struct {
	FromAddr string
	From     wire.BPID
	Hops     int
	Results  []Result
}

// DecodeResults parses a result batch.
func DecodeResults(body []byte) (*ResultBatch, error) {
	d := wire.NewDecoder(body)
	b := &ResultBatch{FromAddr: d.String()}
	b.From = d.BPID()
	b.Hops = int(d.Varint())
	n := d.Uvarint()
	if n > uint64(wire.MaxFrameSize) {
		return nil, ErrBadPacket
	}
	for i := uint64(0); i < n; i++ {
		b.Results = append(b.Results, Result{Name: d.String(), Data: d.Bytes2()})
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadPacket, err)
	}
	return b, nil
}
