// Package broken is a driver fixture: it deliberately fails
// type-checking so bpvet's loader-error exit path can be tested.
package broken

func typeError() int {
	return "not an int"
}
