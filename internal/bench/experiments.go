package bench

import (
	"time"

	"bestpeer/internal/reconfig"
	"bestpeer/internal/topology"
	"bestpeer/internal/workload"
)

// Point is one (x, y) sample of a series.
type Point struct {
	X float64
	Y float64
}

// Series is one labelled curve of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Figure is the data behind one of the paper's plots.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// steadyBPR runs rounds of a reconfigurable BestPeer query and returns
// the post-warm-up completion time (the paper's BPR numbers reflect the
// reconfigured network; its first-run cost appears explicitly in Fig 8a).
func steadyBPR(tp *topology.Topology, p Params, strategy reconfig.Strategy) RunResult {
	runs := RunBestPeer(tp, p, 2, strategy)
	return runs[len(runs)-1]
}

// defaultSpec builds the §4.2 workload: 1000 × 1 KB objects per node.
func defaultSpec(seed int64) *workload.Spec { return workload.Default(seed) }

// fig5Params is the shared configuration of the topology experiments.
func fig5Params(cost CostModel, seed int64) Params {
	spec := defaultSpec(seed)
	return Params{
		Cost:        cost,
		Spec:        spec,
		Query:       spec.Keyword(7),
		MaxPeers:    8,
		IncludeData: true, // the topology experiments return the objects
	}
}

// Fig5a reproduces Figure 5(a): completion time on the Star topology as
// the network grows, for SCS, MCS, BPS and BPR.
func Fig5a(cost CostModel, seed int64) *Figure {
	p := fig5Params(cost, seed)
	sizes := []int{2, 4, 8, 16, 24, 32}
	fig := &Figure{
		ID: "5a", Title: "Star topology: completion time vs nodes",
		XLabel: "nodes", YLabel: "completion (ms)",
		Series: []Series{{Name: "SCS"}, {Name: "MCS"}, {Name: "BPS"}, {Name: "BPR"}},
	}
	for _, n := range sizes {
		tp := topology.Star(n)
		x := float64(n)
		fig.Series[0].Points = append(fig.Series[0].Points, Point{x, ms(RunCS(tp, p, true).Completion)})
		fig.Series[1].Points = append(fig.Series[1].Points, Point{x, ms(RunCS(tp, p, false).Completion)})
		fig.Series[2].Points = append(fig.Series[2].Points, Point{x, ms(RunBestPeer(tp, p, 1, reconfig.Static{})[0].Completion)})
		fig.Series[3].Points = append(fig.Series[3].Points, Point{x, ms(steadyBPR(tp, p, reconfig.MaxCount{}).Completion)})
	}
	return fig
}

// Fig5b reproduces Figure 5(b): completion time on the Tree topology as
// depth grows (binary tree, capped at 48 nodes at level 5 exactly as the
// paper did), for CS (multi-threaded), BPS and BPR.
func Fig5b(cost CostModel, seed int64) *Figure {
	p := fig5Params(cost, seed)
	fig := &Figure{
		ID: "5b", Title: "Tree topology: completion time vs levels",
		XLabel: "levels", YLabel: "completion (ms)",
		Series: []Series{{Name: "CS"}, {Name: "BPS"}, {Name: "BPR"}},
	}
	for levels := 1; levels <= 5; levels++ {
		n := topology.TreeLevels(2, levels)
		if n > 48 {
			n = 48 // the paper used 48 nodes instead of 63 at level 5
		}
		tp := topology.Tree(n, 2)
		x := float64(levels)
		fig.Series[0].Points = append(fig.Series[0].Points, Point{x, ms(RunCS(tp, p, false).Completion)})
		fig.Series[1].Points = append(fig.Series[1].Points, Point{x, ms(RunBestPeer(tp, p, 1, reconfig.Static{})[0].Completion)})
		fig.Series[2].Points = append(fig.Series[2].Points, Point{x, ms(steadyBPR(tp, p, reconfig.MaxCount{}).Completion)})
	}
	return fig
}

// Fig5c reproduces Figure 5(c): completion time on the Line topology.
func Fig5c(cost CostModel, seed int64) *Figure {
	p := fig5Params(cost, seed)
	sizes := []int{2, 4, 8, 16, 24, 32}
	fig := &Figure{
		ID: "5c", Title: "Line topology: completion time vs nodes",
		XLabel: "nodes", YLabel: "completion (ms)",
		Series: []Series{{Name: "CS"}, {Name: "BPS"}, {Name: "BPR"}},
	}
	for _, n := range sizes {
		tp := topology.Line(n)
		x := float64(n)
		fig.Series[0].Points = append(fig.Series[0].Points, Point{x, ms(RunCS(tp, p, false).Completion)})
		fig.Series[1].Points = append(fig.Series[1].Points, Point{x, ms(RunBestPeer(tp, p, 1, reconfig.Static{})[0].Completion)})
		fig.Series[2].Points = append(fig.Series[2].Points, Point{x, ms(steadyBPR(tp, p, reconfig.MaxCount{}).Completion)})
	}
	return fig
}

// responseSeries converts a run's events into (time, nodes-responded)
// samples.
func responseSeries(name string, res RunResult) Series {
	s := Series{Name: name}
	seen := make(map[int]bool)
	for _, e := range res.Events {
		if !seen[e.Node] {
			seen[e.Node] = true
			s.Points = append(s.Points, Point{ms(e.At), float64(len(seen))})
		}
	}
	return s
}

// answerSeries converts a run's events into (time, cumulative answers).
func answerSeries(name string, res RunResult) Series {
	s := Series{Name: name}
	total := 0
	for _, e := range res.Events {
		total += e.Answers
		s.Points = append(s.Points, Point{ms(e.At), float64(total)})
	}
	return s
}

// fig67Runs executes the 32-node tree experiment shared by Figures 6/7.
func fig67Runs(cost CostModel, seed int64) (cs, bps, bpr RunResult) {
	p := fig5Params(cost, seed)
	tp := topology.Tree(32, 2)
	cs = RunCS(tp, p, false)
	bps = RunBestPeer(tp, p, 1, reconfig.Static{})[0]
	bpr = steadyBPR(tp, p, reconfig.MaxCount{})
	return
}

// Fig6 reproduces Figure 6: the rate at which nodes respond (32 nodes,
// tree topology). Point (T, K): K nodes have responded by time T.
func Fig6(cost CostModel, seed int64) *Figure {
	cs, bps, bpr := fig67Runs(cost, seed)
	return &Figure{
		ID: "6", Title: "Rate at which answers are returned (32 nodes, tree)",
		XLabel: "time (ms)", YLabel: "nodes responded",
		Series: []Series{
			responseSeries("CS", cs),
			responseSeries("BPS", bps),
			responseSeries("BPR", bpr),
		},
	}
}

// Fig7 reproduces Figure 7: cumulative number of answers over time for
// the same runs as Figure 6.
func Fig7(cost CostModel, seed int64) *Figure {
	cs, bps, bpr := fig67Runs(cost, seed)
	return &Figure{
		ID: "7", Title: "Number of answers returned over time (32 nodes, tree)",
		XLabel: "time (ms)", YLabel: "answers",
		Series: []Series{
			answerSeries("CS", cs),
			answerSeries("BPS", bps),
			answerSeries("BPR", bpr),
		},
	}
}

// fig8Spec builds the Fig. 8 workload: 1000 text files per node, answers
// restricted to a few nodes far from the base.
func fig8Spec(tp *topology.Topology, seed int64) *workload.Spec {
	spec := defaultSpec(seed)
	spec.PlantedKeyword = "needle"
	spec.PlantedHits = 5
	// Plant the answers at the nodes furthest from the base so the first
	// run must route through the whole network.
	dist := tp.BFS(tp.Base)
	type nd struct{ node, d int }
	var far []nd
	for node, d := range dist {
		if node != tp.Base && d > 0 {
			far = append(far, nd{node, d})
		}
	}
	// Selection sort by descending distance, stable by index.
	for i := 0; i < len(far); i++ {
		best := i
		for j := i + 1; j < len(far); j++ {
			if far[j].d > far[best].d || (far[j].d == far[best].d && far[j].node < far[best].node) {
				best = j
			}
		}
		far[i], far[best] = far[best], far[i]
	}
	holders := 4
	if holders > len(far) {
		holders = len(far)
	}
	for i := 0; i < holders; i++ {
		spec.Holders = append(spec.Holders, far[i].node)
	}
	return spec
}

// Fig8a reproduces Figure 8(a): BestPeer vs Gnutella completion time per
// run of the same query (up to 8 direct peers, 4 runs). Gnutella is flat
// across runs; BestPeer's first run pays the full route but subsequent
// runs exploit reconfiguration.
func Fig8a(cost CostModel, seed int64) *Figure {
	const n, peerBudget, rounds = 32, 8, 4
	tp := topology.Random(n, peerBudget/2, seed) // sparse start; budget allows growth
	spec := fig8Spec(tp, seed)
	p := Params{
		Cost: cost, Spec: spec, Query: "needle",
		MaxPeers: peerBudget, IncludeData: false, // names only, as in the paper
	}
	bp := RunBestPeer(tp, p, rounds, reconfig.MaxCount{})
	gnu := RunGnutella(tp, p, rounds)

	fig := &Figure{
		ID: "8a", Title: "BestPeer vs Gnutella: completion time per run (8 peers)",
		XLabel: "run", YLabel: "completion (ms)",
		Series: []Series{{Name: "BP"}, {Name: "Gnutella"}},
	}
	for r := 0; r < rounds; r++ {
		fig.Series[0].Points = append(fig.Series[0].Points, Point{float64(r + 1), ms(bp[r].Completion)})
		fig.Series[1].Points = append(fig.Series[1].Points, Point{float64(r + 1), ms(gnu[r].Completion)})
	}
	return fig
}

// Fig8b reproduces Figure 8(b): mean completion time over 4 runs as the
// direct-peer budget grows.
func Fig8b(cost CostModel, seed int64) *Figure {
	const n, rounds = 32, 4
	fig := &Figure{
		ID: "8b", Title: "BestPeer vs Gnutella: mean completion vs peers",
		XLabel: "max direct peers", YLabel: "mean completion (ms)",
		Series: []Series{{Name: "BP"}, {Name: "Gnutella"}},
	}
	for _, budget := range []int{2, 4, 6, 8, 10} {
		deg := budget / 2
		if deg < 1 {
			deg = 1
		}
		tp := topology.Random(n, deg, seed)
		spec := fig8Spec(tp, seed)
		p := Params{
			Cost: cost, Spec: spec, Query: "needle",
			MaxPeers: budget, IncludeData: false,
		}
		bp := RunBestPeer(tp, p, rounds, reconfig.MaxCount{})
		gnu := RunGnutella(tp, p, rounds)
		var bpSum, gnuSum time.Duration
		for r := 0; r < rounds; r++ {
			bpSum += bp[r].Completion
			gnuSum += gnu[r].Completion
		}
		fig.Series[0].Points = append(fig.Series[0].Points,
			Point{float64(budget), ms(bpSum / rounds)})
		fig.Series[1].Points = append(fig.Series[1].Points,
			Point{float64(budget), ms(gnuSum / rounds)})
	}
	return fig
}

// AblationStrategies compares reconfiguration strategies (none, MaxCount,
// MinHops) on a 32-node line over successive rounds — the design choice
// §3.3 discusses.
func AblationStrategies(cost CostModel, seed int64) *Figure {
	p := fig5Params(cost, seed)
	tp := topology.Line(32)
	const rounds = 4
	fig := &Figure{
		ID: "A1", Title: "Ablation: reconfiguration strategy (32-node line)",
		XLabel: "round", YLabel: "completion (ms)",
	}
	for _, strat := range []reconfig.Strategy{reconfig.Static{}, reconfig.MaxCount{}, reconfig.MinHops{}} {
		s := Series{Name: strat.Name()}
		for r, res := range RunBestPeer(tp, p, rounds, strat) {
			s.Points = append(s.Points, Point{float64(r + 1), ms(res.Completion)})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// AblationCompression measures the effect of GZIP on completion time
// (Fig. 5 tree setup, gzip on vs off).
func AblationCompression(cost CostModel, seed int64) *Figure {
	tp := topology.Tree(32, 2)
	fig := &Figure{
		ID: "A2", Title: "Ablation: GZIP compression (32 nodes, tree)",
		XLabel: "gzip (1=on)", YLabel: "completion (ms)",
		Series: []Series{{Name: "BPS"}},
	}
	for _, on := range []bool{false, true} {
		c := cost
		if !on {
			c.Compression = 1.0
		}
		p := fig5Params(c, seed)
		x := 0.0
		if on {
			x = 1.0
		}
		res := RunBestPeer(tp, p, 1, reconfig.Static{})[0]
		fig.Series[0].Points = append(fig.Series[0].Points, Point{x, ms(res.Completion)})
	}
	return fig
}

// AblationColdClass isolates the class-shipping cost: round 1 (every peer
// cold) vs round 2 (class cached everywhere).
func AblationColdClass(cost CostModel, seed int64) *Figure {
	p := fig5Params(cost, seed)
	p.ColdStart = true // every peer must fetch the class on round 1
	tp := topology.Tree(32, 2)
	runs := RunBestPeer(tp, p, 2, reconfig.Static{})
	return &Figure{
		ID: "A3", Title: "Ablation: cold vs warm class cache (32 nodes, tree)",
		XLabel: "round", YLabel: "completion (ms)",
		Series: []Series{{
			Name: "BPS",
			Points: []Point{
				{1, ms(runs[0].Completion)},
				{2, ms(runs[1].Completion)},
			},
		}},
	}
}

// AblationResultMode compares returning full objects (mode 1) against
// names only (hint mode) on the Fig. 5 tree setup.
func AblationResultMode(cost CostModel, seed int64) *Figure {
	tp := topology.Tree(32, 2)
	fig := &Figure{
		ID: "A4", Title: "Ablation: result mode — data vs names (32 nodes, tree)",
		XLabel: "mode (1=data, 2=names)", YLabel: "completion (ms)",
		Series: []Series{{Name: "BPS"}},
	}
	for i, includeData := range []bool{true, false} {
		p := fig5Params(cost, seed)
		p.IncludeData = includeData
		res := RunBestPeer(tp, p, 1, reconfig.Static{})[0]
		fig.Series[0].Points = append(fig.Series[0].Points, Point{float64(i + 1), ms(res.Completion)})
	}
	return fig
}

// AblationShipping compares code-shipping (agents run at the data) with
// naive data-shipping (peers ship their whole store and the base filters
// locally) — the runtime choice §6 of the paper proposes as future work.
func AblationShipping(cost CostModel, seed int64) *Figure {
	fig := &Figure{
		ID: "A5", Title: "Ablation: code-shipping vs data-shipping (tree)",
		XLabel: "nodes", YLabel: "completion (ms)",
		Series: []Series{{Name: "code-ship"}, {Name: "data-ship"}},
	}
	for _, n := range []int{4, 8, 16, 32} {
		tp := topology.Tree(n, 2)
		p := fig5Params(cost, seed)
		x := float64(n)
		fig.Series[0].Points = append(fig.Series[0].Points,
			Point{x, ms(RunBestPeer(tp, p, 1, reconfig.Static{})[0].Completion)})
		p.DataShip = true
		fig.Series[1].Points = append(fig.Series[1].Points,
			Point{x, ms(RunBestPeer(tp, p, 1, reconfig.Static{})[0].Completion)})
	}
	return fig
}

// TrafficTable compares total network traffic per query across schemes
// and topologies (32 nodes) — the bandwidth-utilization dimension the
// paper's evaluation methodology (§4.1) calls out. x encodes the
// topology: 1 = star, 2 = tree, 3 = line.
func TrafficTable(cost CostModel, seed int64) *Figure {
	p := fig5Params(cost, seed)
	fig := &Figure{
		ID: "T1", Title: "Traffic per query in KB (32 nodes; 1=star 2=tree 3=line)",
		XLabel: "topology", YLabel: "KB delivered",
		Series: []Series{{Name: "CS"}, {Name: "BPS"}, {Name: "Gnutella"}},
	}
	kb := func(b uint64) float64 { return float64(b) / 1024 }
	for i, tp := range []*topology.Topology{
		topology.Star(32), topology.Tree(32, 2), topology.Line(32),
	} {
		x := float64(i + 1)
		fig.Series[0].Points = append(fig.Series[0].Points,
			Point{x, kb(RunCS(tp, p, false).Bytes)})
		fig.Series[1].Points = append(fig.Series[1].Points,
			Point{x, kb(RunBestPeer(tp, p, 1, reconfig.Static{})[0].Bytes)})
		gp := p
		gp.IncludeData = false // Gnutella never returns data in-band
		fig.Series[2].Points = append(fig.Series[2].Points,
			Point{x, kb(RunGnutella(tp, gp, 1)[0].Bytes)})
	}
	return fig
}

// AllFigures runs every experiment.
func AllFigures(cost CostModel, seed int64) []*Figure {
	return []*Figure{
		Fig5a(cost, seed), Fig5b(cost, seed), Fig5c(cost, seed),
		Fig6(cost, seed), Fig7(cost, seed),
		Fig8a(cost, seed), Fig8b(cost, seed),
		AblationStrategies(cost, seed), AblationCompression(cost, seed),
		AblationColdClass(cost, seed), AblationResultMode(cost, seed),
		AblationShipping(cost, seed), TrafficTable(cost, seed),
		FigTraffic(cost, seed),
	}
}
