package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sampleEnvelope() *Envelope {
	return &Envelope{
		Kind: KindAgent,
		ID:   NewMsgID(),
		TTL:  7,
		Hops: 2,
		From: "node-a:4001",
		To:   "node-b:4002",
		Body: []byte("hello, peers"),
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	e := sampleEnvelope()
	frame, err := EncodeEnvelope(e)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeEnvelope(frame)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(e, got) {
		t.Fatalf("round trip mismatch:\n have %+v\n want %+v", got, e)
	}
}

func TestEncodeDecodeEmptyBody(t *testing.T) {
	e := &Envelope{Kind: KindPeerProbe, ID: NewMsgID(), TTL: 1}
	frame, err := EncodeEnvelope(e)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeEnvelope(frame)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Body != nil {
		t.Fatalf("expected nil body, got %q", got.Body)
	}
	if got.Kind != KindPeerProbe || got.TTL != 1 || got.Hops != 0 {
		t.Fatalf("fields corrupted: %+v", got)
	}
}

func TestEncodeRejectsInvalidKind(t *testing.T) {
	if _, err := EncodeEnvelope(&Envelope{Kind: KindInvalid}); err == nil {
		t.Fatal("expected error for invalid kind")
	}
	if _, err := EncodeEnvelope(&Envelope{Kind: kindSentinel}); err == nil {
		t.Fatal("expected error for out-of-range kind")
	}
}

func TestLargeBodyIsCompressed(t *testing.T) {
	e := sampleEnvelope()
	e.Body = bytes.Repeat([]byte("abcdefgh"), 4096) // highly compressible
	frame, err := EncodeEnvelope(e)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if len(frame) >= len(e.Body) {
		t.Fatalf("compressible body not compressed: frame=%d body=%d", len(frame), len(e.Body))
	}
	if frame[4]&flagGzip == 0 {
		t.Fatal("gzip flag not set on large frame")
	}
	got, err := DecodeEnvelope(frame)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(got.Body, e.Body) {
		t.Fatal("compressed round trip corrupted body")
	}
}

func TestIncompressibleBodyStaysStored(t *testing.T) {
	e := sampleEnvelope()
	body := make([]byte, 8192)
	rng := rand.New(rand.NewSource(1))
	rng.Read(body)
	e.Body = body
	frame, err := EncodeEnvelope(e)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if frame[4]&flagGzip != 0 {
		t.Fatal("random body should not carry the gzip flag")
	}
	got, err := DecodeEnvelope(frame)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(got.Body, body) {
		t.Fatal("stored round trip corrupted body")
	}
}

func TestSmallFrameSkipsCompression(t *testing.T) {
	e := &Envelope{Kind: KindPeerProbe, ID: NewMsgID(), TTL: 3, Body: []byte("ok")}
	frame, err := EncodeEnvelope(e)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if frame[4]&flagGzip != 0 {
		t.Fatal("tiny frame should not be gzipped")
	}
}

func TestDecodeRejectsTruncatedFrames(t *testing.T) {
	frame, err := EncodeEnvelope(sampleEnvelope())
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	for cut := 0; cut < len(frame); cut++ {
		if _, err := DecodeEnvelope(frame[:cut]); err == nil {
			t.Fatalf("decode accepted frame truncated to %d bytes", cut)
		}
	}
}

func TestDecodeRejectsOversizeDeclaredLength(t *testing.T) {
	frame := make([]byte, 16)
	binary.BigEndian.PutUint32(frame, MaxFrameSize+1)
	if _, err := DecodeEnvelope(frame); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
}

func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	frame, err := EncodeEnvelope(sampleEnvelope())
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if _, err := DecodeEnvelope(append(frame, 0xFF)); err == nil {
		t.Fatal("decode accepted frame with trailing byte")
	}
}

func TestReadWriteStream(t *testing.T) {
	var buf bytes.Buffer
	want := []*Envelope{
		sampleEnvelope(),
		{Kind: KindResult, ID: NewMsgID(), TTL: 1, Hops: 4, From: "x", To: "y", Body: []byte("r")},
		{Kind: KindLigloRegister, ID: NewMsgID(), TTL: 1},
	}
	for _, e := range want {
		if err := WriteEnvelope(&buf, e); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	for i, w := range want {
		got, err := ReadEnvelope(&buf)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, w) {
			t.Fatalf("stream message %d mismatch:\n have %+v\n want %+v", i, got, w)
		}
	}
	if _, err := ReadEnvelope(&buf); err != io.EOF {
		t.Fatalf("want io.EOF at end of stream, got %v", err)
	}
}

func TestConnSendRecv(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	e := sampleEnvelope()
	if err := c.Send(e); err != nil {
		t.Fatalf("send: %v", err)
	}
	got, err := c.Recv()
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if !reflect.DeepEqual(got, e) {
		t.Fatalf("conn round trip mismatch")
	}
}

func TestForwardedAdjustsCounters(t *testing.T) {
	e := sampleEnvelope()
	f := e.Forwarded("b", "c")
	if f.TTL != e.TTL-1 || f.Hops != e.Hops+1 {
		t.Fatalf("forwarded counters wrong: %+v", f)
	}
	if f.From != "b" || f.To != "c" {
		t.Fatalf("forwarded addresses wrong: %+v", f)
	}
	if e.TTL != 7 || e.Hops != 2 {
		t.Fatal("Forwarded mutated the original")
	}
	// TTL saturates at zero.
	z := &Envelope{Kind: KindAgent, TTL: 0}
	if got := z.Forwarded("a", "b"); got.TTL != 0 {
		t.Fatalf("TTL should saturate at 0, got %d", got.TTL)
	}
	if !z.Expired() {
		t.Fatal("zero-TTL envelope should be expired")
	}
}

func TestKindString(t *testing.T) {
	if KindAgent.String() != "agent" {
		t.Fatalf("KindAgent.String() = %q", KindAgent.String())
	}
	if !strings.Contains(Kind(200).String(), "200") {
		t.Fatalf("unknown kind string = %q", Kind(200).String())
	}
	for k := KindAgent; k < kindSentinel; k++ {
		if strings.HasPrefix(k.String(), "kind(") {
			t.Fatalf("kind %d has no name", k)
		}
		if !k.Valid() {
			t.Fatalf("kind %d should be valid", k)
		}
	}
	if KindInvalid.Valid() {
		t.Fatal("KindInvalid must not be valid")
	}
}

func TestNewMsgIDUnique(t *testing.T) {
	seen := make(map[MsgID]bool)
	for i := 0; i < 1000; i++ {
		id := NewMsgID()
		if id.IsZero() {
			t.Fatal("NewMsgID returned zero id")
		}
		if seen[id] {
			t.Fatalf("duplicate MsgID after %d draws", i)
		}
		seen[id] = true
	}
}

func TestBPIDString(t *testing.T) {
	b := BPID{LIGLO: "liglo-1:9000", Node: 42}
	if b.String() != "liglo-1:9000/42" {
		t.Fatalf("BPID.String() = %q", b.String())
	}
	if b.IsZero() {
		t.Fatal("assigned BPID reported zero")
	}
	if !(BPID{}).IsZero() {
		t.Fatal("zero BPID not reported zero")
	}
}

// Property: every envelope with valid kind round-trips exactly.
func TestEnvelopeRoundTripProperty(t *testing.T) {
	f := func(kindSeed uint8, ttl, hops uint8, from, to string, body []byte) bool {
		kind := Kind(kindSeed%uint8(kindSentinel-1)) + 1
		if len(from) > 1<<10 {
			from = from[:1<<10]
		}
		if len(to) > 1<<10 {
			to = to[:1<<10]
		}
		e := &Envelope{Kind: kind, ID: NewMsgID(), TTL: ttl, Hops: hops, From: from, To: to, Body: body}
		frame, err := EncodeEnvelope(e)
		if err != nil {
			return false
		}
		got, err := DecodeEnvelope(frame)
		if err != nil {
			return false
		}
		if len(body) == 0 {
			// decoder normalizes empty body to nil
			return got.Kind == e.Kind && got.ID == e.ID && got.TTL == ttl &&
				got.Hops == hops && got.From == from && got.To == to && len(got.Body) == 0
		}
		return reflect.DeepEqual(got, e)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWireSizeMatchesEncodedOrder(t *testing.T) {
	e := sampleEnvelope()
	if got, want := e.WireSize(), envelopeHeaderSize+len(e.From)+len(e.To)+len(e.Body); got != want {
		t.Fatalf("WireSize = %d, want %d", got, want)
	}
}
