package storm

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func tempFile(t *testing.T) *DiskFile {
	t.Helper()
	f, err := CreateFile(filepath.Join(t.TempDir(), "f.storm"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestDiskFileCreateOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.storm")
	f, err := CreateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	id, err := f.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	var p Page
	if err := f.ReadPage(id, &p); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Insert([]byte("persisted")); err != nil {
		t.Fatal(err)
	}
	if err := f.WritePage(&p); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	g, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if g.PageCount() != 2 {
		t.Fatalf("page count = %d", g.PageCount())
	}
	var q Page
	if err := g.ReadPage(id, &q); err != nil {
		t.Fatal(err)
	}
	got, err := q.Get(0)
	if err != nil || string(got) != "persisted" {
		t.Fatalf("record = %q, %v", got, err)
	}
}

func TestDiskFileRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk")
	if err := os.WriteFile(path, make([]byte, PageSize), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("want ErrBadMagic, got %v", err)
	}
}

func TestDiskFileCreateRefusesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.storm")
	f, err := CreateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := CreateFile(path); err == nil {
		t.Fatal("CreateFile overwrote an existing file")
	}
}

func TestDiskFileBoundsChecks(t *testing.T) {
	f := tempFile(t)
	var p Page
	if err := f.ReadPage(InvalidPage, &p); err == nil {
		t.Fatal("read of header page as data succeeded")
	}
	if err := f.ReadPage(99, &p); err == nil {
		t.Fatal("read past end succeeded")
	}
	p.Init(50)
	if err := f.WritePage(&p); err == nil {
		t.Fatal("write of unallocated page succeeded")
	}
}

func TestDiskFileClosedOps(t *testing.T) {
	f := tempFile(t)
	id, _ := f.Allocate()
	f.Close()
	var p Page
	if err := f.ReadPage(id, &p); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close: %v", err)
	}
	if _, err := f.Allocate(); !errors.Is(err, ErrClosed) {
		t.Fatalf("allocate after close: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("sync after close: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestDiskFileDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.storm")
	f, _ := CreateFile(path)
	id, _ := f.Allocate()
	f.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[PageSize+200] ^= 0xFF // flip a byte inside page 1
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	g, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	var p Page
	if err := g.ReadPage(id, &p); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corruption undetected: %v", err)
	}
}

func TestBufferPoolHitAndMiss(t *testing.T) {
	f := tempFile(t)
	bp := NewBufferPool(f, 4, NewLRU())
	p, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	id := p.ID()
	if err := bp.Unpin(id, true); err != nil {
		t.Fatal(err)
	}
	if _, err := bp.Fetch(id); err != nil {
		t.Fatal(err)
	}
	if bp.Hits != 1 {
		t.Fatalf("hits = %d", bp.Hits)
	}
	bp.Unpin(id, false)
	if bp.HitRate() <= 0 {
		t.Fatalf("hit rate = %v", bp.HitRate())
	}
}

func TestBufferPoolEvictionWritesDirty(t *testing.T) {
	f := tempFile(t)
	bp := NewBufferPool(f, 2, NewLRU())
	// Fill two frames with dirty pages, then force eviction via a third.
	var ids []PageID
	for i := 0; i < 3; i++ {
		p, err := bp.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Insert([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, p.ID())
		if err := bp.Unpin(p.ID(), true); err != nil {
			t.Fatal(err)
		}
	}
	if bp.Evictions == 0 || bp.DirtyFlush == 0 {
		t.Fatalf("evictions=%d dirtyflush=%d", bp.Evictions, bp.DirtyFlush)
	}
	// The evicted page's data must be readable (it was flushed).
	p, err := bp.Fetch(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if rec, err := p.Get(0); err != nil || rec[0] != 0 {
		t.Fatalf("evicted page lost data: %v %v", rec, err)
	}
	bp.Unpin(ids[0], false)
}

func TestBufferPoolAllPinnedFails(t *testing.T) {
	f := tempFile(t)
	bp := NewBufferPool(f, 2, NewLRU())
	for i := 0; i < 2; i++ {
		if _, err := bp.NewPage(); err != nil {
			t.Fatal(err)
		}
		// Intentionally left pinned.
	}
	if _, err := bp.NewPage(); !errors.Is(err, ErrNoFrames) {
		t.Fatalf("want ErrNoFrames, got %v", err)
	}
}

func TestBufferPoolPinCounting(t *testing.T) {
	f := tempFile(t)
	bp := NewBufferPool(f, 2, NewLRU())
	p, _ := bp.NewPage()
	id := p.ID()
	if _, err := bp.Fetch(id); err != nil { // second pin
		t.Fatal(err)
	}
	if bp.PinCount(id) != 2 {
		t.Fatalf("pin count = %d", bp.PinCount(id))
	}
	bp.Unpin(id, false)
	if bp.PinCount(id) != 1 {
		t.Fatalf("pin count = %d", bp.PinCount(id))
	}
	bp.Unpin(id, false)
	if err := bp.Unpin(id, false); !errors.Is(err, ErrNotPinned) {
		t.Fatalf("over-unpin: %v", err)
	}
	if err := bp.Unpin(999, false); !errors.Is(err, ErrNotPinned) {
		t.Fatalf("unpin absent: %v", err)
	}
}

func TestBufferPoolPinnedPagesSurviveEviction(t *testing.T) {
	f := tempFile(t)
	bp := NewBufferPool(f, 3, NewLRU())
	p, _ := bp.NewPage()
	pinned := p.ID()
	// Churn through many other pages; the pinned page must stay resident.
	for i := 0; i < 10; i++ {
		q, err := bp.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		bp.Unpin(q.ID(), false)
	}
	if !bp.Resident(pinned) {
		t.Fatal("pinned page was evicted")
	}
	bp.Unpin(pinned, false)
}

func TestBufferPoolFlush(t *testing.T) {
	f := tempFile(t)
	bp := NewBufferPool(f, 4, NewLRU())
	p, _ := bp.NewPage()
	id := p.ID()
	p.Insert([]byte("flush-me"))
	bp.Unpin(id, true)
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Read straight from disk, bypassing the pool.
	var q Page
	if err := f.ReadPage(id, &q); err != nil {
		t.Fatal(err)
	}
	if rec, err := q.Get(0); err != nil || string(rec) != "flush-me" {
		t.Fatalf("FlushAll did not persist: %q %v", rec, err)
	}
	// FlushPage of a clean or absent page is a no-op.
	if err := bp.FlushPage(id); err != nil {
		t.Fatal(err)
	}
	if err := bp.FlushPage(777); err != nil {
		t.Fatal(err)
	}
}

func TestBufferPoolCapacityFloor(t *testing.T) {
	f := tempFile(t)
	bp := NewBufferPool(f, 0, nil)
	if bp.Capacity() != 1 {
		t.Fatalf("capacity = %d", bp.Capacity())
	}
	if bp.Policy() != "lru" {
		t.Fatalf("default policy = %q", bp.Policy())
	}
}

func TestBufferPoolSequentialScanMRUBeatsLRU(t *testing.T) {
	// The classic StorM demonstration: repeated sequential scans over a
	// set slightly larger than the pool. LRU evicts exactly the page it
	// will need next (zero hits); MRU retains a stable prefix.
	run := func(rep Replacer) float64 {
		f := tempFile(t)
		bp := NewBufferPool(f, 8, rep)
		var ids []PageID
		for i := 0; i < 10; i++ {
			p, err := bp.NewPage()
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, p.ID())
			bp.Unpin(p.ID(), false)
		}
		bp.Hits, bp.Misses = 0, 0
		for scan := 0; scan < 20; scan++ {
			for _, id := range ids {
				if _, err := bp.Fetch(id); err != nil {
					t.Fatal(err)
				}
				bp.Unpin(id, false)
			}
		}
		return bp.HitRate()
	}
	lru := run(NewLRU())
	mru := run(NewMRU())
	if mru <= lru {
		t.Fatalf("MRU (%.2f) should beat LRU (%.2f) on sequential flooding", mru, lru)
	}
}
