package wire

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Codec errors.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")
	ErrBadFrame      = errors.New("wire: malformed frame")
)

// MaxFrameSize bounds a single encoded envelope. Agents carrying class
// payloads are the largest messages in the system; 16 MiB is far above
// anything legitimate and protects readers from hostile length prefixes.
const MaxFrameSize = 16 << 20

// compressionThreshold is the encoded size below which gzip is skipped:
// tiny control messages grow under gzip, so they travel as stored frames.
const compressionThreshold = 128

// frame flags.
const (
	flagGzip = 1 << 0
)

// EncodeEnvelope serializes the envelope into a self-delimiting frame:
//
//	uint32 length | uint8 flags | body
//
// where body is the envelope fields (and is gzip-compressed when large
// enough to benefit). The returned slice is freshly allocated.
func EncodeEnvelope(e *Envelope) ([]byte, error) {
	if !e.Kind.Valid() {
		return nil, fmt.Errorf("%w: invalid kind %d", ErrBadFrame, e.Kind)
	}
	if e.Trace != nil && len(encodeTraceContext(e.Trace)) > math.MaxUint16 {
		return nil, fmt.Errorf("%w: trace extension too large", ErrBadFrame)
	}
	if e.Span != nil && len(encodeTraceSpan(e.Span)) > math.MaxUint16 {
		return nil, fmt.Errorf("%w: span extension too large", ErrBadFrame)
	}
	if e.QRoute != nil && len(encodeQRoute(e.QRoute)) > math.MaxUint16 {
		return nil, fmt.Errorf("%w: qroute extension too large", ErrBadFrame)
	}
	raw := encodeBody(e)

	var flags byte
	payload := raw
	if len(raw) >= compressionThreshold {
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		if _, err := zw.Write(raw); err != nil {
			return nil, fmt.Errorf("wire: compress: %w", err)
		}
		if err := zw.Close(); err != nil {
			return nil, fmt.Errorf("wire: compress: %w", err)
		}
		// Only keep the compressed form when it actually shrinks.
		if buf.Len() < len(raw) {
			payload = buf.Bytes()
			flags |= flagGzip
		}
	}
	if len(payload)+1 > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}

	out := make([]byte, 4+1+len(payload))
	binary.BigEndian.PutUint32(out[0:4], uint32(len(payload)+1))
	out[4] = flags
	copy(out[5:], payload)
	return out, nil
}

// Extension field tags. Extensions are appended after the body as
// (uint8 tag | uint16 length | payload) records — a versioned growth
// point: an envelope with no extensions encodes byte-identically to the
// original format, and decoders skip tags they do not recognize, so an
// old encoder's frames parse under a new decoder and vice versa.
const (
	extTrace  = 1 // TraceContext: per-query trace context
	extSpan   = 2 // TraceSpan: piggybacked hop record
	extQRoute = 3 // QRoute: routing attribution + cached-answer provenance
)

// extHeaderSize is the fixed overhead of one extension record.
const extHeaderSize = 1 + 2

// encodeBody lays out the envelope fields in a fixed order, followed by
// any extension records.
func encodeBody(e *Envelope) []byte {
	n := e.WireSize()
	buf := make([]byte, 0, n)
	buf = append(buf, byte(e.Kind), e.TTL, e.Hops)
	buf = append(buf, e.ID[:]...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(e.From)))
	buf = append(buf, e.From...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(e.To)))
	buf = append(buf, e.To...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(e.Body)))
	buf = append(buf, e.Body...)
	if e.Trace != nil {
		buf = appendExt(buf, extTrace, encodeTraceContext(e.Trace))
	}
	if e.Span != nil {
		buf = appendExt(buf, extSpan, encodeTraceSpan(e.Span))
	}
	if e.QRoute != nil {
		buf = appendExt(buf, extQRoute, encodeQRoute(e.QRoute))
	}
	return buf
}

// appendExt writes one (tag | length | payload) extension record.
func appendExt(buf []byte, tag uint8, payload []byte) []byte {
	buf = append(buf, tag)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(payload)))
	return append(buf, payload...)
}

// decodeBody parses the fixed layout produced by encodeBody.
func decodeBody(raw []byte) (*Envelope, error) {
	if len(raw) < 3+16+2 {
		return nil, ErrBadFrame
	}
	e := &Envelope{Kind: Kind(raw[0]), TTL: raw[1], Hops: raw[2]}
	if !e.Kind.Valid() {
		return nil, fmt.Errorf("%w: unknown kind %d", ErrBadFrame, raw[0])
	}
	copy(e.ID[:], raw[3:19])
	p := 19

	readStr := func() (string, error) {
		if len(raw)-p < 2 {
			return "", ErrBadFrame
		}
		n := int(binary.BigEndian.Uint16(raw[p:]))
		p += 2
		if len(raw)-p < n {
			return "", ErrBadFrame
		}
		s := string(raw[p : p+n])
		p += n
		return s, nil
	}
	var err error
	if e.From, err = readStr(); err != nil {
		return nil, err
	}
	if e.To, err = readStr(); err != nil {
		return nil, err
	}
	if len(raw)-p < 4 {
		return nil, ErrBadFrame
	}
	bn := int(binary.BigEndian.Uint32(raw[p:]))
	p += 4
	if len(raw)-p < bn {
		return nil, fmt.Errorf("%w: body length %d, have %d", ErrBadFrame, bn, len(raw)-p)
	}
	if bn > 0 {
		e.Body = append([]byte(nil), raw[p:p+bn]...)
	}
	p += bn
	// Anything after the body is extension records. Unknown tags are
	// skipped so older encoders' frames and future fields both parse.
	for p < len(raw) {
		if len(raw)-p < extHeaderSize {
			return nil, fmt.Errorf("%w: truncated extension header", ErrBadFrame)
		}
		tag := raw[p]
		en := int(binary.BigEndian.Uint16(raw[p+1:]))
		p += extHeaderSize
		if len(raw)-p < en {
			return nil, fmt.Errorf("%w: extension %d truncated", ErrBadFrame, tag)
		}
		payload := raw[p : p+en]
		p += en
		switch tag {
		case extTrace:
			tc, err := decodeTraceContext(payload)
			if err != nil {
				return nil, fmt.Errorf("%w: trace extension: %v", ErrBadFrame, err)
			}
			e.Trace = tc
		case extSpan:
			s, err := decodeTraceSpan(payload)
			if err != nil {
				return nil, fmt.Errorf("%w: span extension: %v", ErrBadFrame, err)
			}
			e.Span = s
		case extQRoute:
			q, err := decodeQRoute(payload)
			if err != nil {
				return nil, fmt.Errorf("%w: qroute extension: %v", ErrBadFrame, err)
			}
			e.QRoute = q
		default:
			// Unknown extension: tolerated and dropped.
		}
	}
	return e, nil
}

// DecodeEnvelope parses a frame produced by EncodeEnvelope. The input must
// contain exactly one frame.
func DecodeEnvelope(frame []byte) (*Envelope, error) {
	if len(frame) < 5 {
		return nil, ErrBadFrame
	}
	n := binary.BigEndian.Uint32(frame[0:4])
	if n > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	if int(n) != len(frame)-4 {
		return nil, fmt.Errorf("%w: declared %d bytes, have %d", ErrBadFrame, n, len(frame)-4)
	}
	return decodeFlagged(frame[4], frame[5:])
}

func decodeFlagged(flags byte, payload []byte) (*Envelope, error) {
	if flags&flagGzip != 0 {
		zr, err := gzip.NewReader(bytes.NewReader(payload))
		if err != nil {
			return nil, fmt.Errorf("wire: decompress: %w", err)
		}
		raw, err := io.ReadAll(io.LimitReader(zr, MaxFrameSize+1))
		if err != nil {
			return nil, fmt.Errorf("wire: decompress: %w", err)
		}
		if err := zr.Close(); err != nil {
			return nil, fmt.Errorf("wire: decompress: %w", err)
		}
		if len(raw) > MaxFrameSize {
			return nil, ErrFrameTooLarge
		}
		payload = raw
	}
	return decodeBody(payload)
}

// WriteEnvelope encodes the envelope and writes the frame to w.
func WriteEnvelope(w io.Writer, e *Envelope) error {
	frame, err := EncodeEnvelope(e)
	if err != nil {
		return err
	}
	_, err = w.Write(frame)
	return err
}

// ReadEnvelope reads one frame from r and decodes it. It blocks until a
// full frame is available or the stream ends.
func ReadEnvelope(r io.Reader) (*Envelope, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	if n == 0 || n > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	payload := make([]byte, n-1)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("wire: short frame: %w", err)
	}
	return decodeFlagged(hdr[4], payload)
}

// Conn wraps a bidirectional byte stream with buffered envelope I/O.
type Conn struct {
	rw io.ReadWriter
	br *bufio.Reader
	bw *bufio.Writer
}

// NewConn wraps rw for envelope exchange.
func NewConn(rw io.ReadWriter) *Conn {
	return &Conn{rw: rw, br: bufio.NewReader(rw), bw: bufio.NewWriter(rw)}
}

// Send encodes, writes and flushes one envelope.
func (c *Conn) Send(e *Envelope) error {
	if err := WriteEnvelope(c.bw, e); err != nil {
		return err
	}
	return c.bw.Flush()
}

// Recv reads the next envelope.
func (c *Conn) Recv() (*Envelope, error) { return ReadEnvelope(c.br) }
