package vet

import (
	"go/ast"
	"strings"
)

// blockingsend enforces the "Send never blocks" invariant on the message
// path: in internal/transport and internal/core, every channel send must
// sit in a select that has an escape hatch — a default case or a timeout
// case — so a full queue or an absent receiver can never wedge a reader
// goroutine or a caller.
//
// A send that is select-guarded only by a shutdown channel still blocks
// for the whole life of the process; such sends need an explicit
// //bpvet:ignore blockingsend rationale stating what bounds them.
type blockingsend struct{}

func (blockingsend) Name() string { return "blockingsend" }
func (blockingsend) Doc() string {
	return "channel send on the message path without a select default or timeout case"
}

func (b blockingsend) Run(p *Pass) {
	if !b.applies(p.PkgPath) {
		return
	}
	for _, file := range p.Files {
		walkStack(file, func(n ast.Node, stack []ast.Node) {
			send, ok := n.(*ast.SendStmt)
			if !ok {
				return
			}
			if sel := guardingSelect(send, stack); sel != nil {
				if selectHasEscape(sel) {
					return
				}
				p.Reportf(send.Pos(), "channel send in select without default or timeout case; a vanished receiver blocks forever")
				return
			}
			p.Reportf(send.Pos(), "unguarded channel send; use select with default or timeout (Send never blocks)")
		})
	}
}

// applies restricts the rule to the message path (and to the analyzer's
// own test fixtures).
func (blockingsend) applies(pkgPath string) bool {
	return strings.Contains(pkgPath, "internal/transport") ||
		strings.Contains(pkgPath, "internal/core") ||
		strings.Contains(pkgPath, "testdata/src/blockingsend")
}

// guardingSelect returns the select statement whose comm clause IS this
// send (not merely a select the send is nested under in a case body).
func guardingSelect(send *ast.SendStmt, stack []ast.Node) *ast.SelectStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		if clause, ok := stack[i].(*ast.CommClause); ok && clause.Comm == send {
			for j := i - 1; j >= 0; j-- {
				if sel, ok := stack[j].(*ast.SelectStmt); ok {
					return sel
				}
			}
		}
		// Crossing a function literal boundary means the send belongs to
		// a different execution context than any enclosing select.
		if _, ok := stack[i].(*ast.FuncLit); ok {
			return nil
		}
	}
	return nil
}

// selectHasEscape reports whether the select has a default case or a
// case receiving from a timeout source (time.After/time.Tick or a
// Timer/Ticker .C channel).
func selectHasEscape(sel *ast.SelectStmt) bool {
	for _, stmt := range sel.Body.List {
		clause, ok := stmt.(*ast.CommClause)
		if !ok {
			continue
		}
		if clause.Comm == nil {
			return true // default case
		}
		if recvIsTimeout(clause.Comm) {
			return true
		}
	}
	return false
}

// recvIsTimeout recognizes `<-time.After(d)`, `<-time.Tick(d)` and
// `<-t.C` receive cases.
func recvIsTimeout(comm ast.Stmt) bool {
	var expr ast.Expr
	switch s := comm.(type) {
	case *ast.ExprStmt:
		expr = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			expr = s.Rhs[0]
		}
	}
	un, ok := expr.(*ast.UnaryExpr)
	if !ok {
		return false
	}
	switch x := un.X.(type) {
	case *ast.CallExpr:
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
			return sel.Sel.Name == "After" || sel.Sel.Name == "Tick"
		}
	case *ast.SelectorExpr:
		return x.Sel.Name == "C"
	}
	return false
}
