package agent

import (
	"fmt"
	"sort"

	"bestpeer/internal/wire"
)

// TopKClass is the class name of the top-K agent.
const TopKClass = "storm.topk"

// TopKAgent returns only the K largest objects matching a keyword at
// each peer — an example of a parameterized agent whose selection logic
// runs at the data. A requester browsing a large network gets a bounded
// result set per peer no matter how much matches.
type TopKAgent struct {
	// Query is the keyword to match.
	Query string
	// K bounds the results per peer (the K largest by payload size).
	K int
	// IncludeData returns the objects' content; false returns names
	// annotated with their sizes.
	IncludeData bool
}

// Class implements Agent.
func (a *TopKAgent) Class() string { return TopKClass }

// State implements Agent.
func (a *TopKAgent) State() ([]byte, error) {
	if a.K <= 0 {
		return nil, fmt.Errorf("%w: topk K must be positive, got %d", ErrBadPacket, a.K)
	}
	var e wire.Encoder
	e.String(a.Query)
	e.Uvarint(uint64(a.K))
	e.Bool(a.IncludeData)
	return e.Bytes(), nil
}

// Execute implements Agent: match, rank by rendered size descending
// (ties by name for determinism), keep K.
func (a *TopKAgent) Execute(ctx *Context) ([]Result, error) {
	matches, err := ctx.Store.Match(a.Query)
	if err != nil {
		return nil, err
	}
	type ranked struct {
		name string
		data []byte
	}
	var visible []ranked
	for _, obj := range matches {
		data, ok := ctx.ActiveNodes.RenderObject(obj, ctx.AccessLevel)
		if !ok {
			continue
		}
		visible = append(visible, ranked{obj.Name, data})
	}
	sort.Slice(visible, func(i, j int) bool {
		if len(visible[i].data) != len(visible[j].data) {
			return len(visible[i].data) > len(visible[j].data)
		}
		return visible[i].name < visible[j].name
	})
	if len(visible) > a.K {
		visible = visible[:a.K]
	}
	out := make([]Result, 0, len(visible))
	for _, v := range visible {
		r := Result{Name: v.name}
		if a.IncludeData {
			r.Data = v.data
		} else {
			r.Data = []byte(fmt.Sprintf("%d bytes", len(v.data)))
		}
		out = append(out, r)
	}
	return out, nil
}

type topKFactory struct{ code []byte }

// NewTopKFactory returns the factory for the top-K class.
func NewTopKFactory() Factory {
	return &topKFactory{code: classBlob(TopKClass, 5*1024)}
}

func (f *topKFactory) Class() string { return TopKClass }
func (f *topKFactory) Code() []byte  { return f.code }
func (f *topKFactory) New(state []byte) (Agent, error) {
	d := wire.NewDecoder(state)
	a := &TopKAgent{Query: d.String(), K: int(d.Uvarint()), IncludeData: d.Bool()}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: topk state: %v", ErrBadPacket, err)
	}
	if a.K <= 0 {
		return nil, fmt.Errorf("%w: topk K = %d", ErrBadPacket, a.K)
	}
	return a, nil
}
