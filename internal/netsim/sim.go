// Package netsim is a deterministic discrete-event network simulator. It
// stands in for the paper's dedicated 32-PC cluster: hosts with a
// configurable number of CPU threads exchange messages over links with
// latency and bandwidth, and all protocol work is charged simulated time.
//
// The simulator is deliberately generic — the BestPeer, client/server and
// Gnutella protocol models in internal/bench are built on top of it — and
// deterministic: two runs with the same inputs produce identical event
// orderings and timings.
package netsim

import (
	"fmt"
	"math/rand"
	"time"
)

// event is a scheduled callback. Events are stored by value in the shard
// heaps: at churn-simulation scale (tens of millions of events across
// 10k+ modeled nodes) one pointer allocation per event dominated the
// profile of the earlier pointer-heap design.
type event struct {
	at  time.Duration
	seq uint64 // tie-breaker: FIFO among simultaneous events
	fn  func()
}

// eventLess is the global event order: time, then scheduling sequence.
// Every pop compares shard heads with it, so the order is identical to a
// single queue's regardless of how events spread across shards.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// eventShard is one value-typed binary min-heap of events. Sharding
// keeps each heap short (log of a fraction of the total), and the
// hand-rolled sift avoids container/heap's interface boxing on the
// simulator's hottest path.
type eventShard struct {
	heap []event
}

func (h *eventShard) push(e event) {
	h.heap = append(h.heap, e)
	i := len(h.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !eventLess(&h.heap[i], &h.heap[p]) {
			break
		}
		h.heap[i], h.heap[p] = h.heap[p], h.heap[i]
		i = p
	}
}

func (h *eventShard) pop() event {
	root := h.heap[0]
	n := len(h.heap) - 1
	h.heap[0] = h.heap[n]
	h.heap[n] = event{} // release the callback for GC
	h.heap = h.heap[:n]
	i := 0
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < n && eventLess(&h.heap[l], &h.heap[m]) {
			m = l
		}
		if r < n && eventLess(&h.heap[r], &h.heap[m]) {
			m = r
		}
		if m == i {
			break
		}
		h.heap[i], h.heap[m] = h.heap[m], h.heap[i]
		i = m
	}
	return root
}

// simShards is the event-queue shard count. Events land on shards round-
// robin by scheduling sequence; a pop scans the (few) shard heads for the
// global minimum, so total order is preserved exactly.
const simShards = 8

// Sim is a discrete-event simulation engine. The zero value is not ready;
// use NewSim or NewSimSeeded.
type Sim struct {
	now     time.Duration
	seq     uint64
	shards  [simShards]eventShard
	pending int
	steps   uint64
	limit   uint64 // safety valve against runaway simulations
	rng     *rand.Rand
}

// NewSim returns an engine positioned at time zero with a fixed default
// random seed.
func NewSim() *Sim { return NewSimSeeded(1) }

// NewSimSeeded returns an engine whose Rand stream is seeded with seed,
// so models that need randomness (churn jitter, workload sampling) stay
// reproducible run to run. A zero seed selects the default.
func NewSimSeeded(seed int64) *Sim {
	if seed == 0 {
		seed = 1
	}
	return &Sim{limit: 200_000_000, rng: rand.New(rand.NewSource(seed))}
}

// Rand returns the simulation's seeded random stream. It must only be
// used from event callbacks (the simulator is single-threaded), and
// models that draw from it in a fixed order are deterministic.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Now returns the current simulated time.
func (s *Sim) Now() time.Duration { return s.now }

// Steps returns the number of events executed so far.
func (s *Sim) Steps() uint64 { return s.steps }

// At schedules fn at absolute simulated time t. Scheduling in the past
// panics: it would violate causality and indicates a protocol-model bug.
func (s *Sim) At(t time.Duration, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("netsim: scheduling at %v before now %v", t, s.now))
	}
	s.seq++
	s.shards[s.seq%simShards].push(event{at: t, seq: s.seq, fn: fn})
	s.pending++
}

// After schedules fn d after the current time. Negative delays are
// clamped to zero.
func (s *Sim) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.At(s.now+d, fn)
}

// peekShard returns the shard holding the globally next event; ok is
// false when no events are queued.
func (s *Sim) peekShard() (int, bool) {
	best := -1
	for i := range s.shards {
		h := s.shards[i].heap
		if len(h) == 0 {
			continue
		}
		if best < 0 || eventLess(&h[0], &s.shards[best].heap[0]) {
			best = i
		}
	}
	return best, best >= 0
}

// Run executes events until the queue drains and returns the final time.
func (s *Sim) Run() time.Duration {
	for s.pending > 0 {
		s.step()
	}
	return s.now
}

// RunUntil executes events with timestamps <= t, then advances the clock
// to t. Events scheduled later remain queued.
func (s *Sim) RunUntil(t time.Duration) {
	for {
		i, ok := s.peekShard()
		if !ok || s.shards[i].heap[0].at > t {
			break
		}
		s.stepShard(i)
	}
	if t > s.now {
		s.now = t
	}
}

func (s *Sim) step() {
	i, ok := s.peekShard()
	if !ok {
		return
	}
	s.stepShard(i)
}

func (s *Sim) stepShard(i int) {
	e := s.shards[i].pop()
	s.pending--
	s.now = e.at
	s.steps++
	if s.steps > s.limit {
		panic("netsim: event limit exceeded; simulation is likely divergent")
	}
	e.fn()
}

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return s.pending }
