package chord

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"bestpeer/internal/obs"
	"bestpeer/internal/transport"
	"bestpeer/internal/wire"
)

func TestBetween(t *testing.T) {
	cases := []struct {
		a, x, b Key
		want    bool
	}{
		{10, 15, 20, true},
		{10, 10, 20, false},
		{10, 20, 20, false},
		{10, 5, 20, false},
		{20, 25, 10, true},  // wrap
		{20, 5, 10, true},   // wrap
		{20, 15, 10, false}, // wrap
		{7, 3, 7, true},     // full circle minus a
		{7, 7, 7, false},
	}
	for _, c := range cases {
		if got := between(c.a, c.x, c.b); got != c.want {
			t.Errorf("between(%d,%d,%d) = %v, want %v", c.a, c.x, c.b, got, c.want)
		}
	}
	if !betweenRightIncl(10, 20, 20) {
		t.Error("betweenRightIncl must include the right endpoint")
	}
	if !betweenRightIncl(7, 7, 7) {
		t.Error("a single-node interval owns every key, including its own")
	}
}

func TestFingerStartWraps(t *testing.T) {
	k := Key(1) << 63
	if got := fingerStart(k, 63); got != 0 {
		t.Fatalf("fingerStart wrap = %d, want 0", got)
	}
	if got := fingerStart(5, 0); got != 6 {
		t.Fatalf("fingerStart(5,0) = %d", got)
	}
}

func TestTableSingleNodeOwnsEverything(t *testing.T) {
	self := RefFor("solo")
	tb := NewTable(self, 4)
	for _, k := range []Key{0, self.Key, self.Key + 1, ^Key(0)} {
		if !tb.Owns(k) {
			t.Fatalf("solo node must own key %d", k)
		}
		owner, _, done := tb.NextHop(k, nil)
		if !done || owner.Addr != "solo" {
			t.Fatalf("solo NextHop(%d) = %v done=%v", k, owner, done)
		}
	}
}

// buildRing wires n Tables into a converged ring directly: sorted by
// key, each with full successor lists and exact fingers.
func buildRing(addrs []string, succLen int) []*Table {
	return ConvergedTables(addrs, succLen)
}

func TestTableRoutingConverges(t *testing.T) {
	addrs := make([]string, 32)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("node-%d", i)
	}
	tables := buildRing(addrs, 4)
	byAddr := make(map[string]*Table, len(tables))
	var refs []NodeRef
	for _, tb := range tables {
		byAddr[tb.Self().Addr] = tb
		refs = append(refs, tb.Self())
	}
	wantOwner := func(k Key) NodeRef {
		best, bestDist := 0, uint64(refs[0].Key-k)
		for j, r := range refs {
			if d := uint64(r.Key - k); d < bestDist {
				best, bestDist = j, d
			}
		}
		return refs[best]
	}
	maxHops := 0
	for i := 0; i < 200; i++ {
		k := HashString(fmt.Sprintf("key-%d", i))
		cur := tables[i%len(tables)]
		hops := 0
		for {
			owner, hop, done := cur.NextHop(k, nil)
			if done {
				if owner.Addr != wantOwner(k).Addr {
					t.Fatalf("key %d resolved to %s, want %s", k, owner.Addr, wantOwner(k).Addr)
				}
				break
			}
			cur = byAddr[hop.Addr]
			hops++
			if hops > 64 {
				t.Fatalf("key %d did not resolve in 64 hops", k)
			}
		}
		if hops > maxHops {
			maxHops = hops
		}
	}
	// ceil(log2(32)) = 5; the +1 covers the final ownership step.
	if maxHops > 6 {
		t.Fatalf("max hops %d over a converged 32-node ring", maxHops)
	}
}

func TestProtoRoundTrips(t *testing.T) {
	lr := &lookupReq{Version: chordLookupVersion, Key: 12345, Hops: 3}
	got, err := decodeLookupReq(encodeLookupReq(lr))
	if err != nil || *got != *lr {
		t.Fatalf("lookupReq round trip: %v %v", got, err)
	}
	lo := &lookupOK{Version: chordLookupVersion, Owner: RefFor("n1"), Hops: 4}
	gotOK, err := decodeLookupOK(encodeLookupOK(lo))
	if err != nil || *gotOK != *lo {
		t.Fatalf("lookupOK round trip: %v %v", gotOK, err)
	}
	nm := &notifyMsg{Version: chordNotifyVersion, Self: RefFor("n1"), Leaving: true, Repl: RefFor("n2")}
	gotNM, err := decodeNotifyMsg(encodeNotifyMsg(nm))
	if err != nil || *gotNM != *nm {
		t.Fatalf("notifyMsg round trip: %v %v", gotNM, err)
	}
	po := &probeOK{
		Version: chordProbeVersion, Self: RefFor("n1"),
		HasPred: true, Pred: RefFor("n0"),
		Succs: []NodeRef{RefFor("n2"), RefFor("n3")},
	}
	gotPO, err := decodeProbeOK(encodeProbeOK(po))
	if err != nil {
		t.Fatalf("probeOK round trip: %v", err)
	}
	if gotPO.Self != po.Self || gotPO.Pred != po.Pred || len(gotPO.Succs) != 2 {
		t.Fatalf("probeOK round trip changed fields: %+v", gotPO)
	}
}

func TestProtoToleratesNewerVersions(t *testing.T) {
	// A newer sender appends a field this build does not know.
	body := encodeLookupReq(&lookupReq{Version: chordLookupVersion + 1, Key: 7, Hops: 1})
	body = append(body, 0xAA, 0xBB)
	m, err := decodeLookupReq(body)
	if err != nil {
		t.Fatalf("newer-version payload rejected: %v", err)
	}
	if m.Key != 7 || m.Hops != 1 {
		t.Fatalf("known fields misparsed: %+v", m)
	}
	// The same trailing bytes at the current version are an error.
	bad := encodeLookupReq(&lookupReq{Version: chordLookupVersion, Key: 7})
	bad = append(bad, 0xAA)
	if _, err := decodeLookupReq(bad); err == nil {
		t.Fatal("current-version trailing bytes accepted")
	}
}

// liveHarness accepts connections for a set of live nodes, dispatching
// chord envelopes the way the ring-mode LIGLO server does.
type liveHarness struct {
	t  *testing.T
	nw *transport.InProc
	mu sync.Mutex
	ns map[string]*liveEntry
}

type liveEntry struct {
	node *Node
	l    interface{ Close() error }
	wg   *sync.WaitGroup
}

func newLiveHarness(t *testing.T) *liveHarness {
	h := &liveHarness{t: t, nw: transport.NewInProc(), ns: make(map[string]*liveEntry)}
	t.Cleanup(h.closeAll)
	return h
}

// testConfig keeps the background cadences out of the test's way: the
// test drives Stabilize/RefreshFingers explicitly for determinism.
func testConfig() Config {
	return Config{
		StabilizeEvery:  time.Hour,
		FixFingersEvery: time.Hour,
		CheckPredEvery:  time.Hour,
		DialTimeout:     time.Second,
		CallTimeout:     2 * time.Second,
	}
}

func (h *liveHarness) spawn(addr string, cfg Config) *Node {
	h.t.Helper()
	l, err := h.nw.Listen(addr)
	if err != nil {
		h.t.Fatal(err)
	}
	n := New(h.nw, addr, cfg)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer conn.Close()
				wc := wire.NewConn(conn)
				for {
					req, err := wc.Recv()
					if err != nil {
						return
					}
					resp := n.HandleEnvelope(req)
					if resp == nil {
						return
					}
					if err := wc.Send(resp); err != nil {
						return
					}
				}
			}()
		}
	}()
	h.mu.Lock()
	h.ns[addr] = &liveEntry{node: n, l: l, wg: &wg}
	h.mu.Unlock()
	return n
}

// crash kills a node without any goodbye: listener closed, loops stopped.
func (h *liveHarness) crash(addr string) {
	h.mu.Lock()
	e := h.ns[addr]
	delete(h.ns, addr)
	h.mu.Unlock()
	if e == nil {
		return
	}
	_ = e.l.Close()
	_ = e.node.Close()
	e.wg.Wait()
}

func (h *liveHarness) closeAll() {
	h.mu.Lock()
	entries := make([]*liveEntry, 0, len(h.ns))
	for _, e := range h.ns {
		entries = append(entries, e)
	}
	h.ns = make(map[string]*liveEntry)
	h.mu.Unlock()
	for _, e := range entries {
		_ = e.node.Close()
		_ = e.l.Close()
		e.wg.Wait()
	}
}

func stabilizeAll(nodes []*Node, rounds int) {
	for r := 0; r < rounds; r++ {
		for _, n := range nodes {
			n.Stabilize()
		}
	}
	for _, n := range nodes {
		n.RefreshFingers()
	}
}

// ringOrder walks successor pointers from start and returns the visited
// addresses until the walk returns to start or exceeds limit.
func ringOrder(start *Node, byAddr map[string]*Node, limit int) []string {
	var out []string
	cur := start
	for i := 0; i < limit; i++ {
		out = append(out, cur.Self().Addr)
		next := byAddr[cur.Snapshot().Successors[0].Addr]
		if next == nil || next == start {
			return out
		}
		cur = next
	}
	return out
}

func TestLiveRingConvergesAndResolves(t *testing.T) {
	h := newLiveHarness(t)
	const n = 6
	var nodes []*Node
	byAddr := make(map[string]*Node)
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("c%d", i)
		nd := h.spawn(addr, testConfig())
		byAddr[addr] = nd
		if i == 0 {
			nd.Create()
		} else if err := nd.Join("c0"); err != nil {
			t.Fatalf("join %s: %v", addr, err)
		}
		nodes = append(nodes, nd)
		stabilizeAll(nodes, 3)
	}
	stabilizeAll(nodes, 4)

	order := ringOrder(nodes[0], byAddr, 2*n)
	if len(order) != n {
		t.Fatalf("ring walk visited %d nodes, want %d: %v", len(order), n, order)
	}

	// Every node resolves every key to the same owner.
	for i := 0; i < 20; i++ {
		k := HashString(fmt.Sprintf("key-%d", i))
		want, _, err := nodes[0].FindOwner(k)
		if err != nil {
			t.Fatal(err)
		}
		if !byAddr[want.Addr].Owns(k) {
			t.Fatalf("resolved owner %s does not own key %d", want.Addr, k)
		}
		for _, nd := range nodes[1:] {
			got, hops, err := nd.FindOwner(k)
			if err != nil {
				t.Fatal(err)
			}
			if got.Addr != want.Addr {
				t.Fatalf("node %s resolved key %d to %s, want %s",
					nd.Self().Addr, k, got.Addr, want.Addr)
			}
			if hops > n {
				t.Fatalf("lookup took %d hops on a %d-node ring", hops, n)
			}
		}
	}
}

func TestLiveGracefulLeaveHandsOff(t *testing.T) {
	h := newLiveHarness(t)
	var nodes []*Node
	byAddr := make(map[string]*Node)
	for i := 0; i < 4; i++ {
		addr := fmt.Sprintf("g%d", i)
		nd := h.spawn(addr, testConfig())
		byAddr[addr] = nd
		if i == 0 {
			nd.Create()
		} else if err := nd.Join("g0"); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, nd)
		stabilizeAll(nodes, 3)
	}
	stabilizeAll(nodes, 3)

	leaver := nodes[2]
	if err := leaver.Leave(); err != nil {
		t.Fatalf("leave: %v", err)
	}
	h.crash(leaver.Self().Addr) // stop serving, like a real process exit
	rest := []*Node{nodes[0], nodes[1], nodes[3]}
	delete(byAddr, leaver.Self().Addr)
	stabilizeAll(rest, 4)

	order := ringOrder(rest[0], byAddr, 8)
	if len(order) != 3 {
		t.Fatalf("post-leave ring walk: %v", order)
	}
	for i := 0; i < 10; i++ {
		k := HashString(fmt.Sprintf("after-leave-%d", i))
		owner, _, err := rest[0].FindOwner(k)
		if err != nil {
			t.Fatalf("lookup after leave: %v", err)
		}
		if owner.Addr == leaver.Self().Addr {
			t.Fatalf("key %d still resolves to the departed node", k)
		}
	}
}

func TestLiveCrashRepairViaSuccessorList(t *testing.T) {
	h := newLiveHarness(t)
	var nodes []*Node
	byAddr := make(map[string]*Node)
	for i := 0; i < 5; i++ {
		addr := fmt.Sprintf("x%d", i)
		nd := h.spawn(addr, testConfig())
		byAddr[addr] = nd
		if i == 0 {
			nd.Create()
		} else if err := nd.Join("x0"); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, nd)
		stabilizeAll(nodes, 3)
	}
	stabilizeAll(nodes, 4)

	victim := nodes[3]
	h.crash(victim.Self().Addr) // no goodbye
	delete(byAddr, victim.Self().Addr)
	var rest []*Node
	for _, nd := range nodes {
		if nd != victim {
			rest = append(rest, nd)
		}
	}
	// Several rounds: the predecessor's probe fails, the successor list
	// shifts, check-predecessor clears the stale slot.
	for r := 0; r < 6; r++ {
		for _, nd := range rest {
			nd.Stabilize()
			nd.CheckPredecessor()
		}
	}
	for _, nd := range rest {
		nd.RefreshFingers()
	}

	order := ringOrder(rest[0], byAddr, 10)
	if len(order) != 4 {
		t.Fatalf("post-crash ring walk: %v", order)
	}
	for i := 0; i < 10; i++ {
		k := HashString(fmt.Sprintf("after-crash-%d", i))
		for _, nd := range rest {
			owner, _, err := nd.FindOwner(k)
			if err != nil {
				t.Fatalf("lookup after crash from %s: %v", nd.Self().Addr, err)
			}
			if owner.Addr == victim.Self().Addr {
				t.Fatalf("key %d still resolves to the crashed node", k)
			}
		}
	}
}

func TestOnSuspectPurgesAndJournals(t *testing.T) {
	h := newLiveHarness(t)
	j := obs.NewJournal("test", 64)
	cfgA := testConfig()
	cfgA.Journal = j
	a := h.spawn("s0", cfgA)
	b := h.spawn("s1", testConfig())
	a.Create()
	if err := b.Join("s0"); err != nil {
		t.Fatal(err)
	}
	stabilizeAll([]*Node{a, b}, 3)
	if a.Snapshot().Successors[0].Addr != "s1" {
		t.Fatalf("a's successor = %v", a.Snapshot().Successors)
	}
	h.crash("s1")
	a.OnSuspect("s1", true)
	// The maintenance loop drains suspectCh; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if a.Snapshot().Successors[0].Addr == "s0" {
			break
		}
		a.Stabilize()
	}
	if got := a.Snapshot().Successors[0].Addr; got != "s0" {
		t.Fatalf("suspect successor not purged: %v", got)
	}
	events, _, _ := j.Since(0, 0)
	seen := false
	for _, e := range events {
		if e.Kind == obs.EvRingNeighborChanged {
			seen = true
		}
	}
	if !seen {
		t.Fatal("no ring-neighbor-changed event journalled")
	}
}
