// Package codecdrift is a bpvet fixture for the codec-symmetry
// analyzer: encode/decode pairs that agree, drift, gate versions on one
// side only, and extension tags written but never decoded.
package codecdrift

// Encoder and Decoder mirror the wire primitives; codecdrift matches
// operations by receiver type name and method vocabulary.
type Encoder struct{ buf []byte }

func (e *Encoder) Uvarint(v uint64) { _ = v }
func (e *Encoder) String(s string)  { _ = s }
func (e *Encoder) Bool(v bool)      { _ = v }
func (e *Encoder) Bytes() []byte    { return e.buf }

type Decoder struct {
	buf []byte
	pos int
}

func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

func (d *Decoder) Uvarint() uint64 { return 0 }
func (d *Decoder) String() string  { return "" }
func (d *Decoder) Bool() bool      { return false }
func (d *Decoder) Finish() error   { return nil }

// good is a symmetric pair: same fields, same order, loop mirrored.
type good struct {
	Name  string
	Items []string
}

func encodeGood(g *good) []byte {
	var e Encoder
	e.String(g.Name)
	e.Uvarint(uint64(len(g.Items)))
	for _, it := range g.Items {
		e.String(it)
	}
	return e.Bytes()
}

func decodeGood(b []byte) (*good, error) {
	d := NewDecoder(b)
	g := &good{Name: d.String()}
	n := d.Uvarint()
	for i := uint64(0); i < n; i++ {
		g.Items = append(g.Items, d.String())
	}
	return g, d.Finish()
}

// drift mimics a one-sided field add: the encoder grew a third field,
// the decoder was never updated.
type drift struct {
	Version uint64
	Name    string
	Sticky  bool
}

func encodeDrift(m *drift) []byte {
	var e Encoder
	e.Uvarint(m.Version)
	e.String(m.Name)
	e.Bool(m.Sticky)
	return e.Bytes()
}

func decodeDrift(b []byte) (*drift, error) { // want `drift at field 3`
	d := NewDecoder(b)
	m := &drift{Version: d.Uvarint()}
	m.Name = d.String()
	if m.Version > 1 {
		return m, nil
	}
	return m, d.Finish()
}

// gated mimics a field version-gated on the encode side only: old
// decoders written against v1 still read the field unconditionally.
type gated struct {
	Version uint64
	Extra   string
}

func encodeGated(m *gated) []byte {
	var e Encoder
	e.Uvarint(m.Version)
	if m.Version >= 2 {
		e.String(m.Extra)
	}
	return e.Bytes()
}

func decodeGated(b []byte) (*gated, error) {
	d := NewDecoder(b)
	m := &gated{Version: d.Uvarint()}
	m.Extra = d.String() // want `drift at field 2`
	if m.Version > 1 {
		return m, nil
	}
	return m, d.Finish()
}

// notol reads a version and then ignores it: newer senders' payloads
// fail Finish instead of being tolerated.
type notol struct {
	Version uint64
	Name    string
}

func encodeNotol(m *notol) []byte {
	var e Encoder
	e.Uvarint(m.Version)
	e.String(m.Name)
	return e.Bytes()
}

func decodeNotol(b []byte) (*notol, error) { // want `never compares it`
	d := NewDecoder(b)
	m := &notol{Version: d.Uvarint()}
	m.Name = d.String()
	return m, d.Finish()
}

// noseed is a well-formed versioned pair with no fuzz corpus seed.
type noseed struct {
	Version uint64
}

func encodeNoseed(m *noseed) []byte { // want `no fuzz corpus seed`
	var e Encoder
	e.Uvarint(m.Version)
	return e.Bytes()
}

func decodeNoseed(b []byte) (*noseed, error) {
	d := NewDecoder(b)
	m := &noseed{Version: d.Uvarint()}
	if m.Version > 1 {
		return m, nil
	}
	return m, d.Finish()
}

// encodeOrphan writes fields nobody can read back.
func encodeOrphan(name string) []byte { // want `no decodeOrphan counterpart`
	var e Encoder
	e.String(name)
	return e.Bytes()
}

// Extension registry: extGood is round-tripped, extOld is written but
// no decoder arm matches it — receivers silently drop the record.
const (
	extGood = 1
	extOld  = 2 // want `never matched by the decoder`
)

func appendExt(buf []byte, tag uint8, payload []byte) []byte {
	buf = append(buf, tag, byte(len(payload)))
	return append(buf, payload...)
}

func encodeFrame(g *good) []byte {
	var buf []byte
	buf = appendExt(buf, extGood, encodeGood(g))
	buf = appendExt(buf, extOld, nil)
	return buf
}

func decodeFrame(b []byte) (*good, error) {
	for len(b) >= 2 {
		tag, n := b[0], int(b[1])
		if len(b) < 2+n {
			break
		}
		payload := b[2 : 2+n]
		b = b[2+n:]
		switch tag {
		case extGood:
			return decodeGood(payload)
		}
	}
	return nil, nil
}
