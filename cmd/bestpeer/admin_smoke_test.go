package main

import (
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bestpeer/internal/agent"
	"bestpeer/internal/core"
	"bestpeer/internal/qroute"
	"bestpeer/internal/reconfig"
	"bestpeer/internal/storm"
	"bestpeer/internal/transport"
)

// TestAdminEndpointSmoke is the ci-target smoke test for the -admin
// flag: it boots the same stack main() boots (StorM store, TCP
// transport) with the admin endpoint enabled, issues a query, and
// scrapes /metrics, /healthz and /queries over real HTTP.
func TestAdminEndpointSmoke(t *testing.T) {
	store, err := storm.Open(filepath.Join(t.TempDir(), "smoke.storm"), storm.Options{})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	defer store.Close()
	if _, err := store.Put(&storm.Object{
		Name: "smoke.txt", Keywords: []string{"smoke"}, Data: []byte("hello"),
	}); err != nil {
		t.Fatalf("put: %v", err)
	}

	node, err := core.NewNode(core.Config{
		Network:    transport.TCP{},
		ListenAddr: "127.0.0.1:0",
		Store:      store,
		MaxPeers:   5,
		DefaultTTL: 7,
		Strategy:   reconfig.ByName("maxcount"),
		QRoute:     qroute.Options{Enable: true},
	})
	if err != nil {
		t.Fatalf("start node: %v", err)
	}
	defer node.Close()

	srv, err := node.ServeAdmin("") // empty addr means loopback, random port
	if err != nil {
		t.Fatalf("serve admin: %v", err)
	}

	res, err := node.Query(&agent.KeywordAgent{Query: "smoke"},
		core.QueryOptions{Timeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatalf("query: %v", err)
	}

	metrics := httpGet(t, "http://"+srv.Addr()+"/metrics")
	for _, family := range []string{
		"bestpeer_node_queries_total",
		"bestpeer_transport_messages_sent_total",
		"bestpeer_liglo_client_calls_total",
		"bestpeer_storm_objects",
	} {
		if !strings.Contains(metrics, family) {
			t.Errorf("/metrics is missing family %s", family)
		}
	}
	if !strings.Contains(metrics, "bestpeer_node_queries_total 1") {
		t.Errorf("/metrics does not count the query:\n%s", metrics)
	}

	if body := httpGet(t, "http://"+srv.Addr()+"/healthz"); !strings.Contains(body, node.Addr()) {
		t.Errorf("/healthz does not report the node address: %s", body)
	}
	trace := httpGet(t, "http://"+srv.Addr()+"/queries/"+res.ID.String())
	if !strings.Contains(trace, "tree") {
		t.Errorf("/queries/%v is not a trace payload: %s", res.ID, trace)
	}

	// A second identical query is served from the answer cache; /cache
	// must report the subsystem enabled and the hit counted.
	if _, err := node.Query(&agent.KeywordAgent{Query: "smoke"},
		core.QueryOptions{Timeout: 200 * time.Millisecond}); err != nil {
		t.Fatalf("repeat query: %v", err)
	}
	cache := httpGet(t, "http://"+srv.Addr()+"/cache")
	if !strings.Contains(cache, `"enabled": true`) {
		t.Errorf("/cache does not report the subsystem enabled: %s", cache)
	}
	if !strings.Contains(cache, `"hits": 1`) {
		t.Errorf("/cache does not count the repeat query's hit: %s", cache)
	}
	if !strings.Contains(httpGet(t, "http://"+srv.Addr()+"/metrics"),
		"bestpeer_qroute_cache_hits_total") {
		t.Errorf("/metrics is missing the qroute family")
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return string(body)
}
