package qroute

import (
	"strings"
	"testing"
	"time"

	"bestpeer/internal/obs"
)

func TestNilEngineIsDisabled(t *testing.T) {
	var e *Engine
	if _, _, ok := e.GetBase("k", t0); ok {
		t.Fatal("nil engine must miss")
	}
	e.PutBase("k", 1, 1, false, 0, t0) // must not panic
	e.Observe([]string{"t"}, "a", 1, 1, t0)
	if p := e.Select([]string{"t"}, []string{"a"}, 7, t0); p.Selective {
		t.Fatal("nil engine must flood")
	}
	if s := e.Stats(); s.Enabled {
		t.Fatal("nil engine must report disabled")
	}
	if e.BumpEpoch() != 0 || e.Epoch() != 0 {
		t.Fatal("nil engine epoch must be inert")
	}
}

func TestNewEngineGatedOnEnable(t *testing.T) {
	if NewEngine(Options{}, nil) != nil {
		t.Fatal("disabled options must produce a nil engine")
	}
	if NewEngine(Options{Enable: true}, nil) == nil {
		t.Fatal("enabled options must produce an engine")
	}
}

func TestEngineSitesDoNotAlias(t *testing.T) {
	e := NewEngine(Options{Enable: true}, nil)
	e.PutBase("k", "base-val", 8, false, e.Epoch(), t0)
	if _, _, ok := e.GetServe("k", t0); ok {
		t.Fatal("base entry must not be visible at the serve site")
	}
	if v, _, ok := e.GetBase("k", t0); !ok || v.(string) != "base-val" {
		t.Fatal("base entry lost")
	}
}

func TestEngineMetricsAndStats(t *testing.T) {
	reg := obs.NewRegistry()
	e := NewEngine(Options{Enable: true, Route: RouteOptions{Epsilon: -1}}, reg)
	e.GetBase("k", t0) // miss
	e.PutBase("k", "v", 1, false, e.Epoch(), t0)
	e.GetBase("k", t0) // hit
	e.PutServe("k", nil, 0, true, e.Epoch(), t0)
	e.GetServe("k", t0) // negative hit
	e.Select(nil, []string{"a"}, 7, t0)
	e.Observe([]string{"t"}, "a", 3, 1, t0)
	e.Select([]string{"t"}, []string{"a"}, 7, t0.Add(time.Millisecond))
	e.BumpEpoch()

	s := e.Stats()
	if !s.Enabled || s.Cache.Hits != 1 || s.Cache.NegativeHits != 1 ||
		s.Cache.Misses != 1 || s.Cache.Invalidated != 2 ||
		s.Flood != 1 || s.Selective != 1 || s.Terms != 1 {
		t.Fatalf("stats %+v", s)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"bestpeer_qroute_cache_hits_total",
		"bestpeer_qroute_cache_misses_total",
		"bestpeer_qroute_cache_evictions_total",
		"bestpeer_qroute_cache_invalidations_total",
		"bestpeer_qroute_routes_total",
		"bestpeer_qroute_cache_entries",
		"bestpeer_qroute_epoch",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metric family %q not exported", want)
		}
	}
}

func TestKeyComposition(t *testing.T) {
	a := Key("storm.keyword", 1, 0, "jazz")
	b := Key("storm.keyword", 2, 0, "jazz")
	c := Key("storm.keyword", 1, 3, "jazz")
	d := Key("storm.digest", 1, 0, "jazz")
	if a == b || a == c || a == d {
		t.Fatal("mode, access level and class must all distinguish keys")
	}
	if a != Key("storm.keyword", 1, 0, "jazz") {
		t.Fatal("key building must be deterministic")
	}
}
