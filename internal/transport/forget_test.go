package transport

import (
	"testing"
	"time"

	"bestpeer/internal/wire"
)

// TestForgetReleasesDestinationState pins the lifecycle contract the
// core node's Leave/Depart paths rely on: Forget frees the send queue
// and worker for a departed peer, reports whether state existed, and a
// later Send to the same address starts fresh.
func TestForgetReleasesDestinationState(t *testing.T) {
	nw := NewInProc()
	c := newCollector()
	recv, err := NewMessenger(nw, "fr-recv", c.handle)
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	snd, err := NewMessenger(nw, "fr-snd", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer snd.Close()

	if snd.Forget("fr-recv") {
		t.Fatal("Forget before any Send reported state")
	}
	if err := snd.Send("fr-recv", env(wire.KindAgent, "one")); err != nil {
		t.Fatal(err)
	}
	c.waitFor(t, 1)
	if !snd.Forget("fr-recv") {
		t.Fatal("Forget after Send reported no state")
	}
	snd.mu.Lock()
	queues := len(snd.outs)
	snd.mu.Unlock()
	if queues != 0 {
		t.Fatalf("outs retained %d queues after Forget", queues)
	}
	if snd.Forget("fr-recv") {
		t.Fatal("second Forget reported state")
	}
	// The address is usable again immediately.
	if err := snd.Send("fr-recv", env(wire.KindAgent, "two")); err != nil {
		t.Fatal(err)
	}
	got := c.waitFor(t, 2)
	if string(got[1].Body) != "two" {
		t.Fatalf("post-Forget delivery = %q", got[1].Body)
	}
}

// TestForgetClearsSuspectState drives a destination into backoff via the
// failure detector, then checks Forget wipes the suspect marker — a
// departed peer's address must not poison a future node that reuses it.
func TestForgetClearsSuspectState(t *testing.T) {
	nw := NewInProc()
	transitions := make(chan bool, 8)
	snd, err := NewMessengerOpts(nw, "fs-snd", nil, Options{
		FailThreshold: 1,
		BackoffBase:   time.Hour, // stay suspect for the whole test
		OnSuspect:     func(_ string, suspect bool) { transitions <- suspect },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer snd.Close()

	// Nobody listens on "ghost": the first delivery fails and, with
	// FailThreshold 1, marks the destination suspect.
	if err := snd.Send("ghost", env(wire.KindAgent, "x")); err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-transitions:
		if !s {
			t.Fatal("first transition was suspect=false")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no suspect transition after failed delivery")
	}
	if !snd.Suspect("ghost") {
		t.Fatal("destination not suspect after threshold failures")
	}
	if !snd.Forget("ghost") {
		t.Fatal("Forget reported no state for suspect destination")
	}
	if snd.Suspect("ghost") {
		t.Fatal("suspect state survived Forget")
	}
}

// TestOnSuspectRecoveryTransition checks the failure detector reports
// both edges: suspect=true when a destination crosses the failure
// threshold and suspect=false once a delivery succeeds again — the
// signal the core repair loop keys off.
func TestOnSuspectRecoveryTransition(t *testing.T) {
	nw := NewInProc()
	transitions := make(chan bool, 16)
	snd, err := NewMessengerOpts(nw, "rt-snd", nil, Options{
		FailThreshold: 1,
		BackoffBase:   10 * time.Millisecond,
		OnSuspect:     func(_ string, suspect bool) { transitions <- suspect },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer snd.Close()

	if err := snd.Send("rt-late", env(wire.KindAgent, "early")); err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-transitions:
		if !s {
			t.Fatal("first transition was suspect=false")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no suspect transition")
	}

	// The peer comes up; keep sending (sends during backoff are dropped
	// with ErrPeerSuspect) until one gets through and clears the mark.
	c := newCollector()
	recv, err := NewMessenger(nw, "rt-late", c.handle)
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	deadline := time.Now().Add(5 * time.Second)
	recovered := false
	for !recovered && time.Now().Before(deadline) {
		_ = snd.Send("rt-late", env(wire.KindAgent, "retry")) // ErrPeerSuspect during backoff is expected
		select {
		case s := <-transitions:
			if s {
				t.Fatal("second suspect=true transition without an intervening recovery")
			}
			recovered = true
		case <-time.After(20 * time.Millisecond):
		}
	}
	if !recovered {
		t.Fatal("no recovery transition after the peer came up")
	}
	if snd.Suspect("rt-late") {
		t.Fatal("destination still suspect after successful delivery")
	}
}

// TestFailingOutlivesBackoffWindow pins the health signal the repair
// loop keys off: Failing stays true after the suspect backoff window
// expires (only a successful delivery clears it), because a repair round
// sampling seconds after the failure must still see the dead peer.
func TestFailingOutlivesBackoffWindow(t *testing.T) {
	nw := NewInProc()
	transitions := make(chan bool, 8)
	snd, err := NewMessengerOpts(nw, "fw-snd", nil, Options{
		FailThreshold: 1,
		BackoffBase:   5 * time.Millisecond, // expires long before the assertions
		OnSuspect:     func(_ string, suspect bool) { transitions <- suspect },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer snd.Close()

	if snd.Failing("fw-dead") {
		t.Fatal("Failing before any Send")
	}
	if err := snd.Send("fw-dead", env(wire.KindAgent, "x")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-transitions:
	case <-time.After(5 * time.Second):
		t.Fatal("no suspect transition after failed delivery")
	}

	// Out-wait the backoff window: Suspect forgives, Failing must not.
	time.Sleep(50 * time.Millisecond)
	if snd.Suspect("fw-dead") {
		t.Fatal("still inside backoff window; test timing too tight")
	}
	if !snd.Failing("fw-dead") {
		t.Fatal("Failing reset when the backoff window expired")
	}

	// A successful delivery is the one thing that clears it.
	c := newCollector()
	recv, err := NewMessenger(nw, "fw-dead", c.handle)
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	deadline := time.Now().Add(5 * time.Second)
	for snd.Failing("fw-dead") && time.Now().Before(deadline) {
		_ = snd.Send("fw-dead", env(wire.KindAgent, "retry")) // dropped while in backoff is fine
		time.Sleep(10 * time.Millisecond)
	}
	if snd.Failing("fw-dead") {
		t.Fatal("Failing survived a successful delivery")
	}
}
