// Compute: computational-power sharing (§3.2.3).
//
// A requester ships its own filtering algorithm — a compiled filter
// expression — to data-holding peers. The filter executes at each
// provider against the provider's objects, and only matching names (or a
// digest) come back, so the provider's CPU does the work and the network
// carries only the distilled result.
//
// Run with: go run ./examples/compute
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"bestpeer/internal/agent"
	"bestpeer/internal/core"
	"bestpeer/internal/storm"
	"bestpeer/internal/transport"
)

func main() {
	dir, err := os.MkdirTemp("", "bestpeer-compute")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	nw := transport.NewInProc()

	// Three data providers with stock tick archives of varying sizes.
	var providers []*core.Node
	for i, symbolSet := range [][]string{
		{"ACME", "GLOBEX"},
		{"INITECH", "ACME"},
		{"HOOLI"},
	} {
		store, err := storm.Open(filepath.Join(dir, fmt.Sprintf("prov%d.storm", i)), storm.Options{})
		if err != nil {
			log.Fatal(err)
		}
		defer store.Close()
		for _, sym := range symbolSet {
			for day := 1; day <= 3; day++ {
				size := 100 * day * (i + 1)
				store.Put(&storm.Object{
					Name:     fmt.Sprintf("%s-day%d", sym, day),
					Keywords: []string{"ticks", sym},
					Data:     make([]byte, size),
				})
			}
		}
		node, err := core.NewNode(core.Config{
			Network: nw, ListenAddr: fmt.Sprintf("provider-%d", i), Store: store,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer node.Close()
		providers = append(providers, node)
	}

	// The requester: no local data, just an algorithm to run elsewhere.
	reqStore, err := storm.Open(filepath.Join(dir, "req.storm"), storm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer reqStore.Close()
	requester, err := core.NewNode(core.Config{
		Network: nw, ListenAddr: "requester", Store: reqStore, MaxPeers: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer requester.Close()
	var peers []core.Peer
	for _, p := range providers {
		peers = append(peers, core.Peer{Addr: p.Addr()})
	}
	requester.SetPeers(peers)

	// Two different "algorithms", shipped and evaluated remotely.
	for _, expr := range []string{
		"keyword=ACME & size>300",
		"keyword=ticks & !keyword=ACME & size<250",
	} {
		res, err := requester.Query(&agent.FilterAgent{Expr: expr}, core.QueryOptions{
			Timeout: time.Second,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("filter %q matched %d objects:\n", expr, len(res.Answers))
		for _, a := range res.Answers {
			fmt.Printf("    %-16s at %s\n", a.Result.Name, a.PeerAddr)
		}
		fmt.Println()
	}

	// A digest agent: processed information instead of raw data.
	res, err := requester.Query(&agent.DigestAgent{Query: "ticks"}, core.QueryOptions{
		Timeout: time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("digest of all tick archives (%d):\n", len(res.Answers))
	for _, a := range res.Answers {
		fmt.Printf("    %s\n", a.Result.Data)
	}
}
