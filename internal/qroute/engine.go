package qroute

import (
	"strconv"
	"strings"
	"time"

	"bestpeer/internal/obs"
)

// Options configures a node's qroute engine. The zero value means
// "disabled": every knob is gated behind Enable so existing
// configurations keep the paper's plain flood-everything behavior.
type Options struct {
	// Enable turns the subsystem on.
	Enable bool
	// Cache bounds and freshness; see CacheOptions.
	Cache CacheOptions
	// Route learning and selection; see RouteOptions.
	Route RouteOptions
}

// Engine couples one node's answer cache and routing index and publishes
// their metric families. All methods are safe for concurrent use; a nil
// *Engine is valid and means "disabled" (lookups miss, plans flood).
type Engine struct {
	cache *Cache
	index *RoutingIndex

	hitBase, hitServe, hitNeg *obs.Counter
	missBase, missServe       *obs.Counter
	evictions, invalidations  *obs.Counter
	routeSelective            *obs.Counter
	routeFlood                *obs.Counter
	routeExplore              *obs.Counter
	neighborsForgotten        *obs.Counter
}

// NewEngine builds an engine and registers its metrics. A nil registry
// uses a private one (metrics still count, just unexported).
func NewEngine(opt Options, reg *obs.Registry) *Engine {
	if !opt.Enable {
		return nil
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	e := &Engine{
		cache: NewCache(opt.Cache),
		index: NewRoutingIndex(opt.Route),
	}
	const (
		hits   = "bestpeer_qroute_cache_hits_total"
		hitsD  = "Answer-cache hits by site: base (whole query served locally), serve (peer skipped a store scan), negative (cached no-match)."
		misses = "bestpeer_qroute_cache_misses_total"
		missD  = "Answer-cache misses by site."
		routes = "bestpeer_qroute_routes_total"
		routeD = "Fan-out decisions: selective (learned top-f route), flood (low confidence fallback), explore (ε-exploration flood)."
	)
	e.hitBase = reg.Counter(hits, hitsD, obs.L("where", "base"))
	e.hitServe = reg.Counter(hits, hitsD, obs.L("where", "serve"))
	e.hitNeg = reg.Counter(hits, hitsD, obs.L("where", "negative"))
	e.missBase = reg.Counter(misses, missD, obs.L("where", "base"))
	e.missServe = reg.Counter(misses, missD, obs.L("where", "serve"))
	e.evictions = reg.Counter("bestpeer_qroute_cache_evictions_total",
		"Answer-cache entries evicted by the LRU capacity bound.")
	e.invalidations = reg.Counter("bestpeer_qroute_cache_invalidations_total",
		"Answer-cache entries invalidated by store-mutation epoch bumps.")
	e.routeSelective = reg.Counter(routes, routeD, obs.L("mode", "selective"))
	e.routeFlood = reg.Counter(routes, routeD, obs.L("mode", "flood"))
	e.routeExplore = reg.Counter(routes, routeD, obs.L("mode", "explore"))
	e.neighborsForgotten = reg.Counter("bestpeer_qroute_neighbors_forgotten_total",
		"Departed neighbors evicted from the routing index and answer cache.")
	reg.GaugeFunc("bestpeer_qroute_cache_entries",
		"Answer-cache entries currently held.",
		func() float64 { return float64(e.cache.Stats().Entries) })
	reg.GaugeFunc("bestpeer_qroute_cache_bytes",
		"Answer-cache accounted payload bytes.",
		func() float64 { return float64(e.cache.Stats().Bytes) })
	reg.GaugeFunc("bestpeer_qroute_epoch",
		"Store-mutation epoch versioning the answer cache.",
		func() float64 { return float64(e.cache.Epoch()) })
	return e
}

// Key builds the answer-cache key for an agent fingerprint: the class,
// the query mode, the requester's access level and the agent's canonical
// query key, all of which shape the result set.
func Key(class string, mode uint8, access int, queryKey string) string {
	var b strings.Builder
	b.Grow(len(class) + len(queryKey) + 12)
	b.WriteString(class)
	b.WriteByte(0x1f)
	b.WriteString(strconv.Itoa(int(mode)))
	b.WriteByte(0x1f)
	b.WriteString(strconv.Itoa(access))
	b.WriteByte(0x1f)
	b.WriteString(queryKey)
	return b.String()
}

// Epoch returns the engine's current store-mutation epoch (0 when
// disabled).
func (e *Engine) Epoch() uint64 {
	if e == nil {
		return 0
	}
	return e.cache.Epoch()
}

// BumpEpoch is the store-mutation hook: it advances the epoch and
// returns how many cached entries that invalidated.
func (e *Engine) BumpEpoch() int {
	if e == nil {
		return 0
	}
	n := e.cache.BumpEpoch()
	e.invalidations.Add(uint64(n))
	return n
}

// cache sites: the same cache stores base entries (a whole collected
// answer set) and serve entries (one peer's local results), disambiguated
// by key prefix so the two can never alias.
const (
	siteBase  = "b\x1f"
	siteServe = "s\x1f"
)

// GetBase looks up a whole-query answer set cached at the base node.
func (e *Engine) GetBase(key string, now time.Time) (val any, negative, ok bool) {
	if e == nil {
		return nil, false, false
	}
	return e.get(siteBase+key, e.hitBase, e.missBase, now)
}

// PutBase caches a whole-query answer set at the base node. epoch must
// have been read before the query ran (see Cache.Put).
func (e *Engine) PutBase(key string, val any, size int, negative bool, epoch uint64, now time.Time) {
	e.PutBaseFrom(key, val, size, negative, epoch, now, nil)
}

// PutBaseFrom is PutBase with answer provenance: sites lists the peer
// addresses the answers came from, so ForgetNeighbor can evict entries
// served by a peer that later departs.
func (e *Engine) PutBaseFrom(key string, val any, size int, negative bool, epoch uint64, now time.Time, sites []string) {
	if e == nil {
		return
	}
	if n := e.cache.PutFrom(siteBase+key, val, size, negative, epoch, now, sites); n > 0 {
		e.evictions.Add(uint64(n))
	}
}

// ForgetNeighbor evicts everything learned about or through a departed
// neighbor: its per-term routing counters and every cached answer set
// whose provenance includes it. Call it when a direct peer leaves or is
// dropped as dead, so long-lived nodes under churn do not hold unbounded
// dead-neighbor state. It returns how many index counters plus cache
// entries were evicted.
func (e *Engine) ForgetNeighbor(addr string) int {
	if e == nil || addr == "" {
		return 0
	}
	n := e.index.Forget(addr)
	dropped := e.cache.DropSite(addr)
	if dropped > 0 {
		e.evictions.Add(uint64(dropped))
	}
	e.neighborsForgotten.Inc()
	return n + dropped
}

// GetServe looks up a peer-local result set cached at a serving node.
func (e *Engine) GetServe(key string, now time.Time) (val any, negative, ok bool) {
	if e == nil {
		return nil, false, false
	}
	return e.get(siteServe+key, e.hitServe, e.missServe, now)
}

// PutServe caches a peer-local result set at a serving node.
func (e *Engine) PutServe(key string, val any, size int, negative bool, epoch uint64, now time.Time) {
	if e == nil {
		return
	}
	e.put(siteServe+key, val, size, negative, epoch, now)
}

func (e *Engine) get(key string, hit, miss *obs.Counter, now time.Time) (any, bool, bool) {
	if e == nil {
		return nil, false, false
	}
	val, negative, ok := e.cache.Get(key, now)
	switch {
	case !ok:
		miss.Inc()
	case negative:
		e.hitNeg.Inc()
	default:
		hit.Inc()
	}
	return val, negative, ok
}

func (e *Engine) put(key string, val any, size int, negative bool, epoch uint64, now time.Time) {
	if n := e.cache.Put(key, val, size, negative, epoch, now); n > 0 {
		e.evictions.Add(uint64(n))
	}
}

// Observe feeds one attributed answer batch into the routing index.
func (e *Engine) Observe(terms []string, via string, answers, hops int, now time.Time) {
	if e == nil {
		return
	}
	e.index.Observe(terms, via, answers, hops, now)
}

// Select plans a fan-out; a nil engine always floods.
func (e *Engine) Select(terms []string, neighbors []string, ttl uint8, now time.Time) Plan {
	if e == nil {
		return Plan{Targets: neighbors, TTL: ttl}
	}
	p := e.index.Select(terms, neighbors, ttl, now)
	switch {
	case p.Selective:
		e.routeSelective.Inc()
	case p.Explored:
		e.routeExplore.Inc()
	default:
		e.routeFlood.Inc()
	}
	return p
}

// Stats is the merged snapshot served by the /cache admin route and the
// shell's cache command.
type Stats struct {
	Enabled bool       `json:"enabled"`
	Cache   CacheStats `json:"cache"`
	Terms   int        `json:"terms"`
	// Routing decision counters.
	Selective uint64 `json:"selective"`
	Flood     uint64 `json:"flood"`
	Explored  uint64 `json:"explored"`
}

// Stats snapshots the engine; a nil engine reports Enabled=false.
func (e *Engine) Stats() Stats {
	if e == nil {
		return Stats{}
	}
	return Stats{
		Enabled:   true,
		Cache:     e.cache.Stats(),
		Terms:     e.index.Terms(),
		Selective: e.routeSelective.Value(),
		Flood:     e.routeFlood.Value(),
		Explored:  e.routeExplore.Value(),
	}
}
