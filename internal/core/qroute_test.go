package core

import (
	"fmt"
	"testing"
	"time"

	"bestpeer/internal/agent"
	"bestpeer/internal/qroute"
	"bestpeer/internal/storm"
	"bestpeer/internal/topology"
)

// qrEnabled turns the qroute subsystem on for node i with deterministic
// routing (no ε-exploration) and a low confidence floor so single-answer
// histories already count.
func qrEnabled(on ...int) func(i int, cfg *Config) {
	set := make(map[int]bool, len(on))
	for _, i := range on {
		set[i] = true
	}
	return func(i int, cfg *Config) {
		if set[i] {
			cfg.QRoute = qroute.Options{
				Enable: true,
				Route:  qroute.RouteOptions{Epsilon: -1, MinScore: 0.5, TopF: 1},
			}
		}
	}
}

func TestBaseCacheHitSkipsFanOut(t *testing.T) {
	c := newCluster(t, 3, qrEnabled(0), func(i int, s *storm.Store) {
		s.Put(&storm.Object{
			Name:     fmt.Sprintf("music-%d", i),
			Keywords: []string{"music"},
			Data:     []byte{byte(i)},
		})
	})
	c.wire(topology.Star(3))
	opts := QueryOptions{Timeout: 2 * time.Second, WaitAnswers: 3, NoReconfigure: true}

	res1, err := c.nodes[0].Query(&agent.KeywordAgent{Query: "music"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Cached || len(res1.Answers) != 3 {
		t.Fatalf("first query must miss and collect 3 answers, got cached=%v n=%d",
			res1.Cached, len(res1.Answers))
	}
	peerExecs := c.nodes[1].Stats().AgentsExecuted + c.nodes[2].Stats().AgentsExecuted

	// Identical fingerprint (case-insensitively): whole query served from
	// the base cache, no agents spawned anywhere.
	res2, err := c.nodes[0].Query(&agent.KeywordAgent{Query: "MUSIC"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Cached || len(res2.Answers) != 3 {
		t.Fatalf("second query must hit, got cached=%v n=%d", res2.Cached, len(res2.Answers))
	}
	for _, a := range res2.Answers {
		if !a.Cached {
			t.Fatalf("cached answer must carry provenance: %+v", a)
		}
	}
	if got := c.nodes[1].Stats().AgentsExecuted + c.nodes[2].Stats().AgentsExecuted; got != peerExecs {
		t.Fatalf("cache hit must not reach peers: execs %d -> %d", peerExecs, got)
	}
	if s := c.nodes[0].CacheStats(); !s.Enabled || s.Cache.Hits != 1 {
		t.Fatalf("base cache stats = %+v, want one hit", s)
	}
}

func TestStoreMutationInvalidatesBaseCache(t *testing.T) {
	c := newCluster(t, 2, qrEnabled(0), nil)
	c.wire(topology.Star(2))
	opts := QueryOptions{Timeout: time.Second, WaitAnswers: 1, NoReconfigure: true}

	if _, err := c.nodes[0].Query(&agent.KeywordAgent{Query: "kw0"}, opts); err != nil {
		t.Fatal(err)
	}
	// A local write retires every cached answer via the mutation hook.
	if _, err := c.nodes[0].Store().Put(&storm.Object{
		Name: "fresh", Keywords: []string{"kw0"},
	}); err != nil {
		t.Fatal(err)
	}
	res, err := c.nodes[0].Query(&agent.KeywordAgent{Query: "kw0"},
		QueryOptions{Timeout: time.Second, WaitAnswers: 2, NoReconfigure: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Fatal("query after a store mutation must not be served from cache")
	}
	if !collectNames(res.Answers)["fresh"] {
		t.Fatalf("post-mutation query must see the new object: %v", collectNames(res.Answers))
	}
	if s := c.nodes[0].CacheStats(); s.Cache.Epoch == 0 {
		t.Fatalf("mutation must bump the epoch: %+v", s)
	}
}

func TestNegativeCacheServesRepeatMisses(t *testing.T) {
	c := newCluster(t, 2, qrEnabled(0), nil)
	c.wire(topology.Star(2))
	opts := QueryOptions{Timeout: 250 * time.Millisecond, NoReconfigure: true}

	if res, err := c.nodes[0].Query(&agent.KeywordAgent{Query: "nothing-has-this"}, opts); err != nil {
		t.Fatal(err)
	} else if res.Cached || len(res.Answers) != 0 {
		t.Fatalf("first no-match query: %+v", res)
	}
	res, err := c.nodes[0].Query(&agent.KeywordAgent{Query: "nothing-has-this"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached || len(res.Answers) != 0 {
		t.Fatalf("repeat no-match must hit the negative entry: %+v", res)
	}
	if s := c.nodes[0].CacheStats(); s.Cache.NegativeHits != 1 {
		t.Fatalf("stats = %+v, want one negative hit", s)
	}
}

func TestServeSiteCacheSkipsRepeatScans(t *testing.T) {
	// qroute is enabled only on the serving peer: the base floods every
	// time, but the peer's second scan is skipped and its answer arrives
	// flagged as cached.
	c := newCluster(t, 2, qrEnabled(1), func(i int, s *storm.Store) {
		if i == 1 {
			s.Put(&storm.Object{Name: "remote-obj", Keywords: []string{"remote"}})
		}
	})
	c.wire(topology.Star(2))
	opts := QueryOptions{Timeout: 2 * time.Second, WaitAnswers: 1, NoReconfigure: true}

	res1, err := c.nodes[0].Query(&agent.KeywordAgent{Query: "remote"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Answers) != 1 || res1.Answers[0].Cached {
		t.Fatalf("first round must be a fresh scan: %+v", res1.Answers)
	}
	res2, err := c.nodes[0].Query(&agent.KeywordAgent{Query: "remote"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Answers) != 1 || !res2.Answers[0].Cached {
		t.Fatalf("second round must be served from the peer's cache: %+v", res2.Answers)
	}
	if got := c.nodes[1].Stats().AgentsExecuted; got != 1 {
		t.Fatalf("peer executed %d agents, want 1 (second was a serve hit)", got)
	}

	// A mutation at the peer retires its serve-site entry: the next query
	// is a fresh scan again and sees the new object.
	if _, err := c.nodes[1].Store().Put(&storm.Object{
		Name: "remote-obj-2", Keywords: []string{"remote"},
	}); err != nil {
		t.Fatal(err)
	}
	res3, err := c.nodes[0].Query(&agent.KeywordAgent{Query: "remote"},
		QueryOptions{Timeout: 2 * time.Second, WaitAnswers: 2, NoReconfigure: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res3.Answers) != 2 || res3.Answers[0].Cached {
		t.Fatalf("post-mutation round must re-scan: %+v", res3.Answers)
	}
	if got := c.nodes[1].Stats().AgentsExecuted; got != 2 {
		t.Fatalf("peer executed %d agents, want 2", got)
	}
}

func TestSelectiveRoutingLearnsProvider(t *testing.T) {
	// Star with the base at the hub; only node 3 holds the needle. After
	// one observed flood the index routes the repeat query to node 3
	// alone, so nodes 1 and 2 never see a second agent.
	c := newCluster(t, 4, qrEnabled(0), func(i int, s *storm.Store) {
		if i == 3 {
			s.Put(&storm.Object{Name: "the-needle", Keywords: []string{"needle"}})
		}
	})
	c.wire(topology.Star(4))
	opts := QueryOptions{Timeout: 2 * time.Second, WaitAnswers: 1, NoReconfigure: true}

	if _, err := c.nodes[0].Query(&agent.KeywordAgent{Query: "needle"}, opts); err != nil {
		t.Fatal(err)
	}
	idleExecs := c.nodes[1].Stats().AgentsExecuted + c.nodes[2].Stats().AgentsExecuted

	// Bump the base's epoch so the repeat query misses the answer cache
	// and exercises the routing plan instead.
	if _, err := c.nodes[0].Store().Put(&storm.Object{Name: "unrelated"}); err != nil {
		t.Fatal(err)
	}
	res, err := c.nodes[0].Query(&agent.KeywordAgent{Query: "needle"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached || len(res.Answers) != 1 || res.Answers[0].Result.Name != "the-needle" {
		t.Fatalf("selective query must still find the needle: %+v", res)
	}
	if got := c.nodes[1].Stats().AgentsExecuted + c.nodes[2].Stats().AgentsExecuted; got != idleExecs {
		t.Fatalf("selective route must skip idle peers: execs %d -> %d", idleExecs, got)
	}
	if s := c.nodes[0].CacheStats(); s.Selective != 1 {
		t.Fatalf("stats = %+v, want one selective route", s)
	}
}
