package vet

import (
	"go/ast"
	"go/types"
)

// nakedgo flags go statements whose spawned function lacks a deferred
// recover. The hardened message path contains handler panics to the
// envelope that caused them (DESIGN.md §5); this rule extends the same
// discipline to every goroutine: one panicking task must never take the
// whole process down.
//
// Accepted containment shapes:
//
//	go func() { defer func() { recover() ... }(); ... }()
//	go worker()   // where worker's body defers a recover, or defers a
//	              // call to a same-package function that calls recover
//
// Goroutines whose target cannot be resolved within the package are
// flagged too — containment that cannot be verified is containment that
// the next refactor silently loses.
type nakedgo struct{}

func (nakedgo) Name() string { return "nakedgo" }
func (nakedgo) Doc() string {
	return "go statement spawning a function without a deferred recover (panic containment)"
}

func (nakedgo) Run(p *Pass) {
	decls := packageFuncDecls(p)
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			switch fun := g.Call.Fun.(type) {
			case *ast.FuncLit:
				if !hasDeferredRecover(p, decls, fun.Body) {
					p.Reportf(g.Pos(), "goroutine body has no deferred recover; contain panics before spawning")
				}
			default:
				decl := resolveFuncDecl(p, decls, g.Call.Fun)
				if decl == nil {
					p.Reportf(g.Pos(), "cannot verify panic containment of %s: spawn a func literal with a deferred recover", types.ExprString(fun))
				} else if !hasDeferredRecover(p, decls, decl.Body) {
					p.Reportf(g.Pos(), "goroutine %s has no deferred recover; contain panics before spawning", decl.Name.Name)
				}
			}
			return true
		})
	}
}

// packageFuncDecls maps every function object declared in the package to
// its declaration.
func packageFuncDecls(p *Pass) map[*types.Func]*ast.FuncDecl {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range p.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				decls[obj] = fd
			}
		}
	}
	return decls
}

// resolveFuncDecl resolves a call target to a same-package declaration.
func resolveFuncDecl(p *Pass, decls map[*types.Func]*ast.FuncDecl, fun ast.Expr) *ast.FuncDecl {
	var id *ast.Ident
	switch f := fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	obj, ok := p.Info.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	return decls[obj]
}

// hasDeferredRecover reports whether body defers a recover, either as a
// func literal calling recover or as a call to a same-package function
// whose body calls recover directly.
func hasDeferredRecover(p *Pass, decls map[*types.Func]*ast.FuncDecl, body ast.Node) bool {
	found := false
	inspectSameFunc(body, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok || found {
			return !found
		}
		switch fun := d.Call.Fun.(type) {
		case *ast.FuncLit:
			if containsRecover(p.Info, fun.Body) {
				found = true
			}
		default:
			if decl := resolveFuncDecl(p, decls, d.Call.Fun); decl != nil && containsRecover(p.Info, decl.Body) {
				found = true
			}
		}
		return !found
	})
	return found
}
