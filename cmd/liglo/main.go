// Command liglo runs a Location-Independent Global Names Lookup server.
// Peers register with it to obtain a BPID, report their address on every
// reconnect, and resolve each other's current addresses. Any number of
// liglo servers can serve one BestPeer network.
//
// Usage:
//
//	liglo [-addr host:port] [-capacity N] [-peers N] [-probe 30s]
//	      [-ring] [-join host:port] [-succ N]
//	      [-admin 127.0.0.1:9091] [-log-level info]
//
// With -ring the server becomes one member of a Chord ring of LIGLO
// servers that partitions BPID resolution by key ownership: -join
// attaches to an existing member (empty creates a fresh ring) and -succ
// sets the successor-list length, which is also the replication factor
// for member records. Clients follow ring-redirect replies
// transparently.
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bestpeer/internal/liglo"
	"bestpeer/internal/obs"
	"bestpeer/internal/transport"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7100", "address to listen on")
	capacity := flag.Int("capacity", 0, "maximum members (0 = unlimited)")
	peers := flag.Int("peers", 5, "initial direct peers handed to a new registrant")
	probe := flag.Duration("probe", 30*time.Second, "liveness validation interval (0 disables)")
	ring := flag.Bool("ring", false, "join a Chord ring of LIGLO servers partitioning BPID resolution")
	join := flag.String("join", "", "existing ring member to attach to (requires -ring; empty creates a fresh ring)")
	succ := flag.Int("succ", 0, "ring successor-list length / record replication factor (0 = chord default)")
	admin := flag.String("admin", "", "serve the admin endpoint (/metrics, /healthz, /events, pprof) on this address; ':port' binds loopback only; empty disables")
	logLevel := flag.String("log-level", "", "mirror member-liveness events to stderr at this level: debug, info, warn, error; empty disables")
	flag.Parse()
	if *join != "" && !*ring {
		log.Fatalf("liglo: -join requires -ring")
	}

	logger, err := newLogger(*logLevel)
	if err != nil {
		log.Fatalf("liglo: %v", err)
	}
	reg := obs.NewRegistry()
	journal := obs.NewJournal(*addr, 0)
	if logger != nil {
		journal.SetLogger(logger)
	}

	cfg := liglo.ServerConfig{
		Capacity:      *capacity,
		InitialPeers:  *peers,
		ProbeInterval: *probe,
		Metrics:       reg,
		Journal:       journal,
	}
	if *ring {
		cfg.Ring = &liglo.RingConfig{Join: *join, Successors: *succ}
	}
	srv, err := liglo.NewServer(transport.TCP{}, *addr, cfg)
	if err != nil {
		log.Fatalf("liglo: %v", err)
	}
	log.Printf("liglo: serving on %s (capacity=%d, initial peers=%d)",
		srv.Addr(), *capacity, *peers)
	if rn := srv.Ring(); rn != nil {
		if *join == "" {
			log.Printf("liglo: created ring at key %d", rn.Snapshot().Self.Key)
		} else {
			log.Printf("liglo: joined ring via %s at key %d", *join, rn.Snapshot().Self.Key)
		}
	}
	journal.SetNode(srv.Addr())

	if *admin != "" {
		asrv, err := obs.StartAdmin(*admin, obs.AdminConfig{
			Registry: reg,
			Journal:  journal,
			Health: func() any {
				h := map[string]any{"status": "ok", "addr": srv.Addr(), "members": srv.Members()}
				if rn := srv.Ring(); rn != nil {
					h["ring"] = rn.Snapshot()
					h["foreign_records"] = srv.ForeignRecords()
				}
				return h
			},
		})
		if err != nil {
			log.Fatalf("liglo: admin endpoint: %v", err)
		}
		log.Printf("liglo: admin endpoint on http://%s/metrics", asrv.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("liglo: shutting down with %d members", srv.Members())
	if srv.Ring() != nil {
		// Graceful exit from the ring: replicate the record set and
		// hand the arc to the successor before going dark.
		if err := srv.Leave(); err != nil {
			log.Fatalf("liglo: leave: %v", err)
		}
		return
	}
	if err := srv.Close(); err != nil {
		log.Fatalf("liglo: close: %v", err)
	}
}

// newLogger maps the -log-level flag to a stderr slog handler; the
// journal mirrors every member-liveness event through it. Empty means
// silent.
func newLogger(level string) (*slog.Logger, error) {
	if level == "" {
		return nil, nil
	}
	var lvl slog.Level
	switch level {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn or error)", level)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})), nil
}
