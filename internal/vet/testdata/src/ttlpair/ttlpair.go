// Package ttlpair is a bpvet golden-test fixture.
package ttlpair

type envelope struct {
	TTL  uint8
	Hops uint8
}

type plain struct {
	TTL uint8
}

func badDecrement(e *envelope) {
	e.TTL-- // want `TTL decremented but Hops never updated or checked`
}

func badSubAssign(e *envelope) {
	e.TTL -= 1 // want `TTL decremented but Hops never updated or checked`
}

func badExplicit(e *envelope) {
	e.TTL = e.TTL - 1 // want `TTL decremented but Hops never updated or checked`
}

func goodPaired(e *envelope) {
	e.TTL--
	e.Hops++
}

func goodChecked(e *envelope) bool {
	if e.Hops > 7 {
		return false
	}
	e.TTL--
	return true
}

// No Hops field on the struct: the paired-counter rule does not apply.
func goodUnpaired(p *plain) {
	p.TTL--
}

// Construction is not forwarding.
func goodConstruct() envelope {
	return envelope{TTL: 7}
}
