package netsim

import (
	"fmt"
	"time"

	"bestpeer/internal/wire"
)

// Link describes the directed connectivity between two hosts: propagation
// latency plus a transmission rate. Transfer time for a message of n bytes
// is n/Bandwidth on the sender's uplink and again on the receiver's
// downlink (store-and-forward), plus Latency in between.
type Link struct {
	Latency   time.Duration
	Bandwidth float64 // bytes per second; <=0 means infinite
}

// TransferTime returns the serialization delay for n bytes at this link's
// bandwidth.
func (l Link) TransferTime(n int) time.Duration {
	if l.Bandwidth <= 0 || n <= 0 {
		return 0
	}
	return time.Duration(float64(n) / l.Bandwidth * float64(time.Second))
}

// HostConfig configures a simulated host.
type HostConfig struct {
	// Threads is the number of CPU workers. A single-threaded
	// client/server node sets 1; multi-threaded hosts set more. Zero
	// defaults to 1.
	Threads int
}

// Handler receives a message delivered to a host.
type Handler func(env *wire.Envelope)

// Host is one machine in the simulated network.
type Host struct {
	net  *Network
	addr string

	cpu      *Resource
	uplink   *Resource
	downlink *Resource
	handler  Handler

	// Stats.
	MsgsSent  uint64
	MsgsRecvd uint64
	BytesSent uint64
	BytesRecv uint64
}

// Addr returns the host's network address.
func (h *Host) Addr() string { return h.addr }

// SetHandler installs the function invoked for each delivered message.
func (h *Host) SetHandler(fn Handler) { h.handler = fn }

// Exec charges d of CPU time on this host's thread pool and then runs fn.
// Work queues FIFO when all threads are busy.
func (h *Host) Exec(d time.Duration, fn func()) { h.cpu.Submit(d, fn) }

// CPU exposes the host's CPU resource (for utilization reporting).
func (h *Host) CPU() *Resource { return h.cpu }

// Network owns the hosts and links of a simulation.
type Network struct {
	sim         *Sim
	hosts       map[string]*Host
	defaultLink Link
	links       map[[2]string]Link

	// medium, when set, models a shared segment (a 1990s Ethernet hub):
	// every transfer in the network serializes through this single
	// resource at the default link's bandwidth, instead of per-host
	// uplinks/downlinks. Total bytes on the wire then directly determine
	// completion time — the regime the paper's testbed ran in.
	medium *Resource

	// Global stats. Sent counters increment at the moment of Send (the
	// scheme's traffic cost); delivered counters at handler dispatch.
	MsgsSent       uint64
	BytesSent      uint64
	MsgsDelivered  uint64
	BytesDelivered uint64
}

// UseSharedMedium switches the network to shared-segment transfer
// scheduling. Call before any Send.
func (n *Network) UseSharedMedium() {
	n.medium = NewResource(n.sim, 1)
}

// NewNetwork creates an empty network using sim as its clock. defaultLink
// applies to every host pair without an explicit override.
func NewNetwork(sim *Sim, defaultLink Link) *Network {
	return &Network{
		sim:         sim,
		hosts:       make(map[string]*Host),
		defaultLink: defaultLink,
		links:       make(map[[2]string]Link),
	}
}

// Sim returns the underlying engine.
func (n *Network) Sim() *Sim { return n.sim }

// AddHost creates a host with the given address. Duplicate addresses panic:
// the topology builder controls addresses, so a collision is a bug.
func (n *Network) AddHost(addr string, cfg HostConfig) *Host {
	if _, dup := n.hosts[addr]; dup {
		panic(fmt.Sprintf("netsim: duplicate host %q", addr))
	}
	threads := cfg.Threads
	if threads <= 0 {
		threads = 1
	}
	h := &Host{
		net:      n,
		addr:     addr,
		cpu:      NewResource(n.sim, threads),
		uplink:   NewResource(n.sim, 1),
		downlink: NewResource(n.sim, 1),
	}
	n.hosts[addr] = h
	return h
}

// Host returns the host with the given address, or nil.
func (n *Network) Host(addr string) *Host { return n.hosts[addr] }

// Hosts returns the number of hosts.
func (n *Network) Hosts() int { return len(n.hosts) }

// SetLink overrides the link used for messages from -> to.
func (n *Network) SetLink(from, to string, l Link) {
	n.links[[2]string{from, to}] = l
}

// linkFor returns the directed link between two hosts.
func (n *Network) linkFor(from, to string) Link {
	if l, ok := n.links[[2]string{from, to}]; ok {
		return l
	}
	return n.defaultLink
}

// Send transmits env from one host to another, charging uplink
// serialization, propagation latency and downlink serialization for size
// bytes. On delivery the destination's handler runs (the handler itself
// decides what CPU work to charge). Sending to an unknown host panics;
// sending from an unknown host panics.
//
// size <= 0 uses env.WireSize().
func (n *Network) Send(from, to string, env *wire.Envelope, size int) {
	src := n.hosts[from]
	dst := n.hosts[to]
	if src == nil {
		panic(fmt.Sprintf("netsim: send from unknown host %q", from))
	}
	if dst == nil {
		panic(fmt.Sprintf("netsim: send to unknown host %q", to))
	}
	if size <= 0 {
		size = env.WireSize()
	}
	link := n.linkFor(from, to)
	xfer := link.TransferTime(size)

	src.MsgsSent++
	src.BytesSent += uint64(size)
	n.MsgsSent++
	n.BytesSent += uint64(size)

	deliver := func() {
		dst.MsgsRecvd++
		dst.BytesRecv += uint64(size)
		n.MsgsDelivered++
		n.BytesDelivered += uint64(size)
		if dst.handler != nil {
			dst.handler(env)
		}
	}

	if n.medium != nil {
		// Shared segment: the whole network contends for one wire.
		n.medium.Submit(xfer, func() {
			n.sim.After(link.Latency, deliver)
		})
		return
	}

	// Uplink: occupy the sender's transmit queue for the serialization time.
	src.uplink.Submit(xfer, func() {
		// Propagation.
		n.sim.After(link.Latency, func() {
			// Downlink: occupy the receiver's queue for the same time.
			dst.downlink.Submit(xfer, deliver)
		})
	})
}
