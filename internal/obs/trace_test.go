package obs

import (
	"testing"

	"bestpeer/internal/wire"
)

func TestTracerRecordAndGet(t *testing.T) {
	tr := NewTracer(4)
	id := wire.NewMsgID()
	tr.Begin(id, "base:1")
	tr.Begin(id, "base:1") // idempotent

	if !tr.Record(id, wire.TraceSpan{Peer: "b:2", Parent: "base:1", Hop: 1}) {
		t.Fatal("record on live trace must succeed")
	}
	if tr.Record(wire.NewMsgID(), wire.TraceSpan{Peer: "x"}) {
		t.Fatal("record on unknown trace must be dropped")
	}

	got, ok := tr.Get(id)
	if !ok || len(got.Spans) != 1 || got.Base != "base:1" {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	// The returned trace is a copy: mutating it must not affect the tracer.
	got.Spans[0].Peer = "mutated"
	again, _ := tr.Get(id)
	if again.Spans[0].Peer != "b:2" {
		t.Fatal("Get must return a copy")
	}
}

func TestTracerEviction(t *testing.T) {
	tr := NewTracer(2)
	ids := []wire.MsgID{wire.NewMsgID(), wire.NewMsgID(), wire.NewMsgID()}
	for _, id := range ids {
		tr.Begin(id, "base")
	}
	if _, ok := tr.Get(ids[0]); ok {
		t.Fatal("oldest trace must be evicted at capacity")
	}
	if _, ok := tr.Get(ids[2]); !ok {
		t.Fatal("newest trace must survive")
	}
	recent := tr.Recent(0)
	if len(recent) != 2 || recent[0].ID != ids[2] || recent[1].ID != ids[1] {
		t.Fatalf("Recent order wrong: %+v", recent)
	}
}

func TestTraceTree(t *testing.T) {
	qt := &QueryTrace{Base: "a:1", Spans: []wire.TraceSpan{
		{Peer: "b:2", Parent: "a:1", Hop: 1, FanOut: 2},
		{Peer: "c:3", Parent: "b:2", Hop: 2},
		{Peer: "d:4", Parent: "b:2", Hop: 2},
		{Peer: "c:3", Parent: "d:4", Hop: 3, Drop: "duplicate"},
		{Peer: "e:5", Parent: "ghost:9", Hop: 2}, // parent never reported
	}}
	roots := qt.Tree()
	if len(roots) != 2 {
		t.Fatalf("roots = %d, want 2 (base child + orphan)", len(roots))
	}
	b := roots[0]
	if b.Span.Peer != "b:2" || len(b.Children) != 2 {
		t.Fatalf("b subtree wrong: %+v", b)
	}
	d := b.Children[1]
	if d.Span.Peer != "d:4" || len(d.Children) != 1 || d.Children[0].Span.Drop != "duplicate" {
		t.Fatalf("duplicate-drop span must hang under d:4: %+v", d)
	}
	if roots[1].Span.Peer != "e:5" {
		t.Fatalf("orphan must surface as root: %+v", roots[1])
	}
	if qt.MaxHop() != 3 {
		t.Fatalf("MaxHop = %d, want 3", qt.MaxHop())
	}
}

func TestTraceSpanCap(t *testing.T) {
	tr := NewTracer(1)
	id := wire.NewMsgID()
	tr.Begin(id, "base")
	for i := 0; i < maxSpansPerTrace; i++ {
		if !tr.Record(id, wire.TraceSpan{Peer: "p", Hop: 1}) {
			t.Fatalf("record %d rejected below cap", i)
		}
	}
	if tr.Record(id, wire.TraceSpan{Peer: "p", Hop: 1}) {
		t.Fatal("record past the span cap must be dropped")
	}
}
