package agent

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"bestpeer/internal/storm"
)

// ActiveNode is the paper's "active element": an executable black box that
// receives an object and the requester's access rights and produces the
// content the requester is allowed to see. The object's owner chooses
// which active node guards it.
type ActiveNode interface {
	// Name identifies the active node; storm.Object.ActiveClass refers
	// to it.
	Name() string
	// Render returns the content visible at the given access level.
	// ok=false denies access to the object entirely.
	Render(obj *storm.Object, accessLevel int) (data []byte, ok bool)
}

// ActiveSet is a node's collection of active nodes. Safe for concurrent
// use.
type ActiveSet struct {
	mu    sync.RWMutex
	nodes map[string]ActiveNode
}

// NewActiveSet returns an empty set.
func NewActiveSet() *ActiveSet {
	return &ActiveSet{nodes: make(map[string]ActiveNode)}
}

// Add registers an active node, replacing any previous one with the same
// name.
func (s *ActiveSet) Add(n ActiveNode) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nodes[n.Name()] = n
}

// Get returns the named active node.
func (s *ActiveSet) Get(name string) (ActiveNode, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, ok := s.nodes[name]
	return n, ok
}

// Names returns the sorted names of registered active nodes.
func (s *ActiveSet) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.nodes))
	for n := range s.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// RenderObject applies an object's active element, if any. Static objects
// pass through unchanged. Active objects whose active node is missing are
// denied — failing closed is the owner-safe default.
func (s *ActiveSet) RenderObject(obj *storm.Object, accessLevel int) ([]byte, bool) {
	if obj.Kind != storm.ActiveObject {
		return obj.Data, true
	}
	if s == nil {
		return nil, false
	}
	n, ok := s.Get(obj.ActiveClass)
	if !ok {
		return nil, false
	}
	return n.Render(obj, accessLevel)
}

// LevelFilter is a built-in active node implementing line-granular access
// control. Object data is interpreted as lines; a line of the form
//
//	!N rest of line
//
// is visible only to requesters with access level >= N. Unmarked lines
// are public. MinLevel additionally gates the whole object.
type LevelFilter struct {
	// FilterName is the registered name; defaults to "level-filter".
	FilterName string
	// MinLevel is the clearance required to see the object at all.
	MinLevel int
}

// Name implements ActiveNode.
func (f *LevelFilter) Name() string {
	if f.FilterName == "" {
		return "level-filter"
	}
	return f.FilterName
}

// Render implements ActiveNode: it strips lines above the requester's
// level and removes the level markers from visible lines.
func (f *LevelFilter) Render(obj *storm.Object, accessLevel int) ([]byte, bool) {
	if accessLevel < f.MinLevel {
		return nil, false
	}
	var out bytes.Buffer
	for _, line := range bytes.Split(obj.Data, []byte("\n")) {
		level, rest := parseLevelMarker(line)
		if level > accessLevel {
			continue
		}
		if out.Len() > 0 {
			out.WriteByte('\n')
		}
		_, _ = out.Write(rest) // bytes.Buffer writes cannot fail
	}
	return out.Bytes(), true
}

// parseLevelMarker splits "!N content" into (N, content). Lines without a
// marker return level 0 and the line unchanged.
func parseLevelMarker(line []byte) (int, []byte) {
	if len(line) < 2 || line[0] != '!' {
		return 0, line
	}
	i := 1
	for i < len(line) && line[i] >= '0' && line[i] <= '9' {
		i++
	}
	if i == 1 {
		return 0, line
	}
	level, err := strconv.Atoi(string(line[1:i]))
	if err != nil {
		return 0, line
	}
	rest := line[i:]
	if len(rest) > 0 && rest[0] == ' ' {
		rest = rest[1:]
	}
	return level, rest
}

// MarkLine formats a line for LevelFilter-guarded objects.
func MarkLine(level int, content string) string {
	if level <= 0 {
		return content
	}
	return fmt.Sprintf("!%d %s", level, content)
}
