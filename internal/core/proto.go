package core

import (
	"errors"
	"fmt"

	"bestpeer/internal/wire"
)

// ErrBadMessage reports a malformed core-protocol payload.
var ErrBadMessage = errors.New("core: malformed message")

// classWant asks the previous hop for an agent class the receiver lacks.
type classWant struct {
	Class string
}

// classShip carries a class payload to a node that requested it.
type classShip struct {
	Class string
	Code  []byte
}

// fetchReq is the mode-2 follow-up: after receiving hints, the base node
// asks an answering peer for the actual content of named objects.
type fetchReq struct {
	// Names are the objects to retrieve.
	Names []string
	// Base is where to send the data.
	Base string
	// BaseID identifies the requester for access control.
	BaseID wire.BPID
	// AccessLevel is the requester's clearance.
	AccessLevel int
}

// departVersion is the Depart payload version this build emits. The
// payload leads with the version so it can grow fields without a new
// message kind: decoders accept any version, tolerating trailing bytes
// from newer senders and taking just the fields they understand.
const departVersion = 1

// maxDepartHints caps how many replacement-neighbor hints a Depart
// carries — the departing node's other direct peers, offered so the
// receiver can backfill the lost edge without a LIGLO round trip.
const maxDepartHints = 4

// departMsg is a graceful-leave announcement to a direct peer.
type departMsg struct {
	Version uint64
	// ID is the departing node's identity (zero when it never joined).
	ID wire.BPID
	// Hints are replacement-neighbor candidates: the departing node's
	// other direct peers, excluding the recipient.
	Hints []Peer
}

func encodeDepart(m *departMsg) []byte {
	var e wire.Encoder
	e.Uvarint(m.Version)
	e.BPID(m.ID)
	e.Uvarint(uint64(len(m.Hints)))
	for _, p := range m.Hints {
		e.BPID(p.ID)
		e.String(p.Addr)
	}
	return e.Bytes()
}

func decodeDepart(b []byte) (*departMsg, error) {
	d := wire.NewDecoder(b)
	m := &departMsg{Version: d.Uvarint()}
	m.ID = d.BPID()
	n := d.Uvarint()
	if n > uint64(wire.MaxFrameSize) {
		return nil, fmt.Errorf("%w: depart", ErrBadMessage)
	}
	for i := uint64(0); i < n; i++ {
		m.Hints = append(m.Hints, Peer{ID: d.BPID(), Addr: d.String()})
	}
	if m.Version > departVersion {
		// Newer sender: unknown fields may trail the ones we understand.
		if err := d.Err(); err != nil {
			return nil, fmt.Errorf("%w: depart: %v", ErrBadMessage, err)
		}
		return m, nil
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: depart: %v", ErrBadMessage, err)
	}
	return m, nil
}

// peerListResp carries a node's current direct peers — the
// neighbor-of-neighbor candidates the repair loop backfills from before
// falling back to LIGLO. The request (KindPeerList) has an empty body.
type peerListResp struct {
	Peers []Peer
}

func encodePeerListResp(r *peerListResp) []byte {
	var e wire.Encoder
	e.Uvarint(uint64(len(r.Peers)))
	for _, p := range r.Peers {
		e.BPID(p.ID)
		e.String(p.Addr)
	}
	return e.Bytes()
}

func decodePeerListResp(b []byte) (*peerListResp, error) {
	d := wire.NewDecoder(b)
	r := &peerListResp{}
	n := d.Uvarint()
	if n > uint64(wire.MaxFrameSize) {
		return nil, fmt.Errorf("%w: peer-list", ErrBadMessage)
	}
	for i := uint64(0); i < n; i++ {
		r.Peers = append(r.Peers, Peer{ID: d.BPID(), Addr: d.String()})
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: peer-list: %v", ErrBadMessage, err)
	}
	return r, nil
}

func encodeClassWant(w *classWant) []byte {
	var e wire.Encoder
	e.String(w.Class)
	return e.Bytes()
}

func decodeClassWant(b []byte) (*classWant, error) {
	d := wire.NewDecoder(b)
	w := &classWant{Class: d.String()}
	if err := d.Finish(); err != nil || w.Class == "" {
		return nil, fmt.Errorf("%w: class-want", ErrBadMessage)
	}
	return w, nil
}

func encodeClassShip(s *classShip) []byte {
	var e wire.Encoder
	e.String(s.Class)
	e.Bytes2(s.Code)
	return e.Bytes()
}

func decodeClassShip(b []byte) (*classShip, error) {
	d := wire.NewDecoder(b)
	s := &classShip{Class: d.String(), Code: d.Bytes2()}
	if err := d.Finish(); err != nil || s.Class == "" {
		return nil, fmt.Errorf("%w: class-ship", ErrBadMessage)
	}
	return s, nil
}

func encodeFetchReq(f *fetchReq) []byte {
	var e wire.Encoder
	e.Uvarint(uint64(len(f.Names)))
	for _, n := range f.Names {
		e.String(n)
	}
	e.String(f.Base)
	e.BPID(f.BaseID)
	e.Varint(int64(f.AccessLevel))
	return e.Bytes()
}

func decodeFetchReq(b []byte) (*fetchReq, error) {
	d := wire.NewDecoder(b)
	n := d.Uvarint()
	if n > uint64(wire.MaxFrameSize) {
		return nil, fmt.Errorf("%w: fetch", ErrBadMessage)
	}
	f := &fetchReq{}
	for i := uint64(0); i < n; i++ {
		f.Names = append(f.Names, d.String())
	}
	f.Base = d.String()
	f.BaseID = d.BPID()
	f.AccessLevel = int(d.Varint())
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: fetch: %v", ErrBadMessage, err)
	}
	return f, nil
}
