// Package storm is a persistent object storage manager, the Go substitute
// for StorM, the "100% Java persistent storage manager" each BestPeer node
// in the paper runs. It provides slotted heap pages on a single data file,
// a buffer pool with extensible replacement strategies (StorM's published
// contribution), and an object store with keyword scans that mobile agents
// query through a stable API.
package storm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// PageSize is the fixed size of every page on disk.
const PageSize = 4096

// PageID identifies a page within the data file. Page 0 is the file
// header; data pages start at 1.
type PageID uint32

// InvalidPage is the zero PageID, never used for data.
const InvalidPage PageID = 0

// Slot numbers records within a page.
type Slot uint16

// Page layout:
//
//	offset 0:  uint32 checksum (CRC-32 of bytes 4..PageSize)
//	offset 4:  uint32 page id
//	offset 8:  uint16 slot count
//	offset 10: uint16 free-space pointer (start of unused region)
//	offset 12: uint8  page type (slotted data page or B+tree node)
//	offset 13: record data grows upward from here
//	...        slot directory grows downward from PageSize
//
// Each slot directory entry is 4 bytes: uint16 offset, uint16 length.
// A deleted slot has offset == 0 (record space is not reclaimed until
// compaction).
const (
	pageHeaderSize = 13
	slotEntrySize  = 4
)

// Page types stored at offset 12. The data file interleaves heap pages
// and catalog B+tree nodes; the type byte lets the catalog rebuild skip
// non-heap pages.
const (
	pageTypeBTreeLeaf     = 1
	pageTypeBTreeInternal = 2
	pageTypeSlotted       = 3
)

// Page errors.
var (
	ErrPageFull     = errors.New("storm: page full")
	ErrBadSlot      = errors.New("storm: invalid slot")
	ErrRecordTooBig = errors.New("storm: record exceeds page capacity")
	ErrChecksum     = errors.New("storm: page checksum mismatch")
)

// MaxRecordSize is the largest record a single page can hold.
const MaxRecordSize = PageSize - pageHeaderSize - slotEntrySize

// Page is an in-memory image of one disk page.
type Page struct {
	buf [PageSize]byte
}

// InitPage formats the buffer as an empty slotted page with the given id.
func (p *Page) Init(id PageID) {
	for i := range p.buf {
		p.buf[i] = 0
	}
	binary.BigEndian.PutUint32(p.buf[4:8], uint32(id))
	binary.BigEndian.PutUint16(p.buf[8:10], 0)
	binary.BigEndian.PutUint16(p.buf[10:12], pageHeaderSize)
	p.buf[12] = pageTypeSlotted
}

// Type returns the page-type byte.
func (p *Page) Type() uint8 { return p.buf[12] }

// ID returns the page id stored in the header.
func (p *Page) ID() PageID {
	return PageID(binary.BigEndian.Uint32(p.buf[4:8]))
}

// SlotCount returns the number of slot directory entries (including
// deleted ones).
func (p *Page) SlotCount() int {
	return int(binary.BigEndian.Uint16(p.buf[8:10]))
}

func (p *Page) freePtr() int {
	return int(binary.BigEndian.Uint16(p.buf[10:12]))
}

func (p *Page) setFreePtr(v int) {
	binary.BigEndian.PutUint16(p.buf[10:12], uint16(v))
}

func (p *Page) setSlotCount(v int) {
	binary.BigEndian.PutUint16(p.buf[8:10], uint16(v))
}

// slotPos returns the byte offset of slot s's directory entry.
func slotPos(s Slot) int { return PageSize - (int(s)+1)*slotEntrySize }

func (p *Page) slotEntry(s Slot) (off, length int) {
	pos := slotPos(s)
	return int(binary.BigEndian.Uint16(p.buf[pos : pos+2])),
		int(binary.BigEndian.Uint16(p.buf[pos+2 : pos+4]))
}

func (p *Page) setSlotEntry(s Slot, off, length int) {
	pos := slotPos(s)
	binary.BigEndian.PutUint16(p.buf[pos:pos+2], uint16(off))
	binary.BigEndian.PutUint16(p.buf[pos+2:pos+4], uint16(length))
}

// FreeSpace returns the bytes available for a new record, accounting for
// the slot entry it would need.
func (p *Page) FreeSpace() int {
	free := PageSize - p.SlotCount()*slotEntrySize - p.freePtr() - slotEntrySize
	if free < 0 {
		return 0
	}
	return free
}

// AvailableSpace returns the bytes a new record could occupy after
// compaction: the contiguous free region plus tombstoned record space.
func (p *Page) AvailableSpace() int {
	avail := p.FreeSpace() + p.wasted()
	if avail < 0 {
		return 0
	}
	return avail
}

// Insert stores rec in the page and returns its slot. Deleted slots are
// reused for the directory entry but record bytes always come from the
// free region (compaction reclaims holes).
func (p *Page) Insert(rec []byte) (Slot, error) {
	if len(rec) > MaxRecordSize {
		return 0, ErrRecordTooBig
	}
	// Prefer a deleted slot's directory entry.
	slot := Slot(p.SlotCount())
	reused := false
	for s := Slot(0); int(s) < p.SlotCount(); s++ {
		if off, _ := p.slotEntry(s); off == 0 {
			slot = s
			reused = true
			break
		}
	}
	need := len(rec)
	if !reused {
		need += slotEntrySize
	}
	if PageSize-p.SlotCount()*slotEntrySize-p.freePtr() < need {
		if p.wasted() >= len(rec) {
			p.compact()
		}
		if PageSize-p.SlotCount()*slotEntrySize-p.freePtr() < need {
			return 0, ErrPageFull
		}
	}
	off := p.freePtr()
	copy(p.buf[off:], rec)
	p.setFreePtr(off + len(rec))
	if !reused {
		p.setSlotCount(p.SlotCount() + 1)
	}
	p.setSlotEntry(slot, off, len(rec))
	return slot, nil
}

// Get returns the record stored at slot s. The returned slice aliases the
// page buffer; callers must copy if they retain it past unpin.
func (p *Page) Get(s Slot) ([]byte, error) {
	if int(s) >= p.SlotCount() {
		return nil, ErrBadSlot
	}
	off, length := p.slotEntry(s)
	if off == 0 {
		return nil, ErrBadSlot
	}
	return p.buf[off : off+length], nil
}

// Delete removes the record at slot s. The directory entry is tombstoned;
// record bytes are reclaimed by compaction on demand.
func (p *Page) Delete(s Slot) error {
	if int(s) >= p.SlotCount() {
		return ErrBadSlot
	}
	if off, _ := p.slotEntry(s); off == 0 {
		return ErrBadSlot
	}
	p.setSlotEntry(s, 0, 0)
	return nil
}

// Update replaces the record at slot s. If the new record fits in the old
// space it is updated in place; otherwise the old space is tombstoned and
// the record reinserted under the same slot.
func (p *Page) Update(s Slot, rec []byte) error {
	if int(s) >= p.SlotCount() {
		return ErrBadSlot
	}
	off, length := p.slotEntry(s)
	if off == 0 {
		return ErrBadSlot
	}
	if len(rec) <= length {
		copy(p.buf[off:], rec)
		p.setSlotEntry(s, off, len(rec))
		return nil
	}
	if len(rec) > MaxRecordSize {
		return ErrRecordTooBig
	}
	// Need fresh space.
	if PageSize-p.SlotCount()*slotEntrySize-p.freePtr() < len(rec) {
		p.setSlotEntry(s, 0, 0)
		if p.wasted() >= len(rec) {
			p.compact()
		}
		if PageSize-p.SlotCount()*slotEntrySize-p.freePtr() < len(rec) {
			// Restore the original entry so the failed update is atomic.
			p.setSlotEntry(s, off, length)
			return ErrPageFull
		}
	}
	noff := p.freePtr()
	copy(p.buf[noff:], rec)
	p.setFreePtr(noff + len(rec))
	p.setSlotEntry(s, noff, len(rec))
	return nil
}

// wasted returns bytes occupied by tombstoned records.
func (p *Page) wasted() int {
	used := 0
	for s := Slot(0); int(s) < p.SlotCount(); s++ {
		if off, length := p.slotEntry(s); off != 0 {
			used += length
		}
	}
	return p.freePtr() - pageHeaderSize - used
}

// compact rewrites live records contiguously, reclaiming tombstoned space.
func (p *Page) compact() {
	var tmp [PageSize]byte
	w := pageHeaderSize
	for s := Slot(0); int(s) < p.SlotCount(); s++ {
		off, length := p.slotEntry(s)
		if off == 0 {
			continue
		}
		copy(tmp[w:], p.buf[off:off+length])
		p.setSlotEntry(s, w, length)
		w += length
	}
	copy(p.buf[pageHeaderSize:w], tmp[pageHeaderSize:w])
	p.setFreePtr(w)
}

// Records calls fn for every live record in the page. fn must not retain
// the slice. Iteration stops if fn returns false.
func (p *Page) Records(fn func(s Slot, rec []byte) bool) {
	for s := Slot(0); int(s) < p.SlotCount(); s++ {
		off, length := p.slotEntry(s)
		if off == 0 {
			continue
		}
		if !fn(s, p.buf[off:off+length]) {
			return
		}
	}
}

// LiveRecords returns the number of non-deleted records.
func (p *Page) LiveRecords() int {
	n := 0
	p.Records(func(Slot, []byte) bool { n++; return true })
	return n
}

// seal computes and stores the page checksum before the page is written
// to disk.
func (p *Page) seal() {
	sum := crc32.ChecksumIEEE(p.buf[4:])
	binary.BigEndian.PutUint32(p.buf[0:4], sum)
}

// verify checks the stored checksum after a page is read from disk.
func (p *Page) verify(want PageID) error {
	sum := crc32.ChecksumIEEE(p.buf[4:])
	if stored := binary.BigEndian.Uint32(p.buf[0:4]); stored != sum {
		return fmt.Errorf("%w: page %d", ErrChecksum, want)
	}
	if p.ID() != want {
		return fmt.Errorf("storm: page id mismatch: read %d, want %d", p.ID(), want)
	}
	return nil
}
