package wire

import (
	"bytes"
	"testing"
)

// FuzzDecodeEnvelope: arbitrary bytes must never panic or allocate
// unboundedly, and every successfully decoded envelope must re-encode.
func FuzzDecodeEnvelope(f *testing.F) {
	good, _ := EncodeEnvelope(&Envelope{
		Kind: KindAgent, ID: NewMsgID(), TTL: 7, Hops: 1,
		From: "a:1", To: "b:2", Body: []byte("payload"),
	})
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 0})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := DecodeEnvelope(data)
		if err != nil {
			return
		}
		re, err := EncodeEnvelope(env)
		if err != nil {
			t.Fatalf("decoded envelope failed to re-encode: %v", err)
		}
		back, err := DecodeEnvelope(re)
		if err != nil {
			t.Fatalf("re-encoded envelope failed to decode: %v", err)
		}
		if back.Kind != env.Kind || back.ID != env.ID || !bytes.Equal(back.Body, env.Body) {
			t.Fatal("re-encode round trip changed the envelope")
		}
	})
}

// FuzzDecoder: the payload decoder must survive arbitrary inputs.
func FuzzDecoder(f *testing.F) {
	var e Encoder
	e.String("s")
	e.Uvarint(7)
	e.Bytes2([]byte{1, 2})
	f.Add(e.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		_ = d.String()
		_ = d.Uvarint()
		_ = d.Bytes2()
		_ = d.BPID()
		_ = d.Float64()
		_ = d.Finish()
	})
}
