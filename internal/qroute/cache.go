// Package qroute is BestPeer's traffic-reduction subsystem: a bounded,
// epoch-versioned answer cache plus a learned selective-routing index.
// Both feed off signals the query path already produces — answer batches
// and store mutations — and both fail safe: a cache miss or a
// low-confidence route falls back to the plain flood the paper
// describes, so recall never depends on qroute being right.
package qroute

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"
)

// CacheOptions bounds and tunes an answer cache. Zero values pick the
// documented defaults.
type CacheOptions struct {
	// MaxEntries bounds the number of cached fingerprints. Default 256.
	MaxEntries int
	// MaxBytes bounds the accounted payload size. Default 4 MiB.
	MaxBytes int
	// TTL bounds how long a positive entry stays fresh. The epoch hook
	// invalidates local staleness immediately; the TTL bounds staleness
	// of *remote* answers, which no local epoch can see. Default 30s.
	TTL time.Duration
	// NegTTL is the short freshness bound for negative entries (a query
	// that matched nothing). Default 2s.
	NegTTL time.Duration
}

func (o CacheOptions) withDefaults() CacheOptions {
	if o.MaxEntries <= 0 {
		o.MaxEntries = 256
	}
	if o.MaxBytes <= 0 {
		o.MaxBytes = 4 << 20
	}
	if o.TTL <= 0 {
		o.TTL = 30 * time.Second
	}
	if o.NegTTL <= 0 {
		o.NegTTL = 2 * time.Second
	}
	return o
}

// Cache is a bounded LRU answer cache versioned by a store-mutation
// epoch. Entries are tagged with the epoch observed *before* their value
// was computed; BumpEpoch (wired to storm.Store.OnMutation) makes every
// older entry unservable, so a cached answer can never reflect a store
// state older than the last committed mutation. Safe for concurrent use.
type Cache struct {
	epoch atomic.Uint64

	mu      sync.Mutex
	opt     CacheOptions
	entries map[string]*list.Element
	lru     *list.List // front = most recently used
	bytes   int

	// Counters, guarded by mu; surfaced by Stats.
	hits, negHits, misses          uint64
	insertions, evictions, expired uint64
	invalidated, forgotten         uint64
}

type entry struct {
	key      string
	val      any
	size     int
	negative bool
	epoch    uint64
	at       time.Time
	// sites are the addresses the cached value's answers came from
	// (serve sites / first-hop neighbors). DropSite evicts by them when
	// a peer departs, so cached answers never outlive their provenance.
	sites []string
}

// NewCache returns an empty cache.
func NewCache(opt CacheOptions) *Cache {
	return &Cache{
		opt:     opt.withDefaults(),
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}
}

// Epoch returns the current store-mutation epoch.
func (c *Cache) Epoch() uint64 { return c.epoch.Load() }

// BumpEpoch advances the epoch and drops every entry tagged with an
// older one. It returns how many entries were invalidated. Entries
// inserted concurrently with a stale pre-bump epoch are caught at Get.
func (c *Cache) BumpEpoch() int {
	cur := c.epoch.Add(1)
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	for el := c.lru.Back(); el != nil; {
		prev := el.Prev()
		if el.Value.(*entry).epoch < cur {
			c.removeLocked(el)
			dropped++
		}
		el = prev
	}
	c.invalidated += uint64(dropped)
	return dropped
}

// Get returns the value cached under key if it is still servable: same
// epoch, within its freshness TTL. negative reports whether the entry
// records "no answers".
func (c *Cache) Get(key string, now time.Time) (val any, negative, ok bool) {
	cur := c.epoch.Load()
	c.mu.Lock()
	defer c.mu.Unlock()
	el, found := c.entries[key]
	if !found {
		c.misses++
		return nil, false, false
	}
	e := el.Value.(*entry)
	if e.epoch != cur {
		c.removeLocked(el)
		c.invalidated++
		c.misses++
		return nil, false, false
	}
	ttl := c.opt.TTL
	if e.negative {
		ttl = c.opt.NegTTL
	}
	if now.Sub(e.at) > ttl {
		c.removeLocked(el)
		c.expired++
		c.misses++
		return nil, false, false
	}
	c.lru.MoveToFront(el)
	if e.negative {
		c.negHits++
	} else {
		c.hits++
	}
	return e.val, e.negative, true
}

// Put caches val under key, tagged with the epoch the caller observed
// before computing val (so a mutation racing the computation invalidates
// the entry rather than being masked by it). size is the accounted
// payload size in bytes. Values larger than the byte budget are not
// cached. It returns how many entries were evicted to make room.
func (c *Cache) Put(key string, val any, size int, negative bool, epoch uint64, now time.Time) int {
	return c.PutFrom(key, val, size, negative, epoch, now, nil)
}

// PutFrom is Put with answer provenance: sites lists the peer addresses
// the cached value's answers came from, so DropSite can evict entries
// whose provenance departs the overlay.
func (c *Cache) PutFrom(key string, val any, size int, negative bool, epoch uint64, now time.Time, sites []string) int {
	if size > c.opt.MaxBytes {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, found := c.entries[key]; found {
		e := el.Value.(*entry)
		c.bytes += size - e.size
		e.val, e.size, e.negative, e.epoch, e.at = val, size, negative, epoch, now
		e.sites = sites
		c.lru.MoveToFront(el)
	} else {
		el := c.lru.PushFront(&entry{key: key, val: val, size: size,
			negative: negative, epoch: epoch, at: now, sites: sites})
		c.entries[key] = el
		c.bytes += size
		c.insertions++
	}
	evicted := 0
	for c.lru.Len() > c.opt.MaxEntries || c.bytes > c.opt.MaxBytes {
		back := c.lru.Back()
		if back == nil {
			break
		}
		c.removeLocked(back)
		c.evictions++
		evicted++
	}
	return evicted
}

// DropSite evicts every entry whose provenance includes addr — the
// cache-affinity half of forgetting a departed neighbor. It returns how
// many entries were dropped.
func (c *Cache) DropSite(addr string) int {
	if addr == "" {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	for el := c.lru.Back(); el != nil; {
		prev := el.Prev()
		e := el.Value.(*entry)
		for _, s := range e.sites {
			if s == addr {
				c.removeLocked(el)
				c.forgotten++
				dropped++
				break
			}
		}
		el = prev
	}
	return dropped
}

// removeLocked unlinks el; callers hold c.mu.
func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	c.lru.Remove(el)
	delete(c.entries, e.key)
	c.bytes -= e.size
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	Epoch        uint64 `json:"epoch"`
	Entries      int    `json:"entries"`
	Bytes        int    `json:"bytes"`
	Hits         uint64 `json:"hits"`
	NegativeHits uint64 `json:"negative_hits"`
	Misses       uint64 `json:"misses"`
	Insertions   uint64 `json:"insertions"`
	Evictions    uint64 `json:"evictions"`
	Expired      uint64 `json:"expired"`
	Invalidated  uint64 `json:"invalidated"`
	// Forgotten counts entries evicted because a provenance site
	// departed (DropSite).
	Forgotten uint64 `json:"forgotten"`
}

// Stats snapshots the cache.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Epoch:        c.epoch.Load(),
		Entries:      c.lru.Len(),
		Bytes:        c.bytes,
		Hits:         c.hits,
		NegativeHits: c.negHits,
		Misses:       c.misses,
		Insertions:   c.insertions,
		Evictions:    c.evictions,
		Expired:      c.expired,
		Invalidated:  c.invalidated,
		Forgotten:    c.forgotten,
	}
}
