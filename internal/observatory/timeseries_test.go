package observatory

import (
	"testing"
	"time"
)

func ts(sec int) time.Time { return time.Unix(int64(sec), 0).UTC() }

func TestRingDownsamples(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 4; i++ {
		r.Add(TSPoint{At: ts(i), V: float64(i)})
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d, want 4", r.Len())
	}
	// The fifth add merges the four retained points pairwise first:
	// (0,1)->0.5 and (2,3)->2.5, then appends 4.
	r.Add(TSPoint{At: ts(4), V: 4})
	pts := r.Points()
	if len(pts) != 3 {
		t.Fatalf("after downsample len = %d, want 3: %+v", len(pts), pts)
	}
	if pts[0].V != 0.5 || pts[1].V != 2.5 || pts[2].V != 4 {
		t.Fatalf("merged values = %+v", pts)
	}
	// Merged timestamps are midpoints, and order is preserved.
	if !pts[0].At.Equal(ts(0).Add(500 * time.Millisecond)) {
		t.Fatalf("merged timestamp = %v", pts[0].At)
	}
	for i := 1; i < len(pts); i++ {
		if !pts[i].At.After(pts[i-1].At) {
			t.Fatalf("timestamps out of order: %+v", pts)
		}
	}
	// The retention window keeps the oldest history (degraded), so a
	// long run never loses the left edge entirely.
	for i := 5; i < 100; i++ {
		r.Add(TSPoint{At: ts(i), V: float64(i)})
	}
	pts = r.Points()
	if len(pts) > 4 {
		t.Fatalf("ring exceeded capacity: %d", len(pts))
	}
	if last, ok := r.Last(); !ok || last.V != 99 {
		t.Fatalf("last = %+v %v", last, ok)
	}
}

func TestSeriesStore(t *testing.T) {
	s := NewSeriesStore(8)
	s.Add("m1", "up", TSPoint{At: ts(1), V: 1})
	s.Add("m1", "depth", TSPoint{At: ts(1), V: 5})
	s.Add("m2", "up", TSPoint{At: ts(1), V: 0})
	if got := s.Members(); len(got) != 2 || got[0] != "m1" || got[1] != "m2" {
		t.Fatalf("members = %v", got)
	}
	if got := s.Names("m1"); len(got) != 2 || got[0] != "depth" || got[1] != "up" {
		t.Fatalf("names = %v", got)
	}
	if got := s.Names("unknown"); got != nil {
		t.Fatalf("unknown member names = %v", got)
	}
	if pts := s.Points("m1", "depth"); len(pts) != 1 || pts[0].V != 5 {
		t.Fatalf("points = %+v", pts)
	}
	if pts := s.Points("m1", "missing"); pts != nil {
		t.Fatalf("missing series points = %+v", pts)
	}
	all := s.All()
	if len(all) != 2 || len(all["m1"]) != 2 {
		t.Fatalf("all = %+v", all)
	}
}

func TestDownsampleHelper(t *testing.T) {
	var pts []TSPoint
	for i := 0; i < 100; i++ {
		pts = append(pts, TSPoint{At: ts(i), V: float64(i)})
	}
	out := Downsample(pts, 16)
	if len(out) > 16 || len(out) < 8 {
		t.Fatalf("downsampled to %d points", len(out))
	}
	for i := 1; i < len(out); i++ {
		if !out[i].At.After(out[i-1].At) {
			t.Fatalf("timestamps out of order: %+v", out)
		}
	}
	// Means are preserved within merging error; first < last still holds.
	if out[0].V >= out[len(out)-1].V {
		t.Fatalf("trend lost: %+v", out)
	}
	// Short inputs pass through untouched.
	if got := Downsample(pts[:3], 16); len(got) != 3 {
		t.Fatalf("short input resampled: %+v", got)
	}
}
