package core

import (
	"bytes"
	"testing"

	"bestpeer/internal/wire"
)

// FuzzDecodeDepart: arbitrary bytes must never panic, every successful
// decode must re-encode, and the version-tolerance contract must hold —
// a payload whose leading version exceeds departVersion is accepted as
// long as the fields we understand parse.
func FuzzDecodeDepart(f *testing.F) {
	id := wire.BPID{LIGLO: "lg1", Node: 7}
	good := encodeDepart(&departMsg{
		Version: departVersion,
		ID:      id,
		Hints:   []Peer{{ID: wire.BPID{LIGLO: "lg1", Node: 8}, Addr: "a:1"}, {ID: wire.BPID{LIGLO: "lg1", Node: 9}, Addr: "b:2"}},
	})
	f.Add(good)
	// Newer-sender corpus: version bumped, unknown fields trailing.
	var e wire.Encoder
	e.Uvarint(departVersion + 1)
	e.BPID(id)
	e.Uvarint(0)
	e.String("future-field")
	f.Add(e.Bytes())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 32))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeDepart(data)
		if err != nil {
			return
		}
		if m.Version <= departVersion {
			re := encodeDepart(m)
			back, err := decodeDepart(re)
			if err != nil {
				t.Fatalf("re-encoded depart failed to decode: %v", err)
			}
			if back.ID != m.ID || len(back.Hints) != len(m.Hints) {
				t.Fatal("depart round trip changed the message")
			}
		}
	})
}
