package bench

import "testing"

// TestTrafficSelectiveBeatsFlood is the PR's acceptance check: after the
// warmup round, the answer cache + selective routing must send
// measurably fewer messages than flooding while giving up none of the
// flood's recall — including across the mid-run store mutations that
// force it off the warm cache.
func TestTrafficSelectiveBeatsFlood(t *testing.T) {
	tr := Traffic(DefaultCost(), 1)
	if len(tr.Flood) != trafficRounds || len(tr.QRoute) != trafficRounds {
		t.Fatalf("rounds = %d/%d, want %d each", len(tr.Flood), len(tr.QRoute), trafficRounds)
	}
	if tr.Expected == 0 {
		t.Fatal("workload planted no reachable answers")
	}
	for i := range tr.Flood {
		f, q := tr.Flood[i], tr.QRoute[i]
		if f.Answers != tr.Expected {
			t.Fatalf("round %d: flood recall %d, want %d", f.Round, f.Answers, tr.Expected)
		}
		if q.Answers < f.Answers {
			t.Fatalf("round %d (%s): qroute recall %d < flood recall %d",
				q.Round, q.Route, q.Answers, f.Answers)
		}
		if i == 0 {
			// Warmup: the cold engine must behave exactly like a flood.
			if q.Route != "flood" || q.Msgs != f.Msgs {
				t.Fatalf("warmup round must flood identically: route=%s msgs=%d vs %d",
					q.Route, q.Msgs, f.Msgs)
			}
			continue
		}
		if q.Msgs >= f.Msgs {
			t.Fatalf("round %d (%s): qroute sent %d msgs, flood sent %d — no saving",
				q.Round, q.Route, q.Msgs, f.Msgs)
		}
	}
	// The schedule itself: unchanged repeats hit the cache, post-mutation
	// rounds take the learned selective route.
	for i, want := range []string{"flood", "cached", "selective", "cached", "selective", "cached"} {
		if got := tr.QRoute[i].Route; got != want {
			t.Fatalf("round %d route = %q, want %q (schedule %+v)", i+1, got, want, tr.QRoute)
		}
	}
	if tr.QRouteMsgs >= tr.FloodMsgs {
		t.Fatalf("totals: qroute %d msgs vs flood %d", tr.QRouteMsgs, tr.FloodMsgs)
	}
}
