package qroute

import (
	"testing"
	"time"
)

// TestForgetNeighborEvictsRoutesAndProvenance exercises the churn
// eviction path: when a direct peer departs, everything learned about it
// (per-term routing counters) or through it (cached answers whose
// provenance names it) must go, while state tied to surviving neighbors
// stays.
func TestForgetNeighborEvictsRoutesAndProvenance(t *testing.T) {
	e := NewEngine(Options{Enable: true}, nil)
	now := time.Unix(0, 0).UTC()
	e.Observe([]string{"alpha"}, "n1", 5, 2, now)
	e.Observe([]string{"alpha"}, "n2", 1, 3, now)
	e.PutBaseFrom("k1", "v1", 8, false, 0, now, []string{"n1"})
	e.PutBaseFrom("k2", "v2", 8, false, 0, now, []string{"n2"})

	evicted := e.ForgetNeighbor("n1")
	if evicted != 2 {
		t.Fatalf("ForgetNeighbor evicted %d, want 2 (one route counter + one cache entry)", evicted)
	}
	if _, _, ok := e.GetBase("k1", now); ok {
		t.Fatal("cache entry served by the departed neighbor survived")
	}
	if v, _, ok := e.GetBase("k2", now); !ok || v != "v2" {
		t.Fatalf("unrelated cache entry lost: %v %v", v, ok)
	}
	st := e.Stats()
	if st.Cache.Forgotten != 1 {
		t.Fatalf("Forgotten stat = %d, want 1", st.Cache.Forgotten)
	}

	// The departed neighbor's state is gone for good, but nothing stops
	// the same address from being learned afresh after a rejoin.
	e.PutBaseFrom("k1", "v1b", 8, false, 0, now, []string{"n1"})
	if v, _, ok := e.GetBase("k1", now); !ok || v != "v1b" {
		t.Fatalf("re-learned entry after forget: %v %v", v, ok)
	}
}

// TestForgetNeighborNilAndEmpty pins the disabled-engine and empty-addr
// contracts the core node relies on (it calls ForgetNeighbor
// unconditionally on every drop, engine or not).
func TestForgetNeighborNilAndEmpty(t *testing.T) {
	var nilEng *Engine
	if n := nilEng.ForgetNeighbor("n1"); n != 0 {
		t.Fatalf("nil engine evicted %d", n)
	}
	e := NewEngine(Options{Enable: true}, nil)
	if n := e.ForgetNeighbor(""); n != 0 {
		t.Fatalf("empty addr evicted %d", n)
	}
	// Forgetting an address never seen is a no-op that still counts the
	// call (the metric tracks drops requested, not state found).
	if n := e.ForgetNeighbor("never-seen"); n != 0 {
		t.Fatalf("unknown addr evicted %d", n)
	}
}
