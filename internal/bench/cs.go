package bench

import (
	"sort"
	"time"

	"bestpeer/internal/netsim"
	"bestpeer/internal/topology"
	"bestpeer/internal/wire"
)

// csSim models the client/server comparators. A query travels down the
// topology; every node executes it (query-shipping: cheap startup, the
// algorithm is already at the server) and returns its answers to the hop
// the query came from; intermediate hops relay answers upstream
// immediately (the paper's second CS implementation). The base is either
// multi-threaded (contacts all servers in parallel — MCS) or
// single-threaded (one connection at a time — SCS).
type csSim struct {
	p            Params
	tp           *topology.Topology
	sim          *netsim.Sim
	net          *netsim.Network
	singleThread bool

	route   []int // upstream hop per node for the current query (-1 unset)
	pending []int // outstanding "done" markers expected per node

	events  []Event
	started time.Duration

	// Sequential (SCS) dispatch state at the base.
	seqOrder []int
	seqNext  int
}

// csDone is a subtree-completion marker: sent upstream when a node's own
// scan finished and all its children reported done. SCS needs it to move
// to the next server; it also gives the simulation a natural end.
const csDoneKind = wire.KindPeerProbeOK // reuse a spare kind for markers

func newCSSim(tp *topology.Topology, p Params, singleThread bool) *csSim {
	p = p.withDefaults()
	s := netsim.NewSim()
	net := netsim.NewNetwork(s, netsim.Link{Latency: p.Cost.Latency, Bandwidth: p.Cost.Bandwidth})
	net.UseSharedMedium()
	c := &csSim{
		p: p, tp: tp, sim: s, net: net, singleThread: singleThread,
		route:   make([]int, tp.N),
		pending: make([]int, tp.N),
	}
	threads := p.Threads
	if singleThread {
		threads = 1
	}
	for i := 0; i < tp.N; i++ {
		i := i
		h := net.AddHost(nodeAddr(i), netsim.HostConfig{Threads: threads})
		h.SetHandler(func(env *wire.Envelope) { c.handle(i, env) })
	}
	return c
}

func (c *csSim) handle(node int, env *wire.Envelope) {
	switch env.Kind {
	case wire.KindCSQuery:
		c.handleQuery(node, env)
	case wire.KindCSAnswer:
		c.handleAnswer(node, env)
	case csDoneKind:
		c.handleDone(node)
	}
}

// handleQuery: record the upstream hop, scan locally (charging server
// CPU), answer upstream, forward downstream, and emit a done marker when
// the whole subtree has reported.
func (c *csSim) handleQuery(node int, env *wire.Envelope) {
	if env.Expired() {
		return // TTL exhausted: drop
	}
	if c.route[node] != -1 {
		return // duplicate via a cycle; topologies here are acyclic anyway
	}
	up := nodeFromEnvAddr(env.From)
	c.route[node] = up

	// Forward downstream first (parallel subtrees); forwarding costs CPU.
	var targets []int
	if env.TTL > 1 {
		for _, w := range c.tp.Peers(node) {
			if w != up {
				targets = append(targets, w)
			}
		}
	}
	c.pending[node] = len(targets) + 1 // children's done markers + own scan
	if len(targets) > 0 {
		c.net.Host(nodeAddr(node)).Exec(c.p.Cost.ForwardCost, func() {
			for _, w := range targets {
				fwd := env.Forwarded(nodeAddr(node), nodeAddr(w))
				c.net.Send(nodeAddr(node), nodeAddr(w), fwd, c.p.Cost.compressed(c.p.Cost.QuerySize))
			}
		})
	}

	host := c.net.Host(nodeAddr(node))
	host.Exec(c.p.Cost.QueryStartup+c.p.Cost.scanCost(c.p.Spec.ObjectsPerNode), func() {
		hits := c.p.Spec.MatchCount(node, c.p.Query)
		if hits > 0 {
			size := c.p.Cost.resultSize(hits, c.p.Spec.ObjectSize, c.p.IncludeData)
			c.sendUp(node, up, hits, node, int(env.Hops), size)
		}
		c.handleDone(node) // own scan complete
	})
}

// sendUp sends an answer message one hop toward the base.
func (c *csSim) sendUp(node, to, hits, origin, hops, size int) {
	env := &wire.Envelope{
		Kind: wire.KindCSAnswer, ID: wire.NewMsgID(), TTL: 1, Hops: uint8(clampHops(hops)),
		From: nodeAddr(node), To: nodeAddr(to), Body: resultBody(hits, origin),
	}
	c.net.Send(nodeAddr(node), nodeAddr(to), env, size)
}

// handleAnswer relays an answer upstream or records it at the base. The
// relay charges CPU and re-transmits the full message — the structural
// cost that makes CS degrade with depth.
func (c *csSim) handleAnswer(node int, env *wire.Envelope) {
	hits, origin := resultFromBody(env.Body)
	if node == c.tp.Base {
		c.events = append(c.events, Event{
			Node: origin, Answers: hits, Hops: int(env.Hops),
			At: c.sim.Now() - c.started,
		})
		return
	}
	up := c.route[node]
	if up == -1 {
		return
	}
	size := c.p.Cost.resultSize(hits, c.p.Spec.ObjectSize, c.p.IncludeData)
	host := c.net.Host(nodeAddr(node))
	host.Exec(c.p.Cost.RelayCost, func() {
		c.sendUp(node, up, hits, origin, int(env.Hops), size)
	})
}

// handleDone decrements a node's outstanding-subtree counter and
// propagates the marker upstream when the subtree is complete.
func (c *csSim) handleDone(node int) {
	c.pending[node]--
	if c.pending[node] > 0 {
		return
	}
	if node == c.tp.Base {
		if c.singleThread {
			c.dispatchNext()
		}
		return
	}
	up := c.route[node]
	if up == -1 {
		return
	}
	env := &wire.Envelope{
		Kind: csDoneKind, ID: wire.NewMsgID(), TTL: 1,
		From: nodeAddr(node), To: nodeAddr(up),
	}
	c.net.Send(nodeAddr(node), nodeAddr(up), env, 32)
}

// dispatchNext sends the query to the base's next server (SCS: one
// outstanding connection at a time).
func (c *csSim) dispatchNext() {
	if c.seqNext >= len(c.seqOrder) {
		return
	}
	w := c.seqOrder[c.seqNext]
	c.seqNext++
	c.pending[c.tp.Base]++ // expect this child's done marker
	c.sendQuery(w)
}

func (c *csSim) sendQuery(to int) {
	env := &wire.Envelope{
		Kind: wire.KindCSQuery, ID: wire.NewMsgID(),
		TTL: uint8(clampHops(c.p.TTL)), Hops: 1,
		From: nodeAddr(c.tp.Base), To: nodeAddr(to),
	}
	c.net.Send(nodeAddr(c.tp.Base), nodeAddr(to), env, c.p.Cost.compressed(c.p.Cost.QuerySize))
}

// RunCS executes one query under the client/server model. singleThread
// selects SCS (sequential dispatch, one server thread); otherwise MCS.
func RunCS(tp *topology.Topology, p Params, singleThread bool) RunResult {
	c := newCSSim(tp, p, singleThread)
	for i := range c.route {
		c.route[i] = -1
	}
	c.started = 0
	base := tp.Base
	c.route[base] = base // sentinel: base has no upstream

	children := append([]int(nil), tp.Peers(base)...)
	sort.Ints(children)

	if singleThread {
		c.seqOrder = children
		c.seqNext = 0
		c.pending[base] = 0
		c.dispatchNext()
	} else {
		c.pending[base] = len(children)
		for _, w := range children {
			c.sendQuery(w)
		}
	}
	c.sim.Run()

	res := RunResult{
		Events:   append([]Event(nil), c.events...),
		Msgs:     c.net.MsgsDelivered,
		Bytes:    c.net.BytesDelivered,
		MsgsSent: c.net.MsgsSent,
		Route:    "flood",
	}
	for _, e := range res.Events {
		res.TotalAnswers += e.Answers
		if e.At > res.Completion {
			res.Completion = e.At
		}
	}
	sort.Slice(res.Events, func(i, j int) bool { return res.Events[i].At < res.Events[j].At })
	return res
}
