// Package leaf is the cross-package target for the callgraph fixture.
package leaf

// Add is called from the parent fixture package.
func Add(a, b int) int { return a + b }
