package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"bestpeer/internal/wire"
)

// ErrMessengerClosed reports use after Close.
var ErrMessengerClosed = errors.New("transport: messenger closed")

// Messenger delivers wire envelopes between named endpoints. Each
// messenger owns a listener; incoming connections are read in their own
// goroutines and every decoded envelope is handed to the handler.
// Outgoing connections are cached per destination and re-dialed on
// failure.
type Messenger struct {
	network  Network
	listener net.Listener
	handler  func(*wire.Envelope)

	mu     sync.Mutex
	outs   map[string]*outConn
	ins    map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	// Stats.
	Sent     uint64
	Received uint64
}

type outConn struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *wire.Conn
}

// NewMessenger binds addr on the network and starts accepting. handler is
// invoked from reader goroutines — it must be safe for concurrent use.
func NewMessenger(network Network, addr string, handler func(*wire.Envelope)) (*Messenger, error) {
	l, err := network.Listen(addr)
	if err != nil {
		return nil, err
	}
	m := &Messenger{
		network:  network,
		listener: l,
		handler:  handler,
		outs:     make(map[string]*outConn),
		ins:      make(map[net.Conn]struct{}),
	}
	m.wg.Add(1)
	go m.acceptLoop()
	return m, nil
}

// Addr returns the bound address.
func (m *Messenger) Addr() string { return m.listener.Addr().String() }

func (m *Messenger) acceptLoop() {
	defer m.wg.Done()
	for {
		conn, err := m.listener.Accept()
		if err != nil {
			return
		}
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			conn.Close()
			return
		}
		m.ins[conn] = struct{}{}
		m.mu.Unlock()
		m.wg.Add(1)
		go m.readLoop(conn)
	}
}

func (m *Messenger) readLoop(conn net.Conn) {
	defer m.wg.Done()
	defer func() {
		conn.Close()
		m.mu.Lock()
		delete(m.ins, conn)
		m.mu.Unlock()
	}()
	wc := wire.NewConn(conn)
	for {
		env, err := wc.Recv()
		if err != nil {
			return
		}
		m.mu.Lock()
		closed := m.closed
		if !closed {
			m.Received++
		}
		m.mu.Unlock()
		if closed {
			return
		}
		if m.handler != nil {
			m.handler(env)
		}
	}
}

// Send delivers env to the endpoint at to. The connection is cached; one
// transparent re-dial covers a peer that restarted.
func (m *Messenger) Send(to string, env *wire.Envelope) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrMessengerClosed
	}
	oc, ok := m.outs[to]
	if !ok {
		oc = &outConn{}
		m.outs[to] = oc
	}
	m.mu.Unlock()

	oc.mu.Lock()
	defer oc.mu.Unlock()
	if oc.conn == nil {
		if err := m.redial(to, oc); err != nil {
			return err
		}
	}
	if err := oc.enc.Send(env); err != nil {
		// Stale cached connection: re-dial once.
		oc.conn.Close()
		oc.conn = nil
		if err := m.redial(to, oc); err != nil {
			return err
		}
		if err := oc.enc.Send(env); err != nil {
			oc.conn.Close()
			oc.conn = nil
			return fmt.Errorf("transport: send to %s: %w", to, err)
		}
	}
	m.mu.Lock()
	m.Sent++
	m.mu.Unlock()
	return nil
}

func (m *Messenger) redial(to string, oc *outConn) error {
	conn, err := m.network.Dial(to)
	if err != nil {
		return fmt.Errorf("transport: dial %s: %w", to, err)
	}
	oc.conn = conn
	oc.enc = wire.NewConn(conn)
	return nil
}

// Close stops accepting, drops cached connections and waits for reader
// goroutines to drain.
func (m *Messenger) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	outs := m.outs
	m.outs = make(map[string]*outConn)
	ins := make([]net.Conn, 0, len(m.ins))
	for c := range m.ins {
		ins = append(ins, c)
	}
	m.mu.Unlock()

	m.listener.Close()
	// Closing accepted connections unblocks their reader goroutines;
	// otherwise Close would wait on peers that close after us.
	for _, c := range ins {
		c.Close()
	}
	for _, oc := range outs {
		oc.mu.Lock()
		if oc.conn != nil {
			oc.conn.Close()
			oc.conn = nil
		}
		oc.mu.Unlock()
	}
	m.wg.Wait()
	return nil
}
