// Package eventdrift is a bpvet golden-test fixture.
package eventdrift

// EventKind mirrors the obs package's closed event vocabulary.
type EventKind string

const (
	EvGood EventKind = "good"
	EvAlso EventKind = "also"
	EvLost EventKind = "lost" // want `event kind EvLost is not listed in the Kinds registry`
)

// Kinds is the registry schema-driven consumers enumerate.
var Kinds = []EventKind{EvGood, EvAlso}

// Event carries one journal entry.
type Event struct {
	Kind EventKind
	Note string
}

func emit(Event) {}

// good: kinds flow from the registered constants.
func useConstants() {
	emit(Event{Kind: EvGood, Note: "plain strings elsewhere are fine"})
	k := EvAlso
	emit(Event{Kind: k})
}

// bad: raw strings bypass the vocabulary.
func useRawStrings() {
	emit(Event{Kind: "rogue"}) // want `event kind "rogue" constructed from a raw string`
	k := EventKind("cast")     // want `event kind "cast" constructed from a raw string`
	emit(Event{Kind: k})
}
