package core

import (
	"sync"

	"bestpeer/internal/wire"
)

// dedup is a bounded set of recently seen message IDs. Agents are cloned
// down every edge, so a node with several peers receives the same agent
// along multiple paths; the redundant TTL/Hops plus this set let it drop
// copies (§3.1). Eviction is FIFO via a ring so memory stays bounded.
type dedup struct {
	mu   sync.Mutex
	set  map[wire.MsgID]struct{}
	ring []wire.MsgID
	next int
}

// newDedup creates a set remembering the last capacity IDs.
func newDedup(capacity int) *dedup {
	if capacity < 1 {
		capacity = 1
	}
	return &dedup{
		set:  make(map[wire.MsgID]struct{}, capacity),
		ring: make([]wire.MsgID, capacity),
	}
}

// Seen records id and reports whether it was already present.
func (d *dedup) Seen(id wire.MsgID) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.set[id]; ok {
		return true
	}
	// Evict the slot we are about to occupy.
	if old := d.ring[d.next]; old != (wire.MsgID{}) {
		delete(d.set, old)
	}
	d.ring[d.next] = id
	d.set[id] = struct{}{}
	d.next = (d.next + 1) % len(d.ring)
	return false
}

// Len returns the number of remembered IDs.
func (d *dedup) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.set)
}
