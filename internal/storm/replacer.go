package storm

import "container/list"

// Replacer chooses which buffer frame to evict. Only frames explicitly
// made evictable (pin count zero) are candidates. Implementations are not
// safe for concurrent use; the buffer pool serializes access.
//
// This is the extensibility point StorM contributed (Bressan et al.,
// SIGMOD 1999): new replacement policies plug in without touching the
// buffer manager.
type Replacer interface {
	// Name identifies the policy, e.g. "lru".
	Name() string
	// Insert makes frame evictable. The hint is policy-specific (the
	// Priority policy interprets it as an eviction priority; others
	// ignore it). Inserting an already-present frame refreshes it.
	Insert(frame int, hint float64)
	// Touch records an access to an evictable frame. Policies that do
	// not distinguish access recency ignore it. Touching an absent frame
	// is a no-op.
	Touch(frame int)
	// Remove withdraws frame from candidacy (it was pinned or freed).
	// Removing an absent frame is a no-op.
	Remove(frame int)
	// Victim selects and removes the frame to evict. ok is false when no
	// frame is evictable.
	Victim() (frame int, ok bool)
	// Len returns the number of evictable frames.
	Len() int
}

// listReplacer is the shared machinery for LRU/MRU/FIFO: an ordered list
// of frames plus an index. Variants differ in where Victim pops and
// whether Touch moves the frame.
type listReplacer struct {
	name         string
	order        *list.List // front = oldest
	pos          map[int]*list.Element
	touchMoves   bool // LRU moves on touch; FIFO does not
	victimNewest bool // MRU evicts from the back
}

func newListReplacer(name string, touchMoves, victimNewest bool) *listReplacer {
	return &listReplacer{
		name:         name,
		order:        list.New(),
		pos:          make(map[int]*list.Element),
		touchMoves:   touchMoves,
		victimNewest: victimNewest,
	}
}

// NewLRU returns a least-recently-used replacer.
func NewLRU() Replacer { return newListReplacer("lru", true, false) }

// NewMRU returns a most-recently-used replacer, which wins on sequential
// flooding scans (the canonical StorM demonstration workload).
func NewMRU() Replacer { return newListReplacer("mru", true, true) }

// NewFIFO returns a first-in-first-out replacer.
func NewFIFO() Replacer { return newListReplacer("fifo", false, false) }

func (r *listReplacer) Name() string { return r.name }

func (r *listReplacer) Insert(frame int, _ float64) {
	if e, ok := r.pos[frame]; ok {
		r.order.MoveToBack(e)
		return
	}
	r.pos[frame] = r.order.PushBack(frame)
}

func (r *listReplacer) Touch(frame int) {
	if !r.touchMoves {
		return
	}
	if e, ok := r.pos[frame]; ok {
		r.order.MoveToBack(e)
	}
}

func (r *listReplacer) Remove(frame int) {
	if e, ok := r.pos[frame]; ok {
		r.order.Remove(e)
		delete(r.pos, frame)
	}
}

func (r *listReplacer) Victim() (int, bool) {
	var e *list.Element
	if r.victimNewest {
		e = r.order.Back()
	} else {
		e = r.order.Front()
	}
	if e == nil {
		return 0, false
	}
	f := e.Value.(int)
	r.order.Remove(e)
	delete(r.pos, f)
	return f, true
}

func (r *listReplacer) Len() int { return r.order.Len() }

// clockReplacer approximates LRU with reference bits and a sweeping hand.
type clockReplacer struct {
	frames []int // ring of frame ids
	ref    map[int]bool
	idx    map[int]int // frame -> position in ring
	hand   int
}

// NewClock returns a clock (second-chance) replacer.
func NewClock() Replacer {
	return &clockReplacer{ref: make(map[int]bool), idx: make(map[int]int)}
}

func (c *clockReplacer) Name() string { return "clock" }

func (c *clockReplacer) Insert(frame int, _ float64) {
	if _, ok := c.idx[frame]; ok {
		c.ref[frame] = true
		return
	}
	c.idx[frame] = len(c.frames)
	c.frames = append(c.frames, frame)
	c.ref[frame] = true
}

func (c *clockReplacer) Touch(frame int) {
	if _, ok := c.idx[frame]; ok {
		c.ref[frame] = true
	}
}

func (c *clockReplacer) Remove(frame int) {
	i, ok := c.idx[frame]
	if !ok {
		return
	}
	last := len(c.frames) - 1
	c.frames[i] = c.frames[last]
	c.idx[c.frames[i]] = i
	c.frames = c.frames[:last]
	delete(c.idx, frame)
	delete(c.ref, frame)
	if c.hand > last {
		c.hand = 0
	}
}

func (c *clockReplacer) Victim() (int, bool) {
	if len(c.frames) == 0 {
		return 0, false
	}
	// At most two sweeps: the first clears reference bits.
	for i := 0; i < 2*len(c.frames)+1; i++ {
		if c.hand >= len(c.frames) {
			c.hand = 0
		}
		f := c.frames[c.hand]
		if c.ref[f] {
			c.ref[f] = false
			c.hand++
			continue
		}
		c.Remove(f)
		return f, true
	}
	// Unreachable: a full sweep always clears some bit.
	f := c.frames[0]
	c.Remove(f)
	return f, true
}

func (c *clockReplacer) Len() int { return len(c.frames) }

// priorityReplacer evicts the frame with the lowest hint value, breaking
// ties in FIFO order. Callers attach hints when unpinning (e.g. keep index
// pages hot by giving them high priority).
type priorityReplacer struct {
	entries map[int]priEntry
	seq     uint64
}

type priEntry struct {
	pri float64
	seq uint64
}

// NewPriority returns a priority-hint replacer.
func NewPriority() Replacer { return &priorityReplacer{entries: make(map[int]priEntry)} }

func (p *priorityReplacer) Name() string { return "priority" }

func (p *priorityReplacer) Insert(frame int, hint float64) {
	p.seq++
	p.entries[frame] = priEntry{pri: hint, seq: p.seq}
}

func (p *priorityReplacer) Touch(int) {}

func (p *priorityReplacer) Remove(frame int) { delete(p.entries, frame) }

func (p *priorityReplacer) Victim() (int, bool) {
	best, found := 0, false
	var bestE priEntry
	for f, e := range p.entries {
		if !found || e.pri < bestE.pri || (e.pri == bestE.pri && e.seq < bestE.seq) {
			best, bestE, found = f, e, true
		}
	}
	if !found {
		return 0, false
	}
	delete(p.entries, best)
	return best, true
}

func (p *priorityReplacer) Len() int { return len(p.entries) }

// NewReplacer constructs a replacer by policy name: "lru", "mru", "fifo",
// "clock" or "priority". Unknown names fall back to LRU.
func NewReplacer(name string) Replacer {
	switch name {
	case "mru":
		return NewMRU()
	case "fifo":
		return NewFIFO()
	case "clock":
		return NewClock()
	case "priority":
		return NewPriority()
	default:
		return NewLRU()
	}
}
