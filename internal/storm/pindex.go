package storm

import (
	"fmt"
	"strings"
)

// PersistentIndex is a durable inverted index over a store's keywords,
// held in a B+tree on the same page file as the heap. Each posting is one
// tree entry with the composite key
//
//	lowercase(keyword) + "\x00" + object name
//
// so a keyword's postings are a contiguous key range served by a prefix
// scan, and the index survives restarts (its root lives in the file
// header next to the catalog's).
type PersistentIndex struct {
	tree *BTree
}

// postingKey builds the composite key for one (keyword, name) pair.
func postingKey(keyword, name string) string {
	return strings.ToLower(keyword) + "\x00" + name
}

// Add indexes every keyword of the object.
func (ix *PersistentIndex) Add(obj *Object, oid OID) error {
	for _, k := range obj.Keywords {
		key := postingKey(k, obj.Name)
		if len(key) > MaxKeyLen {
			return fmt.Errorf("%w: posting %q", ErrKeyTooLong, key)
		}
		if err := ix.tree.Put(key, oid); err != nil {
			return err
		}
	}
	return nil
}

// Remove un-indexes every keyword of the object.
func (ix *PersistentIndex) Remove(obj *Object) error {
	for _, k := range obj.Keywords {
		if _, err := ix.tree.Delete(postingKey(k, obj.Name)); err != nil {
			return err
		}
	}
	return nil
}

// Lookup returns the names (ascending) of objects carrying the keyword.
func (ix *PersistentIndex) Lookup(keyword string) ([]string, error) {
	prefix := strings.ToLower(keyword) + "\x00"
	var names []string
	err := ix.tree.AscendPrefix(prefix, func(key string, _ OID) bool {
		names = append(names, key[len(prefix):])
		return true
	})
	return names, err
}

// Postings returns the number of (keyword, object) pairs indexed.
func (ix *PersistentIndex) Postings() (int, error) { return ix.tree.Len() }

// loadPersistentIndexAfterRecovery attaches to or (re)builds the store's
// on-disk inverted index. forceRebuild discards the stored image (set
// after a crash: index pages regress independently of the WAL-recovered
// heap, so the stored image cannot be trusted).
func (s *Store) loadPersistentIndexAfterRecovery(forceRebuild bool) error {
	if root := s.file.IndexRoot(); root != InvalidPage && !forceRebuild {
		ix := &PersistentIndex{tree: OpenBTree(s.pool, root)}
		// Plausibility check: the tree must walk cleanly.
		if _, err := ix.Postings(); err == nil {
			s.pindex = ix
			s.pindexRoot = root
			return nil
		}
		// Stale or torn: fall through and rebuild.
	}
	tree, err := NewBTree(s.pool)
	if err != nil {
		return err
	}
	ix := &PersistentIndex{tree: tree}
	err = s.Scan(func(o *Object) bool {
		s.mu.RLock()
		oid, ok := s.byName[o.Name]
		s.mu.RUnlock()
		if !ok {
			return true
		}
		if aerr := ix.Add(o, oid); aerr != nil {
			err = aerr
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	s.pindex = ix
	return s.syncIndexRoot()
}

// syncIndexRoot records the index root in the header when it has moved.
func (s *Store) syncIndexRoot() error {
	if s.pindex == nil || s.pindex.tree.Root() == s.pindexRoot {
		return nil
	}
	if err := s.file.SetIndexRoot(s.pindex.tree.Root()); err != nil {
		return err
	}
	s.pindexRoot = s.pindex.tree.Root()
	return nil
}

// Index returns the store's persistent inverted index, or nil when the
// option is disabled.
func (s *Store) Index() *PersistentIndex { return s.pindex }

// LookupKeyword returns the names of objects carrying the keyword using
// the persistent index. It fails when the index is disabled.
func (s *Store) LookupKeyword(keyword string) ([]string, error) {
	if s.pindex == nil {
		return nil, fmt.Errorf("storm: persistent index not enabled")
	}
	return s.pindex.Lookup(keyword)
}

// indexAdd/indexRemove mirror object mutations into the index (no-ops
// when disabled). Callers hold s.mu where required by their own paths;
// the tree synchronizes through the buffer pool.
func (s *Store) indexAdd(obj *Object, oid OID) error {
	if s.pindex == nil {
		return nil
	}
	if err := s.pindex.Add(obj, oid); err != nil {
		return err
	}
	return s.syncIndexRoot()
}

func (s *Store) indexRemove(obj *Object) error {
	if s.pindex == nil {
		return nil
	}
	if err := s.pindex.Remove(obj); err != nil {
		return err
	}
	return s.syncIndexRoot()
}
