// Package liglo implements the Location-Independent GLObal names lookup
// server and its client. A LIGLO server issues BestPeer identities
// (BPIDs), tracks each member's current address and online status, and
// answers lookups so peers can find each other across address changes.
//
// LIGLO is deliberately distributed: any number of servers coexist, each
// responsible only for the uniqueness of its own members' NodeIDs, and a
// capacity-limited server rejects new registrations so the node seeks
// another server (§3.4 of the paper).
package liglo

import (
	"errors"
	"fmt"

	"bestpeer/internal/wire"
)

// Protocol errors.
var (
	ErrBadRequest = errors.New("liglo: malformed request")
	ErrFull       = errors.New("liglo: server at capacity, seek another LIGLO")
	ErrUnknown    = errors.New("liglo: unknown member")
	ErrWrongHome  = errors.New("liglo: BPID belongs to a different server")
)

// PeerInfo pairs a member's identity with its last known address, as in
// the (BPID, IP) pairs LIGLO hands a newly registered node.
type PeerInfo struct {
	ID   wire.BPID
	Addr string
}

// registerReq asks for a BPID. Addr is the registrant's current address.
type registerReq struct {
	Addr string
}

// registerResp carries the issued BPID and an initial direct-peer list.
type registerResp struct {
	Err   string
	ID    wire.BPID
	Peers []PeerInfo
}

// rejoinReq reports a member's current address after reconnecting.
type rejoinReq struct {
	ID   wire.BPID
	Addr string
}

// rejoinResp acknowledges a rejoin.
type rejoinResp struct {
	Err string
}

// lookupReq resolves a member's current address and status.
type lookupReq struct {
	ID wire.BPID
}

// lookupResp answers a lookup. Online reflects the server's best
// knowledge — members are not obliged to announce disconnects, so the
// validator refreshes this periodically.
type lookupResp struct {
	Err    string
	Found  bool
	Addr   string
	Online bool
}

func encodeRegisterReq(r *registerReq) []byte {
	var e wire.Encoder
	e.String(r.Addr)
	return e.Bytes()
}

func decodeRegisterReq(b []byte) (*registerReq, error) {
	d := wire.NewDecoder(b)
	r := &registerReq{Addr: d.String()}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return r, nil
}

func encodeRegisterResp(r *registerResp) []byte {
	var e wire.Encoder
	e.String(r.Err)
	e.BPID(r.ID)
	e.Uvarint(uint64(len(r.Peers)))
	for _, p := range r.Peers {
		e.BPID(p.ID)
		e.String(p.Addr)
	}
	return e.Bytes()
}

func decodeRegisterResp(b []byte) (*registerResp, error) {
	d := wire.NewDecoder(b)
	r := &registerResp{Err: d.String(), ID: d.BPID()}
	n := d.Uvarint()
	if n > uint64(wire.MaxFrameSize) {
		return nil, ErrBadRequest
	}
	for i := uint64(0); i < n; i++ {
		r.Peers = append(r.Peers, PeerInfo{ID: d.BPID(), Addr: d.String()})
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return r, nil
}

func encodeRejoinReq(r *rejoinReq) []byte {
	var e wire.Encoder
	e.BPID(r.ID)
	e.String(r.Addr)
	return e.Bytes()
}

func decodeRejoinReq(b []byte) (*rejoinReq, error) {
	d := wire.NewDecoder(b)
	r := &rejoinReq{ID: d.BPID(), Addr: d.String()}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return r, nil
}

func encodeRejoinResp(r *rejoinResp) []byte {
	var e wire.Encoder
	e.String(r.Err)
	return e.Bytes()
}

func decodeRejoinResp(b []byte) (*rejoinResp, error) {
	d := wire.NewDecoder(b)
	r := &rejoinResp{Err: d.String()}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return r, nil
}

func encodeLookupReq(r *lookupReq) []byte {
	var e wire.Encoder
	e.BPID(r.ID)
	return e.Bytes()
}

func decodeLookupReq(b []byte) (*lookupReq, error) {
	d := wire.NewDecoder(b)
	r := &lookupReq{ID: d.BPID()}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return r, nil
}

func encodeLookupResp(r *lookupResp) []byte {
	var e wire.Encoder
	e.String(r.Err)
	e.Bool(r.Found)
	e.String(r.Addr)
	e.Bool(r.Online)
	return e.Bytes()
}

func decodeLookupResp(b []byte) (*lookupResp, error) {
	d := wire.NewDecoder(b)
	r := &lookupResp{Err: d.String(), Found: d.Bool(), Addr: d.String(), Online: d.Bool()}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return r, nil
}

// deregisterReq announces a member's graceful leave: mark it offline
// immediately instead of waiting for the next probe sweep to notice. The
// BPID stays valid — a deregistered member can Rejoin later.
type deregisterReq struct {
	ID wire.BPID
}

// deregisterResp acknowledges a deregistration.
type deregisterResp struct {
	Err string
}

func encodeDeregisterReq(r *deregisterReq) []byte {
	var e wire.Encoder
	e.BPID(r.ID)
	return e.Bytes()
}

func decodeDeregisterReq(b []byte) (*deregisterReq, error) {
	d := wire.NewDecoder(b)
	r := &deregisterReq{ID: d.BPID()}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return r, nil
}

func encodeDeregisterResp(r *deregisterResp) []byte {
	var e wire.Encoder
	e.String(r.Err)
	return e.Bytes()
}

func decodeDeregisterResp(b []byte) (*deregisterResp, error) {
	d := wire.NewDecoder(b)
	r := &deregisterResp{Err: d.String()}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return r, nil
}

// peersReq asks the server for a fresh list of online members, excluding
// the requester — how a node replenishes its peer set after drops.
type peersReq struct {
	Self wire.BPID // zero if the requester is not a member of this server
	Max  int
}

// peersResp carries the peer list.
type peersResp struct {
	Err   string
	Peers []PeerInfo
}

func encodePeersReq(r *peersReq) []byte {
	var e wire.Encoder
	e.BPID(r.Self)
	e.Varint(int64(r.Max))
	return e.Bytes()
}

func decodePeersReq(b []byte) (*peersReq, error) {
	d := wire.NewDecoder(b)
	r := &peersReq{Self: d.BPID(), Max: int(d.Varint())}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return r, nil
}

func encodePeersResp(r *peersResp) []byte {
	var e wire.Encoder
	e.String(r.Err)
	e.Uvarint(uint64(len(r.Peers)))
	for _, p := range r.Peers {
		e.BPID(p.ID)
		e.String(p.Addr)
	}
	return e.Bytes()
}

func decodePeersResp(b []byte) (*peersResp, error) {
	d := wire.NewDecoder(b)
	r := &peersResp{Err: d.String()}
	n := d.Uvarint()
	if n > uint64(wire.MaxFrameSize) {
		return nil, ErrBadRequest
	}
	for i := uint64(0); i < n; i++ {
		r.Peers = append(r.Peers, PeerInfo{ID: d.BPID(), Addr: d.String()})
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return r, nil
}
