package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Render writes the figure as an aligned text table: one row per distinct
// X value, one column per series. Step-style series (Figures 6/7) render
// each sample row.
func (f *Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure %s — %s\n", f.ID, f.Title)

	// Collect the union of X values.
	xsSet := make(map[float64]bool)
	for _, s := range f.Series {
		for _, p := range s.Points {
			xsSet[p.X] = true
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)

	// Header.
	cols := []string{f.XLabel}
	for _, s := range f.Series {
		cols = append(cols, s.Name)
	}
	widths := make([]int, len(cols))
	rows := make([][]string, 0, len(xs))
	for _, x := range xs {
		row := []string{trimFloat(x)}
		for _, s := range f.Series {
			cell := ""
			for _, p := range s.Points {
				if p.X == x {
					cell = trimFloat(p.Y)
					break
				}
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}
	for i, c := range cols {
		widths[i] = len(c)
	}
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(cols)
	seps := make([]string, len(cols))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, row := range rows {
		line(row)
	}
	fmt.Fprintf(w, "  (y = %s)\n\n", f.YLabel)
}

// trimFloat prints a float without trailing zero noise.
func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// SeriesByName returns the named series, or nil.
func (f *Figure) SeriesByName(name string) *Series {
	for i := range f.Series {
		if f.Series[i].Name == name {
			return &f.Series[i]
		}
	}
	return nil
}

// YAt returns the series' Y value at x (false if absent).
func (s *Series) YAt(x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// Last returns the final point of the series.
func (s *Series) Last() Point {
	if len(s.Points) == 0 {
		return Point{}
	}
	return s.Points[len(s.Points)-1]
}
