// Package transport provides the connectivity layer of the live BestPeer
// stack: a Network abstraction with real TCP and in-process
// implementations, plus a Messenger that delivers wire envelopes between
// named endpoints with cached connections.
//
// Everything above this package (LIGLO, the BestPeer node, the baselines)
// is written against Network, so the same code runs over localhost TCP in
// the daemons and over synchronous pipes in tests and examples.
package transport

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// Network abstracts how endpoints listen and connect. Implementations
// must be safe for concurrent use.
type Network interface {
	// Listen binds the address and returns a listener. The empty address
	// asks the network to choose one (TCP: an ephemeral localhost port).
	Listen(addr string) (net.Listener, error)
	// Dial connects to a listening address.
	Dial(addr string) (net.Conn, error)
}

// TCP is the real-network implementation.
type TCP struct{}

// Listen implements Network. An empty address binds an ephemeral
// localhost port.
func (TCP) Listen(addr string) (net.Listener, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	return net.Listen("tcp", addr)
}

// Dial implements Network.
func (TCP) Dial(addr string) (net.Conn, error) {
	return net.Dial("tcp", addr)
}

// DeadlineDialer is implemented by networks that support bounded dials
// natively; DialTimeout uses it when available.
type DeadlineDialer interface {
	DialDeadline(addr string, timeout time.Duration) (net.Conn, error)
}

// DialDeadline implements DeadlineDialer using the kernel's own timeout.
func (TCP) DialDeadline(addr string, timeout time.Duration) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, timeout)
}

// DialTimeout dials addr on any Network with an upper bound on how long
// the caller waits. Networks that cannot be cancelled (a hung in-process
// dial, a black-holed route) are dialed in a helper goroutine; when the
// timeout fires first, the eventual connection — if one ever appears —
// is closed and discarded.
func DialTimeout(nw Network, addr string, timeout time.Duration) (net.Conn, error) {
	if timeout <= 0 {
		return nw.Dial(addr)
	}
	if d, ok := nw.(DeadlineDialer); ok {
		return d.DialDeadline(addr, timeout)
	}
	type result struct {
		conn net.Conn
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		defer func() { _ = recover() }() // a panicking Network must not kill the process
		conn, err := nw.Dial(addr)
		select {
		case ch <- result{conn, err}:
		default:
			// Unreachable: ch is buffered(1) with this goroutine as the
			// sole sender. The branch keeps the send provably non-blocking.
		}
	}()
	select {
	case r := <-ch:
		return r.conn, r.err
	case <-time.After(timeout):
		go func() {
			defer func() { _ = recover() }() // Close on a broken conn must not kill the process
			if r := <-ch; r.conn != nil {
				_ = r.conn.Close() // discarding a conn the caller gave up on
			}
		}()
		return nil, fmt.Errorf("transport: dial %s: timed out after %v", addr, timeout)
	}
}

// InProc is an in-memory Network: listeners register in a shared hub and
// Dial creates a synchronous net.Pipe to the accept loop. One InProc
// value is one isolated universe.
type InProc struct {
	mu        sync.Mutex
	listeners map[string]*inprocListener
	nextPort  int
}

// NewInProc returns an empty in-memory network.
func NewInProc() *InProc {
	return &InProc{listeners: make(map[string]*inprocListener)}
}

// Listen implements Network.
func (n *InProc) Listen(addr string) (net.Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if addr == "" {
		n.nextPort++
		addr = fmt.Sprintf("inproc-%d", n.nextPort)
	}
	if _, dup := n.listeners[addr]; dup {
		return nil, fmt.Errorf("transport: address %q already in use", addr)
	}
	l := &inprocListener{
		net:    n,
		addr:   addr,
		accept: make(chan net.Conn, 16),
		done:   make(chan struct{}),
	}
	n.listeners[addr] = l
	return l, nil
}

// Dial implements Network.
func (n *InProc) Dial(addr string) (net.Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[addr]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: connection refused: %q", addr)
	}
	client, server := newBufferedPipe(inprocAddr("dialer"), inprocAddr(addr))
	// A full accept backlog intentionally blocks the dialer, exactly like
	// a kernel SYN queue; callers bound the wait via DialTimeout.
	select {
	case l.accept <- server: //bpvet:ignore blockingsend backlog pressure is the contract; DialTimeout bounds it
		return client, nil
	case <-l.done:
		_ = client.Close() // dial failed; nothing to report the error to
		return nil, fmt.Errorf("transport: connection refused: %q", addr)
	}
}

// Drop unregisters an address without closing its listener — used by
// tests to simulate a node whose IP address is gone.
func (n *InProc) Drop(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.listeners, addr)
}

type inprocListener struct {
	net    *InProc
	addr   string
	accept chan net.Conn
	done   chan struct{}
	once   sync.Once
}

func (l *inprocListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *inprocListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.net.mu.Lock()
		if l.net.listeners[l.addr] == l {
			delete(l.net.listeners, l.addr)
		}
		l.net.mu.Unlock()
	})
	return nil
}

func (l *inprocListener) Addr() net.Addr { return inprocAddr(l.addr) }

type inprocAddr string

func (a inprocAddr) Network() string { return "inproc" }
func (a inprocAddr) String() string  { return string(a) }
