package vet

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// droppederr flags discarded errors from Send, Write and Close calls.
// Dropping a transport error silently turns "sends failed" into "no
// answers", which poisons experiment results and hides partitions.
//
// An intentional drop must be written as `_ = x.Send(...)` with an
// explanatory comment on the same line or the line above. Deferred
// calls (`defer f.Close()`) are exempt — cleanup-path convention.
type droppederr struct{}

func (droppederr) Name() string { return "droppederr" }
func (droppederr) Doc() string {
	return "discarded error from Send/Write/Close without an explanatory comment"
}

func (droppederr) Run(p *Pass) {
	for _, file := range p.Files {
		comments := commentLines(p.Fset, file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					if name, ok := droppableCall(p, call); ok {
						p.Reportf(call.Pos(), "%s error result discarded; handle it or assign to _ with an explanatory comment", name)
					}
				}
			case *ast.AssignStmt:
				if s.Tok != token.ASSIGN || len(s.Rhs) != 1 || !allBlank(s.Lhs) {
					return true
				}
				call, ok := s.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				name, ok := droppableCall(p, call)
				if !ok {
					return true
				}
				line := p.Fset.Position(s.Pos()).Line
				if !comments[line] && !comments[line-1] {
					p.Reportf(s.Pos(), "%s error discarded without explanation; add a comment saying why the drop is safe", name)
				}
			}
			return true
		})
	}
}

// droppableCall reports whether call is to a Send/Write/Close function
// or method whose last result is an error.
func droppableCall(p *Pass, call *ast.CallExpr) (string, bool) {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return "", false
	}
	switch name {
	case "Send", "Write", "Close", "WriteAt", "SendTo":
	default:
		return "", false
	}
	sig, ok := p.TypeOf(call.Fun).(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return "", false
	}
	if !isErrorType(sig.Results().At(sig.Results().Len() - 1).Type()) {
		return "", false
	}
	return name, true
}

func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

// commentLines maps line numbers that carry an explanatory comment —
// bpvet directives and test expectations (`// want ...`) do not count.
func commentLines(fset *token.FileSet, file *ast.File) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*"))
			if text == "" || strings.HasPrefix(text, "bpvet:") || strings.HasPrefix(text, "want ") {
				continue
			}
			lines[fset.Position(c.End()).Line] = true
		}
	}
	return lines
}
