// Package faultnet injects faults into a transport.Network so the live
// BestPeer stack can be driven through the failure classes the paper's
// liveness claims depend on: lossy links, slow links, unreachable hosts,
// partitioned address sets and one-way black holes.
//
// A Fabric wraps any inner Network (TCP or InProc). Probabilistic faults
// — dial failure, per-message drop, per-message delay jitter — draw from
// one seeded PRNG, so a test that fixes the seed sees the same fault
// pattern on every run (up to goroutine interleaving of concurrent
// senders; per-destination traffic is serialized by the messenger's send
// workers, which keeps single-flow runs reproducible).
//
// Message granularity: the messenger writes exactly one frame per
// net.Conn Write, so dropping or delaying whole Write calls drops or
// delays whole envelopes without corrupting stream framing. The same
// holds for the LIGLO client/server, whose requests fit one buffered
// flush.
//
// Directional faults need to know who is dialing. Fabric.Host(addr)
// returns a Network view bound to a source address; give each node its
// own view and partitions and black holes become enforceable per edge.
// Dials made on the Fabric itself carry the empty source address.
package faultnet

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"bestpeer/internal/obs"
	"bestpeer/internal/transport"
)

// Config holds the probabilistic fault knobs. All zero means a perfect
// network; install with Fabric.SetConfig at any time.
type Config struct {
	// DialFailProb is the probability a dial fails outright.
	DialFailProb float64
	// DropProb is the probability one message (one conn Write) is
	// silently discarded while the connection stays healthy.
	DropProb float64
	// Delay is added to every message before it is written.
	Delay time.Duration
	// Jitter adds a uniform random extra delay in [0, Jitter).
	Jitter time.Duration
}

// Stats counts injected faults.
type Stats struct {
	DialsAttempted  uint64
	DialsFailed     uint64 // probabilistic dial failures
	DialsRefused    uint64 // kills and partitions
	MessagesDropped uint64 // probabilistic drops plus black holes
	MessagesDelayed uint64
	ConnsSevered    uint64 // live connections cut by Kill/Partition
}

type edge struct{ src, dst string }

type partition struct {
	a, b map[string]bool
}

func (p partition) cuts(src, dst string) bool {
	return (p.a[src] && p.b[dst]) || (p.b[src] && p.a[dst])
}

// Fabric is a fault-injecting wrapper around an inner Network.
type Fabric struct {
	inner transport.Network

	mu         sync.Mutex
	rng        *rand.Rand
	cfg        Config
	killed     map[string]bool
	hungDials  map[string]chan struct{}
	holes      map[edge]bool
	partitions []partition
	conns      map[*faultConn]struct{}

	// Metric handles; the fabric publishes injected-fault counts under
	// the bestpeer_faultnet_* families.
	dialsAttempted  *obs.Counter
	dialsFailed     *obs.Counter
	dialsRefused    *obs.Counter
	messagesDropped *obs.Counter
	messagesDelayed *obs.Counter
	connsSevered    *obs.Counter
}

// New wraps inner with a fault fabric whose probabilistic faults are
// driven by the given seed. Fault counters land in a private registry;
// use NewWithRegistry to surface them on a shared one.
func New(inner transport.Network, seed int64) *Fabric {
	return NewWithRegistry(inner, seed, obs.NewRegistry())
}

// NewWithRegistry is New with the fabric's fault counters registered on
// reg, so chaos experiments can scrape injected-fault counts alongside
// the system's own metrics.
func NewWithRegistry(inner transport.Network, seed int64, reg *obs.Registry) *Fabric {
	return &Fabric{
		inner:     inner,
		rng:       rand.New(rand.NewSource(seed)),
		killed:    make(map[string]bool),
		hungDials: make(map[string]chan struct{}),
		holes:     make(map[edge]bool),
		conns:     make(map[*faultConn]struct{}),
		dialsAttempted: reg.Counter("bestpeer_faultnet_dials_attempted_total",
			"Dials that entered the fault fabric."),
		dialsFailed: reg.Counter("bestpeer_faultnet_dials_failed_total",
			"Probabilistic dial failures injected."),
		dialsRefused: reg.Counter("bestpeer_faultnet_dials_refused_total",
			"Dials refused by kills and partitions."),
		messagesDropped: reg.Counter("bestpeer_faultnet_messages_dropped_total",
			"Messages discarded by probabilistic drops and black holes."),
		messagesDelayed: reg.Counter("bestpeer_faultnet_messages_delayed_total",
			"Messages delayed before delivery."),
		connsSevered: reg.Counter("bestpeer_faultnet_conns_severed_total",
			"Live connections cut by kills and partitions."),
	}
}

// SetConfig installs the probabilistic fault knobs.
func (f *Fabric) SetConfig(cfg Config) {
	f.mu.Lock()
	f.cfg = cfg
	f.mu.Unlock()
}

// Stats returns a snapshot of the fault counters.
func (f *Fabric) Stats() Stats {
	return Stats{
		DialsAttempted:  f.dialsAttempted.Value(),
		DialsFailed:     f.dialsFailed.Value(),
		DialsRefused:    f.dialsRefused.Value(),
		MessagesDropped: f.messagesDropped.Value(),
		MessagesDelayed: f.messagesDelayed.Value(),
		ConnsSevered:    f.connsSevered.Value(),
	}
}

// Host returns a Network view whose dials carry src as the source
// address, so directional rules (partitions, black holes) apply to the
// traffic this host originates.
func (f *Fabric) Host(src string) transport.Network {
	return &hostNet{f: f, src: src}
}

type hostNet struct {
	f   *Fabric
	src string
}

func (h *hostNet) Listen(addr string) (net.Listener, error) { return h.f.inner.Listen(addr) }
func (h *hostNet) Dial(addr string) (net.Conn, error)       { return h.f.dialFrom(h.src, addr) }

// Listen implements transport.Network, delegating to the inner network.
func (f *Fabric) Listen(addr string) (net.Listener, error) { return f.inner.Listen(addr) }

// Dial implements transport.Network with an anonymous source address.
func (f *Fabric) Dial(addr string) (net.Conn, error) { return f.dialFrom("", addr) }

// Kill makes addr unreachable in both directions: dials to or from it
// fail and its live connections are severed. The listener itself is
// untouched — the process is alive, the network link is not.
func (f *Fabric) Kill(addr string) {
	f.mu.Lock()
	f.killed[addr] = true
	victims := f.collectLocked(func(c *faultConn) bool { return c.src == addr || c.dst == addr })
	f.mu.Unlock()
	f.sever(victims)
}

// Heal reverses Kill.
func (f *Fabric) Heal(addr string) {
	f.mu.Lock()
	delete(f.killed, addr)
	f.mu.Unlock()
}

// Partition makes every address in a mutually unreachable with every
// address in b: crossing dials fail and crossing live connections are
// severed. Multiple partitions stack.
func (f *Fabric) Partition(a, b []string) {
	p := partition{a: make(map[string]bool, len(a)), b: make(map[string]bool, len(b))}
	for _, s := range a {
		p.a[s] = true
	}
	for _, s := range b {
		p.b[s] = true
	}
	f.mu.Lock()
	f.partitions = append(f.partitions, p)
	victims := f.collectLocked(func(c *faultConn) bool { return p.cuts(c.src, c.dst) })
	f.mu.Unlock()
	f.sever(victims)
}

// HealPartitions removes every partition.
func (f *Fabric) HealPartitions() {
	f.mu.Lock()
	f.partitions = nil
	f.mu.Unlock()
}

// BlackHole silently discards messages flowing src -> dst while the
// connection itself stays up — the receiver simply never hears from the
// sender. Use "*" as src to swallow traffic to dst from every source.
// Dials still succeed: a black hole is invisible to the sender.
func (f *Fabric) BlackHole(src, dst string) {
	f.mu.Lock()
	f.holes[edge{src, dst}] = true
	f.mu.Unlock()
}

// HealBlackHole removes a black hole installed with the same arguments.
func (f *Fabric) HealBlackHole(src, dst string) {
	f.mu.Lock()
	delete(f.holes, edge{src, dst})
	f.mu.Unlock()
}

// HangDial makes dials to addr block until HealDial — the classic
// half-dead host that neither accepts nor refuses. Callers survive via
// their own dial timeouts.
func (f *Fabric) HangDial(addr string) {
	f.mu.Lock()
	if _, ok := f.hungDials[addr]; !ok {
		f.hungDials[addr] = make(chan struct{})
	}
	f.mu.Unlock()
}

// HealDial releases dialers blocked by HangDial.
func (f *Fabric) HealDial(addr string) {
	f.mu.Lock()
	if ch, ok := f.hungDials[addr]; ok {
		close(ch)
		delete(f.hungDials, addr)
	}
	f.mu.Unlock()
}

// collectLocked gathers tracked connections matching pred. Caller holds
// f.mu; severing happens outside the lock.
func (f *Fabric) collectLocked(pred func(*faultConn) bool) []*faultConn {
	var out []*faultConn
	for c := range f.conns {
		if pred(c) {
			out = append(out, c)
		}
	}
	return out
}

func (f *Fabric) sever(conns []*faultConn) {
	for _, c := range conns {
		f.connsSevered.Inc()
		_ = c.Close() // severing is the point; the error is uninteresting
	}
}

// blockedLocked reports whether traffic src -> dst is administratively
// cut. Caller holds f.mu.
func (f *Fabric) blockedLocked(src, dst string) bool {
	if f.killed[src] || f.killed[dst] {
		return true
	}
	for _, p := range f.partitions {
		if p.cuts(src, dst) {
			return true
		}
	}
	return false
}

func (f *Fabric) dialFrom(src, dst string) (net.Conn, error) {
	f.dialsAttempted.Inc()
	f.mu.Lock()
	hang := f.hungDials[dst]
	blocked := f.blockedLocked(src, dst)
	failRoll := f.cfg.DialFailProb > 0 && f.rng.Float64() < f.cfg.DialFailProb
	f.mu.Unlock()

	if hang != nil {
		<-hang
		// Re-check the rules as they stand after the heal.
		f.mu.Lock()
		blocked = f.blockedLocked(src, dst)
		f.mu.Unlock()
	}
	if blocked {
		f.dialsRefused.Inc()
		return nil, fmt.Errorf("faultnet: %s -> %s unreachable (killed or partitioned)", src, dst)
	}
	if failRoll {
		f.dialsFailed.Inc()
		return nil, fmt.Errorf("faultnet: injected dial failure %s -> %s", src, dst)
	}
	conn, err := f.inner.Dial(dst)
	if err != nil {
		return nil, err
	}
	fc := &faultConn{Conn: conn, f: f, src: src, dst: dst}
	f.mu.Lock()
	f.conns[fc] = struct{}{}
	f.mu.Unlock()
	return fc, nil
}

// faultConn applies per-message faults on the write path. Only dialed
// connections are wrapped; in the messenger-based stack every protocol
// message travels over a dialed connection's writes (accepted
// connections are read-only), so write-side faults cover all sends.
type faultConn struct {
	net.Conn
	f        *Fabric
	src, dst string
	once     sync.Once
}

func (c *faultConn) Write(p []byte) (int, error) {
	f := c.f
	f.mu.Lock()
	blocked := f.blockedLocked(c.src, c.dst)
	hole := f.holes[edge{c.src, c.dst}] || f.holes[edge{"*", c.dst}]
	drop := f.cfg.DropProb > 0 && f.rng.Float64() < f.cfg.DropProb
	delay := f.cfg.Delay
	if f.cfg.Jitter > 0 {
		delay += time.Duration(f.rng.Int63n(int64(f.cfg.Jitter)))
	}
	f.mu.Unlock()

	if blocked {
		return 0, fmt.Errorf("faultnet: %s -> %s severed", c.src, c.dst)
	}
	if delay > 0 {
		f.messagesDelayed.Inc()
		time.Sleep(delay)
	}
	if hole || drop {
		// The sender believes the write succeeded; the bytes are gone.
		f.messagesDropped.Inc()
		return len(p), nil
	}
	return c.Conn.Write(p)
}

func (c *faultConn) Close() error {
	c.once.Do(func() {
		c.f.mu.Lock()
		delete(c.f.conns, c)
		c.f.mu.Unlock()
	})
	return c.Conn.Close()
}
