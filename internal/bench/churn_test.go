package bench

import (
	"testing"
	"time"
)

// testChurnParams scales the committed-figure configuration down to a
// tier-1 budget (~0.2s) while keeping the flood near its coverage edge,
// where erosion is visible.
func testChurnParams() ChurnParams {
	p := DefaultChurnParams()
	p.Nodes = 2000
	p.Horizon = 90 * time.Second
	p.BurstAt = 45 * time.Second
	p.Bases = 8
	p.Keywords = 4
	p.HoldersPerKeyword = 20
	return p
}

func TestChurnSchemes(t *testing.T) {
	res := Churn(testChurnParams(), 1)
	bpr := res.SchemeByName("bpr")
	bps := res.SchemeByName("bps")
	flood := res.SchemeByName("flood")
	if bpr == nil || bps == nil || flood == nil {
		t.Fatalf("missing scheme in %+v", res)
	}
	for _, r := range res.Schemes {
		t.Logf("%s: mean=%.3f final=%.3f postmin=%.3f conv=%d msgs=%d repairs=%d hints=%d departs=%d cache=%d/%d",
			r.Scheme, r.MeanRecall, r.FinalRecall, r.PostBurstMinRecall, r.RepairConvergenceRounds,
			r.Msgs, r.Repairs, r.HintAdopts, r.DepartsDelivered, r.CacheHits, r.CacheLookups)
	}

	// The flood is the recall reference; it must itself be healthy.
	if flood.MeanRecall < 0.95 {
		t.Fatalf("flood mean recall %.3f; the reference itself is broken", flood.MeanRecall)
	}
	// The headline acceptance bound: reconfigurable BestPeer under churn
	// keeps recall within 5 points of exhaustive flooding.
	if bpr.MeanRecall < flood.MeanRecall-0.05 {
		t.Errorf("bpr mean recall %.3f < flood %.3f - 0.05", bpr.MeanRecall, flood.MeanRecall)
	}
	if bpr.FinalRecall < flood.FinalRecall-0.05 {
		t.Errorf("bpr final recall %.3f < flood %.3f - 0.05", bpr.FinalRecall, flood.FinalRecall)
	}
	// ...while spending less traffic (answer cache + selective routing).
	if bpr.Msgs >= flood.Msgs {
		t.Errorf("bpr sent %d msgs, flood %d; qroute saved nothing", bpr.Msgs, flood.Msgs)
	}
	// Repair must converge after the correlated burst.
	if bpr.RepairConvergenceRounds < 0 {
		t.Errorf("bpr never reconverged after the burst")
	}
	// The lifecycle machinery actually ran: graceful leaves delivered
	// Depart notices, hints seeded repairs, the cache served hits.
	if bpr.DepartsDelivered == 0 || bpr.HintAdopts == 0 || bpr.Repairs == 0 || bpr.CacheHits == 0 {
		t.Errorf("lifecycle counters flat: %+v", *bpr)
	}
	// The static scheme neither probes nor backfills...
	if bps.Repairs != 0 || bps.HintAdopts != 0 {
		t.Errorf("bps repaired: %+v", *bps)
	}
	// ...and pays for it: its post-burst trough is no better than the
	// repaired flood's.
	if bps.PostBurstMinRecall > flood.PostBurstMinRecall {
		t.Errorf("bps post-burst min %.3f better than repaired flood %.3f",
			bps.PostBurstMinRecall, flood.PostBurstMinRecall)
	}
}

func TestChurnDeterministic(t *testing.T) {
	p := testChurnParams()
	p.Nodes = 500
	p.Horizon = 45 * time.Second
	p.BurstAt = 24 * time.Second
	a := Churn(p, 7)
	b := Churn(p, 7)
	for i := range a.Schemes {
		ra, rb := a.Schemes[i], b.Schemes[i]
		if ra.Msgs != rb.Msgs || ra.MeanRecall != rb.MeanRecall || len(ra.Samples) != len(rb.Samples) {
			t.Fatalf("scheme %s not reproducible: %+v vs %+v", ra.Scheme, ra, rb)
		}
		for j := range ra.Samples {
			if ra.Samples[j] != rb.Samples[j] {
				t.Fatalf("%s sample %d differs: %+v vs %+v", ra.Scheme, j, ra.Samples[j], rb.Samples[j])
			}
		}
	}
}
