// Package workload generates the experimental data of §4.2: each node
// stores a set of fixed-size objects (1000 × 1 KB in the paper) tagged
// with keywords, and queries are keywords drawn from the vocabulary. The
// same Spec drives both the live system (Populate fills a StorM store)
// and the simulator (MatchCount answers "how many hits at node i"
// analytically, guaranteed to agree with the generated objects).
package workload

import (
	"fmt"
	"math/rand"

	"bestpeer/internal/storm"
)

// Spec describes one experiment's data.
type Spec struct {
	// ObjectsPerNode is how many objects each node shares (paper: 1000).
	ObjectsPerNode int
	// ObjectSize is each object's payload size in bytes (paper: 1 KB).
	ObjectSize int
	// Vocabulary is the number of distinct keywords objects draw from.
	Vocabulary int
	// Seed makes generation deterministic.
	Seed int64

	// PlantedKeyword, when non-empty, is a query term that matches only
	// at Holders — the Fig. 8 setup where "answers come from only a few
	// nodes". Each holder has PlantedHits matching objects.
	PlantedKeyword string
	Holders        []int
	PlantedHits    int
}

// Default returns the paper's baseline workload: 1000 × 1 KB objects per
// node over a 100-keyword vocabulary.
func Default(seed int64) *Spec {
	return &Spec{
		ObjectsPerNode: 1000,
		ObjectSize:     1024,
		Vocabulary:     100,
		Seed:           seed,
	}
}

// Keyword returns the i-th vocabulary term.
func (s *Spec) Keyword(i int) string { return fmt.Sprintf("kw%d", i) }

// keywordIndex deterministically assigns a vocabulary index to object
// (node, i). A small affine hash keeps the distribution even without any
// allocation.
func (s *Spec) keywordIndex(node, i int) int {
	h := uint64(s.Seed)*0x9E3779B97F4A7C15 + uint64(node)*0xBF58476D1CE4E5B9 + uint64(i)*0x94D049BB133111EB
	h ^= h >> 31
	h *= 0xD6E8FEB86659FD93
	h ^= h >> 27
	return int(h % uint64(s.Vocabulary))
}

func (s *Spec) isHolder(node int) bool {
	for _, h := range s.Holders {
		if h == node {
			return true
		}
	}
	return false
}

// Objects generates node's object set. Object names never contain
// vocabulary terms, so name-substring matching cannot add surprise hits.
func (s *Spec) Objects(node int) []*storm.Object {
	out := make([]*storm.Object, 0, s.ObjectsPerNode)
	planted := 0
	if s.PlantedKeyword != "" && s.isHolder(node) {
		planted = s.PlantedHits
	}
	rng := rand.New(rand.NewSource(s.Seed ^ int64(node)*7919))
	for i := 0; i < s.ObjectsPerNode; i++ {
		var kw string
		if i < planted {
			kw = s.PlantedKeyword
		} else {
			kw = s.Keyword(s.keywordIndex(node, i))
		}
		data := make([]byte, s.ObjectSize)
		rng.Read(data)
		out = append(out, &storm.Object{
			Name:     fmt.Sprintf("n%d-object-%04d", node, i),
			Keywords: []string{kw},
			Data:     data,
		})
	}
	return out
}

// Populate inserts node's object set into a store.
func (s *Spec) Populate(node int, st *storm.Store) error {
	for _, obj := range s.Objects(node) {
		if _, err := st.Put(obj); err != nil {
			return fmt.Errorf("workload: populate node %d: %w", node, err)
		}
	}
	return nil
}

// MatchCount returns how many of node's objects match the query, without
// materializing them. It agrees exactly with running store.Match over the
// generated objects.
func (s *Spec) MatchCount(node int, query string) int {
	planted := 0
	if s.PlantedKeyword != "" && s.isHolder(node) {
		planted = s.PlantedHits
	}
	if query == s.PlantedKeyword && s.PlantedKeyword != "" {
		return planted
	}
	count := 0
	for i := planted; i < s.ObjectsPerNode; i++ {
		if s.Keyword(s.keywordIndex(node, i)) == query {
			count++
		}
	}
	return count
}

// TotalMatches sums MatchCount over nodes [0, n).
func (s *Spec) TotalMatches(n int, query string) int {
	total := 0
	for node := 0; node < n; node++ {
		total += s.MatchCount(node, query)
	}
	return total
}

// UniformQueries draws n queries uniformly from the vocabulary.
func (s *Spec) UniformQueries(seed int64, n int) []string {
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, n)
	for i := range out {
		out[i] = s.Keyword(rng.Intn(s.Vocabulary))
	}
	return out
}

// ZipfQueries draws n queries from a Zipf distribution over the
// vocabulary — popular terms dominate, as in real P2P query logs. skew
// must be > 1; larger is more skewed.
func (s *Spec) ZipfQueries(seed int64, n int, skew float64) []string {
	if skew <= 1 {
		skew = 1.1
	}
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, skew, 1, uint64(s.Vocabulary-1))
	out := make([]string, n)
	for i := range out {
		out[i] = s.Keyword(int(z.Uint64()))
	}
	return out
}
