package workload

import (
	"testing"
	"time"
)

func TestExponentialSessionsDeterministicAndOrdered(t *testing.T) {
	gen := func() ChurnTrace {
		return ExponentialSessions(50, time.Hour, 10*time.Minute, 5*time.Minute, 0.5, 7)
	}
	a, b := gen(), gen()
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i].At < a[i-1].At {
			t.Fatalf("trace out of order at %d", i)
		}
	}
	// Every event lands inside the horizon.
	for _, e := range a {
		if e.At >= time.Hour {
			t.Fatalf("event past horizon: %+v", e)
		}
	}
}

func TestExponentialSessionsAlternates(t *testing.T) {
	tr := ExponentialSessions(10, 2*time.Hour, 10*time.Minute, 5*time.Minute, 0.5, 3)
	// Per node: first event is a departure; joins and departures alternate.
	state := make(map[int]bool) // true = online
	for i := range state {
		state[i] = true
	}
	online := func(n int) bool {
		up, seen := state[n]
		return !seen || up // nodes start online
	}
	leaves, crashes := 0, 0
	for _, e := range tr {
		switch e.Op {
		case OpJoin:
			if online(e.Node) {
				t.Fatalf("join while online: %+v", e)
			}
			state[e.Node] = true
		case OpLeave, OpCrash:
			if !online(e.Node) {
				t.Fatalf("departure while offline: %+v", e)
			}
			state[e.Node] = false
			if e.Op == OpLeave {
				leaves++
			} else {
				crashes++
			}
		}
	}
	if leaves == 0 || crashes == 0 {
		t.Fatalf("gracefulFrac 0.5 produced leaves=%d crashes=%d", leaves, crashes)
	}
}

func TestFlashCrowdWindowAndNodes(t *testing.T) {
	tr := FlashCrowd(100, 20, time.Minute, 10*time.Second, 11)
	if len(tr) != 20 {
		t.Fatalf("events = %d, want 20", len(tr))
	}
	seen := make(map[int]bool)
	for _, e := range tr {
		if e.Op != OpJoin {
			t.Fatalf("non-join in flash crowd: %+v", e)
		}
		if e.At < time.Minute || e.At >= time.Minute+10*time.Second {
			t.Fatalf("event outside window: %+v", e)
		}
		if e.Node < 100 || e.Node >= 120 || seen[e.Node] {
			t.Fatalf("bad or duplicate node: %+v", e)
		}
		seen[e.Node] = true
	}
}

func TestCorrelatedFailureBurst(t *testing.T) {
	tr := CorrelatedFailureBurst(100, 0.25, 30*time.Second, 5)
	if len(tr) != 25 {
		t.Fatalf("victims = %d, want 25", len(tr))
	}
	seen := make(map[int]bool)
	for _, e := range tr {
		if e.Op != OpCrash || e.At != 30*time.Second {
			t.Fatalf("bad burst event: %+v", e)
		}
		if seen[e.Node] {
			t.Fatalf("node crashed twice: %+v", e)
		}
		seen[e.Node] = true
	}
	if len(CorrelatedFailureBurst(100, 0, time.Second, 5)) != 0 {
		t.Fatal("zero fraction should produce no events")
	}
}

func TestMergeOrdersDeterministically(t *testing.T) {
	a := ChurnTrace{{At: 2 * time.Second, Node: 1, Op: OpCrash}}
	b := ChurnTrace{{At: time.Second, Node: 2, Op: OpJoin}, {At: 2 * time.Second, Node: 0, Op: OpLeave}}
	m1 := Merge(a, b)
	m2 := Merge(b, a)
	if len(m1) != 3 || len(m2) != 3 {
		t.Fatalf("merge lengths %d, %d", len(m1), len(m2))
	}
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatalf("merge order depends on input order at %d", i)
		}
	}
	if m1[0].Node != 2 || m1[1].Node != 0 || m1[2].Node != 1 {
		t.Fatalf("merge order wrong: %+v", m1)
	}
}
