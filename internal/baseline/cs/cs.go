// Package cs implements the client/server comparators of the paper's
// evaluation (§4): a network of nodes where one process assumes the role
// of service consumer and the others are providers. Unlike BestPeer,
// answers travel back along the query path, hop by hop — the structural
// property that makes CS degrade on deep topologies. The base node
// dispatches either sequentially (single-thread CS, "SCS") or in parallel
// (multi-thread CS, "MCS").
//
// The paper's second CS implementation is used: a server acting as a
// client relays any answers from its own servers upstream immediately,
// without consolidating.
package cs

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"bestpeer/internal/storm"
	"bestpeer/internal/transport"
	"bestpeer/internal/wire"
)

// ErrClosed reports use after Close.
var ErrClosed = errors.New("cs: node closed")

// Answer is one result received at the base.
type Answer struct {
	// Origin is the address of the node that produced the answer.
	Origin string
	// Name is the matched object.
	Name string
	// Data is the object content.
	Data []byte
	// At is when the answer arrived at the base, from query start.
	At time.Duration
}

// Config configures a CS node.
type Config struct {
	// Network supplies connectivity.
	Network transport.Network
	// ListenAddr is the address to bind.
	ListenAddr string
	// Store holds the node's sharable objects.
	Store *storm.Store
	// SingleThread serializes all server-side work through one worker,
	// modelling the paper's single-thread CS server.
	SingleThread bool
}

// queryMsg is the KindCSQuery payload.
type queryMsg struct {
	Query string
	Base  string // for bookkeeping only; answers travel the path
}

// answerMsg is the KindCSAnswer payload.
type answerMsg struct {
	Origin string
	Name   string
	Data   []byte
}

func encodeQuery(q *queryMsg) []byte {
	var e wire.Encoder
	e.String(q.Query)
	e.String(q.Base)
	return e.Bytes()
}

func decodeQuery(b []byte) (*queryMsg, error) {
	d := wire.NewDecoder(b)
	q := &queryMsg{Query: d.String(), Base: d.String()}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return q, nil
}

func encodeAnswer(a *answerMsg) []byte {
	var e wire.Encoder
	e.String(a.Origin)
	e.String(a.Name)
	e.Bytes2(a.Data)
	return e.Bytes()
}

func decodeAnswer(b []byte) (*answerMsg, error) {
	d := wire.NewDecoder(b)
	a := &answerMsg{Origin: d.String(), Name: d.String(), Data: d.Bytes2()}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return a, nil
}

type queryState struct {
	mu      sync.Mutex
	start   time.Time
	answers []Answer
	target  int
	done    chan struct{}
	closed  bool
}

// Node is one CS participant. It acts as a server for queries arriving
// from upstream and as a client toward its own servers (downstream
// peers), relaying their answers upstream.
type Node struct {
	cfg   Config
	store *storm.Store
	msgr  *transport.Messenger

	mu     sync.Mutex
	peers  []string // downstream servers
	routes map[wire.MsgID]string
	seen   map[wire.MsgID]bool
	closed bool

	queries sync.Map // qid -> *queryState

	// work serializes server-side handling in single-thread mode.
	work chan func()
	wg   sync.WaitGroup

	// Stats.
	Relayed  uint64
	Executed uint64
	// SendsFailed counts envelopes the transport refused or dropped
	// (unreachable, suspect or overloaded peers). The fan-out continues
	// regardless; the counter makes the loss visible to benchmarks.
	SendsFailed uint64
}

// NewNode starts a CS node.
func NewNode(cfg Config) (*Node, error) {
	if cfg.Store == nil || cfg.Network == nil {
		return nil, errors.New("cs: Network and Store are required")
	}
	n := &Node{
		cfg:    cfg,
		store:  cfg.Store,
		routes: make(map[wire.MsgID]string),
		seen:   make(map[wire.MsgID]bool),
	}
	if cfg.SingleThread {
		n.work = make(chan func(), 1024)
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			// One poisoned work item must not kill the whole server loop.
			defer func() { _ = recover() }()
			for fn := range n.work {
				fn()
			}
		}()
	}
	m, err := transport.NewMessenger(cfg.Network, cfg.ListenAddr, n.handle)
	if err != nil {
		return nil, err
	}
	n.msgr = m
	return n, nil
}

// Addr returns the node's address.
func (n *Node) Addr() string { return n.msgr.Addr() }

// SetPeers sets the node's downstream servers.
func (n *Node) SetPeers(addrs []string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers = append([]string(nil), addrs...)
}

// Close shuts the node down.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()
	err := n.msgr.Close()
	if n.work != nil {
		close(n.work)
		n.wg.Wait()
	}
	return err
}

func (n *Node) isClosed() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.closed
}

// dispatch runs fn on the single worker in single-thread mode, inline
// otherwise (the messenger already gives one goroutine per connection).
func (n *Node) dispatch(fn func()) {
	if n.work == nil {
		fn()
		return
	}
	defer func() {
		// A closed work channel during shutdown is fine; drop the task.
		recover() //nolint:errcheck
	}()
	n.work <- fn
}

func (n *Node) handle(env *wire.Envelope) {
	if n.isClosed() {
		return
	}
	switch env.Kind {
	case wire.KindCSQuery:
		n.dispatch(func() { n.handleQuery(env) })
	case wire.KindCSAnswer:
		n.dispatch(func() { n.handleAnswer(env) })
	}
}

// handleQuery serves a query: execute locally, answer upstream, forward
// downstream, and remember the upstream hop so downstream answers can be
// relayed back along the path.
func (n *Node) handleQuery(env *wire.Envelope) {
	if env.Expired() {
		return // TTL exhausted on arrival
	}
	q, err := decodeQuery(env.Body)
	if err != nil {
		return
	}
	n.mu.Lock()
	if n.seen[env.ID] {
		n.mu.Unlock()
		return
	}
	n.seen[env.ID] = true
	n.routes[env.ID] = env.From
	peers := append([]string(nil), n.peers...)
	n.mu.Unlock()

	// Local matches go upstream immediately.
	matches, err := n.store.Match(q.Query)
	n.mu.Lock()
	n.Executed++
	n.mu.Unlock()
	if err == nil {
		for _, obj := range matches {
			n.sendAnswer(env.From, env.ID, &answerMsg{
				Origin: n.Addr(), Name: obj.Name, Data: obj.Data,
			})
		}
	}
	// Forward to downstream servers (skip the upstream hop); copies that
	// would arrive expired are not sent.
	if env.TTL > 1 {
		for _, p := range peers {
			if p == env.From {
				continue
			}
			n.sendEnv(p, env.Forwarded(n.Addr(), p))
		}
	}
}

// handleAnswer relays a downstream answer one hop closer to the base, or
// delivers it if this node issued the query.
func (n *Node) handleAnswer(env *wire.Envelope) {
	a, err := decodeAnswer(env.Body)
	if err != nil {
		return
	}
	if v, ok := n.queries.Load(env.ID); ok {
		qs := v.(*queryState)
		qs.mu.Lock()
		if !qs.closed {
			qs.answers = append(qs.answers, Answer{
				Origin: a.Origin, Name: a.Name, Data: a.Data, At: time.Since(qs.start),
			})
			if qs.target > 0 && len(qs.answers) >= qs.target {
				qs.closed = true
				close(qs.done)
			}
		}
		qs.mu.Unlock()
		return
	}
	n.mu.Lock()
	up, ok := n.routes[env.ID]
	if ok {
		n.Relayed++
	}
	n.mu.Unlock()
	if ok {
		n.sendAnswer(up, env.ID, a)
	}
}

func (n *Node) sendAnswer(to string, id wire.MsgID, a *answerMsg) {
	n.sendEnv(to, &wire.Envelope{
		Kind: wire.KindCSAnswer, ID: id, TTL: 1,
		From: n.Addr(), To: to, Body: encodeAnswer(a),
	})
}

func (n *Node) sendEnv(to string, env *wire.Envelope) {
	if err := n.msgr.Send(to, env); err != nil {
		// Unreachable peers must not break the fan-out, but the loss is
		// counted so a benchmark run can tell lossless from lossy.
		n.mu.Lock()
		n.SendsFailed++
		n.mu.Unlock()
	}
}

// QueryOptions tunes a CS query.
type QueryOptions struct {
	// TTL bounds forwarding depth. Zero defaults to 7.
	TTL uint8
	// Timeout is the collection window. Zero defaults to one second.
	Timeout time.Duration
	// WaitAnswers stops early after this many answers.
	WaitAnswers int
	// Sequential contacts servers one at a time, waiting for each
	// server's direct answers before moving on — single-thread CS
	// client behaviour.
	Sequential bool
	// PerPeerWait is how long a sequential client waits on each server.
	// Zero defaults to Timeout divided by the number of servers.
	PerPeerWait time.Duration
}

// Query executes a keyword query from this node as the base.
func (n *Node) Query(query string, opts QueryOptions) ([]Answer, error) {
	if n.isClosed() {
		return nil, ErrClosed
	}
	ttl := opts.TTL
	if ttl == 0 {
		ttl = 7
	}
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = time.Second
	}
	qid := wire.NewMsgID()
	qs := &queryState{start: time.Now(), target: opts.WaitAnswers, done: make(chan struct{})}
	n.queries.Store(qid, qs)
	defer n.queries.Delete(qid)

	n.mu.Lock()
	n.seen[qid] = true
	peers := append([]string(nil), n.peers...)
	n.mu.Unlock()

	// The base's own store participates.
	if matches, err := n.store.Match(query); err == nil {
		qs.mu.Lock()
		for _, obj := range matches {
			qs.answers = append(qs.answers, Answer{
				Origin: n.Addr(), Name: obj.Name, Data: obj.Data, At: time.Since(qs.start),
			})
		}
		qs.mu.Unlock()
	}

	body := encodeQuery(&queryMsg{Query: query, Base: n.Addr()})
	send := func(p string) {
		n.sendEnv(p, &wire.Envelope{
			Kind: wire.KindCSQuery, ID: qid, TTL: ttl, Hops: 1,
			From: n.Addr(), To: p, Body: body,
		})
	}

	if opts.Sequential {
		per := opts.PerPeerWait
		if per <= 0 && len(peers) > 0 {
			per = timeout / time.Duration(len(peers))
		}
		for _, p := range peers {
			send(p)
			// One connection at a time: wait out this server's window
			// before contacting the next.
			select {
			case <-qs.done:
			case <-time.After(per):
			}
		}
	} else {
		for _, p := range peers {
			send(p)
		}
		select {
		case <-qs.done:
		case <-time.After(timeout):
		}
	}

	qs.mu.Lock()
	out := append([]Answer(nil), qs.answers...)
	qs.closed = true
	qs.mu.Unlock()
	return out, nil
}

// String describes the node.
func (n *Node) String() string {
	mode := "multi-thread"
	if n.cfg.SingleThread {
		mode = "single-thread"
	}
	return fmt.Sprintf("cs(%s, %s)", n.Addr(), mode)
}
