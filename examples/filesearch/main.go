// Filesearch: a BestPeer network over real TCP with a LIGLO server.
//
// It starts one LIGLO server and five nodes on localhost TCP ports. Each
// node registers (receiving a BPID and its initial peers from LIGLO),
// shares a small music library, and then one node searches the network.
// Finally a node "moves": it comes back on a new port, rejoins through
// LIGLO, and its peers find it at the new address — the paper's
// location-independent identity in action.
//
// Run with: go run ./examples/filesearch
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"bestpeer/internal/agent"
	"bestpeer/internal/core"
	"bestpeer/internal/liglo"
	"bestpeer/internal/storm"
	"bestpeer/internal/transport"
)

var library = map[string][]string{
	"alice": {"kind-of-blue.mp3:jazz", "giant-steps.mp3:jazz"},
	"bob":   {"ride-of-the-valkyries.mp3:classical"},
	"carol": {"a-love-supreme.mp3:jazz", "appalachian-spring.mp3:classical"},
	"dave":  {"take-five.mp3:jazz"},
	"erin":  {"the-planets.mp3:classical"},
}

func main() {
	dir, err := os.MkdirTemp("", "bestpeer-filesearch")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	tcp := transport.TCP{}
	srv, err := liglo.NewServer(tcp, "127.0.0.1:0", liglo.ServerConfig{InitialPeers: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("liglo server on %s\n", srv.Addr())

	start := func(name string) *core.Node {
		store, err := storm.Open(filepath.Join(dir, name+".storm"), storm.Options{})
		if err != nil {
			log.Fatal(err)
		}
		for _, entry := range library[name] {
			var file, genre string
			fmt.Sscanf(entry, "%s", &file)
			for i := range entry {
				if entry[i] == ':' {
					file, genre = entry[:i], entry[i+1:]
				}
			}
			store.Put(&storm.Object{Name: file, Keywords: []string{genre},
				Data: []byte("contents of " + file)})
		}
		node, err := core.NewNode(core.Config{
			Network: tcp, ListenAddr: "127.0.0.1:0", Store: store, MaxPeers: 4,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := node.Join([]string{srv.Addr()}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5s joined as %v with %d peers\n", name, node.ID(), len(node.Peers()))
		return node
	}

	alice := start("alice")
	bob := start("bob")
	carol := start("carol")
	dave := start("dave")
	erin := start("erin")
	nodes := []*core.Node{alice, bob, carol, dave, erin}
	defer func() {
		for _, n := range nodes {
			_ = n.Close() // demo teardown; errors carry no lesson here
		}
	}()

	// Erin searches for jazz across the whole network.
	res, err := erin.Query(&agent.KeywordAgent{Query: "jazz"}, core.QueryOptions{
		Timeout: 2 * time.Second, WaitAnswers: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nerin's jazz search: %d answers\n", len(res.Answers))
	for _, a := range res.Answers {
		fmt.Printf("  %-22s from %s\n", a.Result.Name, a.PeerAddr)
	}

	// Dave disconnects and reappears at a different port with the same
	// identity.
	daveID := dave.ID()
	daveStorePath := filepath.Join(dir, "dave.storm")
	_ = dave.Close() // dave is "disconnecting"; the error is irrelevant

	store2, err := storm.Open(daveStorePath+"-2", storm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	store2.Put(&storm.Object{Name: "take-five.mp3", Keywords: []string{"jazz"},
		Data: []byte("contents of take-five.mp3")})
	dave2, err := core.NewNode(core.Config{
		Network: tcp, ListenAddr: "127.0.0.1:0", Store: store2, MaxPeers: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer dave2.Close()
	dave2.AdoptIdentity(daveID)
	if err := dave2.Rejoin(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndave moved: same BPID %v, new address %s\n", dave2.ID(), dave2.Addr())

	// Erin rejoins: LIGLO resolves dave's BPID to the new address.
	if err := erin.Rejoin(); err != nil {
		log.Fatal(err)
	}
	addr, online, err := liglo.NewClient(tcp).Lookup(daveID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lookup of %v -> %s (online=%v)\n", daveID, addr, online)
}
