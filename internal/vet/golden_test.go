package vet

import (
	"fmt"
	"regexp"
	"strings"
	"testing"
)

// analyzerByName returns the suite analyzer with the given name.
func analyzerByName(t *testing.T, name string) Analyzer {
	t.Helper()
	for _, a := range All() {
		if a.Name() == name {
			return a
		}
	}
	t.Fatalf("no analyzer named %q", name)
	return nil
}

// loadFixtures loads every testdata/src fixture package in one shot so
// the stdlib importer is shared across subtests.
func loadFixtures(t *testing.T, names ...string) map[string]*Package {
	t.Helper()
	patterns := make([]string, len(names))
	for i, n := range names {
		patterns[i] = "testdata/src/" + n
	}
	pkgs, err := Load(".", patterns)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	byName := make(map[string]*Package)
	for _, p := range pkgs {
		parts := strings.Split(p.Path, "/")
		byName[parts[len(parts)-1]] = p
	}
	return byName
}

var wantRe = regexp.MustCompile("// want `([^`]+)`")

// wantsOf extracts `// want `re“ expectations from a fixture package,
// keyed by "file:line".
func wantsOf(pkg *Package) map[string]*regexp.Regexp {
	wants := make(map[string]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				wants[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)] = regexp.MustCompile(m[1])
			}
		}
	}
	return wants
}

// TestAnalyzersGolden runs each analyzer over its fixture package and
// compares findings against the fixture's // want expectations, both
// ways: every finding must be expected, every expectation must fire.
func TestAnalyzersGolden(t *testing.T) {
	names := []string{
		"lockedsend", "nakedgo", "blockingsend", "busypoll", "droppederr", "ttlpair",
		"statsdrift", "eventdrift", "lockorder", "goleak", "codecdrift",
	}
	fixtures := loadFixtures(t, names...)
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			pkg := fixtures[name]
			if pkg == nil {
				t.Fatalf("fixture package %q not loaded", name)
			}
			a := analyzerByName(t, name)
			diags := Run([]*Package{pkg}, []Analyzer{a})
			wants := wantsOf(pkg)
			matched := make(map[string]bool)
			for _, d := range diags {
				key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
				re, ok := wants[key]
				if !ok {
					t.Errorf("unexpected finding at %s: %s", key, d.Message)
					continue
				}
				if !re.MatchString(d.Message) {
					t.Errorf("finding at %s does not match want %q: got %q", key, re, d.Message)
				}
				matched[key] = true
			}
			for key := range wants {
				if !matched[key] {
					t.Errorf("expected finding at %s never reported", key)
				}
			}
		})
	}
}

// TestSuppression runs the FULL suite over the suppress fixture, whose
// violations all carry //bpvet:ignore comments; nothing may survive.
func TestSuppression(t *testing.T) {
	fixtures := loadFixtures(t, "suppress")
	pkg := fixtures["suppress"]
	if pkg == nil {
		t.Fatal("suppress fixture not loaded")
	}
	diags := Run([]*Package{pkg}, All())
	for _, d := range diags {
		t.Errorf("suppressed finding leaked: %s", d)
	}
	// The same package with suppression disabled must report: prove the
	// fixture actually contains violations by counting raw findings.
	raw := rawFindings(pkg)
	if raw == 0 {
		t.Error("suppress fixture contains no violations; suppression test is vacuous")
	}
}

// rawFindings counts findings before suppression filtering.
func rawFindings(pkg *Package) int {
	var diags []Diagnostic
	var prog *Program
	for _, a := range All() {
		switch an := a.(type) {
		case PackageAnalyzer:
			pass := &Pass{
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				PkgPath:  pkg.Path,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				analyzer: a.Name(),
				out:      &diags,
			}
			an.Run(pass)
		case ProgramAnalyzer:
			if prog == nil {
				prog = BuildProgram([]*Package{pkg})
			}
			an.RunProgram(&ProgramPass{Prog: prog, analyzer: a.Name(), out: &diags})
		}
	}
	return len(diags)
}

// TestParseIgnore pins the suppression comment grammar.
func TestParseIgnore(t *testing.T) {
	cases := []struct {
		comment   string
		want      []string
		reason    string
		directive bool
	}{
		{"//bpvet:ignore busypoll some rationale", []string{"busypoll"}, "some rationale", true},
		{"// bpvet:ignore nakedgo droppederr: both are intentional", []string{"nakedgo", "droppederr"}, "both are intentional", true},
		{"//bpvet:ignore busypoll, droppederr trailing commas ok", []string{"busypoll", "droppederr"}, "trailing commas ok", true},
		{"//bpvet:ignore", nil, "", true},
		{"//bpvet:ignore notananalyzer rationale", nil, "notananalyzer rationale", true},
		{"//bpvet:ignore busypoll", []string{"busypoll"}, "", true},
		{"// a normal comment", nil, "", false},
	}
	for _, c := range cases {
		got, reason, directive := parseIgnore(c.comment)
		if directive != c.directive {
			t.Errorf("parseIgnore(%q) directive = %v, want %v", c.comment, directive, c.directive)
			continue
		}
		if reason != c.reason {
			t.Errorf("parseIgnore(%q) reason = %q, want %q", c.comment, reason, c.reason)
		}
		if len(got) != len(c.want) {
			t.Errorf("parseIgnore(%q) = %v, want %v", c.comment, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("parseIgnore(%q) = %v, want %v", c.comment, got, c.want)
			}
		}
	}
}

// TestMalformedIgnores pins the strict directive grammar: a bare ignore
// and an unknown-analyzer ignore both become unsuppressible findings of
// the pseudo-analyzer "ignore".
func TestMalformedIgnores(t *testing.T) {
	fixtures := loadFixtures(t, "badignore")
	pkg := fixtures["badignore"]
	if pkg == nil {
		t.Fatal("badignore fixture not loaded")
	}
	diags := Run([]*Package{pkg}, All())
	var ignoreFindings int
	for _, d := range diags {
		if d.Analyzer == "ignore" {
			ignoreFindings++
		}
	}
	if ignoreFindings != 3 {
		t.Errorf("got %d ignore-grammar findings, want 3: %v", ignoreFindings, diags)
	}
}

// TestSuiteNames pins the analyzer set the docs and Makefile refer to.
func TestSuiteNames(t *testing.T) {
	want := []string{
		"lockedsend", "nakedgo", "blockingsend", "busypoll", "droppederr", "ttlpair",
		"statsdrift", "eventdrift", "lockorder", "goleak", "codecdrift",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name() != want[i] {
			t.Errorf("analyzer %d is %q, want %q", i, a.Name(), want[i])
		}
		if a.Doc() == "" {
			t.Errorf("analyzer %q has empty Doc", a.Name())
		}
	}
}

// TestLoadSkipsTestFiles ensures the loader never parses _test.go files:
// analyzers enforce production-code rules only.
func TestLoadSkipsTestFiles(t *testing.T) {
	pkgs, err := Load(".", []string{"."})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, p := range pkgs {
		for _, f := range p.Files {
			name := p.Fset.Position(f.Pos()).Filename
			if strings.HasSuffix(name, "_test.go") {
				t.Errorf("loader parsed test file %s", name)
			}
		}
	}
}
