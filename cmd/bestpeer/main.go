// Command bestpeer runs a live BestPeer node: a StorM storage manager, a
// mobile-agent engine, a self-configuring peer set and a LIGLO client,
// driven by a small interactive shell on stdin.
//
// Usage:
//
//	bestpeer -store data.storm [-addr host:port] [-liglo a:1,b:2]
//	         [-peers 5] [-strategy maxcount|minhops|static] [-ttl 7]
//	         [-admin 127.0.0.1:9090] [-cache] [-cache-ttl 30s]
//
// Shell commands:
//
//	query <keyword>        broadcast a keyword search agent
//	filter <expr>          broadcast a filter agent (computational power)
//	digest <keyword>       broadcast a digesting agent (summaries only)
//	hints <keyword>        mode-2 search: collect hints, then fetch
//	put <name> <kw> <text> store a sharable object locally
//	get <name>             read a local object
//	ls                     list local objects
//	peers                  show direct peers
//	stats                  show node counters
//	trace [id]             list recent query traces, or show one hop tree
//	cache                  show answer-cache and selective-routing counters
//	rejoin                 refresh addresses through LIGLO
//	help                   this list
//	quit                   exit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"strings"
	"time"

	"bestpeer/internal/agent"
	"bestpeer/internal/core"
	"bestpeer/internal/obs"
	"bestpeer/internal/qroute"
	"bestpeer/internal/reconfig"
	"bestpeer/internal/storm"
	"bestpeer/internal/transport"
	"bestpeer/internal/wire"
)

func main() {
	storePath := flag.String("store", "bestpeer.storm", "path of the StorM data file")
	addr := flag.String("addr", "127.0.0.1:0", "address to listen on")
	ligloList := flag.String("liglo", "", "comma-separated LIGLO servers to register with")
	maxPeers := flag.Int("peers", 5, "maximum direct peers")
	strategy := flag.String("strategy", "maxcount", "reconfiguration strategy: maxcount, minhops, static")
	ttl := flag.Int("ttl", 7, "default agent TTL")
	frames := flag.Int("frames", 64, "buffer pool frames")
	policy := flag.String("policy", "lru", "buffer replacement policy: lru, mru, fifo, clock, priority")
	access := flag.Int("access", 0, "access level presented to peers")
	catalog := flag.Bool("catalog", false, "maintain a persistent B+tree catalog")
	index := flag.Bool("index", false, "maintain a persistent inverted keyword index")
	wal := flag.String("wal", "", "write-ahead log path (empty disables)")
	walSync := flag.Bool("wal-sync", false, "fsync the WAL on every operation")
	admin := flag.String("admin", "", "serve the admin endpoint (/metrics, /healthz, /queries, /events, /cache, pprof) on this address; ':port' binds loopback only; empty disables")
	cache := flag.Bool("cache", false, "enable the query answer cache and learned selective routing")
	cacheTTL := flag.Duration("cache-ttl", 0, "answer-cache freshness bound for positive entries (0 = default 30s)")
	logLevel := flag.String("log-level", "", "mirror structured events to stderr at this level: debug, info, warn, error; empty disables")
	repair := flag.Duration("repair", 15*time.Second, "crash-repair loop interval (wakes early on failure-detector kicks to drop dead peers and backfill degree); 0 disables")
	flag.Parse()

	logger, err := newLogger(*logLevel)
	if err != nil {
		log.Fatalf("bestpeer: %v", err)
	}

	store, err := storm.Open(*storePath, storm.Options{
		BufferFrames:      *frames,
		Policy:            *policy,
		PersistentCatalog: *catalog,
		PersistentIndex:   *index,
		WALPath:           *wal,
		WALSync:           *walSync,
	})
	if err != nil {
		log.Fatalf("bestpeer: open store: %v", err)
	}
	defer store.Close()

	node, err := core.NewNode(core.Config{
		Network:     transport.TCP{},
		ListenAddr:  *addr,
		Store:       store,
		MaxPeers:    *maxPeers,
		DefaultTTL:  uint8(*ttl),
		Strategy:    reconfig.ByName(*strategy),
		AccessLevel: *access,
		Logger:      logger,
		QRoute: qroute.Options{
			Enable: *cache,
			Cache:  qroute.CacheOptions{TTL: *cacheTTL},
		},
	})
	if err != nil {
		log.Fatalf("bestpeer: start node: %v", err)
	}
	defer node.Close()

	fmt.Printf("bestpeer: listening on %s, store %s (%d objects), strategy %s\n",
		node.Addr(), *storePath, store.Len(), node.Strategy().Name())

	if *admin != "" {
		srv, err := node.ServeAdmin(*admin)
		if err != nil {
			log.Fatalf("bestpeer: admin endpoint: %v", err)
		}
		fmt.Printf("bestpeer: admin endpoint on http://%s/metrics\n", srv.Addr())
	}

	if *ligloList != "" {
		servers := strings.Split(*ligloList, ",")
		if err := node.Join(servers); err != nil {
			log.Fatalf("bestpeer: join: %v", err)
		}
		fmt.Printf("bestpeer: joined as %v with %d initial peers\n", node.ID(), len(node.Peers()))
	}

	if *repair > 0 {
		stopRepair := node.StartRepair(*repair, 0)
		defer stopRepair()
	}

	shell(node, store)
}

// newLogger maps the -log-level flag to a stderr slog handler; the node
// mirrors every journalled event through it. Empty means silent (nil
// logger; the node defaults to a discard handler).
func newLogger(level string) (*slog.Logger, error) {
	if level == "" {
		return nil, nil
	}
	var lvl slog.Level
	switch level {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn or error)", level)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})), nil
}

func shell(node *core.Node, store *storm.Store) {
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" {
			if !dispatch(node, store, line) {
				return
			}
		}
		fmt.Print("> ")
	}
}

// dispatch executes one shell command; it returns false to exit.
func dispatch(node *core.Node, store *storm.Store, line string) bool {
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "quit", "exit":
		return false
	case "help":
		fmt.Println("query filter digest hints put get ls peers stats trace cache leave rejoin quit")
	case "query":
		runQuery(node, &agent.KeywordAgent{Query: strings.Join(args, " ")}, 1)
	case "digest":
		runQuery(node, &agent.DigestAgent{Query: strings.Join(args, " ")}, 1)
	case "filter":
		runQuery(node, &agent.FilterAgent{Expr: strings.Join(args, " "), IncludeData: false}, 1)
	case "hints":
		runHints(node, strings.Join(args, " "))
	case "put":
		if len(args) < 3 {
			fmt.Println("usage: put <name> <keyword> <text...>")
			break
		}
		obj := &storm.Object{Name: args[0], Keywords: []string{args[1]},
			Data: []byte(strings.Join(args[2:], " "))}
		if _, err := store.Put(obj); err != nil {
			fmt.Println("error:", err)
		}
	case "get":
		if len(args) != 1 {
			fmt.Println("usage: get <name>")
			break
		}
		obj, err := store.Get(args[0])
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Printf("%s [%s] %q\n", obj.Name, strings.Join(obj.Keywords, ","), obj.Data)
	case "ls":
		for _, name := range store.Names() {
			fmt.Println(" ", name)
		}
	case "peers":
		for _, p := range node.Peers() {
			fmt.Printf("  %s (%v)\n", p.Addr, p.ID)
		}
	case "stats":
		s := node.Stats()
		fmt.Printf("  executed=%d forwarded=%d dup=%d answers=%d reconfigs=%d\n",
			s.AgentsExecuted, s.AgentsForwarded, s.DuplicatesDropped,
			s.AnswersSent, s.Reconfigs)
		fmt.Printf("  pool: policy=%s hitrate=%.2f\n",
			store.Pool().Policy(), store.Pool().HitRate())
	case "trace":
		runTrace(node, args)
	case "cache":
		runCache(node)
	case "leave":
		// Graceful departure: peers get Depart notices with replacement
		// hints, the home LIGLO marks us offline. The process stays up —
		// "rejoin" re-enters the overlay under the same BPID.
		if err := node.Leave(); err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Println("  left the overlay (rejoin to come back)")
		}
	case "rejoin":
		if err := node.Rejoin(); err != nil {
			fmt.Println("error:", err)
		}
	default:
		fmt.Printf("unknown command %q (try help)\n", cmd)
	}
	return true
}

func runQuery(node *core.Node, ag agent.Agent, mode uint8) {
	res, err := node.Query(ag, core.QueryOptions{Mode: mode, Timeout: 2 * time.Second})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, a := range res.Answers {
		fmt.Printf("  %-30s from %s (hops %d, %dB, %v)\n",
			a.Result.Name, a.PeerAddr, a.Hops, len(a.Result.Data), a.At.Round(time.Millisecond))
	}
	fmt.Printf("  %d answers in %v (reconfigured=%v, trace %v)\n",
		len(res.Answers), res.Elapsed.Round(time.Millisecond), res.Reconfigured, res.ID)
}

// runTrace lists recent query traces, or renders one trace's hop tree.
func runTrace(node *core.Node, args []string) {
	if len(args) == 0 {
		for _, t := range node.RecentTraces(10) {
			fmt.Printf("  %v  %d spans, max hop %d\n", t.ID, len(t.Spans), t.MaxHop())
		}
		return
	}
	id, err := wire.ParseMsgID(args[0])
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	t, ok := node.Trace(id)
	if !ok {
		fmt.Println("no trace for", args[0], "(evicted, or issued elsewhere)")
		return
	}
	for _, root := range t.Tree() {
		printSpanTree(root, "  ")
	}
}

func printSpanTree(n *obs.SpanNode, indent string) {
	s := n.Span
	if s.Drop != "" {
		fmt.Printf("%s%s hop %d dropped (%s)\n", indent, s.Peer, s.Hop, s.Drop)
	} else {
		fmt.Printf("%s%s hop %d: %d matches, wait %v, exec %v, fan-out %d\n",
			indent, s.Peer, s.Hop, s.Matches,
			time.Duration(s.WaitNS).Round(time.Microsecond),
			time.Duration(s.ExecNS).Round(time.Microsecond), s.FanOut)
	}
	for _, c := range n.Children {
		printSpanTree(c, indent+"  ")
	}
}

// runCache prints the qroute answer-cache and routing-index counters —
// the shell view of the admin endpoint's /cache route.
func runCache(node *core.Node) {
	s := node.CacheStats()
	if !s.Enabled {
		fmt.Println("  cache disabled (start with -cache)")
		return
	}
	c := s.Cache
	fmt.Printf("  cache: entries=%d bytes=%d epoch=%d\n", c.Entries, c.Bytes, c.Epoch)
	fmt.Printf("  hits=%d negative=%d misses=%d evicted=%d expired=%d invalidated=%d\n",
		c.Hits, c.NegativeHits, c.Misses, c.Evictions, c.Expired, c.Invalidated)
	fmt.Printf("  routing: terms=%d selective=%d flood=%d explored=%d\n",
		s.Terms, s.Selective, s.Flood, s.Explored)
}

func runHints(node *core.Node, query string) {
	res, err := node.Query(&agent.KeywordAgent{Query: query},
		core.QueryOptions{Mode: 2, Timeout: 2 * time.Second})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	byPeer := make(map[string][]string)
	for _, h := range res.Hints {
		byPeer[h.PeerAddr] = append(byPeer[h.PeerAddr], h.Result.Name)
	}
	for peer, names := range byPeer {
		fmt.Printf("  %s advertises %v — fetching\n", peer, names)
		got, err := node.Fetch(peer, names, 2*time.Second)
		if err != nil {
			fmt.Println("  fetch error:", err)
			continue
		}
		for _, r := range got {
			fmt.Printf("    %s (%dB)\n", r.Name, len(r.Data))
		}
	}
}
