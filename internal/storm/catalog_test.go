package storm

import (
	"fmt"
	"path/filepath"
	"testing"
)

func TestPersistentCatalogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cat.storm")
	s, err := Open(path, Options{PersistentCatalog: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if _, err := s.Put(obj(fmt.Sprintf("o%04d", i), []string{"k"}, 700)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	// Delete some, replace others.
	for i := 0; i < 500; i += 5 {
		if err := s.Delete(fmt.Sprintf("o%04d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < 500; i += 5 {
		if _, err := s.Put(obj(fmt.Sprintf("o%04d", i), []string{"r"}, 2900)); err != nil {
			t.Fatal(err)
		}
	}
	want := s.Len()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path, Options{PersistentCatalog: true})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r.Close()
	if r.catalog == nil {
		t.Fatal("catalog not loaded from disk")
	}
	if r.Len() != want {
		t.Fatalf("reopened Len = %d, want %d", r.Len(), want)
	}
	// Spot-check objects through the catalog-loaded map.
	got, err := r.Get("o0491")
	if err != nil || len(got.Data) != 2900 {
		t.Fatalf("replaced object wrong after reopen: %d bytes, %v", len(got.Data), err)
	}
	if _, err := r.Get("o0490"); err == nil {
		t.Fatal("deleted object resurrected")
	}
	// The catalog agrees with the in-memory map entry for entry.
	n := 0
	err = r.catalog.Ascend(func(name string, oid OID) bool {
		if r.byName[name] != oid {
			t.Fatalf("catalog mismatch for %s: %v != %v", name, oid, r.byName[name])
		}
		n++
		return true
	})
	if err != nil || n != want {
		t.Fatalf("catalog entries = %d, %v", n, err)
	}
}

func TestPersistentCatalogMixedPages(t *testing.T) {
	// Heap pages and B+tree pages interleave in one file; scans must only
	// visit heap pages.
	s, err := Open(filepath.Join(t.TempDir(), "mix.storm"), Options{PersistentCatalog: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 300; i++ {
		s.Put(obj(fmt.Sprintf("m%04d", i), []string{"kw"}, 500))
	}
	count := 0
	if err := s.Scan(func(o *Object) bool { count++; return true }); err != nil {
		t.Fatalf("scan across mixed pages: %v", err)
	}
	if count != 300 {
		t.Fatalf("scan saw %d objects", count)
	}
	hits, err := s.Match("kw")
	if err != nil || len(hits) != 300 {
		t.Fatalf("match = %d, %v", len(hits), err)
	}
}

func TestCatalogFileOpensWithoutCatalogOption(t *testing.T) {
	// A file written with a catalog still opens correctly in scan mode.
	dir := t.TempDir()
	path := filepath.Join(dir, "c.storm")
	s, err := Open(path, Options{PersistentCatalog: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		s.Put(obj(fmt.Sprintf("x%03d", i), nil, 100))
	}
	s.Close()

	r, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 100 {
		t.Fatalf("scan-mode Len = %d", r.Len())
	}
	if _, err := r.Get("x050"); err != nil {
		t.Fatal(err)
	}
}

func TestPlainFileGainsCatalogOnReopen(t *testing.T) {
	// A file written without a catalog gets one when reopened with the
	// option.
	dir := t.TempDir()
	path := filepath.Join(dir, "p.storm")
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		s.Put(obj(fmt.Sprintf("y%02d", i), nil, 64))
	}
	s.Close()

	r, err := Open(path, Options{PersistentCatalog: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.catalog == nil {
		t.Fatal("catalog not built")
	}
	if n, err := r.catalog.Len(); err != nil || n != 50 {
		t.Fatalf("built catalog has %d entries, %v", n, err)
	}
	r.Close()

	// And it persists.
	r2, err := Open(path, Options{PersistentCatalog: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if r2.Len() != 50 {
		t.Fatalf("second reopen Len = %d", r2.Len())
	}
}

func TestStoreStats(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(filepath.Join(dir, "st.storm"), Options{
		PersistentCatalog: true,
		WALPath:           filepath.Join(dir, "st.wal"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 25; i++ {
		s.Put(obj(fmt.Sprintf("s%02d", i), nil, 400))
	}
	s.Get("s03")
	st := s.Stats()
	if st.Objects != 25 {
		t.Fatalf("Objects = %d", st.Objects)
	}
	if st.DataPages == 0 || st.TotalPages <= st.DataPages {
		t.Fatalf("pages: data=%d total=%d (catalog pages must exist)", st.DataPages, st.TotalPages)
	}
	if !st.CatalogPersistent {
		t.Fatal("catalog flag not set")
	}
	if st.WALRecords != 25 {
		t.Fatalf("WALRecords = %d", st.WALRecords)
	}
	if st.HitRate <= 0 || st.PoolHits == 0 {
		t.Fatalf("pool stats empty: %+v", st)
	}
	if st.FreeBytes <= 0 {
		t.Fatalf("FreeBytes = %d", st.FreeBytes)
	}
}

func TestCompactToReclaimsSpace(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(filepath.Join(dir, "fat.storm"), Options{PersistentCatalog: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 400; i++ {
		s.Put(obj(fmt.Sprintf("f%03d", i), []string{"kw"}, 900))
	}
	// Delete three quarters; the file keeps its pages.
	for i := 0; i < 400; i++ {
		if i%4 != 0 {
			s.Delete(fmt.Sprintf("f%03d", i))
		}
	}
	fatPages := s.Stats().TotalPages

	dstPath := filepath.Join(dir, "slim.storm")
	if err := s.CompactTo(dstPath, Options{PersistentCatalog: true}); err != nil {
		t.Fatal(err)
	}
	slim, err := Open(dstPath, Options{PersistentCatalog: true})
	if err != nil {
		t.Fatal(err)
	}
	defer slim.Close()
	if slim.Len() != 100 {
		t.Fatalf("compacted Len = %d, want 100", slim.Len())
	}
	slimPages := slim.Stats().TotalPages
	if slimPages*2 >= fatPages {
		t.Fatalf("compaction ineffective: %d pages -> %d", fatPages, slimPages)
	}
	// Contents intact.
	got, err := slim.Get("f096")
	if err != nil || len(got.Data) != 900 {
		t.Fatalf("compacted object: %v %v", got, err)
	}
	// The source is untouched.
	if s.Len() != 100 {
		t.Fatalf("source mutated: %d", s.Len())
	}
}
