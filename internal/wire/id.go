// Package wire defines the message formats shared by every protocol in the
// BestPeer system: the envelope that frames all traffic, globally unique
// message identifiers used for duplicate suppression, and the BestPeer
// identity (BPID) issued by LIGLO servers.
//
// The codec writes length-prefixed frames and transparently compresses
// bodies with gzip, mirroring the paper's use of GZIP for all agent and
// control traffic ("compression and un-compression are performed
// automatically by BestPeer platform").
package wire

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync/atomic"
)

// MsgID is a globally unique message identifier, analogous to the GUID
// carried by Gnutella descriptors. Agents and queries carry one so that a
// node can drop duplicates that arrive along multiple paths.
type MsgID [16]byte

// NewMsgID returns a fresh random message identifier.
func NewMsgID() MsgID {
	var id MsgID
	if _, err := rand.Read(id[:]); err != nil {
		// crypto/rand never fails on supported platforms; fall back to a
		// counter so the system stays usable even if it somehow does.
		binary.BigEndian.PutUint64(id[:8], fallbackCounter.Add(1))
	}
	return id
}

var fallbackCounter atomic.Uint64

// IsZero reports whether the identifier is the zero value.
func (id MsgID) IsZero() bool { return id == MsgID{} }

// String renders the identifier as lowercase hex.
func (id MsgID) String() string { return hex.EncodeToString(id[:]) }

// MarshalJSON renders the ID in its hex string form, so JSON payloads
// (query traces, the admin endpoint) show the same identifier the
// shell and the logs print — not a 16-element byte array.
func (id MsgID) MarshalJSON() ([]byte, error) {
	return []byte(`"` + id.String() + `"`), nil
}

// UnmarshalJSON parses the hex form produced by MarshalJSON.
func (id *MsgID) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("wire: bad message id: %w", err)
	}
	parsed, err := ParseMsgID(s)
	if err != nil {
		return err
	}
	*id = parsed
	return nil
}

// ParseMsgID parses the hex form produced by String.
func ParseMsgID(s string) (MsgID, error) {
	var id MsgID
	b, err := hex.DecodeString(s)
	if err != nil {
		return id, fmt.Errorf("wire: bad message id: %w", err)
	}
	if len(b) != len(id) {
		return id, fmt.Errorf("wire: bad message id length %d", len(b))
	}
	copy(id[:], b)
	return id, nil
}

// BPID is a BestPeer global identity: a (LIGLOID, NodeID) pair. LIGLOID is
// the address of the issuing LIGLO server and NodeID is unique only with
// respect to that server, so two different servers may both hand out
// NodeID 7 without conflict (the paper's "unlimited name resources").
type BPID struct {
	LIGLO string // address of the issuing LIGLO server
	Node  uint64 // identifier unique within that server
}

// IsZero reports whether the BPID has not been assigned.
func (b BPID) IsZero() bool { return b.LIGLO == "" && b.Node == 0 }

// String renders the BPID as "liglo/node".
func (b BPID) String() string { return fmt.Sprintf("%s/%d", b.LIGLO, b.Node) }
