package vet

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// lockedsend flags network I/O performed while a sync.Mutex or
// sync.RWMutex acquired in the same function is still held. Holding a
// lock across a Send or Dial couples every other path through that lock
// to the network's latency — the stall/deadlock shape the hardened
// messenger was built to eliminate.
//
// The analysis is per-function and lexical: lock/unlock/send events are
// processed in source order, a deferred Unlock does not release (the
// lock is held for the rest of the body), and nested function literals
// are analyzed as their own scopes. An Unlock on any path releases the
// lexical "held" state, so branch-heavy code may under-report — the
// analyzer favours precision over recall.
type lockedsend struct{}

func (lockedsend) Name() string { return "lockedsend" }
func (lockedsend) Doc() string {
	return "network I/O (Send/Dial/net.Conn writes) while a mutex acquired in the same function is held"
}

func (lockedsend) Run(p *Pass) {
	for _, file := range p.Files {
		funcBodies(file, func(name string, body *ast.BlockStmt) {
			runLockedSend(p, body)
		})
	}
}

type lockEvent struct {
	pos    token.Pos
	kind   int    // 0 lock, 1 unlock, 2 send
	key    string // mutex expression, for lock/unlock
	detail string // callee description, for send
}

func runLockedSend(p *Pass, body *ast.BlockStmt) {
	var events []lockEvent
	inspectSameFunc(body, func(n ast.Node) bool {
		// A deferred Unlock never releases within the body; skip the
		// whole defer so its call is not treated as a release point.
		if d, ok := n.(*ast.DeferStmt); ok {
			if _, isUnlock := mutexCall(p, d.Call, "Unlock", "RUnlock"); isUnlock {
				return false
			}
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if key, ok := mutexCall(p, call, "Lock", "RLock"); ok {
			events = append(events, lockEvent{pos: call.Pos(), kind: 0, key: key})
			return true
		}
		if key, ok := mutexCall(p, call, "Unlock", "RUnlock"); ok {
			events = append(events, lockEvent{pos: call.Pos(), kind: 1, key: key})
			return true
		}
		if detail, ok := networkCall(p, call); ok {
			events = append(events, lockEvent{pos: call.Pos(), kind: 2, detail: detail})
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	held := make(map[string]token.Pos)
	for _, e := range events {
		switch e.kind {
		case 0:
			held[e.key] = e.pos
		case 1:
			delete(held, e.key)
		case 2:
			for key, lockPos := range held {
				p.Reportf(e.pos, "call to %s while %s is locked (acquired at line %d)",
					e.detail, key, p.Fset.Position(lockPos).Line)
			}
		}
	}
}

// mutexCall reports whether call is sel.<method>() on a sync.Mutex or
// sync.RWMutex for one of the given method names, returning the mutex
// expression rendered as a key.
func mutexCall(p *Pass, call *ast.CallExpr, methods ...string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	match := false
	for _, m := range methods {
		if sel.Sel.Name == m {
			match = true
			break
		}
	}
	if !match {
		return "", false
	}
	t := p.TypeOf(sel.X)
	if !isPkgType(t, "sync", "Mutex") && !isPkgType(t, "sync", "RWMutex") {
		return "", false
	}
	return types.ExprString(sel.X), true
}

// networkCall recognizes the project's network I/O shapes: any method
// named Send, dialing (Dial/DialTimeout/DialDeadline), and Write/WriteAt
// on a net.Conn.
func networkCall(p *Pass, call *ast.CallExpr) (string, bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		switch fun.Name {
		case "Dial", "DialTimeout", "DialDeadline":
			return fun.Name, true
		}
	case *ast.SelectorExpr:
		switch fun.Sel.Name {
		case "Send", "Dial", "DialTimeout", "DialDeadline":
			return types.ExprString(fun), true
		case "Write", "WriteAt":
			if isPkgType(p.TypeOf(fun.X), "net", "Conn") {
				return types.ExprString(fun), true
			}
		}
	}
	return "", false
}
