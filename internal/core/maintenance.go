package core

import (
	"errors"
	"sync"
	"time"

	"bestpeer/internal/agent"
	"bestpeer/internal/obs"
)

// QueryAndFetch runs a mode-2 query (peers advertise matching names
// without data) and then fetches every hinted object from its
// advertising peer, out-of-network. The returned result carries the
// fetched objects in Answers and keeps the original hints.
//
// This is the paper's second access mode end to end: better bandwidth
// utilization at the cost of a second round trip, with the documented
// race that a peer may have removed an object between hint and fetch —
// such objects are silently absent from the answers.
func (n *Node) QueryAndFetch(ag agent.Agent, opts QueryOptions) (*QueryResult, error) {
	opts.Mode = 2
	res, err := n.Query(ag, opts)
	if err != nil {
		return nil, err
	}
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = time.Second
	}
	// Group hinted names by the advertising peer.
	type peerHints struct {
		id    []Answer
		names []string
	}
	byPeer := make(map[string]*peerHints)
	for _, h := range res.Hints {
		if h.PeerAddr == n.Addr() {
			// Local matches already carry data? No: local mode-2 results
			// are hints too; read them straight from the store.
			if obj, err := n.store.Get(h.Result.Name); err == nil {
				if data, ok := n.active.RenderObject(obj, n.cfg.AccessLevel); ok {
					h.Result.Data = data
					res.Answers = append(res.Answers, h)
				}
			}
			continue
		}
		ph, ok := byPeer[h.PeerAddr]
		if !ok {
			ph = &peerHints{}
			byPeer[h.PeerAddr] = ph
		}
		ph.id = append(ph.id, h)
		ph.names = append(ph.names, h.Result.Name)
	}
	// Fetch from all peers concurrently — each is an independent direct
	// exchange.
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	for addr, ph := range byPeer {
		addr, ph := addr, ph
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer n.containPanic("fetch")
			got, err := n.Fetch(addr, ph.names, timeout)
			if err != nil {
				return // peer vanished between hint and fetch
			}
			mu.Lock()
			defer mu.Unlock()
			for _, r := range got {
				// Attribute the fetched object back to its hint.
				for _, h := range ph.id {
					if h.Result.Name == r.Name {
						h.Result.Data = r.Data
						res.Answers = append(res.Answers, h)
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	return res, nil
}

// StartMaintenance launches a background loop that probes every direct
// peer each interval and drops peers that do not respond — the paper's
// "simply replace those peers by new peers that it encounters", with
// replacement happening through subsequent reconfiguration. The returned
// stop function terminates the loop and blocks until it has exited.
func (n *Node) StartMaintenance(interval, probeTimeout time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 30 * time.Second
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		defer n.containPanic("maintenance")
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				n.SweepPeers(probeTimeout)
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-finished
		})
	}
}

// SweepPeers probes every direct peer concurrently and removes the
// unresponsive ones, so N dead peers cost one probe timeout, not N. It
// returns how many peers were found unresponsive. The shrink is guarded
// by the peer-set generation counter: if the set was mutated while the
// probes were in flight (a reconfiguration, a Rejoin), the stale result
// is discarded rather than clobbering the newer set.
func (n *Node) SweepPeers(probeTimeout time.Duration) int {
	n.mu.Lock()
	peers := append([]Peer(nil), n.peers...)
	gen := n.peerGen
	n.mu.Unlock()
	if len(peers) == 0 {
		return 0
	}

	responsive := make([]bool, len(peers))
	var wg sync.WaitGroup
	for i, p := range peers {
		i, p := i, p
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer n.containPanic("sweep")
			responsive[i] = n.Probe(p.Addr, probeTimeout)
		}()
	}
	wg.Wait()

	alive := peers[:0:0]
	for i, p := range peers {
		if responsive[i] {
			alive = append(alive, p)
		}
	}
	dropped := len(peers) - len(alive)
	if dropped > 0 {
		n.mu.Lock()
		if n.peerGen == gen {
			n.peers = alive
			n.peerGen++
			n.mu.Unlock()
			for i, p := range peers {
				if !responsive[i] {
					n.journal.Append(obs.Event{Kind: obs.EvPeerDropped, Peer: p.Addr, Reason: "unresponsive"})
					// Release the dead peer's transport queue and learned
					// routing state, then wake the repair loop to backfill.
					n.msgr.Forget(p.Addr)
					n.qr.ForgetNeighbor(p.Addr)
				}
			}
			n.kickRepair("sweep")
			n.log.Info("dropped unresponsive peers", "count", dropped)
		} else {
			n.mu.Unlock()
			n.log.Info("sweep result discarded: peer set changed underneath", "stale_dropped", dropped)
		}
	}
	return dropped
}

// Replenish asks the node's home LIGLO server for fresh online peers to
// fill the gap between the current peer set and MaxPeers — the paper's
// "replace those peers by new peers that it encounters", with LIGLO as
// the encounter point. It returns how many peers were added.
func (n *Node) Replenish() (int, error) {
	n.mu.Lock()
	id := n.id
	room := n.cfg.MaxPeers - len(n.peers)
	n.mu.Unlock()
	if id.IsZero() {
		return 0, errors.New("core: Replenish before Join")
	}
	if room <= 0 {
		return 0, nil
	}
	candidates, err := n.lgc.Peers(id.LIGLO, id, n.cfg.MaxPeers)
	if err != nil {
		return 0, err
	}
	added := 0
	for _, c := range candidates {
		if c.Addr == n.Addr() {
			continue
		}
		if n.AddPeer(Peer{ID: c.ID, Addr: c.Addr}) {
			added++
		}
	}
	if added > 0 {
		n.log.Info("replenished peers from liglo", "added", added)
	}
	return added, nil
}
