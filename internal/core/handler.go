package core

import (
	"bestpeer/internal/agent"
	"bestpeer/internal/wire"
)

// handle dispatches every envelope delivered to this node. It runs on
// messenger reader goroutines, so everything it touches is synchronized.
func (n *Node) handle(env *wire.Envelope) {
	if n.isClosed() {
		return
	}
	switch env.Kind {
	case wire.KindAgent:
		n.handleAgent(env)
	case wire.KindResult:
		n.handleResult(env, false)
	case wire.KindHint:
		n.handleResult(env, true)
	case wire.KindFetch:
		n.handleFetch(env)
	case wire.KindClassWant:
		n.handleClassWant(env)
	case wire.KindClassShip:
		n.handleClassShip(env)
	case wire.KindPeerProbe:
		n.send(env.From, &wire.Envelope{
			Kind: wire.KindPeerProbeOK, ID: env.ID, TTL: 1,
			From: n.Addr(), To: env.From,
		})
	case wire.KindPeerProbeOK:
		n.deliverProbe(env.ID)
	default:
		// Not a BestPeer message; ignore.
	}
}

// handleAgent implements the receive side of §3.1: drop duplicates and
// expired agents, obtain the class if missing, execute locally, send
// answers directly to the base node, and clone-forward to direct peers.
func (n *Node) handleAgent(env *wire.Envelope) {
	if env.Expired() {
		// Lifetime exhausted on arrival: the host drops the agent
		// without executing it, so TTL t reaches exactly distance t.
		n.bump(func(s *Stats) { s.ExpiredDropped++ })
		return
	}
	if n.seen.Seen(env.ID) {
		n.bump(func(s *Stats) { s.DuplicatesDropped++ })
		return
	}
	packet, err := agent.DecodePacket(env.Body)
	if err != nil {
		return
	}
	// Forward first: propagation does not wait for a class transfer.
	n.forwardAgent(env)

	if !n.registry.Installed(packet.Class) {
		if !n.registry.Known(packet.Class) {
			return // cannot ever run this class
		}
		// Park the agent and ask the previous hop for the class.
		n.pendingMu.Lock()
		n.pending[packet.Class] = append(n.pending[packet.Class], pendingAgent{env, packet})
		first := len(n.pending[packet.Class]) == 1
		n.pendingMu.Unlock()
		if first {
			n.send(env.From, &wire.Envelope{
				Kind: wire.KindClassWant, ID: wire.NewMsgID(), TTL: 1,
				From: n.Addr(), To: env.From,
				Body: encodeClassWant(&classWant{Class: packet.Class}),
			})
		}
		return
	}
	n.executeAgent(env, packet)
}

// forwardAgent clones the agent to every direct peer except the one it
// came from, decrementing TTL and incrementing Hops. Clones that would
// arrive already expired are not sent.
func (n *Node) forwardAgent(env *wire.Envelope) {
	if env.TTL <= 1 {
		return
	}
	from := env.From
	me := n.Addr()
	for _, p := range n.Peers() {
		if p.Addr == from || p.Addr == me {
			continue
		}
		n.send(p.Addr, env.Forwarded(me, p.Addr))
		n.bump(func(s *Stats) { s.AgentsForwarded++ })
	}
}

// executeAgent reconstructs and runs the agent against the local store,
// then returns any answers straight to the base node.
func (n *Node) executeAgent(env *wire.Envelope, packet *agent.Packet) {
	ag, err := n.registry.New(packet.Class, packet.State)
	if err != nil {
		return
	}
	ctx := &agent.Context{
		Store:       n.store,
		NodeAddr:    n.Addr(),
		Hops:        int(env.Hops),
		Requester:   packet.BaseID,
		AccessLevel: packet.AccessLevel,
		ActiveNodes: n.active,
	}
	results, err := ag.Execute(ctx)
	n.bump(func(s *Stats) { s.AgentsExecuted++ })
	if err != nil || len(results) == 0 {
		return
	}
	kind := wire.KindResult
	if packet.Mode == 2 {
		// Hint mode: announce names only; the base fetches what it wants.
		kind = wire.KindHint
		stripped := make([]agent.Result, len(results))
		for i, r := range results {
			stripped[i] = agent.Result{Name: r.Name}
		}
		results = stripped
	}
	n.bump(func(s *Stats) { s.AnswersSent += uint64(len(results)) })
	n.send(packet.Base, &wire.Envelope{
		Kind: kind,
		ID:   env.ID, // answers carry the query id so the base can route them
		TTL:  1,
		From: n.Addr(),
		To:   packet.Base,
		Body: agent.EncodeResults(results, int(env.Hops), n.ID(), n.Addr()),
	})
}

// handleResult routes an incoming answer batch to its query.
func (n *Node) handleResult(env *wire.Envelope, hint bool) {
	batch, err := agent.DecodeResults(env.Body)
	if err != nil {
		return
	}
	v, ok := n.queries.Load(env.ID)
	if !ok {
		return // late answer for a finished query
	}
	v.(*queryState).deliver(batch, hint)
}

// handleFetch serves a mode-2 follow-up: read the named objects, apply
// active-object access control for the requester, reply with the data.
func (n *Node) handleFetch(env *wire.Envelope) {
	req, err := decodeFetchReq(env.Body)
	if err != nil {
		return
	}
	var results []agent.Result
	for _, name := range req.Names {
		obj, err := n.store.Get(name)
		if err != nil {
			continue // removed since the hint — the race §2 acknowledges
		}
		data, ok := n.active.RenderObject(obj, req.AccessLevel)
		if !ok {
			continue
		}
		results = append(results, agent.Result{Name: name, Data: data})
	}
	n.send(req.Base, &wire.Envelope{
		Kind: wire.KindResult,
		ID:   env.ID, // fetch reply carries the fetch id
		TTL:  1,
		From: n.Addr(),
		To:   req.Base,
		Body: agent.EncodeResults(results, 0, n.ID(), n.Addr()),
	})
}

// handleClassWant serves a class payload to a node that lacks it. If
// this node is itself waiting for the class (a chain of cold nodes), the
// request is parked and served when the class arrives.
func (n *Node) handleClassWant(env *wire.Envelope) {
	w, err := decodeClassWant(env.Body)
	if err != nil {
		return
	}
	code, err := n.registry.Code(w.Class)
	if err != nil {
		if n.registry.Known(w.Class) {
			n.pendingMu.Lock()
			n.pendingWants[w.Class] = append(n.pendingWants[w.Class], env.From)
			n.pendingMu.Unlock()
		}
		return
	}
	n.shipClass(env.From, w.Class, code)
}

func (n *Node) shipClass(to, class string, code []byte) {
	n.bump(func(s *Stats) { s.ClassesShipped++ })
	n.send(to, &wire.Envelope{
		Kind: wire.KindClassShip, ID: wire.NewMsgID(), TTL: 1,
		From: n.Addr(), To: to,
		Body: encodeClassShip(&classShip{Class: class, Code: code}),
	})
}

// handleClassShip installs a shipped class and runs any parked agents.
func (n *Node) handleClassShip(env *wire.Envelope) {
	s, err := decodeClassShip(env.Body)
	if err != nil {
		return
	}
	if err := n.registry.Install(s.Class, s.Code); err != nil {
		n.log.Warn("class install rejected", "class", s.Class, "err", err)
		return
	}
	n.bump(func(st *Stats) { st.ClassesInstalled++ })
	n.log.Info("installed shipped class", "class", s.Class, "bytes", len(s.Code))
	n.pendingMu.Lock()
	parked := n.pending[s.Class]
	delete(n.pending, s.Class)
	wants := n.pendingWants[s.Class]
	delete(n.pendingWants, s.Class)
	n.pendingMu.Unlock()
	for _, pa := range parked {
		n.executeAgent(pa.env, pa.packet)
	}
	// Serve downstream nodes whose class requests arrived while this
	// node was itself still waiting for the class.
	for _, to := range wants {
		n.shipClass(to, s.Class, s.Code)
	}
}
