package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"bestpeer/internal/wire"
)

func adminGet(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

func TestAdminEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("demo_total", "demo counter").Add(3)
	tracer := NewTracer(8)
	id := wire.NewMsgID()
	tracer.Begin(id, "base:1")
	tracer.Record(id, wire.TraceSpan{Peer: "b:2", Parent: "base:1", Hop: 1, Matches: 2})

	journal := NewJournal("base:1", 4)
	for i := 0; i < 6; i++ { // overflows the 4-slot ring by 2
		journal.Append(Event{Kind: EvAgentAnswered, Peer: "b:2", Hops: 1, Count: i})
	}

	srv, err := StartAdmin("", AdminConfig{
		Registry: reg,
		Tracer:   tracer,
		Journal:  journal,
		Health:   func() any { return map[string]string{"status": "ok", "addr": "base:1"} },
		Peers:    func() any { return []string{"b:2", "c:3"} },
		Cache:    func() any { return map[string]any{"enabled": true, "epoch": 7} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if !strings.HasPrefix(srv.Addr(), "127.0.0.1:") {
		t.Fatalf("default bind must be loopback, got %s", srv.Addr())
	}
	base := "http://" + srv.Addr()

	code, body, ctype := adminGet(t, base+"/metrics")
	if code != 200 || !strings.Contains(body, "demo_total 3") {
		t.Fatalf("/metrics = %d:\n%s", code, body)
	}
	if !strings.Contains(ctype, "text/plain") {
		t.Fatalf("/metrics content type = %q", ctype)
	}

	code, body, _ = adminGet(t, base+"/metrics.json")
	var snap Snapshot
	if code != 200 {
		t.Fatalf("/metrics.json = %d", code)
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json not valid JSON: %v", err)
	}
	if snap.Value("demo_total") != 3 {
		t.Fatalf("/metrics.json value = %v, want 3", snap.Value("demo_total"))
	}

	code, body, _ = adminGet(t, base+"/healthz")
	if code != 200 || !strings.Contains(body, `"ok"`) {
		t.Fatalf("/healthz = %d:\n%s", code, body)
	}

	code, body, _ = adminGet(t, base+"/peers")
	if code != 200 || !strings.Contains(body, `"b:2"`) {
		t.Fatalf("/peers = %d:\n%s", code, body)
	}

	code, body, _ = adminGet(t, base+"/cache")
	if code != 200 || !strings.Contains(body, `"epoch": 7`) {
		t.Fatalf("/cache = %d:\n%s", code, body)
	}

	code, body, _ = adminGet(t, base+"/events")
	if code != 200 {
		t.Fatalf("/events = %d:\n%s", code, body)
	}
	var page EventsPage
	if err := json.Unmarshal([]byte(body), &page); err != nil {
		t.Fatalf("/events not valid JSON: %v", err)
	}
	if page.Node != "base:1" || len(page.Events) != 4 || page.Missed != 2 || page.Total != 6 || page.Evicted != 2 {
		t.Fatalf("/events page = %+v; want 4 events, missed 2, total 6", page)
	}
	if page.Events[0].Kind != EvAgentAnswered || page.Events[0].Seq != 2 {
		t.Fatalf("/events first event = %+v", page.Events[0])
	}

	// Cursor pagination over HTTP: resume from Next, cap with max.
	code, body, _ = adminGet(t, fmt.Sprintf("%s/events?since=%d&max=1", base, page.Events[0].Seq+1))
	var page2 EventsPage
	if code != 200 {
		t.Fatalf("/events?since = %d", code)
	}
	if err := json.Unmarshal([]byte(body), &page2); err != nil {
		t.Fatal(err)
	}
	if len(page2.Events) != 1 || page2.Events[0].Seq != 3 || page2.Missed != 0 || page2.Next != 4 {
		t.Fatalf("paged /events = %+v", page2)
	}

	code, _, _ = adminGet(t, base+"/events?since=notanumber")
	if code != http.StatusBadRequest {
		t.Fatalf("/events?since=notanumber = %d, want 400", code)
	}

	code, body, _ = adminGet(t, base+"/queries/")
	if code != 200 || !strings.Contains(body, id.String()) {
		t.Fatalf("/queries/ = %d:\n%s", code, body)
	}

	code, body, _ = adminGet(t, base+"/queries/"+id.String())
	if code != 200 || !strings.Contains(body, `"b:2"`) || !strings.Contains(body, `"tree"`) {
		t.Fatalf("/queries/<id> = %d:\n%s", code, body)
	}

	code, _, _ = adminGet(t, base+"/queries/nothex")
	if code != http.StatusBadRequest {
		t.Fatalf("/queries/nothex = %d, want 400", code)
	}

	code, _, _ = adminGet(t, base+"/queries/"+wire.NewMsgID().String())
	if code != http.StatusNotFound {
		t.Fatalf("unknown trace = %d, want 404", code)
	}

	code, body, _ = adminGet(t, base+"/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
}

func TestStartAdminRewritesBarePort(t *testing.T) {
	reg := NewRegistry()
	srv, err := StartAdmin(":0", AdminConfig{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if !strings.HasPrefix(srv.Addr(), "127.0.0.1:") {
		t.Fatalf("bare :port must bind loopback, got %s", srv.Addr())
	}
}
