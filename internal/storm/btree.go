package storm

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
)

// A disk-backed B+tree mapping string keys to OIDs, used as the store's
// persistent catalog: name → object location. It lives on the same page
// file as the heap, behind the same buffer pool, and its root page id is
// recorded in the file header so an open can load the catalog without
// decoding every object record.
//
// Node page layout (the first 13 bytes are the common page header with
// the page-type byte at offset 12):
//
//	offset 13: uint16 entry count
//	offset 15: uint32 right sibling (leaves only; 0 = none)
//	offset 19: uint32 leftmost child (internal only)
//	offset 23: entries, packed sequentially:
//	   leaf:     uint16 klen | key | uint32 page | uint16 slot
//	   internal: uint16 klen | key | uint32 child   (child holds keys >= key)
//
// Entries are kept key-sorted; inserts shift bytes within the page.
// Deletes compact in place without rebalancing — the catalog workload
// (names) never shrinks enough for underflow to matter, and lookups stay
// correct regardless.

const (
	btreeLeaf     = pageTypeBTreeLeaf
	btreeInternal = pageTypeBTreeInternal

	btNodeHeader = 23 // relative to page start
	btLeafValLen = 6  // page(4) + slot(2)
	btIntValLen  = 4  // child page id
)

// MaxKeyLen bounds catalog keys so any two entries fit a page.
const MaxKeyLen = 1024

// B+tree errors.
var (
	ErrKeyTooLong = errors.New("storm: btree key too long")
	ErrBadTree    = errors.New("storm: corrupt btree node")
)

// BTree is a persistent string→OID map.
type BTree struct {
	pool *BufferPool
	root PageID
}

// NewBTree creates an empty tree, allocating its root leaf.
func NewBTree(pool *BufferPool) (*BTree, error) {
	p, err := pool.NewPage()
	if err != nil {
		return nil, err
	}
	root := p.ID()
	initBTNode(p, btreeLeaf)
	if err := pool.Unpin(root, true); err != nil {
		return nil, err
	}
	return &BTree{pool: pool, root: root}, nil
}

// OpenBTree attaches to an existing tree rooted at root.
func OpenBTree(pool *BufferPool, root PageID) *BTree {
	return &BTree{pool: pool, root: root}
}

// Root returns the current root page id (it changes when the root splits).
func (t *BTree) Root() PageID { return t.root }

func initBTNode(p *Page, typ uint8) {
	p.buf[12] = typ
	binary.BigEndian.PutUint16(p.buf[13:15], 0)
	binary.BigEndian.PutUint32(p.buf[15:19], 0)
	binary.BigEndian.PutUint32(p.buf[19:23], 0)
}

func btType(p *Page) uint8 { return p.buf[12] }
func btCount(p *Page) int  { return int(binary.BigEndian.Uint16(p.buf[13:15])) }
func btSetCount(p *Page, n int) {
	binary.BigEndian.PutUint16(p.buf[13:15], uint16(n))
}
func btNext(p *Page) PageID { return PageID(binary.BigEndian.Uint32(p.buf[15:19])) }
func btSetNext(p *Page, id PageID) {
	binary.BigEndian.PutUint32(p.buf[15:19], uint32(id))
}
func btLeft(p *Page) PageID { return PageID(binary.BigEndian.Uint32(p.buf[19:23])) }
func btSetLeft(p *Page, id PageID) {
	binary.BigEndian.PutUint32(p.buf[19:23], uint32(id))
}

func btValLen(typ uint8) int {
	if typ == btreeLeaf {
		return btLeafValLen
	}
	return btIntValLen
}

// btEntry describes one decoded entry.
type btEntry struct {
	off int // byte offset of the entry within the page
	key []byte
	end int // offset just past the entry
	val []byte
}

// btWalk iterates entries; fn returning false stops. Returns an error on
// structural corruption.
func btWalk(p *Page, fn func(i int, e btEntry) bool) error {
	typ := btType(p)
	vlen := btValLen(typ)
	off := btNodeHeader
	n := btCount(p)
	for i := 0; i < n; i++ {
		if off+2 > PageSize {
			return ErrBadTree
		}
		klen := int(binary.BigEndian.Uint16(p.buf[off : off+2]))
		end := off + 2 + klen + vlen
		if klen > MaxKeyLen || end > PageSize {
			return ErrBadTree
		}
		e := btEntry{
			off: off,
			key: p.buf[off+2 : off+2+klen],
			val: p.buf[off+2+klen : end],
			end: end,
		}
		if !fn(i, e) {
			return nil
		}
		off = end
	}
	return nil
}

// btUsed returns bytes used by entries.
func btUsed(p *Page) int {
	used := btNodeHeader
	btWalk(p, func(i int, e btEntry) bool { used = e.end; return true }) //nolint:errcheck
	return used
}

// btFind locates key: returns the entry index and whether it matched
// exactly; when not found, idx is the insertion position.
func btFind(p *Page, key []byte) (idx int, found bool, err error) {
	idx = btCount(p)
	err = btWalk(p, func(i int, e btEntry) bool {
		switch bytes.Compare(e.key, key) {
		case 0:
			idx, found = i, true
			return false
		case 1: // e.key > key
			idx = i
			return false
		}
		return true
	})
	return idx, found, err
}

// entryAt returns entry i (must exist).
func btEntryAt(p *Page, i int) (btEntry, error) {
	var out btEntry
	ok := false
	err := btWalk(p, func(j int, e btEntry) bool {
		if j == i {
			out, ok = e, true
			return false
		}
		return true
	})
	if err != nil {
		return out, err
	}
	if !ok {
		return out, ErrBadTree
	}
	return out, nil
}

// btInsertAt splices an entry at index i. Returns false when the page
// lacks room.
func btInsertAt(p *Page, i int, key, val []byte) (bool, error) {
	need := 2 + len(key) + len(val)
	used := btUsed(p)
	if used+need > PageSize {
		return false, nil
	}
	// Find the byte offset of index i.
	off := used
	if i < btCount(p) {
		e, err := btEntryAt(p, i)
		if err != nil {
			return false, err
		}
		off = e.off
	}
	copy(p.buf[off+need:used+need], p.buf[off:used])
	binary.BigEndian.PutUint16(p.buf[off:off+2], uint16(len(key)))
	copy(p.buf[off+2:], key)
	copy(p.buf[off+2+len(key):], val)
	btSetCount(p, btCount(p)+1)
	return true, nil
}

// btRemoveAt deletes entry i.
func btRemoveAt(p *Page, i int) error {
	e, err := btEntryAt(p, i)
	if err != nil {
		return err
	}
	used := btUsed(p)
	copy(p.buf[e.off:], p.buf[e.end:used])
	btSetCount(p, btCount(p)-1)
	return nil
}

func leafVal(oid OID) []byte {
	var v [btLeafValLen]byte
	binary.BigEndian.PutUint32(v[0:4], uint32(oid.Page))
	binary.BigEndian.PutUint16(v[4:6], uint16(oid.Slot))
	return v[:]
}

func leafOID(v []byte) OID {
	return OID{
		Page: PageID(binary.BigEndian.Uint32(v[0:4])),
		Slot: Slot(binary.BigEndian.Uint16(v[4:6])),
	}
}

func childVal(id PageID) []byte {
	var v [btIntValLen]byte
	binary.BigEndian.PutUint32(v[:], uint32(id))
	return v[:]
}

func childID(v []byte) PageID {
	return PageID(binary.BigEndian.Uint32(v))
}

// Get returns the OID stored under key.
func (t *BTree) Get(key string) (OID, bool, error) {
	if len(key) > MaxKeyLen {
		return OID{}, false, ErrKeyTooLong
	}
	leaf, err := t.descend([]byte(key), nil)
	if err != nil {
		return OID{}, false, err
	}
	p, err := t.pool.Fetch(leaf)
	if err != nil {
		return OID{}, false, err
	}
	defer t.pool.Unpin(leaf, false)
	i, found, err := btFind(p, []byte(key))
	if err != nil || !found {
		return OID{}, false, err
	}
	e, err := btEntryAt(p, i)
	if err != nil {
		return OID{}, false, err
	}
	return leafOID(e.val), true, nil
}

// descend walks from the root to the leaf responsible for key. When path
// is non-nil it accumulates the internal pages visited (for splits).
func (t *BTree) descend(key []byte, path *[]PageID) (PageID, error) {
	id := t.root
	for depth := 0; depth < 64; depth++ {
		p, err := t.pool.Fetch(id)
		if err != nil {
			return InvalidPage, err
		}
		if btType(p) == btreeLeaf {
			t.pool.Unpin(id, false)
			return id, nil
		}
		if path != nil {
			*path = append(*path, id)
		}
		next := btLeft(p)
		err = btWalk(p, func(i int, e btEntry) bool {
			if bytes.Compare(e.key, key) <= 0 {
				next = childID(e.val)
				return true
			}
			return false
		})
		t.pool.Unpin(id, false)
		if err != nil {
			return InvalidPage, err
		}
		if next == InvalidPage {
			return InvalidPage, ErrBadTree
		}
		id = next
	}
	return InvalidPage, fmt.Errorf("%w: descent too deep", ErrBadTree)
}

// Put inserts or replaces the OID under key.
func (t *BTree) Put(key string, oid OID) error {
	k := []byte(key)
	if len(k) > MaxKeyLen {
		return ErrKeyTooLong
	}
	var path []PageID
	leafID, err := t.descend(k, &path)
	if err != nil {
		return err
	}
	p, err := t.pool.Fetch(leafID)
	if err != nil {
		return err
	}
	i, found, err := btFind(p, k)
	if err != nil {
		t.pool.Unpin(leafID, false)
		return err
	}
	if found {
		e, err := btEntryAt(p, i)
		if err == nil {
			copy(e.val, leafVal(oid))
		}
		uerr := t.pool.Unpin(leafID, true)
		if err != nil {
			return err
		}
		return uerr
	}
	ok, err := btInsertAt(p, i, k, leafVal(oid))
	if err != nil {
		t.pool.Unpin(leafID, false)
		return err
	}
	if ok {
		return t.pool.Unpin(leafID, true)
	}
	// Leaf is full: split, then retry the insert into the proper half.
	sepKey, rightID, err := t.splitLeaf(p, leafID)
	if err != nil {
		t.pool.Unpin(leafID, false)
		return err
	}
	target := leafID
	if bytes.Compare(k, sepKey) >= 0 {
		target = rightID
	}
	if err := t.pool.Unpin(leafID, true); err != nil {
		return err
	}
	if err := t.insertIntoLeaf(target, k, leafVal(oid)); err != nil {
		return err
	}
	return t.propagate(path, sepKey, rightID)
}

// insertIntoLeaf inserts into a known, freshly split leaf.
func (t *BTree) insertIntoLeaf(id PageID, key, val []byte) error {
	p, err := t.pool.Fetch(id)
	if err != nil {
		return err
	}
	i, found, err := btFind(p, key)
	if err == nil && !found {
		var ok bool
		ok, err = btInsertAt(p, i, key, val)
		if err == nil && !ok {
			err = fmt.Errorf("%w: no room after split", ErrBadTree)
		}
	}
	uerr := t.pool.Unpin(id, true)
	if err != nil {
		return err
	}
	return uerr
}

// splitLeaf moves the upper half of p into a new right sibling and
// returns the separator key (first key of the right node).
func (t *BTree) splitLeaf(p *Page, id PageID) ([]byte, PageID, error) {
	right, err := t.pool.NewPage()
	if err != nil {
		return nil, InvalidPage, err
	}
	rightID := right.ID()
	initBTNode(right, btreeLeaf)
	btSetNext(right, btNext(p))
	btSetNext(p, rightID)

	if err := t.moveUpperHalf(p, right); err != nil {
		t.pool.Unpin(rightID, false)
		return nil, InvalidPage, err
	}
	sep, err := btEntryAt(right, 0)
	if err != nil {
		t.pool.Unpin(rightID, false)
		return nil, InvalidPage, err
	}
	sepKey := append([]byte(nil), sep.key...)
	if err := t.pool.Unpin(rightID, true); err != nil {
		return nil, InvalidPage, err
	}
	return sepKey, rightID, nil
}

// moveUpperHalf relocates the upper half of src's entries to dst (same
// node type).
func (t *BTree) moveUpperHalf(src, dst *Page) error {
	n := btCount(src)
	half := n / 2
	type kv struct{ k, v []byte }
	var moved []kv
	err := btWalk(src, func(i int, e btEntry) bool {
		if i >= half {
			moved = append(moved, kv{
				append([]byte(nil), e.key...),
				append([]byte(nil), e.val...),
			})
		}
		return true
	})
	if err != nil {
		return err
	}
	// Truncating the count is enough: entries are contiguous, so the
	// bytes beyond entry half-1 become unreachable free space.
	btSetCount(src, half)
	for i, m := range moved {
		ok, err := btInsertAt(dst, i, m.k, m.v)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("%w: split destination full", ErrBadTree)
		}
	}
	return nil
}

// propagate inserts (sepKey -> rightID) into the parent chain, splitting
// internal nodes and growing a new root as needed.
func (t *BTree) propagate(path []PageID, sepKey []byte, rightID PageID) error {
	key := sepKey
	child := rightID
	for i := len(path) - 1; i >= 0; i-- {
		parentID := path[i]
		p, err := t.pool.Fetch(parentID)
		if err != nil {
			return err
		}
		idx, found, err := btFind(p, key)
		if err != nil || found {
			t.pool.Unpin(parentID, false)
			if err == nil {
				err = fmt.Errorf("%w: duplicate separator", ErrBadTree)
			}
			return err
		}
		ok, err := btInsertAt(p, idx, key, childVal(child))
		if err != nil {
			t.pool.Unpin(parentID, false)
			return err
		}
		if ok {
			return t.pool.Unpin(parentID, true)
		}
		// Split the internal node: middle key moves up.
		newKey, newRight, err := t.splitInternal(p)
		if err != nil {
			t.pool.Unpin(parentID, false)
			return err
		}
		// Insert the pending (key, child) into the correct half.
		target := parentID
		if bytes.Compare(key, newKey) >= 0 {
			target = newRight
		}
		if err := t.pool.Unpin(parentID, true); err != nil {
			return err
		}
		if err := t.insertIntoInternal(target, key, child, newKey); err != nil {
			return err
		}
		key = newKey
		child = newRight
	}
	// Root split: grow the tree.
	return t.growRoot(key, child)
}

// splitInternal splits an internal node, returning the key that moves up
// and the new right node's id. The moved-up key is removed from both
// halves; the right node's leftmost child is the child that key pointed
// to.
func (t *BTree) splitInternal(p *Page) ([]byte, PageID, error) {
	right, err := t.pool.NewPage()
	if err != nil {
		return nil, InvalidPage, err
	}
	rightID := right.ID()
	initBTNode(right, btreeInternal)

	n := btCount(p)
	mid := n / 2
	midE, err := btEntryAt(p, mid)
	if err != nil {
		t.pool.Unpin(rightID, false)
		return nil, InvalidPage, err
	}
	upKey := append([]byte(nil), midE.key...)
	btSetLeft(right, childID(midE.val))

	// Move entries after mid to the right node.
	type kv struct{ k, v []byte }
	var moved []kv
	btWalk(p, func(i int, e btEntry) bool { //nolint:errcheck
		if i > mid {
			moved = append(moved, kv{
				append([]byte(nil), e.key...),
				append([]byte(nil), e.val...),
			})
		}
		return true
	})
	btSetCount(p, mid) // drops mid and everything after
	for i, m := range moved {
		ok, err := btInsertAt(right, i, m.k, m.v)
		if err != nil || !ok {
			t.pool.Unpin(rightID, false)
			if err == nil {
				err = fmt.Errorf("%w: internal split destination full", ErrBadTree)
			}
			return nil, InvalidPage, err
		}
	}
	if err := t.pool.Unpin(rightID, true); err != nil {
		return nil, InvalidPage, err
	}
	return upKey, rightID, nil
}

// insertIntoInternal inserts (key -> child) into a known internal node.
// newKey is the key that moved up during the split; when key == newKey
// the child becomes the node's leftmost pointer instead.
func (t *BTree) insertIntoInternal(id PageID, key []byte, child PageID, newKey []byte) error {
	p, err := t.pool.Fetch(id)
	if err != nil {
		return err
	}
	var uerr error
	if bytes.Equal(key, newKey) {
		btSetLeft(p, child)
	} else {
		idx, found, ferr := btFind(p, key)
		if ferr != nil || found {
			t.pool.Unpin(id, false)
			if ferr == nil {
				ferr = fmt.Errorf("%w: duplicate separator", ErrBadTree)
			}
			return ferr
		}
		ok, ierr := btInsertAt(p, idx, key, childVal(child))
		if ierr != nil || !ok {
			t.pool.Unpin(id, false)
			if ierr == nil {
				ierr = fmt.Errorf("%w: no room after internal split", ErrBadTree)
			}
			return ierr
		}
	}
	uerr = t.pool.Unpin(id, true)
	return uerr
}

// growRoot installs a new root above the old one.
func (t *BTree) growRoot(key []byte, right PageID) error {
	p, err := t.pool.NewPage()
	if err != nil {
		return err
	}
	newRoot := p.ID()
	initBTNode(p, btreeInternal)
	btSetLeft(p, t.root)
	ok, err := btInsertAt(p, 0, key, childVal(right))
	if err != nil || !ok {
		t.pool.Unpin(newRoot, false)
		if err == nil {
			err = fmt.Errorf("%w: empty new root full", ErrBadTree)
		}
		return err
	}
	if err := t.pool.Unpin(newRoot, true); err != nil {
		return err
	}
	t.root = newRoot
	return nil
}

// Delete removes key. Nodes are not rebalanced; emptied leaves simply
// stop matching.
func (t *BTree) Delete(key string) (bool, error) {
	k := []byte(key)
	if len(k) > MaxKeyLen {
		return false, ErrKeyTooLong
	}
	leafID, err := t.descend(k, nil)
	if err != nil {
		return false, err
	}
	p, err := t.pool.Fetch(leafID)
	if err != nil {
		return false, err
	}
	i, found, err := btFind(p, k)
	if err != nil || !found {
		t.pool.Unpin(leafID, false)
		return false, err
	}
	err = btRemoveAt(p, i)
	uerr := t.pool.Unpin(leafID, err == nil)
	if err != nil {
		return false, err
	}
	return true, uerr
}

// Ascend calls fn for every (key, OID) pair in ascending key order,
// stopping early when fn returns false.
func (t *BTree) Ascend(fn func(key string, oid OID) bool) error {
	// Find the leftmost leaf.
	id := t.root
	for {
		p, err := t.pool.Fetch(id)
		if err != nil {
			return err
		}
		if btType(p) == btreeLeaf {
			t.pool.Unpin(id, false)
			break
		}
		next := btLeft(p)
		t.pool.Unpin(id, false)
		if next == InvalidPage {
			return ErrBadTree
		}
		id = next
	}
	// Walk the leaf chain.
	for id != InvalidPage {
		p, err := t.pool.Fetch(id)
		if err != nil {
			return err
		}
		type kv struct {
			k string
			v OID
		}
		var batch []kv
		werr := btWalk(p, func(i int, e btEntry) bool {
			batch = append(batch, kv{string(e.key), leafOID(e.val)})
			return true
		})
		next := btNext(p)
		t.pool.Unpin(id, false)
		if werr != nil {
			return werr
		}
		for _, e := range batch {
			if !fn(e.k, e.v) {
				return nil
			}
		}
		id = next
	}
	return nil
}

// Len counts the stored keys (walks the leaf chain).
func (t *BTree) Len() (int, error) {
	n := 0
	err := t.Ascend(func(string, OID) bool { n++; return true })
	return n, err
}

// AscendRange calls fn for every key in [start, end) in ascending order,
// stopping early when fn returns false. An empty end means "to the last
// key".
func (t *BTree) AscendRange(start, end string, fn func(key string, oid OID) bool) error {
	if len(start) > MaxKeyLen || len(end) > MaxKeyLen {
		return ErrKeyTooLong
	}
	// Descend to the leaf responsible for start.
	id, err := t.descend([]byte(start), nil)
	if err != nil {
		return err
	}
	for id != InvalidPage {
		p, err := t.pool.Fetch(id)
		if err != nil {
			return err
		}
		type kv struct {
			k string
			v OID
		}
		var batch []kv
		werr := btWalk(p, func(i int, e btEntry) bool {
			batch = append(batch, kv{string(e.key), leafOID(e.val)})
			return true
		})
		next := btNext(p)
		t.pool.Unpin(id, false)
		if werr != nil {
			return werr
		}
		for _, e := range batch {
			if e.k < start {
				continue
			}
			if end != "" && e.k >= end {
				return nil
			}
			if !fn(e.k, e.v) {
				return nil
			}
		}
		id = next
	}
	return nil
}

// AscendPrefix calls fn for every key with the given prefix, ascending.
func (t *BTree) AscendPrefix(prefix string, fn func(key string, oid OID) bool) error {
	if prefix == "" {
		return t.Ascend(fn)
	}
	// The end of the prefix range is the prefix with its last byte
	// incremented (carrying over 0xFF bytes).
	end := []byte(prefix)
	for i := len(end) - 1; i >= 0; i-- {
		if end[i] != 0xFF {
			end[i]++
			end = end[:i+1]
			break
		}
		if i == 0 {
			end = nil // prefix is all 0xFF: scan to the end
		}
	}
	return t.AscendRange(prefix, string(end), fn)
}
