// Package bench reproduces the paper's evaluation (§4) on the
// deterministic discrete-event simulator. Each scheme — Single-/Multi-
// Thread Client-Server, static BestPeer (BPS), reconfigurable BestPeer
// (BPR) and Gnutella — is modelled as an event-driven protocol over
// netsim hosts, with costs calibrated to the paper's era (Pentium II
// 200 MHz nodes on a shared LAN) so the figures reproduce the *shape* of
// the published results: who wins, by what rough factor, and where the
// crossovers fall.
package bench

import "time"

// CostModel is the shared calibration for all schemes.
type CostModel struct {
	// Latency is one-way propagation delay between any two hosts.
	Latency time.Duration
	// Bandwidth is per-host link rate in bytes/second (charged once on
	// the sender's uplink and once on the receiver's downlink).
	Bandwidth float64

	// QuerySize is the wire size of a plain query (CS and Gnutella).
	QuerySize int
	// AgentSize is a serialized agent: packet header, class name, state.
	AgentSize int
	// ClassSize is the class payload shipped to a node lacking the
	// agent's class.
	ClassSize int
	// ResultOverhead is the fixed portion of a result/hit message.
	ResultOverhead int
	// NameSize is the per-hit size when only names travel (hints,
	// Gnutella QueryHits, the Fig. 8 setup).
	NameSize int

	// Compression is the gzip ratio applied to compressible messages
	// (agents, queries, name lists); object payloads are random data
	// and do not compress.
	Compression float64

	// AgentStartup is the cost of reconstructing an incoming agent and
	// preparing its thread of execution — the code-shipping overhead
	// that makes CS win on flat topologies.
	AgentStartup time.Duration
	// ClassInstall is the extra cost of installing a shipped class.
	ClassInstall time.Duration
	// QueryStartup is a CS/Gnutella server's per-query setup cost.
	QueryStartup time.Duration
	// ForwardCost is the CPU cost of receiving a descriptor, checking it
	// for duplication/expiry and cloning it to each peer — paid per hop
	// by BestPeer agents, Gnutella queries and CS queries alike. It is
	// what makes "routing through the entire intermediate peers" slow on
	// the first BestPeer run (Fig. 8a) and every Gnutella run.
	ForwardCost time.Duration
	// MatchPerObject is the per-object comparison cost during the scan.
	MatchPerObject time.Duration
	// RelayCost is the CPU cost of relaying one message along the
	// return path (CS answers).
	RelayCost time.Duration
	// GnuRelay is the per-hop cost of a Gnutella servant processing and
	// re-routing a QueryHit descriptor. FURI is a full Java servant with
	// a GUI; per-descriptor handling on a 200 MHz machine is substantial
	// and is what makes path-routed hits expensive in Fig. 8.
	GnuRelay time.Duration
}

// DefaultCost returns the calibration used throughout the evaluation:
// a 100 Mbit/s shared LAN of 200 MHz machines. On this balance the wire
// is fast relative to per-hop protocol work, so topology and routing —
// not raw transfer — shape the results, as in the paper's testbed.
func DefaultCost() CostModel {
	return CostModel{
		Latency:        500 * time.Microsecond,
		Bandwidth:      1.25e7, // 100 Mbit/s
		QuerySize:      128,
		AgentSize:      2048,
		ClassSize:      6144,
		ResultOverhead: 96,
		NameSize:       48,
		Compression:    0.55,
		AgentStartup:   25 * time.Millisecond,
		ClassInstall:   15 * time.Millisecond,
		QueryStartup:   2 * time.Millisecond,
		ForwardCost:    8 * time.Millisecond,
		MatchPerObject: 60 * time.Microsecond,
		RelayCost:      15 * time.Millisecond,
		GnuRelay:       25 * time.Millisecond,
	}
}

// compressed scales a compressible message size by the gzip ratio.
func (c CostModel) compressed(n int) int {
	if c.Compression <= 0 || c.Compression >= 1 {
		return n
	}
	return int(float64(n) * c.Compression)
}

// scanCost is the CPU time to compare every local object with the query.
func (c CostModel) scanCost(objects int) time.Duration {
	return time.Duration(objects) * c.MatchPerObject
}

// resultSize is the wire size of a result batch carrying `hits` answers.
// With data, each hit carries an object payload (incompressible); without
// data only names travel (compressible).
func (c CostModel) resultSize(hits, objectSize int, includeData bool) int {
	if hits == 0 {
		return 0
	}
	if includeData {
		return c.ResultOverhead + hits*(c.NameSize+objectSize)
	}
	return c.compressed(c.ResultOverhead + hits*c.NameSize)
}
