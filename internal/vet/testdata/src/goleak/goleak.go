// Package goleak is a bpvet fixture for the goroutine-lifecycle
// analyzer: spawns with and without a termination path.
package goleak

import (
	"sync"
	"time"
)

type worker struct {
	stop chan struct{}
	wg   sync.WaitGroup
}

// startOK selects on a stop channel — fine.
func (w *worker) startOK() {
	go func() {
		for {
			select {
			case <-w.stop:
				return
			case <-time.After(time.Millisecond):
			}
		}
	}()
}

// startLeak spins forever with no exit of any kind.
func (w *worker) startLeak() {
	go func() { // want `unbounded loop`
		for {
			time.Sleep(time.Millisecond)
		}
	}()
}

// startIndirect leaks through a named function.
func (w *worker) startIndirect() {
	go w.run() // want `unbounded loop`
}

func (w *worker) run() {
	for {
		time.Sleep(time.Millisecond)
	}
}

// startDeep leaks two call levels below the spawn.
func (w *worker) startDeep() {
	go func() { // want `unbounded loop in goleak.worker.run`
		w.step()
	}()
}

func (w *worker) step() { w.run() }

// startTracked exits on channel close and is WaitGroup-tracked — fine.
func (w *worker) startTracked(jobs chan int) {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		for {
			j, ok := <-jobs
			if !ok {
				return
			}
			_ = j
		}
	}()
}

// startUntracked has the same exit but nobody observes it.
func (w *worker) startUntracked(jobs chan int) {
	go func() { // want `unbounded loop`
		for {
			if _, ok := <-jobs; !ok {
				return
			}
		}
	}()
}

// startRange drains a channel — terminates when the producer closes it.
func (w *worker) startRange(jobs chan int) {
	go func() {
		for range jobs {
		}
	}()
}

// startBounded counts to a limit — fine.
func (w *worker) startBounded() {
	go func() {
		for i := 0; i < 10; i++ {
			time.Sleep(time.Millisecond)
		}
	}()
}

// startValue spawns a function value the analyzer cannot see into.
func (w *worker) startValue(fn func()) {
	go fn() // want `termination cannot be verified`
}

// startStdlib spawns a function outside the module.
func (w *worker) startStdlib() {
	go time.Sleep(time.Millisecond) // want `outside the module`
}
