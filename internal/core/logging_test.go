package core

import (
	"bytes"
	"fmt"
	"log/slog"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"bestpeer/internal/agent"
	"bestpeer/internal/liglo"
	"bestpeer/internal/storm"
	"bestpeer/internal/topology"
	"bestpeer/internal/transport"
)

// syncBuffer guards the log sink: slog handlers are invoked from
// messenger goroutines.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestNodeLogsKeyEvents(t *testing.T) {
	sink := &syncBuffer{}
	logger := slog.New(slog.NewTextHandler(sink, nil))

	nw := transport.NewInProc()
	srv, err := liglo.NewServer(nw, "liglo-log", liglo.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	mk := func(name string, lg *slog.Logger, dormant bool) *Node {
		st, err := storm.Open(filepath.Join(t.TempDir(), name+".storm"), storm.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
		st.Put(&storm.Object{Name: name + "-obj", Keywords: []string{"logged"}})
		cfg := Config{Network: nw, ListenAddr: name, Store: st, Logger: lg, MaxPeers: 4}
		if dormant {
			reg := agent.NewRegistry()
			if err := agent.RegisterBuiltinsDormant(reg); err != nil {
				t.Fatal(err)
			}
			cfg.Registry = reg
		}
		n, err := NewNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		return n
	}
	base := mk("log-base", logger, false)
	cold := mk("log-cold", logger, true) // class install will be logged
	far := mk("log-far", nil, false)

	if err := base.Join([]string{srv.Addr()}); err != nil {
		t.Fatal(err)
	}
	base.SetPeers([]Peer{{Addr: cold.Addr()}})
	cold.SetPeers([]Peer{{Addr: base.Addr()}, {Addr: far.Addr()}})
	far.SetPeers([]Peer{{Addr: cold.Addr()}})

	if _, err := base.Query(&agent.KeywordAgent{Query: "logged"}, QueryOptions{
		Timeout: 2 * time.Second, WaitAnswers: 3,
	}); err != nil {
		t.Fatal(err)
	}

	out := sink.String()
	for _, want := range []string{
		"joined bestpeer network",
		"installed shipped class",
		"reconfigured peer set",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("log missing %q in:\n%s", want, out)
		}
	}
}

func TestNilLoggerIsSilentAndSafe(t *testing.T) {
	c := newCluster(t, 2, nil, func(i int, s *storm.Store) {
		s.Put(&storm.Object{Name: fmt.Sprintf("q-%d", i), Keywords: []string{"q"}})
	})
	c.wire(topology.Line(2))
	if _, err := c.nodes[0].Query(&agent.KeywordAgent{Query: "q"}, QueryOptions{
		Timeout: time.Second, WaitAnswers: 2,
	}); err != nil {
		t.Fatal(err)
	}
}
