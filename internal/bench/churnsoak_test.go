package bench

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"testing"
	"time"

	"bestpeer/internal/agent"
	"bestpeer/internal/core"
	"bestpeer/internal/liglo"
	"bestpeer/internal/storm"
	"bestpeer/internal/transport"
	"bestpeer/internal/workload"
)

// soakSlot is one fleet position: the store outlives node generations,
// exactly as a real host's disk outlives its process.
type soakSlot struct {
	store *storm.Store
	node  *core.Node
	stop  func()
	gen   int
}

func (s *soakSlot) up() bool { return s.node != nil }

// TestChurnSoak runs a live 8-node fleet (real stores, real agents,
// in-process transport, a real LIGLO server) under continuous
// kill/restart churn with queries flowing throughout, then asserts the
// fleet recovers recall once churn stops and that a full teardown leaks
// no goroutines. `make churnsoak` runs it race-enabled with a longer
// budget via CHURNSOAK_MS.
func TestChurnSoak(t *testing.T) {
	churnFor := 8 * time.Second
	if msStr := os.Getenv("CHURNSOAK_MS"); msStr != "" {
		v, err := strconv.Atoi(msStr)
		if err != nil {
			t.Fatalf("bad CHURNSOAK_MS %q: %v", msStr, err)
		}
		churnFor = time.Duration(v) * time.Millisecond
	}
	baseline := runtime.NumGoroutine()

	nw := transport.NewInProc()
	// The server probes member liveness: crashed generations leave stale
	// registry entries behind, and without a sweep Replenish would keep
	// handing survivors dead addresses.
	srv, err := liglo.NewServer(nw, "liglo-soak", liglo.ServerConfig{
		InitialPeers:  3,
		ProbeInterval: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	const fleet = 8
	spec := &workload.Spec{ObjectsPerNode: 50, ObjectSize: 256, Vocabulary: 8, Seed: 1}
	query := spec.Keyword(3)
	dir := t.TempDir()

	slots := make([]*soakSlot, fleet)
	for i := range slots {
		st, err := storm.Open(filepath.Join(dir, fmt.Sprintf("n%d.storm", i)), storm.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := spec.Populate(i, st); err != nil {
			t.Fatal(err)
		}
		slots[i] = &soakSlot{store: st}
	}

	start := func(i int) {
		s := slots[i]
		s.gen++
		node, err := core.NewNode(core.Config{
			Network:    nw,
			ListenAddr: fmt.Sprintf("soak-%d-g%d", i, s.gen),
			Store:      s.store,
			MaxPeers:   4,
		})
		if err != nil {
			t.Fatalf("slot %d gen %d: %v", i, s.gen, err)
		}
		if err := node.Join([]string{srv.Addr()}); err != nil {
			_ = node.Close() // join failed; discard the half-started node
			t.Fatalf("slot %d join: %v", i, err)
		}
		s.node = node
		s.stop = node.StartRepair(400*time.Millisecond, 150*time.Millisecond)
	}
	down := func(i int, graceful bool) {
		s := slots[i]
		s.stop()
		if graceful {
			_ = s.node.Leave() // transport best-effort; the soak measures recovery
		}
		_ = s.node.Close() // in-proc close is unconditional
		s.node, s.stop = nil, nil
	}
	for i := range slots {
		start(i)
	}

	// Churn loop: slot 0 is the stable base issuing queries; every other
	// slot flaps between up (graceful leave or crash) and down (restart,
	// fresh generation, same store).
	rng := rand.New(rand.NewSource(42))
	queries, failures := 0, 0
	deadline := time.Now().Add(churnFor)
	for time.Now().Before(deadline) {
		victim := 1 + rng.Intn(fleet-1)
		if slots[victim].up() {
			down(victim, rng.Intn(2) == 0)
		} else {
			start(victim)
		}
		res, err := slots[0].node.Query(&agent.KeywordAgent{Query: query}, core.QueryOptions{
			Timeout:   300 * time.Millisecond,
			SkipLocal: true,
		})
		queries++
		if err != nil || len(res.Answers) == 0 {
			failures++
		}
		time.Sleep(120 * time.Millisecond)
	}
	if queries == 0 {
		t.Fatal("no queries issued during churn")
	}
	t.Logf("churn phase: %d queries, %d empty/failed", queries, failures)

	// Recovery: bring every slot back, give the repair loops a few
	// rounds, and demand the fleet answers like a healthy network.
	for i := 1; i < fleet; i++ {
		if !slots[i].up() {
			start(i)
		}
	}
	expected := 0
	for i := 1; i < fleet; i++ {
		expected += spec.MatchCount(i, query)
	}
	var answers int
	for attempt := 0; attempt < 15; attempt++ {
		// Force one heal cycle fleet-wide instead of waiting on the
		// background loops: drop edges to dead generations, then
		// backfill from the (probed, truthful) registry.
		for _, s := range slots {
			s.node.SweepPeers(150 * time.Millisecond)
			s.node.RepairRound("soak-recovery", 150*time.Millisecond)
		}
		res, err := slots[0].node.Query(&agent.KeywordAgent{Query: query}, core.QueryOptions{
			Timeout:     2 * time.Second,
			WaitAnswers: expected,
			SkipLocal:   true,
		})
		if err == nil {
			answers = len(res.Answers)
			if answers >= expected {
				break
			}
		}
		time.Sleep(300 * time.Millisecond)
	}
	if expected == 0 {
		t.Fatal("workload planted no matches; the soak cannot measure recall")
	}
	for i, s := range slots {
		t.Logf("slot %d gen %d addr %s peers %v", i, s.gen, s.node.Addr(), s.node.PeerAddrs())
	}
	if floor := expected / 2; answers < floor {
		t.Errorf("post-churn recall %d/%d below floor %d", answers, expected, floor)
	}
	t.Logf("recovery: %d/%d answers", answers, expected)

	// Full teardown must return the process to its goroutine baseline:
	// every node generation's repair loop, send workers and agent
	// containers included.
	for i := range slots {
		if slots[i].up() {
			down(i, false)
		}
		_ = slots[i].store.Close() // teardown; leak check below is the assertion
	}
	_ = srv.Close() // teardown; leak check below is the assertion
	leakDeadline := time.Now().Add(10 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline {
			break
		}
		if time.Now().After(leakDeadline) {
			var buf []byte
			buf = make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s\nprofile:\n%v",
				runtime.NumGoroutine(), baseline, buf, pprof.Lookup("goroutine"))
		}
		time.Sleep(50 * time.Millisecond)
	}
}
