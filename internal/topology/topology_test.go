package topology

import (
	"testing"
	"testing/quick"
)

func TestStarShape(t *testing.T) {
	s := Star(8)
	if s.N != 8 || s.Base != 0 {
		t.Fatalf("N=%d Base=%d", s.N, s.Base)
	}
	if s.Degree(0) != 7 {
		t.Fatalf("center degree = %d", s.Degree(0))
	}
	for i := 1; i < 8; i++ {
		if s.Degree(i) != 1 || s.Peers(i)[0] != 0 {
			t.Fatalf("leaf %d peers = %v", i, s.Peers(i))
		}
	}
	if s.Depth() != 1 || s.Edges() != 7 || !s.Connected() {
		t.Fatalf("depth=%d edges=%d", s.Depth(), s.Edges())
	}
}

func TestLineShape(t *testing.T) {
	l := Line(5)
	if l.Degree(0) != 1 || l.Degree(4) != 1 {
		t.Fatal("end nodes must have one peer")
	}
	for i := 1; i < 4; i++ {
		if l.Degree(i) != 2 {
			t.Fatalf("inner node %d degree = %d", i, l.Degree(i))
		}
	}
	if l.Depth() != 4 || l.Edges() != 4 {
		t.Fatalf("depth=%d edges=%d", l.Depth(), l.Edges())
	}
}

func TestTreeShape(t *testing.T) {
	// Binary tree with 7 nodes: root 0, children 1,2; grandchildren 3..6.
	tr := Tree(7, 2)
	if tr.Degree(0) != 2 {
		t.Fatalf("root degree = %d", tr.Degree(0))
	}
	if tr.Degree(1) != 3 { // parent + two children
		t.Fatalf("internal degree = %d", tr.Degree(1))
	}
	if tr.Degree(6) != 1 {
		t.Fatalf("leaf degree = %d", tr.Degree(6))
	}
	if tr.Depth() != 2 {
		t.Fatalf("depth = %d", tr.Depth())
	}
	dist := tr.BFS(0)
	want := []int{0, 1, 1, 2, 2, 2, 2}
	for i := range want {
		if dist[i] != want[i] {
			t.Fatalf("BFS = %v", dist)
		}
	}
}

func TestTreeLevels(t *testing.T) {
	if TreeLevels(2, 0) != 1 || TreeLevels(2, 1) != 3 || TreeLevels(2, 2) != 7 {
		t.Fatal("binary TreeLevels wrong")
	}
	if TreeLevels(3, 2) != 13 {
		t.Fatalf("TreeLevels(3,2) = %d", TreeLevels(3, 2))
	}
}

func TestTreeKFloor(t *testing.T) {
	tr := Tree(4, 0) // clamped to k=1: a line
	if tr.Depth() != 3 {
		t.Fatalf("k=0 tree depth = %d", tr.Depth())
	}
}

func TestSingleNode(t *testing.T) {
	for _, tp := range []*Topology{Star(1), Line(1), Tree(1, 2), Random(1, 3, 1)} {
		if tp.N != 1 || tp.Degree(0) != 0 || !tp.Connected() || tp.Depth() != 0 {
			t.Fatalf("%s: single-node invariants broken", tp.Name)
		}
	}
}

func TestRandomConnectedAndDeterministic(t *testing.T) {
	a := Random(40, 4, 7)
	b := Random(40, 4, 7)
	if !a.Connected() {
		t.Fatal("random graph disconnected")
	}
	if a.Edges() != b.Edges() {
		t.Fatal("random graph not deterministic")
	}
	for i := 0; i < a.N; i++ {
		pa, pb := a.Peers(i), b.Peers(i)
		if len(pa) != len(pb) {
			t.Fatal("random graph not deterministic")
		}
		for j := range pa {
			if pa[j] != pb[j] {
				t.Fatal("random graph not deterministic")
			}
		}
	}
	c := Random(40, 4, 8)
	if c.Edges() == a.Edges() && sameAdj(a, c) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func sameAdj(a, b *Topology) bool {
	for i := 0; i < a.N; i++ {
		pa, pb := a.Peers(i), b.Peers(i)
		if len(pa) != len(pb) {
			return false
		}
		for j := range pa {
			if pa[j] != pb[j] {
				return false
			}
		}
	}
	return true
}

// Properties that must hold for every generated topology.
func TestTopologyProperties(t *testing.T) {
	check := func(nSeed, kSeed uint8) bool {
		n := int(nSeed%48) + 1
		k := int(kSeed%5) + 1
		for _, tp := range []*Topology{Star(n), Line(n), Tree(n, k), Random(n, k, int64(nSeed)*100+int64(kSeed))} {
			if !tp.Connected() {
				return false
			}
			// Symmetry: i in adj[j] <=> j in adj[i]; no self-loops.
			for i := 0; i < tp.N; i++ {
				for _, j := range tp.Peers(i) {
					if j == i {
						return false
					}
					found := false
					for _, back := range tp.Peers(j) {
						if back == i {
							found = true
						}
					}
					if !found {
						return false
					}
				}
			}
			// Degree sum = 2 * edges.
			sum := 0
			for i := 0; i < tp.N; i++ {
				sum += tp.Degree(i)
			}
			if sum != 2*tp.Edges() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBFSUnreachable(t *testing.T) {
	// A two-node topology with no edges (constructed directly).
	tp := newTopology("disc", 2)
	dist := tp.BFS(0)
	if dist[1] != -1 || tp.Connected() {
		t.Fatal("unreachable node not detected")
	}
}
