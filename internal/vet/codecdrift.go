package vet

import (
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// codecdrift machine-checks the hand-rolled codec convention: every
// encodeX function is paired with a decodeX counterpart, and the two
// sides stay symmetric. Concretely, for each pair it
//
//   - extracts the sequence of Encoder/Decoder primitive operations
//     (Uvarint, String, BPID, ...) in source order, with loop nesting
//     and version-conditional gating preserved, and requires the two
//     sequences to be identical — a field written but not read (or read
//     out of order, or gated on only one side) is a finding;
//   - for versioned pairs (the encoder's first operation writes a value
//     whose expression mentions "version"), requires the decoder to
//     compare the version it read — otherwise newer senders' payloads
//     are misparsed instead of tolerated;
//   - in a package declaring extension-tag constants (const ext<Name> =
//     n of basic type), requires each tag to be both written by the
//     encode path and matched in a decode switch — a tag used on one
//     side only means frames carry bytes nobody reads, or a decoder
//     waits for bytes nobody sends;
//   - requires each versioned or extension-carried pair to have a fuzz
//     corpus seed: a file under <pkg>/testdata/fuzz/<FuzzTarget>/ whose
//     name contains the pair name in lowercase (for example
//     tracecontext-v1 for encodeTraceContext). Seeds keep the fuzzer
//     reaching every extension arm from the first run in CI.
//
// The operation vocabulary is matched by receiver type name (Encoder /
// Decoder) and method name, so the check applies to any package using
// the wire primitives; hand-rolled binary.BigEndian codecs (the
// envelope framing itself) have no operations on either side and pass
// vacuously — framing symmetry is the fuzzers' job.
type codecdrift struct{}

func (codecdrift) Name() string { return "codecdrift" }
func (codecdrift) Doc() string {
	return "encode/decode pairs must agree on field order, version gating, and carry fuzz corpus seeds"
}

// codecOps is the Encoder/Decoder primitive vocabulary. Decoder-only
// bookkeeping (Err, Finish, Remaining) is deliberately absent.
var codecOps = map[string]bool{
	"Uvarint": true, "Varint": true, "Uint8": true, "Bool": true,
	"Float64": true, "String": true, "Bytes2": true, "MsgID": true, "BPID": true,
}

// shapeOp is one primitive operation in an encode or decode body.
type shapeOp struct {
	Op    string
	Loop  int  // enclosing loop nesting depth
	Gated bool // under an if whose condition mentions a version
	Pos   token.Pos
	// VerArg marks an encoder operation whose argument mentions a
	// version — the marker of a versioned pair. Not part of shape
	// equality (the decode side reads into a field, argument-free).
	VerArg bool
}

func (o shapeOp) render() string {
	s := strings.Repeat("[", o.Loop) + o.Op + strings.Repeat("]", o.Loop)
	if o.Gated {
		s = "v?" + s
	}
	return s
}

func renderShape(ops []shapeOp) string {
	if len(ops) == 0 {
		return "(none)"
	}
	parts := make([]string, len(ops))
	for i, o := range ops {
		parts[i] = o.render()
	}
	return strings.Join(parts, " ")
}

// codecPair is one encodeX/decodeX couple within a package.
type codecPair struct {
	name           string // X
	enc, dec       *ast.FuncDecl
	encOps, decOps []shapeOp
	versioned      bool
}

func (codecdrift) RunProgram(p *ProgramPass) {
	for _, pkg := range p.Prog.Pkgs {
		checkPackageCodecs(p, pkg)
	}
}

func checkPackageCodecs(p *ProgramPass, pkg *Package) {
	pairs := make(map[string]*codecPair)
	var order []string
	visit := func(name string) *codecPair {
		pr, ok := pairs[name]
		if !ok {
			pr = &codecPair{name: name}
			pairs[name] = pr
			order = append(order, name)
		}
		return pr
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv != nil {
				continue
			}
			if rest, ok := strings.CutPrefix(fd.Name.Name, "encode"); ok && rest != "" {
				visit(rest).enc = fd
			} else if rest, ok := strings.CutPrefix(fd.Name.Name, "decode"); ok && rest != "" {
				visit(rest).dec = fd
			}
		}
	}

	for _, name := range order {
		pair := pairs[name]
		if pair.enc != nil {
			pair.encOps = codecShape(pkg.Info, pair.enc.Body, "Encoder")
		}
		if pair.dec != nil {
			pair.decOps = codecShape(pkg.Info, pair.dec.Body, "Decoder")
		}
		pair.versioned = len(pair.encOps) > 0 && pair.encOps[0].VerArg
		checkPair(p, pkg, pair)
	}
	checkExtTags(p, pkg)
	checkCorpusSeeds(p, pkg, pairs, order)
}

func checkPair(p *ProgramPass, pkg *Package, pair *codecPair) {
	switch {
	case pair.enc == nil && len(pair.decOps) > 0:
		p.Reportf(pair.dec.Pos(), "decode%s has no encode%s counterpart in this package", pair.name, pair.name)
		return
	case pair.dec == nil && len(pair.encOps) > 0:
		p.Reportf(pair.enc.Pos(), "encode%s has no decode%s counterpart in this package", pair.name, pair.name)
		return
	case pair.enc == nil || pair.dec == nil:
		return
	}

	if i, ok := shapeMismatch(pair.encOps, pair.decOps); ok {
		wrote, read := "nothing", "nothing"
		pos := pair.dec.Pos()
		if i < len(pair.encOps) {
			wrote = pair.encOps[i].render()
		}
		if i < len(pair.decOps) {
			read = pair.decOps[i].render()
			pos = pair.decOps[i].Pos
		}
		p.Reportf(pos, "encode%s/decode%s drift at field %d: encoder writes %s, decoder reads %s (encode: %s | decode: %s)",
			pair.name, pair.name, i+1, wrote, read, renderShape(pair.encOps), renderShape(pair.decOps))
	}

	if pair.versioned && !comparesVersion(pkg.Info, pair.dec.Body) {
		p.Reportf(pair.dec.Pos(), "decode%s reads a version but never compares it; newer senders' payloads will be rejected instead of tolerated",
			pair.name)
	}
}

// shapeMismatch returns the first index where the two op sequences
// disagree (op, loop depth, or gating).
func shapeMismatch(enc, dec []shapeOp) (int, bool) {
	n := len(enc)
	if len(dec) < n {
		n = len(dec)
	}
	for i := 0; i < n; i++ {
		if enc[i].Op != dec[i].Op || enc[i].Loop != dec[i].Loop || enc[i].Gated != dec[i].Gated {
			return i, true
		}
	}
	if len(enc) != len(dec) {
		return n, true
	}
	return 0, false
}

// codecShape extracts the primitive-operation sequence from one body.
// recvName selects the side: methods on a type named Encoder or Decoder.
// Nested function literals are skipped — their operations belong to the
// function that invokes them, which the analyzer does not inline.
func codecShape(info *types.Info, body *ast.BlockStmt, recvName string) []shapeOp {
	var ops []shapeOp
	walkStack(body, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		for _, anc := range stack {
			if _, isLit := anc.(*ast.FuncLit); isLit {
				return
			}
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !codecOps[sel.Sel.Name] {
			return
		}
		named := namedFrom(info.TypeOf(sel.X))
		if named == nil || named.Obj().Name() != recvName {
			return
		}
		op := shapeOp{Op: sel.Sel.Name, Pos: call.Pos()}
		if len(call.Args) > 0 && mentionsVersion(call.Args[0]) {
			op.VerArg = true
		}
		for i, anc := range stack {
			// child is the next node on the path from this ancestor down
			// to the call.
			child := ast.Node(call)
			if i+1 < len(stack) {
				child = stack[i+1]
			}
			switch a := anc.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				op.Loop++
			case *ast.IfStmt:
				// Init (if v := d.Uint8(); ...) and Cond evaluate
				// unconditionally — only the branches are gated.
				if (ast.Node(a.Body) == child || a.Else == child) && mentionsVersion(a.Cond) {
					op.Gated = true
				}
			}
		}
		ops = append(ops, op)
	})
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].Pos < ops[j].Pos })
	return ops
}

// mentionsVersion reports whether any identifier under e reads as a
// version ("version", "Version", "departVersion", ...).
func mentionsVersion(e ast.Expr) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && strings.Contains(strings.ToLower(id.Name), "version") {
			found = true
		}
		return !found
	})
	return found
}

// comparesVersion reports whether the body contains a comparison whose
// operands mention a version — the decoder-side tolerance gate.
func comparesVersion(info *types.Info, body *ast.BlockStmt) bool {
	_ = info
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok {
			return !found
		}
		switch b.Op {
		case token.GTR, token.GEQ, token.LSS, token.LEQ, token.EQL, token.NEQ:
			if mentionsVersion(b.X) || mentionsVersion(b.Y) {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkExtTags verifies every extension-tag constant (ext<Name> of
// basic type) is used on both the encode side (as a call argument) and
// the decode side (in a case clause).
func checkExtTags(p *ProgramPass, pkg *Package) {
	type tagUse struct {
		obj types.Object
		pos token.Pos
		enc bool
		dec bool
	}
	tags := make(map[types.Object]*tagUse)
	var order []types.Object
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		if !strings.HasPrefix(name, "ext") || len(name) < 4 || name[3] < 'A' || name[3] > 'Z' {
			continue
		}
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		if _, basic := c.Type().(*types.Basic); !basic {
			continue
		}
		tags[c] = &tagUse{obj: c, pos: c.Pos()}
		order = append(order, c)
	}
	if len(tags) == 0 {
		return
	}
	for _, f := range pkg.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) {
			id, ok := n.(*ast.Ident)
			if !ok {
				return
			}
			use := tags[pkg.Info.Uses[id]]
			if use == nil {
				return
			}
			for i := len(stack) - 1; i >= 0; i-- {
				// child is the node on the path from this ancestor down
				// to the identifier.
				child := ast.Node(id)
				if i+1 < len(stack) {
					child = stack[i+1]
				}
				switch anc := stack[i].(type) {
				case *ast.CaseClause:
					for _, e := range anc.List {
						if ast.Node(e) == child {
							use.dec = true
							return
						}
					}
				case *ast.CallExpr:
					for _, arg := range anc.Args {
						if ast.Node(arg) == child {
							use.enc = true
							return
						}
					}
				}
			}
		})
	}
	sort.Slice(order, func(i, j int) bool { return order[i].Pos() < order[j].Pos() })
	for _, obj := range order {
		use := tags[obj]
		switch {
		case use.enc && !use.dec:
			p.Reportf(use.pos, "extension tag %s is written by the encoder but never matched by the decoder: receivers silently drop it", obj.Name())
		case use.dec && !use.enc:
			p.Reportf(use.pos, "extension tag %s is matched by the decoder but never written by the encoder: dead decode arm or missing encode path", obj.Name())
		}
	}
}

// checkCorpusSeeds requires a fuzz corpus seed per versioned or
// extension-carried pair: a file under testdata/fuzz/*/ whose name
// contains the pair name lowercased.
func checkCorpusSeeds(p *ProgramPass, pkg *Package, pairs map[string]*codecPair, order []string) {
	var need []*codecPair
	extPairs := extensionPairs(pkg)
	for _, name := range order {
		pair := pairs[name]
		if pair.enc == nil || pair.dec == nil {
			continue
		}
		if pair.versioned || extPairs[name] {
			need = append(need, pair)
		}
	}
	if len(need) == 0 {
		return
	}
	seeds := corpusFiles(pkg.Dir)
	for _, pair := range need {
		want := strings.ToLower(pair.name)
		found := false
		for _, s := range seeds {
			if strings.Contains(strings.ToLower(s), want) {
				found = true
				break
			}
		}
		if !found {
			p.Reportf(pair.enc.Pos(), "versioned codec pair %s has no fuzz corpus seed: add testdata/fuzz/<FuzzTarget>/%s-v1 so CI fuzzing reaches this arm",
				pair.name, want)
		}
	}
}

// extensionPairs finds pairs whose encoded payload is handed to an
// extension-record writer alongside an ext tag: a call of the shape
// someAppend(..., extTag, encodeX(...)).
func extensionPairs(pkg *Package) map[string]bool {
	out := make(map[string]bool)
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			hasTag := false
			for _, arg := range call.Args {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok && strings.HasPrefix(id.Name, "ext") {
					hasTag = true
				}
			}
			if !hasTag {
				return true
			}
			for _, arg := range call.Args {
				inner, ok := ast.Unparen(arg).(*ast.CallExpr)
				if !ok {
					continue
				}
				if id, ok := inner.Fun.(*ast.Ident); ok {
					if rest, ok := strings.CutPrefix(id.Name, "encode"); ok && rest != "" {
						out[rest] = true
					}
				}
			}
			return true
		})
	}
	return out
}

// corpusFiles lists every file under dir/testdata/fuzz/*/.
func corpusFiles(dir string) []string {
	root := filepath.Join(dir, "testdata", "fuzz")
	targets, err := os.ReadDir(root)
	if err != nil {
		return nil
	}
	var out []string
	for _, t := range targets {
		if !t.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(root, t.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			if !f.IsDir() {
				out = append(out, f.Name())
			}
		}
	}
	return out
}
