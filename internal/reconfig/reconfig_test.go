package reconfig

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func obs(addr string, answers, hops int, direct bool) Observation {
	return Observation{Addr: addr, Answers: answers, Hops: hops, Direct: direct}
}

func addrs(sel []Observation) []string {
	out := make([]string, len(sel))
	for i, o := range sel {
		out[i] = o.Addr
	}
	return out
}

func TestMaxCountKeepsTopAnswerers(t *testing.T) {
	in := []Observation{
		obs("a", 3, 1, true),
		obs("b", 10, 2, false),
		obs("c", 0, 1, true),
		obs("d", 7, 3, false),
	}
	got := addrs(MaxCount{}.Select(in, 2))
	if len(got) != 2 || got[0] != "b" || got[1] != "d" {
		t.Fatalf("MaxCount selected %v", got)
	}
}

func TestMaxCountTieBreaks(t *testing.T) {
	in := []Observation{
		{Addr: "z", Answers: 5, Bytes: 100},
		{Addr: "a", Answers: 5, Bytes: 100},
		{Addr: "m", Answers: 5, Bytes: 900},
	}
	got := addrs(MaxCount{}.Select(in, 3))
	// Bytes first, then address.
	if got[0] != "m" || got[1] != "a" || got[2] != "z" {
		t.Fatalf("tie order = %v", got)
	}
}

func TestMinHopsPrefersFarAnswerers(t *testing.T) {
	in := []Observation{
		obs("near", 9, 1, true),
		obs("far", 2, 5, false),
		obs("mid", 4, 3, false),
	}
	got := addrs(MinHops{}.Select(in, 2))
	if got[0] != "far" || got[1] != "mid" {
		t.Fatalf("MinHops selected %v", got)
	}
}

func TestMinHopsTieBreaksByAnswers(t *testing.T) {
	in := []Observation{
		obs("few", 1, 4, false),
		obs("many", 8, 4, false),
	}
	got := addrs(MinHops{}.Select(in, 1))
	if got[0] != "many" {
		t.Fatalf("MinHops tie selected %v", got)
	}
}

func TestStaticKeepsOnlyCurrentDirectPeers(t *testing.T) {
	in := []Observation{
		obs("stranger", 99, 4, false),
		obs("old-1", 0, 1, true),
		obs("old-2", 1, 1, true),
	}
	got := addrs(Static{}.Select(in, 5))
	if len(got) != 2 || got[0] != "old-1" || got[1] != "old-2" {
		t.Fatalf("Static selected %v", got)
	}
}

func TestSelectClamping(t *testing.T) {
	in := []Observation{obs("a", 1, 1, false), obs("b", 2, 1, false)}
	if got := (MaxCount{}).Select(in, 0); len(got) != 0 {
		t.Fatalf("k=0 returned %v", got)
	}
	if got := (MaxCount{}).Select(in, 10); len(got) != 2 {
		t.Fatalf("k>n returned %d", len(got))
	}
	if got := (MaxCount{}).Select(nil, 3); len(got) != 0 {
		t.Fatalf("empty obs returned %v", got)
	}
}

func TestSelectDoesNotMutateInput(t *testing.T) {
	in := []Observation{obs("a", 1, 1, false), obs("b", 9, 1, false)}
	MaxCount{}.Select(in, 1)
	if in[0].Addr != "a" || in[1].Addr != "b" {
		t.Fatal("Select reordered the caller's slice")
	}
}

func TestExplainRanksAndCuts(t *testing.T) {
	in := []Observation{
		obs("a", 3, 1, true),
		obs("b", 10, 2, false),
		obs("c", 0, 1, true),
		obs("d", 7, 3, false),
	}
	d := Explain(MaxCount{}, in, 2)
	if len(d) != 4 {
		t.Fatalf("Explain returned %d decisions, want every candidate", len(d))
	}
	// Rank order: b(10), d(7), a(3), c(0); k=2 keeps b and d.
	wantOrder := []string{"b", "d", "a", "c"}
	for i, w := range wantOrder {
		if d[i].Addr != w || d[i].Rank != i+1 {
			t.Fatalf("decision %d = %s rank %d, want %s rank %d", i, d[i].Addr, d[i].Rank, w, i+1)
		}
		if sel := i < 2; d[i].Selected != sel {
			t.Fatalf("decision %s selected=%v, want %v", d[i].Addr, d[i].Selected, sel)
		}
	}
}

func TestExplainStaticLeavesStrangersUnranked(t *testing.T) {
	in := []Observation{
		obs("stranger", 99, 4, false),
		obs("old", 0, 1, true),
	}
	d := Explain(Static{}, in, 8)
	if d[0].Addr != "old" || d[0].Rank != 1 || !d[0].Selected {
		t.Fatalf("direct peer decision = %+v", d[0])
	}
	if d[1].Addr != "stranger" || d[1].Rank != 0 || d[1].Selected {
		t.Fatalf("stranger decision = %+v", d[1])
	}
}

func TestExplainNegativeKSelectsAllRanked(t *testing.T) {
	in := []Observation{obs("a", 1, 1, false), obs("b", 2, 1, false)}
	for _, d := range Explain(MaxCount{}, in, -1) {
		if !d.Selected {
			t.Fatalf("k<0 must select every ranked candidate, got %+v", d)
		}
	}
}

func TestByName(t *testing.T) {
	if ByName("maxcount").Name() != "maxcount" ||
		ByName("minhops").Name() != "minhops" ||
		ByName("static").Name() != "static" {
		t.Fatal("ByName mapping broken")
	}
	if ByName("unknown").Name() != "maxcount" {
		t.Fatal("unknown should fall back to maxcount")
	}
}

// Property: selections are deterministic, sized <= k, and drawn from the
// input set; MaxCount's selection always has answer counts >= any
// unselected observation.
func TestStrategyProperties(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20)
		k := int(kRaw % 8)
		in := make([]Observation, n)
		for i := range in {
			in[i] = Observation{
				Addr:    string(rune('a' + i)),
				Answers: rng.Intn(10),
				Bytes:   rng.Intn(1000),
				Hops:    rng.Intn(6),
				Direct:  rng.Intn(2) == 0,
			}
		}
		for _, s := range []Strategy{MaxCount{}, MinHops{}, Static{}} {
			sel1 := s.Select(in, k)
			sel2 := s.Select(in, k)
			if len(sel1) != len(sel2) || len(sel1) > k {
				return false
			}
			members := make(map[string]Observation)
			for _, o := range in {
				members[o.Addr] = o
			}
			chosen := make(map[string]bool)
			for i, o := range sel1 {
				if sel2[i].Addr != o.Addr {
					return false // nondeterministic
				}
				if _, ok := members[o.Addr]; !ok {
					return false // invented a peer
				}
				if chosen[o.Addr] {
					return false // duplicate
				}
				chosen[o.Addr] = true
			}
		}
		// MaxCount optimality: min selected answers >= max unselected.
		sel := MaxCount{}.Select(in, k)
		if len(sel) == k && k > 0 {
			minSel := sel[len(sel)-1].Answers
			inSel := make(map[string]bool)
			for _, o := range sel {
				inSel[o.Addr] = true
			}
			for _, o := range in {
				if !inSel[o.Addr] && o.Answers > minSel {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
