package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"bestpeer/internal/obs"
	"bestpeer/internal/wire"
)

// Messenger errors.
var (
	// ErrMessengerClosed reports use after Close.
	ErrMessengerClosed = errors.New("transport: messenger closed")
	// ErrQueueFull reports that a destination's bounded send queue is
	// full; the message was dropped rather than blocking the caller.
	ErrQueueFull = errors.New("transport: send queue full")
	// ErrPeerSuspect reports that the destination has failed repeatedly
	// and is being skipped until its backoff expires.
	ErrPeerSuspect = errors.New("transport: peer suspect, backing off")
)

// Options tunes the messenger's failure handling. The zero value selects
// the defaults noted on each field.
type Options struct {
	// DialTimeout bounds one connection attempt. Default 2s.
	DialTimeout time.Duration
	// WriteTimeout bounds one envelope write on an established
	// connection (where the underlying conn honours deadlines).
	// Default 2s.
	WriteTimeout time.Duration
	// QueueSize bounds each destination's send queue. A full queue makes
	// Send return ErrQueueFull instead of blocking. Default 128.
	QueueSize int
	// FailThreshold is how many consecutive delivery failures mark a
	// destination suspect. Default 3.
	FailThreshold int
	// BackoffBase is the suspect backoff after FailThreshold failures;
	// it doubles with each further failure. Default 100ms.
	BackoffBase time.Duration
	// BackoffMax caps the suspect backoff. Default 10s.
	BackoffMax time.Duration
	// Metrics is the registry the messenger publishes its counters,
	// queue-depth gauge and latency histograms to. Nil means a private
	// registry; share one per node so /metrics shows transport state.
	// Families assume one messenger per registry (per-node registries).
	Metrics *obs.Registry
	// Journal receives structured transport events: message drops by
	// reason and per-peer suspect/recovered liveness transitions. Nil
	// disables journalling (obs.Journal methods are nil-safe).
	Journal *obs.Journal
	// OnSuspect, when non-nil, is invoked on suspect-state transitions:
	// once when a destination crosses the consecutive-failure threshold
	// (suspect=true) and once when a delivery to it succeeds again
	// (suspect=false). It runs on the send worker outside messenger
	// locks; implementations must not block. The failure detector in
	// internal/core uses it to kick repair without polling.
	OnSuspect func(addr string, suspect bool)
}

func (o Options) withDefaults() Options {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 2 * time.Second
	}
	if o.QueueSize <= 0 {
		o.QueueSize = 128
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 3
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 100 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 10 * time.Second
	}
	if o.Metrics == nil {
		o.Metrics = obs.NewRegistry()
	}
	return o
}

// Messenger delivers wire envelopes between named endpoints. Each
// messenger owns a listener; incoming connections are read in their own
// goroutines and every decoded envelope is handed to the handler.
//
// Outgoing delivery is asynchronous: Send enqueues onto a bounded
// per-destination queue drained by a dedicated worker, so a slow or
// unreachable peer can never block the caller. Per-destination ordering
// is preserved. A destination that fails FailThreshold times in a row is
// marked suspect and skipped (Send returns ErrPeerSuspect) until an
// exponential backoff expires; one successful delivery clears it.
type Messenger struct {
	network  Network
	listener net.Listener
	handler  func(*wire.Envelope)
	opts     Options

	mu     sync.Mutex
	outs   map[string]*sendQueue
	ins    map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
	done   chan struct{}

	// Metric handles, cached from opts.Metrics at construction so the
	// hot path is one atomic add. Dropped envelopes are split by reason
	// under one family.
	sent            *obs.Counter
	received        *obs.Counter
	droppedQueue    *obs.Counter // reason="queue-full"
	droppedSuspect  *obs.Counter // reason="suspect"
	droppedEncode   *obs.Counter // reason="encode"
	droppedDeliver  *obs.Counter // reason="deliver"
	droppedForget   *obs.Counter // reason="forget"
	redialsMetric   *obs.Counter
	handlerPanicsMx *obs.Counter
	loopPanicsMx    *obs.Counter
	dialSeconds     *obs.Histogram
	writeSeconds    *obs.Histogram
}

// MessengerStats is a point-in-time snapshot of the messenger counters.
type MessengerStats struct {
	Sent          uint64
	Received      uint64
	Dropped       uint64 // all reasons combined
	Redials       uint64
	HandlerPanics uint64
	LoopPanics    uint64
}

// Stats snapshots the messenger counters.
func (m *Messenger) Stats() MessengerStats {
	return MessengerStats{
		Sent:     m.sent.Value(),
		Received: m.received.Value(),
		Dropped: m.droppedQueue.Value() + m.droppedSuspect.Value() +
			m.droppedEncode.Value() + m.droppedDeliver.Value() +
			m.droppedForget.Value(),
		Redials:       m.redialsMetric.Value(),
		HandlerPanics: m.handlerPanicsMx.Value(),
		LoopPanics:    m.loopPanicsMx.Value(),
	}
}

// bindMetrics registers the messenger's metric families and caches the
// instance handles.
func (m *Messenger) bindMetrics(reg *obs.Registry) {
	const dropHelp = "Outgoing envelopes abandoned, by reason."
	m.sent = reg.Counter("bestpeer_transport_messages_sent_total",
		"Envelopes written to the network.")
	m.received = reg.Counter("bestpeer_transport_messages_received_total",
		"Envelopes decoded from the network.")
	m.droppedQueue = reg.Counter("bestpeer_transport_messages_dropped_total", dropHelp,
		obs.L("reason", "queue-full"))
	m.droppedSuspect = reg.Counter("bestpeer_transport_messages_dropped_total", dropHelp,
		obs.L("reason", "suspect"))
	m.droppedEncode = reg.Counter("bestpeer_transport_messages_dropped_total", dropHelp,
		obs.L("reason", "encode"))
	m.droppedDeliver = reg.Counter("bestpeer_transport_messages_dropped_total", dropHelp,
		obs.L("reason", "deliver"))
	m.droppedForget = reg.Counter("bestpeer_transport_messages_dropped_total", dropHelp,
		obs.L("reason", "forget"))
	m.redialsMetric = reg.Counter("bestpeer_transport_redials_total",
		"Stale cached connections re-dialed.")
	m.handlerPanicsMx = reg.Counter("bestpeer_transport_handler_panics_total",
		"Handler invocations that panicked and were contained.")
	m.loopPanicsMx = reg.Counter("bestpeer_transport_loop_panics_total",
		"Messenger goroutines that panicked and were contained.")
	m.dialSeconds = reg.Histogram("bestpeer_transport_dial_seconds",
		"Outgoing connection dial latency.", obs.LatencyBuckets)
	m.writeSeconds = reg.Histogram("bestpeer_transport_write_seconds",
		"Envelope write latency on established connections.", obs.LatencyBuckets)
	reg.GaugeFunc("bestpeer_transport_send_queue_depth",
		"Envelopes currently queued across all destinations.",
		func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			depth := 0
			for _, q := range m.outs {
				depth += len(q.ch)
			}
			return float64(depth)
		})
}

// containLoop is deferred at the top of every messenger goroutine so a
// panic in the accept, read or send path is counted instead of killing
// the process. Handler panics are contained separately (invokeHandler);
// this guards the messenger's own loop code.
func (m *Messenger) containLoop() {
	if r := recover(); r != nil {
		m.loopPanicsMx.Inc()
	}
}

// NewMessenger binds addr on the network with default options. handler is
// invoked from reader goroutines — it must be safe for concurrent use.
func NewMessenger(network Network, addr string, handler func(*wire.Envelope)) (*Messenger, error) {
	return NewMessengerOpts(network, addr, handler, Options{})
}

// NewMessengerOpts binds addr on the network and starts accepting.
func NewMessengerOpts(network Network, addr string, handler func(*wire.Envelope), opts Options) (*Messenger, error) {
	l, err := network.Listen(addr)
	if err != nil {
		return nil, err
	}
	m := &Messenger{
		network:  network,
		listener: l,
		handler:  handler,
		opts:     opts.withDefaults(),
		outs:     make(map[string]*sendQueue),
		ins:      make(map[net.Conn]struct{}),
		done:     make(chan struct{}),
	}
	m.bindMetrics(m.opts.Metrics)
	m.wg.Add(1)
	go m.acceptLoop()
	return m, nil
}

// Addr returns the bound address.
func (m *Messenger) Addr() string { return m.listener.Addr().String() }

// Sent returns how many envelopes were written to the network.
func (m *Messenger) Sent() uint64 { return m.Stats().Sent }

// Received returns how many envelopes were decoded from the network.
func (m *Messenger) Received() uint64 { return m.Stats().Received }

// Dropped returns how many outgoing envelopes were abandoned: queue
// overflow, suspect destinations and delivery failures.
func (m *Messenger) Dropped() uint64 { return m.Stats().Dropped }

// Redials returns how many times a stale cached connection was re-dialed.
func (m *Messenger) Redials() uint64 { return m.Stats().Redials }

// HandlerPanics returns how many handler invocations panicked (each is
// contained to its envelope; the reader goroutine survives).
func (m *Messenger) HandlerPanics() uint64 { return m.Stats().HandlerPanics }

// LoopPanics returns how many messenger goroutines panicked and were
// contained. Anything above zero is a transport bug.
func (m *Messenger) LoopPanics() uint64 { return m.Stats().LoopPanics }

// Forget releases every resource held for the destination: its send
// queue, worker goroutine, cached connection and suspect/backoff state.
// Queued envelopes are dropped (reason "forget") — the peer has departed,
// so delivering them would only burn dial timeouts. Call it when a peer
// leaves the overlay, so a long-lived node under churn does not
// accumulate one worker per peer it ever spoke to. A later Send to the
// same address starts fresh. It reports whether state existed to release.
func (m *Messenger) Forget(to string) bool {
	m.mu.Lock()
	q, ok := m.outs[to]
	if ok {
		delete(m.outs, to)
	}
	m.mu.Unlock()
	if !ok {
		return false
	}
	q.stop()
	return true
}

// Suspect reports whether the destination is currently in backoff.
func (m *Messenger) Suspect(to string) bool {
	m.mu.Lock()
	q, ok := m.outs[to]
	m.mu.Unlock()
	if !ok {
		return false
	}
	_, suspect := q.suspended()
	return suspect
}

// Failing reports whether the destination has crossed the consecutive-
// failure threshold and has not delivered anything since. Unlike
// Suspect, this does not reset when the backoff window expires — only a
// successful delivery clears it — so slow-cadence health checks (the
// repair loop) cannot race a short backoff and miss a dead peer.
func (m *Messenger) Failing(to string) bool {
	m.mu.Lock()
	q, ok := m.outs[to]
	m.mu.Unlock()
	if !ok {
		return false
	}
	q.qmu.Lock()
	defer q.qmu.Unlock()
	return q.failures >= m.opts.FailThreshold
}

func (m *Messenger) acceptLoop() {
	defer m.wg.Done()
	defer m.containLoop()
	for {
		conn, err := m.listener.Accept()
		if err != nil {
			return
		}
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			_ = conn.Close() // racing shutdown; the dialer sees a reset either way
			return
		}
		m.ins[conn] = struct{}{}
		m.mu.Unlock()
		m.wg.Add(1)
		go m.readLoop(conn)
	}
}

func (m *Messenger) readLoop(conn net.Conn) {
	defer m.wg.Done()
	defer m.containLoop()
	defer func() {
		_ = conn.Close() // reader is done with it; peer may already be gone
		m.mu.Lock()
		delete(m.ins, conn)
		m.mu.Unlock()
	}()
	wc := wire.NewConn(conn)
	for {
		env, err := wc.Recv()
		if err != nil {
			return
		}
		m.mu.Lock()
		closed := m.closed
		m.mu.Unlock()
		if closed {
			return
		}
		m.received.Inc()
		if m.handler != nil {
			m.invokeHandler(env)
		}
	}
}

// invokeHandler contains a handler panic to the envelope that caused it,
// so one bad message cannot kill a reader goroutine.
func (m *Messenger) invokeHandler(env *wire.Envelope) {
	defer func() {
		if r := recover(); r != nil {
			m.handlerPanicsMx.Inc()
		}
	}()
	m.handler(env)
}

// Send enqueues env for asynchronous delivery to the endpoint at to.
// It never blocks: a full queue returns ErrQueueFull and a destination
// in failure backoff returns ErrPeerSuspect. A nil return means the
// envelope was accepted for delivery, not that it arrived — transport is
// best-effort, exactly like the lossy networks the paper assumes.
func (m *Messenger) Send(to string, env *wire.Envelope) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrMessengerClosed
	}
	q, ok := m.outs[to]
	if !ok {
		q = newSendQueue(m, to)
		m.outs[to] = q
		m.wg.Add(1)
		go q.run()
	}
	m.mu.Unlock()

	if until, suspect := q.suspended(); suspect {
		m.droppedSuspect.Inc()
		m.opts.Journal.Append(obs.Event{Kind: obs.EvMessageDropped, Peer: to, Reason: "suspect"})
		return fmt.Errorf("%w: %s for another %v", ErrPeerSuspect, to, time.Until(until).Round(time.Millisecond))
	}
	select {
	case q.ch <- env:
		return nil
	default:
		m.droppedQueue.Inc()
		m.opts.Journal.Append(obs.Event{Kind: obs.EvMessageDropped, Peer: to, Reason: "queue-full"})
		return fmt.Errorf("%w: %s", ErrQueueFull, to)
	}
}

// Close stops accepting, drops cached connections, terminates the send
// workers and waits for every goroutine to drain.
func (m *Messenger) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	close(m.done)
	ins := make([]net.Conn, 0, len(m.ins))
	for c := range m.ins {
		ins = append(ins, c)
	}
	m.mu.Unlock()

	// Unblocks the accept loop; its error is the shutdown signal.
	_ = m.listener.Close()
	// Closing accepted connections unblocks their reader goroutines;
	// otherwise Close would wait on peers that close after us.
	for _, c := range ins {
		_ = c.Close() // best effort; the reader's own defer also closes
	}
	m.wg.Wait()
	return nil
}

// sendQueue is one destination's bounded queue plus the single worker
// goroutine that drains it. The worker owns conn; failure state is
// shared with Send under qmu.
type sendQueue struct {
	m    *Messenger
	addr string
	ch   chan *wire.Envelope

	stopped  chan struct{} // closed by Forget; ends the worker early
	stopOnce sync.Once

	qmu          sync.Mutex
	failures     int
	suspectUntil time.Time

	conn net.Conn // worker-only
}

func newSendQueue(m *Messenger, addr string) *sendQueue {
	return &sendQueue{
		m:       m,
		addr:    addr,
		ch:      make(chan *wire.Envelope, m.opts.QueueSize),
		stopped: make(chan struct{}),
	}
}

// stop ends the worker; idempotent so Forget racing Close is safe.
func (q *sendQueue) stop() {
	q.stopOnce.Do(func() { close(q.stopped) })
}

// suspended reports whether the destination is inside its backoff window.
func (q *sendQueue) suspended() (time.Time, bool) {
	q.qmu.Lock()
	defer q.qmu.Unlock()
	if q.suspectUntil.IsZero() || time.Now().After(q.suspectUntil) {
		return time.Time{}, false
	}
	return q.suspectUntil, true
}

// fail records one delivery failure and arms the exponential backoff
// once the consecutive-failure threshold is crossed. The suspect
// transition (not every failure) is journalled.
func (q *sendQueue) fail() {
	q.qmu.Lock()
	q.failures++
	failures := q.failures
	over := failures - q.m.opts.FailThreshold
	if over < 0 {
		q.qmu.Unlock()
		return
	}
	backoff := q.m.opts.BackoffBase
	for i := 0; i < over && backoff < q.m.opts.BackoffMax; i++ {
		backoff *= 2
	}
	if backoff > q.m.opts.BackoffMax {
		backoff = q.m.opts.BackoffMax
	}
	q.suspectUntil = time.Now().Add(backoff)
	q.qmu.Unlock()
	if over == 0 {
		q.m.opts.Journal.Append(obs.Event{Kind: obs.EvPeerSuspect, Peer: q.addr, Count: failures})
		if cb := q.m.opts.OnSuspect; cb != nil {
			cb(q.addr, true)
		}
	}
}

// succeed clears the failure state after a delivered envelope; recovery
// from suspect (a state transition, not every delivery) is journalled.
func (q *sendQueue) succeed() {
	q.qmu.Lock()
	wasSuspect := !q.suspectUntil.IsZero()
	q.failures = 0
	q.suspectUntil = time.Time{}
	q.qmu.Unlock()
	if wasSuspect {
		q.m.opts.Journal.Append(obs.Event{Kind: obs.EvPeerRecovered, Peer: q.addr})
		if cb := q.m.opts.OnSuspect; cb != nil {
			cb(q.addr, false)
		}
	}
}

func (q *sendQueue) run() {
	defer q.m.wg.Done()
	defer q.m.containLoop()
	defer func() {
		if q.conn != nil {
			_ = q.conn.Close() // worker shutdown; nothing to report the error to
			q.conn = nil
		}
	}()
	for {
		select {
		case <-q.m.done:
			return
		case <-q.stopped:
			// Forgotten: account queued envelopes as dropped, then
			// release everything. A Send racing Forget on the stale
			// queue pointer at worst loses its envelope — transport is
			// best-effort and the peer is gone anyway.
			for {
				select {
				case <-q.ch:
					q.m.droppedForget.Inc()
					q.m.opts.Journal.Append(obs.Event{Kind: obs.EvMessageDropped, Peer: q.addr, Reason: "forget"})
				default:
					return
				}
			}
		case env := <-q.ch:
			q.deliver(env)
		}
	}
}

// deliver writes one envelope, re-dialing a stale cached connection
// once. Failures are counted; the envelope is dropped, never retried —
// upper layers own retry policy.
func (q *sendQueue) deliver(env *wire.Envelope) {
	if _, suspect := q.suspended(); suspect {
		// Enqueued before the destination went suspect; don't burn a
		// dial timeout per queued message on a peer known to be bad.
		q.m.droppedSuspect.Inc()
		q.m.opts.Journal.Append(obs.Event{Kind: obs.EvMessageDropped, Peer: q.addr, Reason: "suspect"})
		return
	}
	frame, err := wire.EncodeEnvelope(env)
	if err != nil {
		q.m.droppedEncode.Inc()
		q.m.opts.Journal.Append(obs.Event{Kind: obs.EvMessageDropped, Peer: q.addr, Reason: "encode"})
		return
	}
	if q.conn == nil {
		conn, err := q.dial()
		if err != nil {
			q.fail()
			q.m.droppedDeliver.Inc()
			q.m.opts.Journal.Append(obs.Event{Kind: obs.EvMessageDropped, Peer: q.addr, Reason: "deliver"})
			return
		}
		q.conn = conn
	}
	if err := q.write(frame); err != nil {
		// Stale cached connection (peer restarted): re-dial once.
		_ = q.conn.Close() // already failing; the write error is the signal
		q.conn = nil
		q.m.redialsMetric.Inc()
		conn, derr := q.dial()
		if derr != nil {
			q.fail()
			q.m.droppedDeliver.Inc()
			q.m.opts.Journal.Append(obs.Event{Kind: obs.EvMessageDropped, Peer: q.addr, Reason: "deliver"})
			return
		}
		q.conn = conn
		if err := q.write(frame); err != nil {
			_ = q.conn.Close() // already failing; the write error is the signal
			q.conn = nil
			q.fail()
			q.m.droppedDeliver.Inc()
			q.m.opts.Journal.Append(obs.Event{Kind: obs.EvMessageDropped, Peer: q.addr, Reason: "deliver"})
			return
		}
	}
	q.succeed()
	q.m.sent.Inc()
}

// dial opens a connection to the destination, recording dial latency.
func (q *sendQueue) dial() (net.Conn, error) {
	start := time.Now()
	conn, err := DialTimeout(q.m.network, q.addr, q.m.opts.DialTimeout)
	q.m.dialSeconds.ObserveDuration(time.Since(start))
	return conn, err
}

// write puts one whole frame on the wire under the write deadline. A
// frame is a single Write call, so stream framing survives fault layers
// that drop or delay at message granularity.
func (q *sendQueue) write(frame []byte) error {
	if wt := q.m.opts.WriteTimeout; wt > 0 {
		q.conn.SetWriteDeadline(time.Now().Add(wt))
	}
	start := time.Now()
	_, err := q.conn.Write(frame)
	q.m.writeSeconds.ObserveDuration(time.Since(start))
	return err
}
