package wire

import (
	"encoding/json"
	"testing"
)

// TestMsgIDJSONRoundTrip pins the hex-string JSON form: traces and
// admin payloads must show the identifier the shell prints.
func TestMsgIDJSONRoundTrip(t *testing.T) {
	id := NewMsgID()
	data, err := json.Marshal(id)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if want := `"` + id.String() + `"`; string(data) != want {
		t.Fatalf("marshal = %s, want %s", data, want)
	}
	var back MsgID
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back != id {
		t.Fatalf("round trip changed the id: %v != %v", back, id)
	}
}

// TestMsgIDJSONRejectsBadForms covers the error paths.
func TestMsgIDJSONRejectsBadForms(t *testing.T) {
	for _, bad := range []string{`42`, `"xyz"`, `"abcd"`, `[1,2]`} {
		var id MsgID
		if err := json.Unmarshal([]byte(bad), &id); err == nil {
			t.Errorf("unmarshal %s did not fail", bad)
		}
	}
}
