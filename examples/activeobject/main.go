// Activeobject: access-controlled sharing with active objects (§3.2.2).
//
// A finance node shares one report as an *active object*: the data
// elements are the report's lines and the active element is a level
// filter the owner installed. Two requesters with different clearances
// search for it; each receives only the content its access level allows,
// because the filtering runs at the owner's site inside the agent's
// execution.
//
// Run with: go run ./examples/activeobject
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"bestpeer/internal/agent"
	"bestpeer/internal/core"
	"bestpeer/internal/storm"
	"bestpeer/internal/transport"
)

func main() {
	dir, err := os.MkdirTemp("", "bestpeer-activeobject")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	nw := transport.NewInProc()

	// The owner's node: its report mixes public and restricted lines.
	ownerStore, err := storm.Open(filepath.Join(dir, "owner.storm"), storm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer ownerStore.Close()
	report := strings.Join([]string{
		"Q3 revenue review",
		agent.MarkLine(0, "revenue grew 12% quarter over quarter"),
		agent.MarkLine(3, "acquisition of Initech under negotiation"),
		agent.MarkLine(5, "board approved workforce reduction plan"),
	}, "\n")
	ownerStore.Put(&storm.Object{
		Name:        "q3-review",
		Keywords:    []string{"finance"},
		Kind:        storm.ActiveObject,
		ActiveClass: "level-filter",
		Data:        []byte(report),
	})

	active := agent.NewActiveSet()
	active.Add(&agent.LevelFilter{}) // the owner's active element

	owner, err := core.NewNode(core.Config{
		Network: nw, ListenAddr: "owner", Store: ownerStore,
		ActiveNodes: active,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer owner.Close()

	// Two requesters with different clearances.
	for _, who := range []struct {
		name  string
		level int
	}{
		{"intern", 0},
		{"director", 4},
	} {
		store, err := storm.Open(filepath.Join(dir, who.name+".storm"), storm.Options{})
		if err != nil {
			log.Fatal(err)
		}
		node, err := core.NewNode(core.Config{
			Network: nw, ListenAddr: who.name, Store: store,
			AccessLevel: who.level,
		})
		if err != nil {
			log.Fatal(err)
		}
		node.SetPeers([]core.Peer{{Addr: owner.Addr()}})

		res, err := node.Query(&agent.KeywordAgent{Query: "finance"}, core.QueryOptions{
			Timeout: time.Second, WaitAnswers: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (access level %d) sees:\n", who.name, who.level)
		for _, a := range res.Answers {
			for _, line := range strings.Split(string(a.Result.Data), "\n") {
				fmt.Printf("    %s\n", line)
			}
		}
		fmt.Println()
		_ = node.Close()  // demo teardown; errors carry no lesson here
		_ = store.Close() // demo teardown; errors carry no lesson here
	}
}
