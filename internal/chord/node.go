package chord

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"bestpeer/internal/obs"
	"bestpeer/internal/transport"
	"bestpeer/internal/wire"
)

// Protocol errors.
var (
	// ErrUnroutable reports that a lookup ran out of live candidates or
	// exceeded the hop bound before reaching the key's owner.
	ErrUnroutable = errors.New("chord: key unroutable")
	// ErrBadReply reports a response of the wrong kind or with a remote
	// error string.
	ErrBadReply = errors.New("chord: bad reply")
)

// failThreshold is how many consecutive RPC failures mark an address
// failing for routing, independent of any external detector.
const failThreshold = 2

// fingersPerRound is how many finger slots one maintenance tick
// refreshes; the full table cycles in Bits/fingersPerRound ticks.
const fingersPerRound = 8

// Config tunes a live chord node. The zero value selects the defaults
// noted on each field.
type Config struct {
	// Successors is the successor-list length. Default 4.
	Successors int
	// StabilizeEvery is the stabilize/notify cadence. Default 500ms.
	StabilizeEvery time.Duration
	// FixFingersEvery is the finger-refresh cadence. Default 1s.
	FixFingersEvery time.Duration
	// CheckPredEvery is the predecessor liveness cadence. Default 1s.
	CheckPredEvery time.Duration
	// DialTimeout bounds one connection attempt. Default 2s.
	DialTimeout time.Duration
	// CallTimeout bounds one whole RPC exchange. Default 5s.
	CallTimeout time.Duration
	// MaxHops bounds recursive lookup forwarding. Default 64.
	MaxHops int
	// Failing, when non-nil, is an external failure detector consulted
	// before routing through an address — wire a transport
	// Messenger.Failing here so chord skips peers the messenger already
	// distrusts. It is called with the node's own mutex held and must
	// not call back into the node.
	Failing func(addr string) bool
	// Metrics is the registry the node's counters are published to. Nil
	// means a private registry.
	Metrics *obs.Registry
	// Journal receives ring lifecycle events. Nil disables journalling.
	Journal *obs.Journal
}

func (c Config) withDefaults() Config {
	if c.Successors <= 0 {
		c.Successors = DefaultSuccessors
	}
	if c.StabilizeEvery <= 0 {
		c.StabilizeEvery = 500 * time.Millisecond
	}
	if c.FixFingersEvery <= 0 {
		c.FixFingersEvery = time.Second
	}
	if c.CheckPredEvery <= 0 {
		c.CheckPredEvery = time.Second
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = 5 * time.Second
	}
	if c.MaxHops <= 0 {
		c.MaxHops = Bits
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	return c
}

// Node is one live chord participant. It owns no listener: the hosting
// server accepts connections and routes chord-kind envelopes to
// HandleEnvelope, while the node dials out for its own RPCs.
type Node struct {
	network transport.Network
	cfg     Config
	self    NodeRef

	mu         sync.Mutex
	t          *Table
	fingerNext int
	fails      map[string]int
	started    bool
	closed     bool

	stop      chan struct{}
	suspectCh chan string
	wg        sync.WaitGroup

	lookups     *obs.Counter
	lookupFails *obs.Counter
	forwards    *obs.Counter
	stabilizes  *obs.Counter
	rpcFails    *obs.Counter
	panics      *obs.Counter
}

// NodeStats is a point-in-time snapshot of the node counters.
type NodeStats struct {
	Lookups        uint64
	LookupFailures uint64
	Forwards       uint64
	Stabilizes     uint64
	RPCFailures    uint64
	Panics         uint64
}

// Stats snapshots the node counters.
func (n *Node) Stats() NodeStats {
	return NodeStats{
		Lookups:        n.lookups.Value(),
		LookupFailures: n.lookupFails.Value(),
		Forwards:       n.forwards.Value(),
		Stabilizes:     n.stabilizes.Value(),
		RPCFailures:    n.rpcFails.Value(),
		Panics:         n.panics.Value(),
	}
}

// New builds a node for the given address — which must be where the host
// listens, since peers derive the node's ring key from it. Call Create
// or Join to start maintenance.
func New(network transport.Network, addr string, cfg Config) *Node {
	cfg = cfg.withDefaults()
	self := RefFor(addr)
	n := &Node{
		network:   network,
		cfg:       cfg,
		self:      self,
		t:         NewTable(self, cfg.Successors),
		fails:     make(map[string]int),
		stop:      make(chan struct{}),
		suspectCh: make(chan string, 16),
		lookups: cfg.Metrics.Counter("bestpeer_chord_lookups_total",
			"Key lookups initiated or forwarded by this node."),
		lookupFails: cfg.Metrics.Counter("bestpeer_chord_lookup_failures_total",
			"Lookups abandoned: hop bound hit or no live candidate."),
		forwards: cfg.Metrics.Counter("bestpeer_chord_forwards_total",
			"Lookup requests forwarded to a closer node."),
		stabilizes: cfg.Metrics.Counter("bestpeer_chord_stabilizes_total",
			"Stabilize rounds run."),
		rpcFails: cfg.Metrics.Counter("bestpeer_chord_rpc_failures_total",
			"Chord RPC exchanges that failed at the transport layer."),
		panics: cfg.Metrics.Counter("bestpeer_chord_panics_total",
			"Chord goroutine panics contained."),
	}
	return n
}

// Self returns the node's own ring reference.
func (n *Node) Self() NodeRef { return n.self }

// contain is deferred at the top of every node goroutine so a panic is
// recorded instead of taking the whole process down.
func (n *Node) contain() {
	if r := recover(); r != nil {
		n.panics.Inc()
	}
}

// start launches the maintenance loop once.
func (n *Node) start() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.started || n.closed {
		return
	}
	n.started = true
	n.wg.Add(1)
	go n.maintainLoop()
}

// Create starts the node as the sole member of a fresh ring.
func (n *Node) Create() {
	n.start()
	n.cfg.Journal.Append(obs.Event{Kind: obs.EvRingJoined, Node: n.self.Addr})
}

// Join attaches the node to the ring a seed address belongs to: the
// owner of the node's own key becomes its successor, and stabilization
// weaves it in from there.
func (n *Node) Join(seed string) error {
	resp, err := n.rpcLookup(seed, n.self.Key, 0)
	if err != nil {
		return fmt.Errorf("chord: join via %s: %w", seed, err)
	}
	succ := resp.Owner
	if succ.IsZero() || succ.Addr == n.self.Addr {
		succ = RefFor(seed)
	}
	n.mu.Lock()
	n.t.SetSuccessors([]NodeRef{succ})
	n.mu.Unlock()
	if p, perr := n.rpcProbe(succ.Addr); perr == nil {
		var sp NodeRef
		if p.HasPred {
			sp = p.Pred
		}
		n.mu.Lock()
		n.t.AdoptFromProbe(succ, sp, p.Succs)
		succ = n.t.Successor()
		n.mu.Unlock()
	}
	n.notifyPeer(succ)
	n.start()
	n.cfg.Journal.Append(obs.Event{Kind: obs.EvRingJoined, Node: n.self.Addr, Peer: succ.Addr})
	return nil
}

// Leave departs gracefully: both ring neighbors get a handoff naming
// their replacement, so the ring closes immediately instead of waiting
// for failure detection. The node stops afterwards.
func (n *Node) Leave() error {
	n.mu.Lock()
	succ := n.t.Successor()
	pred, hasPred := n.t.Predecessor()
	n.mu.Unlock()
	var firstErr error
	if succ.Addr != n.self.Addr {
		msg := &notifyMsg{Version: chordNotifyVersion, Self: n.self, Leaving: true}
		if hasPred {
			msg.Repl = pred
		}
		if err := n.rpcNotify(succ.Addr, msg); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if hasPred && pred.Addr != n.self.Addr {
		msg := &notifyMsg{Version: chordNotifyVersion, Self: n.self, Leaving: true, Repl: succ}
		if err := n.rpcNotify(pred.Addr, msg); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	n.cfg.Journal.Append(obs.Event{Kind: obs.EvRingLeft, Node: n.self.Addr, Reason: "leave"})
	n.shutdown()
	return firstErr
}

// Close stops the maintenance loop and waits for it. Idempotent.
func (n *Node) Close() error {
	n.mu.Lock()
	wasStarted := n.started && !n.closed
	n.mu.Unlock()
	if wasStarted {
		n.cfg.Journal.Append(obs.Event{Kind: obs.EvRingLeft, Node: n.self.Addr, Reason: "close"})
	}
	n.shutdown()
	return nil
}

func (n *Node) shutdown() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	n.mu.Unlock()
	close(n.stop)
	n.wg.Wait()
}

// OnSuspect is shaped for transport.Options.OnSuspect: when the
// messenger's failure detector marks addr suspect, the maintenance loop
// purges it and stabilizes immediately. Lock-free, so it is safe to call
// from under the messenger's own locks.
func (n *Node) OnSuspect(addr string, suspect bool) {
	if !suspect {
		return
	}
	select {
	case n.suspectCh <- addr:
	default: // loop is behind; the periodic sweep will catch it
	}
}

// Snapshot describes the node's current ring neighborhood — the admin
// endpoint's view of ring membership.
type Snapshot struct {
	Self        NodeRef   `json:"self"`
	Predecessor *NodeRef  `json:"predecessor,omitempty"`
	Successors  []NodeRef `json:"successors"`
	Fingers     []NodeRef `json:"fingers,omitempty"` // distinct, in table order
}

// Snapshot returns the current neighborhood.
func (n *Node) Snapshot() Snapshot {
	n.mu.Lock()
	defer n.mu.Unlock()
	s := Snapshot{Self: n.self, Successors: n.t.Successors()}
	if p, ok := n.t.Predecessor(); ok {
		s.Predecessor = &p
	}
	seen := make(map[string]bool)
	for _, f := range n.t.Fingers() {
		if f.IsZero() || seen[f.Addr] {
			continue
		}
		seen[f.Addr] = true
		s.Fingers = append(s.Fingers, f)
	}
	return s
}

// FindOwner resolves the owner of k, returning the owning node and how
// many forwarding hops the resolution took.
func (n *Node) FindOwner(k Key) (NodeRef, int, error) {
	n.lookups.Inc()
	owner, hops, err := n.route(k, 0)
	if err != nil {
		n.lookupFails.Inc()
		return NodeRef{}, int(hops), err
	}
	return owner, int(hops), nil
}

// Owns reports whether this node is currently responsible for k.
func (n *Node) Owns(k Key) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.t.Owns(k)
}

// route performs the recursive lookup step loop: answer locally when the
// successor interval covers k, otherwise hand the query to the closest
// preceding live node, retrying past peers that fail.
func (n *Node) route(k Key, hops uint64) (NodeRef, uint64, error) {
	for attempt := 0; attempt <= n.cfg.Successors+1; attempt++ {
		if hops > uint64(n.cfg.MaxHops) {
			return NodeRef{}, hops, fmt.Errorf("%w: %d hops", ErrUnroutable, hops)
		}
		n.mu.Lock()
		owner, hop, done := n.t.NextHop(k, n.failingLocked)
		n.mu.Unlock()
		if done {
			if owner.Addr != n.self.Addr && n.isFailing(owner.Addr) {
				n.dropFailed(owner.Addr)
				continue
			}
			return owner, hops, nil
		}
		n.forwards.Inc()
		resp, err := n.rpcLookup(hop.Addr, k, hops+1)
		if err != nil {
			n.dropFailed(hop.Addr)
			continue
		}
		return resp.Owner, resp.Hops, nil
	}
	return NodeRef{}, hops, ErrUnroutable
}

// failingLocked is the routing veto; the caller holds n.mu.
func (n *Node) failingLocked(addr string) bool {
	if n.fails[addr] >= failThreshold {
		return true
	}
	return n.cfg.Failing != nil && n.cfg.Failing(addr)
}

func (n *Node) isFailing(addr string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.failingLocked(addr)
}

// dropFailed purges addr from the routing table after a failure.
func (n *Node) dropFailed(addr string) {
	n.mu.Lock()
	n.fails[addr]++
	wasSucc := n.t.Successor().Addr == addr
	changed := n.t.RemoveFailed(addr)
	succ := n.t.Successor()
	n.mu.Unlock()
	if changed && wasSucc {
		n.journalNeighbor("successor", succ.Addr)
	}
}

func (n *Node) noteOK(addr string) {
	n.mu.Lock()
	delete(n.fails, addr)
	n.mu.Unlock()
}

func (n *Node) journalNeighbor(slot, addr string) {
	n.cfg.Journal.Append(obs.Event{
		Kind: obs.EvRingNeighborChanged, Node: n.self.Addr,
		Reason: slot, Peer: addr,
	})
}

// maintainLoop is the node's only goroutine: stabilize, fix-fingers and
// check-predecessor on their cadences, plus immediate repair when the
// external failure detector reports a suspect.
func (n *Node) maintainLoop() {
	defer n.wg.Done()
	defer n.contain()
	stab := time.NewTicker(n.cfg.StabilizeEvery)
	defer stab.Stop()
	fix := time.NewTicker(n.cfg.FixFingersEvery)
	defer fix.Stop()
	pred := time.NewTicker(n.cfg.CheckPredEvery)
	defer pred.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-stab.C:
			n.Stabilize()
		case <-fix.C:
			n.fixFingersRound()
		case <-pred.C:
			n.CheckPredecessor()
		case addr := <-n.suspectCh:
			n.dropFailed(addr)
			n.Stabilize()
		}
	}
}

// Stabilize runs one stabilize round: probe the successor, adopt any
// node that joined in front of us, back up its successor list, and
// notify it of our existence. Exported so hosts and tests can force
// convergence instead of waiting out the ticker.
func (n *Node) Stabilize() {
	n.stabilizes.Inc()
	n.mu.Lock()
	succ := n.t.Successor()
	pred, hasPred := n.t.Predecessor()
	n.mu.Unlock()
	if succ.Addr == n.self.Addr {
		// Alone — unless someone notified us: adopt the predecessor as
		// successor so a two-node ring closes.
		if hasPred && pred.Addr != n.self.Addr {
			n.mu.Lock()
			n.t.SetSuccessors([]NodeRef{pred})
			n.mu.Unlock()
			n.journalNeighbor("successor", pred.Addr)
			n.notifyPeer(pred)
		}
		return
	}
	resp, err := n.rpcProbe(succ.Addr)
	if err != nil {
		n.dropFailed(succ.Addr)
		return
	}
	var sp NodeRef
	if resp.HasPred {
		sp = resp.Pred
	}
	n.mu.Lock()
	changed := n.t.AdoptFromProbe(succ, sp, resp.Succs)
	newSucc := n.t.Successor()
	n.mu.Unlock()
	if changed {
		n.journalNeighbor("successor", newSucc.Addr)
	}
	n.notifyPeer(newSucc)
}

// notifyPeer tells addr we may be its predecessor.
func (n *Node) notifyPeer(peer NodeRef) {
	if peer.IsZero() || peer.Addr == n.self.Addr {
		return
	}
	msg := &notifyMsg{Version: chordNotifyVersion, Self: n.self}
	if err := n.rpcNotify(peer.Addr, msg); err != nil {
		n.dropFailed(peer.Addr)
	}
}

// fixFingersRound refreshes the next few finger slots by resolving each
// interval start's owner through the ring.
func (n *Node) fixFingersRound() {
	for i := 0; i < fingersPerRound; i++ {
		n.mu.Lock()
		idx := n.fingerNext
		n.fingerNext = (n.fingerNext + 1) % Bits
		n.mu.Unlock()
		owner, _, err := n.route(fingerStart(n.self.Key, idx), 0)
		if err != nil {
			return
		}
		n.mu.Lock()
		n.t.SetFinger(idx, owner)
		n.mu.Unlock()
	}
}

// RefreshFingers resolves every finger slot once — a full table build,
// used by hosts right after join and by tests to force convergence.
func (n *Node) RefreshFingers() {
	for i := 0; i < Bits; i++ {
		owner, _, err := n.route(fingerStart(n.self.Key, i), 0)
		if err != nil {
			continue
		}
		n.mu.Lock()
		n.t.SetFinger(i, owner)
		n.mu.Unlock()
	}
}

// CheckPredecessor validates the predecessor's liveness and forgets it
// when it stops answering, so a future notify can fill the slot.
// Exported so hosts and tests can force convergence.
func (n *Node) CheckPredecessor() {
	n.mu.Lock()
	pred, ok := n.t.Predecessor()
	dead := ok && n.failingLocked(pred.Addr)
	n.mu.Unlock()
	if !ok {
		return
	}
	if !dead {
		if _, err := n.rpcProbe(pred.Addr); err == nil {
			return
		}
	}
	n.mu.Lock()
	stillPred := n.t.pred.Addr == pred.Addr
	if stillPred {
		n.t.DropPredecessor()
	}
	n.mu.Unlock()
	if stillPred {
		n.journalNeighbor("predecessor", "")
	}
}

// HandleEnvelope serves one chord request and returns the reply, or nil
// when the envelope is not an intelligible chord request — the host
// drops the connection, exactly like the LIGLO dispatch path.
func (n *Node) HandleEnvelope(req *wire.Envelope) *wire.Envelope {
	switch req.Kind {
	case wire.KindChordLookup:
		m, err := decodeLookupReq(req.Body)
		if err != nil {
			return nil
		}
		return n.handleLookup(m)
	case wire.KindChordNotify:
		m, err := decodeNotifyMsg(req.Body)
		if err != nil {
			return nil
		}
		return n.handleNotify(m)
	case wire.KindChordProbe:
		m, err := decodeProbeReq(req.Body)
		if err != nil {
			return nil
		}
		return n.handleProbe(m)
	default:
		return nil
	}
}

// Handles reports whether kind is a chord request this node serves.
func Handles(kind wire.Kind) bool {
	switch kind {
	case wire.KindChordLookup, wire.KindChordNotify, wire.KindChordProbe:
		return true
	}
	return false
}

func ringReply(kind wire.Kind, body []byte) *wire.Envelope {
	return &wire.Envelope{Kind: kind, ID: wire.NewMsgID(), TTL: 1, Body: body}
}

func (n *Node) handleLookup(m *lookupReq) *wire.Envelope {
	n.lookups.Inc()
	resp := &lookupOK{Version: chordLookupVersion}
	owner, hops, err := n.route(m.Key, m.Hops)
	if err != nil {
		n.lookupFails.Inc()
		resp.Err = err.Error()
		resp.Hops = hops
	} else {
		resp.Owner = owner
		resp.Hops = hops
	}
	return ringReply(wire.KindChordLookupOK, encodeLookupOK(resp))
}

func (n *Node) handleNotify(m *notifyMsg) *wire.Envelope {
	if m.Leaving {
		n.mu.Lock()
		wasSucc := n.t.Successor().Addr == m.Self.Addr
		wasPred := func() bool { p, ok := n.t.Predecessor(); return ok && p.Addr == m.Self.Addr }()
		changed := n.t.Depart(m.Self, m.Repl)
		succ := n.t.Successor()
		predR, hasPred := n.t.Predecessor()
		n.mu.Unlock()
		if changed && wasSucc {
			n.journalNeighbor("successor", succ.Addr)
		}
		if changed && wasPred {
			predAddr := ""
			if hasPred {
				predAddr = predR.Addr
			}
			n.journalNeighbor("predecessor", predAddr)
		}
	} else {
		n.mu.Lock()
		changed := n.t.Notify(m.Self)
		n.mu.Unlock()
		n.noteOK(m.Self.Addr)
		if changed {
			n.journalNeighbor("predecessor", m.Self.Addr)
		}
	}
	return ringReply(wire.KindChordNotifyOK, encodeNotifyOK(&notifyOK{Version: chordNotifyVersion}))
}

func (n *Node) handleProbe(m *probeReq) *wire.Envelope {
	if !m.From.IsZero() {
		n.noteOK(m.From.Addr)
	}
	n.mu.Lock()
	resp := &probeOK{Version: chordProbeVersion, Self: n.self, Succs: n.t.Successors()}
	if p, ok := n.t.Predecessor(); ok {
		resp.HasPred = true
		resp.Pred = p
	}
	n.mu.Unlock()
	return ringReply(wire.KindChordProbeOK, encodeProbeOK(resp))
}

// rpc performs one dial-per-call request/response exchange.
func (n *Node) rpc(addr string, req *wire.Envelope) (*wire.Envelope, error) {
	conn, err := transport.DialTimeout(n.network, addr, n.cfg.DialTimeout)
	if err != nil {
		n.rpcFails.Inc()
		return nil, fmt.Errorf("chord: dial %s: %w", addr, err)
	}
	defer conn.Close()
	if ct := n.cfg.CallTimeout; ct > 0 {
		conn.SetDeadline(time.Now().Add(ct))
	}
	wc := wire.NewConn(conn)
	if err := wc.Send(req); err != nil {
		n.rpcFails.Inc()
		return nil, fmt.Errorf("chord: send to %s: %w", addr, err)
	}
	resp, err := wc.Recv()
	if err != nil {
		n.rpcFails.Inc()
		return nil, fmt.Errorf("chord: recv from %s: %w", addr, err)
	}
	n.noteOK(addr)
	return resp, nil
}

func (n *Node) rpcLookup(addr string, k Key, hops uint64) (*lookupOK, error) {
	req := ringReply(wire.KindChordLookup,
		encodeLookupReq(&lookupReq{Version: chordLookupVersion, Key: k, Hops: hops}))
	resp, err := n.rpc(addr, req)
	if err != nil {
		return nil, err
	}
	if resp.Kind != wire.KindChordLookupOK {
		return nil, fmt.Errorf("%w: kind %v", ErrBadReply, resp.Kind)
	}
	m, err := decodeLookupOK(resp.Body)
	if err != nil {
		return nil, err
	}
	if m.Err != "" {
		return nil, fmt.Errorf("%w: %s", ErrBadReply, m.Err)
	}
	return m, nil
}

func (n *Node) rpcNotify(addr string, msg *notifyMsg) error {
	req := ringReply(wire.KindChordNotify, encodeNotifyMsg(msg))
	resp, err := n.rpc(addr, req)
	if err != nil {
		return err
	}
	if resp.Kind != wire.KindChordNotifyOK {
		return fmt.Errorf("%w: kind %v", ErrBadReply, resp.Kind)
	}
	m, err := decodeNotifyOK(resp.Body)
	if err != nil {
		return err
	}
	if m.Err != "" {
		return fmt.Errorf("%w: %s", ErrBadReply, m.Err)
	}
	return nil
}

func (n *Node) rpcProbe(addr string) (*probeOK, error) {
	req := ringReply(wire.KindChordProbe,
		encodeProbeReq(&probeReq{Version: chordProbeVersion, From: n.self}))
	resp, err := n.rpc(addr, req)
	if err != nil {
		return nil, err
	}
	if resp.Kind != wire.KindChordProbeOK {
		return nil, fmt.Errorf("%w: kind %v", ErrBadReply, resp.Kind)
	}
	m, err := decodeProbeOK(resp.Body)
	if err != nil {
		return nil, err
	}
	if m.Err != "" {
		return nil, fmt.Errorf("%w: %s", ErrBadReply, m.Err)
	}
	return m, nil
}
