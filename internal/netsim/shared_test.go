package netsim

import (
	"testing"
	"time"

	"bestpeer/internal/wire"
)

func TestSharedMediumSerializesAllTransfers(t *testing.T) {
	s := NewSim()
	n := NewNetwork(s, Link{Bandwidth: 1000}) // 1000 B/s
	n.UseSharedMedium()
	var times []time.Duration
	for _, name := range []string{"a", "b", "c", "d"} {
		h := n.AddHost(name, HostConfig{})
		h.SetHandler(func(env *wire.Envelope) { times = append(times, s.Now()) })
	}
	// Two transfers between disjoint host pairs: on per-host links they
	// would run in parallel; on a shared medium they serialize.
	n.Send("a", "b", testEnv(wire.KindAgent, 0), 1000)
	n.Send("c", "d", testEnv(wire.KindAgent, 0), 1000)
	s.Run()
	if len(times) != 2 {
		t.Fatalf("deliveries = %d", len(times))
	}
	if times[0] != time.Second || times[1] != 2*time.Second {
		t.Fatalf("shared medium did not serialize: %v", times)
	}
}

func TestSharedMediumLatencyAfterTransfer(t *testing.T) {
	s := NewSim()
	n := NewNetwork(s, Link{Latency: 100 * time.Millisecond, Bandwidth: 1000})
	n.UseSharedMedium()
	n.AddHost("a", HostConfig{})
	var at time.Duration
	b := n.AddHost("b", HostConfig{})
	b.SetHandler(func(env *wire.Envelope) { at = s.Now() })
	n.Send("a", "b", testEnv(wire.KindResult, 0), 500)
	s.Run()
	want := 500*time.Millisecond + 100*time.Millisecond
	if at != want {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
}

func TestSharedMediumStatsStillCounted(t *testing.T) {
	s := NewSim()
	n := NewNetwork(s, Link{Bandwidth: 0})
	n.UseSharedMedium()
	a := n.AddHost("a", HostConfig{})
	b := n.AddHost("b", HostConfig{})
	b.SetHandler(func(env *wire.Envelope) {})
	n.Send("a", "b", testEnv(wire.KindAgent, 16), 0)
	s.Run()
	if a.MsgsSent != 1 || b.MsgsRecvd != 1 || n.MsgsDelivered != 1 {
		t.Fatalf("stats lost on shared medium: %d/%d/%d", a.MsgsSent, b.MsgsRecvd, n.MsgsDelivered)
	}
	if b.BytesRecv == 0 || n.BytesDelivered != b.BytesRecv {
		t.Fatalf("byte accounting wrong: %d vs %d", b.BytesRecv, n.BytesDelivered)
	}
}

func TestSharedMediumInfiniteBandwidthInstant(t *testing.T) {
	s := NewSim()
	n := NewNetwork(s, Link{})
	n.UseSharedMedium()
	n.AddHost("a", HostConfig{})
	delivered := false
	b := n.AddHost("b", HostConfig{})
	b.SetHandler(func(env *wire.Envelope) { delivered = true })
	n.Send("a", "b", testEnv(wire.KindAgent, 0), 1<<20)
	s.Run()
	if !delivered || s.Now() != 0 {
		t.Fatalf("infinite-bandwidth medium took %v", s.Now())
	}
}
