package storm

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPageInsertGet(t *testing.T) {
	var p Page
	p.Init(5)
	if p.ID() != 5 {
		t.Fatalf("ID = %d", p.ID())
	}
	s1, err := p.Insert([]byte("alpha"))
	if err != nil {
		t.Fatalf("insert: %v", err)
	}
	s2, err := p.Insert([]byte("beta"))
	if err != nil {
		t.Fatalf("insert: %v", err)
	}
	if s1 == s2 {
		t.Fatal("slots collide")
	}
	got, err := p.Get(s1)
	if err != nil || string(got) != "alpha" {
		t.Fatalf("Get(s1) = %q, %v", got, err)
	}
	got, err = p.Get(s2)
	if err != nil || string(got) != "beta" {
		t.Fatalf("Get(s2) = %q, %v", got, err)
	}
	if p.LiveRecords() != 2 {
		t.Fatalf("live = %d", p.LiveRecords())
	}
}

func TestPageDeleteAndSlotReuse(t *testing.T) {
	var p Page
	p.Init(1)
	s1, _ := p.Insert([]byte("one"))
	s2, _ := p.Insert([]byte("two"))
	if err := p.Delete(s1); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, err := p.Get(s1); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("get deleted slot: %v", err)
	}
	if err := p.Delete(s1); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("double delete: %v", err)
	}
	// New insert reuses the tombstoned slot.
	s3, err := p.Insert([]byte("three"))
	if err != nil {
		t.Fatalf("insert: %v", err)
	}
	if s3 != s1 {
		t.Fatalf("slot not reused: got %d want %d", s3, s1)
	}
	if got, _ := p.Get(s2); string(got) != "two" {
		t.Fatal("surviving record corrupted")
	}
	if p.SlotCount() != 2 {
		t.Fatalf("slot count grew to %d", p.SlotCount())
	}
}

func TestPageFullAndCompaction(t *testing.T) {
	var p Page
	p.Init(1)
	rec := make([]byte, 1000)
	var slots []Slot
	for {
		s, err := p.Insert(rec)
		if errors.Is(err, ErrPageFull) {
			break
		}
		if err != nil {
			t.Fatalf("insert: %v", err)
		}
		slots = append(slots, s)
	}
	if len(slots) != 4 { // 4072 usable bytes / 1004 per record
		t.Fatalf("inserted %d 1000-byte records, want 4", len(slots))
	}
	// Delete one record: page has a hole but no contiguous space.
	if err := p.Delete(slots[0]); err != nil {
		t.Fatal(err)
	}
	// Insert triggers compaction and succeeds.
	marker := bytes.Repeat([]byte{7}, 1000)
	s, err := p.Insert(marker)
	if err != nil {
		t.Fatalf("insert after compaction: %v", err)
	}
	got, err := p.Get(s)
	if err != nil || !bytes.Equal(got, marker) {
		t.Fatalf("record corrupted after compaction")
	}
	// Other records intact.
	for _, sl := range slots[1:] {
		if got, err := p.Get(sl); err != nil || len(got) != 1000 {
			t.Fatalf("slot %d damaged by compaction: %v", sl, err)
		}
	}
}

func TestPageRecordTooBig(t *testing.T) {
	var p Page
	p.Init(1)
	if _, err := p.Insert(make([]byte, MaxRecordSize+1)); !errors.Is(err, ErrRecordTooBig) {
		t.Fatalf("want ErrRecordTooBig, got %v", err)
	}
	// Exactly MaxRecordSize fits in an empty page.
	if _, err := p.Insert(make([]byte, MaxRecordSize)); err != nil {
		t.Fatalf("max-size record rejected: %v", err)
	}
}

func TestPageUpdateInPlace(t *testing.T) {
	var p Page
	p.Init(1)
	s, _ := p.Insert([]byte("longer-value"))
	if err := p.Update(s, []byte("short")); err != nil {
		t.Fatalf("shrinking update: %v", err)
	}
	if got, _ := p.Get(s); string(got) != "short" {
		t.Fatalf("after shrink: %q", got)
	}
	if err := p.Update(s, []byte("grown-beyond-original")); err != nil {
		t.Fatalf("growing update: %v", err)
	}
	if got, _ := p.Get(s); string(got) != "grown-beyond-original" {
		t.Fatalf("after grow: %q", got)
	}
}

func TestPageUpdateAtomicOnFull(t *testing.T) {
	var p Page
	p.Init(1)
	s, _ := p.Insert([]byte("small"))
	// Fill the page so a growing update cannot fit.
	for {
		if _, err := p.Insert(make([]byte, 500)); err != nil {
			break
		}
	}
	big := make([]byte, 3000)
	if err := p.Update(s, big); !errors.Is(err, ErrPageFull) {
		t.Fatalf("want ErrPageFull, got %v", err)
	}
	// Original record must survive the failed update.
	if got, err := p.Get(s); err != nil || string(got) != "small" {
		t.Fatalf("failed update destroyed record: %q, %v", got, err)
	}
}

func TestPageUpdateErrors(t *testing.T) {
	var p Page
	p.Init(1)
	s, _ := p.Insert([]byte("x"))
	if err := p.Update(Slot(9), []byte("y")); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("update bad slot: %v", err)
	}
	if err := p.Update(s, make([]byte, MaxRecordSize+1)); !errors.Is(err, ErrRecordTooBig) {
		t.Fatalf("oversize update: %v", err)
	}
	p.Delete(s)
	if err := p.Update(s, []byte("y")); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("update deleted slot: %v", err)
	}
}

func TestPageRecordsIterationAndEarlyStop(t *testing.T) {
	var p Page
	p.Init(1)
	for i := 0; i < 5; i++ {
		p.Insert([]byte{byte(i)})
	}
	seen := 0
	p.Records(func(s Slot, rec []byte) bool {
		seen++
		return seen < 3
	})
	if seen != 3 {
		t.Fatalf("early stop failed: saw %d", seen)
	}
}

func TestPageChecksumDetectsCorruption(t *testing.T) {
	var p Page
	p.Init(3)
	p.Insert([]byte("payload"))
	p.seal()
	if err := p.verify(3); err != nil {
		t.Fatalf("fresh page fails verify: %v", err)
	}
	p.buf[100] ^= 0xFF
	if err := p.verify(3); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corruption not detected: %v", err)
	}
	p.buf[100] ^= 0xFF
	if err := p.verify(4); err == nil {
		t.Fatal("page id mismatch not detected")
	}
}

func TestPageFreeSpaceMonotonicity(t *testing.T) {
	var p Page
	p.Init(1)
	prev := p.FreeSpace()
	for i := 0; i < 20; i++ {
		if _, err := p.Insert(make([]byte, 100)); err != nil {
			break
		}
		now := p.FreeSpace()
		if now >= prev {
			t.Fatalf("free space did not shrink: %d -> %d", prev, now)
		}
		prev = now
	}
}

// Property: random interleavings of insert/delete/update preserve exactly
// the records a shadow map says should exist.
func TestPageShadowModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var p Page
		p.Init(1)
		shadow := make(map[Slot][]byte)
		for op := 0; op < 300; op++ {
			switch rng.Intn(3) {
			case 0: // insert
				rec := make([]byte, 1+rng.Intn(200))
				rng.Read(rec)
				s, err := p.Insert(rec)
				if errors.Is(err, ErrPageFull) {
					continue
				}
				if err != nil {
					return false
				}
				shadow[s] = append([]byte(nil), rec...)
			case 1: // delete random live slot
				for s := range shadow {
					if p.Delete(s) != nil {
						return false
					}
					delete(shadow, s)
					break
				}
			case 2: // update random live slot
				for s := range shadow {
					rec := make([]byte, 1+rng.Intn(200))
					rng.Read(rec)
					err := p.Update(s, rec)
					if errors.Is(err, ErrPageFull) {
						break
					}
					if err != nil {
						return false
					}
					shadow[s] = append([]byte(nil), rec...)
					break
				}
			}
		}
		if p.LiveRecords() != len(shadow) {
			return false
		}
		for s, want := range shadow {
			got, err := p.Get(s)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestOIDString(t *testing.T) {
	oid := OID{Page: 12, Slot: 3}
	if oid.String() != "12.3" {
		t.Fatalf("OID.String() = %q", oid.String())
	}
}

func TestObjectKindString(t *testing.T) {
	if StaticObject.String() != "static" || ActiveObject.String() != "active" {
		t.Fatal("kind names wrong")
	}
	if ObjectKind(9).String() != fmt.Sprintf("kind(%d)", 9) {
		t.Fatal("unknown kind name wrong")
	}
}
