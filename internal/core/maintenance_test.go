package core

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"bestpeer/internal/agent"
	"bestpeer/internal/liglo"
	"bestpeer/internal/storm"
	"bestpeer/internal/topology"
	"bestpeer/internal/transport"
)

func TestQueryAndFetchRetrievesHintedData(t *testing.T) {
	c := newCluster(t, 4, nil, func(i int, s *storm.Store) {
		if i > 0 {
			s.Put(&storm.Object{
				Name:     fmt.Sprintf("video-%d", i),
				Keywords: []string{"video"},
				Data:     []byte(fmt.Sprintf("frames-of-%d", i)),
			})
		}
	})
	c.wire(topology.Star(4))

	res, err := c.nodes[0].QueryAndFetch(&agent.KeywordAgent{Query: "video"}, QueryOptions{
		Timeout: 2 * time.Second, WaitAnswers: 3, NoReconfigure: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hints) != 3 {
		t.Fatalf("hints = %d, want 3", len(res.Hints))
	}
	if len(res.Answers) != 3 {
		t.Fatalf("fetched answers = %d, want 3", len(res.Answers))
	}
	for _, a := range res.Answers {
		want := fmt.Sprintf("frames-of-%c", a.Result.Name[len(a.Result.Name)-1])
		if string(a.Result.Data) != want {
			t.Fatalf("fetched %s = %q, want %q", a.Result.Name, a.Result.Data, want)
		}
	}
}

func TestQueryAndFetchIncludesLocalMatches(t *testing.T) {
	c := newCluster(t, 2, nil, func(i int, s *storm.Store) {
		s.Put(&storm.Object{
			Name:     fmt.Sprintf("doc-%d", i),
			Keywords: []string{"doc"},
			Data:     []byte{byte(i + 1)},
		})
	})
	c.wire(topology.Line(2))
	res, err := c.nodes[0].QueryAndFetch(&agent.KeywordAgent{Query: "doc"}, QueryOptions{
		Timeout: time.Second, WaitAnswers: 2, NoReconfigure: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	names := collectNames(res.Answers)
	if !names["doc-0"] || !names["doc-1"] {
		t.Fatalf("answers = %v, want both local and remote", names)
	}
	for _, a := range res.Answers {
		if len(a.Result.Data) == 0 {
			t.Fatalf("answer %s has no data", a.Result.Name)
		}
	}
}

func TestQueryAndFetchSkipsRemovedObjects(t *testing.T) {
	c := newCluster(t, 2, nil, func(i int, s *storm.Store) {
		if i == 1 {
			s.Put(&storm.Object{Name: "fleeting", Keywords: []string{"f"}})
			s.Put(&storm.Object{Name: "stable-f", Keywords: []string{"f"}, Data: []byte("x")})
		}
	})
	c.wire(topology.Line(2))

	// Collect hints manually, remove one object, then fetch via the
	// helper path (simulating the §2 race at full speed is impossible
	// deterministically, so exercise the fallback directly).
	res, err := c.nodes[0].Query(&agent.KeywordAgent{Query: "f"}, QueryOptions{
		Mode: 2, Timeout: time.Second, WaitAnswers: 2, NoReconfigure: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hints) != 2 {
		t.Fatalf("hints = %d", len(res.Hints))
	}
	c.nodes[1].Store().Delete("fleeting")
	got, err := c.nodes[0].Fetch(c.nodes[1].Addr(), []string{"fleeting", "stable-f"}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != "stable-f" {
		t.Fatalf("fetched = %+v, want only stable-f", got)
	}
}

func TestSweepPeersDropsDeadPeer(t *testing.T) {
	c := newCluster(t, 3, nil, nil)
	c.wire(topology.Star(3))
	base := c.nodes[0]
	if len(base.Peers()) != 2 {
		t.Fatalf("peers = %v", base.Peers())
	}
	// Node 2 dies and its address disappears from the network.
	c.nodes[2].Close()
	c.nw.Drop(c.nodes[2].Addr())

	dropped := base.SweepPeers(200 * time.Millisecond)
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
	peers := base.PeerAddrs()
	if len(peers) != 1 || peers[0] != c.nodes[1].Addr() {
		t.Fatalf("peers after sweep = %v", peers)
	}
}

func TestStartMaintenanceLoop(t *testing.T) {
	c := newCluster(t, 2, nil, nil)
	c.wire(topology.Line(2))
	base := c.nodes[0]

	stop := base.StartMaintenance(50*time.Millisecond, 100*time.Millisecond)
	defer stop()

	// Healthy peer survives several sweeps.
	time.Sleep(150 * time.Millisecond)
	if len(base.Peers()) != 1 {
		t.Fatalf("healthy peer dropped: %v", base.Peers())
	}

	// Kill it; the loop prunes it.
	c.nodes[1].Close()
	c.nw.Drop(c.nodes[1].Addr())
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if len(base.Peers()) == 0 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if len(base.Peers()) != 0 {
		t.Fatalf("dead peer never dropped: %v", base.Peers())
	}
	stop()
	stop() // idempotent
}

func TestReplenishFillsPeerSetFromLiglo(t *testing.T) {
	nw := transport.NewInProc()
	srv, err := liglo.NewServer(nw, "liglo-rep", liglo.ServerConfig{InitialPeers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	mk := func(name string) *Node {
		st, err := storm.Open(filepath.Join(t.TempDir(), name+".storm"), storm.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
		n, err := NewNode(Config{Network: nw, ListenAddr: name, Store: st, MaxPeers: 4})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		if err := n.Join([]string{srv.Addr()}); err != nil {
			t.Fatal(err)
		}
		return n
	}
	first := mk("rep-a")
	mk("rep-b")
	mk("rep-c")
	mk("rep-d")

	// The first joiner got no initial peers (nobody existed yet).
	if len(first.Peers()) != 0 {
		t.Fatalf("first joiner peers = %v", first.Peers())
	}
	added, err := first.Replenish()
	if err != nil {
		t.Fatal(err)
	}
	if added != 3 || len(first.Peers()) != 3 {
		t.Fatalf("replenish added %d, peers = %v", added, first.PeerAddrs())
	}
	// Idempotent when already full enough.
	again, err := first.Replenish()
	if err != nil || again != 0 {
		t.Fatalf("second replenish = %d, %v", again, err)
	}
	// Never hands back the node itself.
	for _, p := range first.PeerAddrs() {
		if p == first.Addr() {
			t.Fatal("replenish added self")
		}
	}
}

func TestReplenishBeforeJoinFails(t *testing.T) {
	c := newCluster(t, 1, nil, nil)
	if _, err := c.nodes[0].Replenish(); err == nil {
		t.Fatal("replenish before join succeeded")
	}
}
